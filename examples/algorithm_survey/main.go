// Algorithm survey: the paper's §4.2 case study in miniature.
//
// Profiles four RL algorithms — off-policy DDPG and SAC, on-policy A2C and
// PPO2 — on the same Walker2D task and prints how the training-loop stages
// shift: on-policy algorithms are simulation-bound, off-policy algorithms
// are backpropagation-bound, and everything is ~90% CPU-bound (Figure 5).
//
//	go run ./examples/algorithm_survey
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	algos := []string{"DDPG", "SAC", "A2C", "PPO2"}
	var rows []*report.Breakdown
	ops := []string{
		workloads.OpBackpropagation, workloads.OpInference, workloads.OpSimulation,
	}
	for _, algo := range algos {
		spec := workloads.Spec{
			Algo: algo, Env: "Walker2D", Model: backend.Graph,
			TotalSteps: 1500, Seed: 1,
		}
		stats, err := workloads.Run(spec, trace.Uninstrumented())
		if err != nil {
			log.Fatal(err)
		}
		res := overlap.Compute(stats.Trace.ProcEvents(0))
		rows = append(rows, report.FromResult(algo, res, ops))
		simFrac := res.OpTotal(workloads.OpSimulation).Seconds() / res.Total().Seconds()
		gpuFrac := res.TotalGPUTime().Seconds() / res.Total().Seconds()
		fmt.Printf("%-5s total=%v  simulation=%5.1f%%  GPU=%4.1f%%\n",
			algo, stats.Total, 100*simFrac, 100*gpuFrac)
	}
	fmt.Println()
	fmt.Print(report.Table("Algorithm choice (Walker2D, stable-baselines)", rows))
	fmt.Println("Paper F.10: on-policy algorithms are ≥3.5x more simulation-bound")
	fmt.Println("than off-policy; F.9: every stage is ≤~13% GPU-bound.")
}
