// DQN on Pong — the paper's §2.1 running example.
//
// Trains the simplified DQN of the paper's background section on the Atari
// Pong simulator and prints the profile of its three training-loop stages:
// ε-greedy inference, emulator simulation, and replay-minibatch
// backpropagation. The breakdown shows what motivates RL-Scope: even this
// canonical GPU-era algorithm spends nearly all of its time CPU-bound.
//
//	go run ./examples/dqn_atari
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	spec := workloads.Spec{
		Algo: "DQN", Env: "Pong", Model: backend.Graph,
		TotalSteps: 2000, Seed: 3,
	}
	stats, err := workloads.Run(spec, trace.Uninstrumented())
	if err != nil {
		log.Fatal(err)
	}
	res := overlap.Compute(stats.Trace.ProcEvents(0))
	ops := []string{
		workloads.OpBackpropagation, workloads.OpInference, workloads.OpSimulation,
	}
	b := report.FromResult("DQN/Pong", res, ops)
	fmt.Print(report.Table("DQN on Atari Pong (paper §2.1's example workload)", []*report.Breakdown{b}))

	gpu := res.TotalGPUTime().Seconds() / res.Total().Seconds()
	fmt.Printf("\ntotal: %v  GPU-bound: %.1f%%  CPU-bound: %.1f%%\n",
		stats.Total, 100*gpu, 100*(1-gpu))
	fmt.Println("\nThe RL training loop transitions between Python, the emulator, the ML")
	fmt.Println("backend, and the CUDA API every step — unlike supervised learning, where")
	fmt.Println("the GPU stays busy on large batched passes (paper Figure 1).")
}
