// Quickstart: profile a hand-written training loop with RL-Scope.
//
// This example shows the core public API — annotate high-level operations,
// let the interception wrappers record simulator/backend/CUDA activity,
// then run the cross-stack overlap analysis and print where the time went.
//
//	go run ./examples/quickstart
//
// With -out DIR the collected trace is also written as a chunked trace
// directory, ready for rlscope-analyze or rlscope-serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	rlscope "repro"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/vclock"
)

func main() {
	out := flag.String("out", "", "also write the trace to this directory")
	flag.Parse()
	p := rlscope.New(rlscope.Options{
		Workload: "quickstart",
		Flags:    rlscope.FullInstrumentation(),
		Seed:     1,
	})
	dev := gpu.NewDevice(-1)
	sess := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())

	sess.SetPhase("training")
	for step := 0; step < 100; step++ {
		// Inference: a small forward pass on the (simulated) GPU.
		sess.WithOperation("inference", func() {
			sess.CallBackend("policy.forward", func() {
				for k := 0; k < 3; k++ {
					ctx.LaunchKernel("dense", 3*vclock.Microsecond)
				}
				ctx.StreamSynchronize()
			})
		})
		// Simulation: CPU-bound work inside the simulator library.
		sess.WithOperation("simulation", func() {
			sess.CallSimulator("env.step", func() {
				sess.Clock().Advance(120 * vclock.Microsecond)
			})
		})
		// Backpropagation every 4 steps.
		if step%4 == 3 {
			sess.WithOperation("backpropagation", func() {
				sess.Python(vclock.Exact(120 * vclock.Microsecond)) // minibatch assembly
				sess.CallBackend("train_step", func() {
					ctx.MemcpyAsync(cuda.HostToDevice, 64*1024)
					for k := 0; k < 9; k++ {
						ctx.LaunchKernel("dense_grad", 5*vclock.Microsecond)
					}
					ctx.StreamSynchronize()
				})
			})
		}
	}
	sess.Close()

	tr, err := p.Trace()
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := p.WriteTo(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", len(tr.Events), *out)
	}
	rep, err := rlscope.NewEngine(rlscope.WithWorkers(1), rlscope.WithProcesses(sess.Proc())).
		Analyze(context.Background(), rlscope.FromTrace(tr))
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Results[sess.Proc()]
	b := report.FromResult("quickstart", res, report.SortedOps(res))
	fmt.Print(report.Table("RL-Scope quickstart breakdown", []*report.Breakdown{b}))
	fmt.Printf("\ntotal: %v, GPU-bound: %v (%.1f%%)\n",
		res.Total(), res.TotalGPUTime(),
		100*res.TotalGPUTime().Seconds()/res.Total().Seconds())
}
