// Framework comparison: the paper's §4.1 case study in miniature.
//
// Trains the same TD3 agent on the same Walker2D simulator with identical
// hyperparameters under all four ⟨execution model, ML backend⟩
// configurations of Table 1, and prints the time breakdowns and language
// transition counts that explain their performance gaps (Figures 4a/4c).
//
//	go run ./examples/framework_comparison
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	models := []backend.ExecModel{
		backend.EagerPyTorch, backend.Autograph, backend.EagerTF, backend.Graph,
	}
	var rows []*report.Breakdown
	var trows []report.TransitionRow
	ops := []string{
		workloads.OpBackpropagation, workloads.OpInference, workloads.OpSimulation,
	}
	for _, model := range models {
		spec := workloads.Spec{
			Algo: "TD3", Env: "Walker2D", Model: model,
			TotalSteps: 1000, Seed: 1,
		}
		stats, err := workloads.Run(spec, trace.Uninstrumented())
		if err != nil {
			log.Fatal(err)
		}
		res := overlap.Compute(stats.Trace.ProcEvents(0))
		rows = append(rows, report.FromResult(model.String(), res, ops))
		trows = append(trows, report.Transitions(model.String(), res, ops)...)
		fmt.Printf("%-22s total %v\n", model, stats.Total)
	}
	fmt.Println()
	fmt.Print(report.Table("(TD3, Walker2D) time breakdown by framework", rows))
	fmt.Print(report.TransitionTable("(TD3, Walker2D) language transitions", trows))
	fmt.Println("Findings to look for (paper §4.1): Eager runs 1.9–4.8x slower than")
	fmt.Println("Graph/Autograph; transition counts, not GPU time, explain the gaps.")
}
