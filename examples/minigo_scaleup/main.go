// Minigo scale-up: the paper's §4.3 case study in miniature.
//
// Runs an AlphaGoZero-style pipeline with 16 parallel self-play workers
// sharing one simulated GPU, then contrasts what an nvidia-smi-style
// sampled-utilization monitor reports (~100%) against RL-Scope's honest
// per-worker GPU execution time (a sliver of worker runtime) — Figure 8
// and finding F.11.
//
//	go run ./examples/minigo_scaleup
package main

import (
	"fmt"
	"log"

	"repro/internal/minigo"
	"repro/internal/nvsmi"
	"repro/internal/vclock"
)

func main() {
	cfg := minigo.DefaultConfig()
	cfg.Seed = 7
	fmt.Printf("running Minigo: %d self-play workers, %dx%d Go, %d sims/move\n\n",
		cfg.Workers, cfg.BoardSize, cfg.BoardSize, cfg.SimsPerMove)
	res, err := minigo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %-14s %-12s %s\n", "process", "total", "GPU", "GPU%")
	for _, p := range res.Trace.ProcIDs() {
		info := res.Trace.Meta.Procs[p]
		if info.Parent < 0 {
			continue
		}
		total := res.WorkerTotal[p]
		gpuT := res.WorkerGPU[p]
		fmt.Printf("%-22s %-14v %-12v %.2f%%\n",
			info.Name, total, gpuT, 100*gpuT.Seconds()/total.Seconds())
	}

	period := vclock.Duration(res.SpanEnd-res.SpanStart) / 40
	rep := nvsmi.Sample(res.Busy, res.SpanStart, res.SpanEnd, period)
	fmt.Printf("\nnvidia-smi would report:  %.0f%% GPU utilization\n", 100*rep.Utilization())
	fmt.Printf("RL-Scope reports:         %.2f%% true GPU duty cycle\n", 100*rep.TrueUtilization())
	fmt.Printf("\ntraining examples collected: %d; candidate promoted: %v\n",
		res.Examples, res.Promoted)
	fmt.Println("\nPaper F.11: short inference kernels mark every sample period active,")
	fmt.Println("so coarse utilization metrics drastically overstate GPU use.")
}
