package rlscope

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// runToy drives a miniature annotated workload through the public API.
func runToy(flags FeatureFlags, seed int64) (*Profiler, *Trace) {
	p := New(Options{Workload: "api-toy", Flags: flags, Seed: seed})
	dev := gpu.NewDevice(-1)
	sess := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())
	sess.SetPhase("training")
	for i := 0; i < 20; i++ {
		sess.WithOperation("inference", func() {
			sess.CallBackend("forward", func() {
				ctx.LaunchKernel("matmul", 3*vclock.Microsecond)
				ctx.StreamSynchronize()
			})
		})
		sess.WithOperation("simulation", func() {
			sess.CallSimulator("step", func() {
				sess.Clock().Advance(40 * vclock.Microsecond)
			})
		})
	}
	sess.Close()
	return p, p.MustTrace()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	_, tr := runToy(FullInstrumentation(), 1)
	results := engineResults(tr, WithWorkers(1))
	res := results[0]
	if res == nil {
		t.Fatal("no analysis for process 0")
	}
	if res.OpTotal("inference") == 0 || res.OpTotal("simulation") == 0 {
		t.Fatal("operations missing from breakdown")
	}
	if res.GPUTime("inference") == 0 {
		t.Fatal("inference has no GPU time")
	}
	if res.TransitionCount("simulation", trace.TransPythonToSimulator) != 20 {
		t.Fatal("simulator transition count wrong")
	}
}

func TestPublicAPICalibrationRoundTrip(t *testing.T) {
	runner := Runner(func(flags FeatureFlags, seed int64) (*RunStats, error) {
		p, tr := runToy(flags, seed)
		return StatsFromTrace(tr, flags, p.OverheadCounts(), p.TotalTime()), nil
	})
	cal, err := Calibrate(runner, 7)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if cal.Interception <= 0 || cal.CUDAIntercept <= 0 {
		t.Fatalf("degenerate calibration: %+v", cal)
	}
	_, tr := runToy(FullInstrumentation(), 99)
	corrected := Correct(tr, cal)
	if corrected.CountKind(trace.KindOverhead) != 0 {
		t.Fatal("corrected trace retains overhead markers")
	}
	v, err := Validate("api-toy", runner, 7, 1234)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if v.Corrected >= v.Instrumented {
		t.Fatal("correction did not shrink the instrumented estimate")
	}
}

func TestFlagHelpers(t *testing.T) {
	if !FullInstrumentation().Any() || Uninstrumented().Any() {
		t.Fatal("flag helpers wrong")
	}
	if DefaultOverheads().Interception.Mean <= 0 {
		t.Fatal("default overheads empty")
	}
	if results := engineResults(&Trace{}, WithWorkers(1)); len(results) != 0 {
		t.Fatal("empty trace should produce no per-process results")
	}
}
