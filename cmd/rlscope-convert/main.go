// Command rlscope-convert rewrites a trace directory between chunk formats:
// v1 (row-oriented) and v2 (columnar with dictionary interning). Chunk
// boundaries, sequence numbers, sidecar indexes, and run metadata are
// preserved, so analyses over the converted directory plan and stream exactly
// as they would over the original.
//
// Usage:
//
//	rlscope-convert -in /tmp/trace-v1 -out /tmp/trace-v2
//	rlscope-convert -in /tmp/trace-v2 -out /tmp/trace-v1 -to v1
//
// By default the conversion is verified: the decoded events are re-encoded
// back into each chunk's original format and the round-trip digest must
// reproduce DirDigest of the source, proving no event was lost or altered.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "source trace directory")
		out    = flag.String("out", "", "destination directory (must not already contain trace files)")
		to     = flag.String("to", "v2", "target chunk format: v1 or v2")
		verify = flag.Bool("verify", true, "prove event equivalence via a round-trip DirDigest check")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("both -in and -out are required"))
	}
	format, err := trace.ParseFormat(*to)
	if err != nil {
		fatal(err)
	}
	stats, err := trace.ConvertDir(*in, *out, format, *verify)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("converted %d chunks (%d events) to %s\n", stats.Chunks, stats.Events, format)
	fmt.Printf("chunk bytes: %d -> %d (ratio %.3f)\n", stats.SrcChunkBytes, stats.DstChunkBytes, stats.Ratio())
	if *verify {
		fmt.Printf("verified: round-trip digest matches source digest %s\n", stats.SrcDigest)
	}
	fmt.Printf("destination digest: %s\n", stats.DstDigest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlscope-convert:", err)
	os.Exit(1)
}
