// Command rlscope-query answers fleet aggregation queries over a set of
// trace directories, offline — the same query DSL, the same exact
// per-group result merge, and byte-for-byte the same output document as
// rlscope-serve's POST /v1/query, so the two can be compared with cmp.
//
// Usage:
//
//	rlscope-query -group-by label.algo /traces/run1 /traces/run2 ...
//	rlscope-query -filter 'workload=ppo-*' -filter label.framework=tf \
//	    -group-by label.algo -metrics total_ns,gpu_ns,gpu_frac \
//	    -trace a=/traces/run1 -trace b=/traces/run2
//	rlscope-query -query '{"group_by":["label.algo"],"compare":{"baseline":{"label.algo":"dqn"}}}' \
//	    -store-reports /var/lib/rlscope/reports /traces/*
//
// Traces are given as positional directories or repeatable -trace NAME=DIR
// flags; a bare directory's id is its basename, exactly like rlscope-serve
// -trace. The query comes either assembled from the convenience flags
// (-filter/-group-by/-metrics) or verbatim as JSON (-query / -query-file);
// the two modes are mutually exclusive.
//
// With -store-reports DIR, per-trace result sets are read from (and on
// miss, written to) the same content-addressed report store rlscope-serve
// maintains — point the flag at a server's directory and a warm query runs
// zero analyses. Without it, every trace costs one Engine run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	rlscope "repro"
	"repro/internal/fleet"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	var (
		queryJSON = flag.String("query", "", "fleet query as a JSON document (mutually exclusive with -filter/-group-by/-metrics)")
		queryFile = flag.String("query-file", "", "read the JSON query from a file instead of -query")
		groupBy   = flag.String("group-by", "", "comma-separated group dimensions: id, workload, label.<key>")
		metrics   = flag.String("metrics", "", "comma-separated metrics (default total_ns,cpu_ns,gpu_ns,gpu_frac)")
		reportDir = flag.String("store-reports", "", "content-addressed report store directory shared with rlscope-serve; misses are computed and written back")
		workers   = flag.Int("workers", 0, "Engine workers per cold-trace analysis (0 = one per CPU)")
	)
	filter := map[string]string{}
	flag.Func("filter", "filter clause k=v with glob patterns, e.g. 'workload=ppo-*' (repeatable)", func(v string) error {
		k, val, ok := strings.Cut(v, "=")
		if !ok || k == "" {
			return fmt.Errorf("want -filter dimension=pattern, got %q", v)
		}
		filter[k] = val
		return nil
	})
	var traceArgs []string
	flag.Func("trace", "trace directory to query, as DIR or NAME=DIR (repeatable)", func(v string) error {
		traceArgs = append(traceArgs, v)
		return nil
	})
	flag.Parse()
	traceArgs = append(traceArgs, flag.Args()...)
	if len(traceArgs) == 0 {
		fmt.Fprintln(os.Stderr, "rlscope-query: at least one trace directory (positional or -trace NAME=DIR) is required")
		os.Exit(2)
	}

	q, err := buildQuery(*queryJSON, *queryFile, filter, *groupBy, *metrics)
	if err != nil {
		fatal(err)
	}
	plan, err := fleet.Compile(q)
	if err != nil {
		fatal(err)
	}

	var store *serve.DiskStore
	if *reportDir != "" {
		if store, err = serve.NewDiskStore(*reportDir); err != nil {
			fatal(err)
		}
	}

	type candidate struct {
		dir    string
		digest string
	}
	byID := map[string]candidate{}
	candidates := make([]fleet.Trace, 0, len(traceArgs))
	for _, arg := range traceArgs {
		id, dir, ok := strings.Cut(arg, "=")
		if !ok {
			dir = arg
			id = filepath.Base(filepath.Clean(dir))
		}
		if _, dup := byID[id]; dup {
			fatal(fmt.Errorf("duplicate trace id %q (name traces explicitly with -trace NAME=DIR)", id))
		}
		digest, err := trace.DirDigest(dir)
		if err != nil {
			fatal(err)
		}
		r, err := trace.OpenDir(dir)
		if err != nil {
			fatal(err)
		}
		byID[id] = candidate{dir: dir, digest: digest}
		candidates = append(candidates, fleet.Trace{ID: id, Meta: r.Meta()})
	}

	load := func(ctx context.Context, t fleet.Trace) (map[trace.ProcID]*overlap.Result, error) {
		c := byID[t.ID]
		key := serve.ResultSetKey(c.digest)
		if store != nil {
			if body, ok := store.Get(key); ok {
				if results, err := report.DecodeResultSet(body); err == nil {
					return results, nil
				}
			}
		}
		rep, err := rlscope.NewEngine(rlscope.WithWorkers(*workers)).Analyze(ctx, rlscope.FromDir(c.dir))
		if err != nil {
			return nil, err
		}
		if store != nil {
			var buf bytes.Buffer
			if err := report.EncodeResultSet(&buf, rep.Results); err == nil {
				if err := store.Put(key, buf.Bytes()); err != nil {
					fmt.Fprintln(os.Stderr, "rlscope-query: warning:", err)
				}
			}
		}
		return rep.Results, nil
	}

	doc, err := plan.Execute(context.Background(), candidates, load)
	if err != nil {
		fatal(err)
	}
	if err := doc.Encode(os.Stdout); err != nil {
		fatal(err)
	}
}

// buildQuery assembles the fleet query from either the verbatim JSON
// (-query/-query-file) or the convenience flags; mixing the two modes is
// an error so there is never a question of which clause won.
func buildQuery(queryJSON, queryFile string, filter map[string]string, groupBy, metrics string) (fleet.Query, error) {
	var q fleet.Query
	raw := queryJSON
	if queryFile != "" {
		if raw != "" {
			return q, fmt.Errorf("-query and -query-file are mutually exclusive")
		}
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return q, err
		}
		raw = string(data)
	}
	if raw != "" {
		if len(filter) > 0 || groupBy != "" || metrics != "" {
			return q, fmt.Errorf("-query/-query-file and -filter/-group-by/-metrics are mutually exclusive")
		}
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			return q, fmt.Errorf("bad -query document: %w", err)
		}
		return q, nil
	}
	if len(filter) > 0 {
		q.Filter = filter
	}
	q.GroupBy = splitCSV(groupBy)
	q.Metrics = splitCSV(metrics)
	return q, nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlscope-query:", err)
	os.Exit(1)
}
