// Command rlscope-prof is the rls-prof analogue: it runs one RL training
// workload under the profiler, writes the event trace to disk, analyzes it,
// and prints the cross-stack time breakdown.
//
// Usage:
//
//	rlscope-prof -algo TD3 -env Walker2D -framework graph -steps 2000 -out /tmp/trace
//	rlscope-prof -algo TD3 -env Walker2D -steps 2000 -serve http://localhost:8080 -trace-id run42
//
// With -serve, the trace is streamed chunk-by-chunk into a live
// rlscope-serve store (POST /v1/traces/{id}/chunks) and sealed, instead of
// (or in addition to) being written to a local -out directory.
//
// Repeatable -label k=v flags annotate the trace metadata; fleet queries
// (rlscope-query, POST /v1/query) filter and group traces by these labels.
//
// Every trace records its originating host (os.Hostname() unless -host
// overrides it); -distributed actors=N instead simulates an actor/learner
// cluster, writing one trace directory per simulated host plus a
// manifest.json under -out, ready for rlscope-merge.
//
// Frameworks: graph (stable-baselines), autograph (tf-agents),
// eager-tf (tf-agents eager), eager-pytorch (ReAgent).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/client"
	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func parseModel(s string) (backend.ExecModel, error) {
	switch strings.ToLower(s) {
	case "graph":
		return backend.Graph, nil
	case "autograph":
		return backend.Autograph, nil
	case "eager-tf", "eager":
		return backend.EagerTF, nil
	case "eager-pytorch", "pytorch":
		return backend.EagerPyTorch, nil
	default:
		return 0, fmt.Errorf("unknown framework %q (graph|autograph|eager-tf|eager-pytorch)", s)
	}
}

func main() {
	labels := map[string]string{}
	flag.Func("label", "attach a k=v label to the trace metadata (repeatable); fleet queries filter and group by labels", func(v string) error {
		k, val, ok := strings.Cut(v, "=")
		if !ok || k == "" {
			return fmt.Errorf("want -label key=value, got %q", v)
		}
		labels[k] = val
		return nil
	})
	var (
		algo      = flag.String("algo", "TD3", "RL algorithm: "+strings.Join(workloads.AlgorithmNames, "|"))
		env       = flag.String("env", "Walker2D", "simulator: AirLearning|Ant|HalfCheetah|Hopper|Pong|Walker2D")
		framework = flag.String("framework", "graph", "execution model / RL framework")
		steps     = flag.Int("steps", 2000, "environment steps to train for")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "trace output directory (omit to skip writing)")
		format    = flag.String("format", "v1", "chunk encoding for -out and -serve: v1 (row) or v2 (columnar)")
		serveURL  = flag.String("serve", "", "rlscope-serve base URL to stream the trace to (e.g. http://localhost:8080)")
		traceID   = flag.String("trace-id", "", "trace id to stream under (with -serve; default: the workload name)")
		instrOff  = flag.Bool("uninstrumented", false, "disable all profiler book-keeping")
		csv       = flag.Bool("csv", false, "emit the breakdown as CSV instead of a table")
		validate  = flag.Bool("validate", false, "calibrate, then validate overhead correction on this workload")
		host      = flag.String("host", "", "originating host recorded in the trace metadata (default: os.Hostname())")
		distrib   = flag.String("distributed", "", "simulate an actor/learner cluster, e.g. actors=3; writes one trace dir per host plus manifest.json under -out")
	)
	flag.Parse()

	model, err := parseModel(*framework)
	if err != nil {
		fatal(err)
	}
	chunkFormat, err := trace.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	if *validate {
		spec := workloads.Spec{Algo: *algo, Env: *env, Model: model, TotalSteps: *steps}
		fmt.Fprintf(os.Stderr, "rlscope-prof: calibrating and validating %s (7 runs)\n", spec.Name())
		v, err := calib.Validate(spec.Name(), workloads.Runner(spec), *seed, *seed+1000)
		if err != nil {
			fatal(err)
		}
		fmt.Println(v)
		return
	}
	flags := trace.Full()
	if *instrOff {
		flags = trace.Uninstrumented()
	}
	if *distrib != "" {
		if err := runDistributed(*distrib, *algo, *env, model, *steps, *seed, *out, chunkFormat, flags, labels); err != nil {
			fatal(err)
		}
		return
	}
	if *host == "" {
		*host, _ = os.Hostname()
	}
	spec := workloads.Spec{
		Algo: *algo, Env: *env, Model: model, TotalSteps: *steps, Seed: *seed,
	}
	fmt.Fprintf(os.Stderr, "rlscope-prof: running %s (%d steps, %s)\n", spec.Name(), *steps, flags)
	stats, err := workloads.Run(spec, flags)
	if err != nil {
		fatal(err)
	}
	if len(labels) > 0 {
		stats.Trace.Meta.Labels = labels
	}
	stats.Trace.Meta.Host = *host
	if *out != "" {
		w, err := trace.NewWriter(*out, 0, trace.WithFormat(chunkFormat))
		if err != nil {
			fatal(err)
		}
		w.Append(stats.Trace.Events...)
		if err := w.Close(stats.Trace.Meta); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rlscope-prof: wrote %d events to %s\n", len(stats.Trace.Events), *out)
	}
	if *serveURL != "" {
		// Live ingest: stream the trace chunk-by-chunk into a running
		// rlscope-serve store and seal it — the same frames a local -out
		// write produces, delivered over the typed client's network sink.
		id := *traceID
		if id == "" {
			id = strings.ReplaceAll(spec.Name(), "/", "-")
		}
		c := client.New(*serveURL)
		ctx := context.Background()
		if _, err := c.Register(ctx, id); err != nil {
			fatal(err)
		}
		w := trace.NewSinkWriter(c.Sink(ctx, id), 0, trace.WithFormat(chunkFormat))
		w.Append(stats.Trace.Events...)
		if err := w.Close(stats.Trace.Meta); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rlscope-prof: streamed %d events to %s as trace %q\n",
			len(stats.Trace.Events), *serveURL, id)
	}
	res := overlap.Compute(stats.Trace.ProcEvents(0))
	b := report.FromResult(spec.Name(), res, report.SortedOps(res))
	if *csv {
		fmt.Print(report.CSV([]*report.Breakdown{b}))
		return
	}
	fmt.Print(report.Table("RL-Scope time breakdown", []*report.Breakdown{b}))
	fmt.Print(report.TransitionTable("Language transitions",
		report.Transitions(spec.Name(), res, report.SortedOps(res))))
	fmt.Printf("total training time: %v\n", stats.Total)
}

// manifest indexes a distributed run's per-host trace directories so
// rlscope-merge (and scripts) can pick them up without globbing.
type manifest struct {
	Workload string         `json:"workload"`
	Actors   int            `json:"actors"`
	Steps    int            `json:"steps"`
	Seed     int64          `json:"seed"`
	Hosts    []manifestHost `json:"hosts"`
}

type manifestHost struct {
	Host   string `json:"host"`
	Dir    string `json:"dir"` // relative to the manifest's directory
	Events int    `json:"events"`
	// SkewNS is the injected ground-truth clock-origin skew. A real
	// cluster would not know this; it is recorded so experiments can
	// score rlscope-merge's trace-only offset recovery against truth.
	SkewNS int64 `json:"skew_ns"`
}

// runDistributed handles -distributed: simulate the actor/learner cluster
// and write one trace directory per host plus manifest.json under out.
func runDistributed(arg, algo, env string, model backend.ExecModel, steps int, seed int64, out string, format trace.Format, flags trace.FeatureFlags, labels map[string]string) error {
	k, v, ok := strings.Cut(arg, "=")
	if !ok || k != "actors" {
		return fmt.Errorf("want -distributed actors=N, got %q", arg)
	}
	actors, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("want -distributed actors=N, got %q: %v", arg, err)
	}
	if out == "" {
		return fmt.Errorf("-distributed needs -out: each simulated host writes its own trace directory")
	}
	spec := workloads.DistributedSpec{
		Actors: actors, Algo: algo, Env: env, Model: model,
		TotalSteps: steps, Seed: seed,
	}
	fmt.Fprintf(os.Stderr, "rlscope-prof: running %s (%d steps/actor, %d hosts, %s)\n",
		spec.Name(), steps, actors+1, flags)
	runs, err := workloads.RunDistributed(spec, flags)
	if err != nil {
		return err
	}
	man := manifest{Workload: spec.Name(), Actors: actors, Steps: steps, Seed: seed}
	for _, r := range runs {
		if len(labels) > 0 {
			r.Trace.Meta.Labels = labels
		}
		dir := filepath.Join(out, r.Host)
		w, err := trace.NewWriter(dir, 0, trace.WithFormat(format))
		if err != nil {
			return err
		}
		w.Append(r.Trace.Events...)
		if err := w.Close(r.Trace.Meta); err != nil {
			return err
		}
		man.Hosts = append(man.Hosts, manifestHost{
			Host: r.Host, Dir: r.Host, Events: len(r.Trace.Events), SkewNS: int64(r.Skew),
		})
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "manifest.json"), append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rlscope-prof: wrote %d host trace dirs + manifest.json to %s\n", len(runs), out)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlscope-prof:", err)
	os.Exit(1)
}
