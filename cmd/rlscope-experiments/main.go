// Command rlscope-experiments regenerates the paper's tables and figures
// (see DESIGN.md's per-experiment index) and prints them as text tables.
//
// Usage:
//
//	rlscope-experiments -run all
//	rlscope-experiments -run fig4,fig5 -steps 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
)

var order = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig11", "c4", "scaling", "stream",
}

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment ids: "+strings.Join(order, ","))
		steps = flag.Int("steps", 0, "environment-step budget per workload (0 = per-figure default)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	want := map[string]bool{}
	if *run == "all" {
		for _, id := range order {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	// Ctrl-C cancels the experiment pipelines' context: the harnesses stop
	// dispatching replay/analysis jobs, drain the in-flight ones, and the
	// loop below stops before the next experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := experiments.Options{Steps: *steps, Seed: *seed, Context: ctx}

	for _, id := range order {
		if !want[id] {
			continue
		}
		delete(want, id)
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "rlscope-experiments: interrupted before %s: %v\n", id, err)
			os.Exit(130)
		}
		if err := runOne(id, opts); err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "rlscope-experiments: %s interrupted: %v\n", id, err)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "rlscope-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	for id := range want {
		fmt.Fprintf(os.Stderr, "rlscope-experiments: unknown experiment %q\n", id)
		os.Exit(2)
	}
}

func runOne(id string, opts experiments.Options) error {
	switch id {
	case "table1":
		fmt.Println(experiments.RenderTable1())
	case "fig3":
		fmt.Println(experiments.Figure3().Render())
	case "fig4":
		r, err := experiments.Figure4(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig5":
		r, err := experiments.Figure5(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig6":
		fmt.Println(experiments.RenderFigure6())
	case "fig7":
		r, err := experiments.Figure7(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig8":
		r, err := experiments.Figure8(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig9":
		r, err := experiments.Figure9(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig10":
		r, err := experiments.Figure10(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig11":
		r, err := experiments.Figure11(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "c4":
		r, err := experiments.AppendixC4(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "scaling":
		r, err := experiments.Figure8Scaling(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "stream":
		r, err := experiments.StreamReplay(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	default:
		return fmt.Errorf("unknown experiment id")
	}
	return nil
}
