// Command rlscope-analyze performs RL-Scope's offline analysis on a trace
// directory previously written by rlscope-prof: the cross-stack overlap
// breakdown per process through the rlscope.Engine, with the worker pool
// sized by -workers; results are identical for every pool size.
//
// By default the trace is analyzed *streamingly*: chunk files are decoded
// lazily and fed to the shard pool as they arrive, so memory stays bounded
// by -max-resident instead of the trace size. Report modes that need the
// whole event list at once (-summary, -timeline, -tree, -phases) — or an
// explicit -materialize — load the trace as before; the results are
// byte-identical either way.
//
// Ctrl-C (or SIGTERM) cancels the analysis cleanly: in-flight workers are
// drained, and a streaming run reports the partial streaming statistics it
// accumulated instead of dying mid-write.
//
// -json swaps the text tables for the stable JSON document of
// internal/report — the same document rlscope-serve answers POST /analyze
// with (byte-identical at -workers 1, where the scheduling-stats block is
// deterministic too), so CLI and service outputs are interchangeable.
//
// Usage:
//
//	rlscope-analyze -trace /tmp/trace [-workers N] [-max-resident BYTES] [-materialize] [-json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	rlscope "repro"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		dir         = flag.String("trace", "", "trace directory (required)")
		csv         = flag.Bool("csv", false, "emit CSV instead of tables")
		phases      = flag.Bool("phases", false, "also print per-phase breakdowns")
		summary     = flag.Bool("summary", false, "print trace statistics (event counts, top kernels)")
		timeline    = flag.Bool("timeline", false, "render an ASCII timeline of process 0")
		tree        = flag.Bool("tree", false, "render the multi-process fork tree (Figure 8 style)")
		workers     = flag.Int("workers", 0, "analysis worker pool size (0 = one per CPU)")
		maxResident = flag.Int64("max-resident", 0, "streaming memory budget in bytes (0 = unbounded)")
		materialize = flag.Bool("materialize", false, "force load-then-analyze instead of streaming")
		jsonOut     = flag.Bool("json", false, "emit the analysis as the stable JSON document rlscope-serve serves")
		resultOnly  = flag.Bool("result-only", false, "with -json: omit the run-descriptive stats block, matching the document live-ingested traces serve")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "rlscope-analyze: -trace is required")
		os.Exit(2)
	}
	// The report modes below force materialization, which loads the whole
	// trace regardless of any streaming budget. A -max-resident that can't
	// be honored is a conflict, not a preference — reject it instead of
	// silently analyzing at full residency.
	if *maxResident > 0 && (*materialize || *summary || *timeline || *tree || *phases) {
		fmt.Fprintln(os.Stderr, "rlscope-analyze: -max-resident conflicts with -materialize/-summary/-timeline/-tree/-phases: those modes materialize the whole trace, so the budget cannot be honored; drop -max-resident or the materializing flag")
		os.Exit(2)
	}
	// -json emits the one canonical document; the human report modes write
	// interleaved text, so combining them would corrupt both outputs.
	if *jsonOut && (*csv || *summary || *timeline || *tree || *phases) {
		fmt.Fprintln(os.Stderr, "rlscope-analyze: -json cannot be combined with -csv/-summary/-timeline/-tree/-phases")
		os.Exit(2)
	}
	if *resultOnly && !*jsonOut {
		fmt.Fprintln(os.Stderr, "rlscope-analyze: -result-only requires -json")
		os.Exit(2)
	}

	// Ctrl-C cancels the engine's context; every worker is drained before
	// Analyze returns, so the partial-stats report below never races an
	// in-flight shard computation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng := rlscope.NewEngine(
		rlscope.WithWorkers(*workers),
		rlscope.WithMaxResidentBytes(*maxResident),
	)

	// -phases and the report modes below consume the full event list, so
	// they force materialization; plain breakdowns stream.
	needTrace := *materialize || *summary || *timeline || *tree || *phases

	var (
		tr  *trace.Trace
		src rlscope.Source
	)
	if needTrace {
		var err error
		tr, err = trace.ReadDir(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlscope-analyze:", err)
			os.Exit(1)
		}
		src = rlscope.FromTrace(tr)
	} else {
		src = rlscope.FromDir(*dir)
	}

	rep, err := eng.Analyze(ctx, src)
	if err != nil {
		if ctx.Err() != nil && rep != nil {
			// Interrupted: report how far the run got instead of dying
			// mid-write. The stats are complete up to the cancellation
			// point; results are discarded.
			st := rep.Stats
			fmt.Fprintf(os.Stderr, "rlscope-analyze: interrupted: %v\n", err)
			fmt.Fprintf(os.Stderr, "rlscope-analyze: partial progress: %d of %d chunks decoded (%d events), %d window computations dispatched, peak resident %d events (%d bytes), %d evictions\n",
				st.ChunksDecoded, st.Chunks, st.Events, st.Shards, st.PeakResidentEvents, st.PeakResidentBytes, st.Evictions)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "rlscope-analyze:", err)
		os.Exit(1)
	}
	meta := rep.Meta
	results := rep.Results
	if *jsonOut {
		// The same document rlscope-serve answers POST /analyze with:
		// same construction, same encoder, byte-identical output for the
		// same trace and options. -result-only drops the stats block,
		// leaving the pure-function-of-content document the live-ingest
		// path serves — the form CI compares incremental vs offline.
		doc := report.NewAnalysis(meta, results, rep.Stats, rep.Corrected)
		if *resultOnly {
			doc = report.NewResultAnalysis(meta, results, rep.Corrected)
		}
		if err := doc.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rlscope-analyze:", err)
			os.Exit(1)
		}
		return
	}
	if !needTrace {
		fmt.Fprintf(os.Stderr, "rlscope-analyze: streamed %d chunks, peak resident %d events\n",
			rep.Stats.Chunks, rep.Stats.PeakResidentEvents)
	}
	fmt.Fprintf(os.Stderr, "rlscope-analyze: %s (%d events, flags %s)\n",
		meta.Workload, rep.Stats.Events, meta.Config)

	if *summary {
		fmt.Print(trace.Summarize(tr))
		fmt.Println()
	}
	if *timeline {
		start, end := tr.Span()
		fmt.Print(report.Timeline(tr.ProcEvents(0), start, end, 100))
		fmt.Println()
	}
	if *tree {
		fmt.Print(report.ProcessTree(tr, results))
		fmt.Println()
	}
	var rows []*report.Breakdown
	for _, p := range sortedProcs(results) {
		res := results[p]
		label := meta.Procs[p].Name
		if label == "" {
			label = fmt.Sprintf("proc%d", p)
		}
		rows = append(rows, report.FromResult(label, res, report.SortedOps(res)))
	}
	if *csv {
		fmt.Print(report.CSV(rows))
		return
	}
	fmt.Print(report.Table("RL-Scope time breakdown: "+meta.Workload, rows))
	if *phases {
		names := map[trace.ProcID]string{}
		for p, info := range meta.Procs {
			names[p] = info.Name
		}
		fmt.Print(report.PhaseTable("Training phases", overlap.PhasesByProc(tr), names))
	}
}

// sortedProcs returns the result map's process IDs in ascending order — the
// same order trace.ProcIDs yields for a materialized trace.
func sortedProcs(results map[trace.ProcID]*overlap.Result) []trace.ProcID {
	procs := make([]trace.ProcID, 0, len(results))
	for p := range results {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return procs
}
