// Command rlscope-analyze performs RL-Scope's offline analysis on a trace
// directory previously written by rlscope-prof: the cross-stack overlap
// breakdown per process, with optional overhead correction. The overlap
// computation fans (process, phase) shards out over a worker pool sized by
// -workers; results are identical for every pool size.
//
// Usage:
//
//	rlscope-analyze -trace /tmp/trace [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		dir      = flag.String("trace", "", "trace directory (required)")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables")
		phases   = flag.Bool("phases", false, "also print per-phase breakdowns")
		summary  = flag.Bool("summary", false, "print trace statistics (event counts, top kernels)")
		timeline = flag.Bool("timeline", false, "render an ASCII timeline of process 0")
		tree     = flag.Bool("tree", false, "render the multi-process fork tree (Figure 8 style)")
		workers  = flag.Int("workers", 0, "analysis worker pool size (0 = one per CPU)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "rlscope-analyze: -trace is required")
		os.Exit(2)
	}
	tr, err := trace.ReadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlscope-analyze:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rlscope-analyze: %s (%d events, flags %s)\n",
		tr.Meta.Workload, len(tr.Events), tr.Meta.Config)

	if *summary {
		fmt.Print(trace.Summarize(tr))
		fmt.Println()
	}
	if *timeline {
		start, end := tr.Span()
		fmt.Print(report.Timeline(tr.ProcEvents(0), start, end, 100))
		fmt.Println()
	}

	results := analysis.Run(tr, analysis.Options{Workers: *workers})
	if *tree {
		fmt.Print(report.ProcessTree(tr, results))
		fmt.Println()
	}
	var rows []*report.Breakdown
	for _, p := range tr.ProcIDs() {
		res := results[p]
		label := tr.Meta.Procs[p].Name
		if label == "" {
			label = fmt.Sprintf("proc%d", p)
		}
		rows = append(rows, report.FromResult(label, res, report.SortedOps(res)))
	}
	if *csv {
		fmt.Print(report.CSV(rows))
		return
	}
	fmt.Print(report.Table("RL-Scope time breakdown: "+tr.Meta.Workload, rows))
	if *phases {
		names := map[trace.ProcID]string{}
		for p, info := range tr.Meta.Procs {
			names[p] = info.Name
		}
		fmt.Print(report.PhaseTable("Training phases", overlap.PhasesByProc(tr), names))
	}
}
