// Command rlscope-hyp evaluates the committed hypothesis grid — the
// paper's findings F.1–F.12 and this repo's own scaling claims, encoded as
// declarative experiments (see DESIGN.md §10) — and emits a machine-readable
// verdict document.
//
// Usage:
//
//	rlscope-hyp                                  # run hypotheses.json, verdicts to stdout
//	rlscope-hyp -out verdicts.json -gate         # CI: archive verdicts, fail on refuted deterministic
//	rlscope-hyp -ids F.1,F.10 -timing=false      # a subset, excluding wall-clock hypotheses
//	rlscope-hyp -list                            # show the grid without running it
//	rlscope-hyp -metrics fig4 -steps 800 -seed 42  # dump one experiment's metric bundle
//
// Exit status: 0 on success, 1 when -gate trips (a refuted deterministic
// hypothesis — always a bug; -strict extends this to any refuted
// hypothesis), 2 on usage errors, 130 on interrupt.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/hypmetrics"
	"repro/internal/hypothesis"
)

func main() {
	var (
		gridPath = flag.String("grid", "hypotheses.json", "experiment grid to evaluate")
		ids      = flag.String("ids", "", "comma-separated hypothesis ids (default: all)")
		steps    = flag.Int("steps", 0, "override every hypothesis's step budget (0 = grid scale; verdicts are calibrated at grid scale)")
		timing   = flag.Bool("timing", true, "include wall-clock (timing) hypotheses; disable for byte-deterministic output")
		out      = flag.String("out", "", "write the verdict document to this file (default: stdout)")
		gate     = flag.Bool("gate", false, "exit 1 when any deterministic hypothesis is refuted")
		strict   = flag.Bool("strict", false, "with -gate, also fail on refuted statistical hypotheses")
		list     = flag.Bool("list", false, "print the grid's hypotheses without running them")
		metrics  = flag.String("metrics", "", "dump one experiment's metric bundle instead of evaluating (ids: "+strings.Join(hypmetrics.Experiments(), ",")+")")
		seed     = flag.Int64("seed", 1, "seed for -metrics")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metrics != "" {
		bundle, err := hypmetrics.Metrics(ctx, *metrics, *steps, *seed)
		if err != nil {
			fail(ctx, err)
		}
		emit(bundle, *out)
		return
	}

	grid, err := hypothesis.LoadGrid(*gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlscope-hyp: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, h := range grid.Hypotheses {
			timingNote := ""
			if h.Timing {
				timingNote = ", timing"
			}
			fmt.Printf("%-18s %-13s %-10s %d seeds%s  %s\n",
				h.ID, h.Class, h.Experiment, len(h.Seeds), timingNote, h.Title)
		}
		return
	}

	var idList []string
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			idList = append(idList, strings.TrimSpace(id))
		}
	}
	eval := hypothesis.NewEvaluator(hypmetrics.Metrics)
	doc, err := eval.Evaluate(grid, hypothesis.Options{
		IDs: idList, Timing: *timing, Steps: *steps, Context: ctx,
	})
	if err != nil {
		fail(ctx, err)
	}
	doc.Grid = *gridPath
	emit(doc, *out)

	for _, r := range doc.Results {
		fmt.Fprintf(os.Stderr, "rlscope-hyp: %-18s %s\n", r.ID, r.Verdict)
	}
	if *gate {
		if err := hypothesis.Gate(doc, *strict); err != nil {
			fmt.Fprintf(os.Stderr, "rlscope-hyp: gate: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "rlscope-hyp: gate passed")
	}
}

// emit writes v as deterministic, indented JSON to path or stdout.
func emit(v any, path string) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlscope-hyp: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if path == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rlscope-hyp: %v\n", err)
		os.Exit(1)
	}
}

// fail reports an evaluation error, distinguishing interruption (130) from
// failure (1).
func fail(ctx context.Context, err error) {
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "rlscope-hyp: interrupted: %v\n", err)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "rlscope-hyp: %v\n", err)
	os.Exit(1)
}
