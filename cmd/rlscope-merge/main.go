// Command rlscope-merge combines the per-host trace directories of one
// distributed run into a single causally-ordered trace directory the
// regular analysis tools (rlscope-analyze, rlscope-serve, rlscope-query)
// consume unchanged.
//
// Usage:
//
//	rlscope-merge -out /tmp/merged /tmp/dist/learner /tmp/dist/actor00 /tmp/dist/actor01
//	rlscope-merge -out /tmp/merged -manifest /tmp/dist/manifest.json
//
// Host clocks are aligned from the paired net.send/net.recv events the
// profiler records for every cross-host message; merges whose traffic
// bounds the inter-host clock offsets too loosely to order events are
// rejected (widen with -max-uncertainty only if you understand why).
// The output is a pure function of the input set: any permutation of the
// host directories produces byte-identical merged output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/multihost"
	"repro/internal/vclock"
)

func main() {
	var (
		out          = flag.String("out", "", "merged trace output directory (required)")
		manifestPath = flag.String("manifest", "", "manifest.json from rlscope-prof -distributed; its host dirs are merged (alternative to positional dirs)")
		maxUnc       = flag.Duration("max-uncertainty", 0, "largest acceptable clock-offset bracket half-width, e.g. 5ms (0 = default)")
		chunkBytes   = flag.Int("chunk-bytes", 0, "output chunk-size target in bytes (0 = writer default)")
		quiet        = flag.Bool("q", false, "suppress the per-host offset summary")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	dirs := flag.Args()
	if *manifestPath != "" {
		if len(dirs) > 0 {
			fatal(fmt.Errorf("pass either -manifest or positional host dirs, not both"))
		}
		var err error
		if dirs, err = manifestDirs(*manifestPath); err != nil {
			fatal(err)
		}
	}
	if len(dirs) < 2 {
		fatal(fmt.Errorf("need at least 2 host trace dirs (got %d); pass them as arguments or via -manifest", len(dirs)))
	}

	stats, err := multihost.Merge(*out, dirs, multihost.Options{
		MaxUncertainty: vclock.Duration(*maxUnc),
		ChunkBytes:     *chunkBytes,
	})
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "rlscope-merge: aligned %d hosts from %d cross-host messages\n",
			len(stats.Hosts), stats.Messages)
		for _, h := range stats.Hosts {
			fmt.Fprintf(os.Stderr, "  %-12s shift %v\n", h, time.Duration(stats.Offsets[h]))
		}
	}
	fmt.Fprintf(os.Stderr, "rlscope-merge: wrote %d events / %d procs to %s (digest %s)\n",
		stats.Events, stats.Procs, *out, stats.Digest)
}

// manifestDirs resolves the host trace directories listed in a
// rlscope-prof -distributed manifest, relative to the manifest's location.
func manifestDirs(path string) ([]string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var man struct {
		Hosts []struct {
			Dir string `json:"dir"`
		} `json:"hosts"`
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("parsing manifest %s: %w", path, err)
	}
	base := filepath.Dir(path)
	dirs := make([]string, len(man.Hosts))
	for i, h := range man.Hosts {
		if h.Dir == "" {
			return nil, fmt.Errorf("manifest %s: host entry %d has no dir", path, i)
		}
		dirs[i] = filepath.Join(base, h.Dir)
	}
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlscope-merge:", err)
	os.Exit(1)
}
