// Command rlscope-benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output, aggregates repeated runs, compares the minimum
// ns/op — plus minimum B/op and allocs/op where the benchmark reports
// allocations — per benchmark against a committed baseline with tolerance
// multipliers, and exits non-zero on regression (or when a gated benchmark
// stopped running). See internal/benchgate for the noise policy.
//
// Usage:
//
//	go test -run '^$' -bench 'Parallel|Streaming' -count=5 . | tee bench.txt
//	rlscope-benchgate -bench bench.txt -baseline BENCH_BASELINE.json -out bench_new.json
//	rlscope-benchgate -bench bench.txt -baseline BENCH_BASELINE.json -update  # refresh baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchgate"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "file with `go test -bench` output (- for stdin; required)")
		basePath  = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline JSON")
		tolerance = flag.Float64("tolerance", 0, "allowed slowdown multiplier (0 = use baseline's)")
		allocTol  = flag.Float64("alloc-tolerance", 0, "allowed B/op and allocs/op multiplier (0 = use baseline's)")
		outPath   = flag.String("out", "", "write measured results as JSON (CI artifact)")
		note      = flag.String("note", "", "note to embed when writing -out/-update JSON")
		update    = flag.Bool("update", false, "rewrite the baseline from the measured results and exit")
	)
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "rlscope-benchgate: -bench is required")
		os.Exit(2)
	}
	var (
		data []byte
		err  error
	)
	if *benchPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*benchPath)
	}
	if err != nil {
		fatal(err)
	}
	results := benchgate.Parse(string(data))
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results found in %s", *benchPath))
	}

	if *update {
		tol, atol := *tolerance, *allocTol
		if tol <= 0 || atol <= 0 {
			if base, err := benchgate.LoadBaseline(*basePath); err == nil {
				if tol <= 0 {
					tol = base.Tolerance
				}
				if atol <= 0 {
					atol = base.AllocTolerance
				}
			}
		}
		if tol <= 0 {
			tol = benchgate.DefaultTolerance
		}
		if atol <= 0 {
			atol = benchgate.DefaultAllocTolerance
		}
		if err := benchgate.WriteJSON(*basePath, *note, tol, atol, results); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rlscope-benchgate: wrote %d benchmarks to %s\n", len(results), *basePath)
		return
	}

	base, err := benchgate.LoadBaseline(*basePath)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := benchgate.WriteJSON(*outPath, *note, base.Tolerance, base.AllocTolerance, results); err != nil {
			fatal(err)
		}
	}
	tol := *tolerance
	if tol <= 0 {
		tol = base.Tolerance
	}
	if tol <= 0 {
		tol = benchgate.DefaultTolerance
	}
	verdicts, failed := benchgate.Compare(base, results, tol, *allocTol)
	fmt.Print(benchgate.Report(verdicts, tol))
	if failed {
		fmt.Fprintln(os.Stderr, "rlscope-benchgate: FAIL — benchmark regression against", *basePath)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rlscope-benchgate: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlscope-benchgate:", err)
	os.Exit(1)
}
