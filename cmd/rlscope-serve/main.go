// Command rlscope-serve exposes RL-Scope's offline analysis as a long-
// running HTTP/JSON service over a repository of trace directories — the
// path from one-shot CLI analysis to shared, multi-user infrastructure.
//
// Traces are registered at startup (-trace, repeatable); each is addressed
// by a content digest of its chunk files, sidecar indexes, and metadata.
// Analysis reports are cached in a bounded LRU keyed by (digest,
// canonicalized options), concurrent identical requests are deduplicated
// into a single Engine run, and a global worker budget (-max-workers)
// bounds the service's total analysis parallelism. Client disconnects
// cancel analyses nobody is waiting for; SIGINT/SIGTERM drains in-flight
// requests before exiting.
//
// With -store DIR, the service is also a write path: profilers stream
// sequence-numbered chunk frames into server-owned trace directories under
// DIR (create-on-first-write, idempotent retries), and analysis of a live
// trace is incremental — chunks are batched into analysis epochs and only
// the (process, window) shards they touch are re-swept, so a report after
// a new chunk costs O(chunk) instead of O(trace).
//
// Endpoints:
//
//	GET  /healthz                      service, cache, and budget health
//	GET  /v1/traces                    all traces (id, digest, size, state);
//	                                   ?id= ?workload= ?label.k= glob filters
//	POST /v1/query                     fleet aggregation query over sealed
//	                                   traces; body: the fleet query DSL
//	POST /v1/traces                    open a live trace: {"id":"run42"}
//	GET  /v1/traces/{id}/summary       sidecar summary: processes, extents, fork tree
//	POST /v1/traces/{id}/analyze       run (or serve from cache) an analysis;
//	                                   body: {"workers":N, "max_resident_bytes":N,
//	                                          "correction":true, "procs":[...]}
//	POST /v1/traces/{id}/chunks?seq=N  append one chunk frame to a live trace
//	POST /v1/traces/{id}/seal          finalize a live trace with its run metadata
//
// Errors share the envelope {"error":{"code","message"}} with the stable
// code vocabulary of DESIGN.md §9.
//
// The analyze response body is the stable report.Analysis document
// `rlscope-analyze -json` prints: result fields are byte-identical for
// the same trace and options at any worker count, and at workers:1 the
// whole body is (the scheduling-stats block varies with worker
// interleaving above that).
//
// Usage:
//
//	rlscope-serve -listen :8080 -trace quickstart=/tmp/trace [-trace NAME=DIR ...] \
//	    [-store /var/lib/rlscope/traces] [-store-reports /var/lib/rlscope/reports] \
//	    [-cache-bytes N] [-max-workers N] [-calibration cal.json] [-drain-timeout 10s]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/calib"
	"repro/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "address to serve on")
		cacheBytes = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "report cache budget in bytes")
		maxWorkers = flag.Int("max-workers", 0, "global Engine worker budget shared across requests (0 = one per CPU)")
		calPath    = flag.String("calibration", "", "calibration JSON enabling {\"correction\":true} requests")
		drain      = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window for in-flight requests")
		storeDir   = flag.String("store", "", "trace store directory enabling live ingest (POST /v1/traces/{id}/chunks)")
		reportDir  = flag.String("store-reports", "", "persistent report store directory: cached reports and fleet result sets survive restarts and are shared by servers pointing at the same directory")
	)
	var traceArgs []string
	flag.Func("trace", "trace directory to register, as DIR or NAME=DIR (repeatable)", func(v string) error {
		traceArgs = append(traceArgs, v)
		return nil
	})
	flag.Parse()
	traceArgs = append(traceArgs, flag.Args()...)
	if len(traceArgs) == 0 && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "rlscope-serve: at least one -trace DIR (or NAME=DIR), or -store for live ingest, is required")
		os.Exit(2)
	}

	cfg := serve.Config{CacheBytes: *cacheBytes, MaxWorkers: *maxWorkers, StoreDir: *storeDir, ReportDir: *reportDir}
	if *calPath != "" {
		data, err := os.ReadFile(*calPath)
		if err != nil {
			fatal(err)
		}
		cal := &calib.Calibration{}
		if err := json.Unmarshal(data, cal); err != nil {
			fatal(fmt.Errorf("decoding calibration %s: %w", *calPath, err))
		}
		cfg.Calibration = cal
	}

	srv, err := serve.NewServerStrict(cfg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	for _, arg := range traceArgs {
		id, dir, ok := strings.Cut(arg, "=")
		if !ok {
			dir = arg
			id = filepath.Base(filepath.Clean(dir))
		}
		info, err := srv.AddDir(id, dir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rlscope-serve: registered %q (%s): %d chunks, %d events, %d procs, digest %.12s…\n",
			info.ID, dir, info.Chunks, info.Events, info.Procs, info.Digest)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rlscope-serve: listening on %s\n", *listen)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err) // the listener died on its own
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful shutdown: stop accepting, let in-flight requests (and the
	// Engine runs they wait on) finish within the drain window, then abort
	// whatever is left by cancelling the server's base context.
	fmt.Fprintln(os.Stderr, "rlscope-serve: draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = httpSrv.Shutdown(shCtx)
	srv.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlscope-serve: drain window expired, aborted in-flight analyses: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rlscope-serve: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlscope-serve:", err)
	os.Exit(1)
}
