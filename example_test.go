package rlscope_test

import (
	"context"
	"fmt"
	"os"

	rlscope "repro"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ExampleNew profiles a miniature training loop: annotate the high-level
// operations, let the interception wrappers record simulator/backend/CUDA
// activity, and collect the trace.
func ExampleNew() {
	p := rlscope.New(rlscope.Options{
		Workload: "example",
		Flags:    rlscope.FullInstrumentation(),
		Seed:     1,
	})
	dev := gpu.NewDevice(-1)
	sess := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())

	sess.SetPhase("training")
	for step := 0; step < 10; step++ {
		sess.WithOperation("inference", func() {
			sess.CallBackend("policy.forward", func() {
				ctx.LaunchKernel("dense", 3*vclock.Microsecond)
				ctx.StreamSynchronize()
			})
		})
		sess.WithOperation("simulation", func() {
			sess.CallSimulator("env.step", func() {
				sess.Clock().Advance(120 * vclock.Microsecond)
			})
		})
	}
	sess.Close()

	tr := p.MustTrace()
	rep, err := rlscope.NewEngine().Analyze(context.Background(), rlscope.FromTrace(tr))
	if err != nil {
		panic(err)
	}
	res := rep.Results[sess.Proc()]
	// "(untracked)" is the profiler's own book-keeping time between
	// operations — the overhead that Calibrate measures and WithCorrection
	// subtracts.
	fmt.Println("operations:", res.OpNames())
	fmt.Println("simulation slower than inference:",
		res.OpTotal("simulation") > res.OpTotal("inference"))
	fmt.Println("inference ran GPU kernels:", res.GPUTime("inference") > 0)
	// Output:
	// operations: [(untracked) inference simulation]
	// simulation slower than inference: true
	// inference ran GPU kernels: true
}

// ExampleEngine runs the cross-stack overlap computation over the paper's
// Figure 3 worked example: an mcts_tree_search operation containing two
// expand_leaf operations, each overlapping a GPU kernel.
func ExampleEngine() {
	ms := func(f float64) vclock.Time { return vclock.Time(f * float64(vclock.Millisecond)) }
	tr := &rlscope.Trace{Events: []rlscope.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: ms(0), End: ms(3.74), Name: "python"},
		{Kind: trace.KindOp, Start: ms(0), End: ms(3.74), Name: "mcts_tree_search"},
		{Kind: trace.KindOp, Start: ms(0.75), End: ms(2.10), Name: "expand_leaf"},
		{Kind: trace.KindOp, Start: ms(2.60), End: ms(3.74), Name: "expand_leaf"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(1.05), End: ms(1.90), Name: "expand"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(2.75), End: ms(3.60), Name: "expand"},
	}}
	rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(context.Background(), rlscope.FromTrace(tr))
	if err != nil {
		panic(err)
	}
	res := rep.Results[0]
	fmt.Println("CPU, mcts_tree_search:", res.CPUTime("mcts_tree_search")-res.GPUTime("mcts_tree_search"))
	fmt.Println("GPU+CPU, expand_leaf: ", res.GPUTime("expand_leaf"))
	// Output:
	// CPU, mcts_tree_search: 1.25ms
	// GPU+CPU, expand_leaf:  1.7ms
}

// ExampleEngine_streaming analyzes a chunked trace directory with bounded
// memory: chunks decode lazily and each (process, phase) shard is analyzed
// as soon as its last contributing chunk arrives. The result is
// byte-identical to analyzing the materialized trace.
func ExampleEngine_streaming() {
	p := rlscope.New(rlscope.Options{Workload: "streaming-example", Seed: 7})
	sess := p.NewProcess("trainer", -1, 0)
	sess.SetPhase("training")
	for i := 0; i < 50; i++ {
		sess.WithOperation("inference", func() {
			sess.Clock().Advance(vclock.Millisecond)
		})
	}
	sess.Close()

	dir, err := os.MkdirTemp("", "rlscope-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	if err := p.WriteTo(dir); err != nil {
		panic(err)
	}

	eng := rlscope.NewEngine(
		rlscope.WithWorkers(2),
		rlscope.WithMaxResidentBytes(32<<10), // keep ≤ ~32 KiB of decoded events resident
	)
	streamed, err := eng.Analyze(context.Background(), rlscope.FromDir(dir))
	if err != nil {
		panic(err)
	}
	materialized, err := eng.Analyze(context.Background(), rlscope.FromTrace(mustReadDir(dir)))
	if err != nil {
		panic(err)
	}
	fmt.Println("inference time:", streamed.Results[0].OpTotal("inference"))
	fmt.Println("identical to materialized analysis:",
		streamed.Results[0].OpTotal("inference") == materialized.Results[0].OpTotal("inference"))
	// Output:
	// inference time: 50ms
	// identical to materialized analysis: true
}

func mustReadDir(dir string) *rlscope.Trace {
	tr, err := trace.ReadDir(dir)
	if err != nil {
		panic(err)
	}
	return tr
}

// exampleRunner replays the same workload under the feature-flag subsets
// calibration requests.
func exampleRunner() rlscope.Runner {
	return func(flags rlscope.FeatureFlags, seed int64) (*rlscope.RunStats, error) {
		p := rlscope.New(rlscope.Options{Workload: "calib-example", Flags: flags, Seed: seed})
		dev := gpu.NewDevice(-1)
		sess := p.NewProcess("trainer", -1, 0)
		ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())
		for i := 0; i < 50; i++ {
			sess.WithOperation("step", func() {
				sess.CallBackend("train", func() {
					ctx.LaunchKernel("k", 3*vclock.Microsecond)
					ctx.StreamSynchronize()
				})
			})
		}
		sess.Close()
		return rlscope.StatsFromTrace(p.MustTrace(), flags, p.OverheadCounts(), p.TotalTime()), nil
	}
}

// ExampleCalibrate measures the profiler's own book-keeping costs and
// subtracts them from an instrumented trace (§3.4, Appendix C).
func ExampleCalibrate() {
	runner := exampleRunner()
	cal, err := rlscope.Calibrate(runner, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("interception cost calibrated:", cal.Interception > 0)
	fmt.Println("CUDA hook cost calibrated:   ", cal.CUDAIntercept > 0)

	// Correct an instrumented run: overhead is subtracted at the points
	// where the book-keeping occurred, and the markers disappear.
	stats, _ := runner(rlscope.FullInstrumentation(), 99)
	corrected := rlscope.Correct(stats.Trace, cal)
	fmt.Println("overhead markers removed:    ", corrected.CountKind(trace.KindOverhead) == 0)
	// Output:
	// interception cost calibrated: true
	// CUDA hook cost calibrated:    true
	// overhead markers removed:     true
}

// ExampleWithCorrection composes calibration into the Engine: the streaming
// analysis corrects each event in flight, producing overhead-corrected
// breakdowns under a memory budget without materializing the corrected
// trace — byte-identical to Correct-then-analyze.
func ExampleWithCorrection() {
	runner := exampleRunner()
	cal, err := rlscope.Calibrate(runner, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	stats, _ := runner(rlscope.FullInstrumentation(), 99)

	dir, err := os.MkdirTemp("", "rlscope-corrected-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	w, err := trace.NewWriter(dir, 4<<10)
	if err != nil {
		panic(err)
	}
	w.Append(stats.Trace.Events...)
	if err := w.Close(stats.Trace.Meta); err != nil {
		panic(err)
	}

	eng := rlscope.NewEngine(
		rlscope.WithCorrection(cal),
		rlscope.WithMaxResidentBytes(16<<10),
	)
	rep, err := eng.Analyze(context.Background(), rlscope.FromDir(dir))
	if err != nil {
		panic(err)
	}
	materialized, err := rlscope.NewEngine().Analyze(
		context.Background(), rlscope.FromTrace(rlscope.Correct(stats.Trace, cal)))
	if err != nil {
		panic(err)
	}
	fmt.Println("corrected streaming ran:", rep.Corrected)
	fmt.Println("matches Correct-then-analyze:",
		rep.Results[0].OpTotal("step") == materialized.Results[0].OpTotal("step"))
	// Output:
	// corrected streaming ran: true
	// matches Correct-then-analyze: true
}

// ExampleEngine_parallel analyzes a multi-process trace with a parallel
// worker pool; results are byte-identical to the sequential run at any
// pool size.
func ExampleEngine_parallel() {
	p := rlscope.New(rlscope.Options{Workload: "parallel-example", Seed: 7})
	for w := 0; w < 4; w++ {
		sess := p.NewProcess(fmt.Sprintf("worker%d", w), -1, 0)
		sess.SetPhase("selfplay")
		for i := 0; i < 5; i++ {
			sess.WithOperation("mcts", func() {
				sess.Clock().Advance(vclock.Millisecond)
			})
		}
		sess.Close()
	}
	tr := p.MustTrace()

	rep, err := rlscope.NewEngine(rlscope.WithWorkers(4)).Analyze(
		context.Background(), rlscope.FromTrace(tr))
	if err != nil {
		panic(err)
	}
	fmt.Println("processes analyzed:", len(rep.Results))
	fmt.Println("worker0 mcts time:  ", rep.Results[0].OpTotal("mcts"))
	// Output:
	// processes analyzed: 4
	// worker0 mcts time:   5ms
}
