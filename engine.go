package rlscope

import (
	"context"
	"errors"

	"repro/internal/analysis"
	"repro/internal/calib"
	"repro/internal/trace"
)

// Source is one run's worth of events offered to Engine.Analyze: an
// in-memory trace (FromTrace) or chunked on-disk storage streamed with
// bounded memory (FromDir, FromReader). See trace.Source for the contract
// custom sources must meet.
type Source = trace.Source

// TraceReader streams a chunked trace directory lazily: chunk files decode
// one at a time into a reusable buffer and planning metadata is served from
// sidecar indexes. Its methods are not safe for concurrent use.
type TraceReader = trace.Reader

// Meta is run-level metadata stored alongside a trace's event chunks.
type Meta = trace.Meta

// OpenTraceDir opens a chunked trace directory previously written by
// Profiler.WriteTo or rlscope-prof, decoding no events. Wrap the reader
// with FromReader to analyze it.
func OpenTraceDir(dir string) (*TraceReader, error) { return trace.OpenDir(dir) }

// FromTrace returns a Source over an already-materialized trace.
func FromTrace(t *Trace) Source { return trace.FromTrace(t) }

// FromDir returns a streaming Source over a chunked trace directory; the
// directory is opened lazily on first analysis.
func FromDir(dir string) Source { return trace.FromDir(dir) }

// FromReader returns a streaming Source over an open TraceReader.
func FromReader(r *TraceReader) Source { return trace.FromReader(r) }

// Progress is one notification from a running analysis: the pipeline stage
// (analysis.StageCorrect during a streaming correction pre-pass,
// analysis.StageAnalyze otherwise) plus monotonic chunk/shard/event
// counters. Callbacks run on the analyzing goroutine, so they need no
// locking — and cancelling the analysis context from inside one is the
// supported way to stop a run at a precise point.
type Progress = analysis.Progress

// Engine is the composable front end to RL-Scope's offline analysis: one
// cancellable Analyze call over any Source, configured once by functional
// options. The zero configuration (NewEngine with no options) analyzes
// every process with one worker per CPU, unbounded residency, and no
// correction — equivalent to the legacy free functions it supersedes.
//
// An Engine is immutable after construction and safe for concurrent use;
// one Engine can serve many Analyze calls (though a single streaming
// source must not be analyzed concurrently — see FromReader).
type Engine struct {
	workers     int
	maxResident int64
	cal         *Calibration
	progress    func(Progress)
	procs       []ProcID
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// NewEngine builds an Engine from functional options; nil options are
// ignored.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	for _, o := range opts {
		if o != nil {
			o(e)
		}
	}
	return e
}

// WithWorkers sets the analysis worker-pool size. Zero or negative (the
// default) selects one worker per available CPU; 1 runs strictly
// sequentially, with no goroutines. Results are byte-identical for every
// pool size.
func WithWorkers(n int) EngineOption { return func(e *Engine) { e.workers = n } }

// WithMaxResidentBytes bounds the estimated bytes of decoded events a
// streaming analysis keeps resident; complete window prefixes are finalized
// early to stay under the budget, without changing the result. Zero (the
// default) means unbounded. Materialized sources ignore the budget — the
// whole trace is resident by definition.
func WithMaxResidentBytes(n int64) EngineOption { return func(e *Engine) { e.maxResident = n } }

// WithCorrection makes the analysis subtract calibrated profiling overhead
// (paper §3.4) before computing overlaps. Materialized sources correct via
// Correct; streaming sources correct each event in flight — a pre-pass
// collects the overhead markers' calibrated costs, then the analysis pass
// streams under the usual memory budget. Both produce breakdowns
// byte-identical to Correct-then-Analyze on the materialized trace.
func WithCorrection(cal *Calibration) EngineOption { return func(e *Engine) { e.cal = cal } }

// WithProgress registers a callback receiving progress notifications (per
// chunk for streaming sources, per pipeline stage otherwise).
func WithProgress(fn func(Progress)) EngineOption { return func(e *Engine) { e.progress = fn } }

// WithProcesses restricts the analysis to the listed processes. Streaming
// analyses additionally skip decoding chunks that contribute to none of
// them. No arguments (the default) analyzes every process.
func WithProcesses(procs ...ProcID) EngineOption { return func(e *Engine) { e.procs = procs } }

// Report bundles everything one analysis produced.
type Report struct {
	// Results maps each analyzed process to its cross-stack overlap
	// breakdown.
	Results map[ProcID]*Result
	// Stats describes the streaming schedule (chunks decoded, shards
	// dispatched, peak residency). Stats.Events counts events read from
	// the source before any correction stage, whatever the source kind;
	// materialized sources report only that count. An error mid-way — a
	// cancelled correction pre-pass included — leaves the partial counts
	// here.
	Stats StreamStats
	// Meta is the run metadata the source carried. A corrected analysis
	// reports Config as Uninstrumented, exactly like Correct's output
	// trace: corrected results estimate the uninstrumented run.
	Meta Meta
	// Corrected reports whether the overhead-correction stage ran.
	Corrected bool
}

// Analyze runs the configured analysis over src. It returns as soon as ctx
// is cancelled — draining, never leaking, its worker goroutines — with
// ctx.Err(). On error the returned Report is still non-nil when any work
// was done, carrying the partial Stats (never partial Results), so callers
// can report how far an interrupted analysis got.
func (e *Engine) Analyze(ctx context.Context, src Source) (*Report, error) {
	if src == nil {
		return nil, errors.New("rlscope: Engine.Analyze: nil source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tr, r, err := src.Open()
	if err != nil {
		return nil, err
	}
	opts := analysis.Options{
		Workers:          e.workers,
		MaxResidentBytes: e.maxResident,
		Procs:            e.procs,
		Progress:         e.progress,
	}
	switch {
	case tr != nil:
		// Stats.Events counts events read from the source, before any
		// correction stage — the same quantity the streaming path reports.
		stats := StreamStats{Events: len(tr.Events)}
		if e.cal != nil {
			// Correct rewrites Meta.Config to Uninstrumented — the
			// corrected trace estimates the uninstrumented run — so both
			// corrected paths report the same Meta.
			tr = calib.Correct(tr, e.cal)
		}
		results, err := analysis.RunContext(ctx, tr, opts)
		if err != nil {
			return &Report{Meta: tr.Meta}, err
		}
		return &Report{
			Results:   results,
			Stats:     stats,
			Meta:      tr.Meta,
			Corrected: e.cal != nil,
		}, nil
	case r != nil:
		meta := r.Meta()
		if e.cal != nil {
			meta.Config = trace.Uninstrumented() // match Correct's corrected-trace metadata
			// Track the pre-pass in StreamStats shape so an error (or
			// cancellation) mid-pre-pass still reports partial progress.
			prepass := StreamStats{Chunks: r.NumChunks()}
			onChunk := func(done, total, events int) {
				prepass.ChunksDecoded, prepass.Events = done, events
				if e.progress != nil {
					e.progress(Progress{
						Stage:      analysis.StageCorrect,
						ChunksDone: done, Chunks: total, Events: events,
					})
				}
			}
			corr, err := calib.NewStreamCorrector(ctx, r, e.cal, e.procs, onChunk)
			if err != nil {
				return &Report{Stats: prepass, Meta: meta}, err
			}
			opts.Stage = corr
		}
		results, stats, err := analysis.RunStreamContext(ctx, r, opts)
		if err != nil {
			return &Report{Stats: stats, Meta: meta}, err
		}
		return &Report{Results: results, Stats: stats, Meta: meta, Corrected: e.cal != nil}, nil
	}
	return nil, errors.New("rlscope: source resolved to neither a trace nor a reader")
}
