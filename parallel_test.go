package rlscope

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// randomWorkloadTrace profiles a randomized multi-process workload: each
// process runs a random mix of annotated operations, simulator calls,
// backend calls with kernel launches, and phase changes, all on the seeded
// virtual clock.
func randomWorkloadTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	p := New(Options{Workload: "parallel-property", Flags: FullInstrumentation(), Seed: seed})
	dev := gpu.NewDevice(-1)
	procs := 2 + rng.Intn(3)
	ops := []string{"inference", "simulation", "backpropagation"}
	phases := []string{"collect", "train", "evaluate"}
	for pi := 0; pi < procs; pi++ {
		parent := trace.ProcID(-1)
		if pi > 0 {
			parent = 0
		}
		sess := p.NewProcess(fmt.Sprintf("worker%d", pi), parent, vclock.Time(rng.Intn(1000)))
		ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())
		steps := 20 + rng.Intn(60)
		for s := 0; s < steps; s++ {
			if rng.Intn(8) == 0 {
				sess.SetPhase(phases[rng.Intn(len(phases))])
			}
			sess.WithOperation(ops[rng.Intn(len(ops))], func() {
				switch rng.Intn(3) {
				case 0:
					sess.CallSimulator("env.step", func() {
						sess.Clock().Advance(vclock.Duration(1+rng.Intn(200)) * vclock.Microsecond)
					})
				case 1:
					sess.CallBackend("forward", func() {
						for k := 0; k < 1+rng.Intn(4); k++ {
							ctx.LaunchKernel("k", vclock.Duration(1+rng.Intn(9))*vclock.Microsecond)
						}
						if rng.Intn(2) == 0 {
							ctx.StreamSynchronize()
						}
					})
				default:
					sess.Python(vclock.Exact(vclock.Duration(1+rng.Intn(100)) * vclock.Microsecond))
				}
			})
		}
		sess.Close()
	}
	return p.MustTrace()
}

// renderResults serializes an analysis deterministically for byte-level
// comparison.
func renderResults(m map[ProcID]*Result) string {
	procs := make([]ProcID, 0, len(m))
	for p := range m {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var sb strings.Builder
	for _, p := range procs {
		r := m[p]
		fmt.Fprintf(&sb, "proc %d span [%d,%d]\n", p, r.SpanStart, r.SpanEnd)
		keys := make([]overlap.Key, 0, len(r.ByKey))
		for k := range r.ByKey {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Op != b.Op {
				return a.Op < b.Op
			}
			if a.Res != b.Res {
				return a.Res < b.Res
			}
			return a.Cat < b.Cat
		})
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %s/%v/%v = %d\n", k.Op, k.Res, k.Cat, r.ByKey[k])
		}
		tkeys := make([]overlap.TransitionKey, 0, len(r.Transitions))
		for k := range r.Transitions {
			tkeys = append(tkeys, k)
		}
		sort.Slice(tkeys, func(i, j int) bool {
			if tkeys[i].Op != tkeys[j].Op {
				return tkeys[i].Op < tkeys[j].Op
			}
			return tkeys[i].Label < tkeys[j].Label
		})
		for _, k := range tkeys {
			fmt.Fprintf(&sb, "  trans %s/%s = %d\n", k.Op, k.Label, r.Transitions[k])
		}
	}
	return sb.String()
}

// engineResults analyzes an in-memory trace through the Engine and unwraps
// the results — a materialized source under a background context has no
// error paths, so a failure here is a test bug worth panicking on.
func engineResults(tr *Trace, opts ...EngineOption) map[ProcID]*Result {
	rep, err := NewEngine(opts...).Analyze(context.Background(), FromTrace(tr))
	if err != nil {
		panic(err)
	}
	return rep.Results
}

// TestEngineParallelDeterministic asserts the tentpole property: on
// randomized multi-process traces, the Engine produces byte-identical
// results for Workers 1..8, all equal to the sequential per-process sweep.
func TestEngineParallelDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomWorkloadTrace(seed)
		sequential := map[ProcID]*Result{}
		for _, p := range tr.ProcIDs() {
			sequential[p] = overlap.Compute(tr.ProcEvents(p))
		}
		want := renderResults(sequential)
		if got := renderResults(engineResults(tr, WithWorkers(1))); got != want {
			t.Fatalf("seed %d: sequential Engine diverges from per-process sweep:\n%s\nvs\n%s", seed, got, want)
		}
		for workers := 1; workers <= 8; workers++ {
			got := renderResults(engineResults(tr, WithWorkers(workers)))
			if got != want {
				t.Fatalf("seed %d workers %d: parallel Engine diverges from sequential sweep:\n%s\nvs\n%s",
					seed, workers, got, want)
			}
		}
	}
}

// TestEngineParallelRepeatable asserts run-to-run stability at full
// concurrency — no map-iteration or scheduling order may leak into results.
func TestEngineParallelRepeatable(t *testing.T) {
	tr := randomWorkloadTrace(77)
	first := renderResults(engineResults(tr))
	for i := 0; i < 5; i++ {
		if got := renderResults(engineResults(tr)); got != first {
			t.Fatalf("run %d: result changed between identical invocations", i)
		}
	}
}
