package rlscope

// One benchmark per paper table and figure (see DESIGN.md's per-experiment
// index), plus ablation benches for the design decisions DESIGN.md calls
// out. Each figure bench regenerates the figure's data at a reduced
// step budget and reports the figure's headline quantity as a custom
// metric, so `go test -bench=. -benchmem` doubles as a smoke reproduction
// of the whole evaluation.

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/cuda"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/minigo"
	"repro/internal/overlap"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// benchSteps keeps figure benches fast; the cmd/rlscope-experiments tool
// runs the full-scale versions.
const benchSteps = 400

// TestMain cleans up the on-disk bench trace streamingBenchDir lazily
// creates (b.TempDir is per-benchmark, so the shared directory cannot use
// it).
func TestMain(m *testing.M) {
	code := m.Run()
	if streamingBenchDirPath != "" {
		os.RemoveAll(streamingBenchDirPath)
	}
	if streamingBenchDirV2Path != "" {
		os.RemoveAll(streamingBenchDirV2Path)
	}
	os.Exit(code)
}

func BenchmarkTable1Frameworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.RenderTable1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure3Overlap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3()
		if r.CPUMcts == 0 {
			b.Fatal("empty figure 3")
		}
	}
}

func BenchmarkFigure4aTD3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(experiments.Options{Steps: benchSteps, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		eager := r.Entry("TD3", backend.EagerTF).Total
		graph := r.Entry("TD3", backend.Graph).Total
		b.ReportMetric(float64(eager)/float64(graph), "eager/graph-slowdown")
	}
}

func BenchmarkFigure4bDDPGBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(experiments.Options{Steps: benchSteps, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		g := r.Entry("DDPG", backend.Graph).Res.OpTotal(workloads.OpBackpropagation)
		a := r.Entry("DDPG", backend.Autograph).Res.OpTotal(workloads.OpBackpropagation)
		b.ReportMetric(float64(g)/float64(a), "mpi-adam-backprop-inflation")
	}
}

func BenchmarkFigure4cdTransitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(experiments.Options{Steps: benchSteps, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		tf := r.Entry("TD3", backend.EagerTF).Res.TotalTransitions(trace.TransPythonToBackend)
		pt := r.Entry("TD3", backend.EagerPyTorch).Res.TotalTransitions(trace.TransPythonToBackend)
		b.ReportMetric(float64(tf)/float64(pt), "tf/pytorch-transition-ratio")
	}
}

func BenchmarkFigure5AlgorithmSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(experiments.Options{Steps: 600, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		on := r.Entry("A2C").SimulationFraction()
		off := r.Entry("SAC").SimulationFraction()
		b.ReportMetric(on/off, "onpolicy/offpolicy-sim-ratio")
	}
}

func BenchmarkFigure7SimulatorSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(experiments.Options{Steps: 512, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Entry("AirLearning").SimulationFraction(), "airlearning-sim-%")
	}
}

func BenchmarkFigure8MinigoScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(experiments.Options{Steps: 100, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SampledUtil, "nvidia-smi-util-%")
		b.ReportMetric(100*r.TrueUtil, "true-util-%")
	}
}

func BenchmarkFigure9DeltaCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(experiments.Options{Steps: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.MeanOverhead), "mean-hook-overhead-ns")
	}
}

func BenchmarkFigure10DiffOfAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(experiments.Options{Steps: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].InflationPerCall), "cupti-inflation-ns")
	}
}

func BenchmarkFigure11aCorrectionByAlgorithm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(experiments.Options{Steps: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, v := range r.ByAlgorithm {
			if bias := math.Abs(v.Bias()); bias > worst {
				worst = bias
			}
		}
		b.ReportMetric(100*worst, "worst-algorithm-bias-%")
	}
}

func BenchmarkFigure11bCorrectionBySimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(experiments.Options{Steps: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, v := range r.BySimulator {
			if bias := math.Abs(v.Bias()); bias > worst {
				worst = bias
			}
		}
		b.ReportMetric(100*worst, "worst-simulator-bias-%")
	}
}

func BenchmarkAppendixC4UncorrectedEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AppendixC4(experiments.Options{Steps: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalInflation, "uncorrected-inflation-x")
		b.ReportMetric(r.CUDAToGPURatioUncorrected, "uncorrected-cuda/gpu")
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// benchTrace builds a profiled workload trace once for the analysis-side
// ablations.
func benchTrace(b *testing.B, flags trace.FeatureFlags) *calib.RunStats {
	b.Helper()
	stats, err := workloads.Run(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
		TotalSteps: benchSteps, Seed: 5,
	}, flags)
	if err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkAblationScopedVsFlatAttribution compares the full overlap sweep
// (scoped to operations) against a flat sweep on a trace stripped of
// operation annotations — quantifying the cost of the scoping RL-Scope adds
// over a conventional profiler.
func BenchmarkAblationScopedVsFlatAttribution(b *testing.B) {
	stats := benchTrace(b, trace.Uninstrumented())
	events := stats.Trace.ProcEvents(0)
	var flat []trace.Event
	for _, e := range events {
		if e.Kind != trace.KindOp {
			flat = append(flat, e)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scoped := overlap.Compute(events)
		flatRes := overlap.Compute(flat)
		if len(scoped.ByKey) <= len(flatRes.ByKey) {
			b.Fatal("scoping added no information")
		}
	}
	b.ReportMetric(float64(len(events)), "events")
}

// BenchmarkAblationPointVsScalarCorrection compares RL-Scope's
// point-subtraction correction against naive end-of-run scalar scaling
// (shrink every duration by the global inflation factor), reporting both
// biases on the per-operation breakdown.
func BenchmarkAblationPointVsScalarCorrection(b *testing.B) {
	runner := workloads.Runner(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph, TotalSteps: benchSteps,
	})
	cal, err := calib.Calibrate(runner, 3)
	if err != nil {
		b.Fatal(err)
	}
	base, err := runner(trace.Uninstrumented(), 99)
	if err != nil {
		b.Fatal(err)
	}
	full, err := runner(trace.Full(), 99)
	if err != nil {
		b.Fatal(err)
	}
	truth := overlap.Compute(base.Trace.ProcEvents(0))
	scale := float64(base.Total) / float64(full.Total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corrected := overlap.Compute(calib.Correct(full.Trace, cal).ProcEvents(0))
		uncorrected := overlap.Compute(full.Trace.ProcEvents(0))
		pointBias := relErr(corrected.OpTotal(workloads.OpBackpropagation),
			truth.OpTotal(workloads.OpBackpropagation))
		scalarBias := relErr(
			vclock.Duration(float64(uncorrected.OpTotal(workloads.OpBackpropagation))*scale),
			truth.OpTotal(workloads.OpBackpropagation))
		b.ReportMetric(100*pointBias, "point-correction-bias-%")
		b.ReportMetric(100*scalarBias, "scalar-correction-bias-%")
	}
}

func relErr(got, want vclock.Duration) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// BenchmarkAblationAsyncTraceWriter measures the chunked asynchronous trace
// writer's throughput (events/op written to a temp dir).
func BenchmarkAblationAsyncTraceWriter(b *testing.B) {
	stats := benchTrace(b, trace.Full())
	events := stats.Trace.Events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		w, err := trace.NewWriter(dir, 1<<18)
		if err != nil {
			b.Fatal(err)
		}
		w.Append(events...)
		if err := w.Close(stats.Trace.Meta); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "events/op")
}

// BenchmarkAblationJitterOnCalibration compares calibration accuracy with
// jittered book-keeping costs (realistic) against exact costs: delta
// calibration recovers the mean either way, demonstrating that the method
// does not depend on deterministic overheads (DESIGN.md decision 1).
func BenchmarkAblationJitterOnCalibration(b *testing.B) {
	runWith := func(model profiler.OverheadModel) float64 {
		runner := func(flags trace.FeatureFlags, seed int64) (*calib.RunStats, error) {
			p := profiler.New(profiler.Options{
				Workload: "jitter-ablation", Flags: flags,
				Overheads: model, Seed: seed,
			})
			dev := gpu.NewDevice(-1)
			s := p.NewProcess("t", -1, 0)
			ctx := cuda.NewContext(s, dev, cuda.DefaultCosts())
			for i := 0; i < 300; i++ {
				s.WithOperation("step", func() {
					s.CallBackend("run", func() {
						ctx.LaunchKernel("k", 3*vclock.Microsecond)
						ctx.StreamSynchronize()
					})
				})
			}
			s.Close()
			return calib.StatsFromTrace(p.MustTrace(), flags, p.OverheadCounts(), p.TotalTime()), nil
		}
		cal, err := calib.Calibrate(runner, 11)
		if err != nil {
			b.Fatal(err)
		}
		return 100 * relErr(cal.Interception, model.Interception.Mean)
	}
	jittered := profiler.DefaultOverheads()
	exact := jittered
	exact.Interception = vclock.Exact(jittered.Interception.Mean)
	exact.Annotation = vclock.Exact(jittered.Annotation.Mean)
	exact.CUDAIntercept = vclock.Exact(jittered.CUDAIntercept.Mean)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(runWith(jittered), "jittered-calib-error-%")
		b.ReportMetric(runWith(exact), "exact-calib-error-%")
	}
}

// BenchmarkExtensionMinigoScaling runs the worker-count sweep extension.
func BenchmarkExtensionMinigoScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8Scaling(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Point(16).SampledUtil, "16-worker-sampled-util-%")
		b.ReportMetric(100*r.Point(16).WorkerGPUFrac, "per-worker-gpu-%")
	}
}

// parallelBenchTrace builds the multi-process Minigo-scale trace the
// parallel-analysis benchmarks analyze: the paper's 16 self-play workers
// plus the trainer, each with training phases, giving 17 processes' worth
// of (process, phase) shards. Built once and pre-sorted so every variant
// measures pure analysis.
var parallelBenchTrace = sync.OnceValues(func() (*trace.Trace, error) {
	res, err := minigo.Run(minigo.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res.Trace.Sort()
	return res.Trace, nil
})

// BenchmarkParallelAnalysis measures the sharded analysis engine's scaling:
// the same trace analyzed with 1/2/4/8 workers. workers=1 is the sequential
// baseline.
func BenchmarkParallelAnalysis(b *testing.B) {
	tr, err := parallelBenchTrace()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if r := analysis.Run(tr, analysis.Options{Workers: workers}); len(r) == 0 {
					b.Fatal("empty analysis")
				}
			}
			b.ReportMetric(float64(len(tr.Events)), "events")
		})
	}
}

// streamingBenchDir writes the Minigo-scale bench trace to a chunked trace
// directory once; the streaming benchmarks replay it from disk, which is
// exactly the production path rlscope-analyze exercises. TestMain removes
// the directory after the run.
var streamingBenchDirPath string

var streamingBenchDir = sync.OnceValues(func() (string, error) {
	tr, err := parallelBenchTrace()
	if err != nil {
		return "", err
	}
	dir, err := os.MkdirTemp("", "rlscope-stream-bench-")
	if err != nil {
		return "", err
	}
	streamingBenchDirPath = dir
	w, err := trace.NewWriter(dir, 1<<16)
	if err != nil {
		return "", err
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		return "", err
	}
	return dir, nil
})

// streamingBenchDirV2 is the same trace converted to the columnar v2 chunk
// format, so the streaming benchmarks measure both decode paths over
// byte-equivalent event streams.
var streamingBenchDirV2Path string

var streamingBenchDirV2 = sync.OnceValues(func() (string, error) {
	src, err := streamingBenchDir()
	if err != nil {
		return "", err
	}
	dir, err := os.MkdirTemp("", "rlscope-stream-bench-v2-")
	if err != nil {
		return "", err
	}
	streamingBenchDirV2Path = dir
	dst := filepath.Join(dir, "trace")
	if _, err := trace.ConvertDir(src, dst, trace.FormatV2, false); err != nil {
		return "", err
	}
	return dst, nil
})

// BenchmarkEngineAnalysis gates the Engine front door's cost: the same
// Minigo-scale trace analyzed through the direct analysis.Run path and
// through NewEngine().Analyze(FromTrace(...)). The wrapper adds one Source
// resolution, one options translation, and one Report allocation per call —
// nothing per event — so the two variants must stay indistinguishable; the
// bench gate enforces it by holding both to the same baseline.
func BenchmarkEngineAnalysis(b *testing.B) {
	tr, err := parallelBenchTrace()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := analysis.Run(tr, analysis.Options{Workers: 1}); len(r) == 0 {
				b.Fatal("empty analysis")
			}
		}
		b.ReportMetric(float64(len(tr.Events)), "events")
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		eng := NewEngine(WithWorkers(1))
		src := FromTrace(tr)
		for i := 0; i < b.N; i++ {
			rep, err := eng.Analyze(ctx, src)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Results) == 0 {
				b.Fatal("empty analysis")
			}
		}
		b.ReportMetric(float64(len(tr.Events)), "events")
	})
}

// BenchmarkStreamingAnalysis measures the streaming ingestion + incremental
// analysis path against load-then-analyze on the same on-disk trace. The
// "materialized" variant is ReadDir + analysis.Run; the stream variants
// run analysis.RunStream at 1 and 4 workers, unbounded and under a 256 KiB
// resident budget, over both the row (v1) and columnar (v2) chunk
// encodings of the same event stream. The stream variants run over a warm
// Reader — opened once, reused across iterations — which is the serving
// shape: rlscope-serve keeps a Reader per registered trace and replays it
// on every analyze request, so the steady-state cost is the per-run sweep,
// not the directory open. Each variant reports its peak resident
// events/bytes: the budgeted run's peak stays bounded near
// MaxResidentBytes while the materialized path by definition holds every
// event at once. The v2 variants ride the zero-materialization column
// sweep; with the pooled decode and cached planning metadata, a warm
// streaming run must stay an order of magnitude below the historical v1
// allocation budget (~5k allocs/op before this format existed).
func BenchmarkStreamingAnalysis(b *testing.B) {
	v1dir, err := streamingBenchDir()
	if err != nil {
		b.Fatal(err)
	}
	v2dir, err := streamingBenchDirV2()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.ReadDir(v1dir)
	if err != nil {
		b.Fatal(err)
	}
	events := float64(len(tr.Events))

	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loaded, err := trace.ReadDir(v1dir)
			if err != nil {
				b.Fatal(err)
			}
			if r := analysis.Run(loaded, analysis.Options{Workers: 1}); len(r) == 0 {
				b.Fatal("empty analysis")
			}
		}
		b.ReportMetric(events, "events")
		b.ReportMetric(events, "peak-resident-events")
	})
	for _, format := range []struct {
		name string
		dir  string
	}{
		{"v1", v1dir},
		{"v2", v2dir},
	} {
		for _, cfg := range []struct {
			name    string
			workers int
			budget  int64
		}{
			{"workers=1", 1, 0},
			{"workers=4", 4, 0},
			{"workers=4/budget=256KiB", 4, 256 << 10},
		} {
			b.Run("stream/"+format.name+"/"+cfg.name, func(b *testing.B) {
				b.ReportAllocs()
				r, err := trace.OpenDir(format.dir)
				if err != nil {
					b.Fatal(err)
				}
				// One untimed pass warms the Reader (sidecar index cache,
				// frame buffer, column scratch), so the gated figures are
				// the steady-state per-request cost.
				if _, _, err := analysis.RunStream(r, analysis.Options{
					Workers: cfg.workers, MaxResidentBytes: cfg.budget,
				}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var stats analysis.StreamStats
				for i := 0; i < b.N; i++ {
					res, st, err := analysis.RunStream(r, analysis.Options{
						Workers: cfg.workers, MaxResidentBytes: cfg.budget,
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(res) == 0 {
						b.Fatal("empty analysis")
					}
					stats = st
				}
				b.ReportMetric(events, "events")
				b.ReportMetric(float64(stats.PeakResidentEvents), "peak-resident-events")
				b.ReportMetric(float64(stats.PeakResidentBytes), "peak-resident-bytes")
				b.ReportMetric(float64(stats.Evictions), "evictions")
			})
		}
	}
}

// BenchmarkAblationSamplingProfiler quantifies why RL-Scope avoids sampling
// profilers (paper Appendix A.2): the PC-sampling estimate of GPU-busy time
// versus the exact interval record, on a kernel population dominated by
// short kernels.
func BenchmarkAblationSamplingProfiler(b *testing.B) {
	stats := benchTrace(b, trace.Uninstrumented())
	var busy []gpu.Busy
	var exact vclock.Duration
	for _, e := range stats.Trace.Events {
		if e.Kind == trace.KindGPU {
			busy = append(busy, gpu.Busy{Start: e.Start, End: e.End})
			exact += e.Duration()
		}
	}
	start, end := stats.Trace.Span()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := calib.PCSampleEstimate(busy, start, end, vclock.Millisecond)
		b.ReportMetric(100*relErr(est, exact), "pc-sampling-error-%")
	}
}
