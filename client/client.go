// Package client is the canonical Go consumer of the rlscope-serve v1 API:
// one typed client for every endpoint, shared by cmd/rlscope-prof's -serve
// streaming mode, the CI smoke step, and tests — so the HTTP surface has a
// single idiomatic binding instead of scattered hand-rolled net/http calls.
//
// The write path composes with the profiler's chunked trace writer through
// Sink: Client.Sink returns a trace.Sink that ships each flushed chunk
// frame as POST /v1/traces/{id}/chunks and finalizes the run with
// POST /v1/traces/{id}/seal, so
//
//	c := client.New("http://localhost:8080")
//	w := trace.NewSinkWriter(c.Sink(ctx, "run42"), 0)
//	w.Append(events...)
//	w.Close(meta)
//
// streams a live trace into the server's store with exactly the bytes a
// local trace.NewWriter would have produced. Appends are idempotent on the
// server, so the sink retries transient transport failures safely.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Client talks to one rlscope-serve instance.
type Client struct {
	base string
	http *http.Client
	// retries is how many times transport-level failures of idempotent
	// requests are retried (API errors are never retried).
	retries int
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetries sets how many additional attempts transport failures get on
// idempotent requests (default 2; 0 disables).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// New returns a client for the service at base, e.g. "http://host:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient, retries: 2}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a structured /v1 error: the server's stable machine-readable
// code plus its human message, with the HTTP status attached. Callers
// branch on Code — the vocabulary is the serve.ErrCode* constants,
// tabulated in DESIGN.md §9.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rlscope-serve: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env serve.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return &APIError{Status: resp.StatusCode, Code: "unknown",
			Message: strings.TrimSpace(string(body))}
	}
	return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
}

// do performs one request, retrying transport failures when idempotent.
// Every v1 request in this client is idempotent by protocol design —
// chunk appends carry sequence numbers the server deduplicates.
func (c *Client) do(req *http.Request, rewind func() io.Reader) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.http.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= c.retries || req.Context().Err() != nil || rewind == nil {
			return nil, lastErr
		}
		req = req.Clone(req.Context())
		req.Body = io.NopCloser(rewind())
		// Brief linear backoff: transient transport failures (connection
		// reset, server restart) usually clear within a beat.
		select {
		case <-time.After(time.Duration(attempt+1) * 50 * time.Millisecond):
		case <-req.Context().Done():
			return nil, lastErr
		}
	}
}

// getJSON GETs path and decodes the response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req, func() io.Reader { return nil })
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs body (JSON-encoded) to path and decodes the response.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, func() io.Reader { return bytes.NewReader(data) })
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health returns GET /healthz as loosely-typed JSON.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.getJSON(ctx, "/healthz", &out)
	return out, err
}

// Traces lists every trace the server knows about (GET /v1/traces).
func (c *Client) Traces(ctx context.Context) ([]serve.TraceInfo, error) {
	var out struct {
		Traces []serve.TraceInfo `json:"traces"`
	}
	err := c.getJSON(ctx, "/v1/traces", &out)
	return out.Traces, err
}

// Register opens a live trace under id (POST /v1/traces). Registration is
// optional — the first AppendChunk also creates the trace — but an explicit
// Register surfaces id collisions before any chunk is shipped.
func (c *Client) Register(ctx context.Context, id string) (serve.TraceInfo, error) {
	var out serve.TraceInfo
	err := c.postJSON(ctx, "/v1/traces", serve.CreateTraceRequest{ID: id}, &out)
	return out, err
}

// Summary fetches GET /v1/traces/{id}/summary.
func (c *Client) Summary(ctx context.Context, id string) (*serve.TraceSummary, error) {
	var out serve.TraceSummary
	if err := c.getJSON(ctx, "/v1/traces/"+url.PathEscape(id)+"/summary", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze runs (or serves from cache) an analysis of trace id and returns
// the encoded report.Analysis document verbatim — the exact bytes the
// server caches, so byte-level comparisons against `rlscope-analyze -json`
// output work without a decode/re-encode round trip.
func (c *Client) Analyze(ctx context.Context, id string, req serve.AnalyzeRequest) ([]byte, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/traces/"+url.PathEscape(id)+"/analyze", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hreq, func() io.Reader { return bytes.NewReader(data) })
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Query runs a fleet aggregation query (POST /v1/query) and returns the
// encoded report.QueryDoc verbatim — the exact bytes rlscope-query prints
// offline for the same traces and query, so cmp-level comparisons work.
func (c *Client) Query(ctx context.Context, q fleet.Query) ([]byte, error) {
	data, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hreq, func() io.Reader { return bytes.NewReader(data) })
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// AnalyzeDoc is Analyze with the document decoded.
func (c *Client) AnalyzeDoc(ctx context.Context, id string, req serve.AnalyzeRequest) (map[string]any, error) {
	body, err := c.Analyze(ctx, id, req)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// AppendChunk ships one encoded chunk frame as sequence number seq
// (POST /v1/traces/{id}/chunks). index, when non-nil, is sent alongside as
// the sidecar for the server to cross-check; nil lets the server derive it.
// Appends are idempotent: retrying a delivered sequence number with the
// same bytes is a no-op the response flags as Duplicate.
func (c *Client) AppendChunk(ctx context.Context, id string, seq int, chunk []byte, index *trace.ChunkIndex) (serve.AppendResponse, error) {
	var out serve.AppendResponse
	path := c.base + "/v1/traces/" + url.PathEscape(id) + "/chunks?seq=" + strconv.Itoa(seq)

	var build func() (io.Reader, string, error)
	if index == nil {
		build = func() (io.Reader, string, error) {
			return bytes.NewReader(chunk), "application/octet-stream", nil
		}
	} else {
		build = func() (io.Reader, string, error) {
			var buf bytes.Buffer
			mw := multipart.NewWriter(&buf)
			cw, err := mw.CreateFormFile("chunk", "chunk.rlstrace")
			if err == nil {
				_, err = cw.Write(chunk)
			}
			if err == nil {
				var iw io.Writer
				if iw, err = mw.CreateFormFile("index", "chunk.rlsidx"); err == nil {
					err = json.NewEncoder(iw).Encode(index)
				}
			}
			if err == nil {
				err = mw.Close()
			}
			if err != nil {
				return nil, "", err
			}
			return &buf, mw.FormDataContentType(), nil
		}
	}
	body, contentType, err := build()
	if err != nil {
		return out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, path, body)
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.do(req, func() io.Reader {
		r, _, err := build()
		if err != nil {
			return strings.NewReader("")
		}
		return r
	})
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Seal finalizes trace id with its run metadata
// (POST /v1/traces/{id}/seal). After a successful seal the server's digest
// for the trace equals trace.DirDigest over the stored directory.
func (c *Client) Seal(ctx context.Context, id string, meta trace.Meta) (serve.SealResponse, error) {
	var out serve.SealResponse
	err := c.postJSON(ctx, "/v1/traces/"+url.PathEscape(id)+"/seal", meta, &out)
	return out, err
}

// Sink returns a trace.Sink streaming into trace id on the server: the
// network counterpart of trace.DirSink. Plug it into trace.NewSinkWriter
// (or profiler.WriteToSink) and a workload profiles straight into shared
// infrastructure — same frames, same sequence numbers, same digest as a
// local write of the same run.
func (c *Client) Sink(ctx context.Context, id string) trace.Sink {
	return &netSink{ctx: ctx, c: c, id: id}
}

// netSink adapts Client to trace.Sink. The Writer delivering to it is
// single-goroutine, so no locking is needed beyond the server's own.
type netSink struct {
	ctx context.Context
	c   *Client
	id  string
}

func (ns *netSink) AppendChunk(seq int, chunk []byte, index *trace.ChunkIndex) error {
	_, err := ns.c.AppendChunk(ns.ctx, ns.id, seq, chunk, index)
	return err
}

func (ns *netSink) Seal(meta trace.Meta) error {
	_, err := ns.c.Seal(ns.ctx, ns.id, meta)
	return err
}
