package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	rlscope "repro"
	"repro/client"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// testTrace is a small deterministic two-process trace with a phase.
func testTrace() ([]trace.Event, trace.Meta) {
	var events []trace.Event
	events = append(events, trace.Event{
		Proc: 0, Kind: trace.KindPhase, Name: "training", Start: 0, End: 20_000,
	})
	for i := 0; i < 200; i++ {
		ts := vclock.Time(i * 100)
		events = append(events,
			trace.Event{Proc: 0, Kind: trace.KindCPU, Cat: trace.CatPython, Start: ts, End: ts + 60, Name: "step"},
			trace.Event{Proc: 1, Kind: trace.KindCPU, Cat: trace.CatSimulator, Start: ts, End: ts + 40, Name: "env"},
		)
	}
	meta := trace.Meta{Workload: "client-test", Config: trace.Full(), Procs: map[trace.ProcID]trace.ProcInfo{
		0: {Name: "trainer", Parent: -1}, 1: {Name: "sim", Parent: 0},
	}}
	return events, meta
}

// newLiveService spins up an ingest-enabled server over HTTP.
func newLiveService(t *testing.T) (*client.Client, string) {
	t.Helper()
	store := t.TempDir()
	s := serve.NewServer(serve.Config{StoreDir: store})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), store
}

// TestClientStreamRoundTrip streams a trace through the typed client's sink
// — the exact path `rlscope-prof -serve` uses — and checks the server ends
// up with a byte-identical trace directory and serves an analysis document
// byte-identical to the offline engine's result-only rendering.
func TestClientStreamRoundTrip(t *testing.T) {
	c, store := newLiveService(t)
	ctx := context.Background()
	events, meta := testTrace()

	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := c.Register(ctx, "run1")
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "run1" || info.State != serve.StateOpen {
		t.Fatalf("registered info %+v", info)
	}

	// Stream with a small chunk budget so multiple frames ship.
	w := trace.NewSinkWriter(c.Sink(ctx, "run1"), 1<<10)
	w.Append(events...)
	if err := w.Close(meta); err != nil {
		t.Fatal(err)
	}

	// The landed directory is byte-identical to a local write of the same
	// run (same chunk budget, same frames).
	local := t.TempDir()
	lw, err := trace.NewWriter(local, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	lw.Append(events...)
	if err := lw.Close(meta); err != nil {
		t.Fatal(err)
	}
	wantDigest, err := trace.DirDigest(local)
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, err := trace.DirDigest(filepath.Join(store, "run1"))
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != wantDigest {
		t.Fatalf("streamed dir digest %s, local %s", gotDigest, wantDigest)
	}

	traces, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].State != serve.StateSealed || traces[0].Workload != "client-test" {
		t.Fatalf("traces listing %+v", traces)
	}

	sum, err := c.Summary(ctx, "run1")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != len(events) || len(sum.Processes) != 2 {
		t.Fatalf("summary %+v, want %d events over 2 procs", sum.TraceInfo, len(events))
	}

	body, err := c.Analyze(ctx, "run1", serve.AnalyzeRequest{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(ctx, rlscope.FromDir(filepath.Join(store, "run1")))
	if err != nil {
		t.Fatal(err)
	}
	var offline bytes.Buffer
	if err := report.NewResultAnalysis(rep.Meta, rep.Results, rep.Corrected).Encode(&offline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, offline.Bytes()) {
		t.Fatalf("client analysis diverges from offline engine:\nclient:\n%s\noffline:\n%s", body, offline.String())
	}
}

// TestClientAppendChunkProtocol exercises the typed append path directly:
// multipart delivery with a client-computed sidecar, idempotent retries,
// and structured API errors with the server's stable codes.
func TestClientAppendChunkProtocol(t *testing.T) {
	c, _ := newLiveService(t)
	ctx := context.Background()
	events, meta := testTrace()
	chunk, index, err := trace.EncodeEvents(events[:50])
	if err != nil {
		t.Fatal(err)
	}

	// Multipart append with the sidecar attached.
	resp, err := c.AppendChunk(ctx, "run2", 0, chunk, index)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Chunks != 1 || resp.Duplicate {
		t.Fatalf("first append %+v", resp)
	}
	// Idempotent retry of the same frame.
	resp, err = c.AppendChunk(ctx, "run2", 0, chunk, index)
	if err != nil || !resp.Duplicate {
		t.Fatalf("retry: %+v, %v — want duplicate", resp, err)
	}
	// A sidecar that lies about the events is rejected with bad_chunk.
	bogus := *index
	bogus.Events++
	var apiErr *client.APIError
	if _, err := c.AppendChunk(ctx, "run2", 1, chunk, &bogus); !errors.As(err, &apiErr) || apiErr.Code != serve.ErrCodeBadChunk {
		t.Fatalf("lying sidecar: %v, want APIError %s", err, serve.ErrCodeBadChunk)
	}
	// A gap maps to out_of_order_sequence.
	if _, err := c.AppendChunk(ctx, "run2", 7, chunk, nil); !errors.As(err, &apiErr) || apiErr.Code != serve.ErrCodeOutOfOrderSeq {
		t.Fatalf("gap: %v, want APIError %s", err, serve.ErrCodeOutOfOrderSeq)
	}
	// Appends after Seal are rejected.
	if _, err := c.Seal(ctx, "run2", meta); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendChunk(ctx, "run2", 1, chunk, nil); !errors.As(err, &apiErr) || apiErr.Code != serve.ErrCodeTraceSealed {
		t.Fatalf("post-seal append: %v, want APIError %s", err, serve.ErrCodeTraceSealed)
	}
	// Unknown trace ids surface the 404 code.
	if _, err := c.Summary(ctx, "ghost"); !errors.As(err, &apiErr) || apiErr.Code != serve.ErrCodeUnknownTrace || apiErr.Status != 404 {
		t.Fatalf("unknown trace: %v", err)
	}
	// Invalid ids are rejected before touching the store.
	if _, err := c.Register(ctx, "a..b"); !errors.As(err, &apiErr) || apiErr.Code != serve.ErrCodeInvalidTraceID {
		t.Fatalf("invalid id: %v", err)
	}
}
