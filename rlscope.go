// Package rlscope is the public API of the RL-Scope reproduction: a
// cross-stack profiler for deep reinforcement learning workloads that
// scopes low-level CPU/GPU resource usage to high-level algorithmic
// operations and corrects for profiling overhead (Gleeson et al.,
// MLSys 2021).
//
// # Profiling a workload
//
// Create a Profiler, open a Session per simulated process, annotate the
// training loop with operations, and let the interception wrappers record
// everything else:
//
//	p := rlscope.New(rlscope.Options{Workload: "my-agent", Flags: rlscope.FullInstrumentation()})
//	sess := p.NewProcess("trainer", -1, 0)
//	sess.SetPhase("training")
//	sess.WithOperation("inference", func() { ... })
//	sess.WithOperation("simulation", func() {
//	        sess.CallSimulator("env.step", func() { ... })
//	})
//	sess.Close()
//	tr := p.MustTrace()
//
// # Analysis
//
// Engine is the single analysis entry point: a cancellable, composable
// query over any trace Source, computing the cross-stack event overlap per
// process — the paper's §3.3 algorithm — attributing every interval of the
// critical path to (operation, {CPU, GPU, CPU+GPU}, stack tier):
//
//	eng := rlscope.NewEngine(rlscope.WithWorkers(4))
//	report, err := eng.Analyze(ctx, rlscope.FromTrace(tr))
//	// report.Results[proc] is the per-process breakdown
//
// Sources decouple what is analyzed from how it is stored: FromTrace wraps
// an in-memory trace, while FromDir and FromReader stream a chunked trace
// directory without materializing it, keeping residency under
// WithMaxResidentBytes. Results are byte-identical across sources, worker
// counts, and memory budgets.
//
// # Overhead calibration and correction
//
// Calibrate measures the profiler's own book-keeping costs by re-running a
// workload under feature subsets (delta calibration plus
// difference-of-average calibration for per-CUDA-API CUPTI inflation), and
// correction subtracts them from a trace at the points where they occurred
// (§3.4, Appendix C). Composed into the Engine, correction runs as a
// streaming stage — corrected breakdowns under a memory budget, without
// ever materializing the corrected trace:
//
//	cal, err := rlscope.Calibrate(runner, seed)
//	eng := rlscope.NewEngine(rlscope.WithCorrection(cal), rlscope.WithMaxResidentBytes(1<<20))
//	report, err := eng.Analyze(ctx, rlscope.FromDir(traceDir))
//
// The examples/ directory contains runnable programs; cmd/ contains the
// rls-prof-style CLI tools; the client package streams traces into a live
// rlscope-serve instance; DESIGN.md maps every paper experiment to the
// module that regenerates it.
package rlscope

import (
	"repro/internal/analysis"
	"repro/internal/calib"
	"repro/internal/overlap"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Core profiler types.
type (
	// Profiler owns one profiled run across simulated processes.
	Profiler = profiler.Profiler
	// Session is the per-process recording context (annotations,
	// interception wrappers, the CUDA-hook surface).
	Session = profiler.Session
	// Options configures a run (workload label, feature flags, seed).
	Options = profiler.Options
	// OverheadModel is the hidden true cost of each book-keeping path.
	OverheadModel = profiler.OverheadModel
	// Op is an open operation annotation.
	Op = profiler.Op
)

// Trace types.
type (
	// Trace is a collected event trace.
	Trace = trace.Trace
	// Event is one trace record.
	Event = trace.Event
	// FeatureFlags selects which book-keeping paths are enabled.
	FeatureFlags = trace.FeatureFlags
	// ProcID identifies a simulated process.
	ProcID = trace.ProcID
	// OverheadKind classifies profiler book-keeping markers; each kind is
	// calibrated separately (paper Appendix C.1/C.2).
	OverheadKind = trace.OverheadKind
)

// Analysis types.
type (
	// Result is one process's cross-stack overlap breakdown.
	Result = overlap.Result
	// Calibration holds calibrated book-keeping costs.
	Calibration = calib.Calibration
	// RunStats is what one run exposes to calibration.
	RunStats = calib.RunStats
	// Runner executes a workload under given flags for calibration.
	Runner = calib.Runner
	// ValidationResult reports correction accuracy for one workload.
	ValidationResult = calib.ValidationResult
)

// Time types (virtual time; see DESIGN.md for why the clock is simulated).
type (
	// Time is a point in virtual time.
	Time = vclock.Time
	// Duration is a span of virtual time.
	Duration = vclock.Duration
)

// New creates a profiler for one run.
func New(opts Options) *Profiler { return profiler.New(opts) }

// FullInstrumentation returns flags with every book-keeping path enabled —
// a normal profiled run.
func FullInstrumentation() FeatureFlags { return trace.Full() }

// Uninstrumented returns flags with all book-keeping disabled — the
// baseline configuration calibration compares against.
func Uninstrumented() FeatureFlags { return trace.Uninstrumented() }

// DefaultOverheads returns the standard book-keeping cost model.
func DefaultOverheads() OverheadModel { return profiler.DefaultOverheads() }

// StreamStats reports what a streaming analysis read, scheduled, and kept
// resident (see Report.Stats).
type StreamStats = analysis.StreamStats

// TraceDirDigest returns the SHA-256 content digest identifying a chunked
// trace directory: a hash over its metadata, chunk files, and sidecar
// indexes. Equal digests mean byte-identical traces, which is what lets
// rlscope-serve address cached analysis reports by (digest, options).
func TraceDirDigest(dir string) (string, error) { return trace.DirDigest(dir) }

// Calibrate measures the mean cost of each profiler book-keeping path by
// re-running the workload under feature subsets (paper Appendix C).
func Calibrate(run Runner, seed int64) (*Calibration, error) { return calib.Calibrate(run, seed) }

// Correct subtracts calibrated overhead from a trace at the precise points
// where book-keeping occurred (paper §3.4), materializing the corrected
// trace. To analyze corrected results without materializing them, configure
// an Engine with WithCorrection instead.
func Correct(t *Trace, cal *Calibration) *Trace { return calib.Correct(t, cal) }

// Validate measures correction accuracy for a workload: calibrate, run
// uninstrumented and instrumented, correct, compare (paper Figure 11).
func Validate(workload string, run Runner, calibSeed, validateSeed int64) (*ValidationResult, error) {
	return calib.Validate(workload, run, calibSeed, validateSeed)
}

// StatsFromTrace derives calibration inputs from a collected trace: the
// feature flags the run used, the profiler's per-OverheadKind occurrence
// counters, and the run's total training time.
func StatsFromTrace(t *Trace, flags FeatureFlags, counts map[OverheadKind]int, total Duration) *RunStats {
	return calib.StatsFromTrace(t, flags, counts, total)
}
