// Package benchgate turns `go test -bench` output into a CI regression
// gate: it parses benchmark results, aggregates repeated runs (-count=N)
// into per-benchmark statistics, and compares them against a committed
// baseline with a tolerance multiplier. The gate follows the
// experiment-automation discipline of the Collective Knowledge pipelines
// and the BLIS experiment standards: a perf claim only counts if an
// automated, repeatable harness re-checks it on every change.
//
// Noise policy: CI machines are shared and noisy, so the gate compares the
// *minimum* ns/op across repeats (the least-interrupted run — the standard
// low-noise estimator for microbenchmarks) and fails only past a generous
// multiplicative tolerance. The baseline records the numbers of one
// reference machine; regressions are judged relative, never absolute.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result aggregates the repeated runs of one benchmark.
type Result struct {
	// NsPerOp is the minimum ns/op across runs.
	NsPerOp float64 `json:"ns_per_op"`
	// Runs is how many times the benchmark ran (-count).
	Runs int `json:"runs"`
	// MaxNsPerOp is the maximum ns/op across runs, a noise indicator.
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
}

// Baseline is the committed reference file the gate compares against.
type Baseline struct {
	// Note documents where the numbers came from.
	Note string `json:"note,omitempty"`
	// Tolerance is the default allowed slowdown multiplier (e.g. 2.0:
	// fail when min ns/op exceeds 2x the baseline). Command-line override
	// wins; zero falls back to DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Benchmarks maps the normalized benchmark name (GOMAXPROCS suffix
	// stripped) to its reference result.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// DefaultTolerance is the allowed slowdown multiplier when neither the
// baseline nor the caller specifies one.
const DefaultTolerance = 2.0

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkParallelAnalysis/workers=2-8   100   123456 ns/op   94010 events
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// Parse reads `go test -bench` output and aggregates repeated runs per
// normalized benchmark name.
func Parse(output string) map[string]Result {
	out := map[string]Result{}
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		name := m[1]
		r, seen := out[name]
		if !seen || ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if ns > r.MaxNsPerOp {
			r.MaxNsPerOp = ns
		}
		r.Runs++
		out[name] = r
	}
	return out
}

// Verdict is the outcome of comparing one benchmark against the baseline.
type Verdict struct {
	Name     string
	Baseline float64 // baseline min ns/op
	Current  float64 // measured min ns/op; 0 when missing
	Ratio    float64 // Current / Baseline
	// Status is "ok", "regression", "missing" (in baseline but not
	// measured), or "new" (measured but not in baseline — informational).
	Status string
}

// Compare judges measured results against the baseline. tolerance <= 0
// selects the baseline's own tolerance, falling back to DefaultTolerance.
// Verdicts are sorted by name; failed reports whether any benchmark
// regressed or went missing.
func Compare(base *Baseline, current map[string]Result, tolerance float64) (verdicts []Verdict, failed bool) {
	if tolerance <= 0 {
		tolerance = base.Tolerance
	}
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base.Benchmarks[name]
		v := Verdict{Name: name, Baseline: ref.NsPerOp}
		cur, ok := current[name]
		switch {
		case !ok:
			// A benchmark that silently stops running is as bad as a
			// regression: the gate would otherwise pass vacuously.
			v.Status = "missing"
			failed = true
		default:
			v.Current = cur.NsPerOp
			if ref.NsPerOp > 0 {
				v.Ratio = cur.NsPerOp / ref.NsPerOp
			}
			if v.Ratio > tolerance {
				v.Status = "regression"
				failed = true
			} else {
				v.Status = "ok"
			}
		}
		verdicts = append(verdicts, v)
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		verdicts = append(verdicts, Verdict{Name: name, Current: current[name].NsPerOp, Status: "new"})
	}
	return verdicts, failed
}

// Report renders verdicts as an aligned text table.
func Report(verdicts []Verdict, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-60s %14s %14s %7s %s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio", "status")
	for _, v := range verdicts {
		ratio := "-"
		if v.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", v.Ratio)
		}
		fmt.Fprintf(&sb, "%-60s %14.0f %14.0f %7s %s\n", v.Name, v.Baseline, v.Current, ratio, v.Status)
	}
	fmt.Fprintf(&sb, "tolerance: fail above %.2fx baseline\n", tolerance)
	return sb.String()
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: reading baseline: %w", err)
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("benchgate: decoding baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteJSON writes a baseline-shaped file from measured results — used both
// to refresh the committed baseline (-update) and to upload the current
// numbers as a CI artifact.
func WriteJSON(path, note string, tolerance float64, results map[string]Result) error {
	data, err := json.MarshalIndent(&Baseline{Note: note, Tolerance: tolerance, Benchmarks: results}, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: encoding results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
