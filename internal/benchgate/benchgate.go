// Package benchgate turns `go test -bench` output into a CI regression
// gate: it parses benchmark results, aggregates repeated runs (-count=N)
// into per-benchmark statistics, and compares them against a committed
// baseline with a tolerance multiplier. The gate follows the
// experiment-automation discipline of the Collective Knowledge pipelines
// and the BLIS experiment standards: a perf claim only counts if an
// automated, repeatable harness re-checks it on every change.
//
// Noise policy: CI machines are shared and noisy, so the gate compares the
// *minimum* ns/op across repeats (the least-interrupted run — the standard
// low-noise estimator for microbenchmarks) and fails only past a generous
// multiplicative tolerance. The baseline records the numbers of one
// reference machine; regressions are judged relative, never absolute.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result aggregates the repeated runs of one benchmark.
type Result struct {
	// NsPerOp is the minimum ns/op across runs.
	NsPerOp float64 `json:"ns_per_op"`
	// Runs is how many times the benchmark ran (-count).
	Runs int `json:"runs"`
	// MaxNsPerOp is the maximum ns/op across runs, a noise indicator.
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
	// BytesPerOp and AllocsPerOp are the minimum B/op and allocs/op across
	// runs, present when the benchmark reports allocations
	// (b.ReportAllocs or -benchmem). HasAllocs distinguishes a true zero
	// from "not reported".
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	HasAllocs   bool    `json:"has_allocs,omitempty"`
}

// Baseline is the committed reference file the gate compares against.
type Baseline struct {
	// Note documents where the numbers came from.
	Note string `json:"note,omitempty"`
	// Tolerance is the default allowed slowdown multiplier (e.g. 2.0:
	// fail when min ns/op exceeds 2x the baseline). Command-line override
	// wins; zero falls back to DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
	// AllocTolerance is the allowed multiplier for B/op and allocs/op.
	// Allocation counts are deterministic compared to wall time, so the
	// default (DefaultAllocTolerance) is tighter than the ns/op tolerance.
	AllocTolerance float64 `json:"alloc_tolerance,omitempty"`
	// Benchmarks maps the normalized benchmark name (GOMAXPROCS suffix
	// stripped) to its reference result.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// DefaultTolerance is the allowed slowdown multiplier when neither the
// baseline nor the caller specifies one.
const DefaultTolerance = 2.0

// DefaultAllocTolerance is the allowed B/op / allocs/op multiplier when
// neither the baseline nor the caller specifies one.
const DefaultAllocTolerance = 1.5

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkParallelAnalysis/workers=2-8   100   123456 ns/op   94010 events   9401 B/op   120 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

var (
	bytesPerOp  = regexp.MustCompile(`\s([0-9.]+) B/op`)
	allocsPerOp = regexp.MustCompile(`\s([0-9.]+) allocs/op`)
)

// Parse reads `go test -bench` output and aggregates repeated runs per
// normalized benchmark name. Allocation columns (emitted by b.ReportAllocs
// or -benchmem) are aggregated the same way as ns/op: minimum across runs.
func Parse(output string) map[string]Result {
	out := map[string]Result{}
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		name := m[1]
		r, seen := out[name]
		if !seen || ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if ns > r.MaxNsPerOp {
			r.MaxNsPerOp = ns
		}
		if bm := bytesPerOp.FindStringSubmatch(line); bm != nil {
			if am := allocsPerOp.FindStringSubmatch(line); am != nil {
				b, berr := strconv.ParseFloat(bm[1], 64)
				a, aerr := strconv.ParseFloat(am[1], 64)
				if berr == nil && aerr == nil {
					if !r.HasAllocs || b < r.BytesPerOp {
						r.BytesPerOp = b
					}
					if !r.HasAllocs || a < r.AllocsPerOp {
						r.AllocsPerOp = a
					}
					r.HasAllocs = true
				}
			}
		}
		r.Runs++
		out[name] = r
	}
	return out
}

// Verdict is the outcome of comparing one benchmark against the baseline.
type Verdict struct {
	Name     string
	Baseline float64 // baseline min ns/op
	Current  float64 // measured min ns/op; 0 when missing
	Ratio    float64 // Current / Baseline
	// BaseAllocs/CurAllocs and BaseBytes/CurBytes carry the allocs/op and
	// B/op comparison when both sides report allocations.
	BaseAllocs, CurAllocs float64
	BaseBytes, CurBytes   float64
	// Status is "ok", "regression" (ns/op over tolerance),
	// "alloc-regression" (allocs/op or B/op over the alloc tolerance while
	// ns/op passed), "missing" (in baseline but not measured), or "new"
	// (measured but not in baseline — informational).
	Status string
}

// Compare judges measured results against the baseline. tolerance <= 0
// selects the baseline's own tolerance, falling back to DefaultTolerance;
// allocTolerance <= 0 likewise falls back to the baseline's AllocTolerance
// then DefaultAllocTolerance. Allocation columns are gated only when the
// baseline recorded them — a baseline predating allocation tracking never
// fails on them — but once recorded, a benchmark that stops reporting
// allocations fails exactly like one that stops running. Verdicts are
// sorted by name; failed reports whether any benchmark regressed (time or
// allocations) or went missing.
func Compare(base *Baseline, current map[string]Result, tolerance, allocTolerance float64) (verdicts []Verdict, failed bool) {
	if tolerance <= 0 {
		tolerance = base.Tolerance
	}
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	if allocTolerance <= 0 {
		allocTolerance = base.AllocTolerance
	}
	if allocTolerance <= 0 {
		allocTolerance = DefaultAllocTolerance
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base.Benchmarks[name]
		v := Verdict{Name: name, Baseline: ref.NsPerOp}
		cur, ok := current[name]
		switch {
		case !ok:
			// A benchmark that silently stops running is as bad as a
			// regression: the gate would otherwise pass vacuously.
			v.Status = "missing"
			failed = true
		default:
			v.Current = cur.NsPerOp
			if ref.NsPerOp > 0 {
				v.Ratio = cur.NsPerOp / ref.NsPerOp
			}
			switch {
			case v.Ratio > tolerance:
				v.Status = "regression"
				failed = true
			case ref.HasAllocs && !cur.HasAllocs:
				// The baseline locks allocations in; dropping
				// b.ReportAllocs would un-gate them silently.
				v.Status = "missing"
				failed = true
			case ref.HasAllocs:
				v.BaseAllocs, v.CurAllocs = ref.AllocsPerOp, cur.AllocsPerOp
				v.BaseBytes, v.CurBytes = ref.BytesPerOp, cur.BytesPerOp
				if allocRegressed(ref.AllocsPerOp, cur.AllocsPerOp, allocTolerance, zeroSlackAllocs) ||
					allocRegressed(ref.BytesPerOp, cur.BytesPerOp, allocTolerance, zeroSlackBytes) {
					v.Status = "alloc-regression"
					failed = true
				} else {
					v.Status = "ok"
				}
			default:
				v.Status = "ok"
			}
		}
		verdicts = append(verdicts, v)
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		verdicts = append(verdicts, Verdict{Name: name, Current: current[name].NsPerOp, Status: "new"})
	}
	return verdicts, failed
}

// Zero-baseline slack per allocation metric: a benchmark whose baseline
// recorded zero tolerates up to slack×tolerance absolute before failing,
// so one stray small allocation cannot flake the gate on either column
// (1.5 allocs, 384 bytes at the default tolerance) while real growth from
// zero is still caught.
const (
	zeroSlackAllocs = 1.0
	zeroSlackBytes  = 256.0
)

// allocRegressed judges one allocation metric: multiplicative past the
// tolerance when the baseline is non-zero, absolute against slack×tol
// when the baseline is zero.
func allocRegressed(base, cur, tol, zeroSlack float64) bool {
	if base > 0 {
		return cur > base*tol
	}
	return cur > zeroSlack*tol
}

// Report renders verdicts as an aligned text table. Both allocation
// columns are shown, so an alloc-regression verdict always displays the
// metric that tripped it (allocs/op and B/op are gated independently).
func Report(verdicts []Verdict, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-60s %14s %14s %7s %19s %23s %s\n",
		"benchmark", "baseline ns/op", "current ns/op", "ratio", "allocs/op", "B/op", "status")
	for _, v := range verdicts {
		ratio := "-"
		if v.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", v.Ratio)
		}
		allocs, bytes := "-", "-"
		if v.BaseAllocs > 0 || v.CurAllocs > 0 {
			allocs = fmt.Sprintf("%.0f → %.0f", v.BaseAllocs, v.CurAllocs)
		}
		if v.BaseBytes > 0 || v.CurBytes > 0 {
			bytes = fmt.Sprintf("%.0f → %.0f", v.BaseBytes, v.CurBytes)
		}
		fmt.Fprintf(&sb, "%-60s %14.0f %14.0f %7s %19s %23s %s\n",
			v.Name, v.Baseline, v.Current, ratio, allocs, bytes, v.Status)
	}
	fmt.Fprintf(&sb, "tolerance: fail above %.2fx baseline ns/op\n", tolerance)
	return sb.String()
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: reading baseline: %w", err)
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("benchgate: decoding baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteJSON writes a baseline-shaped file from measured results — used both
// to refresh the committed baseline (-update) and to upload the current
// numbers as a CI artifact.
func WriteJSON(path, note string, tolerance, allocTolerance float64, results map[string]Result) error {
	b := &Baseline{Note: note, Tolerance: tolerance, AllocTolerance: allocTolerance, Benchmarks: results}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: encoding results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
