package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelAnalysis/workers=1-8         	     100	  51000000 ns/op	     94010 events
BenchmarkParallelAnalysis/workers=1-8         	     100	  50000000 ns/op	     94010 events
BenchmarkParallelAnalysis/workers=1-8         	     100	  52000000 ns/op	     94010 events
BenchmarkParallelAnalysis/workers=2-8         	     100	  30000000 ns/op	     94010 events
BenchmarkStreamingAnalysis/stream/workers=1   	       2	  58000000 ns/op	     22186 peak-resident-events
PASS
ok  	repro	12.3s
`

func TestParseAggregatesRuns(t *testing.T) {
	got := Parse(sampleOutput)
	w1 := got["BenchmarkParallelAnalysis/workers=1"]
	if w1.Runs != 3 {
		t.Fatalf("workers=1 runs = %d, want 3", w1.Runs)
	}
	if w1.NsPerOp != 50000000 {
		t.Fatalf("workers=1 min ns/op = %f, want 50000000 (minimum of repeats)", w1.NsPerOp)
	}
	if w1.MaxNsPerOp != 52000000 {
		t.Fatalf("workers=1 max ns/op = %f, want 52000000", w1.MaxNsPerOp)
	}
	if got["BenchmarkParallelAnalysis/workers=2"].NsPerOp != 30000000 {
		t.Fatalf("workers=2 parsed wrong: %+v", got)
	}
	// The -8 GOMAXPROCS suffix must be normalized away so baselines
	// transfer between machines with different core counts.
	for name := range got {
		if strings.HasSuffix(name, "-8") {
			t.Fatalf("name %q kept its GOMAXPROCS suffix", name)
		}
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
}

func baselineFor(results map[string]Result) *Baseline {
	return &Baseline{Tolerance: 1.5, Benchmarks: results}
}

func TestCompareOK(t *testing.T) {
	base := baselineFor(Parse(sampleOutput))
	verdicts, failed := Compare(base, Parse(sampleOutput), 0, 0)
	if failed {
		t.Fatalf("identical results failed the gate: %+v", verdicts)
	}
	for _, v := range verdicts {
		if v.Status != "ok" {
			t.Fatalf("verdict %+v, want ok", v)
		}
		if v.Ratio < 0.99 || v.Ratio > 1.01 {
			t.Fatalf("identical results ratio %f", v.Ratio)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := baselineFor(Parse(sampleOutput))
	slow := Parse(strings.ReplaceAll(sampleOutput, "30000000 ns/op", "90000000 ns/op"))
	verdicts, failed := Compare(base, slow, 0, 0)
	if !failed {
		t.Fatal("3x slowdown passed a 1.5x gate")
	}
	var found bool
	for _, v := range verdicts {
		if v.Name == "BenchmarkParallelAnalysis/workers=2" {
			found = true
			if v.Status != "regression" || v.Ratio < 2.9 || v.Ratio > 3.1 {
				t.Fatalf("verdict %+v, want 3x regression", v)
			}
		} else if v.Status == "regression" {
			t.Fatalf("unexpected regression verdict %+v", v)
		}
	}
	if !found {
		t.Fatal("regressed benchmark missing from verdicts")
	}
}

func TestCompareToleranceAbsorbsNoise(t *testing.T) {
	base := baselineFor(Parse(sampleOutput))
	noisy := Parse(strings.ReplaceAll(sampleOutput, "30000000 ns/op", "41000000 ns/op"))
	if _, failed := Compare(base, noisy, 0, 0); failed {
		t.Fatal("1.37x noise failed a 1.5x gate")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := baselineFor(Parse(sampleOutput))
	partial := Parse(strings.ReplaceAll(sampleOutput, "BenchmarkStreamingAnalysis", "BenchmarkRenamed"))
	verdicts, failed := Compare(base, partial, 0, 0)
	if !failed {
		t.Fatal("missing benchmark passed the gate")
	}
	var sawMissing, sawNew bool
	for _, v := range verdicts {
		switch v.Status {
		case "missing":
			sawMissing = v.Name == "BenchmarkStreamingAnalysis/stream/workers=1"
		case "new":
			sawNew = v.Name == "BenchmarkRenamed/stream/workers=1"
		}
	}
	if !sawMissing || !sawNew {
		t.Fatalf("verdicts %+v: want missing old name and new new name", verdicts)
	}
}

func TestCompareCommandLineToleranceWins(t *testing.T) {
	base := baselineFor(Parse(sampleOutput))
	slow := Parse(strings.ReplaceAll(sampleOutput, "30000000 ns/op", "41000000 ns/op"))
	if _, failed := Compare(base, slow, 1.2, 0); !failed {
		t.Fatal("1.37x slowdown passed an explicit 1.2x gate")
	}
}

const allocOutput = `
BenchmarkOverlapDeepNesting/incremental-8   	     500	   2300000 ns/op	     10000 events	     484 B/op	       5 allocs/op
BenchmarkOverlapDeepNesting/incremental-8   	     500	   2200000 ns/op	     10000 events	     500 B/op	       6 allocs/op
BenchmarkOverlapDeepNesting/reference-8     	      50	  30000000 ns/op	     10000 events	 2555360 B/op	      44 allocs/op
BenchmarkParallelAnalysis/workers=1-8       	     100	  21000000 ns/op	     94010 events
`

func TestParseAllocColumns(t *testing.T) {
	got := Parse(allocOutput)
	inc := got["BenchmarkOverlapDeepNesting/incremental"]
	if !inc.HasAllocs {
		t.Fatalf("alloc columns not parsed: %+v", inc)
	}
	if inc.AllocsPerOp != 5 || inc.BytesPerOp != 484 {
		t.Fatalf("want min allocs 5 and min bytes 484, got %+v", inc)
	}
	if w1 := got["BenchmarkParallelAnalysis/workers=1"]; w1.HasAllocs {
		t.Fatalf("benchmark without alloc columns marked HasAllocs: %+v", w1)
	}
}

func TestCompareGatesAllocRegression(t *testing.T) {
	base := baselineFor(Parse(allocOutput))
	base.AllocTolerance = 1.5
	// Same speed, ~10x the allocations in every run (the gate compares the
	// minimum across runs): must fail on allocs alone.
	leaky := Parse(strings.ReplaceAll(strings.ReplaceAll(allocOutput,
		"5 allocs/op", "50 allocs/op"), "6 allocs/op", "60 allocs/op"))
	verdicts, failed := Compare(base, leaky, 0, 0)
	if !failed {
		t.Fatal("10x alloc growth passed the gate")
	}
	var saw bool
	for _, v := range verdicts {
		if v.Name == "BenchmarkOverlapDeepNesting/incremental" {
			saw = true
			if v.Status != "alloc-regression" {
				t.Fatalf("verdict %+v, want alloc-regression", v)
			}
		}
	}
	if !saw {
		t.Fatal("regressed benchmark missing from verdicts")
	}
	// B/op regressions are gated the same way.
	bloated := Parse(strings.ReplaceAll(strings.ReplaceAll(allocOutput,
		"484 B/op", "9999 B/op"), "500 B/op", "9999 B/op"))
	if _, failed := Compare(base, bloated, 0, 0); !failed {
		t.Fatal("20x B/op growth passed the gate")
	}
}

func TestCompareAllocNoiseAbsorbed(t *testing.T) {
	base := baselineFor(Parse(allocOutput))
	noisy := Parse(strings.ReplaceAll(allocOutput, "5 allocs/op", "6 allocs/op"))
	if verdicts, failed := Compare(base, noisy, 0, 0); failed {
		t.Fatalf("1.2x alloc noise failed a 1.5x gate: %+v", verdicts)
	}
}

func TestCompareZeroBaselineSlack(t *testing.T) {
	// A zero-alloc baseline must absorb one stray small allocation on BOTH
	// columns (a single alloc always carries bytes with it), but catch
	// real growth from zero.
	zeroed := strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(allocOutput,
		"484 B/op	       5 allocs/op", "0 B/op	       0 allocs/op"),
		"500 B/op	       6 allocs/op", "0 B/op	       0 allocs/op"),
		"2555360 B/op	      44 allocs/op", "0 B/op	       0 allocs/op")
	base := baselineFor(Parse(zeroed))
	oneStray := Parse(strings.ReplaceAll(zeroed, "0 B/op	       0 allocs/op", "16 B/op	       1 allocs/op"))
	if verdicts, failed := Compare(base, oneStray, 0, 0); failed {
		t.Fatalf("one 16-byte stray allocation flaked a zero-alloc baseline: %+v", verdicts)
	}
	grown := Parse(strings.ReplaceAll(zeroed, "0 B/op	       0 allocs/op", "4096 B/op	      12 allocs/op"))
	if _, failed := Compare(base, grown, 0, 0); !failed {
		t.Fatal("real allocation growth from a zero baseline passed the gate")
	}
}

func TestCompareDroppedAllocReportingFails(t *testing.T) {
	base := baselineFor(Parse(allocOutput))
	// Strip the alloc columns: the benchmark still runs, but the
	// quantities the baseline locks in are no longer measured.
	stripped := Parse(strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(allocOutput,
		"	     484 B/op	       5 allocs/op", ""),
		"	     500 B/op	       6 allocs/op", ""),
		"	 2555360 B/op	      44 allocs/op", ""))
	if _, failed := Compare(base, stripped, 0, 0); !failed {
		t.Fatal("dropping b.ReportAllocs passed a baseline that gates allocations")
	}
}

func TestCompareBaselineWithoutAllocsNeverGatesThem(t *testing.T) {
	// Baseline predates allocation tracking; current output has columns.
	base := baselineFor(Parse(strings.ReplaceAll(strings.ReplaceAll(allocOutput,
		"	     484 B/op	       5 allocs/op", ""),
		"	     500 B/op	       6 allocs/op", "")))
	cur := Parse(strings.ReplaceAll(allocOutput, "5 allocs/op", "5000 allocs/op"))
	verdicts, failed := Compare(base, cur, 0, 0)
	for _, v := range verdicts {
		if v.Name == "BenchmarkOverlapDeepNesting/incremental" && v.Status != "ok" {
			t.Fatalf("allocs gated without baseline data: %+v (failed=%v)", v, failed)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	results := Parse(sampleOutput)
	if err := WriteJSON(path, "unit test", 1.5, 1.5, results); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tolerance != 1.5 || got.Note != "unit test" {
		t.Fatalf("baseline header %+v", got)
	}
	if len(got.Benchmarks) != len(results) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(got.Benchmarks), len(results))
	}
	if got.Benchmarks["BenchmarkParallelAnalysis/workers=1"].NsPerOp != 50000000 {
		t.Fatalf("round trip changed numbers: %+v", got.Benchmarks)
	}
	if Report(nil, 1.5) == "" || Report([]Verdict{{Name: "x", Status: "ok"}}, 1.5) == "" {
		t.Fatal("empty report")
	}
}
