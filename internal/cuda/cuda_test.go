package cuda

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// fakeRecorder is a minimal Recorder for exercising the CUDA runtime without
// the full profiler.
type fakeRecorder struct {
	clock     *vclock.Clock
	events    []trace.Event
	overheads []trace.OverheadKind
	trans     []string
	// inject simulates enabled book-keeping cost per overhead occurrence.
	inject vclock.Duration
}

func newFakeRecorder() *fakeRecorder {
	return &fakeRecorder{clock: vclock.New(1)}
}

func (f *fakeRecorder) Clock() *vclock.Clock { return f.clock }
func (f *fakeRecorder) Emit(e trace.Event)   { f.events = append(f.events, e) }
func (f *fakeRecorder) Overhead(kind trace.OverheadKind, name string) {
	f.overheads = append(f.overheads, kind)
	f.clock.Advance(f.inject)
}
func (f *fakeRecorder) Transition(label string) { f.trans = append(f.trans, label) }
func (f *fakeRecorder) Proc() trace.ProcID      { return 3 }

func exactCosts() Costs {
	return Costs{
		LaunchKernel:      vclock.Exact(10 * vclock.Microsecond),
		MemcpyAsync:       vclock.Exact(6 * vclock.Microsecond),
		Memcpy:            vclock.Exact(8 * vclock.Microsecond),
		StreamSynchronize: vclock.Exact(4 * vclock.Microsecond),
		DeviceSynchronize: vclock.Exact(5 * vclock.Microsecond),
		MemcpyBandwidth:   1e9, // 1 GB/s: 1 byte = 1 ns
	}
}

func (f *fakeRecorder) cpuEvents() []trace.Event {
	var out []trace.Event
	for _, e := range f.events {
		if e.Kind == trace.KindCPU {
			out = append(out, e)
		}
	}
	return out
}

func (f *fakeRecorder) gpuEvents() []trace.Event {
	var out []trace.Event
	for _, e := range f.events {
		if e.Kind == trace.KindGPU {
			out = append(out, e)
		}
	}
	return out
}

func TestLaunchKernelIsAsync(t *testing.T) {
	rec := newFakeRecorder()
	dev := gpu.NewDevice(0)
	ctx := NewContext(rec, dev, exactCosts())

	ctx.LaunchKernel("matmul", 500*vclock.Microsecond)

	// CPU returns after only the API cost, not the kernel duration.
	if got := rec.clock.Now(); got != vclock.Time(10*vclock.Microsecond) {
		t.Fatalf("CPU time after launch = %v, want 10µs", got)
	}
	gpuEvs := rec.gpuEvents()
	if len(gpuEvs) != 1 {
		t.Fatalf("GPU events = %d, want 1", len(gpuEvs))
	}
	if gpuEvs[0].Duration() != 500*vclock.Microsecond {
		t.Fatalf("kernel duration = %v, want 500µs", gpuEvs[0].Duration())
	}
	if gpuEvs[0].End <= vclock.Time(10*vclock.Microsecond) {
		t.Fatal("kernel should complete after the CPU-side launch returns")
	}
}

func TestLaunchEmitsCUDAEvent(t *testing.T) {
	rec := newFakeRecorder()
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.LaunchKernel("k", vclock.Microsecond)
	cpuEvs := rec.cpuEvents()
	if len(cpuEvs) != 1 {
		t.Fatalf("CPU events = %d, want 1", len(cpuEvs))
	}
	e := cpuEvs[0]
	if e.Cat != trace.CatCUDA || e.Name != APILaunchKernel || e.Proc != 3 {
		t.Fatalf("CUDA event = %+v", e)
	}
	if e.Duration() != 10*vclock.Microsecond {
		t.Fatalf("CUDA event duration = %v, want 10µs", e.Duration())
	}
}

func TestStreamSynchronizeBlocksUntilWorkDrains(t *testing.T) {
	rec := newFakeRecorder()
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.LaunchKernel("k", 2*vclock.Millisecond)
	launchReturn := rec.clock.Now()
	ctx.StreamSynchronize()
	// The kernel was issued at the start of the launch API call and runs
	// 2 ms; sync must block until it drains.
	if got := rec.clock.Now(); got < vclock.Time(2*vclock.Millisecond) {
		t.Fatalf("clock after sync = %v, want >= 2ms", got)
	}
	if rec.clock.Now() <= launchReturn {
		t.Fatal("sync did not advance the clock past the launch return")
	}
}

func TestDeviceSynchronizeWaitsForAllStreams(t *testing.T) {
	dev := gpu.NewDevice(0)
	recA := newFakeRecorder()
	ctxA := NewContext(recA, dev, exactCosts())
	recB := newFakeRecorder()
	ctxB := NewContext(recB, dev, exactCosts())

	ctxA.LaunchKernel("long", 5*vclock.Millisecond)
	ctxB.DeviceSynchronize()
	if got := recB.clock.Now(); got < vclock.Time(5*vclock.Millisecond) {
		t.Fatalf("device sync returned at %v, before other stream drained", got)
	}
}

func TestMemcpyBlocksMemcpyAsyncDoesNot(t *testing.T) {
	const bytes = 1 << 20 // 1 MiB at 1 GB/s ≈ 1.048 ms
	recA := newFakeRecorder()
	ctxA := NewContext(recA, gpu.NewDevice(0), exactCosts())
	ctxA.MemcpyAsync(HostToDevice, bytes)
	asyncT := recA.clock.Now()

	recB := newFakeRecorder()
	ctxB := NewContext(recB, gpu.NewDevice(0), exactCosts())
	ctxB.Memcpy(HostToDevice, bytes)
	syncT := recB.clock.Now()

	if asyncT >= vclock.Time(vclock.Millisecond) {
		t.Fatalf("async memcpy blocked the CPU: %v", asyncT)
	}
	if syncT < vclock.Time(vclock.Millisecond) {
		t.Fatalf("sync memcpy did not block the CPU: %v", syncT)
	}
}

func TestMemcpyEmitsGPUMemcpyEvent(t *testing.T) {
	rec := newFakeRecorder()
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.MemcpyAsync(DeviceToHost, 1000)
	evs := rec.gpuEvents()
	if len(evs) != 1 || evs[0].Cat != trace.CatGPUMemcpy || evs[0].Name != "memcpyD2H" {
		t.Fatalf("memcpy GPU event = %+v", evs)
	}
	if evs[0].Duration() != vclock.Microsecond {
		t.Fatalf("1000B at 1GB/s = %v, want 1µs", evs[0].Duration())
	}
}

func TestTransitionAndOverheadHooksFire(t *testing.T) {
	rec := newFakeRecorder()
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.LaunchKernel("k", vclock.Microsecond)
	ctx.MemcpyAsync(HostToDevice, 10)

	if len(rec.trans) != 2 || rec.trans[0] != trace.TransBackendToCUDA {
		t.Fatalf("transitions = %v", rec.trans)
	}
	// Each API call fires CUDAIntercept (outside) and CUPTI (inside).
	var hooks, cupti int
	for _, k := range rec.overheads {
		switch k {
		case trace.OverheadCUDAIntercept:
			hooks++
		case trace.OverheadCUPTI:
			cupti++
		}
	}
	if hooks != 2 || cupti != 2 {
		t.Fatalf("hook counts: intercept=%d cupti=%d, want 2/2", hooks, cupti)
	}
}

func TestCUPTIInflationLandsInsideAPICall(t *testing.T) {
	rec := newFakeRecorder()
	rec.inject = 3 * vclock.Microsecond // every overhead occurrence costs 3µs
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.LaunchKernel("k", vclock.Microsecond)
	cpuEvs := rec.cpuEvents()
	// The CUDA event must contain the CUPTI injection (base 10µs + 3µs)
	// but not the interception hook, which ran before the call started.
	if got := cpuEvs[0].Duration(); got != 13*vclock.Microsecond {
		t.Fatalf("CUDA event duration = %v, want 13µs (base+CUPTI)", got)
	}
	if cpuEvs[0].Start != vclock.Time(3*vclock.Microsecond) {
		t.Fatalf("CUDA event starts at %v; interception cost must precede it", cpuEvs[0].Start)
	}
}

func TestAPICounts(t *testing.T) {
	rec := newFakeRecorder()
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.LaunchKernel("a", 1)
	ctx.LaunchKernel("b", 1)
	ctx.MemcpyAsync(HostToDevice, 1)
	ctx.StreamSynchronize()
	counts := ctx.APICounts()
	if counts[APILaunchKernel] != 2 || counts[APIMemcpyAsync] != 1 || counts[APIStreamSynchronize] != 1 {
		t.Fatalf("APICounts = %v", counts)
	}
}

func TestKernelsSerializeOnStream(t *testing.T) {
	rec := newFakeRecorder()
	ctx := NewContext(rec, gpu.NewDevice(0), exactCosts())
	ctx.LaunchKernel("k1", vclock.Millisecond)
	ctx.LaunchKernel("k2", vclock.Millisecond)
	evs := rec.gpuEvents()
	if evs[1].Start != evs[0].End {
		t.Fatalf("k2 starts at %v, want %v (FIFO)", evs[1].Start, evs[0].End)
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" || DeviceToDevice.String() != "D2D" {
		t.Fatal("direction names wrong")
	}
}

func TestCostsFor(t *testing.T) {
	c := DefaultCosts()
	for _, api := range APINames {
		if c.For(api).Mean <= 0 {
			t.Fatalf("no cost for %s", api)
		}
	}
	if c.For("bogus").Mean != 0 {
		t.Fatal("unknown API should have zero cost")
	}
}

func TestCUPTIInflationCoversAllAPIs(t *testing.T) {
	inf := CUPTIInflation()
	for _, api := range APINames {
		if inf[api].Mean <= 0 {
			t.Fatalf("no CUPTI inflation for %s", api)
		}
	}
	// Launch inflates more than memcpy, as in the paper's Fig. 10 example.
	if inf[APILaunchKernel].Mean <= inf[APIMemcpyAsync].Mean {
		t.Fatal("launch inflation should exceed memcpy inflation")
	}
}
