// Package cuda simulates the CUDA runtime API surface that ML backends call
// into, together with the CUPTI profiling behaviour RL-Scope must calibrate
// away.
//
// Two properties of the real CUDA runtime matter to the paper and are
// modelled here:
//
//  1. Every API call costs CPU time on the calling thread, separate from the
//     GPU time of the work it enqueues. For RL's small kernels, CPU-side API
//     time exceeds GPU kernel time (paper F.8: 3.6× on average).
//  2. When CUPTI activity collection is enabled, closed-source code inside
//     the CUDA library inflates each API call by an API-specific amount.
//     The inflation cannot be toggled per-API, which is why the paper needs
//     difference-of-average calibration (Appendix C.2).
//
// A Context is a per-process handle. Hooks for the profiler (librlscope's
// transparent CUPTI-callback interception, §3.2) are injected through the
// Recorder interface so the runtime itself needs no recompilation — the
// same property the paper claims for real ML backends.
package cuda

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// CUDA API names, used for per-API cost modelling, CUPTI inflation
// calibration, and trace labels.
const (
	APILaunchKernel      = "cudaLaunchKernel"
	APIMemcpyAsync       = "cudaMemcpyAsync"
	APIMemcpy            = "cudaMemcpy"
	APIStreamSynchronize = "cudaStreamSynchronize"
	APIDeviceSynchronize = "cudaDeviceSynchronize"
)

// APINames lists every modelled API, in a stable order.
var APINames = []string{
	APILaunchKernel,
	APIMemcpyAsync,
	APIMemcpy,
	APIStreamSynchronize,
	APIDeviceSynchronize,
}

// Direction of a memory copy.
type Direction uint8

// Memcpy directions.
const (
	HostToDevice Direction = iota
	DeviceToHost
	DeviceToDevice
)

// String returns the CUDA-style direction name.
func (d Direction) String() string {
	switch d {
	case HostToDevice:
		return "H2D"
	case DeviceToHost:
		return "D2H"
	case DeviceToDevice:
		return "D2D"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Recorder is the profiler-facing hook surface. The profiler's per-process
// session implements it; an inert implementation is used when profiling is
// off. Methods are invoked on the simulated process's own goroutine.
type Recorder interface {
	// Clock returns the process's virtual clock.
	Clock() *vclock.Clock
	// Emit records one trace event.
	Emit(e trace.Event)
	// Overhead runs one book-keeping occurrence of the given kind: if the
	// corresponding profiler feature is enabled it advances the clock by
	// the (hidden, stochastic) true cost and emits a marker event.
	Overhead(kind trace.OverheadKind, name string)
	// Transition records one language-transition marker.
	Transition(label string)
	// Proc identifies the process.
	Proc() trace.ProcID
}

// Costs models the CPU-side base duration of each CUDA API call.
type Costs struct {
	LaunchKernel      vclock.Dist
	MemcpyAsync       vclock.Dist
	Memcpy            vclock.Dist // fixed part; transfer adds bytes/bandwidth
	StreamSynchronize vclock.Dist // fixed part; blocking wait adds the rest
	DeviceSynchronize vclock.Dist
	// MemcpyBandwidth is bytes per second over PCIe for host/device copies.
	MemcpyBandwidth float64
}

// DefaultCosts returns CPU-side API costs calibrated to reproduce the
// paper's observed CUDA-API-dominance for small RL kernels.
func DefaultCosts() Costs {
	return Costs{
		LaunchKernel:      vclock.Jittered(8*vclock.Microsecond, 0.25),
		MemcpyAsync:       vclock.Jittered(6*vclock.Microsecond, 0.25),
		Memcpy:            vclock.Jittered(10*vclock.Microsecond, 0.25),
		StreamSynchronize: vclock.Jittered(4*vclock.Microsecond, 0.25),
		DeviceSynchronize: vclock.Jittered(5*vclock.Microsecond, 0.25),
		MemcpyBandwidth:   12e9, // ~12 GB/s effective PCIe 3.0 x16
	}
}

// For returns the base-cost distribution for the named API.
func (c Costs) For(api string) vclock.Dist {
	switch api {
	case APILaunchKernel:
		return c.LaunchKernel
	case APIMemcpyAsync:
		return c.MemcpyAsync
	case APIMemcpy:
		return c.Memcpy
	case APIStreamSynchronize:
		return c.StreamSynchronize
	case APIDeviceSynchronize:
		return c.DeviceSynchronize
	default:
		return vclock.Dist{}
	}
}

// CUPTIInflation maps API name → extra CPU time added inside the CUDA
// library per call when CUPTI activity collection is enabled. The defaults
// follow the paper's Appendix C.2 worked example: cudaLaunchKernel inflates
// about 3 µs per call and cudaMemcpyAsync about 1 µs.
func CUPTIInflation() map[string]vclock.Dist {
	return map[string]vclock.Dist{
		APILaunchKernel:      vclock.Jittered(5*vclock.Microsecond, 0.3),
		APIMemcpyAsync:       vclock.Jittered(1500*vclock.Nanosecond, 0.3),
		APIMemcpy:            vclock.Jittered(2*vclock.Microsecond, 0.3),
		APIStreamSynchronize: vclock.Jittered(1200*vclock.Nanosecond, 0.3),
		APIDeviceSynchronize: vclock.Jittered(1200*vclock.Nanosecond, 0.3),
	}
}

// Context is a per-process CUDA runtime handle bound to one device stream.
type Context struct {
	rec    Recorder
	dev    *gpu.Device
	stream gpu.StreamID
	costs  Costs

	// lastEnd is the completion time of the most recently submitted work
	// from this context; Synchronize waits for it.
	lastEnd vclock.Time

	// counts tracks API invocations, the denominator of delta
	// calibration.
	counts map[string]int
}

// NewContext binds a process (via its Recorder) to a device, allocating a
// dedicated stream.
func NewContext(rec Recorder, dev *gpu.Device, costs Costs) *Context {
	return &Context{
		rec:    rec,
		dev:    dev,
		stream: dev.NewStream(),
		costs:  costs,
		counts: map[string]int{},
	}
}

// Stream returns the context's stream ID.
func (c *Context) Stream() gpu.StreamID { return c.stream }

// Device returns the underlying device.
func (c *Context) Device() *gpu.Device { return c.dev }

// APICounts returns a copy of per-API invocation counts.
func (c *Context) APICounts() map[string]int {
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// apiCall wraps one CUDA API invocation: librlscope's interception hook runs
// outside the call (its cost lands in the caller's Backend time), the base
// API cost and any CUPTI inflation run inside, and a CatCUDA CPU event spans
// the call.
func (c *Context) apiCall(api string, body func(issue vclock.Time)) {
	c.counts[api]++
	c.rec.Transition(trace.TransBackendToCUDA)
	c.rec.Overhead(trace.OverheadCUDAIntercept, api)
	clk := c.rec.Clock()
	start := clk.Now()
	clk.Advance(c.costs.For(api).Sample(clk.Rand()))
	c.rec.Overhead(trace.OverheadCUPTI, api)
	if body != nil {
		body(start)
	}
	c.rec.Emit(trace.Event{
		Kind:  trace.KindCPU,
		Cat:   trace.CatCUDA,
		Proc:  c.rec.Proc(),
		Start: start,
		End:   clk.Now(),
		Name:  api,
	})
}

// LaunchKernel enqueues a kernel with the given device duration. The call
// returns after the CPU-side API cost; the kernel runs asynchronously.
func (c *Context) LaunchKernel(name string, gpuDur vclock.Duration) {
	c.apiCall(APILaunchKernel, func(issue vclock.Time) {
		start, end := c.dev.Submit(c.rec.Proc(), c.stream, issue, gpuDur, name, trace.CatGPUKernel)
		if end > c.lastEnd {
			c.lastEnd = end
		}
		c.rec.Emit(trace.Event{
			Kind:  trace.KindGPU,
			Cat:   trace.CatGPUKernel,
			Proc:  c.rec.Proc(),
			Start: start,
			End:   end,
			Name:  name,
		})
	})
}

// transferDur converts a byte count to device copy time.
func (c *Context) transferDur(bytes int) vclock.Duration {
	if bytes <= 0 || c.costs.MemcpyBandwidth <= 0 {
		return vclock.Microsecond
	}
	d := vclock.Duration(float64(bytes) / c.costs.MemcpyBandwidth * float64(vclock.Second))
	if d < vclock.Microsecond {
		d = vclock.Microsecond
	}
	return d
}

// MemcpyAsync enqueues an asynchronous copy of the given size and returns
// after the CPU-side API cost.
func (c *Context) MemcpyAsync(dir Direction, bytes int) {
	c.apiCall(APIMemcpyAsync, func(issue vclock.Time) {
		name := "memcpy" + dir.String()
		start, end := c.dev.Submit(c.rec.Proc(), c.stream, issue, c.transferDur(bytes), name, trace.CatGPUMemcpy)
		if end > c.lastEnd {
			c.lastEnd = end
		}
		c.rec.Emit(trace.Event{
			Kind:  trace.KindGPU,
			Cat:   trace.CatGPUMemcpy,
			Proc:  c.rec.Proc(),
			Start: start,
			End:   end,
			Name:  name,
		})
	})
}

// Memcpy performs a synchronous copy: the CPU blocks inside the API call
// until the device completes the transfer.
func (c *Context) Memcpy(dir Direction, bytes int) {
	c.apiCall(APIMemcpy, func(issue vclock.Time) {
		name := "memcpy" + dir.String()
		start, end := c.dev.Submit(c.rec.Proc(), c.stream, issue, c.transferDur(bytes), name, trace.CatGPUMemcpy)
		if end > c.lastEnd {
			c.lastEnd = end
		}
		c.rec.Emit(trace.Event{
			Kind:  trace.KindGPU,
			Cat:   trace.CatGPUMemcpy,
			Proc:  c.rec.Proc(),
			Start: start,
			End:   end,
			Name:  name,
		})
		c.rec.Clock().AdvanceTo(end)
	})
}

// StreamSynchronize blocks the CPU inside the API call until all work
// submitted by this context completes.
func (c *Context) StreamSynchronize() {
	c.apiCall(APIStreamSynchronize, func(issue vclock.Time) {
		c.rec.Clock().AdvanceTo(c.lastEnd)
	})
}

// DeviceSynchronize blocks the CPU until every stream on the device drains.
func (c *Context) DeviceSynchronize() {
	c.apiCall(APIDeviceSynchronize, func(issue vclock.Time) {
		c.rec.Clock().AdvanceTo(c.dev.DeviceTail())
	})
}
