package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestSubmitOnIdleStream(t *testing.T) {
	d := NewDevice(2 * vclock.Microsecond)
	s := d.NewStream()
	start, end := d.Submit(0, s, 100, 50, "k", trace.CatGPUKernel)
	if start != 100+vclock.Time(2*vclock.Microsecond) {
		t.Fatalf("start = %v, want issue+latency", start)
	}
	if end != start+50 {
		t.Fatalf("end = %v, want start+50", end)
	}
}

func TestStreamFIFO(t *testing.T) {
	d := NewDevice(0)
	s := d.NewStream()
	_, end1 := d.Submit(0, s, 0, 100, "k1", trace.CatGPUKernel)
	start2, end2 := d.Submit(0, s, 10, 100, "k2", trace.CatGPUKernel)
	if start2 != end1 {
		t.Fatalf("k2 starts at %v, want %v (FIFO after k1)", start2, end1)
	}
	if d.StreamTail(s) != end2 {
		t.Fatalf("stream tail = %v, want %v", d.StreamTail(s), end2)
	}
}

func TestStreamsIndependent(t *testing.T) {
	d := NewDevice(0)
	s1, s2 := d.NewStream(), d.NewStream()
	d.Submit(0, s1, 0, 1000, "k1", trace.CatGPUKernel)
	start2, _ := d.Submit(1, s2, 0, 10, "k2", trace.CatGPUKernel)
	if start2 != 0 {
		t.Fatalf("k2 on independent stream starts at %v, want 0", start2)
	}
}

func TestDeviceTail(t *testing.T) {
	d := NewDevice(0)
	s1, s2 := d.NewStream(), d.NewStream()
	d.Submit(0, s1, 0, 100, "k1", trace.CatGPUKernel)
	d.Submit(0, s2, 0, 300, "k2", trace.CatGPUKernel)
	if got := d.DeviceTail(); got != 300 {
		t.Fatalf("DeviceTail = %v, want 300", got)
	}
}

func TestBusyUnionMergesOverlaps(t *testing.T) {
	busy := []Busy{
		{Start: 0, End: 10},
		{Start: 5, End: 20},
		{Start: 30, End: 40},
		{Start: 40, End: 50}, // adjacent merges
	}
	u := Union(busy)
	if len(u) != 2 {
		t.Fatalf("union has %d intervals, want 2: %v", len(u), u)
	}
	if u[0] != (Interval{0, 20}) || u[1] != (Interval{30, 50}) {
		t.Fatalf("union = %v", u)
	}
}

func TestUnionEmpty(t *testing.T) {
	if got := Union(nil); got != nil {
		t.Fatalf("Union(nil) = %v, want nil", got)
	}
}

func TestTotalBusy(t *testing.T) {
	d := NewDevice(0)
	s1, s2 := d.NewStream(), d.NewStream()
	d.Submit(0, s1, 0, 100, "a", trace.CatGPUKernel)
	d.Submit(0, s2, 50, 100, "b", trace.CatGPUKernel) // overlaps [50,100)
	if got := d.TotalBusy(); got != 150 {
		t.Fatalf("TotalBusy = %v, want 150", got)
	}
}

func TestReset(t *testing.T) {
	d := NewDevice(0)
	s := d.NewStream()
	d.Submit(0, s, 0, 100, "a", trace.CatGPUKernel)
	d.Reset()
	if got := d.TotalBusy(); got != 0 {
		t.Fatalf("TotalBusy after Reset = %v, want 0", got)
	}
	if got := d.StreamTail(s); got != 0 {
		t.Fatalf("StreamTail after Reset = %v, want 0", got)
	}
	// Stream remains usable.
	start, _ := d.Submit(0, s, 5, 10, "b", trace.CatGPUKernel)
	if start != 5 {
		t.Fatalf("post-reset submit start = %v, want 5", start)
	}
}

func TestBusyLedgerRecordsMetadata(t *testing.T) {
	d := NewDevice(0)
	s := d.NewStream()
	d.Submit(7, s, 0, 10, "matmul", trace.CatGPUKernel)
	d.Submit(7, s, 0, 5, "memcpyH2D", trace.CatGPUMemcpy)
	busy := d.BusyIntervals()
	if len(busy) != 2 {
		t.Fatalf("ledger has %d entries, want 2", len(busy))
	}
	if busy[0].Name != "matmul" || busy[0].Proc != 7 || busy[0].Cat != trace.CatGPUKernel {
		t.Fatalf("ledger entry = %+v", busy[0])
	}
	if busy[1].Cat != trace.CatGPUMemcpy {
		t.Fatalf("second entry cat = %v", busy[1].Cat)
	}
	if busy[0].Duration() != 10 {
		t.Fatalf("Duration = %v, want 10", busy[0].Duration())
	}
}

// Property: union intervals are sorted, disjoint, and their total length
// never exceeds the sum of the inputs.
func TestUnionInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		busy := make([]Busy, int(n)%32)
		var sum vclock.Duration
		for i := range busy {
			s := vclock.Time(rng.Int63n(1000))
			d := vclock.Duration(1 + rng.Int63n(100))
			busy[i] = Busy{Start: s, End: s.Add(d)}
			sum += d
		}
		u := Union(busy)
		var total vclock.Duration
		for i, iv := range u {
			if iv.End <= iv.Start {
				return false
			}
			if i > 0 && iv.Start <= u[i-1].End {
				return false
			}
			total += iv.End.Sub(iv.Start)
		}
		return total <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-stream FIFO means starts are non-decreasing and intervals on
// one stream never overlap.
func TestStreamFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice(vclock.Duration(rng.Int63n(5)))
		s := d.NewStream()
		var issue vclock.Time
		var prevEnd vclock.Time
		for i := 0; i < 50; i++ {
			issue = issue.Add(vclock.Duration(rng.Int63n(20)))
			start, end := d.Submit(0, s, issue, vclock.Duration(1+rng.Int63n(30)), "k", trace.CatGPUKernel)
			if start < prevEnd || end <= start {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
