// Package gpu simulates the accelerator device that CUDA API calls enqueue
// work onto.
//
// The device models the properties RL-Scope's analysis depends on:
//
//   - Kernels and memory copies execute asynchronously with respect to the
//     CPU: a launch returns immediately and device work proceeds on its own
//     virtual timeline.
//   - Work on one stream executes FIFO; streams are independent.
//   - The device is shared: multiple simulated processes (Minigo self-play
//     workers) submit to the same device, so their kernels serialize when
//     streams contend.
//
// The device keeps a ledger of busy intervals used both by the trace (GPU
// events) and by the nvidia-smi-style sampled utilization monitor.
package gpu

import (
	"sort"
	"sync"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// StreamID identifies one device stream.
type StreamID int32

// Busy is one interval of device activity.
type Busy struct {
	Start, End vclock.Time
	Name       string
	Cat        trace.Category // CatGPUKernel or CatGPUMemcpy
	Proc       trace.ProcID
	Stream     StreamID
}

// Duration returns the interval's extent.
func (b Busy) Duration() vclock.Duration { return b.End.Sub(b.Start) }

// Device is a simulated GPU. It is safe for concurrent use; simulated
// processes may run on separate goroutines.
type Device struct {
	mu            sync.Mutex
	tails         map[StreamID]vclock.Time
	nextStream    StreamID
	busy          []Busy
	launchLatency vclock.Duration
}

// DefaultLaunchLatency is the delay between a CPU-side launch call issuing
// and the earliest moment the kernel may begin on an idle stream, modelling
// driver/queue latency.
const DefaultLaunchLatency = 2 * vclock.Microsecond

// NewDevice returns an idle device. launchLatency < 0 uses
// DefaultLaunchLatency.
func NewDevice(launchLatency vclock.Duration) *Device {
	if launchLatency < 0 {
		launchLatency = DefaultLaunchLatency
	}
	return &Device{
		tails:         map[StreamID]vclock.Time{},
		launchLatency: launchLatency,
	}
}

// NewStream allocates a fresh stream.
func (d *Device) NewStream() StreamID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextStream
	d.nextStream++
	d.tails[id] = 0
	return id
}

// Submit enqueues dur of device work on the stream, issued from the CPU at
// time issue. It returns the scheduled [start, end) of the work: the work
// begins after both the launch latency and any earlier work on the stream.
func (d *Device) Submit(proc trace.ProcID, stream StreamID, issue vclock.Time, dur vclock.Duration, name string, cat trace.Category) (start, end vclock.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start = issue.Add(d.launchLatency)
	if tail := d.tails[stream]; tail > start {
		start = tail
	}
	end = start.Add(dur)
	d.tails[stream] = end
	d.busy = append(d.busy, Busy{Start: start, End: end, Name: name, Cat: cat, Proc: proc, Stream: stream})
	return start, end
}

// StreamTail reports when the last work submitted to the stream completes.
func (d *Device) StreamTail(s StreamID) vclock.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tails[s]
}

// DeviceTail reports when the last work on any stream completes.
func (d *Device) DeviceTail() vclock.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	var tail vclock.Time
	for _, t := range d.tails {
		if t > tail {
			tail = t
		}
	}
	return tail
}

// BusyIntervals returns a copy of the busy ledger in submission order.
func (d *Device) BusyIntervals() []Busy {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Busy, len(d.busy))
	copy(out, d.busy)
	return out
}

// Interval is a plain time range.
type Interval struct {
	Start, End vclock.Time
}

// BusyUnion returns the merged union of all busy intervals, sorted by start.
// Overlapping work on different streams counts once — this is "time during
// which at least one kernel was executing", the denominator of honest GPU
// usage.
func (d *Device) BusyUnion() []Interval {
	busy := d.BusyIntervals()
	return Union(busy)
}

// Union merges a set of busy intervals into disjoint sorted intervals.
func Union(busy []Busy) []Interval {
	if len(busy) == 0 {
		return nil
	}
	ivs := make([]Interval, len(busy))
	for i, b := range busy {
		ivs[i] = Interval{b.Start, b.End}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalBusy returns the total length of the busy union.
func (d *Device) TotalBusy() vclock.Duration {
	var total vclock.Duration
	for _, iv := range d.BusyUnion() {
		total += iv.End.Sub(iv.Start)
	}
	return total
}

// Reset clears the busy ledger and stream tails, keeping allocated streams.
// Experiments reuse one device across repeated runs.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.busy = nil
	for s := range d.tails {
		d.tails[s] = 0
	}
}
