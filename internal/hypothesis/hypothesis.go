// Package hypothesis turns the paper's findings — and this repo's own
// scaling claims — into declaratively specified, continuously re-verified
// experiments. A committed grid (hypotheses.json) describes each claim as a
// set of conditions over named experiment metrics; the evaluator runs the
// required experiment cells (one per ⟨experiment, steps, seed⟩, shared
// across hypotheses), classifies each claim, and emits a machine-readable
// verdict document CI can gate on, the way benchgate gates performance.
//
// The rigor rules follow the BLIS experiment standards (SNIPPETS.md
// snippet 3). Every hypothesis is classified before evaluation:
//
//   - deterministic: verifies an exact property (an invariant, a
//     conservation law, byte-identity). One seed suffices — determinism is
//     the point — and the verdict is binary: confirmed or refuted. A
//     refuted deterministic hypothesis is ALWAYS a bug, never noise, so the
//     CI gate fails the build on it.
//
//   - statistical: compares metrics whose values vary by seed. At least
//     three seeds are required; the claim is confirmed only when every
//     condition holds with its full effect size in EVERY seed (directional
//     consistency — one contradicting seed means not confirmed). It is
//     refuted only when some condition's direction is contradicted in every
//     seed; anything in between is inconclusive.
package hypothesis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Class is the hypothesis classification that fixes the rigor rules.
type Class string

const (
	// Deterministic hypotheses verify exact properties at a single seed.
	Deterministic Class = "deterministic"
	// Statistical hypotheses compare seed-varying metrics across ≥ 3
	// seeds with effect-size and directional-consistency requirements.
	Statistical Class = "statistical"
)

// Verdict is the outcome of evaluating one hypothesis.
type Verdict string

const (
	// Confirmed: every condition held with full effect in every seed.
	Confirmed Verdict = "confirmed"
	// Inconclusive: neither confirmed nor consistently contradicted —
	// mixed directions across seeds, or effects below the significance
	// threshold. Statistical hypotheses only.
	Inconclusive Verdict = "inconclusive"
	// Refuted: the claim failed (deterministic) or its direction was
	// contradicted in every seed (statistical).
	Refuted Verdict = "refuted"
)

// Kind is a condition's predicate shape over one metric value.
type Kind string

const (
	// KindMinRatio requires value ≥ Bound. The weak zone (direction
	// right, effect short of Bound) reaches down to Contra, which
	// defaults to 1 — the no-effect point for a ratio.
	KindMinRatio Kind = "min_ratio"
	// KindBand requires Lo ≤ value ≤ Hi. Below-band values down to
	// Contra (default min(1, Lo)) and above-band values are weak; only
	// values at or below Contra contradict the claimed direction.
	KindBand Kind = "band"
	// KindEquiv requires |value − 1| ≤ Tol (an equivalence test over a
	// ratio). Deviations beyond Contra (default 2·Tol) contradict.
	KindEquiv Kind = "equiv"
	// KindMaxValue requires value ≤ Bound; larger values contradict
	// unless Contra sets a higher cutoff (then (Bound, Contra] is weak).
	KindMaxValue Kind = "max_value"
	// KindMinValue requires value ≥ Bound; smaller values contradict
	// unless Contra sets a lower cutoff (then [Contra, Bound) is weak).
	KindMinValue Kind = "min_value"
	// KindEq requires |value − Want| ≤ Eps (Eps defaults to 0). Exact
	// checks for deterministic hypotheses; failure contradicts.
	KindEq Kind = "eq"
)

// Condition is one predicate of a hypothesis. Its value is either the named
// Metric, or the ratio Num/Den of two named metrics from the hypothesis's
// experiment bundle.
type Condition struct {
	// Name labels the condition in the verdict document.
	Name string `json:"name"`
	// Kind selects the predicate shape.
	Kind Kind `json:"kind"`
	// Metric names the bundle metric to test. Mutually exclusive with
	// Num/Den.
	Metric string `json:"metric,omitempty"`
	// Num and Den name two bundle metrics; the tested value is their
	// ratio.
	Num string `json:"num,omitempty"`
	Den string `json:"den,omitempty"`
	// Bound is the threshold for min_ratio / min_value / max_value.
	Bound float64 `json:"bound,omitempty"`
	// Lo and Hi delimit a band condition.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Tol is the equivalence tolerance.
	Tol float64 `json:"tol,omitempty"`
	// Want and Eps parameterize an eq condition.
	Want float64 `json:"want,omitempty"`
	Eps  float64 `json:"eps,omitempty"`
	// Contra, when set, overrides the kind's default
	// direction-contradicted cutoff (see the Kind docs).
	Contra float64 `json:"contra,omitempty"`
}

// Hypothesis is one claim of the grid.
type Hypothesis struct {
	// ID is the stable identifier (e.g. "F.1", "R.sweep-scaling").
	ID string `json:"id"`
	// Title states the claim in one line.
	Title string `json:"title"`
	// Class fixes the rigor rules (deterministic | statistical).
	Class Class `json:"class"`
	// Experiment names the metric bundle the conditions draw from (an
	// experiments.Metrics id).
	Experiment string `json:"experiment"`
	// Steps is the per-workload environment-step budget for the
	// experiment cells; 0 selects the experiment's default.
	Steps int `json:"steps,omitempty"`
	// Seeds lists the cell seeds. Deterministic hypotheses use exactly
	// one; statistical hypotheses at least three.
	Seeds []int64 `json:"seeds"`
	// Timing marks hypotheses whose metrics measure host wall-clock time
	// rather than the simulated clock. Their values — though not their
	// expected verdicts — vary run to run, so -timing=false excludes
	// them when byte-deterministic output is required.
	Timing bool `json:"timing,omitempty"`
	// Conditions must all hold for the hypothesis to be confirmed.
	Conditions []Condition `json:"conditions"`
}

// Grid is the committed experiment grid.
type Grid struct {
	// Note is free-form provenance for the grid file.
	Note string `json:"note,omitempty"`
	// Hypotheses lists every claim.
	Hypotheses []Hypothesis `json:"hypotheses"`
}

// LoadGrid reads and validates a grid file.
func LoadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hypothesis: %w", err)
	}
	return ParseGrid(data)
}

// ParseGrid decodes and validates a grid document.
func ParseGrid(data []byte) (*Grid, error) {
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("hypothesis: parsing grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Validate checks the grid's structural and rigor invariants.
func (g *Grid) Validate() error {
	seen := map[string]bool{}
	for i := range g.Hypotheses {
		h := &g.Hypotheses[i]
		if h.ID == "" {
			return fmt.Errorf("hypothesis: grid entry %d has no id", i)
		}
		if seen[h.ID] {
			return fmt.Errorf("hypothesis: duplicate id %q", h.ID)
		}
		seen[h.ID] = true
		if err := h.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (h *Hypothesis) validate() error {
	switch h.Class {
	case Deterministic:
		if len(h.Seeds) != 1 {
			return fmt.Errorf("hypothesis: %s is deterministic and must use exactly 1 seed, has %d", h.ID, len(h.Seeds))
		}
	case Statistical:
		if len(h.Seeds) < 3 {
			return fmt.Errorf("hypothesis: %s is statistical and needs ≥ 3 seeds, has %d", h.ID, len(h.Seeds))
		}
	default:
		return fmt.Errorf("hypothesis: %s has unknown class %q", h.ID, h.Class)
	}
	if h.Experiment == "" {
		return fmt.Errorf("hypothesis: %s names no experiment", h.ID)
	}
	if len(h.Conditions) == 0 {
		return fmt.Errorf("hypothesis: %s has no conditions", h.ID)
	}
	for j := range h.Conditions {
		c := &h.Conditions[j]
		if c.Name == "" {
			return fmt.Errorf("hypothesis: %s condition %d has no name", h.ID, j)
		}
		hasMetric, hasRatio := c.Metric != "", c.Num != "" || c.Den != ""
		if hasMetric == hasRatio || (hasRatio && (c.Num == "" || c.Den == "")) {
			return fmt.Errorf("hypothesis: %s/%s must set either metric or num+den", h.ID, c.Name)
		}
		switch c.Kind {
		case KindMinRatio, KindMinValue, KindMaxValue:
			// Bound may legitimately be 0 only for max_value.
			if c.Bound == 0 && c.Kind != KindMaxValue {
				return fmt.Errorf("hypothesis: %s/%s needs a bound", h.ID, c.Name)
			}
		case KindBand:
			if c.Lo == 0 || c.Hi <= c.Lo {
				return fmt.Errorf("hypothesis: %s/%s needs 0 < lo < hi", h.ID, c.Name)
			}
		case KindEquiv:
			if c.Tol <= 0 {
				return fmt.Errorf("hypothesis: %s/%s needs tol > 0", h.ID, c.Name)
			}
		case KindEq:
			// Want may be any value, including 0.
		default:
			return fmt.Errorf("hypothesis: %s/%s has unknown kind %q", h.ID, c.Name, c.Kind)
		}
	}
	return nil
}

// Find returns the hypothesis with the given id, or nil.
func (g *Grid) Find(id string) *Hypothesis {
	for i := range g.Hypotheses {
		if g.Hypotheses[i].ID == id {
			return &g.Hypotheses[i]
		}
	}
	return nil
}

// Experiments returns the sorted set of experiment ids the grid references.
func (g *Grid) Experiments() []string {
	set := map[string]bool{}
	for i := range g.Hypotheses {
		set[g.Hypotheses[i].Experiment] = true
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
