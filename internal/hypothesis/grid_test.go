package hypothesis_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/hypmetrics"
	"repro/internal/hypothesis"
)

const gridPath = "../../hypotheses.json"

// TestCommittedGridLoads pins the committed grid's contract: it validates,
// carries every paper finding F.1–F.12 plus the repo's own claims, and
// references only experiments the metric source implements.
func TestCommittedGridLoads(t *testing.T) {
	g, err := hypothesis.LoadGrid(gridPath)
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	if len(g.Hypotheses) < 10 {
		t.Fatalf("grid has %d hypotheses, want >= 10", len(g.Hypotheses))
	}
	for i := 1; i <= 12; i++ {
		id := fmt.Sprintf("F.%d", i)
		if g.Find(id) == nil {
			t.Errorf("grid is missing paper finding %s", id)
		}
	}
	for _, id := range []string{"R.scaling-illusion", "R.sweep-subquadratic", "R.serve-cache", "D.stream-bounded", "D.seed-repro"} {
		if g.Find(id) == nil {
			t.Errorf("grid is missing repo claim %s", id)
		}
	}
	known := map[string]bool{}
	for _, e := range hypmetrics.Experiments() {
		known[e] = true
	}
	for _, e := range g.Experiments() {
		if !known[e] {
			t.Errorf("grid references experiment %q the metric source does not implement", e)
		}
	}
	hasDet, hasStat, hasTiming := false, false, false
	for i := range g.Hypotheses {
		h := &g.Hypotheses[i]
		switch h.Class {
		case hypothesis.Deterministic:
			hasDet = true
		case hypothesis.Statistical:
			hasStat = true
		}
		if h.Timing {
			hasTiming = true
			if h.Class == hypothesis.Deterministic {
				t.Errorf("%s: wall-clock metrics cannot back a deterministic hypothesis", h.ID)
			}
		}
	}
	if !hasDet || !hasStat || !hasTiming {
		t.Errorf("grid should exercise every class: deterministic=%v statistical=%v timing=%v",
			hasDet, hasStat, hasTiming)
	}
}

// TestCommittedGridMetricsResolve checks, without running any experiments,
// that every condition in the committed grid names metrics its experiment
// bundle actually produces — using one cheap representative bundle per
// experiment is too slow here, so this drives the evaluator with a source
// that records requested cells and serves the committed dumps' key sets.
// It catches renamed metrics and typos at test time instead of CI time.
func TestCommittedGridConditionShapes(t *testing.T) {
	g, err := hypothesis.LoadGrid(gridPath)
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	for i := range g.Hypotheses {
		h := &g.Hypotheses[i]
		for j := range h.Conditions {
			c := &h.Conditions[j]
			switch c.Kind {
			case hypothesis.KindMinRatio, hypothesis.KindMinValue:
				if c.Contra >= c.Bound {
					t.Errorf("%s/%s: contra %v must sit below bound %v", h.ID, c.Name, c.Contra, c.Bound)
				}
			case hypothesis.KindMaxValue:
				if c.Contra != 0 && c.Contra <= c.Bound {
					t.Errorf("%s/%s: contra %v must sit above bound %v", h.ID, c.Name, c.Contra, c.Bound)
				}
			case hypothesis.KindBand:
				if c.Contra != 0 && c.Contra >= c.Lo {
					t.Errorf("%s/%s: contra %v must sit below lo %v", h.ID, c.Name, c.Contra, c.Lo)
				}
			}
		}
	}
}

// TestBrokenHypothesisIsRefutedAndGated is the CI-gate fixture the issue
// demands: a deliberately broken deterministic hypothesis must come back
// refuted, and the gate must fail the document that contains it.
func TestBrokenHypothesisIsRefutedAndGated(t *testing.T) {
	grid := &hypothesis.Grid{Hypotheses: []hypothesis.Hypothesis{
		{
			ID: "D.broken", Title: "deliberately broken: claims a metric value it cannot have",
			Class: hypothesis.Deterministic, Experiment: "stub", Seeds: []int64{42},
			Conditions: []hypothesis.Condition{
				{Name: "impossible", Kind: hypothesis.KindEq, Metric: "x", Want: 99},
			},
		},
		{
			ID: "D.fine", Title: "control: holds exactly",
			Class: hypothesis.Deterministic, Experiment: "stub", Seeds: []int64{42},
			Conditions: []hypothesis.Condition{
				{Name: "exact", Kind: hypothesis.KindEq, Metric: "x", Want: 1},
			},
		},
	}}
	if err := grid.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	eval := hypothesis.NewEvaluator(func(context.Context, string, int, int64) (map[string]float64, error) {
		return map[string]float64{"x": 1}, nil
	})
	doc, err := eval.Evaluate(grid, hypothesis.Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	byID := map[string]hypothesis.Verdict{}
	for _, r := range doc.Results {
		byID[r.ID] = r.Verdict
	}
	if byID["D.broken"] != hypothesis.Refuted {
		t.Fatalf("broken hypothesis verdict = %s, want refuted", byID["D.broken"])
	}
	if byID["D.fine"] != hypothesis.Confirmed {
		t.Fatalf("control hypothesis verdict = %s, want confirmed", byID["D.fine"])
	}
	err = hypothesis.Gate(doc, false)
	if err == nil {
		t.Fatal("Gate passed a document with a refuted deterministic hypothesis")
	}
	if !strings.Contains(err.Error(), "D.broken") {
		t.Fatalf("Gate error %q does not name the refuted hypothesis", err)
	}
}

// TestDocumentJSONDeterministic: the verdict document CI archives must be
// byte-reproducible — same grid, same source, same bytes.
func TestDocumentJSONDeterministic(t *testing.T) {
	g, err := hypothesis.LoadGrid(gridPath)
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	source := func(ctx context.Context, experiment string, steps int, seed int64) (map[string]float64, error) {
		// A synthetic but seed-sensitive bundle: enough for structure
		// checks without running real experiments.
		return map[string]float64{"synthetic": float64(seed) / 100}, nil
	}
	render := func() []byte {
		doc, err := hypothesis.NewEvaluator(source).Evaluate(g, hypothesis.Options{Timing: true})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatalf("MarshalIndent: %v", err)
		}
		return data
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical evaluations produced different document bytes")
	}
	// Every real metric is missing from the synthetic source, so every
	// hypothesis must degrade per its class — never crash, never confirm.
	var doc hypothesis.Document
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, r := range doc.Results {
		if r.Error == "" {
			t.Errorf("%s: expected a metric-resolution error against the synthetic source", r.ID)
		}
		switch {
		case r.Class == hypothesis.Deterministic && r.Verdict != hypothesis.Refuted:
			t.Errorf("%s: failing deterministic hypothesis = %s, want refuted", r.ID, r.Verdict)
		case r.Class == hypothesis.Statistical && r.Verdict != hypothesis.Inconclusive:
			t.Errorf("%s: failing statistical hypothesis = %s, want inconclusive", r.ID, r.Verdict)
		}
	}
}
