package hypothesis

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Status classifies one condition at one seed.
type Status string

const (
	// StatusStrong: the condition holds with its full effect size.
	StatusStrong Status = "strong"
	// StatusWeak: the claimed direction holds, but short of the required
	// effect (or beyond the claimed band) — evidence, not confirmation.
	StatusWeak Status = "weak"
	// StatusContra: the claimed direction is contradicted.
	StatusContra Status = "contra"
)

// statusOf classifies a measured value against one condition.
func statusOf(c *Condition, v float64) Status {
	switch c.Kind {
	case KindMinRatio:
		contra := c.Contra
		if contra == 0 {
			contra = 1
		}
		switch {
		case v >= c.Bound:
			return StatusStrong
		case v > contra:
			return StatusWeak
		default:
			return StatusContra
		}
	case KindBand:
		contra := c.Contra
		if contra == 0 {
			contra = math.Min(1, c.Lo)
		}
		switch {
		case v >= c.Lo && v <= c.Hi:
			return StatusStrong
		case v > contra:
			return StatusWeak // direction right: below the band's floor or beyond its ceiling
		default:
			return StatusContra
		}
	case KindEquiv:
		contra := c.Contra
		if contra == 0 {
			contra = 2 * c.Tol
		}
		dev := math.Abs(v - 1)
		switch {
		case dev <= c.Tol:
			return StatusStrong
		case dev <= contra:
			return StatusWeak
		default:
			return StatusContra
		}
	case KindMaxValue:
		switch {
		case v <= c.Bound:
			return StatusStrong
		case c.Contra > c.Bound && v <= c.Contra:
			return StatusWeak
		default:
			return StatusContra
		}
	case KindMinValue:
		switch {
		case v >= c.Bound:
			return StatusStrong
		case c.Contra != 0 && c.Contra < c.Bound && v >= c.Contra:
			return StatusWeak
		default:
			return StatusContra
		}
	case KindEq:
		if math.Abs(v-c.Want) <= c.Eps {
			return StatusStrong
		}
		return StatusContra
	}
	return StatusContra
}

// verdictFor applies the BLIS classification rules to the per-seed condition
// statuses: statuses[s][c] is condition c's status at seed index s.
func verdictFor(class Class, statuses [][]Status) Verdict {
	allStrong := true
	for _, row := range statuses {
		for _, st := range row {
			if st != StatusStrong {
				allStrong = false
			}
		}
	}
	if allStrong {
		return Confirmed
	}
	if class == Deterministic {
		// Exact properties have no noise to absorb: not confirmed = bug.
		return Refuted
	}
	// Statistical: refuted only when some condition's direction is
	// contradicted in EVERY seed — consistent evidence against the claim.
	nCond := 0
	if len(statuses) > 0 {
		nCond = len(statuses[0])
	}
	for c := 0; c < nCond; c++ {
		contraEverywhere := true
		for s := range statuses {
			if statuses[s][c] != StatusContra {
				contraEverywhere = false
				break
			}
		}
		if contraEverywhere {
			return Refuted
		}
	}
	return Inconclusive
}

// SeedValue is one measured value with its seed, for transparency in the
// verdict document.
type SeedValue struct {
	Seed   int64   `json:"seed"`
	Value  float64 `json:"value"`
	Status Status  `json:"status"`
}

// ConditionResult reports one condition's evaluation across seeds.
type ConditionResult struct {
	Condition
	// PerSeed lists the measured value and classification at every seed.
	PerSeed []SeedValue `json:"per_seed"`
	// Mean, Min and Max summarize the per-seed values.
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// HypothesisResult is one hypothesis's verdict with full evidence.
type HypothesisResult struct {
	ID         string            `json:"id"`
	Title      string            `json:"title"`
	Class      Class             `json:"class"`
	Experiment string            `json:"experiment"`
	Steps      int               `json:"steps,omitempty"`
	Timing     bool              `json:"timing,omitempty"`
	Seeds      []int64           `json:"seeds"`
	Verdict    Verdict           `json:"verdict"`
	Conditions []ConditionResult `json:"conditions"`
	// Error records an experiment failure; the verdict is then refuted
	// for deterministic hypotheses and inconclusive for statistical ones.
	Error string `json:"error,omitempty"`
}

// Document is the machine-readable verdict document the CLI emits and CI
// archives.
type Document struct {
	Grid    string             `json:"grid,omitempty"`
	Note    string             `json:"note,omitempty"`
	Results []HypothesisResult `json:"results"`
	Summary map[Verdict]int    `json:"summary"`
}

// Source computes the named experiment's metric bundle at one grid cell.
// steps ≤ 0 selects the experiment's default scale. Implementations must be
// deterministic in (experiment, steps, seed) unless the metrics measure
// host time (Hypothesis.Timing).
type Source func(ctx context.Context, experiment string, steps int, seed int64) (map[string]float64, error)

// Evaluator runs grids against a metric source, memoizing experiment cells
// so hypotheses sharing a cell (e.g. every F.1–F.8 claim reads the same
// fig4 runs) pay for it once.
type Evaluator struct {
	source Source
	cache  map[cellKey]cell
}

type cellKey struct {
	experiment string
	steps      int
	seed       int64
}

type cell struct {
	metrics map[string]float64
	err     error
}

// NewEvaluator builds an evaluator over a metric source.
func NewEvaluator(source Source) *Evaluator {
	return &Evaluator{source: source, cache: map[cellKey]cell{}}
}

// Options scopes one Evaluate call.
type Options struct {
	// IDs, when non-empty, restricts evaluation to the listed hypotheses.
	IDs []string
	// Timing includes wall-clock-measuring hypotheses. Excluding them
	// (the default) keeps the document byte-deterministic.
	Timing bool
	// Steps, when positive, overrides every hypothesis's step budget —
	// an experimentation knob; verdicts are calibrated at grid scale.
	Steps int
	// Context cancels experiment runs between cells. nil means
	// context.Background().
	Context context.Context
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Evaluate runs every selected hypothesis and assembles the verdict
// document. Experiment failures are recorded per hypothesis, not returned:
// a failing experiment refutes a deterministic claim and leaves a
// statistical one inconclusive.
func (e *Evaluator) Evaluate(g *Grid, opts Options) (*Document, error) {
	want := map[string]bool{}
	for _, id := range opts.IDs {
		if g.Find(id) == nil {
			return nil, fmt.Errorf("hypothesis: unknown id %q", id)
		}
		want[id] = true
	}
	doc := &Document{Note: g.Note, Summary: map[Verdict]int{}}
	for i := range g.Hypotheses {
		h := &g.Hypotheses[i]
		if len(want) > 0 && !want[h.ID] {
			continue
		}
		if h.Timing && !opts.Timing {
			continue
		}
		if err := opts.ctx().Err(); err != nil {
			return nil, err
		}
		res := e.evaluateOne(opts.ctx(), h, opts.Steps)
		doc.Results = append(doc.Results, res)
		doc.Summary[res.Verdict]++
	}
	return doc, nil
}

func (e *Evaluator) evaluateOne(ctx context.Context, h *Hypothesis, stepsOverride int) HypothesisResult {
	steps := h.Steps
	if stepsOverride > 0 {
		steps = stepsOverride
	}
	out := HypothesisResult{
		ID: h.ID, Title: h.Title, Class: h.Class, Experiment: h.Experiment,
		Steps: steps, Timing: h.Timing, Seeds: h.Seeds,
		Conditions: make([]ConditionResult, len(h.Conditions)),
	}
	for c := range h.Conditions {
		out.Conditions[c].Condition = h.Conditions[c]
	}
	statuses := make([][]Status, 0, len(h.Seeds))
	for _, seed := range h.Seeds {
		metrics, err := e.cell(ctx, h.Experiment, steps, seed)
		if err != nil {
			out.Error = fmt.Sprintf("seed %d: %v", seed, err)
			break
		}
		row := make([]Status, len(h.Conditions))
		for c := range h.Conditions {
			cond := &h.Conditions[c]
			v, err := conditionValue(cond, metrics)
			if err != nil {
				out.Error = fmt.Sprintf("seed %d: %v", seed, err)
				break
			}
			st := statusOf(cond, v)
			row[c] = st
			out.Conditions[c].PerSeed = append(out.Conditions[c].PerSeed, SeedValue{
				Seed: seed, Value: v, Status: st,
			})
		}
		if out.Error != "" {
			break
		}
		statuses = append(statuses, row)
	}
	if out.Error != "" {
		if h.Class == Deterministic {
			out.Verdict = Refuted
		} else {
			out.Verdict = Inconclusive
		}
		return out
	}
	for c := range out.Conditions {
		summarize(&out.Conditions[c])
	}
	out.Verdict = verdictFor(h.Class, statuses)
	return out
}

func conditionValue(c *Condition, metrics map[string]float64) (float64, error) {
	lookup := func(name string) (float64, error) {
		v, ok := metrics[name]
		if !ok {
			return 0, fmt.Errorf("hypothesis: condition %s references unknown metric %q", c.Name, name)
		}
		return v, nil
	}
	if c.Metric != "" {
		return lookup(c.Metric)
	}
	num, err := lookup(c.Num)
	if err != nil {
		return 0, err
	}
	den, err := lookup(c.Den)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return 0, fmt.Errorf("hypothesis: condition %s divides by zero metric %q", c.Name, c.Den)
	}
	return num / den, nil
}

func summarize(cr *ConditionResult) {
	if len(cr.PerSeed) == 0 {
		return
	}
	cr.Min, cr.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, sv := range cr.PerSeed {
		sum += sv.Value
		cr.Min = math.Min(cr.Min, sv.Value)
		cr.Max = math.Max(cr.Max, sv.Value)
	}
	cr.Mean = sum / float64(len(cr.PerSeed))
}

func (e *Evaluator) cell(ctx context.Context, experiment string, steps int, seed int64) (map[string]float64, error) {
	key := cellKey{experiment, steps, seed}
	if c, ok := e.cache[key]; ok {
		return c.metrics, c.err
	}
	metrics, err := e.source(ctx, experiment, steps, seed)
	e.cache[key] = cell{metrics, err}
	return metrics, err
}

// Gate returns an error when the document contains a refuted deterministic
// hypothesis — the one outcome that is always a bug. With strict set, any
// refuted hypothesis trips the gate.
func Gate(doc *Document, strict bool) error {
	var bad []string
	for i := range doc.Results {
		r := &doc.Results[i]
		if r.Verdict != Refuted {
			continue
		}
		if r.Class == Deterministic || strict {
			bad = append(bad, fmt.Sprintf("%s (%s)", r.ID, r.Class))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("hypothesis: refuted: %v", bad)
}
