package hypothesis

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// fixedSource serves synthetic per-seed samples: values[seed][metric].
func fixedSource(values map[int64]map[string]float64) Source {
	return func(_ context.Context, _ string, _ int, seed int64) (map[string]float64, error) {
		m, ok := values[seed]
		if !ok {
			return nil, fmt.Errorf("no sample for seed %d", seed)
		}
		return m, nil
	}
}

// statHyp builds a 3-seed statistical hypothesis with one condition over
// metric "v".
func statHyp(c Condition) *Grid {
	c.Name = "c"
	if c.Metric == "" && c.Num == "" {
		c.Metric = "v"
	}
	return &Grid{Hypotheses: []Hypothesis{{
		ID: "H", Title: "t", Class: Statistical, Experiment: "x",
		Seeds: []int64{1, 2, 3}, Conditions: []Condition{c},
	}}}
}

// evalSamples runs a single-condition statistical hypothesis against one
// value per seed and returns the verdict.
func evalSamples(t *testing.T, c Condition, v1, v2, v3 float64) Verdict {
	t.Helper()
	g := statHyp(c)
	if err := g.Validate(); err != nil {
		t.Fatalf("grid: %v", err)
	}
	doc, err := NewEvaluator(fixedSource(map[int64]map[string]float64{
		1: {"v": v1}, 2: {"v": v2}, 3: {"v": v3},
	})).Evaluate(g, Options{})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return doc.Results[0].Verdict
}

// The BLIS effect-size boundaries: a dominance claim with a 20% required
// effect (bound 1.2) classifies correctly around the 20%, 10%, and
// direction (0%) thresholds.
func TestDominanceEffectSizeBoundaries(t *testing.T) {
	dom := Condition{Kind: KindMinRatio, Bound: 1.2}
	cases := []struct {
		name       string
		v1, v2, v3 float64
		want       Verdict
	}{
		{"all well above threshold", 1.5, 1.8, 2.1, Confirmed},
		{"exactly at 20% in every seed", 1.2, 1.2, 1.2, Confirmed},
		{"one seed just under 20%", 1.19, 1.5, 1.5, Inconclusive},
		{"one seed under 10% (weak)", 1.09, 1.5, 1.5, Inconclusive},
		{"consistent direction, all under 20%", 1.1, 1.15, 1.19, Inconclusive},
		{"one contradicting seed", 0.95, 1.5, 1.8, Inconclusive},
		{"contradicted in every seed", 0.8, 0.9, 0.95, Refuted},
		{"exactly no effect everywhere", 1.0, 1.0, 1.0, Refuted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := evalSamples(t, dom, tc.v1, tc.v2, tc.v3); got != tc.want {
				t.Errorf("samples (%v, %v, %v): verdict = %s, want %s",
					tc.v1, tc.v2, tc.v3, got, tc.want)
			}
		})
	}
}

// The 5% equivalence boundary: within tol in all seeds confirms, a seed
// beyond tol blocks confirmation, deviations beyond 2·tol in every seed
// refute.
func TestEquivalenceBoundaries(t *testing.T) {
	eq := Condition{Kind: KindEquiv, Tol: 0.05}
	cases := []struct {
		name       string
		v1, v2, v3 float64
		want       Verdict
	}{
		{"within 5% everywhere", 1.04, 0.96, 1.0, Confirmed},
		{"one seed at 6%", 1.06, 1.0, 1.0, Inconclusive},
		{"beyond 2x tol in every seed", 1.12, 1.2, 0.85, Refuted},
		{"beyond 2x tol in one seed only", 1.12, 1.01, 1.0, Inconclusive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := evalSamples(t, eq, tc.v1, tc.v2, tc.v3); got != tc.want {
				t.Errorf("samples (%v, %v, %v): verdict = %s, want %s",
					tc.v1, tc.v2, tc.v3, got, tc.want)
			}
		})
	}
	// The boundary itself is inclusive: with an exactly representable
	// tolerance (1/16), a deviation of exactly tol confirms.
	dyadic := Condition{Kind: KindEquiv, Tol: 0.0625}
	if got := evalSamples(t, dyadic, 1.0625, 0.9375, 1.0); got != Confirmed {
		t.Errorf("deviation exactly tol: %s, want confirmed", got)
	}
}

func TestBandAndCapBoundaries(t *testing.T) {
	band := Condition{Kind: KindBand, Lo: 1.9, Hi: 6.0}
	if got := evalSamples(t, band, 2.0, 3.0, 5.9); got != Confirmed {
		t.Errorf("in-band everywhere: %s, want confirmed", got)
	}
	// Above the band: the direction (slower) holds, the magnitude claim
	// does not — never confirmation, never refutation.
	if got := evalSamples(t, band, 7.0, 3.0, 3.0); got != Inconclusive {
		t.Errorf("one seed above band: %s, want inconclusive", got)
	}
	// Between the no-effect point and the band floor: weak.
	if got := evalSamples(t, band, 1.5, 2.0, 2.0); got != Inconclusive {
		t.Errorf("one seed below band: %s, want inconclusive", got)
	}
	if got := evalSamples(t, band, 0.9, 0.8, 1.0); got != Refuted {
		t.Errorf("direction contradicted everywhere: %s, want refuted", got)
	}

	cap := Condition{Kind: KindMaxValue, Bound: 0.141}
	if got := evalSamples(t, cap, 0.10, 0.141, 0.05); got != Confirmed {
		t.Errorf("under cap everywhere: %s, want confirmed", got)
	}
	if got := evalSamples(t, cap, 0.15, 0.10, 0.10); got != Inconclusive {
		t.Errorf("one seed over cap: %s, want inconclusive", got)
	}
	if got := evalSamples(t, cap, 0.15, 0.2, 0.3); got != Refuted {
		t.Errorf("over cap everywhere: %s, want refuted", got)
	}

	floor := Condition{Kind: KindMinValue, Bound: 0.9, Contra: 0.5}
	if got := evalSamples(t, floor, 0.95, 0.99, 0.9); got != Confirmed {
		t.Errorf("above floor everywhere: %s, want confirmed", got)
	}
	if got := evalSamples(t, floor, 0.7, 0.95, 0.95); got != Inconclusive {
		t.Errorf("one seed in weak zone: %s, want inconclusive", got)
	}
	if got := evalSamples(t, floor, 0.4, 0.3, 0.2); got != Refuted {
		t.Errorf("below contra everywhere: %s, want refuted", got)
	}
}

// Deterministic hypotheses are binary: confirmed or refuted, never
// inconclusive — one failure is a bug.
func TestDeterministicVerdictIsBinary(t *testing.T) {
	mk := func(want float64) *Grid {
		return &Grid{Hypotheses: []Hypothesis{{
			ID: "D", Title: "t", Class: Deterministic, Experiment: "x",
			Seeds: []int64{1},
			Conditions: []Condition{
				{Name: "c", Kind: KindEq, Metric: "v", Want: want},
			},
		}}}
	}
	src := fixedSource(map[int64]map[string]float64{1: {"v": 4}})
	doc, err := NewEvaluator(src).Evaluate(mk(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Results[0].Verdict != Confirmed {
		t.Errorf("exact match: %s, want confirmed", doc.Results[0].Verdict)
	}
	doc, err = NewEvaluator(src).Evaluate(mk(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Results[0].Verdict != Refuted {
		t.Errorf("mismatch: %s, want refuted", doc.Results[0].Verdict)
	}
	if err := Gate(doc, false); err == nil {
		t.Error("gate must fail on a refuted deterministic hypothesis")
	}
}

// A multi-condition hypothesis confirms only when every condition is strong
// in every seed, and refutes when any single condition is contradicted in
// all seeds.
func TestMultiConditionConjunction(t *testing.T) {
	g := &Grid{Hypotheses: []Hypothesis{{
		ID: "H", Title: "t", Class: Statistical, Experiment: "x",
		Seeds: []int64{1, 2, 3},
		Conditions: []Condition{
			{Name: "a", Kind: KindMinRatio, Metric: "a", Bound: 1.2},
			{Name: "b", Kind: KindMaxValue, Metric: "b", Bound: 0.1},
		},
	}}}
	eval := func(av, bv float64) Verdict {
		doc, err := NewEvaluator(fixedSource(map[int64]map[string]float64{
			1: {"a": av, "b": bv}, 2: {"a": av, "b": bv}, 3: {"a": av, "b": bv},
		})).Evaluate(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return doc.Results[0].Verdict
	}
	if got := eval(1.5, 0.05); got != Confirmed {
		t.Errorf("both strong: %s", got)
	}
	if got := eval(1.5, 0.2); got != Refuted {
		t.Errorf("one condition contradicted everywhere: %s, want refuted", got)
	}
	if got := eval(1.1, 0.05); got != Inconclusive {
		t.Errorf("one condition weak: %s, want inconclusive", got)
	}
}

// Ratio conditions divide two bundle metrics; unknown or zero-denominator
// references surface as per-hypothesis errors with the class-appropriate
// verdict, not as evaluation aborts.
func TestRatioAndErrorHandling(t *testing.T) {
	g := &Grid{Hypotheses: []Hypothesis{
		{
			ID: "ratio", Title: "t", Class: Statistical, Experiment: "x",
			Seeds: []int64{1, 2, 3},
			Conditions: []Condition{
				{Name: "r", Kind: KindMinRatio, Num: "hi", Den: "lo", Bound: 1.2},
			},
		},
		{
			ID: "missing-stat", Title: "t", Class: Statistical, Experiment: "x",
			Seeds: []int64{1, 2, 3},
			Conditions: []Condition{
				{Name: "m", Kind: KindMinRatio, Metric: "absent", Bound: 1.2},
			},
		},
		{
			ID: "missing-det", Title: "t", Class: Deterministic, Experiment: "x",
			Seeds: []int64{1},
			Conditions: []Condition{
				{Name: "m", Kind: KindEq, Metric: "absent", Want: 1},
			},
		},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	doc, err := NewEvaluator(fixedSource(map[int64]map[string]float64{
		1: {"hi": 3, "lo": 2}, 2: {"hi": 3, "lo": 2}, 3: {"hi": 3, "lo": 2},
	})).Evaluate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]HypothesisResult{}
	for _, r := range doc.Results {
		byID[r.ID] = r
	}
	if v := byID["ratio"].Verdict; v != Confirmed {
		t.Errorf("ratio 1.5 vs bound 1.2: %s", v)
	}
	if r := byID["missing-stat"]; r.Verdict != Inconclusive || r.Error == "" {
		t.Errorf("missing metric (statistical): verdict %s err %q", r.Verdict, r.Error)
	}
	if r := byID["missing-det"]; r.Verdict != Refuted || r.Error == "" {
		t.Errorf("missing metric (deterministic): verdict %s err %q", r.Verdict, r.Error)
	}
}

// Grid validation enforces the rigor rules before anything runs.
func TestGridValidation(t *testing.T) {
	base := func() Hypothesis {
		return Hypothesis{
			ID: "H", Title: "t", Class: Statistical, Experiment: "x",
			Seeds: []int64{1, 2, 3},
			Conditions: []Condition{
				{Name: "c", Kind: KindMinRatio, Metric: "v", Bound: 1.2},
			},
		}
	}
	bad := []func(*Hypothesis){
		func(h *Hypothesis) { h.Seeds = []int64{1, 2} },          // statistical needs ≥ 3
		func(h *Hypothesis) { h.Class = Deterministic },          // deterministic needs exactly 1
		func(h *Hypothesis) { h.Class = "bayesian" },             // unknown class
		func(h *Hypothesis) { h.Conditions = nil },               // no conditions
		func(h *Hypothesis) { h.Conditions[0].Kind = "ordinal" }, // unknown kind
		func(h *Hypothesis) { h.Conditions[0].Metric = "" },      // neither metric nor ratio
		func(h *Hypothesis) { // both metric and ratio
			h.Conditions[0].Num, h.Conditions[0].Den = "a", "b"
		},
		func(h *Hypothesis) { h.Experiment = "" },
	}
	for i, mutate := range bad {
		h := base()
		mutate(&h)
		g := &Grid{Hypotheses: []Hypothesis{h}}
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d: invalid grid accepted", i)
		}
	}
	g := &Grid{Hypotheses: []Hypothesis{base(), base()}}
	if err := g.Validate(); err == nil {
		t.Error("duplicate ids accepted")
	}
	if err := (&Grid{Hypotheses: []Hypothesis{base()}}).Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

// Property: across random samples, the verdict is always consistent with
// the per-seed statuses the document itself reports — confirmed iff all
// strong, refuted iff some condition is contra at every seed, inconclusive
// otherwise. Evaluating twice yields byte-identical documents.
func TestVerdictConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nCond := 1 + rng.Intn(3)
		conds := make([]Condition, nCond)
		for c := range conds {
			switch rng.Intn(3) {
			case 0:
				conds[c] = Condition{Name: fmt.Sprintf("c%d", c), Kind: KindMinRatio,
					Metric: fmt.Sprintf("m%d", c), Bound: 1.2}
			case 1:
				conds[c] = Condition{Name: fmt.Sprintf("c%d", c), Kind: KindMaxValue,
					Metric: fmt.Sprintf("m%d", c), Bound: 0.5}
			default:
				conds[c] = Condition{Name: fmt.Sprintf("c%d", c), Kind: KindEquiv,
					Metric: fmt.Sprintf("m%d", c), Tol: 0.05}
			}
		}
		g := &Grid{Hypotheses: []Hypothesis{{
			ID: "H", Title: "t", Class: Statistical, Experiment: "x",
			Seeds: []int64{1, 2, 3}, Conditions: conds,
		}}}
		samples := map[int64]map[string]float64{}
		for _, seed := range []int64{1, 2, 3} {
			m := map[string]float64{}
			for c := 0; c < nCond; c++ {
				m[fmt.Sprintf("m%d", c)] = rng.Float64() * 2
			}
			samples[seed] = m
		}
		doc, err := NewEvaluator(fixedSource(samples)).Evaluate(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := doc.Results[0]

		allStrong := true
		refuted := false
		for c := range res.Conditions {
			contraEverywhere := true
			for _, sv := range res.Conditions[c].PerSeed {
				if sv.Status != StatusStrong {
					allStrong = false
				}
				if sv.Status != StatusContra {
					contraEverywhere = false
				}
			}
			if contraEverywhere {
				refuted = true
			}
		}
		want := Inconclusive
		if allStrong {
			want = Confirmed
		} else if refuted {
			want = Refuted
		}
		if res.Verdict != want {
			t.Fatalf("trial %d: verdict %s, statuses imply %s (%+v)", trial, res.Verdict, want, res.Conditions)
		}

		doc2, err := NewEvaluator(fixedSource(samples)).Evaluate(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b1, _ := json.Marshal(doc)
		b2, _ := json.Marshal(doc2)
		if string(b1) != string(b2) {
			t.Fatal("re-evaluation changed the document bytes")
		}
	}
}

// Hypotheses sharing an ⟨experiment, steps, seed⟩ cell reuse one run.
func TestCellMemoization(t *testing.T) {
	calls := 0
	src := func(_ context.Context, _ string, _ int, _ int64) (map[string]float64, error) {
		calls++
		return map[string]float64{"v": 2}, nil
	}
	h := Hypothesis{
		Title: "t", Class: Statistical, Experiment: "x", Seeds: []int64{1, 2, 3},
		Conditions: []Condition{{Name: "c", Kind: KindMinRatio, Metric: "v", Bound: 1.2}},
	}
	a, b := h, h
	a.ID, b.ID = "A", "B"
	g := &Grid{Hypotheses: []Hypothesis{a, b}}
	doc, err := NewEvaluator(src).Evaluate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("source called %d times for 2 hypotheses × 3 shared seeds, want 3", calls)
	}
	if doc.Summary[Confirmed] != 2 {
		t.Errorf("summary: %+v", doc.Summary)
	}
}

// Timing hypotheses are excluded unless opted in; per-hypothesis summaries
// report mean/min/max across seeds.
func TestTimingFilterAndSummaries(t *testing.T) {
	g := &Grid{Hypotheses: []Hypothesis{
		{
			ID: "T", Title: "t", Class: Statistical, Experiment: "x",
			Seeds: []int64{1, 2, 3}, Timing: true,
			Conditions: []Condition{{Name: "c", Kind: KindMinRatio, Metric: "v", Bound: 1.2}},
		},
	}}
	src := fixedSource(map[int64]map[string]float64{
		1: {"v": 2}, 2: {"v": 4}, 3: {"v": 3},
	})
	doc, err := NewEvaluator(src).Evaluate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("timing hypothesis evaluated without opt-in: %+v", doc.Results)
	}
	doc, err = NewEvaluator(src).Evaluate(g, Options{Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("timing opt-in ignored")
	}
	c := doc.Results[0].Conditions[0]
	if c.Mean != 3 || c.Min != 2 || c.Max != 4 {
		t.Errorf("summary mean/min/max = %v/%v/%v, want 3/2/4", c.Mean, c.Min, c.Max)
	}
	if !reflect.DeepEqual(doc.Results[0].Seeds, []int64{1, 2, 3}) {
		t.Errorf("seeds not echoed: %+v", doc.Results[0].Seeds)
	}
}

// Unknown -ids selections are rejected up front.
func TestUnknownIDRejected(t *testing.T) {
	g := statHyp(Condition{Kind: KindMinRatio, Bound: 1.2})
	_, err := NewEvaluator(fixedSource(nil)).Evaluate(g, Options{IDs: []string{"nope"}})
	if err == nil {
		t.Fatal("unknown id accepted")
	}
}
