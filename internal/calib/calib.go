// Package calib implements RL-Scope's profiling-overhead calibration and
// correction (paper §3.4 and Appendix C).
//
// Profilers inflate CPU-side time with book-keeping code on the critical
// path — the paper observes up to 90.2% inflation, and up to 1.9× total
// training-time inflation for RL workloads. RL-Scope calibrates the average
// duration of each book-keeping code path by re-running the workload under
// different feature subsets, then — during offline analysis — subtracts that
// time at the precise points where book-keeping occurred.
//
// Two calibration strategies are needed:
//
//   - Delta calibration (Appendix C.1): for book-keeping whose cost does not
//     depend on call context (annotation recording, Python↔C interception,
//     the CUDA API hook), mean cost = Δ(total runtime with feature on vs
//     off) / (occurrence count).
//   - Difference-of-average calibration (Appendix C.2): CUPTI inflation
//     happens inside the closed-source CUDA library and differs per API, and
//     cannot be toggled per API. So we measure the mean duration of each
//     CUDA API with and without CUPTI enabled; the per-API difference of
//     those averages is the per-call overhead.
package calib

import (
	"fmt"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// RunStats is what one profiled (or unprofiled) run exposes to calibration:
// exactly the information the real system could obtain (total runtime,
// book-keeping occurrence counts, per-CUDA-API durations measured under
// interception), plus the trace for downstream analysis.
type RunStats struct {
	// Flags is the feature subset the run used.
	Flags trace.FeatureFlags
	// Total is the run's total training time.
	Total vclock.Duration
	// OverheadCounts is occurrences per book-keeping kind.
	OverheadCounts map[trace.OverheadKind]int
	// APICount and APIDur give per-CUDA-API call counts and total
	// CPU-side durations (only meaningful when CUDAIntercept was on).
	APICount map[string]int
	APIDur   map[string]vclock.Duration
	// Trace is the collected event trace.
	Trace *trace.Trace
}

// APIMean returns the mean duration of one CUDA API in this run.
func (r *RunStats) APIMean(api string) vclock.Duration {
	n := r.APICount[api]
	if n == 0 {
		return 0
	}
	return r.APIDur[api] / vclock.Duration(n)
}

// StatsFromTrace derives RunStats from a collected trace plus the profiler's
// occurrence counters.
func StatsFromTrace(t *trace.Trace, flags trace.FeatureFlags, counts map[trace.OverheadKind]int, total vclock.Duration) *RunStats {
	rs := &RunStats{
		Flags:          flags,
		Total:          total,
		OverheadCounts: counts,
		APICount:       map[string]int{},
		APIDur:         map[string]vclock.Duration{},
		Trace:          t,
	}
	for _, e := range t.Events {
		if e.Kind == trace.KindCPU && e.Cat == trace.CatCUDA {
			rs.APICount[e.Name]++
			rs.APIDur[e.Name] += e.Duration()
		}
	}
	return rs
}

// Runner executes the workload once under the given feature flags with the
// given seed and returns its stats. Calibration assumes the workload is
// deterministic for a fixed seed (the paper's assumption, Appendix C.1).
type Runner func(flags trace.FeatureFlags, seed int64) (*RunStats, error)

// Calibration holds the estimated mean cost of each book-keeping path.
// It is the reusable artifact the paper describes: "calibration only needs
// to be done once per workload and can be reused in future profiling runs".
type Calibration struct {
	// Annotation, Interception and CUDAIntercept are mean costs per
	// occurrence, from delta calibration.
	Annotation    vclock.Duration
	Interception  vclock.Duration
	CUDAIntercept vclock.Duration
	// CUPTI is the per-API mean inflation, from difference-of-average
	// calibration.
	CUPTI map[string]vclock.Duration
}

// MeanFor returns the calibrated mean for one overhead marker.
func (c *Calibration) MeanFor(kind trace.OverheadKind, name string) vclock.Duration {
	switch kind {
	case trace.OverheadAnnotation:
		return c.Annotation
	case trace.OverheadInterception:
		return c.Interception
	case trace.OverheadCUDAIntercept:
		return c.CUDAIntercept
	case trace.OverheadCUPTI:
		return c.CUPTI[name]
	default:
		return 0
	}
}

// Calibrate runs the delta-calibration ladder plus the difference-of-average
// CUPTI pass. It performs five runs of the workload:
//
//	base (uninstrumented), +annotations, +interception, +CUDA hook,
//	and +CUDA hook+CUPTI.
func Calibrate(run Runner, seed int64) (*Calibration, error) {
	base, err := run(trace.Uninstrumented(), seed)
	if err != nil {
		return nil, fmt.Errorf("calib: base run: %w", err)
	}
	cal := &Calibration{CUPTI: map[string]vclock.Duration{}}

	cal.Annotation, err = delta(run, base, trace.FeatureFlags{Annotations: true}, trace.OverheadAnnotation, seed)
	if err != nil {
		return nil, err
	}
	cal.Interception, err = delta(run, base, trace.FeatureFlags{Interception: true}, trace.OverheadInterception, seed)
	if err != nil {
		return nil, err
	}
	cal.CUDAIntercept, err = delta(run, base, trace.FeatureFlags{CUDAIntercept: true}, trace.OverheadCUDAIntercept, seed)
	if err != nil {
		return nil, err
	}

	// Difference-of-average for CUPTI: both runs need the CUDA hook on so
	// per-API durations are observable; the hook cost itself cancels in
	// the difference.
	hookOnly, err := run(trace.FeatureFlags{CUDAIntercept: true}, seed)
	if err != nil {
		return nil, fmt.Errorf("calib: CUPTI baseline run: %w", err)
	}
	withCUPTI, err := run(trace.FeatureFlags{CUDAIntercept: true, CUPTI: true}, seed)
	if err != nil {
		return nil, fmt.Errorf("calib: CUPTI run: %w", err)
	}
	for api := range withCUPTI.APICount {
		d := withCUPTI.APIMean(api) - hookOnly.APIMean(api)
		if d < 0 {
			d = 0
		}
		cal.CUPTI[api] = d
	}
	return cal, nil
}

// delta measures one feature's mean book-keeping cost: Δ total runtime
// divided by occurrence count (Figure 9).
func delta(run Runner, base *RunStats, flags trace.FeatureFlags, kind trace.OverheadKind, seed int64) (vclock.Duration, error) {
	on, err := run(flags, seed)
	if err != nil {
		return 0, fmt.Errorf("calib: %v run: %w", kind, err)
	}
	count := on.OverheadCounts[kind]
	if count == 0 {
		return 0, nil
	}
	d := on.Total - base.Total
	if d < 0 {
		d = 0
	}
	return d / vclock.Duration(count), nil
}

// CalibrateN runs Calibrate reps times with distinct seeds and averages the
// estimates — the paper notes calibration "only needs to be done once per
// workload and can be reused", and averaging over repetitions reduces the
// variance of each mean estimate on jittery workloads.
func CalibrateN(run Runner, seed int64, reps int) (*Calibration, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("calib: CalibrateN needs reps > 0")
	}
	sum := &Calibration{CUPTI: map[string]vclock.Duration{}}
	for r := 0; r < reps; r++ {
		cal, err := Calibrate(run, seed+int64(r)*7717)
		if err != nil {
			return nil, fmt.Errorf("calib: rep %d: %w", r, err)
		}
		sum.Annotation += cal.Annotation
		sum.Interception += cal.Interception
		sum.CUDAIntercept += cal.CUDAIntercept
		for api, d := range cal.CUPTI {
			sum.CUPTI[api] += d
		}
	}
	n := vclock.Duration(reps)
	sum.Annotation /= n
	sum.Interception /= n
	sum.CUDAIntercept /= n
	for api := range sum.CUPTI {
		sum.CUPTI[api] /= n
	}
	return sum, nil
}

// EstimatedOverhead returns the total overhead a corrected analysis will
// subtract from a run, split by marker kind and name — the stacked overhead
// components of Figure 11.
func EstimatedOverhead(t *trace.Trace, cal *Calibration) map[OverheadComponent]vclock.Duration {
	out := map[OverheadComponent]vclock.Duration{}
	for _, e := range t.Events {
		if e.Kind != trace.KindOverhead {
			continue
		}
		c := OverheadComponent{Kind: e.Overhead}
		if e.Overhead == trace.OverheadInterception || e.Overhead == trace.OverheadCUPTI {
			c.Name = e.Name
		}
		out[c] += cal.MeanFor(e.Overhead, e.Name)
	}
	return out
}

// OverheadComponent labels one stack of Figure 11's overhead breakdown.
type OverheadComponent struct {
	Kind trace.OverheadKind
	Name string // transition label or API name where it matters
}

// String returns the legend label.
func (c OverheadComponent) String() string {
	if c.Name == "" {
		return c.Kind.String()
	}
	return fmt.Sprintf("%v (%s)", c.Kind, c.Name)
}

// CorrectedTotal computes the total training time of a (corrected) trace:
// the longest root-process CPU extent.
func CorrectedTotal(t *trace.Trace) vclock.Duration {
	var total vclock.Duration
	for _, p := range t.ProcIDs() {
		res := overlap.Compute(t.ProcEvents(p))
		if d := vclock.Duration(res.SpanEnd - res.SpanStart); d > total {
			total = d
		}
	}
	return total
}
