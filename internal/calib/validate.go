package calib

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// ValidationResult records one row of the paper's overhead-correction
// validation (Figure 11): the corrected training time of a fully
// instrumented run, compared against an uninstrumented run of the same
// workload.
type ValidationResult struct {
	Workload string
	// Uninstrumented is the ground-truth training time with no profiling.
	Uninstrumented vclock.Duration
	// Instrumented is the raw training time with full profiling enabled.
	Instrumented vclock.Duration
	// Corrected is the instrumented time after overhead correction.
	Corrected vclock.Duration
	// Overheads is the estimated overhead per component (the stacked
	// bars in Figure 11: CUPTI, CUDA API interception, Python↔Backend
	// interception, Python↔Simulator interception, annotations).
	Overheads map[OverheadComponent]vclock.Duration
}

// Bias is the signed relative error of the corrected time versus the
// uninstrumented ground truth. The paper reports |Bias| ≤ 16% across all
// workloads.
func (v ValidationResult) Bias() float64 {
	if v.Uninstrumented == 0 {
		return 0
	}
	return float64(v.Corrected-v.Uninstrumented) / float64(v.Uninstrumented)
}

// RawInflation is how much profiling inflated the uncorrected run
// (the paper observes 1.6×–2.2×, 1.8× on average, for full RL-Scope).
func (v ValidationResult) RawInflation() float64 {
	if v.Uninstrumented == 0 {
		return 0
	}
	return float64(v.Instrumented) / float64(v.Uninstrumented)
}

// String formats the row like the Figure 11 annotations.
func (v ValidationResult) String() string {
	return fmt.Sprintf("%s: uninstrumented=%v corrected=%v bias=%+.1f%% raw-inflation=%.2fx",
		v.Workload, v.Uninstrumented, v.Corrected, 100*v.Bias(), v.RawInflation())
}

// Validate measures correction accuracy for one workload: it calibrates,
// runs uninstrumented, runs fully instrumented, corrects, and compares.
// A fresh seed is used for the validation runs so calibration quality is
// tested out-of-sample, as in the paper (calibration is reused across runs).
func Validate(workload string, run Runner, calibSeed, validateSeed int64) (*ValidationResult, error) {
	cal, err := Calibrate(run, calibSeed)
	if err != nil {
		return nil, fmt.Errorf("calib: validate %s: %w", workload, err)
	}
	return ValidateWith(workload, run, cal, validateSeed)
}

// ValidateWith is Validate with a pre-computed calibration.
func ValidateWith(workload string, run Runner, cal *Calibration, seed int64) (*ValidationResult, error) {
	base, err := run(trace.Uninstrumented(), seed)
	if err != nil {
		return nil, fmt.Errorf("calib: validate %s baseline: %w", workload, err)
	}
	full, err := run(trace.Full(), seed)
	if err != nil {
		return nil, fmt.Errorf("calib: validate %s instrumented: %w", workload, err)
	}
	corrected := Correct(full.Trace, cal)
	return &ValidationResult{
		Workload:       workload,
		Uninstrumented: base.Total,
		Instrumented:   full.Total,
		Corrected:      CorrectedTotal(corrected),
		Overheads:      EstimatedOverhead(full.Trace, cal),
	}, nil
}
