package calib

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Correct produces a new trace with profiling overhead subtracted at the
// precise points where book-keeping occurred (paper §3.4).
//
// For each process, every overhead marker contributes its calibrated mean
// cost at its timestamp. Each event timestamp is then shifted left by the
// cumulative estimated overhead that occurred strictly before it:
//
//   - an event that started after k markers begins k mean-costs earlier;
//   - an event that contains markers shrinks by their cost (its start
//     shifts less than its end);
//   - point markers themselves are dropped from the corrected trace.
//
// GPU events are corrected with the same rule. Their true schedule depends
// on device queueing at launch time, which offline analysis cannot perfectly
// reconstruct — this approximation is one source of the residual correction
// bias the paper reports (within ±16%).
//
// Because each occurrence's true cost differs from the calibrated mean,
// corrected timestamps can carry nanosecond-scale inconsistencies (e.g. an
// event starting marginally before its predecessor ends). This residual is
// inherent to mean-based correction; downstream overlap analysis tolerates
// it.
func Correct(t *trace.Trace, cal *Calibration) *trace.Trace {
	out := &trace.Trace{Meta: t.Meta}
	out.Meta.Config = trace.Uninstrumented() // the corrected trace estimates the uninstrumented run
	for _, p := range t.ProcIDs() {
		events := t.ProcEvents(p)
		shift := buildShift(events, cal)
		for _, e := range events {
			if e.Kind == trace.KindOverhead {
				continue
			}
			ne := e
			ne.Start = e.Start.Add(-shift.before(e.Start))
			ne.End = e.End.Add(-shift.before(e.End))
			if ne.End < ne.Start {
				ne.End = ne.Start
			}
			out.Events = append(out.Events, ne)
		}
	}
	out.Sort()
	return out
}

// shiftIndex answers "how much estimated overhead occurred strictly before
// time t" in O(log n).
type shiftIndex struct {
	times  []vclock.Time
	prefix []vclock.Duration // prefix[i] = total overhead of markers [0, i)
}

func buildShift(events []trace.Event, cal *Calibration) shiftIndex {
	type marker struct {
		t vclock.Time
		d vclock.Duration
	}
	var ms []marker
	for _, e := range events {
		if e.Kind != trace.KindOverhead {
			continue
		}
		if d := cal.MeanFor(e.Overhead, e.Name); d > 0 {
			ms = append(ms, marker{e.Start, d})
		}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].t < ms[j].t })
	ix := shiftIndex{
		times:  make([]vclock.Time, len(ms)),
		prefix: make([]vclock.Duration, len(ms)+1),
	}
	for i, m := range ms {
		ix.times[i] = m.t
		ix.prefix[i+1] = ix.prefix[i] + m.d
	}
	return ix
}

// before returns cumulative overhead for markers with time < t.
func (ix shiftIndex) before(t vclock.Time) vclock.Duration {
	lo := sort.Search(len(ix.times), func(i int) bool { return ix.times[i] >= t })
	return ix.prefix[lo]
}
