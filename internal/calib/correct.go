package calib

import (
	"context"
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Correct produces a new trace with profiling overhead subtracted at the
// precise points where book-keeping occurred (paper §3.4).
//
// For each process, every overhead marker contributes its calibrated mean
// cost at its timestamp. Each event timestamp is then shifted left by the
// cumulative estimated overhead that occurred strictly before it:
//
//   - an event that started after k markers begins k mean-costs earlier;
//   - an event that contains markers shrinks by their cost (its start
//     shifts less than its end);
//   - point markers themselves are dropped from the corrected trace.
//
// GPU events are corrected with the same rule. Their true schedule depends
// on device queueing at launch time, which offline analysis cannot perfectly
// reconstruct — this approximation is one source of the residual correction
// bias the paper reports (within ±16%).
//
// Because each occurrence's true cost differs from the calibrated mean,
// corrected timestamps can carry nanosecond-scale inconsistencies (e.g. an
// event starting marginally before its predecessor ends). This residual is
// inherent to mean-based correction; downstream overlap analysis tolerates
// it.
//
// Correct materializes the corrected trace. Streaming analyses instead plug
// a Corrector — the same per-event math — into the engine as an
// analysis.EventStage, correcting each event in flight under the engine's
// memory budget; the two paths produce byte-identical breakdowns.
func Correct(t *trace.Trace, cal *Calibration) *trace.Trace {
	c := NewCorrector(t, cal)
	out := &trace.Trace{Meta: t.Meta}
	out.Meta.Config = trace.Uninstrumented() // the corrected trace estimates the uninstrumented run
	for _, p := range t.ProcIDs() {
		for _, e := range t.ProcEvents(p) {
			ne := e
			if !c.MapEvent(&ne) {
				continue
			}
			out.Events = append(out.Events, ne)
		}
	}
	out.Sort()
	return out
}

// Corrector is the factored-out per-event correction stage: per-process
// shift indexes frozen at construction, applied to one event at a time.
// It implements analysis.EventStage, which is what lets the streaming
// engine produce corrected breakdowns in bounded memory — the index holds
// one (time, cost) pair per calibrated overhead marker, never the events
// themselves.
//
// A Corrector is immutable after construction and safe for concurrent use.
type Corrector struct {
	shifts map[trace.ProcID]shiftIndex
}

// NewCorrector builds the correction stage from a materialized trace.
// Correct is exactly NewCorrector + MapEvent over every event + Sort.
func NewCorrector(t *trace.Trace, cal *Calibration) *Corrector {
	c := &Corrector{shifts: map[trace.ProcID]shiftIndex{}}
	for _, p := range t.ProcIDs() {
		c.shifts[p] = buildShift(t.ProcEvents(p), cal)
	}
	return c
}

// NewStreamCorrector builds the correction stage from chunked storage with
// one bounded-memory pre-pass: every relevant chunk is decoded once into a
// reusable buffer and only the overhead markers' (time, calibrated cost)
// pairs are retained. A non-empty procs list restricts the pre-pass the
// same way Options.Procs restricts the analysis: markers of other
// processes are never consulted by MapEvent/MapSpan for surviving events,
// so chunks whose sidecar lists none of the requested processes are
// skipped without decoding. onChunk, when non-nil, is invoked after each
// chunk — skipped or decoded — with the cumulative decoded-event count;
// ctx cancels the pre-pass between chunks.
func NewStreamCorrector(ctx context.Context, r *trace.Reader, cal *Calibration, procs []trace.ProcID, onChunk func(done, total, events int)) (*Corrector, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var filter map[trace.ProcID]bool
	if len(procs) > 0 {
		filter = make(map[trace.ProcID]bool, len(procs))
		for _, p := range procs {
			filter[p] = true
		}
	}
	byProc := map[trace.ProcID][]marker{}
	var buf []trace.Event
	n := r.NumChunks()
	events := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if filter != nil {
			ix, err := r.Index(i)
			if err != nil {
				return nil, err
			}
			relevant := false
			for p := range ix.Procs {
				if filter[p] {
					relevant = true
					break
				}
			}
			if !relevant {
				if onChunk != nil {
					onChunk(i+1, n, events)
				}
				continue
			}
		}
		var err error
		buf, err = r.ReadChunk(i, buf[:0])
		if err != nil {
			return nil, err
		}
		events += len(buf)
		for _, e := range buf {
			if e.Kind != trace.KindOverhead || (filter != nil && !filter[e.Proc]) {
				continue
			}
			if d := cal.MeanFor(e.Overhead, e.Name); d > 0 {
				byProc[e.Proc] = append(byProc[e.Proc], marker{e.Start, d})
			}
		}
		if onChunk != nil {
			onChunk(i+1, n, events)
		}
	}
	c := &Corrector{shifts: make(map[trace.ProcID]shiftIndex, len(byProc))}
	for p, ms := range byProc {
		c.shifts[p] = buildShiftFromMarkers(ms)
	}
	return c, nil
}

// MapEvent applies the correction to one event in place: overhead markers
// are dropped (false), every other event's timestamps shift left by the
// cumulative calibrated overhead that preceded them. The math is identical
// to Correct's, including the end-before-start clamp.
func (c *Corrector) MapEvent(e *trace.Event) bool {
	if e.Kind == trace.KindOverhead {
		return false
	}
	ix, ok := c.shifts[e.Proc]
	if !ok || len(ix.times) == 0 {
		return true
	}
	e.Start = e.Start.Add(-ix.before(e.Start))
	e.End = e.End.Add(-ix.before(e.End))
	if e.End < e.Start {
		e.End = e.Start
	}
	return true
}

// MapSpan conservatively corrects a chunk sidecar's per-process span. Every
// event the span summarizes has Start, End ∈ [MinStart, MaxEnd], and the
// shift function before(t) is nondecreasing, so shifting MinStart by the
// largest shift any such event can receive (before(MaxEnd)) and MaxEnd by
// the smallest (before(MinStart)) bounds every corrected extent. The
// streaming planner derives chunk relevance and eviction watermarks from
// these bounds, which is what keeps budgeted corrected streaming exact:
// watermarks may only underestimate future corrected start times, never
// overestimate them.
func (c *Corrector) MapSpan(p trace.ProcID, sp trace.ProcSpan) trace.ProcSpan {
	ix, ok := c.shifts[p]
	if !ok || len(ix.times) == 0 {
		return sp
	}
	minShift := ix.before(sp.MinStart)
	maxShift := ix.before(sp.MaxEnd)
	sp.MinStart = sp.MinStart.Add(-maxShift)
	sp.MaxEnd = sp.MaxEnd.Add(-minShift)
	return sp
}

// marker is one overhead occurrence: its instant and calibrated mean cost.
type marker struct {
	t vclock.Time
	d vclock.Duration
}

// shiftIndex answers "how much estimated overhead occurred strictly before
// time t" in O(log n).
type shiftIndex struct {
	times  []vclock.Time
	prefix []vclock.Duration // prefix[i] = total overhead of markers [0, i)
}

func buildShift(events []trace.Event, cal *Calibration) shiftIndex {
	var ms []marker
	for _, e := range events {
		if e.Kind != trace.KindOverhead {
			continue
		}
		if d := cal.MeanFor(e.Overhead, e.Name); d > 0 {
			ms = append(ms, marker{e.Start, d})
		}
	}
	return buildShiftFromMarkers(ms)
}

// buildShiftFromMarkers sorts the markers by time and folds them into a
// prefix-sum index. Equal-time markers may land in either order without
// affecting any before(t) query, so collection order (materialized proc
// order vs streaming chunk order) cannot leak into corrected timestamps.
func buildShiftFromMarkers(ms []marker) shiftIndex {
	sort.Slice(ms, func(i, j int) bool { return ms[i].t < ms[j].t })
	ix := shiftIndex{
		times:  make([]vclock.Time, len(ms)),
		prefix: make([]vclock.Duration, len(ms)+1),
	}
	for i, m := range ms {
		ix.times[i] = m.t
		ix.prefix[i+1] = ix.prefix[i] + m.d
	}
	return ix
}

// before returns cumulative overhead for markers with time < t.
func (ix shiftIndex) before(t vclock.Time) vclock.Duration {
	lo := sort.Search(len(ix.times), func(i int) bool { return ix.times[i] >= t })
	return ix.prefix[lo]
}
