package calib

import (
	"repro/internal/gpu"
	"repro/internal/vclock"
)

// PCSampleEstimate models the CUPTI PC-Sampling strategy the paper rejected
// (Appendix A.2): sample the device program counter at a fixed period and
// estimate GPU-busy time as (#samples that landed in a kernel) × period.
//
// The paper lists three problems with sampling profilers; the one this
// function demonstrates is lost accuracy on short kernels. RL kernels
// frequently run for less than the sample period, so a sampler either
// misses them entirely (underestimating GPU time) or charges a whole period
// to a kernel that ran for a fraction of it (overestimating). Tests compare
// this estimate against the exact busy union to show why RL-Scope records
// complete start/end timestamps instead.
func PCSampleEstimate(busy []gpu.Busy, start, end vclock.Time, period vclock.Duration) vclock.Duration {
	if period <= 0 || end <= start {
		return 0
	}
	union := gpu.Union(busy)
	var est vclock.Duration
	i := 0
	for t := start; t < end; t = t.Add(period) {
		for i < len(union) && union[i].End <= t {
			i++
		}
		if i < len(union) && union[i].Start <= t && t < union[i].End {
			est += period
		}
	}
	return est
}
