package calib

import (
	"math"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// toyRunner builds a Runner over a miniature RL-like loop with known
// structure. The overhead model uses jittered costs so calibration has real
// estimation work to do.
func toyRunner(iters int) Runner {
	return func(flags trace.FeatureFlags, seed int64) (*RunStats, error) {
		p := profiler.New(profiler.Options{Workload: "toy", Flags: flags, Seed: seed})
		dev := gpu.NewDevice(-1)
		s := p.NewProcess("trainer", -1, 0)
		ctx := cuda.NewContext(s, dev, cuda.DefaultCosts())
		for i := 0; i < iters; i++ {
			s.WithOperation("inference", func() {
				s.Python(vclock.Jittered(15*vclock.Microsecond, 0.2))
				s.CallBackend("forward", func() {
					s.Clock().Advance(4 * vclock.Microsecond)
					ctx.LaunchKernel("matmul", 3*vclock.Microsecond)
					ctx.StreamSynchronize()
				})
			})
			s.WithOperation("simulation", func() {
				s.CallSimulator("step", func() {
					s.Clock().Advance(40 * vclock.Microsecond)
				})
			})
			s.WithOperation("backpropagation", func() {
				s.Python(vclock.Jittered(10*vclock.Microsecond, 0.2))
				s.CallBackend("train", func() {
					s.Clock().Advance(6 * vclock.Microsecond)
					ctx.LaunchKernel("fwd", 3*vclock.Microsecond)
					ctx.LaunchKernel("bwd", 5*vclock.Microsecond)
					ctx.MemcpyAsync(cuda.HostToDevice, 64*1024)
					ctx.StreamSynchronize()
				})
			})
		}
		s.Close()
		tr := p.MustTrace()
		return StatsFromTrace(tr, flags, p.OverheadCounts(), p.TotalTime()), nil
	}
}

func TestCalibrateRecoversMeans(t *testing.T) {
	run := toyRunner(400)
	cal, err := Calibrate(run, 7)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	model := profiler.DefaultOverheads()
	within := func(name string, got, want vclock.Duration, tol float64) {
		t.Helper()
		if want == 0 {
			return
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > tol {
			t.Errorf("%s: calibrated %v, true mean %v (%.1f%% off)", name, got, want, 100*rel)
		}
	}
	within("annotation", cal.Annotation, model.Annotation.Mean, 0.10)
	within("interception", cal.Interception, model.Interception.Mean, 0.10)
	within("cuda-intercept", cal.CUDAIntercept, model.CUDAIntercept.Mean, 0.10)
	within("cupti launch", cal.CUPTI[cuda.APILaunchKernel], model.CUPTI[cuda.APILaunchKernel].Mean, 0.15)
	within("cupti memcpy", cal.CUPTI[cuda.APIMemcpyAsync], model.CUPTI[cuda.APIMemcpyAsync].Mean, 0.25)
}

func TestCUPTILaunchInflationExceedsMemcpy(t *testing.T) {
	// The paper's Figure 10 property: per-API inflation differs, with
	// launches costing more than memcpys.
	cal, err := Calibrate(toyRunner(300), 11)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if cal.CUPTI[cuda.APILaunchKernel] <= cal.CUPTI[cuda.APIMemcpyAsync] {
		t.Fatalf("launch inflation %v should exceed memcpy inflation %v",
			cal.CUPTI[cuda.APILaunchKernel], cal.CUPTI[cuda.APIMemcpyAsync])
	}
}

func TestCalibrateNAveragesEstimates(t *testing.T) {
	run := toyRunner(150)
	cal, err := CalibrateN(run, 5, 3)
	if err != nil {
		t.Fatalf("CalibrateN: %v", err)
	}
	model := profiler.DefaultOverheads()
	rel := math.Abs(float64(cal.Interception-model.Interception.Mean)) / float64(model.Interception.Mean)
	if rel > 0.10 {
		t.Fatalf("averaged interception mean off by %.1f%%", 100*rel)
	}
	if _, err := CalibrateN(run, 5, 0); err == nil {
		t.Fatal("reps=0 accepted")
	}
}

func TestCorrectionRemovesMarkersAndShrinksTrace(t *testing.T) {
	run := toyRunner(100)
	cal, err := Calibrate(run, 3)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	full, err := run(trace.Full(), 3)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	corrected := Correct(full.Trace, cal)
	if n := corrected.CountKind(trace.KindOverhead); n != 0 {
		t.Fatalf("corrected trace retains %d overhead markers", n)
	}
	if got := CorrectedTotal(corrected); got >= full.Total {
		t.Fatalf("corrected total %v not smaller than instrumented %v", got, full.Total)
	}
	// Mean-based correction can leave nanosecond-scale nesting
	// inconsistencies (an occurrence's true cost differs from the
	// calibrated mean), so full structural validation does not apply;
	// events must still be individually well-formed.
	for i, e := range corrected.Events {
		if err := e.Validate(); err != nil {
			t.Fatalf("corrected event %d invalid: %v", i, err)
		}
	}
}

func TestValidationBiasWithinPaperBound(t *testing.T) {
	res, err := Validate("toy", toyRunner(300), 5, 1234)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if bias := math.Abs(res.Bias()); bias > 0.16 {
		t.Fatalf("correction bias %.1f%% exceeds the paper's ±16%% bound", 100*bias)
	}
	if res.RawInflation() <= 1.0 {
		t.Fatalf("raw inflation %.2f; instrumentation should inflate runtime", res.RawInflation())
	}
	if res.Corrected >= res.Instrumented {
		t.Fatal("corrected time should be below instrumented time")
	}
}

func TestCorrectionBeatsNoCorrection(t *testing.T) {
	// The corrected estimate must be strictly closer to ground truth than
	// the uncorrected instrumented time (the paper's reason to correct).
	res, err := Validate("toy", toyRunner(200), 8, 999)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	errCorrected := math.Abs(float64(res.Corrected - res.Uninstrumented))
	errRaw := math.Abs(float64(res.Instrumented - res.Uninstrumented))
	if errCorrected >= errRaw {
		t.Fatalf("correction did not help: corrected err %v vs raw err %v", errCorrected, errRaw)
	}
}

func TestEstimatedOverheadComponents(t *testing.T) {
	run := toyRunner(50)
	cal, err := Calibrate(run, 2)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	full, err := run(trace.Full(), 2)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	comps := EstimatedOverhead(full.Trace, cal)
	var haveCUPTI, haveHook, haveBackendIntercept, haveSimIntercept, haveAnnot bool
	for c, d := range comps {
		if d <= 0 {
			t.Errorf("component %v has non-positive overhead %v", c, d)
		}
		switch {
		case c.Kind == trace.OverheadCUPTI:
			haveCUPTI = true
		case c.Kind == trace.OverheadCUDAIntercept:
			haveHook = true
		case c.Kind == trace.OverheadInterception && c.Name == trace.TransPythonToBackend:
			haveBackendIntercept = true
		case c.Kind == trace.OverheadInterception && c.Name == trace.TransPythonToSimulator:
			haveSimIntercept = true
		case c.Kind == trace.OverheadAnnotation:
			haveAnnot = true
		}
	}
	if !haveCUPTI || !haveHook || !haveBackendIntercept || !haveSimIntercept || !haveAnnot {
		t.Fatalf("missing overhead components: %v", comps)
	}
}

func TestCorrectShiftsEventsAtRightPoints(t *testing.T) {
	// Hand-built trace: two markers with known means; events before,
	// containing, and after them.
	tr := &trace.Trace{Events: []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindOverhead, Overhead: trace.OverheadInterception, Start: 10, End: 10, Name: "x"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 20, End: 40, Name: "call"},
		{Kind: trace.KindOverhead, Overhead: trace.OverheadInterception, Start: 30, End: 30, Name: "x"},
		{Kind: trace.KindCPU, Cat: trace.CatSimulator, Start: 50, End: 60, Name: "sim"},
	}}
	cal := &Calibration{Interception: 5}
	out := Correct(tr, cal)

	find := func(name string) trace.Event {
		for _, e := range out.Events {
			if e.Name == name {
				return e
			}
		}
		t.Fatalf("event %q missing from corrected trace", name)
		return trace.Event{}
	}
	python := find("python")
	if python.Start != 0 || python.End != 90 {
		t.Errorf("python corrected to [%v,%v], want [0,90]", python.Start, python.End)
	}
	call := find("call")
	// One marker (t=10) before it: shift start by 5. One marker inside
	// (t=30): end shifts by 10 total → [15, 30].
	if call.Start != 15 || call.End != 30 {
		t.Errorf("call corrected to [%v,%v], want [15,30]", call.Start, call.End)
	}
	sim := find("sim")
	if sim.Start != 40 || sim.End != 50 {
		t.Errorf("sim corrected to [%v,%v], want [40,50]", sim.Start, sim.End)
	}
}

func TestPCSampleEstimateMissesShortKernels(t *testing.T) {
	// 100 kernels of 10µs each (1ms total) spread over 1s, sampled at
	// 10ms: the sampler sees at most a few and cannot reconstruct busy
	// time accurately.
	var busy []gpu.Busy
	for i := 0; i < 100; i++ {
		s := vclock.Time(i) * vclock.Time(10*vclock.Millisecond)
		busy = append(busy, gpu.Busy{Start: s, End: s.Add(10 * vclock.Microsecond)})
	}
	exact := vclock.Duration(100 * 10 * vclock.Microsecond)
	est := PCSampleEstimate(busy, 0, vclock.Time(vclock.Second), 10*vclock.Millisecond)
	rel := math.Abs(float64(est-exact)) / float64(exact)
	if rel < 0.5 {
		t.Fatalf("PC sampling was unexpectedly accurate (%.0f%% error); kernels start exactly at sample points?", rel*100)
	}
}

func TestPCSampleEstimateEdgeCases(t *testing.T) {
	if got := PCSampleEstimate(nil, 0, 100, 0); got != 0 {
		t.Fatalf("zero period estimate = %v", got)
	}
	if got := PCSampleEstimate(nil, 100, 100, 10); got != 0 {
		t.Fatalf("empty window estimate = %v", got)
	}
}
