package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The serving hot paths, gated in CI: a cache hit must answer from stored
// bytes — no Engine work, no re-encoding — which the gate enforces as a
// roughly three-orders-of-magnitude ns/op gap (the acceptance floor is
// 100x) and a flat allocation profile against the cache-miss path, which
// pays the full Engine run on the quickstart trace every iteration.

const benchAnalyzeBody = `{"workers":1}`

func benchServer(b *testing.B) *Server {
	b.Helper()
	return newTestServer(b, Config{}, quickstartDir(b, 100))
}

func benchAnalyze(b *testing.B, h http.Handler) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/traces/qs/analyze", strings.NewReader(benchAnalyzeBody))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("analyze: %d %s", rec.Code, rec.Body)
	}
	return rec
}

func BenchmarkServeCacheHit(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	rec := benchAnalyze(b, h) // warm the cache
	b.SetBytes(int64(rec.Body.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchAnalyze(b, h)
	}
	b.StopTimer()
	if runs := s.EngineRuns(); runs != 1 {
		b.Fatalf("cache hits performed engine work: %d runs for %d requests", runs, b.N+1)
	}
}

func BenchmarkServeCacheMiss(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	rec := benchAnalyze(b, h)
	b.SetBytes(int64(rec.Body.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache.reset() // force the full Engine run every iteration
		b.StartTimer()
		benchAnalyze(b, h)
	}
}
