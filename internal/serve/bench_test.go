package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

// The serving hot paths, gated in CI: a cache hit must answer from stored
// bytes — no Engine work, no re-encoding — which the gate enforces as a
// roughly three-orders-of-magnitude ns/op gap (the acceptance floor is
// 100x) and a flat allocation profile against the cache-miss path, which
// pays the full Engine run on the quickstart trace every iteration.

const benchAnalyzeBody = `{"workers":1}`

func benchServer(b *testing.B) *Server {
	b.Helper()
	return newTestServer(b, Config{}, quickstartDir(b, 100))
}

func benchAnalyze(b *testing.B, h http.Handler) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/traces/qs/analyze", strings.NewReader(benchAnalyzeBody))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("analyze: %d %s", rec.Code, rec.Body)
	}
	return rec
}

func BenchmarkServeCacheHit(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	rec := benchAnalyze(b, h) // warm the cache
	b.SetBytes(int64(rec.Body.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchAnalyze(b, h)
	}
	b.StopTimer()
	if runs := s.EngineRuns(); runs != 1 {
		b.Fatalf("cache hits performed engine work: %d runs for %d requests", runs, b.N+1)
	}
}

// BenchmarkIncrementalAppend measures the live-ingest steady state: one
// chunk append plus the analyze that absorbs it as an epoch, against a
// trace that already holds many chunks. This is the path whose cost must
// stay O(chunk) — the gate watches it alongside the batch cache paths, and
// the closing counter check proves no iteration fell back to a batch
// Engine run.
func BenchmarkIncrementalAppend(b *testing.B) {
	s := NewServer(Config{StoreDir: b.TempDir()})
	b.Cleanup(s.Close)
	h := s.Handler()

	tr := quickstartTrace(b, 100)
	const perChunk = 64
	post := func(seq int, chunk []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", fmt.Sprintf("/v1/traces/bench/chunks?seq=%d", seq), bytes.NewReader(chunk))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("append %d: %d %s", seq, rec.Code, rec.Body)
		}
	}
	analyze := func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/traces/bench/analyze", strings.NewReader(benchAnalyzeBody))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("analyze: %d %s", rec.Code, rec.Body)
		}
	}

	seq := 0
	for lo := 0; lo < len(tr.Events); lo += perChunk {
		hi := lo + perChunk
		if hi > len(tr.Events) {
			hi = len(tr.Events)
		}
		chunk, _, err := trace.EncodeEvents(tr.Events[lo:hi])
		if err != nil {
			b.Fatal(err)
		}
		post(seq, chunk)
		seq++
	}
	analyze() // absorb the base trace so iterations measure the increment

	// Every iteration appends the same (re-sequenced) frame: a fresh chunk
	// of real events landing on an already-analyzed trace.
	iterChunk, _, err := trace.EncodeEvents(tr.Events[:perChunk])
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(iterChunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(seq, iterChunk)
		seq++
		analyze()
	}
	b.StopTimer()
	if runs := s.EngineRuns(); runs != 0 {
		b.Fatalf("incremental appends fell back to %d batch engine runs", runs)
	}
}

// BenchmarkFleetQueryWarm measures the fleet steady state the report store
// buys: a grouped query over several traces whose result sets are all
// stored — per trace one store lookup, one decode, one exact merge, then
// one document render. The closing counter check proves no iteration paid
// an Engine run.
func BenchmarkFleetQueryWarm(b *testing.B) {
	s := NewServer(Config{})
	b.Cleanup(s.Close)
	algos := []string{"ppo", "dqn", "a2c"}
	for i, algo := range algos {
		if _, err := s.AddDir(fmt.Sprintf("run-%d", i), labeledDir(b, 40+10*i, map[string]string{"algo": algo})); err != nil {
			b.Fatal(err)
		}
	}
	h := s.Handler()
	query := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"group_by":["label.algo"]}`))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("query: %d %s", rec.Code, rec.Body)
		}
		return rec
	}
	rec := query() // warm the result-set store
	warmRuns := s.EngineRuns()
	b.SetBytes(int64(rec.Body.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query()
	}
	b.StopTimer()
	if runs := s.EngineRuns(); runs != warmRuns {
		b.Fatalf("warm queries performed engine work: %d extra runs", runs-warmRuns)
	}
}

func BenchmarkServeCacheMiss(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	rec := benchAnalyze(b, h)
	b.SetBytes(int64(rec.Body.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.store.lru.reset() // force the full Engine run every iteration
		b.StartTimer()
		benchAnalyze(b, h)
	}
}
