package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	rlscope "repro"
	"repro/internal/fleet"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
)

// labeledDir writes a quickstart trace directory whose metadata carries
// the given labels — distinct labels make distinct content digests.
func labeledDir(tb testing.TB, steps int, labels map[string]string) string {
	tb.Helper()
	tr := quickstartTrace(tb, steps)
	tr.Meta.Labels = labels
	dir := tb.TempDir()
	w, err := trace.NewWriter(dir, 4<<10)
	if err != nil {
		tb.Fatal(err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		tb.Fatal(err)
	}
	return dir
}

// fleetDirs registers three labeled quickstart traces on a server: two
// ppo runs and one dqn run.
func fleetDirs(tb testing.TB, s *Server) map[string]string {
	tb.Helper()
	dirs := map[string]string{
		"run-a": labeledDir(tb, 12, map[string]string{"algo": "ppo", "framework": "tf"}),
		"run-b": labeledDir(tb, 18, map[string]string{"algo": "ppo", "framework": "torch"}),
		"run-c": labeledDir(tb, 24, map[string]string{"algo": "dqn", "framework": "tf"}),
	}
	for id, dir := range dirs {
		if _, err := s.AddDir(id, dir); err != nil {
			tb.Fatal(err)
		}
	}
	return dirs
}

// offlineQueryDoc computes the expected document the way rlscope-query
// does: compile the same DSL, load each trace's results with a fresh
// Engine run, render.
func offlineQueryDoc(tb testing.TB, q fleet.Query, dirs map[string]string) []byte {
	tb.Helper()
	plan, err := fleet.Compile(q)
	if err != nil {
		tb.Fatal(err)
	}
	var candidates []fleet.Trace
	for id, dir := range dirs {
		r, err := trace.OpenDir(dir)
		if err != nil {
			tb.Fatal(err)
		}
		candidates = append(candidates, fleet.Trace{ID: id, Meta: r.Meta()})
	}
	doc, err := plan.Execute(context.Background(), candidates, func(ctx context.Context, t fleet.Trace) (map[trace.ProcID]*overlap.Result, error) {
		rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(ctx, rlscope.FromDir(dirs[t.ID]))
		if err != nil {
			return nil, err
		}
		return rep.Results, nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestQueryEndpoint(t *testing.T) {
	s := NewServer(Config{MaxWorkers: 2})
	t.Cleanup(s.Close)
	dirs := fleetDirs(t, s)
	h := s.Handler()

	body := `{"group_by":["label.algo"],"metrics":["total_ns","gpu_ns","gpu_frac"]}`
	rec := doReq(t, h, "POST", "/v1/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	if runs := rec.Header().Get("X-RLScope-Engine-Runs"); runs != "3" {
		t.Fatalf("cold query engine runs %q, want 3", runs)
	}
	var doc report.QueryDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces != 3 || len(doc.Groups) != 2 {
		t.Fatalf("doc has %d traces in %d groups, want 3 in 2: %s", doc.Traces, len(doc.Groups), rec.Body)
	}
	if doc.Groups[0].Key["label.algo"] != "dqn" || doc.Groups[1].Key["label.algo"] != "ppo" {
		t.Fatalf("group keys out of order: %s", rec.Body)
	}

	// The server's document is byte-identical to the offline computation
	// over the same traces and query — the CLI/server cmp contract.
	var q fleet.Query
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	if offline := offlineQueryDoc(t, q, dirs); !bytes.Equal(rec.Body.Bytes(), offline) {
		t.Fatalf("server document diverges from offline:\nserver:\n%s\noffline:\n%s", rec.Body, offline)
	}

	// Repeat: every result set is now stored, zero Engine runs, same bytes.
	rec2 := doReq(t, h, "POST", "/v1/query", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm query: %d %s", rec2.Code, rec2.Body)
	}
	if runs := rec2.Header().Get("X-RLScope-Engine-Runs"); runs != "0" {
		t.Fatalf("warm query engine runs %q, want 0", runs)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("warm query bytes differ from cold query")
	}

	// A filter with no matches is an empty (but valid) document.
	rec3 := doReq(t, h, "POST", "/v1/query", `{"filter":{"label.algo":"nothing"}}`)
	if rec3.Code != http.StatusOK {
		t.Fatalf("empty query: %d %s", rec3.Code, rec3.Body)
	}
	if err := json.Unmarshal(rec3.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces != 0 || len(doc.Groups) != 0 {
		t.Fatalf("no-match query: %s", rec3.Body)
	}
}

// TestQueryFleetScaleWarm is the ISSUE's scale acceptance check: a
// grouped query over 100+ registered traces performs zero Engine runs
// once the report store is warm — the warm cost is store lookups plus
// the exact merge, independent of fleet size.
func TestQueryFleetScaleWarm(t *testing.T) {
	const fleetSize = 120
	s := NewServer(Config{MaxWorkers: 2})
	t.Cleanup(s.Close)
	// Same tiny event stream everywhere; the labels alone make each
	// directory distinct content (labels live in meta.json, so they are
	// part of the digest).
	for i := 0; i < fleetSize; i++ {
		dir := labeledDir(t, 6, map[string]string{
			"algo": []string{"ppo", "dqn", "a2c"}[i%3],
			"run":  fmt.Sprintf("%03d", i),
		})
		if _, err := s.AddDir(fmt.Sprintf("run-%03d", i), dir); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()

	body := `{"group_by":["label.algo"]}`
	cold := doReq(t, h, "POST", "/v1/query", body)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold query: %d %s", cold.Code, cold.Body)
	}
	if runs := cold.Header().Get("X-RLScope-Engine-Runs"); runs != fmt.Sprint(fleetSize) {
		t.Fatalf("cold query engine runs %q, want %d", runs, fleetSize)
	}
	var doc report.QueryDoc
	if err := json.Unmarshal(cold.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces != fleetSize || len(doc.Groups) != 3 {
		t.Fatalf("doc has %d traces in %d groups, want %d in 3", doc.Traces, len(doc.Groups), fleetSize)
	}

	coldRuns := s.EngineRuns()
	warm := doReq(t, h, "POST", "/v1/query", body)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm query: %d %s", warm.Code, warm.Body)
	}
	if runs := warm.Header().Get("X-RLScope-Engine-Runs"); runs != "0" {
		t.Fatalf("warm query engine runs %q, want 0", runs)
	}
	if got := s.EngineRuns(); got != coldRuns {
		t.Fatalf("warm query started %d engine runs", got-coldRuns)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("warm query bytes differ from cold query")
	}
}

func TestQueryBadRequests(t *testing.T) {
	s := NewServer(Config{MaxWorkers: 1})
	t.Cleanup(s.Close)
	h := s.Handler()
	for _, body := range []string{
		`{"bogus_field": 1}`,
		`{"group_by":["nope"]}`,
		`{"filter":{"workload":"[unclosed"}}`,
		`{"metrics":["watts"]}`,
		`{"compare":{"baseline":{"label.algo":"x"}}}`,
		`not json`,
	} {
		rec := doReq(t, h, "POST", "/v1/query", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("query %s: %d, want 400", body, rec.Code)
			continue
		}
		if code := errCode(t, rec); code != ErrCodeBadRequest {
			t.Errorf("query %s: error code %q, want %q", body, code, ErrCodeBadRequest)
		}
	}
}

// TestQueryWarmRestart is the persistence tentpole: a server restarted
// over the same -store-reports directory answers the repeat query with
// zero Engine runs and byte-identical output.
func TestQueryWarmRestart(t *testing.T) {
	reportDir := t.TempDir()
	s1, err := NewServerStrict(Config{MaxWorkers: 2, ReportDir: reportDir})
	if err != nil {
		t.Fatal(err)
	}
	dirs := fleetDirs(t, s1)
	body := `{"group_by":["label.framework"]}`
	rec1 := doReq(t, s1.Handler(), "POST", "/v1/query", body)
	if rec1.Code != http.StatusOK {
		t.Fatalf("cold query: %d %s", rec1.Code, rec1.Body)
	}
	if runs := s1.EngineRuns(); runs != 3 {
		t.Fatalf("cold server ran %d engines, want 3", runs)
	}
	s1.Close()

	s2, err := NewServerStrict(Config{MaxWorkers: 2, ReportDir: reportDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	for id, dir := range dirs {
		if _, err := s2.AddDir(id, dir); err != nil {
			t.Fatal(err)
		}
	}
	rec2 := doReq(t, s2.Handler(), "POST", "/v1/query", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm query: %d %s", rec2.Code, rec2.Body)
	}
	if runs := s2.EngineRuns(); runs != 0 {
		t.Fatalf("restarted server ran %d engines, want 0 (report store is warm)", runs)
	}
	if runs := rec2.Header().Get("X-RLScope-Engine-Runs"); runs != "0" {
		t.Fatalf("warm query header %q, want 0", runs)
	}
	if !bytes.Equal(rec1.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("restarted server's document differs")
	}
}

func TestTraceListFilters(t *testing.T) {
	s := NewServer(Config{MaxWorkers: 1})
	t.Cleanup(s.Close)
	fleetDirs(t, s)
	h := s.Handler()

	count := func(path string) int {
		t.Helper()
		rec := doReq(t, h, "GET", path, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, rec.Code, rec.Body)
		}
		var listing struct {
			Traces []TraceInfo `json:"traces"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
			t.Fatal(err)
		}
		return len(listing.Traces)
	}
	if n := count("/v1/traces"); n != 3 {
		t.Fatalf("unfiltered listing: %d, want 3", n)
	}
	if n := count("/v1/traces?label.algo=ppo"); n != 2 {
		t.Fatalf("label.algo=ppo: %d, want 2", n)
	}
	if n := count("/v1/traces?label.algo=ppo&label.framework=tf"); n != 1 {
		t.Fatalf("two label filters: %d, want 1", n)
	}
	if n := count("/v1/traces?workload=quick*"); n != 3 {
		t.Fatalf("workload glob: %d, want 3", n)
	}
	if n := count("/v1/traces?id=run-[ab]"); n != 2 {
		t.Fatalf("id glob: %d, want 2", n)
	}
	if n := count("/v1/traces?label.missing=x"); n != 0 {
		t.Fatalf("absent label: %d, want 0", n)
	}
	rec := doReq(t, h, "GET", "/v1/traces?bogus=1", "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus filter param: %d, want 400", rec.Code)
	}

	// Labels ride along in the listing rows.
	rec = doReq(t, h, "GET", "/v1/traces?id=run-a", "")
	var listing struct {
		Traces []TraceInfo `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if got := listing.Traces[0].Labels["algo"]; got != "ppo" {
		t.Fatalf("listed labels %v", listing.Traces[0].Labels)
	}
}

// streamAndSeal streams the quickstart trace into a live server under id
// with the given labels, seals it, and returns its final digest.
func streamAndSeal(tb testing.TB, h http.Handler, id string, labels map[string]string) string {
	tb.Helper()
	chunks, meta := quickstartFrames(tb, 10, 3)
	meta.Labels = labels
	for seq := range chunks {
		rec := doReq(tb, h, "POST", fmt.Sprintf("/v1/traces/%s/chunks?seq=%d", id, seq), string(chunks[seq]))
		if rec.Code != http.StatusOK {
			tb.Fatalf("append %d: %d %s", seq, rec.Code, rec.Body)
		}
	}
	metaBody, err := json.Marshal(meta)
	if err != nil {
		tb.Fatal(err)
	}
	rec := doReq(tb, h, "POST", "/v1/traces/"+id+"/seal", string(metaBody))
	if rec.Code != http.StatusOK {
		tb.Fatalf("seal: %d %s", rec.Code, rec.Body)
	}
	var sealed SealResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sealed); err != nil {
		tb.Fatal(err)
	}
	return sealed.Digest
}

// TestQueryOverSealedLive: sealed live traces are fleet candidates, and
// sealing itself populated the result-set store — so querying them costs
// zero Engine runs. Open live traces are excluded until sealed.
func TestQueryOverSealedLive(t *testing.T) {
	s, _ := liveServer(t, Config{MaxWorkers: 2})
	h := s.Handler()

	chunk, _ := quickstartFrames(t, 10, 1)
	if rec := doReq(t, h, "POST", "/v1/traces/open1/chunks?seq=0", string(chunk[0])); rec.Code != http.StatusOK {
		t.Fatalf("append: %d %s", rec.Code, rec.Body)
	}
	rec := doReq(t, h, "POST", "/v1/query", `{}`)
	var doc report.QueryDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces != 0 {
		t.Fatalf("open live trace entered a fleet query: %s", rec.Body)
	}

	streamAndSeal(t, h, "live-ppo", map[string]string{"algo": "ppo"})
	streamAndSeal(t, h, "live-dqn", map[string]string{"algo": "dqn"})
	rec = doReq(t, h, "POST", "/v1/query", `{"group_by":["label.algo"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces != 2 || len(doc.Groups) != 2 {
		t.Fatalf("sealed live query: %d traces in %d groups, want 2 in 2", doc.Traces, len(doc.Groups))
	}
	if got := doc.Groups[0].TraceIDs[0]; got != "live-dqn" {
		t.Fatalf("dqn group members %v", doc.Groups[0].TraceIDs)
	}
	// Seal already stored each trace's result set; the query needed no
	// Engine at all.
	if runs := rec.Header().Get("X-RLScope-Engine-Runs"); runs != "0" {
		t.Fatalf("sealed-live query engine runs %q, want 0", runs)
	}
	if runs := s.EngineRuns(); runs != 0 {
		t.Fatalf("server ran %d engines, want 0", runs)
	}
}

// TestSealEvictsIncremental: sealing drops the resident incremental state
// while keeping the final document, the final counters, and a working
// (Engine-backed) filtered-analysis path.
func TestSealEvictsIncremental(t *testing.T) {
	s, _ := liveServer(t, Config{MaxWorkers: 2})
	h := s.Handler()

	// Analyze mid-stream so the incremental state has done real work.
	chunks, meta := quickstartFrames(t, 10, 3)
	meta.Labels = map[string]string{"algo": "ppo"}
	for seq := 0; seq < 2; seq++ {
		if rec := doReq(t, h, "POST", fmt.Sprintf("/v1/traces/run/chunks?seq=%d", seq), string(chunks[seq])); rec.Code != http.StatusOK {
			t.Fatalf("append %d: %d %s", seq, rec.Code, rec.Body)
		}
	}
	if rec := doReq(t, h, "POST", "/v1/traces/run/analyze", `{}`); rec.Code != http.StatusOK {
		t.Fatalf("mid-stream analyze: %d %s", rec.Code, rec.Body)
	}
	if rec := doReq(t, h, "POST", "/v1/traces/run/chunks?seq=2", string(chunks[2])); rec.Code != http.StatusOK {
		t.Fatalf("append 2: %d %s", rec.Code, rec.Body)
	}
	preSeal, ok := s.IncrementalStats("run")
	if !ok || preSeal.Epochs != 1 {
		t.Fatalf("pre-seal stats %+v ok=%v", preSeal, ok)
	}

	metaBody, _ := json.Marshal(meta)
	if rec := doReq(t, h, "POST", "/v1/traces/run/seal", string(metaBody)); rec.Code != http.StatusOK {
		t.Fatalf("seal: %d %s", rec.Code, rec.Body)
	}
	lt := s.liveLookup("run")
	lt.amu.Lock()
	evicted := lt.inc == nil
	lt.amu.Unlock()
	if !evicted {
		t.Fatal("seal did not evict the incremental state")
	}

	// The final counters survive eviction, including the seal's last epoch.
	post, ok := s.IncrementalStats("run")
	if !ok || post.Epochs != preSeal.Epochs+1 || post.Chunks != len(chunks) {
		t.Fatalf("post-seal stats %+v ok=%v (pre-seal %+v)", post, ok, preSeal)
	}

	// Unfiltered analyzes serve the document cached at seal time — zero
	// Engine runs, byte-identical to the offline result-only document.
	rec := doReq(t, h, "POST", "/v1/traces/run/analyze", `{}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-seal analyze: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-RLScope-Cache"); got != "hit" {
		t.Fatalf("post-seal analyze cache %q, want hit", got)
	}
	dir := lt.sink.Dir()
	rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(context.Background(), rlscope.FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	var offline bytes.Buffer
	if err := report.NewResultAnalysis(rep.Meta, rep.Results, false).Encode(&offline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), offline.Bytes()) {
		t.Fatalf("sealed document diverges from offline:\nlive:\n%s\noffline:\n%s", rec.Body, offline.String())
	}
	if runs := s.EngineRuns(); runs != 0 {
		t.Fatalf("unfiltered post-seal analyze ran %d engines, want 0", runs)
	}

	// A filtered analyze of the evicted trace falls back to one Engine run
	// over the sealed directory and produces the filtered result-only doc.
	rec = doReq(t, h, "POST", "/v1/traces/run/analyze", `{"procs":[0]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("filtered post-seal analyze: %d %s", rec.Code, rec.Body)
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("filtered post-seal analyze ran %d engines, want 1", runs)
	}
	repF, err := rlscope.NewEngine(rlscope.WithWorkers(1), rlscope.WithProcesses(0)).Analyze(context.Background(), rlscope.FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	var offlineF bytes.Buffer
	if err := report.NewResultAnalysis(repF.Meta, repF.Results, false).Encode(&offlineF); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), offlineF.Bytes()) {
		t.Fatalf("filtered sealed document diverges from offline")
	}
	// Repeating the same filtered request hits the per-trace cache.
	rec = doReq(t, h, "POST", "/v1/traces/run/analyze", `{"procs":[0]}`)
	if got := rec.Header().Get("X-RLScope-Cache"); got != "hit" {
		t.Fatalf("repeat filtered analyze cache %q, want hit", got)
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("repeat filtered analyze ran extra engines: %d", runs)
	}
}
