package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightAbandonedKeyStartsFresh pins the abandonment contract: once
// the last waiter detaches, the key is forgotten immediately — a request
// arriving while the dying run is still unwinding starts a fresh flight
// instead of inheriting the cancellation error.
func TestFlightAbandonedKeyStartsFresh(t *testing.T) {
	g := newFlightGroup(context.Background())
	var runs atomic.Int32
	started := make(chan struct{})
	unblock := make(chan struct{})

	cctx, cancel := context.WithCancel(context.Background())
	detached := make(chan error, 1)
	go func() {
		_, _, err := g.do(cctx, "k", func(ctx context.Context) ([]byte, error) {
			runs.Add(1)
			close(started)
			<-unblock // keep the dying run in flight past the second do
			return nil, ctx.Err()
		})
		detached <- err
	}()
	<-started
	cancel()
	if err := <-detached; err == nil {
		t.Fatal("detached waiter got no error")
	}
	if n := g.waiting("k"); n != 0 {
		t.Fatalf("abandoned key still has %d waiters registered", n)
	}

	// The first fn is still blocked, but the key must be free.
	val, shared, err := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
		runs.Add(1)
		return []byte("ok"), nil
	})
	if err != nil || shared || string(val) != "ok" {
		t.Fatalf("fresh flight after abandonment: val=%q shared=%v err=%v", val, shared, err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("runs = %d, want 2 (abandoned + fresh)", n)
	}

	// Let the abandoned run unwind; it must not disturb later flights.
	close(unblock)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if val, _, err := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
			return []byte("again"), nil
		}); err == nil && string(val) == "again" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight group unusable after abandoned run unwound")
		}
	}
}
