// Fleet queries: POST /v1/query answers cross-trace aggregation questions
// over every sealed trace the server knows — registered directories and
// sealed live-ingested traces alike. The query body is the fleet DSL
// (fleet.Query); the response is the byte-stable report.QueryDoc the
// offline rlscope-query CLI prints for the same traces and query, so the
// two can be compared with cmp.
//
// Per-trace results come from the tiered report store: the full-fidelity
// result set of each trace is cached under its content digest alone
// (resultSetKey — results are byte-identical at any worker count, so no
// options belong in the key), which makes an N-trace query over a warm
// store N store lookups plus an exact in-memory merge, zero Engine runs.
// Misses fall back to a singleflight-deduplicated Engine run whose encoded
// result set immediately lands back in the store — on disk when the server
// has a -store-reports directory, so the warmth survives restarts and is
// shared by every server pointed at the same directory.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	rlscope "repro"
	"repro/internal/analysis"
	"repro/internal/fleet"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
)

// ResultSetKey addresses a trace's full-fidelity result set in the report
// store by content digest alone — no analysis options belong in the key
// because results are byte-identical at any worker count. The "rs|" prefix
// keeps result-set blobs disjoint from analysis documents, whose keys
// start with the bare digest. Exported so rlscope-query reading a shared
// -store-reports directory addresses the same entries the server writes.
func ResultSetKey(digest string) string { return "rs|" + digest }

func resultSetKey(digest string) string { return ResultSetKey(digest) }

// queryCandidate pairs a fleet candidate with what the loader needs to
// produce its results: the content digest (store address) and the trace
// directory (Engine fallback).
type queryCandidate struct {
	t      fleet.Trace
	digest string
	dir    string
}

// handleQuery is POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q fleet.Query
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad query body: "+err.Error())
		return
	}
	plan, err := fleet.Compile(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error())
		return
	}

	candidates := s.queryCandidates()
	byID := make(map[string]queryCandidate, len(candidates))
	traces := make([]fleet.Trace, 0, len(candidates))
	for _, c := range candidates {
		byID[c.t.ID] = c
		traces = append(traces, c.t)
	}

	// engineRuns counts the Engine work this query itself paid for —
	// runs another in-flight query computed (singleflight shared) or the
	// store absorbed don't count, which is exactly what a warm-store
	// assertion wants to read.
	var engineRuns atomic.Int64
	doc, err := plan.Execute(r.Context(), traces, func(ctx context.Context, t fleet.Trace) (map[trace.ProcID]*overlap.Result, error) {
		return s.loadResults(ctx, byID[t.ID], &engineRuns)
	})
	if err != nil {
		var qerr *fleet.QueryError
		switch {
		case errors.As(err, &qerr):
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error())
		case r.Context().Err() != nil:
			// The client is gone; nothing useful can be written.
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusServiceUnavailable, ErrCodeAnalysisAborted, "query aborted: "+err.Error())
		default:
			writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "query failed: "+err.Error())
		}
		return
	}
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "encoding query document: "+err.Error())
		return
	}
	w.Header().Set("X-RLScope-Engine-Runs", strconv.FormatInt(engineRuns.Load(), 10))
	writeBody(w, buf.Bytes())
}

// queryCandidates snapshots every sealed trace as a fleet candidate:
// registered directories plus sealed live traces. Open live traces are
// excluded — their content (and digest) is still moving, so they have no
// stable result set to aggregate; seal them to make them queryable.
func (s *Server) queryCandidates() []queryCandidate {
	s.mu.RLock()
	entries := make([]*traceEntry, 0, len(s.ids))
	for _, id := range s.ids {
		entries = append(entries, s.traces[id])
	}
	lives := make([]*liveTrace, 0, len(s.liveIDs))
	for _, id := range s.liveIDs {
		lives = append(lives, s.lives[id])
	}
	s.mu.RUnlock()
	out := make([]queryCandidate, 0, len(entries)+len(lives))
	for _, e := range entries {
		out = append(out, queryCandidate{
			t:      fleet.Trace{ID: e.id, Meta: e.meta},
			digest: e.info.Digest,
			dir:    e.dir,
		})
	}
	for _, lt := range lives {
		lt.pmu.Lock()
		sealed := lt.sink.Sealed()
		digest := lt.sink.Digest()
		lt.pmu.Unlock()
		if !sealed {
			continue
		}
		lt.amu.Lock()
		meta := lt.meta
		lt.amu.Unlock()
		out = append(out, queryCandidate{
			t:      fleet.Trace{ID: lt.id, Meta: meta},
			digest: digest,
			dir:    lt.sink.Dir(),
		})
	}
	return out
}

// loadResults is the server's fleet.ResultLoader: tiered store lookup by
// content digest, singleflight-deduplicated Engine run on a miss, encoded
// result set written back through both tiers.
func (s *Server) loadResults(ctx context.Context, c queryCandidate, engineRuns *atomic.Int64) (map[trace.ProcID]*overlap.Result, error) {
	if c.digest == "" {
		return nil, fmt.Errorf("serve: no candidate for trace")
	}
	key := resultSetKey(c.digest)
	if body, ok := s.store.get(key); ok {
		if results, err := report.DecodeResultSet(body); err == nil {
			return results, nil
		}
		// A stale or corrupt blob (version bump, torn disk entry the
		// frame check missed) is a miss: recompute and overwrite.
	}
	body, _, err := s.flights.do(ctx, key, func(runCtx context.Context) ([]byte, error) {
		if body, ok := s.store.get(key); ok {
			return body, nil
		}
		workers := analysis.ClampWorkers(0, s.cfg.MaxWorkers)
		if err := s.budget.acquire(runCtx, workers); err != nil {
			return nil, err
		}
		defer s.budget.release(workers)
		s.engineRuns.Add(1)
		engineRuns.Add(1)
		rep, err := rlscope.NewEngine(rlscope.WithWorkers(workers)).Analyze(runCtx, rlscope.FromDir(c.dir))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := report.EncodeResultSet(&buf, rep.Results); err != nil {
			return nil, err
		}
		body := buf.Bytes()
		s.store.add(key, body)
		return body, nil
	})
	if err != nil {
		return nil, err
	}
	return report.DecodeResultSet(body)
}
