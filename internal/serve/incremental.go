// Live trace ingest: the write path of rlscope-serve. Profilers stream
// sequence-numbered chunk frames into a server-owned trace store
// (POST /v1/traces/{id}/chunks, finalized by POST /v1/traces/{id}/seal),
// and analysis of a live trace is incremental — one resident
// analysis.Incremental per open trace, advanced in epochs, so a report
// after a new chunk costs O(chunk), not O(trace).
//
// Concurrency follows ddtxn's coordinator/worker epoch design: appends are
// the workers, enqueueing decoded chunks under a light pending lock and
// returning immediately; the next analyze call is the coordinator, draining
// everything pending as ONE epoch under the per-trace analysis lock and
// re-sweeping only the (proc, window) shards the epoch's events touched.
// Appends arriving during an analysis are never lost and never block it —
// they land in the next epoch.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	rlscope "repro"
	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/trace"
)

// maxChunkBytes bounds one ingest request body; the profiler flushes ~1 MiB
// chunks (trace.DefaultChunkBytes), so 64 MiB is generous headroom.
const maxChunkBytes = 64 << 20

// Trace lifecycle states reported in TraceInfo.State.
const (
	// StateOpen marks a live trace still accepting chunks.
	StateOpen = "open"
	// StateSealed marks a finalized trace: registered directories are
	// sealed by construction, live traces become sealed at /seal.
	StateSealed = "sealed"
)

// liveTrace is one live-ingested trace: the durable side (a DirSink landing
// frames in the store) plus the resident analysis state.
type liveTrace struct {
	id   string
	sink *trace.DirSink

	// pmu guards the ingest side: sink ordering, the pending epoch queue,
	// and the sidecar-index fold the summary endpoint reads.
	pmu     sync.Mutex
	pending [][]trace.Event
	indexes []*trace.ChunkIndex

	// amu guards the analysis side: the incremental state, the sealed run
	// metadata, and the encoded-document cache. Epoch application and
	// result reads are serialized per trace; appends are not (they only
	// touch the pending queue).
	amu        sync.Mutex
	inc        *analysis.Incremental
	meta       trace.Meta
	hasMeta    bool
	lastDigest string
	lastProcs  string
	lastBody   []byte
	// finalStats preserves the incremental counters after sealing evicts
	// the resident state (inc == nil): the trace is immutable from then
	// on, so the counters are final.
	finalStats analysis.IncrementalStats
}

// AppendResponse is the POST /v1/traces/{id}/chunks response body.
type AppendResponse struct {
	ID string `json:"id"`
	// Seq echoes the applied sequence number; Chunks is the trace's chunk
	// count after the append.
	Seq    int `json:"seq"`
	Chunks int `json:"chunks"`
	// Digest is the content digest of the trace so far — the same value
	// DirDigest will report for the directory once sealed.
	Digest string `json:"digest"`
	// Duplicate reports an idempotent retry: the sequence number had
	// already been applied with identical content and nothing was written.
	Duplicate bool `json:"duplicate,omitempty"`
}

// SealResponse is the POST /v1/traces/{id}/seal response body.
type SealResponse struct {
	ID     string `json:"id"`
	Chunks int    `json:"chunks"`
	Digest string `json:"digest"`
}

// liveLookup returns the live trace registered under id, if any.
func (s *Server) liveLookup(id string) *liveTrace {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lives[id]
}

// openLive returns the live trace for id, creating it on first use
// (create-on-first-write: the first chunk append — or an explicit
// POST /v1/traces — brings the trace into existence). A trace id already
// registered as a read-only directory cannot be appended to, and creation
// requires the server to have a trace store configured.
func (s *Server) openLive(id string) (lt *liveTrace, created bool, apiErr *apiError) {
	if !validTraceID(id) {
		return nil, false, &apiError{http.StatusBadRequest, ErrCodeInvalidTraceID,
			fmt.Sprintf("invalid trace id %q: want [A-Za-z0-9][A-Za-z0-9._-]*, no %q", id, "..")}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if lt := s.lives[id]; lt != nil {
		return lt, false, nil
	}
	if _, ok := s.traces[id]; ok {
		return nil, false, &apiError{http.StatusConflict, ErrCodeTraceExists,
			fmt.Sprintf("trace %q is registered read-only; live chunks cannot be appended to it", id)}
	}
	if s.cfg.StoreDir == "" {
		return nil, false, &apiError{http.StatusForbidden, ErrCodeIngestDisabled,
			"live ingest is disabled: rlscope-serve was started without -store"}
	}
	sink, err := trace.NewDirSink(filepath.Join(s.cfg.StoreDir, id))
	if err != nil {
		return nil, false, &apiError{http.StatusConflict, ErrCodeTraceExists,
			fmt.Sprintf("creating trace store dir: %v", err)}
	}
	lt = &liveTrace{id: id, sink: sink, inc: analysis.NewIncremental()}
	s.lives[id] = lt
	s.liveIDs = append(s.liveIDs, id)
	return lt, true, nil
}

// CreateTraceRequest is the POST /v1/traces body.
type CreateTraceRequest struct {
	ID string `json:"id"`
}

// handleCreateTrace is POST /v1/traces: explicitly open a live trace.
// Creation is also implicit on the first chunk append; this endpoint
// exists so a client can reserve the id (and learn about collisions with
// registered traces) before streaming. Opening an already-open trace is a
// 200 no-op; a fresh open is a 201.
func (s *Server) handleCreateTrace(w http.ResponseWriter, r *http.Request) {
	var req CreateTraceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad create request: "+err.Error())
		return
	}
	lt, created, apiErr := s.openLive(req.ID)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, lt.liveInfo())
}

// validTraceID accepts ids safe to use as store directory names: one path
// segment, no traversal, no whitespace.
func validTraceID(id string) bool {
	if id == "" || strings.Contains(id, "..") {
		return false
	}
	for i, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case i > 0 && (r == '.' || r == '_' || r == '-'):
		default:
			return false
		}
	}
	return true
}

// handleAppendChunk is POST /v1/traces/{id}/chunks?seq=N: one encoded chunk
// frame per request, either as the raw request body or as the "chunk" part
// of a multipart/form-data body with an optional "index" part carrying the
// client's .rlsidx sidecar. The server decodes the chunk and derives the
// sidecar itself — the derived bytes are authoritative, and a provided
// index that disagrees with them is rejected, so a lying client cannot skew
// the stored trace or the incremental analysis.
func (s *Server) handleAppendChunk(w http.ResponseWriter, r *http.Request) {
	seqStr := r.URL.Query().Get("seq")
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq < 0 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Sprintf("chunk append needs a non-negative ?seq parameter, got %q", seqStr))
		return
	}
	chunk, clientIndex, apiErr := readChunkBody(r)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	// DecodeChunkBytes sniffs the frame's version, so live ingest accepts
	// v1 and v2 chunks alike — the store lands whatever frame the client
	// sent, byte-for-byte, while the analysis sees decoded events.
	events, err := trace.DecodeChunkBytes(chunk, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadChunk, "undecodable chunk frame: "+err.Error())
		return
	}
	index := trace.BuildChunkIndex(events, int64(len(chunk)))
	sidecar, err := json.Marshal(index)
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "encoding sidecar: "+err.Error())
		return
	}
	if clientIndex != nil {
		if apiErr := checkClientIndex(clientIndex, sidecar, seq); apiErr != nil {
			writeAPIError(w, apiErr)
			return
		}
	}

	lt, _, apiErr := s.openLive(r.PathValue("id"))
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}

	// Apply under the ingest lock so the sink's sequence order and the
	// pending queue's order are the same order: the epoch the coordinator
	// later drains replays chunks exactly as they landed on disk.
	lt.pmu.Lock()
	dup, err := lt.sink.Append(seq, chunk, sidecar)
	if err == nil && !dup {
		lt.pending = append(lt.pending, events)
		lt.indexes = append(lt.indexes, index)
	}
	chunks := lt.sink.Chunks()
	digest := lt.sink.Digest()
	lt.pmu.Unlock()
	if err != nil {
		writeAPIError(w, ingestError(err))
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		ID: lt.id, Seq: seq, Chunks: chunks, Digest: digest, Duplicate: dup,
	})
}

// readChunkBody extracts the chunk frame (and the optional client sidecar)
// from an append request: raw body by default, multipart/form-data with
// "chunk" and optional "index" parts when the client ships both.
func readChunkBody(r *http.Request) (chunk, index []byte, apiErr *apiError) {
	mediaType, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType != "multipart/form-data" {
		body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxChunkBytes))
		if err != nil {
			return nil, nil, &apiError{http.StatusBadRequest, ErrCodeBadRequest, "reading chunk body: " + err.Error()}
		}
		return body, nil, nil
	}
	mr := multipart.NewReader(http.MaxBytesReader(nil, r.Body, maxChunkBytes), params["boundary"])
	for {
		part, err := mr.NextPart()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, &apiError{http.StatusBadRequest, ErrCodeBadRequest, "reading multipart body: " + err.Error()}
		}
		data, err := io.ReadAll(part)
		if err != nil {
			return nil, nil, &apiError{http.StatusBadRequest, ErrCodeBadRequest, "reading multipart part: " + err.Error()}
		}
		switch part.FormName() {
		case "chunk":
			chunk = data
		case "index":
			index = data
		}
	}
	if chunk == nil {
		return nil, nil, &apiError{http.StatusBadRequest, ErrCodeBadRequest, `multipart append body has no "chunk" part`}
	}
	return chunk, index, nil
}

// checkClientIndex verifies a client-shipped sidecar against the one the
// server derived from the decoded chunk. The comparison is semantic — the
// client bytes are normalized through ChunkIndex before comparing — so any
// JSON spelling of the correct index passes, but an index describing
// different events does not.
func checkClientIndex(clientIndex, derived []byte, seq int) *apiError {
	var ix trace.ChunkIndex
	if err := json.Unmarshal(clientIndex, &ix); err != nil {
		return &apiError{http.StatusBadRequest, ErrCodeBadChunk, "undecodable sidecar index: " + err.Error()}
	}
	normalized, err := json.Marshal(&ix)
	if err != nil || !bytes.Equal(normalized, derived) {
		return &apiError{http.StatusBadRequest, ErrCodeBadChunk,
			fmt.Sprintf("sidecar index for chunk seq %d does not describe the chunk's events", seq)}
	}
	return nil
}

// ingestError maps sink errors onto the API error vocabulary.
func ingestError(err error) *apiError {
	var seqErr *trace.SeqError
	var conflict *trace.ConflictError
	switch {
	case errors.As(err, &seqErr):
		return &apiError{http.StatusConflict, ErrCodeOutOfOrderSeq,
			fmt.Sprintf("chunk seq %d out of order: next expected %d", seqErr.Seq, seqErr.Next)}
	case errors.As(err, &conflict):
		return &apiError{http.StatusConflict, ErrCodeChunkConflict,
			fmt.Sprintf("chunk seq %d was already applied with different content", conflict.Seq)}
	case errors.Is(err, trace.ErrSinkSealed):
		return &apiError{http.StatusConflict, ErrCodeTraceSealed, "trace is sealed; no further appends accepted"}
	default:
		return &apiError{http.StatusInternalServerError, ErrCodeAnalysisFailed, err.Error()}
	}
}

// handleSeal is POST /v1/traces/{id}/seal: the body is the run's trace.Meta
// (an empty body seals with zero metadata). Sealing writes meta.json, fixes
// the trace's content digest, and upgrades analysis documents from
// provisional (empty workload, default process names) to final.
func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	lt := s.liveLookup(r.PathValue("id"))
	if lt == nil {
		writeError(w, http.StatusNotFound, ErrCodeUnknownTrace, "unknown live trace id")
		return
	}
	var meta trace.Meta
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&meta); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad seal body: "+err.Error())
		return
	}
	// Take the analysis lock across the seal so no analyze encodes a
	// sealed-digest document with pre-seal metadata.
	lt.amu.Lock()
	err := lt.sink.Seal(meta)
	if err == nil {
		lt.meta = meta
		lt.hasMeta = true
		s.evictSealed(lt)
	}
	lt.amu.Unlock()
	if err != nil {
		writeAPIError(w, ingestError(err))
		return
	}
	writeJSON(w, http.StatusOK, SealResponse{ID: lt.id, Chunks: lt.sink.Chunks(), Digest: lt.sink.Digest()})
}

// evictSealed retires a just-sealed trace's resident incremental state.
// A sealed trace is immutable, so its analysis is computed once, here:
// any still-pending chunks are drained as the final epoch, the final
// result-only document is cached under the final digest (repeated
// analyzes keep costing zero Engine runs), the full-fidelity result set
// lands in the report store for fleet queries, and the Incremental —
// which holds every decoded event resident — is dropped. Called with
// lt.amu held, immediately after a successful sink.Seal.
func (s *Server) evictSealed(lt *liveTrace) {
	lt.pmu.Lock()
	batch := lt.pending
	lt.pending = nil
	digest := lt.sink.Digest()
	lt.pmu.Unlock()
	if len(batch) > 0 {
		lt.inc.Apply(batch)
	}
	results := lt.inc.Results(nil)
	lt.lastBody = nil // cached doc predates the seal metadata
	doc := report.NewResultAnalysis(lt.meta, results, false)
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err == nil {
		lt.lastBody = buf.Bytes()
		lt.lastDigest = digest
		lt.lastProcs = ""
	}
	var rsBuf bytes.Buffer
	if err := report.EncodeResultSet(&rsBuf, results); err == nil {
		s.store.add(resultSetKey(digest), rsBuf.Bytes())
	}
	lt.finalStats = lt.inc.Stats()
	lt.inc = nil
}

// analyzeLive answers POST /v1/traces/{id}/analyze for a live-ingested
// trace. It drains every pending chunk as one analysis epoch, re-sweeps
// only the shards the epoch dirtied, and serves the result-only document
// (no run-descriptive stats block — an incremental state has no single
// "run" to describe). The encoded document is cached per (digest, procs);
// a quiescent trace answers repeated analyzes from the cached bytes.
//
// Correction is not supported on the live path: a correction stage rewrites
// events before routing, which would require the calibration at ingest
// time. Clients needing a corrected report seal the trace and register the
// directory.
func (s *Server) analyzeLive(w http.ResponseWriter, r *http.Request, lt *liveTrace, req AnalyzeRequest) {
	if req.Correction {
		writeError(w, http.StatusBadRequest, ErrCodeCorrectionUnsupported,
			"correction is not supported on live-ingested traces; seal the trace and register the directory instead")
		return
	}
	c := s.canonicalize(req)

	lt.amu.Lock()
	defer lt.amu.Unlock()

	// Coordinator step: everything appended since the last epoch becomes
	// this epoch, applied in landing order.
	lt.pmu.Lock()
	batch := lt.pending
	lt.pending = nil
	digest := lt.sink.Digest()
	lt.pmu.Unlock()
	if len(batch) > 0 && lt.inc != nil {
		lt.inc.Apply(batch)
	}

	procsKey := procsKey(c.procs)
	state := StateOpen
	if lt.sink.Sealed() {
		state = StateSealed
	}
	w.Header().Set("X-RLScope-Digest", digest)
	w.Header().Set("X-RLScope-State", state)
	if lt.lastBody != nil && lt.lastDigest == digest && lt.lastProcs == procsKey {
		w.Header().Set("X-RLScope-Cache", "hit")
		writeBody(w, lt.lastBody)
		return
	}

	if lt.inc == nil {
		// Sealing evicted the resident state and cached the unfiltered
		// final document above; reaching here means a different process
		// filter. The sealed directory is complete on disk, so answer
		// with a one-shot Engine run over it — the cold path a filtered
		// query of any registered trace pays.
		s.analyzeEvicted(w, r, lt, c, digest, procsKey)
		return
	}

	var filter map[trace.ProcID]bool
	if len(c.procs) > 0 {
		filter = make(map[trace.ProcID]bool, len(c.procs))
		for _, p := range c.procs {
			filter[p] = true
		}
	}
	results := lt.inc.Results(filter)
	doc := report.NewResultAnalysis(lt.meta, results, false)
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "encoding report: "+err.Error())
		return
	}
	lt.lastBody = buf.Bytes()
	lt.lastDigest = digest
	lt.lastProcs = procsKey
	w.Header().Set("X-RLScope-Cache", "miss")
	writeBody(w, lt.lastBody)
}

// analyzeEvicted answers a filtered analyze of a sealed, evicted live
// trace with one Engine run over its directory, producing the same
// result-only document shape the incremental path serves. Called with
// lt.amu held, which serializes runs per trace exactly like the
// incremental path it replaces.
func (s *Server) analyzeEvicted(w http.ResponseWriter, r *http.Request, lt *liveTrace, c canonical, digest, procsKey string) {
	if err := s.budget.acquire(r.Context(), c.workers); err != nil {
		writeError(w, http.StatusServiceUnavailable, ErrCodeAnalysisAborted, "analysis aborted: "+err.Error())
		return
	}
	defer s.budget.release(c.workers)
	s.engineRuns.Add(1)
	rep, err := rlscope.NewEngine(
		rlscope.WithWorkers(c.workers),
		rlscope.WithMaxResidentBytes(c.maxResident),
		rlscope.WithProcesses(c.procs...),
	).Analyze(r.Context(), rlscope.FromDir(lt.sink.Dir()))
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "analysis failed: "+err.Error())
		return
	}
	doc := report.NewResultAnalysis(rep.Meta, rep.Results, false)
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "encoding report: "+err.Error())
		return
	}
	lt.lastBody = buf.Bytes()
	lt.lastDigest = digest
	lt.lastProcs = procsKey
	w.Header().Set("X-RLScope-Cache", "miss")
	writeBody(w, lt.lastBody)
}

// procsKey is the canonical cache-key spelling of a process filter.
func procsKey(procs []trace.ProcID) string {
	var sb strings.Builder
	for i, p := range procs {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(strconv.Itoa(int(p)))
	}
	return sb.String()
}

// liveInfo snapshots a live trace's identity row.
func (lt *liveTrace) liveInfo() TraceInfo {
	lt.pmu.Lock()
	indexes := lt.indexes
	chunks := lt.sink.Chunks()
	digest := lt.sink.Digest()
	sealed := lt.sink.Sealed()
	lt.pmu.Unlock()
	procs := map[trace.ProcID]bool{}
	events := 0
	for _, ix := range indexes {
		events += ix.Events
		for p := range ix.Procs {
			procs[p] = true
		}
	}
	info := TraceInfo{
		ID: lt.id, Digest: digest, Chunks: chunks, Events: events,
		Procs: len(procs), State: StateOpen,
	}
	if sealed {
		info.State = StateSealed
	}
	lt.amu.Lock()
	info.Workload = lt.meta.Workload
	info.Host = lt.meta.Host
	info.Labels = lt.meta.Labels
	lt.amu.Unlock()
	return info
}

// handleLiveSummary answers GET /v1/traces/{id}/summary for a live trace
// from the sidecar indexes folded at append time — the same derivation
// registered directories get at AddDir, over the chunks landed so far.
func (s *Server) handleLiveSummary(w http.ResponseWriter, lt *liveTrace) {
	lt.pmu.Lock()
	indexes := make([]*trace.ChunkIndex, len(lt.indexes))
	copy(indexes, lt.indexes)
	lt.pmu.Unlock()
	lt.amu.Lock()
	meta := lt.meta
	lt.amu.Unlock()
	sum := buildSummary(indexes, meta)
	sum.TraceInfo = lt.liveInfo()
	writeJSON(w, http.StatusOK, sum)
}

// IncrementalStats reports the incremental-analysis counters of a live
// trace — the instrumented ground truth that appending one chunk re-sweeps
// only affected shards. ok is false if id is not a live trace.
func (s *Server) IncrementalStats(id string) (stats analysis.IncrementalStats, ok bool) {
	lt := s.liveLookup(id)
	if lt == nil {
		return analysis.IncrementalStats{}, false
	}
	lt.amu.Lock()
	defer lt.amu.Unlock()
	if lt.inc == nil {
		return lt.finalStats, true
	}
	return lt.inc.Stats(), true
}
