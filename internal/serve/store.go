package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// DiskStore is the persistent tier of the report cache: encoded report
// documents (analysis documents and fleet result sets alike) keyed by the
// same content address the LRU uses — trace DirDigest plus canonicalized
// options — and written as files, so a restarted server answers its first
// request from disk with zero Engine runs, and a fleet of servers pointed
// at one shared directory answer from each other's work.
//
// Entries are immutable by construction (the key is a content address and
// document encoding is deterministic), so concurrent writers of the same
// key write the same bytes and last-rename-wins is harmless. Writes are
// crash-safe: the entry is framed with a length header and landed via a
// same-directory rename, so a torn write either never appears under its
// final name or fails the frame check on read and is treated as a miss —
// the caller recomputes and rewrites it.
type DiskStore struct {
	dir string

	hits, misses, writes atomic.Int64
}

// storeMagic frames one store entry: "rlsreport1 <body-len>\n" + body.
// A reader that finds fewer bytes than the header promises is looking at
// a torn write and ignores the entry.
const storeMagic = "rlsreport1 "

// reportFileSuffix names store entries on disk.
const reportFileSuffix = ".rlsreport"

// NewDiskStore opens (creating if needed) a report store directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating report store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store directory.
func (s *DiskStore) Dir() string { return s.dir }

// path maps a cache key to its file: keys embed hex digests and option
// canonicalizations of unbounded length, so the filename is the key's own
// sha256 — still a pure function of content.
func (s *DiskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+reportFileSuffix)
}

// Get returns the stored bytes for key. A missing, torn, or malformed
// entry is a miss.
func (s *DiskStore) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, ok := parseStoreEntry(data)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return body, true
}

// parseStoreEntry validates the length frame and returns the body.
func parseStoreEntry(data []byte) ([]byte, bool) {
	if !bytes.HasPrefix(data, []byte(storeMagic)) {
		return nil, false
	}
	rest := data[len(storeMagic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	n, err := strconv.Atoi(string(rest[:nl]))
	if err != nil || n < 0 || len(rest)-nl-1 != n {
		return nil, false
	}
	return rest[nl+1:], true
}

// Put persists body under key: write to a temp file in the store
// directory, fsync-free rename into place. Persistence is best-effort
// cache population — an error leaves the hot tier authoritative — but is
// still reported so callers can surface disk trouble.
func (s *DiskStore) Put(key string, body []byte) error {
	final := s.path(key)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: report store write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := fmt.Fprintf(tmp, "%s%d\n", storeMagic, len(body))
	if werr == nil {
		_, werr = tmp.Write(body)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		return fmt.Errorf("serve: report store write: %w", errFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("serve: report store write: %w", err)
	}
	s.writes.Add(1)
	return nil
}

func errFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Len counts well-formed entries on disk (a scan; monitoring only).
func (s *DiskStore) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if !ent.IsDir() && filepath.Ext(ent.Name()) == reportFileSuffix {
			n++
		}
	}
	return n, nil
}

// storeStats is the persistent tier's slice of the /healthz document.
type storeStats struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Writes  int64  `json:"writes"`
}

// tieredStore composes the in-memory LRU (hot tier) with an optional
// DiskStore (persistent tier). Gets check the LRU first, then disk —
// promoting disk hits into the LRU; adds populate both. With no disk tier
// it degrades to exactly the old LRU behavior.
type tieredStore struct {
	lru  *reportCache
	disk *DiskStore // nil when no -store-reports directory is configured
}

// get returns the cached bytes for key from the hottest tier holding it.
func (t *tieredStore) get(key string) ([]byte, bool) {
	if body, ok := t.lru.get(key); ok {
		return body, true
	}
	if t.disk == nil {
		return nil, false
	}
	body, ok := t.disk.Get(key)
	if ok {
		t.lru.add(key, body)
	}
	return body, ok
}

// add populates both tiers. Disk errors are swallowed here — the hot tier
// already holds the bytes, and a read-only store directory should degrade
// the service to LRU-only, not fail requests.
func (t *tieredStore) add(key string, body []byte) {
	t.lru.add(key, body)
	if t.disk != nil {
		_ = t.disk.Put(key, body)
	}
}

// stats snapshots the persistent tier for /healthz.
func (t *tieredStore) stats() storeStats {
	if t.disk == nil {
		return storeStats{}
	}
	return storeStats{
		Enabled: true,
		Dir:     t.disk.dir,
		Hits:    t.disk.hits.Load(),
		Misses:  t.disk.misses.Load(),
		Writes:  t.disk.writes.Load(),
	}
}
