package serve

import (
	"context"
	"sync"
)

// workerBudget is the service's admission controller: a counting semaphore
// over Engine workers, shared by every in-flight analysis. Each run
// acquires its full worker allotment atomically — all-or-nothing, so two
// half-satisfied requests can never deadlock holding partial allotments —
// and requests beyond the budget queue until running analyses release
// theirs. Wakeups are broadcast, not FIFO, which is fine here: analyses
// are long relative to the scheduling race, and admission order is not a
// service guarantee.
type workerBudget struct {
	mu    sync.Mutex
	total int
	avail int
	wake  chan struct{} // closed and replaced on every release
}

func newWorkerBudget(total int) *workerBudget {
	if total < 1 {
		total = 1
	}
	return &workerBudget{total: total, avail: total, wake: make(chan struct{})}
}

// acquire blocks until n workers are available (n is clamped to the total,
// so no request can ask for more than the budget can ever grant) or ctx is
// cancelled.
func (b *workerBudget) acquire(ctx context.Context, n int) error {
	if n < 1 {
		n = 1
	}
	if n > b.total {
		n = b.total
	}
	for {
		if err := ctx.Err(); err != nil {
			return err // don't grant workers to an already-dead request
		}
		b.mu.Lock()
		if b.avail >= n {
			b.avail -= n
			b.mu.Unlock()
			return nil
		}
		wake := b.wake
		b.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
	}
}

// release returns n workers to the budget and wakes every waiter to
// re-check availability.
func (b *workerBudget) release(n int) {
	if n < 1 {
		n = 1
	}
	if n > b.total {
		n = b.total
	}
	b.mu.Lock()
	b.avail += n
	close(b.wake)
	b.wake = make(chan struct{})
	b.mu.Unlock()
}

// available returns the current free worker count. /healthz reports it.
func (b *workerBudget) available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.avail
}
