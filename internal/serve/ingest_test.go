package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	rlscope "repro"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// quickstartFrames encodes the quickstart trace as n chunk frames plus its
// metadata — what a streaming profiler would ship.
func quickstartFrames(tb testing.TB, steps, n int) (chunks [][]byte, meta trace.Meta) {
	tb.Helper()
	tr := quickstartTrace(tb, steps)
	per := (len(tr.Events) + n - 1) / n
	for lo := 0; lo < len(tr.Events); lo += per {
		hi := lo + per
		if hi > len(tr.Events) {
			hi = len(tr.Events)
		}
		chunk, _, err := trace.EncodeEvents(tr.Events[lo:hi])
		if err != nil {
			tb.Fatal(err)
		}
		chunks = append(chunks, chunk)
	}
	return chunks, tr.Meta
}

func errCode(tb testing.TB, rec interface{ Result() *http.Response }) string {
	tb.Helper()
	var env ErrorEnvelope
	resp := rec.Result()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		tb.Fatalf("decoding error envelope: %v", err)
	}
	return env.Error.Code
}

// liveServer returns a server with ingest enabled and its store directory.
func liveServer(tb testing.TB, cfg Config) (*Server, string) {
	tb.Helper()
	store := tb.TempDir()
	cfg.StoreDir = store
	s := NewServer(cfg)
	tb.Cleanup(s.Close)
	return s, store
}

// TestIngestLifecycle drives the full live path: create, N concurrent
// appends (racing goroutines retrying on out-of-order rejections until
// their sequence number comes up), seal, analyze — and pins the tentpole
// equivalence: the live document is byte-identical to a fresh offline
// Engine run over the sealed store directory, and the stored directory is
// byte-identical (by content digest) to what a local writer produces.
func TestIngestLifecycle(t *testing.T) {
	s, store := liveServer(t, Config{})
	h := s.Handler()
	chunks, meta := quickstartFrames(t, 20, 6)

	rec := doReq(t, h, "POST", "/v1/traces", `{"id":"run42"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	// Creating again is a 200 no-op.
	if rec := doReq(t, h, "POST", "/v1/traces", `{"id":"run42"}`); rec.Code != http.StatusOK {
		t.Fatalf("re-create: %d %s", rec.Code, rec.Body)
	}

	// Concurrent appends: each goroutine owns one sequence number and
	// retries on 409 until the sink is ready for it — at-least-once
	// delivery with reordering, the protocol's worst case.
	var wg sync.WaitGroup
	for seq := range chunks {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			deadline := time.Now().Add(30 * time.Second)
			for {
				rec := doReq(t, h, "POST", fmt.Sprintf("/v1/traces/run42/chunks?seq=%d", seq), string(chunks[seq]))
				if rec.Code == http.StatusOK {
					return
				}
				if code := errCode(t, rec); code != ErrCodeOutOfOrderSeq {
					t.Errorf("seq %d: unexpected rejection %d %s", seq, rec.Code, code)
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("seq %d: never accepted", seq)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(seq)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	metaBody, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	rec = doReq(t, h, "POST", "/v1/traces/run42/seal", string(metaBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("seal: %d %s", rec.Code, rec.Body)
	}
	var sealed SealResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sealed); err != nil {
		t.Fatal(err)
	}
	if sealed.Chunks != len(chunks) {
		t.Fatalf("sealed with %d chunks, want %d", sealed.Chunks, len(chunks))
	}

	// The stored directory is a real trace directory with the digest the
	// seal reported.
	dir := filepath.Join(store, "run42")
	onDisk, err := trace.DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk != sealed.Digest {
		t.Fatalf("seal digest %s, directory digest %s", sealed.Digest, onDisk)
	}

	// Live analysis is byte-identical to a fresh offline Engine run over
	// the sealed directory, rendered as the same result-only document
	// `rlscope-analyze -json -result-only` prints.
	rec = doReq(t, h, "POST", "/v1/traces/run42/analyze", `{"workers":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("live analyze: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-RLScope-State"); got != StateSealed {
		t.Fatalf("analyze state header %q, want %q", got, StateSealed)
	}
	rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(context.Background(), rlscope.FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	var offline bytes.Buffer
	if err := report.NewResultAnalysis(rep.Meta, rep.Results, rep.Corrected).Encode(&offline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), offline.Bytes()) {
		t.Fatalf("live document diverges from offline engine run:\nlive:\n%s\noffline:\n%s", rec.Body, offline.String())
	}
	// The live path never runs the batch engine.
	if runs := s.EngineRuns(); runs != 0 {
		t.Fatalf("live analysis started %d engine runs, want 0", runs)
	}

	// A repeat answers from the per-trace document cache.
	rec2 := doReq(t, h, "POST", "/v1/traces/run42/analyze", `{"workers":1}`)
	if got := rec2.Header().Get("X-RLScope-Cache"); got != "hit" {
		t.Fatalf("quiescent re-analyze: cache %q, want hit", got)
	}
	if !bytes.Equal(rec2.Body.Bytes(), rec.Body.Bytes()) {
		t.Fatal("cached live document differs")
	}
}

// TestIngestIncrementalLocality pins the acceptance criterion on the serve
// layer: after an initial analyze, appending one chunk and re-analyzing
// re-sweeps only the shards that chunk touches (watched via the incremental
// counters), runs zero batch engines, and each append batches into exactly
// one epoch per analyze regardless of how many chunks landed in between.
func TestIngestIncrementalLocality(t *testing.T) {
	s, _ := liveServer(t, Config{})
	h := s.Handler()

	// A multi-shard trace: proc 0's three phases cut its timeline into
	// three populated windows, proc 1 is phaseless (one window). The final
	// chunk lands wholly inside one of proc 0's windows.
	cpu := func(p trace.ProcID, lo, hi int64) trace.Event {
		return trace.Event{Proc: p, Kind: trace.KindCPU, Cat: trace.CatPython,
			Start: vclock.Time(lo), End: vclock.Time(hi)}
	}
	phase := func(name string, lo, hi int64) trace.Event {
		return trace.Event{Proc: 0, Kind: trace.KindPhase, Name: name,
			Start: vclock.Time(lo), End: vclock.Time(hi)}
	}
	groups := [][]trace.Event{
		{phase("warmup", 0, 1000), phase("training", 1000, 2000), phase("evaluation", 2000, 3000),
			cpu(0, 100, 300), cpu(1, 50, 2500)},
		{cpu(0, 1100, 1300), cpu(0, 2100, 2300), cpu(1, 2600, 2700)},
		{cpu(0, 1500, 1600)}, // the locality probe: one window of proc 0
	}
	var chunks [][]byte
	for _, g := range groups {
		chunk, _, err := trace.EncodeEvents(g)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, chunk)
	}

	post := func(seq int) {
		t.Helper()
		rec := doReq(t, h, "POST", fmt.Sprintf("/v1/traces/loc/chunks?seq=%d", seq), string(chunks[seq]))
		if rec.Code != http.StatusOK {
			t.Fatalf("append %d: %d %s", seq, rec.Code, rec.Body)
		}
	}
	analyze := func() {
		t.Helper()
		rec := doReq(t, h, "POST", "/v1/traces/loc/analyze", `{}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("analyze: %d %s", rec.Code, rec.Body)
		}
	}

	for seq := 0; seq < len(chunks)-1; seq++ {
		post(seq)
	}
	analyze()
	s0, ok := s.IncrementalStats("loc")
	if !ok {
		t.Fatal("no incremental stats for live trace")
	}
	if s0.Epochs != 1 || s0.Chunks != len(chunks)-1 {
		t.Fatalf("first analyze: %+v, want 1 epoch over %d chunks", s0, len(chunks)-1)
	}

	// One more chunk: the re-analysis sweeps only the shards it touches,
	// strictly fewer than the full shard count of the first pass.
	post(len(chunks) - 1)
	analyze()
	s1, _ := s.IncrementalStats("loc")
	if s1.Epochs != 2 {
		t.Fatalf("second analyze: %d epochs, want 2", s1.Epochs)
	}
	if s0.Shards < 4 {
		t.Fatalf("first pass swept %d shards, want at least 4 (3 phase windows + 1 phaseless proc)", s0.Shards)
	}
	if delta := s1.Shards - s0.Shards; delta != 1 {
		t.Fatalf("one-chunk append re-swept %d shards (first pass swept %d), want exactly 1", delta, s0.Shards)
	}
	if runs := s.EngineRuns(); runs != 0 {
		t.Fatalf("live path started %d batch engine runs", runs)
	}
}

// TestIngestProtocolErrors covers every rejection path of the write surface
// with its stable error code.
func TestIngestProtocolErrors(t *testing.T) {
	s, _ := liveServer(t, Config{})
	h := s.Handler()
	chunks, _ := quickstartFrames(t, 5, 2)

	// Registered read-only ids cannot be appended to.
	if _, err := s.AddDir("qs", quickstartDir(t, 5)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"invalid id", "POST", "/v1/traces/.dot/chunks?seq=0", string(chunks[0]), http.StatusBadRequest, ErrCodeInvalidTraceID},
		{"traversal id", "POST", "/v1/traces/a..b/chunks?seq=0", string(chunks[0]), http.StatusBadRequest, ErrCodeInvalidTraceID},
		{"missing seq", "POST", "/v1/traces/run/chunks", string(chunks[0]), http.StatusBadRequest, ErrCodeBadRequest},
		{"undecodable chunk", "POST", "/v1/traces/run/chunks?seq=0", "not a chunk frame", http.StatusBadRequest, ErrCodeBadChunk},
		{"read-only collision", "POST", "/v1/traces/qs/chunks?seq=0", string(chunks[0]), http.StatusConflict, ErrCodeTraceExists},
		{"seal unknown", "POST", "/v1/traces/ghost/seal", "", http.StatusNotFound, ErrCodeUnknownTrace},
		{"bad create body", "POST", "/v1/traces", `{"bogus":1}`, http.StatusBadRequest, ErrCodeBadRequest},
	}
	for _, tc := range cases {
		rec := doReq(t, h, tc.method, tc.path, tc.body)
		if rec.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.wantStatus, rec.Body)
			continue
		}
		if code := errCode(t, rec); code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, code, tc.wantCode)
		}
	}

	// Sequence protocol on a real live trace.
	if rec := doReq(t, h, "POST", "/v1/traces/run/chunks?seq=0", string(chunks[0])); rec.Code != http.StatusOK {
		t.Fatalf("append 0: %d %s", rec.Code, rec.Body)
	}
	// Gap.
	rec := doReq(t, h, "POST", "/v1/traces/run/chunks?seq=5", string(chunks[1]))
	if rec.Code != http.StatusConflict || errCode(t, rec) != ErrCodeOutOfOrderSeq {
		t.Fatalf("gap append: %d %s", rec.Code, rec.Body)
	}
	// Identical replay: flagged duplicate, no error.
	rec = doReq(t, h, "POST", "/v1/traces/run/chunks?seq=0", string(chunks[0]))
	var ar AppendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("replay: %d %s", rec.Code, rec.Body)
	}
	if !ar.Duplicate || ar.Chunks != 1 {
		t.Fatalf("replay response %+v, want duplicate of 1 chunk", ar)
	}
	// Diverging replay.
	rec = doReq(t, h, "POST", "/v1/traces/run/chunks?seq=0", string(chunks[1]))
	if rec.Code != http.StatusConflict || errCode(t, rec) != ErrCodeChunkConflict {
		t.Fatalf("conflicting replay: %d %s", rec.Code, rec.Body)
	}
	// Correction is a batch-only feature.
	rec = doReq(t, h, "POST", "/v1/traces/run/analyze", `{"correction":true}`)
	if rec.Code != http.StatusBadRequest || errCode(t, rec) != ErrCodeCorrectionUnsupported {
		t.Fatalf("live correction: %d %s", rec.Code, rec.Body)
	}
	// Post-seal appends are rejected.
	if rec := doReq(t, h, "POST", "/v1/traces/run/seal", ""); rec.Code != http.StatusOK {
		t.Fatalf("seal: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(t, h, "POST", "/v1/traces/run/chunks?seq=1", string(chunks[1]))
	if rec.Code != http.StatusConflict || errCode(t, rec) != ErrCodeTraceSealed {
		t.Fatalf("post-seal append: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(t, h, "POST", "/v1/traces/run/seal", "")
	if rec.Code != http.StatusConflict || errCode(t, rec) != ErrCodeTraceSealed {
		t.Fatalf("double seal: %d %s", rec.Code, rec.Body)
	}
}

// TestIngestDisabledWithoutStore: a server started without a store rejects
// the whole write surface.
func TestIngestDisabledWithoutStore(t *testing.T) {
	s := newTestServer(t, Config{}, quickstartDir(t, 5))
	h := s.Handler()
	chunks, _ := quickstartFrames(t, 5, 2)
	rec := doReq(t, h, "POST", "/v1/traces/run/chunks?seq=0", string(chunks[0]))
	if rec.Code != http.StatusForbidden || errCode(t, rec) != ErrCodeIngestDisabled {
		t.Fatalf("append without store: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(t, h, "POST", "/v1/traces", `{"id":"run"}`)
	if rec.Code != http.StatusForbidden || errCode(t, rec) != ErrCodeIngestDisabled {
		t.Fatalf("create without store: %d %s", rec.Code, rec.Body)
	}
}

// TestLiveListingAndSummary: live traces appear in /v1/traces with their
// lifecycle state, and the summary endpoint works over the chunks landed so
// far.
func TestLiveListingAndSummary(t *testing.T) {
	s, _ := liveServer(t, Config{})
	h := s.Handler()
	chunks, meta := quickstartFrames(t, 10, 3)
	for seq := range chunks {
		if rec := doReq(t, h, "POST", fmt.Sprintf("/v1/traces/live1/chunks?seq=%d", seq), string(chunks[seq])); rec.Code != http.StatusOK {
			t.Fatalf("append %d: %d %s", seq, rec.Code, rec.Body)
		}
	}

	var listing struct {
		Traces []TraceInfo `json:"traces"`
	}
	rec := doReq(t, h, "GET", "/v1/traces", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 {
		t.Fatalf("listing has %d traces, want 1: %s", len(listing.Traces), rec.Body)
	}
	info := listing.Traces[0]
	if info.ID != "live1" || info.State != StateOpen || info.Chunks != len(chunks) {
		t.Fatalf("live listing %+v", info)
	}

	var sum TraceSummary
	rec = doReq(t, h, "GET", "/v1/traces/live1/summary", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("live summary: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	tr := quickstartTrace(t, 10)
	if sum.Events != len(tr.Events) || sum.State != StateOpen {
		t.Fatalf("live summary events=%d state=%q, want %d/%q", sum.Events, sum.State, len(tr.Events), StateOpen)
	}

	// Sealing flips the state everywhere, and the sealed metadata's
	// originating host surfaces in the listing for fleet host filters.
	meta.Host = "gpu-node-3"
	metaBody, _ := json.Marshal(meta)
	if rec := doReq(t, h, "POST", "/v1/traces/live1/seal", string(metaBody)); rec.Code != http.StatusOK {
		t.Fatalf("seal: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(t, h, "GET", "/v1/traces", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if got := listing.Traces[0]; got.State != StateSealed || got.Workload != "quickstart" || got.Host != "gpu-node-3" {
		t.Fatalf("sealed listing %+v", got)
	}
}
