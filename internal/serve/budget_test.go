package serve

import (
	"context"
	"testing"
	"time"
)

func TestWorkerBudgetBlocksUntilRelease(t *testing.T) {
	b := newWorkerBudget(2)
	if err := b.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- b.acquire(context.Background(), 2) }()
	select {
	case err := <-got:
		t.Fatalf("second acquire succeeded while budget was exhausted: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	b.release(2)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("acquire did not wake after release")
	}
	if b.available() != 0 {
		t.Fatalf("available = %d, want 0", b.available())
	}
}

func TestWorkerBudgetClampsOversizedRequests(t *testing.T) {
	b := newWorkerBudget(2)
	// A request beyond the whole budget is clamped, not deadlocked.
	if err := b.acquire(context.Background(), 99); err != nil {
		t.Fatal(err)
	}
	if b.available() != 0 {
		t.Fatalf("available = %d, want 0", b.available())
	}
	b.release(99)
	if b.available() != 2 {
		t.Fatalf("available = %d, want 2 after clamped release", b.available())
	}
}

func TestWorkerBudgetAcquireHonorsContext(t *testing.T) {
	b := newWorkerBudget(1)
	if err := b.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- b.acquire(ctx, 1) }()
	cancel()
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("acquire succeeded despite cancelled context")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("acquire did not observe cancellation")
	}
	// The waiter left without taking anything.
	b.release(1)
	if b.available() != 1 {
		t.Fatalf("available = %d, want 1", b.available())
	}
}
