package serve

import (
	"container/list"
	"sync"
)

// reportCache is the bounded LRU holding encoded analysis documents. The
// budget is bytes of cached document, not entry count, because documents
// vary by orders of magnitude with process and operation counts. Values
// are the exact response bodies — a hit serves stored bytes without
// re-encoding anything. Entries larger than the whole budget are never
// admitted (they would only evict everything else to be evicted in turn).
type reportCache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newReportCache(maxBytes int64) *reportCache {
	return &reportCache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached body for key. The bytes are shared and must be
// treated as immutable by callers.
func (c *reportCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).body, true
	}
	c.misses++
	return nil, false
}

// add inserts body under key, evicting least-recently-used entries until
// the budget holds. Re-adding an existing key refreshes its body.
func (c *reportCache) add(key string, body []byte) {
	n := int64(len(body))
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.size += n - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.size += n
	}
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.body))
		c.evictions++
	}
}

// reset drops every entry but keeps the hit/miss/eviction counters.
// Benchmarks use it to measure the miss path repeatedly.
func (c *reportCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
	c.size = 0
}

// cacheStats is the snapshot /healthz reports.
type cacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *reportCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   len(c.items),
		Bytes:     c.size,
		MaxBytes:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
