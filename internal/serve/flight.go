package serve

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent work by key: while a call for a key
// is in flight, later callers wait for its result instead of starting
// their own. Unlike classic singleflight, the in-flight function does not
// run on any caller's context — it gets a context derived from the group's
// base that is cancelled only when every interested caller has gone away
// (or the group is closed). A client disconnect therefore detaches that
// one waiter; the Engine run it joined keeps going as long as anyone else
// still wants the answer, and is cancelled the moment nobody does.
type flightGroup struct {
	base context.Context

	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{} // closed when val/err are set
	val     []byte
	err     error
	waiters int                // callers still blocked on done
	cancel  context.CancelFunc // cancels the fn's run context
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, calls: map[string]*flightCall{}}
}

// do returns fn's result for key, starting fn only if no call for key is
// already in flight; shared reports whether the caller joined an existing
// flight. When ctx is cancelled the caller detaches with ctx.Err() — and
// if it was the last waiter, the flight's run context is cancelled so the
// underlying work stops.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.await(ctx, key, c, true)
	}
	runCtx, cancel := context.WithCancel(g.base)
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		val, err := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = val, err
		if g.calls[key] == c { // a dying flight may already have been forgotten
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	return g.await(ctx, key, c, false)
}

func (g *flightGroup) await(ctx context.Context, key string, c *flightCall, shared bool) ([]byte, bool, error) {
	select {
	case <-c.done:
		return c.val, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Nobody wants the result anymore: stop the work, and forget
			// the key immediately so a request arriving while the dying
			// run unwinds starts a fresh flight instead of inheriting
			// the cancellation error.
			c.cancel()
			if g.calls[key] == c {
				delete(g.calls, key)
			}
		}
		g.mu.Unlock()
		return nil, shared, ctx.Err()
	}
}

// waiting reports how many callers are blocked on key's in-flight call
// (0 when none is in flight). Test instrumentation.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
