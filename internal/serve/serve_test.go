package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	rlscope "repro"
	"repro/internal/calib"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// quickstartTrace runs the examples/quickstart workload under the profiler
// and returns the trace — one process, three operations, a "training"
// phase.
func quickstartTrace(tb testing.TB, steps int) *trace.Trace {
	tb.Helper()
	p := rlscope.New(rlscope.Options{
		Workload: "quickstart",
		Flags:    rlscope.FullInstrumentation(),
		Seed:     1,
	})
	dev := gpu.NewDevice(-1)
	sess := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())
	sess.SetPhase("training")
	for step := 0; step < steps; step++ {
		sess.WithOperation("inference", func() {
			sess.CallBackend("policy.forward", func() {
				for k := 0; k < 3; k++ {
					ctx.LaunchKernel("dense", 3*vclock.Microsecond)
				}
				ctx.StreamSynchronize()
			})
		})
		sess.WithOperation("simulation", func() {
			sess.CallSimulator("env.step", func() {
				sess.Clock().Advance(120 * vclock.Microsecond)
			})
		})
		if step%4 == 3 {
			sess.WithOperation("backpropagation", func() {
				sess.Python(vclock.Exact(120 * vclock.Microsecond))
				sess.CallBackend("train_step", func() {
					ctx.MemcpyAsync(cuda.HostToDevice, 64*1024)
					for k := 0; k < 9; k++ {
						ctx.LaunchKernel("dense_grad", 5*vclock.Microsecond)
					}
					ctx.StreamSynchronize()
				})
			})
		}
	}
	sess.Close()
	return p.MustTrace()
}

// quickstartDir writes the quickstart trace as a multi-chunk directory.
func quickstartDir(tb testing.TB, steps int) string {
	tb.Helper()
	tr := quickstartTrace(tb, steps)
	dir := tb.TempDir()
	w, err := trace.NewWriter(dir, 4<<10)
	if err != nil {
		tb.Fatal(err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		tb.Fatal(err)
	}
	return dir
}

func newTestServer(tb testing.TB, cfg Config, dir string) *Server {
	tb.Helper()
	s := NewServer(cfg)
	tb.Cleanup(s.Close)
	if _, err := s.AddDir("qs", dir); err != nil {
		tb.Fatal(err)
	}
	return s
}

func doReq(tb testing.TB, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	tb.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{MaxWorkers: 4}, quickstartDir(t, 20))
	rec := doReq(t, s.Handler(), "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Traces != 1 || h.Workers.Total != 4 || h.Workers.Available != 4 {
		t.Fatalf("unexpected health: %+v", h)
	}
	if h.Cache.MaxBytes != DefaultCacheBytes {
		t.Fatalf("cache budget not defaulted: %+v", h.Cache)
	}
}

func TestTracesGolden(t *testing.T) {
	dir := quickstartDir(t, 20)
	s := newTestServer(t, Config{}, dir)
	digest, err := trace.DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := doReq(t, s.Handler(), "GET", "/v1/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("traces: %d %s", rec.Code, rec.Body)
	}
	want := fmt.Sprintf(`{
  "traces": [
    {
      "id": "qs",
      "digest": "%s",
      "workload": "quickstart",
      "chunks": %d,
      "events": %d,
      "procs": 1,
      "state": "sealed"
    }
  ]
}
`, digest, r.NumChunks(), len(tr.Events))
	if got := rec.Body.String(); got != want {
		t.Fatalf("traces listing mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSummary(t *testing.T) {
	dir := quickstartDir(t, 20)
	s := newTestServer(t, Config{}, dir)
	rec := doReq(t, s.Handler(), "GET", "/v1/traces/qs/summary", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("summary: %d %s", rec.Code, rec.Body)
	}
	var sum TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != len(tr.Events) {
		t.Fatalf("summary events %d, want %d", sum.Events, len(tr.Events))
	}
	if len(sum.Processes) != 1 || sum.Processes[0].Name != "trainer" || sum.Processes[0].Parent != -1 {
		t.Fatalf("unexpected processes: %+v", sum.Processes)
	}
	ps := sum.Processes[0]
	start, end := tr.Span()
	if ps.Events != len(tr.Events) || ps.MinStart != int64(start) || ps.MaxEnd != int64(end) {
		t.Fatalf("proc summary %+v does not match trace span [%d, %d] / %d events",
			ps, start, end, len(tr.Events))
	}
	if len(sum.Tree) != 1 || sum.Tree[0].Name != "trainer" || len(sum.Tree[0].Children) != 0 {
		t.Fatalf("unexpected tree: %+v", sum.Tree)
	}
	if len(sum.Phases) != 1 || sum.Phases[0] != "training" {
		t.Fatalf("unexpected phases: %v", sum.Phases)
	}
	if !sum.Config.CUPTI {
		t.Fatalf("config not threaded through: %+v", sum.Config)
	}
	// The summary is served from sidecar indexes captured at registration:
	// a second request returns identical bytes.
	rec2 := doReq(t, s.Handler(), "GET", "/v1/traces/qs/summary", "")
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("summary not stable across requests")
	}
}

func TestAnalyzeCacheHitDoesZeroEngineWork(t *testing.T) {
	s := newTestServer(t, Config{}, quickstartDir(t, 20))
	h := s.Handler()

	rec1 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if rec1.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", rec1.Code, rec1.Body)
	}
	if got := rec1.Header().Get("X-RLScope-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("engine runs after first request: %d, want 1", runs)
	}

	rec2 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("analyze (warm): %d %s", rec2.Code, rec2.Body)
	}
	if got := rec2.Header().Get("X-RLScope-Cache"); got != "hit" {
		t.Fatalf("second request cache header %q, want hit", got)
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("cache hit performed engine work: %d runs", runs)
	}
	if !bytes.Equal(rec1.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("cache hit body differs from the original")
	}

	// Equivalent-but-differently-spelled options canonicalize to the same
	// key: a duplicated, unsorted procs filter is still the same request.
	rec3 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1,"procs":[0,0]}`)
	rec4 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1,"procs":[0]}`)
	if rec3.Header().Get("X-RLScope-Cache") != "miss" || rec4.Header().Get("X-RLScope-Cache") != "hit" {
		t.Fatalf("procs canonicalization broken: %q then %q",
			rec3.Header().Get("X-RLScope-Cache"), rec4.Header().Get("X-RLScope-Cache"))
	}
}

// TestAnalyzeMatchesCLI pins the satellite guarantee: the service's
// POST /analyze body is byte-identical to what `rlscope-analyze -json`
// prints for the same trace and options (both build report.NewAnalysis
// from an Engine run and encode with Analysis.Encode; Workers:1 makes the
// stats block deterministic too).
func TestAnalyzeMatchesCLI(t *testing.T) {
	dir := quickstartDir(t, 20)
	s := newTestServer(t, Config{}, dir)

	rec := doReq(t, s.Handler(), "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", rec.Code, rec.Body)
	}

	eng := rlscope.NewEngine(rlscope.WithWorkers(1))
	rep, err := eng.Analyze(context.Background(), rlscope.FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := report.NewAnalysis(rep.Meta, rep.Results, rep.Stats, rep.Corrected).Encode(&cli); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), cli.Bytes()) {
		t.Fatalf("service and CLI documents differ:\nservice:\n%s\ncli:\n%s", rec.Body, cli.String())
	}
}

// TestAnalyzeSingleflight proves N identical concurrent requests cost one
// Engine run: a pre-run hook holds the flight open until every request has
// joined it, then the one run's document answers them all.
func TestAnalyzeSingleflight(t *testing.T) {
	const n = 8
	dir := quickstartDir(t, 20)
	s := newTestServer(t, Config{}, dir)
	digest, err := trace.DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(digest, s.canonicalize(AnalyzeRequest{Workers: 1}))

	release := make(chan struct{})
	s.preRun = func(ctx context.Context, k string) {
		if k != key {
			t.Errorf("flight key %q, want %q", k, key)
		}
		<-release
	}

	h := s.Handler()
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
		}(i)
	}

	// Wait until all n requests are blocked on the one flight, then let
	// the single Engine run proceed.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.waiting(key) != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests joined the flight", s.flights.waiting(key), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("%d concurrent identical requests cost %d engine runs, want 1", n, runs)
	}
	var miss, dedup int
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body)
		}
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Fatalf("request %d body differs", i)
		}
		switch rec.Header().Get("X-RLScope-Cache") {
		case "miss":
			miss++
		case "dedup":
			dedup++
		default:
			t.Fatalf("request %d: unexpected cache header %q", i, rec.Header().Get("X-RLScope-Cache"))
		}
	}
	if miss != 1 || dedup != n-1 {
		t.Fatalf("got %d miss / %d dedup, want 1 / %d", miss, dedup, n-1)
	}
}

// TestAnalyzeClientDisconnectCancels proves a request whose every client
// has gone away cancels the underlying run (the PR 4 cancellation path)
// instead of burning the worker budget for nobody.
func TestAnalyzeClientDisconnectCancels(t *testing.T) {
	dir := quickstartDir(t, 20)
	s := newTestServer(t, Config{}, dir)

	entered := make(chan struct{})
	aborted := make(chan struct{})
	s.preRun = func(ctx context.Context, key string) {
		close(entered)
		<-ctx.Done() // hold the flight until its run context dies
		close(aborted)
	}

	cctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/traces/qs/analyze", strings.NewReader(`{"workers":1}`)).WithContext(cctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()

	<-entered
	cancel() // the only client disconnects
	select {
	case <-aborted:
	case <-time.After(10 * time.Second):
		t.Fatal("flight run context was not cancelled after the last client left")
	}
	<-done
	if runs := s.EngineRuns(); runs != 0 {
		t.Fatalf("cancelled request still started %d engine runs", runs)
	}

	// The server is healthy afterwards: the same request recomputes.
	s.preRun = nil
	rec2 := doReq(t, s.Handler(), "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if rec2.Code != http.StatusOK || s.EngineRuns() != 1 {
		t.Fatalf("post-cancel request: code %d, %d engine runs", rec2.Code, s.EngineRuns())
	}
}

// TestCacheEviction exercises the LRU under a budget that fits exactly one
// document: a second distinct analysis evicts the first, which then
// recomputes on re-request.
func TestCacheEviction(t *testing.T) {
	dir := quickstartDir(t, 20)

	// Measure the two documents' sizes with an unbounded cache.
	big := newTestServer(t, Config{}, dir)
	bodyA := doReq(t, big.Handler(), "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	bodyB := doReq(t, big.Handler(), "POST", "/v1/traces/qs/analyze", `{"workers":1,"max_resident_bytes":4096}`)
	if bodyA.Code != http.StatusOK || bodyB.Code != http.StatusOK {
		t.Fatalf("setup analyses failed: %d / %d", bodyA.Code, bodyB.Code)
	}
	budget := int64(bodyA.Body.Len())
	if n := int64(bodyB.Body.Len()); n > budget {
		budget = n
	}

	s := newTestServer(t, Config{CacheBytes: budget + 1}, dir)
	h := s.Handler()
	doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1,"max_resident_bytes":4096}`)
	st := s.store.lru.stats()
	if st.Evictions < 1 {
		t.Fatalf("no eviction under a one-document budget: %+v", st)
	}
	if st.Bytes > s.store.lru.max {
		t.Fatalf("cache over budget: %+v", st)
	}
	rec := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if got := rec.Header().Get("X-RLScope-Cache"); got != "miss" {
		t.Fatalf("evicted entry served as %q, want miss", got)
	}
	if runs := s.EngineRuns(); runs != 3 {
		t.Fatalf("engine runs %d, want 3 (two fills + one recompute)", runs)
	}
}

// TestAnalyzeReDigestsRewrittenDir pins the content-addressing guarantee
// on the miss path: when a registered directory's bytes change, the next
// analysis that actually runs re-snapshots the registration and caches
// under the new digest — new bytes are never filed under the old digest.
func TestAnalyzeReDigestsRewrittenDir(t *testing.T) {
	dir := quickstartDir(t, 20)
	s := newTestServer(t, Config{}, dir)
	h := s.Handler()

	rec1 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if rec1.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", rec1.Code, rec1.Body)
	}
	oldDigest := s.lookup("qs").info.Digest

	// Rewrite the directory in place with a different (larger) run.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
			t.Fatal(err)
		}
	}
	tr := quickstartTrace(t, 40)
	w, err := trace.NewWriter(dir, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		t.Fatal(err)
	}

	// A different option combination misses, re-digests, and refreshes
	// the registration snapshot.
	rec2 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1,"max_resident_bytes":8192}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-rewrite analyze: %d %s", rec2.Code, rec2.Body)
	}
	fresh := s.lookup("qs")
	if fresh.info.Digest == oldDigest {
		t.Fatal("registration digest not refreshed after rewrite")
	}
	if fresh.info.Events != len(tr.Events) {
		t.Fatalf("refreshed summary has %d events, want %d", fresh.info.Events, len(tr.Events))
	}
	// The report landed under the new digest: the identical request hits.
	rec3 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1,"max_resident_bytes":8192}`)
	if got := rec3.Header().Get("X-RLScope-Cache"); got != "hit" {
		t.Fatalf("re-request after refresh: %q, want hit", got)
	}
	// The original options now key on the new digest too: a fresh run
	// over the new bytes, not the stale pre-rewrite document.
	rec4 := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if got := rec4.Header().Get("X-RLScope-Cache"); got != "miss" {
		t.Fatalf("original options after rewrite: %q, want miss", got)
	}
	if bytes.Equal(rec4.Body.Bytes(), rec1.Body.Bytes()) {
		t.Fatal("post-rewrite analysis returned the pre-rewrite document")
	}
}

func TestAnalyzeCorrection(t *testing.T) {
	dir := quickstartDir(t, 20)
	cal := &calib.Calibration{
		Annotation:    50 * vclock.Nanosecond,
		Interception:  30 * vclock.Nanosecond,
		CUDAIntercept: 20 * vclock.Nanosecond,
	}
	s := newTestServer(t, Config{Calibration: cal}, dir)
	h := s.Handler()

	rec := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1,"correction":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("corrected analyze: %d %s", rec.Code, rec.Body)
	}
	var doc report.Analysis
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Corrected {
		t.Fatal("corrected document not marked corrected")
	}
	// Corrected and uncorrected analyses are distinct cache entries.
	plain := doReq(t, h, "POST", "/v1/traces/qs/analyze", `{"workers":1}`)
	if plain.Header().Get("X-RLScope-Cache") != "miss" {
		t.Fatal("uncorrected request hit the corrected cache entry")
	}
	if bytes.Equal(rec.Body.Bytes(), plain.Body.Bytes()) {
		t.Fatal("corrected and uncorrected documents are identical")
	}
}

func TestAnalyzeRequestErrors(t *testing.T) {
	s := newTestServer(t, Config{}, quickstartDir(t, 5))
	h := s.Handler()
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/traces/nope/analyze", "", http.StatusNotFound},
		{"GET", "/v1/traces/nope/summary", "", http.StatusNotFound},
		{"POST", "/v1/traces/qs/analyze", `{"workers":`, http.StatusBadRequest},
		{"POST", "/v1/traces/qs/analyze", `{"bogus_option":1}`, http.StatusBadRequest},
		{"POST", "/v1/traces/qs/analyze", `{"correction":true}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := doReq(t, h, tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s %s %q: got %d, want %d (%s)", tc.method, tc.path, tc.body, rec.Code, tc.want, rec.Body)
		}
	}
	if runs := s.EngineRuns(); runs != 0 {
		t.Fatalf("rejected requests started %d engine runs", runs)
	}
	// An empty body is legal: all defaults.
	rec := doReq(t, h, "POST", "/v1/traces/qs/analyze", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("empty-body analyze: %d %s", rec.Code, rec.Body)
	}
}

func TestAddDirErrors(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.AddDir("x", t.TempDir()); err == nil {
		t.Fatal("registering an empty directory succeeded")
	}
	dir := quickstartDir(t, 5)
	if _, err := s.AddDir("qs", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddDir("qs", dir); err == nil {
		t.Fatal("duplicate id registration succeeded")
	}
	if _, err := s.AddDir("bad id", dir); err == nil {
		t.Fatal("whitespace id registration succeeded")
	}
}
