package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("missing"); ok {
		t.Fatal("hit on empty store")
	}
	body := []byte(`{"some":"report"}` + "\n")
	if err := store.Put("key1", body); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get("key1")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get after put: ok=%v body=%q", ok, got)
	}
	// Overwriting with the same bytes (the only legal overwrite — keys are
	// content addresses) is fine.
	if err := store.Put("key1", body); err != nil {
		t.Fatal(err)
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Fatalf("len=%d err=%v, want 1 entry", n, err)
	}
}

// TestDiskStoreTornWrite: an entry whose file is shorter than its frame
// header promises (a crash mid-write that still renamed, or a torn direct
// write) is a miss, not corrupt data — the caller recomputes and the next
// Put repairs the entry.
func TestDiskStoreTornWrite(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("full report body\n")
	if err := store.Put("key", body); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated", full[:len(full)-5]},
		{"empty", nil},
		{"garbage", []byte("not a framed entry")},
		{"no-newline", []byte(storeMagic + "12345")},
	} {
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Get("key"); ok {
			t.Fatalf("%s entry served as a hit", tc.name)
		}
	}
	// Recomputation repairs it.
	if err := store.Put("key", body); err != nil {
		t.Fatal(err)
	}
	if got, ok := store.Get("key"); !ok || !bytes.Equal(got, body) {
		t.Fatalf("repaired entry: ok=%v body=%q", ok, got)
	}
}

// TestDiskStoreSurvivesReopen: a second DiskStore over the same directory
// — a restarted server, or another server in the fleet — sees the entries.
func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	first, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Put("shared", []byte("doc")); err != nil {
		t.Fatal(err)
	}
	second, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := second.Get("shared"); !ok || string(got) != "doc" {
		t.Fatalf("reopened store: ok=%v body=%q", ok, got)
	}
}

// TestTieredStorePromotion: a disk hit lands in the LRU, so the second get
// never touches disk.
func TestTieredStorePromotion(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := &tieredStore{lru: newReportCache(1 << 20), disk: disk}
	if err := disk.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := ts.get("k"); !ok || string(got) != "v" {
		t.Fatalf("tiered get: ok=%v body=%q", ok, got)
	}
	if hits := disk.hits.Load(); hits != 1 {
		t.Fatalf("disk hits %d, want 1", hits)
	}
	if got, ok := ts.get("k"); !ok || string(got) != "v" {
		t.Fatalf("promoted get: ok=%v body=%q", ok, got)
	}
	if hits := disk.hits.Load(); hits != 1 {
		t.Fatalf("second get went to disk (hits %d), want LRU promotion", hits)
	}
	// add populates both tiers.
	ts.add("k2", []byte("v2"))
	if _, ok := disk.Get("k2"); !ok {
		t.Fatal("add did not reach the disk tier")
	}
	// Without a disk tier the store degrades to the LRU alone.
	bare := &tieredStore{lru: newReportCache(1 << 20)}
	bare.add("k3", []byte("v3"))
	if got, ok := bare.get("k3"); !ok || string(got) != "v3" {
		t.Fatalf("LRU-only get: ok=%v body=%q", ok, got)
	}
	if st := bare.stats(); st.Enabled {
		t.Fatal("LRU-only store reports a disk tier")
	}
}
