// Package serve implements rlscope-serve: a long-running HTTP/JSON service
// answering RL-Scope analysis queries over a repository of trace
// directories — registered read-only (AddDir) or streamed in live over
// POST /v1/traces/{id}/chunks (see incremental.go). It is the step from
// one-shot CLI analysis to shared infrastructure: reports are cached by
// content — the trace directory's DirDigest plus the canonicalized
// analysis options — in a bounded LRU, so repeated queries cost a map
// lookup; concurrent identical queries collapse into one Engine run via
// singleflight; a global worker budget bounds the total Engine parallelism
// the service spends at once, however many clients are connected; and live
// traces are analyzed incrementally, so a report after a new chunk costs
// O(chunk) instead of O(trace).
//
// The response body of POST /analyze is the report.Analysis document
// `rlscope-analyze -json` prints — the CLI and the service are two front
// ends to one encoding, byte-identical at workers:1 (see the Analysis
// type's determinism contract for the stats caveat above that). Errors on
// every /v1 endpoint share one envelope, {"error":{"code","message"}},
// with the stable code vocabulary tabulated in DESIGN.md §9.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	rlscope "repro"
	"repro/internal/analysis"
	"repro/internal/calib"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/trace"
)

// Config configures a Server. The zero value serves with a 64 MiB report
// cache, one Engine worker per CPU as the global budget, and correction
// disabled.
type Config struct {
	// CacheBytes bounds the total encoded size of cached analysis
	// documents; <= 0 selects 64 MiB.
	CacheBytes int64
	// MaxWorkers is the global Engine-worker budget shared by every
	// in-flight analysis; <= 0 selects one per CPU.
	MaxWorkers int
	// Calibration, when set, lets clients request overhead-corrected
	// analyses ({"correction": true}); without it such requests fail
	// with 400.
	Calibration *calib.Calibration
	// StoreDir, when set, enables live ingest: POST /v1/traces/{id}/chunks
	// creates trace directories under it on first write. Empty disables
	// the write path (ingest requests fail with 403 ingest_disabled).
	StoreDir string
	// ReportDir, when set, adds a persistent content-addressed report
	// store under the LRU: encoded reports land on disk keyed by (digest,
	// canonical options), so cache warmth survives restarts and a fleet
	// of servers sharing one directory share one store. Empty keeps the
	// cache in-memory only.
	ReportDir string
}

// DefaultCacheBytes is the report-cache budget selected by Config.CacheBytes <= 0.
const DefaultCacheBytes = 64 << 20

// Server is the service state: the registered traces, the report cache,
// the singleflight group, and the admission budget. Register traces with
// AddDir, mount Handler on an http.Server, and Close on shutdown to abort
// any still-running analyses.
type Server struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc

	mu      sync.RWMutex
	traces  map[string]*traceEntry
	ids     []string // registration order
	lives   map[string]*liveTrace
	liveIDs []string // first-write order

	store   *tieredStore
	flights *flightGroup
	budget  *workerBudget

	// engineRuns counts Engine.Analyze calls actually started — the
	// instrumented ground truth that cache hits and deduplicated
	// requests perform zero Engine work.
	engineRuns atomic.Int64

	// preRun, when set (tests only), runs inside the singleflight call
	// before admission and the Engine run, on the flight's run context.
	preRun func(ctx context.Context, key string)
}

// traceEntry is an immutable snapshot of one registered directory's
// content. When a miss-path analysis discovers the directory's digest has
// changed since the snapshot was taken, a fresh entry replaces it in the
// registry; handlers holding the old pointer keep a consistent (if stale)
// read-only view.
type traceEntry struct {
	id      string
	info    TraceInfo
	dir     string
	meta    trace.Meta
	summary *TraceSummary
}

// TraceInfo is one registered trace's identity row (GET /v1/traces).
type TraceInfo struct {
	ID       string `json:"id"`
	Digest   string `json:"digest"`
	Workload string `json:"workload"`
	// Host is the originating machine (trace.Meta.Host) — the fleet
	// `host` dimension.
	Host string `json:"host,omitempty"`
	// Labels are the trace's free-form metadata annotations
	// (rlscope-prof -label k=v) — the dimensions fleet queries filter
	// and group by.
	Labels map[string]string `json:"labels,omitempty"`
	Chunks int               `json:"chunks"`
	Events int               `json:"events"`
	Procs  int               `json:"procs"`
	// State is "sealed" for finalized traces (every registered directory,
	// and live traces after /seal) and "open" for live traces still
	// accepting chunks.
	State string `json:"state"`
}

// TraceSummary is the sidecar-derived quick look at one trace
// (GET /v1/traces/{id}/summary): per-process event counts and extents plus
// the fork tree, computed at registration without decoding any chunk.
type TraceSummary struct {
	TraceInfo
	Config    trace.FeatureFlags `json:"config"`
	Processes []ProcSummary      `json:"processes"`
	Tree      []*report.TreeNode `json:"tree"`
	Phases    []string           `json:"phases,omitempty"`
}

// ProcSummary is one process's row of a TraceSummary.
type ProcSummary struct {
	Proc     trace.ProcID `json:"proc"`
	Name     string       `json:"name"`
	Parent   trace.ProcID `json:"parent"`
	Events   int          `json:"events"`
	MinStart int64        `json:"min_start_ns"`
	MaxEnd   int64        `json:"max_end_ns"`
}

// AnalyzeRequest is the POST /v1/traces/{id}/analyze body. The zero value
// (or an empty body) analyzes every process with the full worker budget,
// unbounded residency, and no correction.
type AnalyzeRequest struct {
	// Workers requests an Engine pool size; it is clamped to the
	// service's global budget, and <= 0 selects the clamped default.
	Workers int `json:"workers,omitempty"`
	// MaxResidentBytes bounds the streaming analysis's resident decoded
	// events, exactly like rlscope-analyze -max-resident.
	MaxResidentBytes int64 `json:"max_resident_bytes,omitempty"`
	// Correction requests overhead correction; the server must have been
	// configured with a calibration.
	Correction bool `json:"correction,omitempty"`
	// Procs restricts the analysis to the listed processes (empty = all).
	Procs []trace.ProcID `json:"procs,omitempty"`
}

// NewServer builds a Server from cfg. Call Close when done with it. An
// unusable ReportDir is reported by falling back to the in-memory tier
// alone — use NewServerStrict when a missing store must be an error.
func NewServer(cfg Config) *Server {
	s, _ := NewServerStrict(cfg)
	return s
}

// NewServerStrict is NewServer, but a ReportDir that cannot be created is
// returned as an error alongside the (LRU-only) server.
func NewServerStrict(cfg Config) (*Server, error) {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = analysis.DefaultWorkers()
	}
	ctx, cancel := context.WithCancel(context.Background())
	store := &tieredStore{lru: newReportCache(cfg.CacheBytes)}
	var err error
	if cfg.ReportDir != "" {
		store.disk, err = NewDiskStore(cfg.ReportDir)
	}
	return &Server{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		traces:  map[string]*traceEntry{},
		lives:   map[string]*liveTrace{},
		store:   store,
		flights: newFlightGroup(ctx),
		budget:  newWorkerBudget(cfg.MaxWorkers),
	}, err
}

// Close aborts every in-flight Engine run (their contexts descend from the
// server's). Call it after draining the HTTP listener.
func (s *Server) Close() { s.stop() }

// EngineRuns reports how many Engine.Analyze calls the server has started.
func (s *Server) EngineRuns() int64 { return s.engineRuns.Load() }

// AddDir registers a chunked trace directory under id: it digests the
// directory's content, reads the run metadata, and precomputes the sidecar
// summary. Registering the same id twice is an error; the same directory
// under two ids is fine (they share a digest, hence a cache footprint).
func (s *Server) AddDir(id, dir string) (TraceInfo, error) {
	if id == "" || strings.ContainsAny(id, "/ \t\n") {
		return TraceInfo{}, fmt.Errorf("serve: invalid trace id %q", id)
	}
	entry, err := newTraceEntry(id, dir)
	if err != nil {
		return TraceInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traces[id]; ok {
		return TraceInfo{}, fmt.Errorf("serve: trace id %q already registered", id)
	}
	if _, ok := s.lives[id]; ok {
		return TraceInfo{}, fmt.Errorf("serve: trace id %q already exists as a live trace", id)
	}
	s.traces[id] = entry
	s.ids = append(s.ids, id)
	return entry.info, nil
}

// newTraceEntry snapshots a directory's content: digest, metadata, and the
// sidecar summary.
func newTraceEntry(id, dir string) (*traceEntry, error) {
	digest, err := trace.DirDigest(dir)
	if err != nil {
		return nil, err
	}
	r, err := trace.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	meta := r.Meta()
	indexes := make([]*trace.ChunkIndex, r.NumChunks())
	for i := range indexes {
		// A missing sidecar falls back to a one-off chunk decode inside
		// Index, so pre-sidecar directories still register.
		if indexes[i], err = r.Index(i); err != nil {
			return nil, err
		}
	}
	summary := buildSummary(indexes, meta)
	summary.ID = id
	summary.Digest = digest
	summary.Workload = meta.Workload
	summary.Host = meta.Host
	summary.Labels = meta.Labels
	summary.State = StateSealed
	return &traceEntry{id: id, info: summary.TraceInfo, dir: dir, meta: meta, summary: summary}, nil
}

// buildSummary derives a trace summary from sidecar indexes alone — no
// chunk is decoded. Both registration (all indexes of a complete
// directory) and the live-ingest summary endpoint (the indexes landed so
// far) feed it; the caller fills the TraceInfo identity fields it knows.
func buildSummary(indexes []*trace.ChunkIndex, meta trace.Meta) *TraceSummary {
	type span struct {
		events   int
		min, max int64
	}
	spans := map[trace.ProcID]*span{}
	phaseNames := map[string]bool{}
	totalEvents := 0
	for _, ix := range indexes {
		totalEvents += ix.Events
		for p, sp := range ix.Procs {
			agg, ok := spans[p]
			if !ok {
				agg = &span{min: int64(sp.MinStart), max: int64(sp.MaxEnd)}
				spans[p] = agg
			}
			if int64(sp.MinStart) < agg.min {
				agg.min = int64(sp.MinStart)
			}
			if int64(sp.MaxEnd) > agg.max {
				agg.max = int64(sp.MaxEnd)
			}
			agg.events += sp.Events
		}
		for _, e := range ix.Phases {
			phaseNames[e.Name] = true
		}
	}
	// List every process the metadata or the chunks know about: metadata
	// names processes, chunks prove they produced events.
	procSet := map[trace.ProcID]bool{}
	for p := range meta.Procs {
		procSet[p] = true
	}
	for p := range spans {
		procSet[p] = true
	}
	procs := make([]trace.ProcID, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	sum := &TraceSummary{
		TraceInfo: TraceInfo{Chunks: len(indexes), Events: totalEvents, Procs: len(procs)},
		Config:    meta.Config,
		Tree:      report.TreeJSON(meta),
	}
	for _, p := range procs {
		info := meta.Procs[p]
		name := info.Name
		if name == "" {
			name = fmt.Sprintf("proc%d", p)
		}
		ps := ProcSummary{Proc: p, Name: name, Parent: info.Parent}
		if agg := spans[p]; agg != nil {
			ps.Events, ps.MinStart, ps.MaxEnd = agg.events, agg.min, agg.max
		}
		sum.Processes = append(sum.Processes, ps)
	}
	for name := range phaseNames {
		sum.Phases = append(sum.Phases, name)
	}
	sort.Strings(sum.Phases)
	return sum
}

func (s *Server) lookup(id string) *traceEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.traces[id]
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("POST /v1/traces", s.handleCreateTrace)
	mux.HandleFunc("GET /v1/traces/{id}/summary", s.handleSummary)
	mux.HandleFunc("POST /v1/traces/{id}/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/traces/{id}/chunks", s.handleAppendChunk)
	mux.HandleFunc("POST /v1/traces/{id}/seal", s.handleSeal)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	return mux
}

type healthResponse struct {
	Status     string       `json:"status"`
	Traces     int          `json:"traces"`
	EngineRuns int64        `json:"engine_runs"`
	Workers    workerHealth `json:"workers"`
	Cache      cacheStats   `json:"cache"`
	Store      storeStats   `json:"store"`
}

type workerHealth struct {
	Total     int `json:"total"`
	Available int `json:"available"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.ids) + len(s.liveIDs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Traces:     n,
		EngineRuns: s.engineRuns.Load(),
		Workers:    workerHealth{Total: s.cfg.MaxWorkers, Available: s.budget.available()},
		Cache:      s.store.lru.stats(),
		Store:      s.store.stats(),
	})
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	// ?id=, ?workload=, and ?label.k= filter the listing with the same
	// glob matcher the fleet query DSL uses (fleet.NewMatcher), so the
	// two front doors agree on what "workload=ppo-*" selects.
	matcher, err := listFilter(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad trace filter: "+err.Error())
		return
	}
	s.mu.RLock()
	entries := make([]*traceEntry, 0, len(s.ids))
	for _, id := range s.ids {
		entries = append(entries, s.traces[id])
	}
	lives := make([]*liveTrace, 0, len(s.liveIDs))
	for _, id := range s.liveIDs {
		lives = append(lives, s.lives[id])
	}
	s.mu.RUnlock()
	infos := make([]TraceInfo, 0, len(entries)+len(lives))
	for _, entry := range entries {
		if matcher == nil || matcher.Match(fleet.Trace{ID: entry.id, Meta: entry.meta}) {
			infos = append(infos, entry.info)
		}
	}
	// Live rows are snapshotted outside the registry lock: each one takes
	// its trace's own ingest lock, which an in-flight append may hold.
	for _, lt := range lives {
		info := lt.liveInfo()
		if matcher == nil || matcher.Match(fleet.Trace{ID: info.ID, Meta: trace.Meta{Workload: info.Workload, Host: info.Host, Labels: info.Labels}}) {
			infos = append(infos, info)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []TraceInfo `json:"traces"`
	}{infos})
}

// listFilter builds a fleet matcher from GET /v1/traces query parameters.
// Every parameter whose name is a valid filter dimension participates;
// anything else is rejected so typos fail loudly rather than matching
// everything.
func listFilter(params map[string][]string) (*fleet.Matcher, error) {
	filter := map[string]string{}
	for name, vals := range params {
		if !fleet.ValidDimension(name) {
			return nil, fmt.Errorf("unknown filter parameter %q (want id, workload, or label.<key>)", name)
		}
		if len(vals) > 1 {
			return nil, fmt.Errorf("filter parameter %q repeated", name)
		}
		filter[name] = vals[0]
	}
	if len(filter) == 0 {
		return nil, nil
	}
	return fleet.NewMatcher(filter)
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry := s.lookup(id)
	if entry == nil {
		if lt := s.liveLookup(id); lt != nil {
			s.handleLiveSummary(w, lt)
			return
		}
		writeError(w, http.StatusNotFound, ErrCodeUnknownTrace, "unknown trace id")
		return
	}
	writeJSON(w, http.StatusOK, entry.summary)
}

// canonical is an analyze request normalized to its cache-key form:
// workers resolved to the pool size a run would actually get (<= 0 becomes
// the per-CPU default clamped to the service budget, explicit asks clamp
// to the budget — so every spelling of the same effective pool is one
// key), negative residency floored, and the process filter sorted and
// deduplicated (so [2,1] and [1,1,2] are one key).
type canonical struct {
	workers     int
	maxResident int64
	correction  bool
	procs       []trace.ProcID
}

func (s *Server) canonicalize(req AnalyzeRequest) canonical {
	c := canonical{
		workers:    analysis.ClampWorkers(req.Workers, s.cfg.MaxWorkers),
		correction: req.Correction,
	}
	if req.MaxResidentBytes > 0 {
		c.maxResident = req.MaxResidentBytes
	}
	if len(req.Procs) > 0 {
		seen := map[trace.ProcID]bool{}
		for _, p := range req.Procs {
			if !seen[p] {
				seen[p] = true
				c.procs = append(c.procs, p)
			}
		}
		sort.Slice(c.procs, func(i, j int) bool { return c.procs[i] < c.procs[j] })
	}
	return c
}

// cacheKey addresses a report by content: what trace (digest) analyzed
// under what result-and-run-relevant options.
func cacheKey(digest string, c canonical) string {
	var sb strings.Builder
	sb.WriteString(digest)
	sb.WriteString("|w=")
	sb.WriteString(strconv.Itoa(c.workers))
	sb.WriteString("|m=")
	sb.WriteString(strconv.FormatInt(c.maxResident, 10))
	sb.WriteString("|c=")
	if c.correction {
		sb.WriteString("1")
	} else {
		sb.WriteString("0")
	}
	sb.WriteString("|p=")
	for i, p := range c.procs {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(strconv.Itoa(int(p)))
	}
	return sb.String()
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry := s.lookup(id)
	var live *liveTrace
	if entry == nil {
		if live = s.liveLookup(id); live == nil {
			writeError(w, http.StatusNotFound, ErrCodeUnknownTrace, "unknown trace id")
			return
		}
	}
	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	// io.EOF means an empty body — legal, meaning "all defaults".
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad analyze request: "+err.Error())
		return
	}
	if live != nil {
		s.analyzeLive(w, r, live, req)
		return
	}
	if req.Correction && s.cfg.Calibration == nil {
		writeError(w, http.StatusBadRequest, ErrCodeNoCalibration, "correction requested but the server has no calibration loaded (start rlscope-serve with -calibration)")
		return
	}
	c := s.canonicalize(req)
	key := cacheKey(entry.info.Digest, c)

	w.Header().Set("X-RLScope-Digest", entry.info.Digest)
	if body, ok := s.store.get(key); ok {
		// Content hit: the stored bytes answer the request with zero
		// Engine (and zero encoding) work.
		w.Header().Set("X-RLScope-Cache", "hit")
		writeBody(w, body)
		return
	}

	body, shared, err := s.flights.do(r.Context(), key, func(runCtx context.Context) ([]byte, error) {
		// A flight that lost a fill race can still answer from cache.
		if body, ok := s.store.get(key); ok {
			return body, nil
		}
		// Every miss pays an Engine run, so re-digesting first is cheap
		// insurance that the report is addressed by the content actually
		// analyzed: if the directory was rewritten since registration,
		// snapshot it afresh and cache under the new digest — never new
		// bytes under the old one. Reports cached before the rewrite
		// stay addressed by the content they were computed from.
		storeKey := key
		if digest, err := trace.DirDigest(entry.dir); err != nil {
			return nil, err
		} else if digest != entry.info.Digest {
			fresh, err := newTraceEntry(entry.id, entry.dir)
			if err != nil {
				return nil, err
			}
			s.mu.Lock()
			s.traces[entry.id] = fresh
			s.mu.Unlock()
			entry = fresh
			storeKey = cacheKey(digest, c)
		}
		if s.preRun != nil {
			s.preRun(runCtx, key)
		}
		// Admission: hold this run's worker allotment for its duration.
		if err := s.budget.acquire(runCtx, c.workers); err != nil {
			return nil, err
		}
		defer s.budget.release(c.workers)

		s.engineRuns.Add(1)
		opts := []rlscope.EngineOption{
			rlscope.WithWorkers(c.workers),
			rlscope.WithMaxResidentBytes(c.maxResident),
			rlscope.WithProcesses(c.procs...),
		}
		if c.correction {
			opts = append(opts, rlscope.WithCorrection(s.cfg.Calibration))
		}
		// A fresh Source per run: trace.Reader is not safe for
		// concurrent use, so runs never share one.
		rep, err := rlscope.NewEngine(opts...).Analyze(runCtx, rlscope.FromDir(entry.dir))
		if err != nil {
			return nil, err
		}
		doc := report.NewAnalysis(rep.Meta, rep.Results, rep.Stats, rep.Corrected)
		var buf bytes.Buffer
		if err := doc.Encode(&buf); err != nil {
			return nil, err
		}
		body := buf.Bytes()
		s.store.add(storeKey, body)
		return body, nil
	})
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; nothing useful can be written.
			return
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable, ErrCodeAnalysisAborted, "analysis aborted: "+err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, ErrCodeAnalysisFailed, "analysis failed: "+err.Error())
		return
	}
	if shared {
		w.Header().Set("X-RLScope-Cache", "dedup")
	} else {
		w.Header().Set("X-RLScope-Cache", "miss")
	}
	writeBody(w, body)
}

func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Stable machine-readable error codes. Every /v1 error body is the
// envelope {"error":{"code","message"}}; code is part of the API contract
// (clients branch on it — see client.APIError), message is human-oriented
// and free to change. The full table lives in DESIGN.md §9.
const (
	ErrCodeUnknownTrace          = "unknown_trace"
	ErrCodeInvalidTraceID        = "invalid_trace_id"
	ErrCodeBadRequest            = "bad_request"
	ErrCodeNoCalibration         = "no_calibration"
	ErrCodeAnalysisAborted       = "analysis_aborted"
	ErrCodeAnalysisFailed        = "analysis_failed"
	ErrCodeOutOfOrderSeq         = "out_of_order_sequence"
	ErrCodeChunkConflict         = "chunk_conflict"
	ErrCodeTraceSealed           = "trace_sealed"
	ErrCodeTraceExists           = "trace_exists"
	ErrCodeBadChunk              = "bad_chunk"
	ErrCodeIngestDisabled        = "ingest_disabled"
	ErrCodeCorrectionUnsupported = "correction_unsupported"
)

// ErrorEnvelope is the wire form of every /v1 error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the envelope's payload: a stable code plus a human message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError carries an error through handler helpers with its HTTP status
// and envelope code attached.
type apiError struct {
	status int
	code   string
	msg    string
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeError(w, e.status, e.code, e.msg)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}
