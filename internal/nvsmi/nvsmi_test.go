package nvsmi

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/vclock"
)

func sec(f float64) vclock.Time { return vclock.Time(f * float64(vclock.Second)) }

// TestShortKernelsInflateUtilization reproduces the paper's F.11 mechanism:
// one tiny kernel per sample period makes nvidia-smi report 100% while the
// true duty cycle is negligible.
func TestShortKernelsInflateUtilization(t *testing.T) {
	var busy []gpu.Busy
	// One 100 µs kernel every 1/6 s for 60 s: duty cycle 0.06%.
	period := DefaultPeriod
	for ts := vclock.Time(0); ts < sec(60); ts = ts.Add(period) {
		busy = append(busy, gpu.Busy{Start: ts.Add(1000), End: ts.Add(1000 + 100*vclock.Microsecond)})
	}
	rep := Sample(busy, 0, sec(60), period)
	// A trailing fractional sample period may be empty; everything else
	// must read active.
	if rep.Utilization() < 0.99 {
		t.Fatalf("sampled utilization = %.4f, want ~1.0", rep.Utilization())
	}
	if got := rep.TrueUtilization(); got > 0.001 {
		t.Fatalf("true utilization = %.4f, want < 0.1%%", got)
	}
}

func TestIdleDeviceReportsZero(t *testing.T) {
	rep := Sample(nil, 0, sec(10), 0)
	if rep.Utilization() != 0 || rep.TrueUtilization() != 0 {
		t.Fatalf("idle device: util=%v true=%v", rep.Utilization(), rep.TrueUtilization())
	}
	if rep.Periods < 60 || rep.Periods > 61 {
		t.Fatalf("periods = %d, want ~60 over 10s at 1/6s", rep.Periods)
	}
}

func TestFullyBusyDevice(t *testing.T) {
	busy := []gpu.Busy{{Start: 0, End: sec(10)}}
	rep := Sample(busy, 0, sec(10), 0)
	if rep.Utilization() != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", rep.Utilization())
	}
	if got := rep.TrueUtilization(); got < 0.999 || got > 1.001 {
		t.Fatalf("true utilization = %v, want ~1.0", got)
	}
}

func TestPartialWindowClipping(t *testing.T) {
	// Busy interval extends past the window; BusyTime must be clipped.
	busy := []gpu.Busy{{Start: sec(9), End: sec(15)}}
	rep := Sample(busy, 0, sec(10), 0)
	if got := rep.BusyTime; got != vclock.Duration(sec(1)) {
		t.Fatalf("BusyTime = %v, want 1s", got)
	}
}

func TestEmptyWindow(t *testing.T) {
	rep := Sample(nil, 10, 10, 0)
	if rep.Periods != 0 || rep.Utilization() != 0 {
		t.Fatalf("empty window: %+v", rep)
	}
}

func TestHalfActivePeriods(t *testing.T) {
	// Kernels only in the first half of the window.
	var busy []gpu.Busy
	period := DefaultPeriod
	for ts := vclock.Time(0); ts < sec(5); ts = ts.Add(period) {
		busy = append(busy, gpu.Busy{Start: ts, End: ts.Add(100)})
	}
	rep := Sample(busy, 0, sec(10), period)
	if got := rep.Utilization(); got < 0.45 || got > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
}
