// Package nvsmi reimplements the GPU-utilization metric reported by
// nvidia-smi, which the paper's scale-up case study (§4.3, F.11) shows to be
// drastically misleading for RL workloads.
//
// Per NVIDIA's documentation (quoted in the paper), utilization is sampled:
// the tool checks once per sample period whether one or more kernels were
// executing, and if so the whole period counts as 100% utilized. The sample
// period is between 1/6 s and 1 s. RL inference kernels are short but
// numerous, so nearly every period contains at least one kernel and the tool
// reads ~100% while the device is in fact almost idle.
package nvsmi

import (
	"repro/internal/gpu"
	"repro/internal/vclock"
)

// DefaultPeriod is the nvidia-smi sample period modelled here (the fast end
// of NVIDIA's documented 1/6s–1s range).
const DefaultPeriod = vclock.Second / 6

// Report summarizes sampled utilization over a time window.
type Report struct {
	// Periods is the number of sample periods in the window.
	Periods int
	// ActivePeriods is how many periods contained at least one kernel.
	ActivePeriods int
	// BusyTime is the true device-busy time in the window (the union of
	// kernel intervals) — what RL-Scope reports instead.
	BusyTime vclock.Duration
	// Window is the length of the sampled window.
	Window vclock.Duration
}

// Utilization returns the sampled utilization fraction in [0, 1] — the
// number nvidia-smi would print.
func (r Report) Utilization() float64 {
	if r.Periods == 0 {
		return 0
	}
	return float64(r.ActivePeriods) / float64(r.Periods)
}

// TrueUtilization returns busy-time divided by window — the honest
// duty-cycle nvidia-smi does not report.
func (r Report) TrueUtilization() float64 {
	if r.Window <= 0 {
		return 0
	}
	return r.BusyTime.Seconds() / r.Window.Seconds()
}

// Sample computes the sampled-utilization report for busy intervals within
// [start, end) using the given sample period. period <= 0 uses
// DefaultPeriod.
func Sample(busy []gpu.Busy, start, end vclock.Time, period vclock.Duration) Report {
	if period <= 0 {
		period = DefaultPeriod
	}
	if end <= start {
		return Report{}
	}
	union := gpu.Union(busy)
	rep := Report{Window: end.Sub(start)}
	for _, iv := range union {
		lo, hi := iv.Start, iv.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			rep.BusyTime += hi.Sub(lo)
		}
	}
	// Walk sample periods; binary search would work but the union is
	// small and periods are few in simulated runs.
	i := 0
	for t := start; t < end; t = t.Add(period) {
		pEnd := t.Add(period)
		if pEnd > end {
			pEnd = end
		}
		rep.Periods++
		for i < len(union) && union[i].End <= t {
			i++
		}
		if i < len(union) && union[i].Start < pEnd {
			rep.ActivePeriods++
		}
	}
	return rep
}
