package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vclock"
)

// Linkage is a planar rigid-linkage locomotion simulator standing in for
// MuJoCo's Hopper/Walker2D/HalfCheetah/Ant tasks. A torso (point mass with
// height and forward position) carries a chain of actuated rotational
// joints whose feet interact with the ground through a spring-damper
// contact; torques propel the body forward.
//
// The dynamics are a deliberate simplification of featherstone-style rigid
// body simulation, but they are real dynamics: deterministic integration,
// torque-driven motion, contact forces, termination on falling, and the
// standard reward shape (forward velocity − control cost + alive bonus).
type Linkage struct {
	name     string
	rng      *rand.Rand
	nJoints  int
	linkLen  float64
	torsoM   float64
	maxSteps int
	stepCost vclock.Dist
	// termination bounds on torso height.
	minH, maxH float64
	aliveBonus float64

	// State.
	x, z   float64 // torso position (forward, height)
	vx, vz float64 // torso velocity
	theta  []float64
	omega  []float64
	steps  int
}

// Integration constants shared by all morphologies.
const (
	linkDT        = 0.008
	linkGravity   = -9.8
	linkKContact  = 900.0
	linkDContact  = 9.0
	linkJointDamp = 0.08
	linkTorqueLim = 1.0
)

// morphology constructs a Linkage with task-specific parameters. The
// per-step simulator costs are scaled to the relative MuJoCo model
// complexities (Ant's 3-D quadruped costs the most; Hopper the least).
func morphology(name string, seed int64, joints int, minH, maxH, alive float64, stepCost vclock.Dist) *Linkage {
	l := &Linkage{
		name:       name,
		rng:        rand.New(rand.NewSource(seed)),
		nJoints:    joints,
		linkLen:    0.4,
		torsoM:     3.5,
		maxSteps:   1000,
		stepCost:   stepCost,
		minH:       minH,
		maxH:       maxH,
		aliveBonus: alive,
	}
	l.Reset()
	return l
}

// NewHopper builds the 3-joint one-legged hopper.
func NewHopper(seed int64) *Linkage {
	return morphology("Hopper", seed, 3, 0.45, 2.2, 1.0,
		vclock.Jittered(95*vclock.Microsecond, 0.2))
}

// NewWalker2D builds the 6-joint bipedal walker (the paper's main survey
// task).
func NewWalker2D(seed int64) *Linkage {
	return morphology("Walker2D", seed, 6, 0.5, 2.0, 1.0,
		vclock.Jittered(150*vclock.Microsecond, 0.2))
}

// NewHalfCheetah builds the 6-joint planar cheetah (no termination on
// falling, like the MuJoCo original).
func NewHalfCheetah(seed int64) *Linkage {
	l := morphology("HalfCheetah", seed, 6, -10, 10, 0,
		vclock.Jittered(130*vclock.Microsecond, 0.2))
	return l
}

// NewAnt builds the 8-joint quadruped.
func NewAnt(seed int64) *Linkage {
	return morphology("Ant", seed, 8, 0.3, 1.6, 0.5,
		vclock.Jittered(290*vclock.Microsecond, 0.2))
}

// Name implements Env.
func (l *Linkage) Name() string { return l.name }

// ObsDim implements Env: torso height, velocities, and per-joint
// angle+velocity pairs.
func (l *Linkage) ObsDim() int { return 3 + 2*l.nJoints }

// ActDim implements Env.
func (l *Linkage) ActDim() int { return l.nJoints }

// Discrete implements Env.
func (l *Linkage) Discrete() bool { return false }

// StepCost implements Env.
func (l *Linkage) StepCost() vclock.Dist { return l.stepCost }

// ResetCost implements Env.
func (l *Linkage) ResetCost() vclock.Dist { return l.stepCost.Scale(4) }

// Reset implements Env.
func (l *Linkage) Reset() []float64 {
	l.x, l.z = 0, 1.1
	l.vx, l.vz = 0, 0
	l.theta = make([]float64, l.nJoints)
	l.omega = make([]float64, l.nJoints)
	for i := range l.theta {
		l.theta[i] = randRange(l.rng, -0.08, 0.08)
	}
	l.steps = 0
	return l.obs()
}

func (l *Linkage) obs() []float64 {
	o := make([]float64, 0, l.ObsDim())
	o = append(o, l.z, l.vx, l.vz)
	for i := 0; i < l.nJoints; i++ {
		o = append(o, l.theta[i], l.omega[i])
	}
	return o
}

// Step implements Env: semi-implicit Euler integration of joint and torso
// dynamics with ground contact.
func (l *Linkage) Step(act []float64) ([]float64, float64, bool) {
	if len(act) != l.nJoints {
		panic(fmt.Sprintf("sim: %s expects %d torques, got %d", l.name, l.nJoints, len(act)))
	}
	l.steps++
	var ctrlCost float64
	// Joint dynamics: torque-driven damped rotation; joint inertia grows
	// with link length.
	inertia := l.linkLen * l.linkLen
	for i := 0; i < l.nJoints; i++ {
		tq := clip(act[i], linkTorqueLim)
		ctrlCost += tq * tq
		alpha := (tq - linkJointDamp*l.omega[i]) / inertia
		l.omega[i] += alpha * linkDT
		l.theta[i] += l.omega[i] * linkDT
		// Joint limits as stiff springs.
		const lim = 2.0
		if l.theta[i] > lim {
			l.omega[i] -= (l.theta[i] - lim) * 6
			l.theta[i] = lim
		} else if l.theta[i] < -lim {
			l.omega[i] -= (l.theta[i] + lim) * 6
			l.theta[i] = -lim
		}
	}

	// Feet: each joint's link endpoint below the torso; contact when the
	// endpoint penetrates the ground plane produces normal force and,
	// through joint motion, forward thrust.
	var fz, fx float64
	for i := 0; i < l.nJoints; i++ {
		footZ := l.z - l.linkLen*(1+0.5*math.Cos(l.theta[i]))
		if footZ < 0 {
			pen := -footZ
			vFoot := l.vz + l.linkLen*0.5*math.Sin(l.theta[i])*l.omega[i]
			n := linkKContact*pen - linkDContact*vFoot
			if n < 0 {
				n = 0
			}
			fz += n
			// Tangential thrust from leg sweep while in contact.
			fx += 0.35 * n * math.Sin(l.theta[i]) * l.omega[i] * l.linkLen
		}
	}

	// Torso dynamics.
	az := linkGravity + fz/l.torsoM
	ax := fx/l.torsoM - 0.3*l.vx // quadratic-ish drag, linearized
	l.vz += az * linkDT
	l.vx += ax * linkDT
	l.z += l.vz * linkDT
	l.x += l.vx * linkDT
	if l.z < 0.1 {
		l.z, l.vz = 0.1, 0
	}

	reward := l.vx + l.aliveBonus - 0.05*ctrlCost
	fell := l.z < l.minH || l.z > l.maxH
	done := fell || l.steps >= l.maxSteps
	return l.obs(), reward, done
}

// Forward reports the torso's forward position (for tests).
func (l *Linkage) Forward() float64 { return l.x }

// Height reports the torso height (for tests).
func (l *Linkage) Height() float64 { return l.z }
