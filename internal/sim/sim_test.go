package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func allEnvs(t *testing.T) []Env {
	t.Helper()
	var envs []Env
	for _, name := range SurveyNames {
		e, err := New(name, 7)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		envs = append(envs, e)
	}
	return envs
}

func randomAction(rng *rand.Rand, e Env) []float64 {
	if e.Discrete() {
		return []float64{float64(rng.Intn(e.ActDim()))}
	}
	act := make([]float64, e.ActDim())
	for i := range act {
		act[i] = 2*rng.Float64() - 1
	}
	return act
}

func TestEnvContract(t *testing.T) {
	for _, e := range allEnvs(t) {
		t.Run(e.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			obs := e.Reset()
			if len(obs) != e.ObsDim() {
				t.Fatalf("Reset obs len %d, want %d", len(obs), e.ObsDim())
			}
			for i := 0; i < 500; i++ {
				obs, r, done := e.Step(randomAction(rng, e))
				if len(obs) != e.ObsDim() {
					t.Fatalf("step %d: obs len %d, want %d", i, len(obs), e.ObsDim())
				}
				for j, v := range obs {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("step %d: obs[%d] = %v", i, j, v)
					}
				}
				if math.IsNaN(r) || math.IsInf(r, 0) {
					t.Fatalf("step %d: reward = %v", i, r)
				}
				if done {
					obs = e.Reset()
					if len(obs) != e.ObsDim() {
						t.Fatal("reset after done returned bad obs")
					}
				}
			}
		})
	}
}

func TestEnvCostModels(t *testing.T) {
	for _, e := range allEnvs(t) {
		if e.StepCost().Mean <= 0 {
			t.Fatalf("%s has no step cost", e.Name())
		}
		if e.ResetCost().Mean <= 0 {
			t.Fatalf("%s has no reset cost", e.Name())
		}
	}
}

func TestComplexityOrderingOfCosts(t *testing.T) {
	// Pong's *per-frame* emulation is cheap, but an agent step is four
	// frames plus screen extraction (frame-skip), so the per-step costs
	// of the low/medium environments are comparable; the high-complexity
	// AirLearning render dominates everything (F.12's 99.6% simulation
	// share needs this).
	walker, _ := New("Walker2D", 1)
	air, _ := New("AirLearning", 1)
	if air.StepCost().Mean < 100*walker.StepCost().Mean {
		t.Fatal("AirLearning must be >100x a robotics step")
	}
	if ant, _ := New("Ant", 1); ant.StepCost().Mean <= walker.StepCost().Mean {
		t.Fatal("Ant (8 joints) must cost more than Walker2D")
	}
	hopper, _ := New("Hopper", 1)
	if hopper.StepCost().Mean >= walker.StepCost().Mean {
		t.Fatal("Hopper (3 joints) must cost less than Walker2D")
	}
}

func TestDeterminismGivenSeed(t *testing.T) {
	for _, name := range SurveyNames {
		run := func() []float64 {
			e, _ := New(name, 42)
			rng := rand.New(rand.NewSource(5))
			e.Reset()
			var trace []float64
			for i := 0; i < 50; i++ {
				obs, r, done := e.Step(randomAction(rng, e))
				trace = append(trace, r, obs[0])
				if done {
					e.Reset()
				}
			}
			return trace
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: run diverged at %d (%v vs %v)", name, i, a[i], b[i])
			}
		}
	}
}

func TestPongScoring(t *testing.T) {
	p := NewPong(3)
	rng := rand.New(rand.NewSource(2))
	var sawReward bool
	for i := 0; i < 5000 && !sawReward; i++ {
		_, r, done := p.Step(randomAction(rng, p))
		if r != 0 {
			if r != 1 && r != -1 {
				t.Fatalf("pong reward %v, want ±1", r)
			}
			sawReward = true
		}
		if done {
			p.Reset()
		}
	}
	if !sawReward {
		t.Fatal("no point scored in 5000 random steps")
	}
}

func TestPongBallStaysInCourt(t *testing.T) {
	p := NewPong(4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		obs, _, done := p.Step(randomAction(rng, p))
		bx, by := obs[0], obs[1]
		if by < -0.05 || by > pongHeight+0.05 {
			t.Fatalf("ball escaped vertically: y=%v", by)
		}
		if bx < -0.05 || bx > pongWidth+0.05 {
			t.Fatalf("ball escaped horizontally: x=%v", bx)
		}
		if done {
			p.Reset()
		}
	}
}

func TestLinkageFallsUnderZeroTorque(t *testing.T) {
	w := NewWalker2D(5)
	w.Reset()
	zero := make([]float64, w.ActDim())
	done := false
	for i := 0; i < 1000 && !done; i++ {
		_, _, done = w.Step(zero)
	}
	if !done {
		t.Fatal("walker with zero torque should eventually fall or time out")
	}
}

func TestLinkageTorqueMovesBody(t *testing.T) {
	w := NewHopper(6)
	w.Reset()
	act := make([]float64, w.ActDim())
	for i := range act {
		act[i] = 1.0
	}
	for i := 0; i < 200; i++ {
		_, _, done := w.Step(act)
		if done {
			w.Reset()
		}
	}
	if w.Forward() == 0 && w.Height() == 1.1 {
		t.Fatal("constant torque produced no motion at all")
	}
}

func TestLinkageRewardIncludesCtrlCost(t *testing.T) {
	w := NewHalfCheetah(7)
	w.Reset()
	zero := make([]float64, w.ActDim())
	_, rZero, _ := w.Step(zero)
	w.Reset()
	big := make([]float64, w.ActDim())
	for i := range big {
		big[i] = 1
	}
	_, rBig, _ := w.Step(big)
	// With near-identical dynamics on step one, the control penalty must
	// separate the rewards.
	if rBig >= rZero {
		t.Fatalf("full-torque first-step reward (%v) should be below zero-torque (%v) via ctrl cost", rBig, rZero)
	}
}

func TestLinkageMorphologies(t *testing.T) {
	cases := []struct {
		env    Env
		joints int
	}{
		{NewHopper(1), 3},
		{NewWalker2D(1), 6},
		{NewHalfCheetah(1), 6},
		{NewAnt(1), 8},
	}
	for _, tc := range cases {
		if tc.env.ActDim() != tc.joints {
			t.Fatalf("%s ActDim = %d, want %d", tc.env.Name(), tc.env.ActDim(), tc.joints)
		}
		if tc.env.ObsDim() != 3+2*tc.joints {
			t.Fatalf("%s ObsDim = %d", tc.env.Name(), tc.env.ObsDim())
		}
	}
}

func TestAirLearningReachingGoalRewards(t *testing.T) {
	a := NewAirLearning(9)
	obs := a.Reset()
	// Fly straight at the goal using the observation's goal vector.
	var total float64
	for i := 0; i < airMaxSteps; i++ {
		dx, dy, dz := obs[6], obs[7], obs[8]
		n := math.Sqrt(dx*dx+dy*dy+dz*dz) + 1e-9
		act := []float64{dx / n, dy / n, dz / n, 0}
		var r float64
		var done bool
		obs, r, done = a.Step(act)
		total += r
		if done {
			break
		}
	}
	if total <= 0 {
		t.Fatalf("goal-seeking policy earned %v total reward, want > 0", total)
	}
}

func TestAirLearningCrashPenalty(t *testing.T) {
	a := NewAirLearning(10)
	a.Reset()
	// Full downward thrust until the episode ends.
	var last float64
	done := false
	for i := 0; i < airMaxSteps && !done; i++ {
		_, last, done = a.Step([]float64{0, 0, -1, 0})
	}
	if !done {
		t.Fatal("diving drone never terminated")
	}
	if last >= 0 {
		t.Fatalf("crash reward = %v, want negative", last)
	}
}

func TestTaxonomyCoversAllSurveyEnvs(t *testing.T) {
	tax := map[string]Complexity{}
	for _, s := range Taxonomy() {
		tax[s.Name] = s.Complexity
	}
	for _, name := range SurveyNames {
		if _, ok := tax[name]; !ok {
			t.Fatalf("taxonomy missing %s", name)
		}
	}
	if tax["Pong"] != Low || tax["Walker2D"] != Medium || tax["AirLearning"] != High {
		t.Fatal("taxonomy complexity assignments wrong")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Fatal("complexity names wrong")
	}
}

func TestUnknownEnvRejected(t *testing.T) {
	if _, err := New("Doom", 1); err == nil {
		t.Fatal("unknown environment accepted")
	}
}

// Property: observations stay bounded under random action sequences (no
// physics blow-up).
func TestLinkageStabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWalker2D(seed)
		w.Reset()
		for i := 0; i < 300; i++ {
			obs, _, done := w.Step(randomAction(rng, w))
			for _, v := range obs {
				if math.IsNaN(v) || math.Abs(v) > 1e4 {
					return false
				}
			}
			if done {
				w.Reset()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStepCostDistSampling(t *testing.T) {
	e, _ := New("Walker2D", 1)
	rng := rand.New(rand.NewSource(1))
	d := e.StepCost()
	for i := 0; i < 100; i++ {
		if got := d.Sample(rng); got <= 0 || got > 2*d.Mean {
			t.Fatalf("step cost sample %v outside sane range (mean %v)", got, d.Mean)
		}
	}
	_ = vclock.Duration(0)
}
