package sim

import (
	"math"
	"math/rand"

	"repro/internal/vclock"
)

// Pong is a real two-paddle Pong game with a scripted opponent, standing in
// for the Atari emulator. Observations are a RAM-style state vector (ball
// position/velocity and both paddle positions), actions are
// {stay, up, down}, and the reward is ±1 when a point is scored. An episode
// is one rally to pointsToWin points.
type Pong struct {
	rng *rand.Rand

	ballX, ballY   float64
	velX, velY     float64
	paddleA        float64 // agent, left side
	paddleB        float64 // opponent, right side
	scoreA, scoreB int
	steps          int
}

// Pong geometry and rules.
const (
	pongWidth      = 1.0
	pongHeight     = 1.0
	pongPaddleSize = 0.2
	pongPaddleStep = 0.04
	pongBallSpeed  = 0.025
	pongPointsWin  = 3
	pongMaxSteps   = 2000
	// pongFrameSkip is the Atari-standard action repeat: one agent step
	// advances the emulator four frames with the chosen action held.
	pongFrameSkip = 4
)

// NewPong creates a Pong environment.
func NewPong(seed int64) *Pong {
	p := &Pong{rng: rand.New(rand.NewSource(seed))}
	p.Reset()
	return p
}

// Name implements Env.
func (p *Pong) Name() string { return "Pong" }

// ObsDim implements Env.
func (p *Pong) ObsDim() int { return 6 }

// ActDim implements Env: stay / up / down.
func (p *Pong) ActDim() int { return 3 }

// Discrete implements Env.
func (p *Pong) Discrete() bool { return true }

// StepCost implements Env: one agent step is four emulated frames
// (frame-skip) plus screen extraction and preprocessing — the cost profile
// behind the paper's finding that tuned (PPO, Pong) is simulation-dominated
// (74.2% of training time, F.12).
func (p *Pong) StepCost() vclock.Dist { return vclock.Jittered(190*vclock.Microsecond, 0.2) }

// ResetCost implements Env.
func (p *Pong) ResetCost() vclock.Dist { return vclock.Jittered(200*vclock.Microsecond, 0.2) }

// Reset implements Env.
func (p *Pong) Reset() []float64 {
	p.scoreA, p.scoreB = 0, 0
	p.steps = 0
	p.paddleA, p.paddleB = pongHeight/2, pongHeight/2
	p.serve()
	return p.obs()
}

func (p *Pong) serve() {
	p.ballX, p.ballY = pongWidth/2, pongHeight/2
	angle := randRange(p.rng, -math.Pi/4, math.Pi/4)
	dir := 1.0
	if p.rng.Intn(2) == 0 {
		dir = -1
	}
	p.velX = dir * pongBallSpeed * math.Cos(angle)
	p.velY = pongBallSpeed * math.Sin(angle)
}

func (p *Pong) obs() []float64 {
	return []float64{p.ballX, p.ballY, p.velX / pongBallSpeed, p.velY / pongBallSpeed, p.paddleA, p.paddleB}
}

// Step implements Env: advances pongFrameSkip emulator frames with the
// action held, accumulating reward, as Atari RL pipelines do.
func (p *Pong) Step(act []float64) ([]float64, float64, bool) {
	var total float64
	var obs []float64
	var done bool
	for f := 0; f < pongFrameSkip; f++ {
		var r float64
		obs, r, done = p.frame(act)
		total += r
		if done {
			break
		}
	}
	return obs, total, done
}

// frame advances one emulator frame.
func (p *Pong) frame(act []float64) ([]float64, float64, bool) {
	p.steps++
	switch int(act[0]) {
	case 1:
		p.paddleA = clip01(p.paddleA+pongPaddleStep, pongPaddleSize/2, pongHeight-pongPaddleSize/2)
	case 2:
		p.paddleA = clip01(p.paddleA-pongPaddleStep, pongPaddleSize/2, pongHeight-pongPaddleSize/2)
	}
	// Scripted opponent tracks the ball with limited speed.
	if p.ballY > p.paddleB+pongPaddleStep/2 {
		p.paddleB = clip01(p.paddleB+pongPaddleStep*0.85, pongPaddleSize/2, pongHeight-pongPaddleSize/2)
	} else if p.ballY < p.paddleB-pongPaddleStep/2 {
		p.paddleB = clip01(p.paddleB-pongPaddleStep*0.85, pongPaddleSize/2, pongHeight-pongPaddleSize/2)
	}

	p.ballX += p.velX
	p.ballY += p.velY
	// Wall bounces.
	if p.ballY <= 0 {
		p.ballY, p.velY = -p.ballY, -p.velY
	} else if p.ballY >= pongHeight {
		p.ballY, p.velY = 2*pongHeight-p.ballY, -p.velY
	}

	var reward float64
	// Paddle bounces and scoring.
	if p.ballX <= 0 {
		if math.Abs(p.ballY-p.paddleA) <= pongPaddleSize/2 {
			p.ballX, p.velX = -p.ballX, -p.velX
			// Impart spin based on hit offset.
			p.velY += (p.ballY - p.paddleA) * 0.05
		} else {
			p.scoreB++
			reward = -1
			p.serve()
		}
	} else if p.ballX >= pongWidth {
		if math.Abs(p.ballY-p.paddleB) <= pongPaddleSize/2 {
			p.ballX, p.velX = 2*pongWidth-p.ballX, -p.velX
			p.velY += (p.ballY - p.paddleB) * 0.05
		} else {
			p.scoreA++
			reward = 1
			p.serve()
		}
	}

	done := p.scoreA >= pongPointsWin || p.scoreB >= pongPointsWin || p.steps >= pongMaxSteps
	return p.obs(), reward, done
}

func clip01(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
