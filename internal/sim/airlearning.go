package sim

import (
	"math"
	"math/rand"

	"repro/internal/vclock"
)

// AirLearning is a quadrotor point-to-point navigation task standing in for
// the AirLearning UAV toolkit (Krishnan et al.), whose simulator runs
// photo-realistic rendering inside a video game engine. The flight dynamics
// here are a damped double integrator with thrust-vector actions; the
// dominant per-step cost models the engine's rendering work, which is why
// the paper's simulator survey (F.12) finds simulation consuming 99.6% of
// AirLearning training time.
type AirLearning struct {
	rng *rand.Rand

	pos, vel [3]float64
	goal     [3]float64
	steps    int
}

// AirLearning task constants.
const (
	airMaxSteps   = 300
	airArena      = 20.0 // half-size of the flight arena
	airGoalRadius = 0.75
	airMaxThrust  = 4.0
	airDrag       = 0.35
	airDT         = 0.05
)

// NewAirLearning creates the drone navigation environment.
func NewAirLearning(seed int64) *AirLearning {
	a := &AirLearning{rng: rand.New(rand.NewSource(seed))}
	a.Reset()
	return a
}

// Name implements Env.
func (a *AirLearning) Name() string { return "AirLearning" }

// ObsDim implements Env: position, velocity, and vector to goal.
func (a *AirLearning) ObsDim() int { return 9 }

// ActDim implements Env: thrust in x/y/z plus a yaw channel.
func (a *AirLearning) ActDim() int { return 4 }

// Discrete implements Env.
func (a *AirLearning) Discrete() bool { return false }

// StepCost implements Env: photo-realistic rendering plus physics — four
// orders of magnitude above an Atari frame, dominating the training loop.
func (a *AirLearning) StepCost() vclock.Dist {
	return vclock.Jittered(28*vclock.Millisecond, 0.15)
}

// ResetCost implements Env: scene reload is expensive in a game engine.
func (a *AirLearning) ResetCost() vclock.Dist {
	return vclock.Jittered(120*vclock.Millisecond, 0.15)
}

// Reset implements Env.
func (a *AirLearning) Reset() []float64 {
	a.pos = [3]float64{0, 0, 2}
	a.vel = [3]float64{}
	for i := 0; i < 3; i++ {
		a.goal[i] = randRange(a.rng, -airArena/2, airArena/2)
	}
	a.goal[2] = math.Abs(a.goal[2]) + 1 // goals above ground
	a.steps = 0
	return a.obs()
}

func (a *AirLearning) obs() []float64 {
	return []float64{
		a.pos[0], a.pos[1], a.pos[2],
		a.vel[0], a.vel[1], a.vel[2],
		a.goal[0] - a.pos[0], a.goal[1] - a.pos[1], a.goal[2] - a.pos[2],
	}
}

func (a *AirLearning) distToGoal() float64 {
	var s float64
	for i := 0; i < 3; i++ {
		d := a.goal[i] - a.pos[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Step implements Env.
func (a *AirLearning) Step(act []float64) ([]float64, float64, bool) {
	a.steps++
	prevDist := a.distToGoal()
	for i := 0; i < 3; i++ {
		thrust := clip(act[i], 1) * airMaxThrust
		acc := thrust - airDrag*a.vel[i]
		if i == 2 {
			acc += 0 // gravity assumed compensated by hover thrust
		}
		a.vel[i] += acc * airDT
		a.pos[i] += a.vel[i] * airDT
	}
	newDist := a.distToGoal()
	reward := (prevDist - newDist) - 0.01 // progress minus time penalty

	crashed := a.pos[2] <= 0 ||
		math.Abs(a.pos[0]) > airArena || math.Abs(a.pos[1]) > airArena || a.pos[2] > airArena
	reached := newDist < airGoalRadius
	if reached {
		reward += 10
	}
	if crashed {
		reward -= 5
	}
	done := reached || crashed || a.steps >= airMaxSteps
	return a.obs(), reward, done
}
