// Package sim implements the simulators the paper's surveys run on,
// spanning its simulator-complexity axis (Figure 6):
//
//   - low complexity / computer games: Atari-style Pong;
//   - medium complexity / robotics: planar rigid-linkage physics standing in
//     for MuJoCo's Hopper, Walker2D, HalfCheetah and Ant;
//   - high complexity / photo-realistic: an AirLearning-style quadrotor
//     point-to-point navigation task whose per-step cost is dominated by
//     rendering.
//
// Every environment implements real dynamics — deterministic given a seed,
// with meaningful observations and rewards that the RL algorithms train
// against. Each also carries a per-step CPU cost model: the virtual time a
// step consumes inside the simulator's native library, scaled to match the
// relative complexities of the originals.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/vclock"
)

// Env is the environment interface, mirroring the OpenAI Gym API the
// paper's workloads use.
type Env interface {
	// Name returns the environment id, e.g. "Walker2D".
	Name() string
	// ObsDim is the observation vector length.
	ObsDim() int
	// ActDim is the action dimensionality: the number of torque inputs
	// for continuous tasks, or the number of discrete actions.
	ActDim() int
	// Discrete reports whether actions are discrete choices.
	Discrete() bool
	// Reset reinitializes the episode and returns the first observation.
	Reset() []float64
	// Step applies an action (length ActDim for continuous; for discrete
	// envs, act[0] holds the action index) and returns the next
	// observation, the reward, and whether the episode ended.
	Step(act []float64) (obs []float64, reward float64, done bool)
	// StepCost is the simulated CPU time one step costs inside the
	// simulator's native library.
	StepCost() vclock.Dist
	// ResetCost is the simulated CPU cost of an episode reset.
	ResetCost() vclock.Dist
}

// Complexity buckets environments along Figure 6's axis.
type Complexity uint8

// Complexity levels.
const (
	Low Complexity = iota
	Medium
	High
)

// String returns the display name.
func (c Complexity) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Complexity(%d)", uint8(c))
	}
}

// Spec describes an environment for reports (Figure 6's taxonomy).
type Spec struct {
	Name       string
	Domain     string
	Complexity Complexity
}

// Taxonomy lists the surveyed environments in Figure 6 order.
func Taxonomy() []Spec {
	return []Spec{
		{Name: "Pong", Domain: "computer games (Atari)", Complexity: Low},
		{Name: "Go", Domain: "computer games (board)", Complexity: Low},
		{Name: "Hopper", Domain: "robotics", Complexity: Medium},
		{Name: "Walker2D", Domain: "robotics", Complexity: Medium},
		{Name: "HalfCheetah", Domain: "robotics", Complexity: Medium},
		{Name: "Ant", Domain: "robotics", Complexity: Medium},
		{Name: "AirLearning", Domain: "drones (photo-realistic)", Complexity: High},
	}
}

// New constructs a surveyed environment by name.
func New(name string, seed int64) (Env, error) {
	switch name {
	case "Pong":
		return NewPong(seed), nil
	case "Hopper":
		return NewHopper(seed), nil
	case "Walker2D":
		return NewWalker2D(seed), nil
	case "HalfCheetah":
		return NewHalfCheetah(seed), nil
	case "Ant":
		return NewAnt(seed), nil
	case "AirLearning":
		return NewAirLearning(seed), nil
	default:
		return nil, fmt.Errorf("sim: unknown environment %q", name)
	}
}

// SurveyNames lists the Figure 7 environments in the paper's order.
var SurveyNames = []string{"AirLearning", "Ant", "HalfCheetah", "Hopper", "Pong", "Walker2D"}

// clip bounds v to [-lim, lim].
func clip(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// randRange draws uniformly from [lo, hi).
func randRange(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}
