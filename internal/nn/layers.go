package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation uint8

// Activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", uint8(a))
	}
}

// Apply computes the activation element-wise into a fresh tensor.
func (a Activation) Apply(x *Tensor) *Tensor {
	out := x.Clone()
	switch a {
	case Identity:
	case ReLU:
		for i, v := range out.Data {
			if v < 0 {
				out.Data[i] = 0
			}
		}
	case Tanh:
		for i, v := range out.Data {
			out.Data[i] = math.Tanh(v)
		}
	}
	return out
}

// Grad computes d(activation)/d(pre-activation) given the activation output
// y, multiplied element-wise into dY (returned as a fresh tensor).
func (a Activation) Grad(dY, y *Tensor) *Tensor {
	out := dY.Clone()
	switch a {
	case Identity:
	case ReLU:
		for i := range out.Data {
			if y.Data[i] <= 0 {
				out.Data[i] = 0
			}
		}
	case Tanh:
		for i := range out.Data {
			out.Data[i] *= 1 - y.Data[i]*y.Data[i]
		}
	}
	return out
}

// Param is one trainable parameter tensor with its gradient and optimizer
// state.
type Param struct {
	Name  string
	Value *Tensor
	Grad  *Tensor
	// Adam moments, allocated lazily by the optimizer.
	M, V *Tensor
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Dense is a fully connected layer: y = act(x @ W + b).
type Dense struct {
	In, Out int
	Act     Activation
	W, B    *Param

	// Forward caches for backprop.
	lastX *Tensor // input
	lastY *Tensor // post-activation output
}

// NewDense builds a Glorot-initialized dense layer.
func NewDense(rng *rand.Rand, in, out int, act Activation, name string) *Dense {
	w := NewTensor(in, out)
	w.XavierInit(rng, in, out)
	return &Dense{
		In: in, Out: out, Act: act,
		W: &Param{Name: name + ".W", Value: w, Grad: NewTensor(in, out)},
		B: &Param{Name: name + ".b", Value: NewTensor(1, out), Grad: NewTensor(1, out)},
	}
}

// Forward computes the layer output for a batch x of shape [n, In].
func (d *Dense) Forward(x *Tensor) *Tensor {
	d.lastX = x
	z := MatMul(x, d.W.Value)
	AddBias(z, d.B.Value)
	d.lastY = d.Act.Apply(z)
	return d.lastY
}

// Backward consumes dL/dy and returns dL/dx, accumulating into W.Grad and
// B.Grad. Forward must have been called first.
func (d *Dense) Backward(dY *Tensor) *Tensor {
	if d.lastX == nil {
		panic("nn: Dense.Backward before Forward")
	}
	dZ := d.Act.Grad(dY, d.lastY)
	d.W.Grad.AddScaled(MatMulT1(d.lastX, dZ), 1)
	for i := 0; i < dZ.Rows; i++ {
		row := dZ.Row(i)
		for j, v := range row {
			d.B.Grad.Data[j] += v
		}
	}
	return MatMulT2(dZ, d.W.Value)
}

// MLP is a stack of dense layers — the network shape every RL algorithm in
// the paper's survey uses (e.g. stable-baselines' default two hidden
// layers).
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes; hidden layers use act,
// the output layer uses outAct.
func NewMLP(rng *rand.Rand, sizes []int, act, outAct Activation, name string) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		a := act
		if i+2 == len(sizes) {
			a = outAct
		}
		m.Layers = append(m.Layers, NewDense(rng, sizes[i], sizes[i+1], a,
			fmt.Sprintf("%s.l%d", name, i)))
	}
	return m
}

// Forward runs the full network.
func (m *MLP) Forward(x *Tensor) *Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/d(output) through every layer, accumulating
// parameter gradients, and returns dL/d(input).
func (m *MLP) Backward(dOut *Tensor) *Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dOut = m.Layers[i].Backward(dOut)
	}
	return dOut
}

// Params returns all trainable parameters in layer order.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.W, l.B)
	}
	return ps
}

// ZeroGrad clears all gradients.
func (m *MLP) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// CopyTo copies all parameter values into dst (same architecture) — the
// target-network update used by DQN/DDPG/TD3/SAC.
func (m *MLP) CopyTo(dst *MLP) {
	sp, dp := m.Params(), dst.Params()
	if len(sp) != len(dp) {
		panic("nn: CopyTo architecture mismatch")
	}
	for i := range sp {
		dp[i].Value.CopyFrom(sp[i].Value)
	}
}

// PolyakTo blends parameters into dst: dst = tau*src + (1-tau)*dst — the
// soft target update.
func (m *MLP) PolyakTo(dst *MLP, tau float64) {
	sp, dp := m.Params(), dst.Params()
	for i := range sp {
		for j := range dp[i].Value.Data {
			dp[i].Value.Data[j] = tau*sp[i].Value.Data[j] + (1-tau)*dp[i].Value.Data[j]
		}
	}
}

// NumParams returns the total scalar parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Size()
	}
	return n
}

// ForwardFLOPs estimates the forward-pass FLOP count for a batch of n.
func (m *MLP) ForwardFLOPs(n int) float64 {
	var f float64
	for _, l := range m.Layers {
		f += 2 * float64(n) * float64(l.In) * float64(l.Out)
	}
	return f
}
