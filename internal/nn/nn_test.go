package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnownValues(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMul(NewTensor(2, 3), NewTensor(2, 3))
}

func TestMatMulTransposesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := NewTensor(4, 3), NewTensor(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	// aᵀ @ b computed two ways.
	at := NewTensor(3, 4)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulT1(a, b)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("MatMulT1 disagrees at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// a @ cᵀ two ways.
	c := NewTensor(6, 3)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	ct := NewTensor(3, 6)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want2 := MatMul(a, ct)
	got2 := MatMulT2(a, c)
	for i := range want2.Data {
		if math.Abs(want2.Data[i]-got2.Data[i]) > 1e-12 {
			t.Fatalf("MatMulT2 disagrees at %d", i)
		}
	}
}

func TestActivations(t *testing.T) {
	x := FromRows([][]float64{{-1, 0, 2}})
	r := ReLU.Apply(x)
	if r.At(0, 0) != 0 || r.At(0, 1) != 0 || r.At(0, 2) != 2 {
		t.Fatalf("relu = %v", r.Data)
	}
	th := Tanh.Apply(x)
	if math.Abs(th.At(0, 2)-math.Tanh(2)) > 1e-12 {
		t.Fatalf("tanh = %v", th.Data)
	}
	id := Identity.Apply(x)
	if id.At(0, 0) != -1 {
		t.Fatalf("identity = %v", id.Data)
	}
}

// numericalGrad estimates dLoss/dparam by central differences.
func numericalGrad(f func() float64, v *float64) float64 {
	const eps = 1e-6
	orig := *v
	*v = orig + eps
	up := f()
	*v = orig - eps
	down := f()
	*v = orig
	return (up - down) / (2 * eps)
}

// TestMLPGradientsMatchNumerical is the core correctness test: analytic
// backprop through a 2-hidden-layer MLP must match finite differences.
func TestMLPGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP(rng, []int{3, 8, 6, 2}, Tanh, Identity, "net")
	x := NewTensor(4, 3)
	target := NewTensor(4, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}
	lossOf := func() float64 {
		l, _ := MSELoss(m.Forward(x), target)
		return l
	}
	m.ZeroGrad()
	_, grad := MSELoss(m.Forward(x), target)
	m.Backward(grad)

	for _, p := range m.Params() {
		// Spot-check a handful of coordinates per parameter.
		idxs := []int{0, len(p.Value.Data) / 2, len(p.Value.Data) - 1}
		for _, idx := range idxs {
			got := p.Grad.Data[idx]
			want := numericalGrad(lossOf, &p.Value.Data[idx])
			if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want))+1e-7 {
				t.Fatalf("%s[%d]: analytic %g vs numerical %g", p.Name, idx, got, want)
			}
		}
	}
}

func TestReLUGradientNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, []int{4, 10, 1}, ReLU, Identity, "relu-net")
	x := NewTensor(3, 4)
	target := NewTensor(3, 1)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() + 0.1 // avoid exact kink
	}
	lossOf := func() float64 {
		l, _ := MSELoss(m.Forward(x), target)
		return l
	}
	m.ZeroGrad()
	_, grad := MSELoss(m.Forward(x), target)
	m.Backward(grad)
	p := m.Layers[0].W
	got := p.Grad.Data[3]
	want := numericalGrad(lossOf, &p.Value.Data[3])
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want))+1e-7 {
		t.Fatalf("relu grad: analytic %g vs numerical %g", got, want)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, []int{2, 16, 1}, Tanh, Identity, "net")
	opt := NewAdam(0.01)
	// Learn f(x) = x0 + 2*x1.
	x := NewTensor(32, 2)
	y := NewTensor(32, 1)
	for i := 0; i < 32; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, a+2*b)
	}
	first, _ := MSELoss(m.Forward(x), y)
	var last float64
	for it := 0; it < 300; it++ {
		m.ZeroGrad()
		pred := m.Forward(x)
		var grad *Tensor
		last, grad = MSELoss(pred, y)
		m.Backward(grad)
		opt.Step(m.Params())
	}
	if last > first/10 {
		t.Fatalf("Adam training failed to reduce loss: %g -> %g", first, last)
	}
}

func TestSGDStep(t *testing.T) {
	p := &Param{Value: FromVec([]float64{1, 2}), Grad: FromVec([]float64{0.5, -0.5})}
	(&SGD{LR: 0.1}).Step([]*Param{p})
	if math.Abs(p.Value.Data[0]-0.95) > 1e-12 || math.Abs(p.Value.Data[1]-2.05) > 1e-12 {
		t.Fatalf("SGD step = %v", p.Value.Data)
	}
}

func TestAdamMatchesManualFirstStep(t *testing.T) {
	p := &Param{Value: FromVec([]float64{1}), Grad: FromVec([]float64{0.3})}
	a := NewAdam(0.1)
	a.Step([]*Param{p})
	// After one step with bias correction, Adam moves by ~lr*sign(g).
	want := 1 - 0.1*0.3/(math.Sqrt(0.3*0.3)+a.Epsilon)
	if math.Abs(p.Value.Data[0]-want) > 1e-9 {
		t.Fatalf("adam first step = %v, want %v", p.Value.Data[0], want)
	}
}

func TestPolyakAndCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMLP(rng, []int{2, 3, 1}, Tanh, Identity, "a")
	b := NewMLP(rng, []int{2, 3, 1}, Tanh, Identity, "b")
	a.CopyTo(b)
	for i, p := range a.Params() {
		for j := range p.Value.Data {
			if b.Params()[i].Value.Data[j] != p.Value.Data[j] {
				t.Fatal("CopyTo did not copy")
			}
		}
	}
	before := b.Params()[0].Value.Data[0]
	a.Params()[0].Value.Data[0] = before + 1
	a.PolyakTo(b, 0.25)
	want := 0.25*(before+1) + 0.75*before
	if math.Abs(b.Params()[0].Value.Data[0]-want) > 1e-12 {
		t.Fatalf("polyak = %v, want %v", b.Params()[0].Value.Data[0], want)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(vals [6]float64) bool {
		x := NewTensor(2, 3)
		for i, v := range vals {
			x.Data[i] = math.Mod(v, 20) // keep magnitudes sane
		}
		s := Softmax(x)
		for i := 0; i < 2; i++ {
			var sum float64
			for j := 0; j < 3; j++ {
				p := s.At(i, j)
				if p < 0 || p > 1 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSoftmaxConsistentWithSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := NewTensor(3, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 3
	}
	s, ls := Softmax(x), LogSoftmax(x)
	for i := range s.Data {
		if math.Abs(math.Log(s.Data[i])-ls.Data[i]) > 1e-9 {
			t.Fatalf("log(softmax) != logsoftmax at %d", i)
		}
	}
}

func TestPolicyGradientLossGradNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := NewTensor(3, 4)
	for i := range logits.Data {
		logits.Data[i] = rng.NormFloat64()
	}
	actions := []int{1, 0, 3}
	advs := []float64{0.5, -1.2, 2.0}
	const entCoef = 0.01
	_, grad := PolicyGradientLoss(logits, actions, advs, entCoef)
	for _, idx := range []int{0, 5, 11} {
		lossOf := func() float64 {
			l, _ := PolicyGradientLoss(logits, actions, advs, entCoef)
			return l
		}
		want := numericalGrad(lossOf, &logits.Data[idx])
		if math.Abs(grad.Data[idx]-want) > 1e-6 {
			t.Fatalf("pg grad[%d]: analytic %g vs numerical %g", idx, grad.Data[idx], want)
		}
	}
}

func TestHuberLossQuadraticAndLinearRegions(t *testing.T) {
	pred := FromVec([]float64{0.5, 3})
	target := FromVec([]float64{0, 0})
	loss, grad := HuberLoss(pred, target)
	want := (0.5*0.25 + (3 - 0.5)) / 2
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("huber loss = %v, want %v", loss, want)
	}
	if math.Abs(grad.Data[0]-0.25) > 1e-12 || math.Abs(grad.Data[1]-0.5) > 1e-12 {
		t.Fatalf("huber grad = %v", grad.Data)
	}
}

func TestGaussianLogProbAgainstClosedForm(t *testing.T) {
	mean := FromRows([][]float64{{0, 1}})
	logStd := []float64{0, math.Log(2)}
	actions := FromRows([][]float64{{1, 1}})
	got := GaussianLogProb(mean, logStd, actions)[0]
	// dim0: N(1;0,1) → −0.5−0.5·log2π; dim1: N(1;1,4) → −log2−0.5·log2π.
	want := (-0.5 - 0.5*math.Log(2*math.Pi)) + (-math.Log(2) - 0.5*math.Log(2*math.Pi))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("gaussian logprob = %v, want %v", got, want)
	}
}

func TestClipGradByGlobalNorm(t *testing.T) {
	p := &Param{Value: FromVec([]float64{0, 0}), Grad: FromVec([]float64{3, 4})}
	norm := ClipGradByGlobalNorm([]*Param{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	if math.Abs(p.Grad.Data[0]-0.6) > 1e-12 || math.Abs(p.Grad.Data[1]-0.8) > 1e-12 {
		t.Fatalf("clipped grad = %v", p.Grad.Data)
	}
	// Below the bound: untouched.
	p2 := &Param{Value: FromVec([]float64{0}), Grad: FromVec([]float64{0.1})}
	ClipGradByGlobalNorm([]*Param{p2}, 1.0)
	if p2.Grad.Data[0] != 0.1 {
		t.Fatal("clip modified in-bound gradient")
	}
}

func TestTensorHelpers(t *testing.T) {
	x := FromRows([][]float64{{1, -5, 3}})
	if x.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if x.ArgmaxRow(0) != 2 {
		t.Fatalf("ArgmaxRow = %d", x.ArgmaxRow(0))
	}
	if x.Bytes() != 12 {
		t.Fatalf("Bytes = %d", x.Bytes())
	}
	c := x.Clone()
	c.Set(0, 0, 99)
	if x.At(0, 0) == 99 {
		t.Fatal("Clone aliases storage")
	}
	x.Zero()
	if x.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMLPForwardFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, []int{10, 20, 5}, ReLU, Identity, "n")
	want := 2.0 * 64 * (10*20 + 20*5)
	if got := m.ForwardFLOPs(64); got != want {
		t.Fatalf("ForwardFLOPs = %v, want %v", got, want)
	}
	if m.NumParams() != 10*20+20+20*5+5 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
}
