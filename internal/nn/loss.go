package nn

import "math"

// MSELoss returns the mean-squared-error loss and dL/dpred for a batch of
// predictions against targets (same shape). The gradient is scaled by
// 2/(n·m) so it is the exact derivative of the mean.
func MSELoss(pred, target *Tensor) (float64, *Tensor) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSELoss shape mismatch")
	}
	n := float64(pred.Size())
	grad := NewTensor(pred.Rows, pred.Cols)
	var loss float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// HuberLoss is the smooth-L1 loss used by DQN, with delta=1.
func HuberLoss(pred, target *Tensor) (float64, *Tensor) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: HuberLoss shape mismatch")
	}
	n := float64(pred.Size())
	grad := NewTensor(pred.Rows, pred.Cols)
	var loss float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		if math.Abs(d) <= 1 {
			loss += 0.5 * d * d
			grad.Data[i] = d / n
		} else {
			loss += math.Abs(d) - 0.5
			grad.Data[i] = math.Copysign(1, d) / n
		}
	}
	return loss / n, grad
}

// Softmax computes row-wise softmax into a fresh tensor.
func Softmax(x *Tensor) *Tensor {
	out := NewTensor(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row, orow := x.Row(i), out.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// LogSoftmax computes row-wise log-softmax into a fresh tensor.
func LogSoftmax(x *Tensor) *Tensor {
	out := NewTensor(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row, orow := x.Row(i), out.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		lse := maxv + math.Log(sum)
		for j, v := range row {
			orow[j] = v - lse
		}
	}
	return out
}

// PolicyGradientLoss computes the categorical policy-gradient loss
// −mean(advantage·log π(a)) for logits, chosen actions, and advantages, plus
// an entropy bonus with coefficient entCoef. It returns the loss and
// dL/dlogits — the update A2C and PPO's policy head uses.
func PolicyGradientLoss(logits *Tensor, actions []int, advantages []float64, entCoef float64) (float64, *Tensor) {
	if logits.Rows != len(actions) || logits.Rows != len(advantages) {
		panic("nn: PolicyGradientLoss batch mismatch")
	}
	n := float64(logits.Rows)
	probs := Softmax(logits)
	logp := LogSoftmax(logits)
	grad := NewTensor(logits.Rows, logits.Cols)
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		a := actions[i]
		adv := advantages[i]
		loss -= adv * logp.At(i, a)
		// Entropy bonus: H = −Σ p·logp; loss −= entCoef·H.
		var h float64
		for j := 0; j < logits.Cols; j++ {
			p := probs.At(i, j)
			if p > 1e-12 {
				h -= p * logp.At(i, j)
			}
		}
		loss -= entCoef * h
		// d(−adv·logp_a)/dlogit_j = adv·(p_j − 1[j==a])
		// d(−entCoef·H)/dlogit_j = entCoef·p_j·(logp_j + H)
		for j := 0; j < logits.Cols; j++ {
			p := probs.At(i, j)
			g := adv * p
			if j == a {
				g -= adv
			}
			g += entCoef * p * (logp.At(i, j) + h)
			grad.Set(i, j, g/n)
		}
	}
	return loss / n, grad
}

// GaussianLogProb returns log N(a; mean, std²) summed over action
// dimensions for each row, used by SAC and continuous PPO.
func GaussianLogProb(mean *Tensor, logStd []float64, actions *Tensor) []float64 {
	if mean.Rows != actions.Rows || mean.Cols != actions.Cols || len(logStd) != mean.Cols {
		panic("nn: GaussianLogProb shape mismatch")
	}
	out := make([]float64, mean.Rows)
	const log2pi = 1.8378770664093453
	for i := 0; i < mean.Rows; i++ {
		var lp float64
		for j := 0; j < mean.Cols; j++ {
			std := math.Exp(logStd[j])
			z := (actions.At(i, j) - mean.At(i, j)) / std
			lp += -0.5*z*z - logStd[j] - 0.5*log2pi
		}
		out[i] = lp
	}
	return out
}
