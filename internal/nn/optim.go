package nn

import "math"

// Optimizer updates parameters from accumulated gradients. Implementations
// are pure math; the ML backend decides how each update maps onto device
// work (fused GPU kernels vs. the MPI-friendly CPU path of paper F.4).
type Optimizer interface {
	// Step applies one update to the parameters and advances internal
	// state (e.g. Adam's timestep).
	Step(params []*Param)
	// Name identifies the optimizer in traces and reports.
	Name() string
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		p.Value.AddScaled(p.Grad, -s.LR)
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). UpdateParam exposes the
// per-parameter update so the backend can model the two deployment styles
// the paper contrasts:
//
//   - fused on-device update (tf-agents, ReAgent): a couple of kernels per
//     parameter tensor, weights never leave the GPU;
//   - stable-baselines' MPI-friendly Python Adam (paper F.4): weights are
//     copied device→host, updated on the CPU, and written back — even
//     during single-node training.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
}

// NewAdam returns Adam with standard defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	for _, p := range params {
		a.UpdateParam(p)
	}
}

// BeginStep advances the timestep without touching parameters; callers that
// drive UpdateParam directly (the backend's MPI-Adam path) pair it with one
// UpdateParam per parameter.
func (a *Adam) BeginStep() { a.t++ }

// UpdateParam applies Adam to a single parameter using the current timestep.
func (a *Adam) UpdateParam(p *Param) {
	if p.M == nil {
		p.M = NewTensor(p.Value.Rows, p.Value.Cols)
		p.V = NewTensor(p.Value.Rows, p.Value.Cols)
	}
	b1t := 1 - math.Pow(a.Beta1, float64(a.t))
	b2t := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, g := range p.Grad.Data {
		p.M.Data[i] = a.Beta1*p.M.Data[i] + (1-a.Beta1)*g
		p.V.Data[i] = a.Beta2*p.V.Data[i] + (1-a.Beta2)*g*g
		mHat := p.M.Data[i] / b1t
		vHat := p.V.Data[i] / b2t
		p.Value.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
}

// ClipGradByGlobalNorm rescales all gradients so their global L2 norm is at
// most maxNorm, returning the pre-clip norm. Standard in PPO/A2C.
func ClipGradByGlobalNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		f := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(f)
		}
	}
	return norm
}
