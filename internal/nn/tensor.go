// Package nn is a small, pure-Go neural-network library: tensors, dense
// layers, activations, losses, and optimizers.
//
// The RL algorithms in this repository train real networks with real
// gradients through this package. The ML backend (internal/backend) wraps
// each primitive as a "device op", charging simulated GPU/CUDA time from a
// FLOP-based cost model while the math itself runs on the host — the
// substitution for CUDA kernels documented in DESIGN.md.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major 2-D matrix (the only rank RL MLPs need).
// Vectors are 1×n or n×1 tensors.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a tensor from row slices (all equal length).
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("nn: FromRows needs non-empty input")
	}
	t := NewTensor(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.Cols {
			panic("nn: ragged rows")
		}
		copy(t.Data[i*t.Cols:], r)
	}
	return t
}

// FromVec builds a 1×n tensor copying v.
func FromVec(v []float64) *Tensor {
	t := NewTensor(1, len(v))
	copy(t.Data, v)
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns row i as a slice aliasing the tensor's storage.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Size returns the element count.
func (t *Tensor) Size() int { return len(t.Data) }

// Bytes returns the storage footprint assuming float32 device storage (what
// a real backend would ship over PCIe).
func (t *Tensor) Bytes() int { return 4 * len(t.Data) }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero clears the tensor.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies src's contents (shapes must match).
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.Rows != src.Rows || t.Cols != src.Cols {
		panic(fmt.Sprintf("nn: CopyFrom shape mismatch %dx%d vs %dx%d", t.Rows, t.Cols, src.Rows, src.Cols))
	}
	copy(t.Data, src.Data)
}

// MatMul computes a @ b into a fresh tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewTensor(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT1 computes aᵀ @ b (used for weight gradients).
func MatMulT1(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulT1 shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewTensor(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow, brow := a.Row(r), b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT2 computes a @ bᵀ (used for input gradients).
func MatMulT2(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulT2 shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewTensor(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddBias adds bias (1×n) to every row of x in place and returns x.
func AddBias(x, bias *Tensor) *Tensor {
	if bias.Rows != 1 || bias.Cols != x.Cols {
		panic("nn: bias shape mismatch")
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] += bias.Data[j]
		}
	}
	return x
}

// Scale multiplies every element by f in place and returns t.
func (t *Tensor) Scale(f float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= f
	}
	return t
}

// AddScaled adds f*src to t element-wise in place.
func (t *Tensor) AddScaled(src *Tensor, f float64) *Tensor {
	if len(t.Data) != len(src.Data) {
		panic("nn: AddScaled size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += f * src.Data[i]
	}
	return t
}

// XavierInit fills t with Glorot-uniform values for a layer with the given
// fan-in and fan-out.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// MaxAbs returns the largest absolute element (0 for empty).
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgmaxRow returns the index of the maximum element of row i.
func (t *Tensor) ArgmaxRow(i int) int {
	row := t.Row(i)
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}
