package backend

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nn"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func newBench(t *testing.T, model ExecModel) (*Backend, *profiler.Profiler, *profiler.Session) {
	t.Helper()
	p := profiler.New(profiler.Options{Workload: "memops", Flags: trace.Uninstrumented(), Seed: 21})
	s := p.NewProcess("t", -1, 0)
	ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
	return New(s, ctx, model), p, s
}

func memcpyEvents(tr *trace.Trace) (async, sync int) {
	for _, e := range tr.Events {
		if e.Kind == trace.KindCPU && e.Cat == trace.CatCUDA {
			switch e.Name {
			case cuda.APIMemcpyAsync:
				async++
			case cuda.APIMemcpy:
				sync++
			}
		}
	}
	return async, sync
}

func TestFeedFetchUseAsyncCopies(t *testing.T) {
	b, p, s := newBench(t, Graph)
	x := nn.NewTensor(4, 4)
	b.Compute("c", KindOther, func(c *Comp) {
		c.Feed(x)
		c.Fetch(x)
	})
	s.Close()
	async, syncN := memcpyEvents(p.MustTrace())
	if async != 2 || syncN != 0 {
		t.Fatalf("async=%d sync=%d, want 2/0", async, syncN)
	}
}

func TestFetchSyncUsesBlockingCopyGraph(t *testing.T) {
	b, p, s := newBench(t, Graph)
	x := nn.NewTensor(64, 64)
	b.Compute("c", KindOther, func(c *Comp) {
		c.FetchSync(x)
	})
	s.Close()
	async, syncN := memcpyEvents(p.MustTrace())
	if syncN != 1 || async != 0 {
		t.Fatalf("async=%d sync=%d, want 0/1", async, syncN)
	}
}

func TestFetchSyncEagerWrapsOwnBackendCall(t *testing.T) {
	b, p, s := newBench(t, EagerPyTorch)
	x := nn.NewTensor(8, 8)
	b.Compute("c", KindOther, func(c *Comp) {
		c.FetchSync(x)
	})
	s.Close()
	tr := p.MustTrace()
	found := false
	for _, e := range tr.Events {
		if e.Kind == trace.KindCPU && e.Cat == trace.CatBackend && e.Name == "fetch_sync" {
			found = true
		}
	}
	if !found {
		t.Fatal("eager FetchSync did not open its own backend call")
	}
}

func TestNewWithCostsOverrides(t *testing.T) {
	costs := Graph.Costs()
	costs.KernelBase = 50 * vclock.Microsecond // absurdly slow kernels
	p := profiler.New(profiler.Options{Workload: "x", Flags: trace.Uninstrumented(), Seed: 3})
	s := p.NewProcess("t", -1, 0)
	ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
	b := NewWithCosts(s, ctx, Graph, costs)
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(rng, "n", []int{2, 4, 1}, nn.Tanh, nn.Identity)
	x := nn.NewTensor(1, 2)
	b.Compute("fwd", KindInference, func(c *Comp) {
		c.Forward(net, x)
	})
	s.Close()
	tr := p.MustTrace()
	for _, e := range tr.Events {
		if e.Kind == trace.KindGPU && e.Cat == trace.CatGPUKernel {
			if e.Duration() < 50*vclock.Microsecond {
				t.Fatalf("custom KernelBase ignored: kernel %v", e.Duration())
			}
			return
		}
	}
	t.Fatal("no kernels launched")
}

func TestSGDStepFusedUpdatesParams(t *testing.T) {
	b, _, s := newBench(t, Graph)
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(rng, "n", []int{2, 2}, nn.Identity, nn.Identity)
	for _, param := range net.MLP.Params() {
		param.Grad.Fill(1)
	}
	before := net.MLP.Params()[0].Value.At(0, 0)
	opt := &nn.SGD{LR: 0.5}
	b.Compute("sgd", KindBackprop, func(c *Comp) {
		c.SGDStepFused(net, opt)
	})
	s.Close()
	after := net.MLP.Params()[0].Value.At(0, 0)
	if after != before-0.5 {
		t.Fatalf("SGD step wrong: %v -> %v", before, after)
	}
}

func TestParamBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(rng, "n", []int{3, 5}, nn.Identity, nn.Identity)
	// 3*5 weights + 5 biases = 20 params * 4 bytes.
	if got := net.ParamBytes(); got != 80 {
		t.Fatalf("ParamBytes = %d, want 80", got)
	}
}
