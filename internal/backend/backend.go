package backend

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/nn"
	"repro/internal/profiler"
	"repro/internal/vclock"
)

// Backend binds one simulated process to an ML backend under a specific
// execution model.
type Backend struct {
	sess  *profiler.Session
	ctx   *cuda.Context
	model ExecModel
	costs CostModel

	inComp bool
}

// New creates a backend for the session using the execution model's default
// cost model.
func New(sess *profiler.Session, ctx *cuda.Context, model ExecModel) *Backend {
	return &Backend{sess: sess, ctx: ctx, model: model, costs: model.Costs()}
}

// NewWithCosts creates a backend with a custom cost model (ablation benches
// use this).
func NewWithCosts(sess *profiler.Session, ctx *cuda.Context, model ExecModel, costs CostModel) *Backend {
	return &Backend{sess: sess, ctx: ctx, model: model, costs: costs}
}

// Model returns the backend's execution model.
func (b *Backend) Model() ExecModel { return b.model }

// Session returns the owning profiler session.
func (b *Backend) Session() *profiler.Session { return b.sess }

// Context returns the CUDA context.
func (b *Backend) Context() *cuda.Context { return b.ctx }

// Comp is the handle passed to a computation body; primitives issued
// through it are timed according to the execution model.
type Comp struct {
	b    *Backend
	kind CompKind
}

// Compute executes one logical computation (e.g. "actor_forward",
// "train_step") under the execution model:
//
//   - Graph/Autograph: one Python→Backend call wraps the whole body; the
//     driver pays feed/fetch marshaling in Python beforehand; a stream
//     synchronize at the end models session.run's blocking return.
//   - Eager: the body runs in the driver; every primitive becomes its own
//     Python→Backend call preceded by Python glue; a final sync call
//     models reading the result tensor.
func (b *Backend) Compute(name string, kind CompKind, fn func(*Comp)) {
	if b.inComp {
		panic(fmt.Sprintf("backend: nested Compute(%q)", name))
	}
	b.inComp = true
	defer func() { b.inComp = false }()

	c := &Comp{b: b, kind: kind}
	if b.model.Eager() {
		fn(c)
		b.sess.CallBackend(name+"/sync", func() {
			b.spend(b.costs.CallOverhead)
			b.ctx.StreamSynchronize()
		})
		return
	}
	// Graph-style: marshaling in Python, then a single backend call.
	b.sess.Python(b.costs.PyGlue)
	b.sess.CallBackend(name, func() {
		b.spend(b.costs.CallOverhead)
		fn(c)
		b.ctx.StreamSynchronize()
	})
}

// spend advances the session clock by a sampled duration; the time lands in
// whatever tier event is currently open.
func (b *Backend) spend(d vclock.Dist) {
	b.sess.Clock().Advance(d.Sample(b.sess.Clock().Rand()))
}

// Op issues one primitive: `kernels` GPU kernel launches totalling `flops`,
// with the real math in fn (run on the host). fn may be nil for pure-device
// ops.
func (c *Comp) Op(name string, flops float64, kernels int, fn func()) {
	b := c.b
	dispatch := b.costs.OpDispatch
	if c.kind == KindInference && b.costs.InferenceOpFactor != 1 {
		dispatch = dispatch.Scale(b.costs.InferenceOpFactor)
	}
	body := func() {
		b.spend(dispatch)
		if fn != nil {
			fn()
		}
		for k := 0; k < kernels; k++ {
			b.ctx.LaunchKernel(name, b.costs.KernelDur(flops/float64(kernels)))
		}
	}
	if b.model.Eager() {
		b.sess.Python(b.costs.PyGlue)
		b.sess.CallBackend(name, func() {
			b.spend(b.costs.CallOverhead)
			body()
		})
		return
	}
	body()
}

// Feed copies a host tensor to the device (the minibatch upload).
func (c *Comp) Feed(t *nn.Tensor) {
	c.memop("feed", cuda.HostToDevice, t.Bytes())
}

// Fetch copies a device tensor back to the host (reading results).
func (c *Comp) Fetch(t *nn.Tensor) {
	c.memop("fetch", cuda.DeviceToHost, t.Bytes())
}

// FetchSync copies a device tensor to the host with a blocking cudaMemcpy —
// the call high-level code makes when it needs the values immediately, as
// stable-baselines' Python Adam does when it pulls gradients off the device
// (paper F.4).
func (c *Comp) FetchSync(t *nn.Tensor) {
	b := c.b
	if b.model.Eager() {
		b.sess.Python(b.costs.PyGlue)
		b.sess.CallBackend("fetch_sync", func() {
			b.spend(b.costs.CallOverhead)
			b.ctx.Memcpy(cuda.DeviceToHost, t.Bytes())
		})
		return
	}
	b.ctx.Memcpy(cuda.DeviceToHost, t.Bytes())
}

func (c *Comp) memop(name string, dir cuda.Direction, bytes int) {
	b := c.b
	if b.model.Eager() {
		b.sess.Python(b.costs.PyGlue)
		b.sess.CallBackend(name, func() {
			b.spend(b.costs.CallOverhead)
			b.ctx.MemcpyAsync(dir, bytes)
		})
		return
	}
	b.ctx.MemcpyAsync(dir, bytes)
}

// AutographLoopEntry pays the cost of entering tf-agents' in-graph
// data-collection loop (paper F.5): tracing/dispatch Python time paid once
// per entry, amortized over the consecutive simulator steps inside. Callers
// charge it inside their data-collection operation annotation so the
// inflation shows up in the simulation stage, as the paper observes. A
// no-op for non-Autograph models.
func (b *Backend) AutographLoopEntry() {
	if b.model == Autograph {
		b.sess.Python(b.costs.LoopEntry)
	}
}

// AutographCollectLoop runs one data-collection segment: the loop-entry
// cost followed by the per-step body.
func (b *Backend) AutographCollectLoop(steps int, stepFn func(i int)) {
	b.AutographLoopEntry()
	for i := 0; i < steps; i++ {
		stepFn(i)
	}
}
