// Package backend simulates the ML backends RL frameworks are built on,
// faithfully reproducing the execution-model differences the paper's
// framework study (§4.1) measures:
//
//   - Graph (TensorFlow 1.x-style, used by stable-baselines): the driver
//     declares a computation once and runs it with a single session.run
//     call per step; high-level glue executes inside the backend.
//   - Autograph (TensorFlow 2, tf-agents): like Graph, with Python control
//     flow compiled in-graph — near-zero Python→Backend transitions, but an
//     anomalous per-op Backend-time inflation in inference (paper F.6) and
//     a loop-entry cost that must be amortized over consecutive simulator
//     steps (paper F.5).
//   - Eager TensorFlow (tf-agents eager): every operator is dispatched from
//     Python as its own backend call, with a high per-call cost.
//   - Eager PyTorch (ReAgent): per-operator dispatch too, but with a much
//     cheaper call path and fused dense kernels, so fewer transitions and
//     less overhead per step (paper F.3).
//
// Each primitive still executes real math (internal/nn) on the host; the
// backend charges virtual CPU/GPU time around it and issues simulated CUDA
// calls, so a profiled run produces the full cross-stack event structure.
package backend

import (
	"fmt"

	"repro/internal/vclock"
)

// ExecModel selects the execution model.
type ExecModel uint8

// Execution models (Table 1's rows).
const (
	Graph ExecModel = iota
	Autograph
	EagerTF
	EagerPyTorch
)

// String returns the display name used in Table 1 and Figure 4.
func (m ExecModel) String() string {
	switch m {
	case Graph:
		return "TensorFlow Graph"
	case Autograph:
		return "TensorFlow Autograph"
	case EagerTF:
		return "TensorFlow Eager"
	case EagerPyTorch:
		return "PyTorch Eager"
	default:
		return fmt.Sprintf("ExecModel(%d)", uint8(m))
	}
}

// BackendName returns the ML backend implementing the model.
func (m ExecModel) BackendName() string {
	if m == EagerPyTorch {
		return "PyTorch 1.6.0"
	}
	return "TensorFlow 2.2.0"
}

// Framework returns the RL framework the paper pairs with the model
// (Table 1).
func (m ExecModel) Framework() string {
	switch m {
	case Graph:
		return "stable-baselines"
	case Autograph, EagerTF:
		return "tf-agents"
	case EagerPyTorch:
		return "ReAgent"
	default:
		return "unknown"
	}
}

// Eager reports whether the model dispatches per-operator from the driver.
func (m ExecModel) Eager() bool { return m == EagerTF || m == EagerPyTorch }

// AllModels lists every execution model in Table 1 order.
var AllModels = []ExecModel{EagerPyTorch, Autograph, EagerTF, Graph}

// CompKind classifies a computation for cost modelling; the Autograph
// inference anomaly (F.6) applies only to inference computations.
type CompKind uint8

// Computation kinds.
const (
	KindOther CompKind = iota
	KindInference
	KindBackprop
)

// CostModel holds the execution model's timing parameters.
type CostModel struct {
	// PyGlue is driver-side Python time: per primitive in eager models
	// (the interpreter walking the op statements), per computation in
	// graph models (feed-dict marshaling, fetch unpacking).
	PyGlue vclock.Dist
	// CallOverhead is backend-side cost paid once per Python→Backend
	// call (dispatch, argument conversion).
	CallOverhead vclock.Dist
	// OpDispatch is backend-side cost per primitive op (graph-node
	// execution or eager kernel dispatch).
	OpDispatch vclock.Dist
	// InferenceOpFactor scales OpDispatch inside inference computations —
	// 1.0 everywhere except Autograph's anomaly (paper F.6).
	InferenceOpFactor float64
	// FuseDense reports whether a dense layer executes as one fused
	// kernel (PyTorch) instead of matmul+bias+activation.
	FuseDense bool
	// KernelBase and Throughput convert op FLOPs into GPU kernel time:
	// dur = KernelBase + flops/Throughput.
	KernelBase vclock.Duration
	Throughput float64
	// LoopEntry is the cost of entering an in-graph data-collection loop
	// (Autograph only); paid once per entry and amortized over the
	// consecutive simulator steps inside (paper F.5).
	LoopEntry vclock.Dist
}

// Costs returns the calibrated cost model for the execution model. The
// magnitudes are chosen so the paper's framework findings hold:
// F.1 (Eager 1.9–4.8× slower), F.2 (Autograph minimizes Python),
// F.3 (PyTorch Eager ≈2.3× faster than TF Eager), F.6 (Autograph inference
// Backend-time ≈4× Graph), F.8 (CUDA API ≈3.6× GPU kernel time).
func (m ExecModel) Costs() CostModel {
	base := CostModel{
		InferenceOpFactor: 1.0,
		KernelBase:        1700 * vclock.Nanosecond,
		Throughput:        0.5e12, // effective FLOP/s for tiny RL kernels
	}
	switch m {
	case Graph:
		base.PyGlue = vclock.Jittered(200*vclock.Microsecond, 0.15)
		base.CallOverhead = vclock.Jittered(45*vclock.Microsecond, 0.2)
		base.OpDispatch = vclock.Jittered(2500*vclock.Nanosecond, 0.25)
	case Autograph:
		base.PyGlue = vclock.Jittered(10*vclock.Microsecond, 0.2)
		base.CallOverhead = vclock.Jittered(45*vclock.Microsecond, 0.2)
		base.OpDispatch = vclock.Jittered(2700*vclock.Nanosecond, 0.25)
		base.InferenceOpFactor = 5.5
		base.LoopEntry = vclock.Jittered(900*vclock.Microsecond, 0.2)
	case EagerTF:
		base.PyGlue = vclock.Jittered(12*vclock.Microsecond, 0.2)
		base.CallOverhead = vclock.Jittered(40*vclock.Microsecond, 0.2)
		base.OpDispatch = vclock.Jittered(6*vclock.Microsecond, 0.25)
	case EagerPyTorch:
		base.PyGlue = vclock.Jittered(10*vclock.Microsecond, 0.2)
		base.CallOverhead = vclock.Jittered(24*vclock.Microsecond, 0.2)
		base.OpDispatch = vclock.Jittered(4*vclock.Microsecond, 0.25)
		base.FuseDense = true
	}
	return base
}

// KernelDur converts an op's FLOP count into simulated kernel time.
func (c CostModel) KernelDur(flops float64) vclock.Duration {
	if c.Throughput <= 0 {
		return c.KernelBase
	}
	return c.KernelBase + vclock.Duration(flops/c.Throughput*float64(vclock.Second))
}
