package backend

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nn"
	"repro/internal/overlap"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// runTrainStep executes a representative "train step" computation under one
// execution model and returns the overlap result plus total time.
func runTrainStep(t *testing.T, model ExecModel, steps int) (*overlap.Result, vclock.Duration) {
	t.Helper()
	p := profiler.New(profiler.Options{Workload: "bk-test", Flags: trace.Uninstrumented(), Seed: 1})
	s := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
	b := New(s, ctx, model)

	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(rng, "q", []int{8, 32, 32, 1}, nn.ReLU, nn.Identity)
	x := nn.NewTensor(16, 8)
	y := nn.NewTensor(16, 1)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	adam := nn.NewAdam(1e-3)

	for i := 0; i < steps; i++ {
		s.WithOperation("backpropagation", func() {
			b.Compute("train_step", KindBackprop, func(c *Comp) {
				c.Feed(x)
				c.ZeroGrad(net)
				pred := c.Forward(net, x)
				var grad *nn.Tensor
				c.HostLoss("mse", func() {
					_, grad = nn.MSELoss(pred, y)
				})
				c.Backward(net, grad)
				c.AdamStepFused(net, adam)
				c.Fetch(y)
			})
		})
	}
	s.Close()
	tr := p.MustTrace()
	return overlap.Compute(tr.ProcEvents(0)), p.TotalTime()
}

func TestEagerHasManyMoreBackendTransitions(t *testing.T) {
	const steps = 5
	resGraph, _ := runTrainStep(t, Graph, steps)
	resEager, _ := runTrainStep(t, EagerTF, steps)

	gTrans := resGraph.TransitionCount("backpropagation", trace.TransPythonToBackend)
	eTrans := resEager.TransitionCount("backpropagation", trace.TransPythonToBackend)
	if gTrans != steps {
		t.Fatalf("Graph backend transitions = %d, want %d (one per step)", gTrans, steps)
	}
	if eTrans < 10*gTrans {
		t.Fatalf("Eager transitions (%d) should dwarf Graph's (%d)", eTrans, gTrans)
	}
}

func TestEagerSlowerThanGraph(t *testing.T) {
	_, gTotal := runTrainStep(t, Graph, 10)
	_, eTotal := runTrainStep(t, EagerTF, 10)
	ratio := float64(eTotal) / float64(gTotal)
	if ratio < 1.5 {
		t.Fatalf("EagerTF/Graph = %.2fx; paper F.1 expects Eager well above Graph", ratio)
	}
}

func TestPyTorchEagerFasterThanTFEager(t *testing.T) {
	_, tfTotal := runTrainStep(t, EagerTF, 10)
	_, ptTotal := runTrainStep(t, EagerPyTorch, 10)
	ratio := float64(tfTotal) / float64(ptTotal)
	if ratio < 1.5 {
		t.Fatalf("TFEager/PyTorchEager = %.2fx; paper F.3 expects ≈2.3x", ratio)
	}
}

func TestPyTorchFusionReducesTransitionsAndKernels(t *testing.T) {
	resTF, _ := runTrainStep(t, EagerTF, 3)
	resPT, _ := runTrainStep(t, EagerPyTorch, 3)
	tfCUDA := resTF.TransitionCount("backpropagation", trace.TransBackendToCUDA)
	ptCUDA := resPT.TransitionCount("backpropagation", trace.TransBackendToCUDA)
	if ptCUDA >= tfCUDA {
		t.Fatalf("PyTorch kernels launches (%d) should be fewer than TF's (%d) via fusion", ptCUDA, tfCUDA)
	}
	tfB := resTF.TransitionCount("backpropagation", trace.TransPythonToBackend)
	ptB := resPT.TransitionCount("backpropagation", trace.TransPythonToBackend)
	if ptB >= tfB {
		t.Fatalf("PyTorch backend transitions (%d) should be fewer than TF Eager's (%d)", ptB, tfB)
	}
}

func TestAutographInferenceBackendAnomaly(t *testing.T) {
	// F.6: Autograph inference inflates Backend time ~4x vs Graph, without
	// extra transitions.
	run := func(model ExecModel) *overlap.Result {
		p := profiler.New(profiler.Options{Workload: "inf", Flags: trace.Uninstrumented(), Seed: 3})
		s := p.NewProcess("t", -1, 0)
		ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
		b := New(s, ctx, model)
		rng := rand.New(rand.NewSource(4))
		net := NewNetwork(rng, "pi", []int{8, 32, 4}, nn.ReLU, nn.Identity)
		x := nn.NewTensor(1, 8)
		for i := 0; i < 50; i++ {
			s.WithOperation("inference", func() {
				b.Compute("predict", KindInference, func(c *Comp) {
					c.Feed(x)
					out := c.Forward(net, x)
					c.Fetch(out)
				})
			})
		}
		s.Close()
		return overlap.Compute(p.MustTrace().ProcEvents(0))
	}
	g := run(Graph)
	a := run(Autograph)
	gB := g.CategoryCPUTime("inference", trace.CatBackend)
	aB := a.CategoryCPUTime("inference", trace.CatBackend)
	ratio := float64(aB) / float64(gB)
	if ratio < 1.5 {
		t.Fatalf("Autograph/Graph inference Backend time = %.2fx; F.6 expects ≈4x", ratio)
	}
	gT := g.TransitionCount("inference", trace.TransPythonToBackend)
	aT := a.TransitionCount("inference", trace.TransPythonToBackend)
	if aT > gT {
		t.Fatalf("anomaly must not come from transitions: autograph %d > graph %d", aT, gT)
	}
}

func TestMathIdenticalAcrossExecModels(t *testing.T) {
	// The execution model changes timing, never numerics.
	train := func(model ExecModel) float64 {
		p := profiler.New(profiler.Options{Workload: "m", Flags: trace.Uninstrumented(), Seed: 5})
		s := p.NewProcess("t", -1, 0)
		ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
		b := New(s, ctx, model)
		rng := rand.New(rand.NewSource(99))
		net := NewNetwork(rng, "n", []int{4, 16, 1}, nn.Tanh, nn.Identity)
		x := nn.FromRows([][]float64{{1, 2, 3, 4}, {0.5, -1, 2, 0}})
		y := nn.FromRows([][]float64{{1}, {-1}})
		adam := nn.NewAdam(0.01)
		var loss float64
		for i := 0; i < 20; i++ {
			b.Compute("step", KindBackprop, func(c *Comp) {
				c.ZeroGrad(net)
				pred := c.Forward(net, x)
				var grad *nn.Tensor
				c.HostLoss("mse", func() {
					loss, grad = nn.MSELoss(pred, y)
				})
				c.Backward(net, grad)
				c.AdamStepFused(net, adam)
			})
		}
		s.Close()
		return loss
	}
	ref := train(Graph)
	for _, m := range []ExecModel{Autograph, EagerTF, EagerPyTorch} {
		if got := train(m); got != ref {
			t.Fatalf("%v final loss %g differs from Graph's %g", m, got, ref)
		}
	}
}

func TestMPIAdamIssuesDeviceCopies(t *testing.T) {
	p := profiler.New(profiler.Options{Workload: "mpi", Flags: trace.Uninstrumented(), Seed: 6})
	s := p.NewProcess("t", -1, 0)
	ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
	b := New(s, ctx, Graph)
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(rng, "n", []int{4, 8, 1}, nn.Tanh, nn.Identity)
	adam := nn.NewAdam(0.001)
	for _, param := range net.MLP.Params() {
		param.Grad.Fill(0.1)
	}
	b.MPIAdamApply(net, adam)
	s.Close()
	tr := p.MustTrace()
	var d2h, h2d int
	for _, e := range tr.Events {
		if e.Kind == trace.KindGPU && e.Cat == trace.CatGPUMemcpy {
			switch e.Name {
			case "memcpyD2H":
				d2h++
			case "memcpyH2D":
				h2d++
			}
		}
	}
	nParams := len(net.MLP.Params())
	if d2h != nParams || h2d != nParams {
		t.Fatalf("MPI Adam copies: D2H=%d H2D=%d, want %d each", d2h, h2d, nParams)
	}
}

func TestMPIAdamCostsMoreThanFused(t *testing.T) {
	run := func(mpi bool) vclock.Duration {
		p := profiler.New(profiler.Options{Workload: "cmp", Flags: trace.Uninstrumented(), Seed: 8})
		s := p.NewProcess("t", -1, 0)
		ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
		b := New(s, ctx, Graph)
		rng := rand.New(rand.NewSource(9))
		net := NewNetwork(rng, "n", []int{8, 64, 64, 1}, nn.ReLU, nn.Identity)
		adam := nn.NewAdam(0.001)
		for i := 0; i < 10; i++ {
			if mpi {
				b.MPIAdamApply(net, adam)
			} else {
				b.Compute("apply", KindBackprop, func(c *Comp) {
					c.AdamStepFused(net, adam)
				})
			}
		}
		s.Close()
		return p.TotalTime()
	}
	fused, mpi := run(false), run(true)
	if mpi <= fused {
		t.Fatalf("MPI Adam (%v) should cost more than fused Adam (%v) — paper F.4", mpi, fused)
	}
}

func TestAutographLoopEntryCostAmortizes(t *testing.T) {
	// F.5: per-step Python time shrinks as consecutive steps per loop
	// entry grow.
	perStepPython := func(stepsPerEntry int) float64 {
		p := profiler.New(profiler.Options{Workload: "loop", Flags: trace.Uninstrumented(), Seed: 10})
		s := p.NewProcess("t", -1, 0)
		ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
		b := New(s, ctx, Autograph)
		const totalSteps = 1000
		entries := totalSteps / stepsPerEntry
		op := s.Operation("simulation")
		for e := 0; e < entries; e++ {
			b.AutographCollectLoop(stepsPerEntry, func(i int) {
				s.CallSimulator("step", func() {
					s.Clock().Advance(100 * vclock.Microsecond)
				})
			})
		}
		op.End()
		s.Close()
		res := overlap.Compute(p.MustTrace().ProcEvents(0))
		return res.CategoryCPUTime("simulation", trace.CatPython).Seconds() / totalSteps
	}
	small := perStepPython(100)  // DDPG's hyperparameter
	large := perStepPython(1000) // TD3's hyperparameter
	if small <= large*1.5 {
		t.Fatalf("python/step at 100 steps-per-entry (%g) should exceed 1000 steps-per-entry (%g)", small, large)
	}
}

func TestNestedComputePanics(t *testing.T) {
	p := profiler.New(profiler.Options{Workload: "x", Seed: 1})
	s := p.NewProcess("t", -1, 0)
	ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
	b := New(s, ctx, Graph)
	defer func() {
		if recover() == nil {
			t.Fatal("nested Compute did not panic")
		}
	}()
	b.Compute("outer", KindOther, func(*Comp) {
		b.Compute("inner", KindOther, nil)
	})
}

func TestExecModelMetadata(t *testing.T) {
	if Graph.Framework() != "stable-baselines" || EagerPyTorch.Framework() != "ReAgent" {
		t.Fatal("framework names wrong")
	}
	if EagerPyTorch.BackendName() != "PyTorch 1.6.0" || Graph.BackendName() != "TensorFlow 2.2.0" {
		t.Fatal("backend names wrong")
	}
	if !EagerTF.Eager() || Graph.Eager() {
		t.Fatal("Eager() classification wrong")
	}
	if len(AllModels) != 4 {
		t.Fatal("AllModels must list 4 configurations")
	}
}

func TestKernelDurScalesWithFLOPs(t *testing.T) {
	c := Graph.Costs()
	small := c.KernelDur(1000)
	big := c.KernelDur(1e9)
	if big <= small {
		t.Fatal("kernel duration must grow with FLOPs")
	}
	if small < c.KernelBase {
		t.Fatal("kernel duration below base")
	}
}
