package backend

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/vclock"
)

// Network is an MLP whose parameters live on the simulated device. All
// forward/backward execution goes through a Comp so the execution model can
// time it.
type Network struct {
	Name string
	MLP  *nn.MLP
}

// NewNetwork builds a device-resident MLP.
func NewNetwork(rng *rand.Rand, name string, sizes []int, act, outAct nn.Activation) *Network {
	return &Network{Name: name, MLP: nn.NewMLP(rng, sizes, act, outAct, name)}
}

// ParamBytes returns the float32 footprint of all parameters.
func (n *Network) ParamBytes() int { return 4 * n.MLP.NumParams() }

// Forward runs the network on a batch. Under TensorFlow-style models each
// dense layer is three operators (matmul, bias_add, activation), each its
// own eager dispatch in Eager mode; under PyTorch a layer executes as one
// fused linear+activation op — the structural difference behind the paper's
// F.3 transition-count gap.
func (c *Comp) Forward(net *Network, x *nn.Tensor) *nn.Tensor {
	cur := x
	for i, l := range net.MLP.Layers {
		layer, in := l, cur
		flops := 2 * float64(in.Rows) * float64(layer.In) * float64(layer.Out)
		prefix := fmt.Sprintf("%s/dense%d", net.Name, i)
		var out *nn.Tensor
		if c.b.costs.FuseDense {
			c.Op(prefix+"/linear_act", flops, 1, func() {
				out = layer.Forward(in)
			})
		} else {
			c.Op(prefix+"/matmul", flops, 1, func() {
				out = layer.Forward(in)
			})
			c.Op(prefix+"/bias_add", float64(in.Rows*layer.Out), 1, nil)
			c.Op(prefix+"/"+layer.Act.String(), float64(in.Rows*layer.Out), 1, nil)
		}
		cur = out
	}
	return cur
}

// Backward propagates dL/d(output) through the network, accumulating
// parameter gradients on the device, and returns dL/d(input). TensorFlow
// models run four operators per layer (activation grad, weight grad, input
// grad, bias reduce); PyTorch fuses to two.
func (c *Comp) Backward(net *Network, dOut *nn.Tensor) *nn.Tensor {
	cur := dOut
	for i := len(net.MLP.Layers) - 1; i >= 0; i-- {
		layer, in := net.MLP.Layers[i], cur
		flops := 4 * float64(in.Rows) * float64(layer.In) * float64(layer.Out)
		prefix := fmt.Sprintf("%s/dense%d", net.Name, i)
		var out *nn.Tensor
		if c.b.costs.FuseDense {
			c.Op(prefix+"/linear_backward", flops, 2, func() {
				out = layer.Backward(in)
			})
		} else {
			c.Op(prefix+"/"+layer.Act.String()+"_grad", float64(in.Rows*layer.Out), 1, nil)
			c.Op(prefix+"/matmul_dW", flops/2, 1, func() {
				out = layer.Backward(in)
			})
			c.Op(prefix+"/matmul_dX", flops/2, 1, nil)
			c.Op(prefix+"/bias_grad", float64(in.Rows*layer.Out), 1, nil)
		}
		cur = out
	}
	return cur
}

// ZeroGrad clears gradients as a device op.
func (c *Comp) ZeroGrad(net *Network) {
	c.Op(net.Name+"/zero_grad", float64(net.MLP.NumParams()), 1, func() {
		net.MLP.ZeroGrad()
	})
}

// HostLoss runs loss math that, in a real backend, would be one or two small
// device kernels (e.g. computing MSE and its gradient).
func (c *Comp) HostLoss(name string, fn func()) {
	c.Op(name, 0, 1, fn)
}

// AdamStepFused applies Adam entirely on the device: one fused update kernel
// per parameter tensor, weights never leave the GPU. This is the tf-agents /
// ReAgent optimizer path.
func (c *Comp) AdamStepFused(net *Network, opt *nn.Adam) {
	opt.BeginStep()
	for _, p := range net.MLP.Params() {
		param := p
		c.Op(net.Name+"/adam/"+param.Name, float64(10*param.Value.Size()), 1, func() {
			opt.UpdateParam(param)
		})
	}
}

// SGDStepFused applies SGD on the device, one kernel per parameter tensor.
func (c *Comp) SGDStepFused(net *Network, opt *nn.SGD) {
	for _, p := range net.MLP.Params() {
		param := p
		c.Op(net.Name+"/sgd/"+param.Name, float64(2*param.Value.Size()), 1, func() {
			opt.Step([]*nn.Param{param})
		})
	}
}

// PolyakUpdate blends net into target on-device (soft target-network
// update). In stable-baselines Graph implementations this runs as its own
// session call; callers decide the Compute boundary.
func (c *Comp) PolyakUpdate(net, target *Network, tau float64) {
	c.Op(net.Name+"/polyak", float64(3*net.MLP.NumParams()), 2, func() {
		net.MLP.PolyakTo(target.MLP, tau)
	})
}

// HardUpdate copies net's parameters into target on-device.
func (c *Comp) HardUpdate(net, target *Network) {
	c.Op(net.Name+"/target_copy", float64(net.MLP.NumParams()), 1, func() {
		net.MLP.CopyTo(target.MLP)
	})
}

// MPIAdamApply is stable-baselines' MPI-friendly Adam (paper F.4): gradients
// are copied device→host, the Adam math runs in Python, and updated weights
// are written back — even during single-node training. It is a driver-level
// sequence of three backend interactions, producing the extra CUDA API calls
// and Python time the paper attributes to DDPG Graph backpropagation.
func (b *Backend) MPIAdamApply(net *Network, opt *nn.Adam) {
	params := net.MLP.Params()
	// 1. Fetch gradients to the host with blocking copies — Python needs
	// the values immediately.
	b.Compute(net.Name+"/mpi_adam/fetch_grads", KindBackprop, func(c *Comp) {
		for _, p := range params {
			c.Op(net.Name+"/grad_flatten/"+p.Name, float64(p.Grad.Size()), 1, nil)
			c.FetchSync(p.Grad)
		}
	})
	// 2. Adam math in Python on the host, one interpreted update per
	// parameter tensor.
	opt.BeginStep()
	b.sess.Python(b.costs.PyGlue)
	pyAdam := vclock.Jittered(30*vclock.Microsecond, 0.2)
	for _, p := range params {
		b.sess.Python(pyAdam)
		opt.UpdateParam(p)
	}
	// 3. Write updated weights back to the device.
	b.Compute(net.Name+"/mpi_adam/assign_weights", KindBackprop, func(c *Comp) {
		for _, p := range params {
			c.Feed(p.Value)
			c.Op(net.Name+"/assign/"+p.Name, float64(p.Value.Size()), 1, nil)
		}
	})
}
