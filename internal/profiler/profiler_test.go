package profiler

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// toyWorkload runs a miniature annotated training loop: python work, one
// simulator call, and one backend call that launches two kernels and syncs.
func toyWorkload(p *Profiler, dev *gpu.Device, iters int) *Session {
	s := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(s, dev, cuda.DefaultCosts())
	s.SetPhase("training")
	for i := 0; i < iters; i++ {
		s.WithOperation("inference", func() {
			s.Python(vclock.Exact(20 * vclock.Microsecond))
			s.CallBackend("forward", func() {
				s.Clock().Advance(5 * vclock.Microsecond)
				ctx.LaunchKernel("matmul", 4*vclock.Microsecond)
				ctx.StreamSynchronize()
			})
		})
		s.WithOperation("simulation", func() {
			s.CallSimulator("step", func() {
				s.Clock().Advance(50 * vclock.Microsecond)
			})
		})
		s.WithOperation("backpropagation", func() {
			s.CallBackend("train_step", func() {
				s.Clock().Advance(8 * vclock.Microsecond)
				ctx.LaunchKernel("matmul_grad", 6*vclock.Microsecond)
				ctx.StreamSynchronize()
			})
		})
	}
	s.Close()
	return s
}

func TestUninstrumentedRunHasNoOverheadMarkers(t *testing.T) {
	p := New(Options{Workload: "toy", Flags: trace.Uninstrumented(), Seed: 1})
	toyWorkload(p, gpu.NewDevice(-1), 3)
	tr := p.MustTrace()
	if n := tr.CountKind(trace.KindOverhead); n != 0 {
		t.Fatalf("uninstrumented run has %d overhead markers", n)
	}
	if counts := p.OverheadCounts(); len(counts) != 0 {
		t.Fatalf("uninstrumented overhead counts = %v", counts)
	}
}

func TestFullRunRecordsMarkersAndInflates(t *testing.T) {
	base := New(Options{Workload: "toy", Flags: trace.Uninstrumented(), Seed: 1})
	toyWorkload(base, gpu.NewDevice(-1), 5)

	full := New(Options{Workload: "toy", Flags: trace.Full(), Seed: 1})
	toyWorkload(full, gpu.NewDevice(-1), 5)

	if full.TotalTime() <= base.TotalTime() {
		t.Fatalf("instrumented run (%v) not slower than uninstrumented (%v)",
			full.TotalTime(), base.TotalTime())
	}
	tr := full.MustTrace()
	if n := tr.CountKind(trace.KindOverhead); n == 0 {
		t.Fatal("full run recorded no overhead markers")
	}
	counts := full.OverheadCounts()
	for _, k := range []trace.OverheadKind{
		trace.OverheadAnnotation, trace.OverheadInterception,
		trace.OverheadCUDAIntercept, trace.OverheadCUPTI,
	} {
		if counts[k] == 0 {
			t.Fatalf("no occurrences of %v", k)
		}
	}
}

// TestWorkloadDeterministicAcrossFlags verifies the delta-calibration
// precondition: base workload cost draws are identical regardless of which
// profiler features are enabled.
func TestWorkloadDeterministicAcrossFlags(t *testing.T) {
	runTotal := func(flags trace.FeatureFlags) vclock.Duration {
		p := New(Options{
			Workload: "toy", Flags: flags, Seed: 42,
			// Exact overheads so inflation is exactly mean*count.
			Overheads: OverheadModel{
				Annotation:    vclock.Exact(vclock.Microsecond),
				Interception:  vclock.Exact(vclock.Microsecond),
				CUDAIntercept: vclock.Exact(vclock.Microsecond),
				CUPTI:         map[string]vclock.Dist{},
			},
		})
		toyWorkload(p, gpu.NewDevice(-1), 4)
		return p.TotalTime()
	}
	base := runTotal(trace.Uninstrumented())
	annot := runTotal(trace.FeatureFlags{Annotations: true})

	p := New(Options{Workload: "toy", Flags: trace.FeatureFlags{Annotations: true}, Seed: 42,
		Overheads: OverheadModel{
			Annotation:    vclock.Exact(vclock.Microsecond),
			Interception:  vclock.Exact(vclock.Microsecond),
			CUDAIntercept: vclock.Exact(vclock.Microsecond),
			CUPTI:         map[string]vclock.Dist{},
		}})
	toyWorkload(p, gpu.NewDevice(-1), 4)
	count := p.OverheadCounts()[trace.OverheadAnnotation]

	if got, want := annot-base, vclock.Duration(count)*vclock.Microsecond; got != want {
		t.Fatalf("annotation-only inflation = %v, want exactly count×mean = %v", got, want)
	}
}

func TestTraceStructureIsValid(t *testing.T) {
	p := New(Options{Workload: "toy", Flags: trace.Full(), Seed: 3})
	toyWorkload(p, gpu.NewDevice(-1), 3)
	tr := p.MustTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestOverlapOfToyWorkload(t *testing.T) {
	p := New(Options{Workload: "toy", Flags: trace.Uninstrumented(), Seed: 4})
	toyWorkload(p, gpu.NewDevice(-1), 10)
	tr := p.MustTrace()
	res := overlap.Compute(tr.ProcEvents(0))

	for _, op := range []string{"inference", "simulation", "backpropagation"} {
		if res.OpTotal(op) == 0 {
			t.Fatalf("no time attributed to %s", op)
		}
	}
	// Simulation must be pure CPU in the Simulator tier.
	if res.CategoryCPUTime("simulation", trace.CatSimulator) == 0 {
		t.Fatal("simulation has no Simulator-tier CPU time")
	}
	if res.GPUTime("simulation") != 0 {
		t.Fatal("simulation should not use the GPU")
	}
	// Inference and backprop must have GPU time (the launched kernels).
	if res.GPUTime("inference") == 0 || res.GPUTime("backpropagation") == 0 {
		t.Fatal("NN operations recorded no GPU time")
	}
	// Transition counts: 1 backend call per inference/backprop iteration,
	// 1 sim call per simulation iteration.
	if got := res.TransitionCount("simulation", trace.TransPythonToSimulator); got != 10 {
		t.Fatalf("simulator transitions = %d, want 10", got)
	}
	if got := res.TransitionCount("inference", trace.TransPythonToBackend); got != 10 {
		t.Fatalf("inference backend transitions = %d, want 10", got)
	}
	if got := res.TransitionCount("backpropagation", trace.TransBackendToCUDA); got != 20 {
		t.Fatalf("backprop CUDA transitions = %d, want 20 (launch+sync per iter)", got)
	}
}

func TestOperationNestingPanicsOnDoubleEnd(t *testing.T) {
	p := New(Options{Workload: "x", Seed: 1})
	s := p.NewProcess("m", -1, 0)
	op := s.Operation("a")
	op.End()
	defer func() {
		if recover() == nil {
			t.Fatal("double End did not panic")
		}
	}()
	op.End()
}

func TestCloseWithOpenOperationPanics(t *testing.T) {
	p := New(Options{Workload: "x", Seed: 1})
	s := p.NewProcess("m", -1, 0)
	s.Operation("a")
	defer func() {
		if recover() == nil {
			t.Fatal("Close with open operation did not panic")
		}
	}()
	s.Close()
}

func TestTraceRequiresClosedSessions(t *testing.T) {
	p := New(Options{Workload: "x", Seed: 1})
	p.NewProcess("m", -1, 0)
	if _, err := p.Trace(); err == nil {
		t.Fatal("Trace() succeeded with unclosed session")
	}
}

func TestMultiProcessMetadata(t *testing.T) {
	p := New(Options{Workload: "multi", Seed: 1})
	root := p.NewProcess("trainer", -1, 0)
	root.Clock().Advance(vclock.Second)
	w := p.NewProcess("worker_0", root.Proc(), root.Clock().Now())
	if w.Clock().Now() != root.Clock().Now() {
		t.Fatal("forked process did not inherit parent clock")
	}
	w.Close()
	root.Close()
	tr := p.MustTrace()
	if tr.Meta.Procs[w.Proc()].Parent != root.Proc() {
		t.Fatalf("worker parent = %d, want %d", tr.Meta.Procs[w.Proc()].Parent, root.Proc())
	}
	if tr.Meta.Procs[root.Proc()].Name != "trainer" {
		t.Fatalf("proc names = %+v", tr.Meta.Procs)
	}
}

func TestPhaseRecorded(t *testing.T) {
	p := New(Options{Workload: "x", Seed: 1})
	s := p.NewProcess("m", -1, 0)
	s.SetPhase("data_collection")
	s.Python(vclock.Exact(10 * vclock.Microsecond))
	s.SetPhase("sgd_updates")
	s.Python(vclock.Exact(5 * vclock.Microsecond))
	s.Close()
	tr := p.MustTrace()
	var phases []string
	for _, e := range tr.Events {
		if e.Kind == trace.KindPhase {
			phases = append(phases, e.Name)
		}
	}
	if len(phases) != 2 || phases[0] != "data_collection" || phases[1] != "sgd_updates" {
		t.Fatalf("phases = %v", phases)
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	p := New(Options{Workload: "x", Seed: 1})
	s := p.NewProcess("m", -1, 0)
	s.Close()
	s.Close() // must not panic or duplicate the root event
	tr := p.MustTrace()
	n := 0
	for _, e := range tr.Events {
		if e.Kind == trace.KindCPU && e.Name == "python" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("root python events = %d, want 1", n)
	}
}
