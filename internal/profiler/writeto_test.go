package profiler

import (
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/trace"
)

func TestWriteToRoundTrip(t *testing.T) {
	p := New(Options{Workload: "persisted", Flags: trace.Full(), Seed: 2})
	toyWorkload(p, gpu.NewDevice(-1), 4)
	dir := filepath.Join(t.TempDir(), "trace")
	if err := p.WriteTo(dir); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	want := p.MustTrace()
	if len(got.Events) != len(want.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(want.Events))
	}
	if got.Meta.Workload != "persisted" || !got.Meta.Config.CUPTI {
		t.Fatalf("metadata mismatch: %+v", got.Meta)
	}
}

func TestWriteToUnclosedSessionFails(t *testing.T) {
	p := New(Options{Workload: "x", Seed: 1})
	p.NewProcess("open", -1, 0)
	if err := p.WriteTo(t.TempDir()); err == nil {
		t.Fatal("WriteTo succeeded with an unclosed session")
	}
}
