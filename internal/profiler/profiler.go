// Package profiler implements the RL-Scope profiler core: high-level
// algorithmic annotations (paper §3.1), transparent event interception
// (§3.2), and the book-keeping cost model that calibration measures and
// correction subtracts (§3.4).
//
// A Profiler owns one run. Each simulated process in the run gets a Session,
// which is the process-local recording context: it owns the process's
// virtual clock, buffers its events, and implements the hook surface that
// the simulated CUDA runtime and the interception wrappers call into.
//
// # Overhead model
//
// When a book-keeping feature is enabled, every occurrence of that
// book-keeping advances the process clock by a hidden, stochastic duration —
// this is the profiling overhead the paper corrects for. The profiler
// records only a zero-width marker saying "book-keeping of kind K happened
// here"; it does not know its own true cost, exactly like the real system.
// Calibration (internal/calib) estimates mean costs from repeated runs and
// correction subtracts mean×count at the marked points.
//
// # A note on uninstrumented runs
//
// In the real system an uninstrumented run produces no trace, only a total
// runtime. In this simulation events are always collected (collection itself
// is free; only modelled book-keeping costs inflate the clock), which gives
// tests access to ground truth. Calibration code restricts itself to the
// information the paper's calibration would have: total runtimes, counts,
// and per-API durations measured under interception.
package profiler

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cuda"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// OverheadModel is the hidden true cost of each book-keeping path. The
// defaults are modelled on the magnitudes the paper reports (per-event
// microsecond-scale costs that accumulate into up to 90% runtime inflation
// for transition-heavy workloads).
type OverheadModel struct {
	// Annotation is the cost of recording one operation start or end.
	Annotation vclock.Dist
	// Interception is the cost of one Python↔native crossing hook.
	Interception vclock.Dist
	// CUDAIntercept is the cost of librlscope's hook around one CUDA API
	// call.
	CUDAIntercept vclock.Dist
	// CUPTI is the per-API inflation inside the CUDA library when CUPTI
	// activity collection is on.
	CUPTI map[string]vclock.Dist
}

// DefaultOverheads returns the standard overhead model. Python-level hooks
// are genuinely expensive (interpreted wrapper frames around every
// transition), which is what drives the paper's up-to-90% CPU-time
// inflation before correction.
func DefaultOverheads() OverheadModel {
	return OverheadModel{
		Annotation:    vclock.Jittered(3*vclock.Microsecond, 0.3),
		Interception:  vclock.Jittered(6*vclock.Microsecond, 0.3),
		CUDAIntercept: vclock.Jittered(3*vclock.Microsecond, 0.3),
		CUPTI:         cuda.CUPTIInflation(),
	}
}

// Options configures a Profiler run.
type Options struct {
	// Workload labels the run in trace metadata.
	Workload string
	// Host names the machine this run records on (trace.Meta.Host).
	Host string
	// Flags selects which book-keeping paths are enabled.
	Flags trace.FeatureFlags
	// Overheads is the hidden true cost model; zero value uses defaults.
	Overheads OverheadModel
	// Seed drives all stochastic costs in the run.
	Seed int64
}

// Profiler owns one profiled run across one or more simulated processes.
type Profiler struct {
	opts Options

	mu       sync.Mutex
	sessions []*Session
	nextProc trace.ProcID
}

// New creates a profiler for one run.
func New(opts Options) *Profiler {
	if opts.Overheads.Annotation.Mean == 0 && opts.Overheads.Interception.Mean == 0 &&
		opts.Overheads.CUDAIntercept.Mean == 0 && opts.Overheads.CUPTI == nil {
		opts.Overheads = DefaultOverheads()
	}
	return &Profiler{opts: opts}
}

// Flags returns the run's feature flags.
func (p *Profiler) Flags() trace.FeatureFlags { return p.opts.Flags }

// NewProcess creates the recording session for one simulated process.
// parent is the forking process's ID, or -1 for the root. The new process's
// clock starts at the given time (fork semantics: the child inherits the
// parent's current time).
func (p *Profiler) NewProcess(name string, parent trace.ProcID, start vclock.Time) *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextProc
	p.nextProc++
	s := &Session{
		prof:      p,
		proc:      id,
		name:      name,
		parent:    parent,
		clock:     vclock.NewAt(start, p.opts.Seed+int64(id)*7919),
		rootStart: start,
		counts:    map[trace.OverheadKind]int{},
		ovrng:     rand.New(rand.NewSource(p.opts.Seed + 104729 + int64(id)*7919)),
	}
	p.sessions = append(p.sessions, s)
	return s
}

// Trace assembles the full run trace across all sessions. Sessions must be
// closed first.
func (p *Profiler) Trace() (*trace.Trace, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := &trace.Trace{
		Meta: trace.Meta{
			Workload: p.opts.Workload,
			Host:     p.opts.Host,
			Config:   p.opts.Flags,
			Procs:    map[trace.ProcID]trace.ProcInfo{},
		},
	}
	for _, s := range p.sessions {
		if !s.closed {
			return nil, fmt.Errorf("profiler: session %q (proc %d) not closed", s.name, s.proc)
		}
		t.Meta.Procs[s.proc] = trace.ProcInfo{Name: s.name, Parent: s.parent}
		t.Events = append(t.Events, s.events...)
	}
	t.Sort()
	return t, nil
}

// MustTrace is Trace but panics on error; used by experiment harnesses where
// an unclosed session is a programming bug.
func (p *Profiler) MustTrace() *trace.Trace {
	t, err := p.Trace()
	if err != nil {
		panic(err)
	}
	return t
}

// WriteTo persists the run's trace to dir with the chunked asynchronous
// trace writer (paper Appendix A.1). Sessions must be closed first.
func (p *Profiler) WriteTo(dir string) error {
	t, err := p.Trace()
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(dir, 0)
	if err != nil {
		return err
	}
	w.Append(t.Events...)
	return w.Close(t.Meta)
}

// WriteToSink persists the run's trace through an arbitrary chunk sink —
// the same chunked delivery as WriteTo, but with the destination abstracted
// so a workload can stream its trace over HTTP into a live rlscope-serve
// store (client.Sink) instead of writing a local directory. Sessions must
// be closed first.
func (p *Profiler) WriteToSink(sink trace.Sink) error {
	t, err := p.Trace()
	if err != nil {
		return err
	}
	w := trace.NewSinkWriter(sink, 0)
	w.Append(t.Events...)
	return w.Close(t.Meta)
}

// OverheadCounts sums book-keeping occurrence counts across sessions —
// the denominators for delta calibration.
func (p *Profiler) OverheadCounts() map[trace.OverheadKind]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := map[trace.OverheadKind]int{}
	for _, s := range p.sessions {
		for k, n := range s.counts {
			out[k] += n
		}
	}
	return out
}

// TotalTime returns the maximum clock time across sessions — the run's
// total training time as a wall-clock observer would see it.
func (p *Profiler) TotalTime() vclock.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var end vclock.Time
	for _, s := range p.sessions {
		if t := s.clock.Now(); t > end {
			end = t
		}
	}
	return vclock.Duration(end)
}
