package profiler

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Session is the per-process recording context. It implements cuda.Recorder
// so the simulated CUDA runtime can emit events and book-keeping through it,
// and it provides the user-facing annotation and interception APIs.
//
// A Session is confined to its process's goroutine, like the thread-local
// state of the real profiler.
type Session struct {
	prof   *Profiler
	proc   trace.ProcID
	name   string
	parent trace.ProcID
	clock  *vclock.Clock

	events    []trace.Event
	rootStart vclock.Time
	closed    bool

	phase      string
	phaseStart vclock.Time

	opDepth int

	counts map[trace.OverheadKind]int

	// ovrng draws book-keeping costs. It is separate from the clock's
	// cost-jitter stream so that enabling or disabling profiler features
	// leaves the workload's own cost draws bit-identical — the
	// determinism assumption delta calibration relies on (paper
	// Appendix C.1 footnote: "ML code is designed to be deterministic
	// given the same random seed").
	ovrng *rand.Rand
}

// Proc returns the session's process ID.
func (s *Session) Proc() trace.ProcID { return s.proc }

// Name returns the process name.
func (s *Session) Name() string { return s.name }

// Clock returns the process's virtual clock.
func (s *Session) Clock() *vclock.Clock { return s.clock }

// Emit records one event into the session buffer.
func (s *Session) Emit(e trace.Event) {
	s.events = append(s.events, e)
}

// Overhead executes one occurrence of profiler book-keeping: if the feature
// is enabled, it emits a zero-width marker and advances the clock by the
// hidden true cost. Disabled features cost nothing and leave no marker —
// exactly the behaviour delta calibration exploits.
func (s *Session) Overhead(kind trace.OverheadKind, name string) {
	flags := s.prof.opts.Flags
	var dist vclock.Dist
	switch kind {
	case trace.OverheadAnnotation:
		if !flags.Annotations {
			return
		}
		dist = s.prof.opts.Overheads.Annotation
	case trace.OverheadInterception:
		if !flags.Interception {
			return
		}
		dist = s.prof.opts.Overheads.Interception
	case trace.OverheadCUDAIntercept:
		if !flags.CUDAIntercept {
			return
		}
		dist = s.prof.opts.Overheads.CUDAIntercept
	case trace.OverheadCUPTI:
		if !flags.CUPTI {
			return
		}
		dist = s.prof.opts.Overheads.CUPTI[name]
	default:
		panic(fmt.Sprintf("profiler: unknown overhead kind %v", kind))
	}
	s.counts[kind]++
	now := s.clock.Now()
	s.Emit(trace.Event{
		Kind:     trace.KindOverhead,
		Overhead: kind,
		Proc:     s.proc,
		Start:    now,
		End:      now,
		Name:     name,
	})
	s.clock.Advance(dist.Sample(s.ovrng))
}

// Transition records one language-transition marker at the current instant.
func (s *Session) Transition(label string) {
	now := s.clock.Now()
	s.Emit(trace.Event{
		Kind:  trace.KindTransition,
		Proc:  s.proc,
		Start: now,
		End:   now,
		Name:  label,
	})
}

// SetPhase starts a new training phase, closing the previous one (paper
// §3.1: rls.set_phase).
func (s *Session) SetPhase(name string) {
	s.closePhase()
	s.phase = name
	s.phaseStart = s.clock.Now()
}

func (s *Session) closePhase() {
	if s.phase == "" {
		return
	}
	s.Emit(trace.Event{
		Kind:  trace.KindPhase,
		Proc:  s.proc,
		Start: s.phaseStart,
		End:   s.clock.Now(),
		Name:  s.phase,
	})
	s.phase = ""
}

// Op is an open operation annotation; End closes it. Operations nest
// arbitrarily (paper §3.1: nested `with rls.operation(...)` blocks).
type Op struct {
	s     *Session
	name  string
	start vclock.Time
	done  bool
}

// Operation opens a high-level algorithmic operation annotation.
func (s *Session) Operation(name string) *Op {
	s.Overhead(trace.OverheadAnnotation, name)
	s.opDepth++
	return &Op{s: s, name: name, start: s.clock.Now()}
}

// End closes the operation, emitting its annotation event. Calling End twice
// panics: it indicates a structurally broken workload script.
func (o *Op) End() {
	if o.done {
		panic(fmt.Sprintf("profiler: operation %q ended twice", o.name))
	}
	o.done = true
	o.s.opDepth--
	o.s.Emit(trace.Event{
		Kind:  trace.KindOp,
		Proc:  o.s.proc,
		Start: o.start,
		End:   o.s.clock.Now(),
		Name:  o.name,
	})
	o.s.Overhead(trace.OverheadAnnotation, o.name)
}

// WithOperation runs fn inside an operation annotation.
func (s *Session) WithOperation(name string, fn func()) {
	op := s.Operation(name)
	defer op.End()
	fn()
}

// Python models high-level driver work: it spends virtual time that the
// overlap analysis will attribute to the Python tier (no native event is
// active during it).
func (s *Session) Python(d vclock.Dist) {
	s.clock.Spend(d)
}

// CallSimulator wraps one call into a simulator native library: it records
// the Python→Simulator transition, pays interception book-keeping on entry
// and exit, and emits a Simulator CPU event spanning the body.
func (s *Session) CallSimulator(name string, fn func()) {
	s.nativeCall(trace.CatSimulator, trace.TransPythonToSimulator, name, fn)
}

// CallBackend wraps one call into the ML backend's native library.
func (s *Session) CallBackend(name string, fn func()) {
	s.nativeCall(trace.CatBackend, trace.TransPythonToBackend, name, fn)
}

func (s *Session) nativeCall(cat trace.Category, transition, name string, fn func()) {
	s.Transition(transition)
	// Overhead markers carry the transition label rather than the call
	// name so that validation reports (Figure 11) can split interception
	// overhead into Python↔Backend vs Python↔Simulator stacks.
	s.Overhead(trace.OverheadInterception, transition)
	start := s.clock.Now()
	fn()
	end := s.clock.Now()
	s.Emit(trace.Event{
		Kind:  trace.KindCPU,
		Cat:   cat,
		Proc:  s.proc,
		Start: start,
		End:   end,
		Name:  name,
	})
	s.Overhead(trace.OverheadInterception, transition)
}

// NetSend models transmitting one cross-host message: serialization and
// socket-write time on the sending CPU, recorded as a Network CPU event
// named "net.send:<msgID>". The message id must be globally unique and
// match the receiver's NetRecv id — multihost.Merge pairs the two events
// by id to estimate inter-host clock offsets. Returns the local
// send-completion time (the instant the message is on the wire).
func (s *Session) NetSend(msgID string, cost vclock.Dist) vclock.Time {
	start := s.clock.Now()
	s.clock.Spend(cost)
	end := s.clock.Now()
	s.Emit(trace.Event{
		Kind:  trace.KindCPU,
		Cat:   trace.CatNetwork,
		Proc:  s.proc,
		Start: start,
		End:   end,
		Name:  "net.send:" + msgID,
	})
	return end
}

// NetRecv models receiving the message msgID: the receiving CPU blocks
// until the message is available locally (readyAt, on this session's
// clock), then pays deserialization cost. The whole span — wait plus
// deserialize — is one Network CPU event named "net.recv:<msgID>", which
// is exactly the network-wait time the merged breakdown reports.
func (s *Session) NetRecv(msgID string, readyAt vclock.Time, cost vclock.Dist) {
	start := s.clock.Now()
	if readyAt > start {
		s.clock.AdvanceTo(readyAt)
	}
	s.clock.Spend(cost)
	s.Emit(trace.Event{
		Kind:  trace.KindCPU,
		Cat:   trace.CatNetwork,
		Proc:  s.proc,
		Start: start,
		End:   s.clock.Now(),
		Name:  "net.recv:" + msgID,
	})
}

// Close finalizes the session: it closes any open phase and emits the root
// Python CPU event spanning the process lifetime. The root event makes the
// overlap analysis attribute all time not spent in native libraries to the
// Python tier, which is how the real profiler derives Python time from
// transition timestamps.
func (s *Session) Close() {
	if s.closed {
		return
	}
	if s.opDepth != 0 {
		panic(fmt.Sprintf("profiler: session %q closed with %d open operations", s.name, s.opDepth))
	}
	s.closePhase()
	s.Emit(trace.Event{
		Kind:  trace.KindCPU,
		Cat:   trace.CatPython,
		Proc:  s.proc,
		Start: s.rootStart,
		End:   s.clock.Now(),
		Name:  "python",
	})
	s.closed = true
}

// OverheadCounts returns this session's book-keeping occurrence counts.
func (s *Session) OverheadCounts() map[trace.OverheadKind]int {
	out := make(map[trace.OverheadKind]int, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Elapsed returns the process's current total runtime.
func (s *Session) Elapsed() vclock.Duration {
	return vclock.Duration(s.clock.Now() - s.rootStart)
}
