package experiments

import "testing"

// TestStreamReplayFindings asserts the streaming extension's claims: the
// chunked replay reproduces the materialized analysis exactly while keeping
// peak residency strictly below both the budget's materialized footprint
// and the trace size.
func TestStreamReplayFindings(t *testing.T) {
	r, err := StreamReplay(Options{Steps: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("streamed breakdown differs from materialized analysis")
	}
	if r.Chunks < 2 {
		t.Fatalf("trace produced %d chunks; streaming needs several", r.Chunks)
	}
	if r.Stats.PeakResidentEvents >= r.Events {
		t.Fatalf("peak resident %d events not below trace size %d", r.Stats.PeakResidentEvents, r.Events)
	}
	if r.Stats.Events != r.Events {
		t.Fatalf("streamed %d events, trace has %d", r.Stats.Events, r.Events)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
