package experiments

import (
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/analysis"
	"repro/internal/minigo"
	"repro/internal/trace"
)

// StreamReplayResult reports the streaming-replay extension: the paper's
// multi-process Minigo trace spilled to its chunked on-disk format, then
// analyzed by the bounded-memory streaming engine and checked against the
// materialized analysis.
type StreamReplayResult struct {
	// Events and Chunks describe the on-disk trace.
	Events, Chunks int
	// MaxResidentBytes is the streaming budget used.
	MaxResidentBytes int64
	// Stats is the streaming engine's own account of the run.
	Stats analysis.StreamStats
	// Identical reports whether the streamed breakdown matched the
	// materialized engine breakdown exactly.
	Identical bool
	// MaterializedBytes estimates the resident footprint of the
	// load-then-analyze path: every decoded event at once.
	MaterializedBytes int64
}

// StreamReplay runs the streaming-ingestion extension experiment: profile
// the Minigo scale-up pipeline (the repo's largest multi-process trace),
// write it through the chunked asynchronous writer exactly as rlscope-prof
// does, then replay the directory through analysis.RunStream under a memory
// budget of about 1/8th of the materialized trace and verify the breakdown
// is byte-identical to the load-then-analyze path.
func StreamReplay(opts Options) (*StreamReplayResult, error) {
	cfg := minigo.DefaultConfig()
	cfg.Seed = opts.Seed + 21
	if opts.Steps > 0 {
		cfg.MaxMovesPerGame = opts.Steps
	}
	res, err := minigo.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}
	tr := res.Trace

	dir, err := os.MkdirTemp("", "rlscope-stream-replay-")
	if err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}
	defer os.RemoveAll(dir)
	w, err := trace.NewWriter(dir, 1<<16)
	if err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}

	var materialized int64
	for _, e := range tr.Events {
		materialized += int64(trace.EventBytes(e))
	}
	budget := materialized / 8

	r, err := trace.OpenDir(dir)
	if err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}
	streamed, stats, err := analysis.RunStreamContext(opts.ctx(), r, analysis.Options{
		Workers: 0, MaxResidentBytes: budget,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}
	want, err := analysis.RunContext(opts.ctx(), tr, analysis.Options{Workers: 0})
	if err != nil {
		return nil, fmt.Errorf("experiments: stream replay: %w", err)
	}

	return &StreamReplayResult{
		Events:            len(tr.Events),
		Chunks:            w.ChunksWritten(),
		MaxResidentBytes:  budget,
		Stats:             stats,
		Identical:         reflect.DeepEqual(streamed, want),
		MaterializedBytes: materialized,
	}, nil
}

// Render renders the streaming-replay result.
func (r *StreamReplayResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== Extension: streaming trace ingestion (bounded-memory replay of the Minigo scale-up trace) ==\n")
	fmt.Fprintf(&sb, "%-28s %d events in %d chunks (~%d KiB decoded)\n",
		"on-disk trace", r.Events, r.Chunks, r.MaterializedBytes>>10)
	fmt.Fprintf(&sb, "%-28s %d KiB\n", "memory budget", r.MaxResidentBytes>>10)
	fmt.Fprintf(&sb, "%-28s %d events (%d KiB), vs %d materialized\n",
		"peak resident", r.Stats.PeakResidentEvents, r.Stats.PeakResidentBytes>>10, r.Events)
	fmt.Fprintf(&sb, "%-28s %d window computations, %d early finalizations\n",
		"schedule", r.Stats.Shards, r.Stats.Evictions)
	fmt.Fprintf(&sb, "%-28s %v\n", "identical to materialized", r.Identical)
	sb.WriteString("chunked ingestion keeps analysis memory bounded while reproducing the exact breakdown\n")
	return sb.String()
}
