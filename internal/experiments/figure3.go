package experiments

import (
	"fmt"
	"strings"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Figure3Result holds the worked cross-stack overlap example of Figure 3.
type Figure3Result struct {
	// CPUMcts, CPUExpand and OverlapExpand are the three published sums.
	CPUMcts, CPUExpand, OverlapExpand vclock.Duration
	Res                               *overlap.Result
}

// Figure3 reconstructs the paper's Figure 3 trace — an mcts_tree_search
// operation containing two expand_leaf operations with two GPU kernels —
// and runs the overlap computation over it. The published sums are:
//
//	CPU, mcts_tree_search      = 1.25 ms
//	CPU, expand_leaf           = 0.79 ms
//	GPU, CPU, expand_leaf      = 1.70 ms
func Figure3() *Figure3Result {
	ms := func(f float64) vclock.Time { return vclock.Time(f * float64(vclock.Millisecond)) }
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: ms(0), End: ms(3.74), Name: "python"},
		{Kind: trace.KindOp, Start: ms(0), End: ms(3.74), Name: "mcts_tree_search"},
		{Kind: trace.KindOp, Start: ms(0.75), End: ms(2.10), Name: "expand_leaf"},
		{Kind: trace.KindOp, Start: ms(2.60), End: ms(3.74), Name: "expand_leaf"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(1.05), End: ms(1.90), Name: "expand"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(2.75), End: ms(3.60), Name: "expand"},
	}
	tr := &trace.Trace{Events: events, Meta: trace.Meta{Workload: "figure3"}}
	res := analyzeMain(tr)
	return &Figure3Result{
		CPUMcts:       res.Dur("mcts_tree_search", overlap.ResCPU, trace.CatPython),
		CPUExpand:     res.Dur("expand_leaf", overlap.ResCPU, trace.CatPython),
		OverlapExpand: res.Dur("expand_leaf", overlap.ResCPU|overlap.ResGPU, trace.CatPython),
		Res:           res,
	}
}

// Render renders Figure 3's sums beside the paper's values.
func (r *Figure3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("== Figure 3: cross-stack event overlap (worked example) ==\n")
	row := func(label string, got vclock.Duration, paper string) {
		fmt.Fprintf(&sb, "%-28s measured=%-10s paper=%s\n", label, got, paper)
	}
	row("CPU, mcts_tree_search", r.CPUMcts, "1.25 ms")
	row("CPU, expand_leaf", r.CPUExpand, "0.79 ms")
	row("GPU, CPU, expand_leaf", r.OverlapExpand, "1.7 ms")
	return sb.String()
}
