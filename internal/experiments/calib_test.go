package experiments

import (
	"math"
	"testing"

	"repro/internal/cuda"
)

func TestFigure9DeltaCalibration(t *testing.T) {
	r, err := Figure9(Options{Steps: 300, Seed: 3})
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if r.HookTotal <= r.BaseTotal {
		t.Fatal("enabling interception did not inflate runtime")
	}
	if r.Count == 0 || r.MeanOverhead <= 0 {
		t.Fatalf("degenerate calibration: count=%d mean=%v", r.Count, r.MeanOverhead)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFigure10DifferenceOfAverage(t *testing.T) {
	r, err := Figure10(Options{Steps: 300, Seed: 3})
	if err != nil {
		t.Fatalf("Figure10: %v", err)
	}
	launch := r.Row(cuda.APILaunchKernel)
	memcpy := r.Row(cuda.APIMemcpyAsync)
	if launch == nil || memcpy == nil {
		t.Fatal("missing API rows")
	}
	// The paper's worked example: launch inflation (≈3 µs) exceeds
	// memcpy inflation (≈1 µs).
	if launch.InflationPerCall <= memcpy.InflationPerCall {
		t.Fatalf("launch inflation %v should exceed memcpy inflation %v",
			launch.InflationPerCall, memcpy.InflationPerCall)
	}
	if launch.MeanWithCUPTI <= launch.MeanWithoutCUPTI {
		t.Fatal("CUPTI did not inflate launch duration")
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFigure11CorrectionWithinBound(t *testing.T) {
	r, err := Figure11(Options{Steps: 400, Seed: 3})
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	vs := append(r.ByAlgorithm, r.BySimulator...)
	if len(vs) != 8 {
		t.Fatalf("validation rows = %d, want 8", len(vs))
	}
	for _, v := range vs {
		if bias := math.Abs(v.Bias()); bias > 0.16 {
			t.Errorf("%s correction bias %.1f%% exceeds the paper's ±16%% bound", v.Workload, 100*bias)
		}
		if infl := v.RawInflation(); infl < 1.05 {
			t.Errorf("%s raw inflation %.2fx; instrumentation should measurably inflate", v.Workload, infl)
		}
		if v.Corrected >= v.Instrumented {
			t.Errorf("%s corrected (%v) not below instrumented (%v)", v.Workload, v.Corrected, v.Instrumented)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestAppendixC4UncorrectedAnalysisDistorts(t *testing.T) {
	r, err := AppendixC4(Options{Steps: 300, Seed: 3})
	if err != nil {
		t.Fatalf("AppendixC4: %v", err)
	}
	// Skipping correction inflates the CUDA:GPU ratio (paper 3.6→5.7x).
	if r.CUDAToGPURatioUncorrected <= r.CUDAToGPURatioCorrected {
		t.Errorf("uncorrected CUDA/GPU ratio (%.1f) should exceed corrected (%.1f)",
			r.CUDAToGPURatioUncorrected, r.CUDAToGPURatioCorrected)
	}
	if r.TotalInflation < 1.1 {
		t.Errorf("total inflation %.2fx, want well above 1 (paper 1.6–2.2x)", r.TotalInflation)
	}
	// Uncorrected analysis overstates Backend time in both operations —
	// the distortion behind Appendix C.4's bottleneck shift. (The exact
	// inference↔backprop ranking flip the paper sees needs non-uniform
	// per-call backend costs; see EXPERIMENTS.md.)
	if r.BackendInferenceUncorrected <= r.BackendInferenceCorrected {
		t.Errorf("uncorrected inference backend time (%v) not above corrected (%v)",
			r.BackendInferenceUncorrected, r.BackendInferenceCorrected)
	}
	if r.BackendBackpropUncorrected <= r.BackendBackpropCorrected {
		t.Errorf("uncorrected backprop backend time (%v) not above corrected (%v)",
			r.BackendBackpropUncorrected, r.BackendBackpropCorrected)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
