package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// calibSpec is the reference workload for the calibration illustrations.
func calibSpec(opts Options) workloads.Spec {
	return workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
		TotalSteps: opts.steps(400), Seed: opts.Seed + 5,
	}
}

// Figure9Result holds the delta-calibration illustration: enabling one
// book-keeping path (the CUDA API interception hook) and dividing the
// runtime delta by the occurrence count.
type Figure9Result struct {
	BaseTotal, HookTotal vclock.Duration
	Count                int
	MeanOverhead         vclock.Duration
}

// Figure9 reproduces the delta-calibration example (paper Figure 9 /
// Appendix C.1). The two feature-flag replays are independent and run
// concurrently.
func Figure9(opts Options) (*Figure9Result, error) {
	run := workloads.Runner(calibSpec(opts))
	base, hooked, err := runPair(opts.ctx(),
		func() (*calib.RunStats, error) { return run(trace.Uninstrumented(), opts.Seed+11) },
		func() (*calib.RunStats, error) { return run(trace.FeatureFlags{CUDAIntercept: true}, opts.Seed+11) },
	)
	if err != nil {
		return nil, err
	}
	count := hooked.OverheadCounts[trace.OverheadCUDAIntercept]
	var mean vclock.Duration
	if count > 0 {
		d := hooked.Total - base.Total
		if d < 0 {
			d = 0
		}
		mean = d / vclock.Duration(count)
	}
	return &Figure9Result{
		BaseTotal: base.Total, HookTotal: hooked.Total,
		Count: count, MeanOverhead: mean,
	}, nil
}

// Render renders Figure 9.
func (r *Figure9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("== Figure 9: delta calibration of CUDA API interception ==\n")
	fmt.Fprintf(&sb, "interception disabled: total = %v\n", r.BaseTotal)
	fmt.Fprintf(&sb, "interception enabled:  total = %v\n", r.HookTotal)
	fmt.Fprintf(&sb, "Δ = %v over %d CUDA API calls → mean overhead %v/call\n",
		r.HookTotal-r.BaseTotal, r.Count, r.MeanOverhead)
	return sb.String()
}

// Figure10Row is one API's difference-of-average calibration.
type Figure10Row struct {
	API              string
	MeanWithoutCUPTI vclock.Duration
	MeanWithCUPTI    vclock.Duration
	InflationPerCall vclock.Duration
}

// Figure10Result holds the difference-of-average illustration.
type Figure10Result struct {
	Rows []Figure10Row
}

// Figure10 reproduces the difference-of-average calibration example (paper
// Figure 10 / Appendix C.2): CUPTI inflates each CUDA API by a different
// amount, measured as the difference of per-API mean durations with and
// without CUPTI enabled.
func Figure10(opts Options) (*Figure10Result, error) {
	run := workloads.Runner(calibSpec(opts))
	without, with, err := runPair(opts.ctx(),
		func() (*calib.RunStats, error) { return run(trace.FeatureFlags{CUDAIntercept: true}, opts.Seed+13) },
		func() (*calib.RunStats, error) {
			return run(trace.FeatureFlags{CUDAIntercept: true, CUPTI: true}, opts.Seed+13)
		},
	)
	if err != nil {
		return nil, err
	}
	out := &Figure10Result{}
	var apis []string
	for api := range with.APICount {
		apis = append(apis, api)
	}
	sort.Strings(apis)
	for _, api := range apis {
		w, wo := with.APIMean(api), without.APIMean(api)
		infl := w - wo
		if infl < 0 {
			infl = 0
		}
		out.Rows = append(out.Rows, Figure10Row{
			API: api, MeanWithoutCUPTI: wo, MeanWithCUPTI: w, InflationPerCall: infl,
		})
	}
	return out, nil
}

// Row returns the named API's row, or nil.
func (r *Figure10Result) Row(api string) *Figure10Row {
	for i := range r.Rows {
		if r.Rows[i].API == api {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render renders Figure 10.
func (r *Figure10Result) Render() string {
	var sb strings.Builder
	sb.WriteString("== Figure 10: difference-of-average calibration of CUPTI inflation ==\n")
	fmt.Fprintf(&sb, "%-24s %-14s %-14s %s\n", "CUDA API", "mean w/o CUPTI", "mean w/ CUPTI", "inflation/call")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-24s %-14s %-14s %s\n",
			row.API, row.MeanWithoutCUPTI, row.MeanWithCUPTI, row.InflationPerCall)
	}
	sb.WriteString("paper example: cudaLaunchKernel ≈3 µs/call, cudaMemcpyAsync ≈1 µs/call\n")
	return sb.String()
}

// Figure11Result holds the overhead-correction validation across workloads.
type Figure11Result struct {
	// ByAlgorithm (Figure 11a): PPO2, A2C, SAC, DDPG on Walker2D.
	ByAlgorithm []*calib.ValidationResult
	// BySimulator (Figure 11b): PPO2 on Hopper, Ant, HalfCheetah, Pong.
	BySimulator []*calib.ValidationResult
}

// Figure11 validates overhead correction: for each workload, calibrate,
// run uninstrumented and fully instrumented, correct, and compare (paper
// Figure 11 / Appendix C.3; the paper reports |bias| ≤ 16%). The eight
// workload validations — each a full calibrate/run/correct cycle — are the
// most expensive harness in the repo and run concurrently on the pool.
func Figure11(opts Options) (*Figure11Result, error) {
	steps := opts.steps(400)
	algos := []string{"PPO2", "A2C", "SAC", "DDPG"}
	envs := []string{"Hopper", "Ant", "HalfCheetah", "Pong"}
	out := &Figure11Result{
		ByAlgorithm: make([]*calib.ValidationResult, len(algos)),
		BySimulator: make([]*calib.ValidationResult, len(envs)),
	}
	validate := func(algo, env string) (*calib.ValidationResult, error) {
		spec := workloads.Spec{
			Algo: algo, Env: env, Model: backend.Graph, TotalSteps: steps,
		}
		return calib.Validate(fmt.Sprintf("(%s, %s)", algo, env),
			workloads.Runner(spec), opts.Seed+17, opts.Seed+1017)
	}
	err := forEach(opts.ctx(), len(algos)+len(envs), func(i int) error {
		if i < len(algos) {
			v, err := validate(algos[i], "Walker2D")
			if err != nil {
				return fmt.Errorf("experiments: figure 11a %s: %w", algos[i], err)
			}
			out.ByAlgorithm[i] = v
			return nil
		}
		env := envs[i-len(algos)]
		v, err := validate("PPO2", env)
		if err != nil {
			return fmt.Errorf("experiments: figure 11b %s: %w", env, err)
		}
		out.BySimulator[i-len(algos)] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render renders Figure 11.
func (r *Figure11Result) Render() string {
	var sb strings.Builder
	section := func(title string, vs []*calib.ValidationResult) {
		fmt.Fprintf(&sb, "== %s ==\n", title)
		fmt.Fprintf(&sb, "%-24s %-12s %-12s %-12s %-8s %s\n",
			"workload", "uninstr.", "instr.", "corrected", "bias", "raw inflation")
		for _, v := range vs {
			fmt.Fprintf(&sb, "%-24s %-12s %-12s %-12s %+.1f%%  %.2fx\n",
				v.Workload, v.Uninstrumented, v.Instrumented, v.Corrected,
				100*v.Bias(), v.RawInflation())
		}
	}
	section("Figure 11a: correction validation by algorithm (Walker2D)", r.ByAlgorithm)
	section("Figure 11b: correction validation by simulator (PPO2)", r.BySimulator)
	sb.WriteString("paper: corrected bias within ±16%; raw inflation 1.6–2.2x\n")
	return sb.String()
}

// C4Result quantifies what skipping overhead correction would do to the
// paper's analyses (Appendix C.4).
type C4Result struct {
	// CUDAToGPURatioCorrected and ...Uncorrected compare the paper's F.8
	// metric (CPU-side CUDA API time : GPU kernel time) with and without
	// correction. The paper reports 3.6× corrected vs 5.7× uncorrected.
	CUDAToGPURatioCorrected, CUDAToGPURatioUncorrected float64
	// TotalInflation is instrumented/uninstrumented total runtime (paper:
	// 1.6–2.2×).
	TotalInflation float64
	// Corrected/Uncorrected backend time per operation for the
	// bottleneck-shift check (TF Eager DDPG: inference vs
	// backpropagation).
	BackendInferenceCorrected, BackendBackpropCorrected     vclock.Duration
	BackendInferenceUncorrected, BackendBackpropUncorrected vclock.Duration
}

// AppendixC4 re-runs the TF Eager DDPG workload with full instrumentation
// and compares corrected against uncorrected analyses.
func AppendixC4(opts Options) (*C4Result, error) {
	spec := workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.EagerTF,
		TotalSteps: opts.steps(300),
	}
	runner := workloads.Runner(spec)
	cal, err := calib.Calibrate(runner, opts.Seed+23)
	if err != nil {
		return nil, err
	}
	// The uninstrumented and fully instrumented validation replays are
	// independent and run concurrently.
	base, full, err := runPair(opts.ctx(),
		func() (*calib.RunStats, error) { return runner(trace.Uninstrumented(), opts.Seed+1023) },
		func() (*calib.RunStats, error) { return runner(trace.Full(), opts.Seed+1023) },
	)
	if err != nil {
		return nil, err
	}
	corrected := analyzeMain(calib.Correct(full.Trace, cal))
	uncorrected := analyzeMain(full.Trace)

	ratio := func(res *overlap.Result) float64 {
		var cudaTime, gpuTime vclock.Duration
		for _, op := range res.OpNames() {
			cudaTime += res.CategoryCPUTime(op, trace.CatCUDA)
			gpuTime += res.GPUTime(op)
		}
		if gpuTime == 0 {
			return 0
		}
		return cudaTime.Seconds() / gpuTime.Seconds()
	}
	return &C4Result{
		CUDAToGPURatioCorrected:     ratio(corrected),
		CUDAToGPURatioUncorrected:   ratio(uncorrected),
		TotalInflation:              float64(full.Total) / float64(base.Total),
		BackendInferenceCorrected:   corrected.CategoryCPUTime(workloads.OpInference, trace.CatBackend),
		BackendBackpropCorrected:    corrected.CategoryCPUTime(workloads.OpBackpropagation, trace.CatBackend),
		BackendInferenceUncorrected: uncorrected.CategoryCPUTime(workloads.OpInference, trace.CatBackend),
		BackendBackpropUncorrected:  uncorrected.CategoryCPUTime(workloads.OpBackpropagation, trace.CatBackend),
	}, nil
}

// Render renders the Appendix C.4 comparison.
func (r *C4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("== Appendix C.4: effect of skipping overhead correction (TF Eager DDPG) ==\n")
	fmt.Fprintf(&sb, "CUDA-API : GPU-kernel time ratio  corrected=%.1fx  uncorrected=%.1fx (paper: 3.6x → 5.7x)\n",
		r.CUDAToGPURatioCorrected, r.CUDAToGPURatioUncorrected)
	fmt.Fprintf(&sb, "total training-time inflation     %.2fx (paper: 1.6–2.2x)\n", r.TotalInflation)
	fmt.Fprintf(&sb, "Backend time, corrected:   inference=%v backprop=%v\n",
		r.BackendInferenceCorrected, r.BackendBackpropCorrected)
	fmt.Fprintf(&sb, "Backend time, uncorrected: inference=%v backprop=%v\n",
		r.BackendInferenceUncorrected, r.BackendBackpropUncorrected)
	return sb.String()
}
