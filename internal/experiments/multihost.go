package experiments

// The multihost metric bundle backs hypothesis D.multihost-merge: a
// distributed actor/learner run merges into one causally-ordered trace
// byte-deterministically (any input-dir permutation yields the same
// DirDigest), the merged analysis equals the per-host analyses stitched
// with analysis.MergeResult, the trace-only clock-offset recovery lands
// within a round-trip of the injected ground-truth skews, and network
// wait is a visible share of the merged breakdown.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/multihost"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

func multihostMetrics(opts Options) (map[string]float64, error) {
	spec := workloads.DistributedSpec{
		Actors: 3, Algo: "DDPG", Env: "Hopper", Model: backend.EagerPyTorch,
		TotalSteps: opts.steps(200), Seed: opts.Seed,
	}
	runs, err := workloads.RunDistributed(spec, trace.Full())
	if err != nil {
		return nil, fmt.Errorf("experiments: multihost: %w", err)
	}

	root, err := os.MkdirTemp("", "rlscope-hyp-multihost-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	dirs := make([]string, len(runs))
	for i, r := range runs {
		dirs[i] = filepath.Join(root, r.Host)
		w, err := trace.NewWriter(dirs[i], 0, trace.WithFormat(trace.FormatV2))
		if err != nil {
			return nil, err
		}
		w.Append(r.Trace.Events...)
		if err := w.Close(r.Trace.Meta); err != nil {
			return nil, err
		}
	}

	// Merge once in manifest order and once with the input dirs reversed;
	// a deterministic merge writes byte-identical directories.
	statsA, err := multihost.Merge(filepath.Join(root, "merged-a"), dirs, multihost.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: multihost: merge: %w", err)
	}
	rev := make([]string, len(dirs))
	for i, d := range dirs {
		rev[len(dirs)-1-i] = d
	}
	statsB, err := multihost.Merge(filepath.Join(root, "merged-b"), rev, multihost.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: multihost: permuted merge: %w", err)
	}
	identical := boolMetric(statsA.Digest == statsB.Digest)

	merged, err := trace.ReadDir(filepath.Join(root, "merged-a"))
	if err != nil {
		return nil, err
	}
	mergedRes := analysis.Run(merged, analysis.Options{Workers: 1})

	// Stitch exactness: for every host, merging that host's per-proc
	// results out of the merged analysis must reproduce the standalone
	// per-host analysis exactly (durations and transition counts).
	stitchExact := 1.0
	for hi, r := range runs {
		hostIdx := hi
		for j, h := range statsA.Hosts {
			if h == r.Host {
				hostIdx = j
			}
		}
		standalone := newGroupResult()
		for _, res := range analysis.Run(r.Trace, analysis.Options{Workers: 1}) {
			analysis.MergeResult(standalone, res)
		}
		group := newGroupResult()
		for p, res := range mergedRes {
			if int(p)/multihost.ProcStride == hostIdx {
				analysis.MergeResult(group, res)
			}
		}
		if !reflect.DeepEqual(group.ByKey, standalone.ByKey) ||
			!reflect.DeepEqual(group.Transitions, standalone.Transitions) {
			stitchExact = 0
		}
	}

	// Offset recovery: relative applied shifts vs the injected skews.
	skews := map[string]vclock.Duration{}
	for _, r := range runs {
		skews[r.Host] = r.Skew
	}
	ref := statsA.Hosts[0]
	var offErr vclock.Duration
	for _, h := range statsA.Hosts {
		got := statsA.Offsets[h] - statsA.Offsets[ref]
		want := skews[ref] - skews[h]
		if d := got - want; d > offErr {
			offErr = d
		} else if -d > offErr {
			offErr = -d
		}
	}

	var net, total vclock.Duration
	for _, res := range mergedRes {
		net += res.TotalCategoryCPUTime(trace.CatNetwork)
		total += res.Total()
	}
	networkFrac := 0.0
	if total > 0 {
		networkFrac = net.Seconds() / total.Seconds()
	}

	return map[string]float64{
		"identical":     identical,
		"stitch_exact":  stitchExact,
		"offset_err_ms": float64(offErr) / float64(vclock.Millisecond),
		"network_frac":  networkFrac,
		"messages":      float64(statsA.Messages),
		"hosts":         float64(len(statsA.Hosts)),
	}, nil
}

func newGroupResult() *overlap.Result {
	return &overlap.Result{
		ByKey:       map[overlap.Key]vclock.Duration{},
		Transitions: map[overlap.TransitionKey]int{},
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
