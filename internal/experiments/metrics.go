package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// This file exposes every experiment as a structured metric bundle — a flat
// name → scalar map computed at one ⟨experiment, steps, seed⟩ grid cell —
// so the hypothesis harness (internal/hypothesis) can evaluate the paper's
// findings F.1–F.12 and the repo's own scaling claims declaratively instead
// of through hand-written test assertions. All bundles except the two
// timing ones (sweepscale, servecache) measure the simulated clock and are
// byte-deterministic per cell.

// MetricExperiments lists the bundle ids Metrics accepts. The servecache
// timing bundle lives in internal/hypmetrics — internal/serve depends on
// the root rlscope package, whose tests import this package, so it cannot
// be computed here without an import cycle.
var MetricExperiments = []string{
	"table1", "fig3", "fig4", "fig5", "fig7", "fig8",
	"scaling", "stream", "seedrepro", "sweepscale", "multihost",
}

// Metrics computes the named experiment's metric bundle. The bundle names
// are stable: the committed hypothesis grid references them.
func Metrics(ctx context.Context, experiment string, steps int, seed int64) (map[string]float64, error) {
	opts := Options{Steps: steps, Seed: seed, Context: ctx}
	switch experiment {
	case "table1":
		return table1Metrics(), nil
	case "fig3":
		return fig3Metrics(), nil
	case "fig4":
		return fig4Metrics(opts)
	case "fig5":
		return fig5Metrics(opts)
	case "fig7":
		return fig7Metrics(opts)
	case "fig8":
		return fig8Metrics(opts)
	case "scaling":
		return scalingMetrics(opts)
	case "stream":
		return streamMetrics(opts)
	case "seedrepro":
		return seedReproMetrics(opts)
	case "sweepscale":
		return sweepScaleMetrics(opts)
	case "multihost":
		return multihostMetrics(opts)
	}
	return nil, fmt.Errorf("experiments: unknown metric experiment %q (have %s)",
		experiment, strings.Join(MetricExperiments, ","))
}

// modelKey is the stable short name metric bundles use for an execution
// model.
func modelKey(m backend.ExecModel) string {
	switch m {
	case backend.Graph:
		return "graph"
	case backend.Autograph:
		return "autograph"
	case backend.EagerTF:
		return "eager_tf"
	case backend.EagerPyTorch:
		return "eager_pt"
	}
	return "unknown"
}

func table1Metrics() map[string]float64 {
	rows := Table1()
	want := map[string]string{
		"stable-baselines": "TensorFlow 2.2.0",
		"ReAgent":          "PyTorch 1.6.0",
	}
	match := 1.0
	for _, r := range rows {
		if b, ok := want[r.Framework]; ok && r.Backend != b {
			match = 0
		}
	}
	rendered := 0.0
	if RenderTable1() != "" {
		rendered = 1
	}
	return map[string]float64{
		"rows":          float64(len(rows)),
		"backend_match": match,
		"rendered":      rendered,
	}
}

func fig3Metrics() map[string]float64 {
	r := Figure3()
	ms := func(d vclock.Duration) float64 { return float64(d) / float64(vclock.Millisecond) }
	return map[string]float64{
		"cpu_mcts_ms":       ms(r.CPUMcts),
		"cpu_expand_ms":     ms(r.CPUExpand),
		"overlap_expand_ms": ms(r.OverlapExpand),
	}
}

// pythonInfBp is F.2's metric: Python CPU time inside inference and
// backpropagation.
func pythonInfBp(res *overlap.Result) float64 {
	return (res.CategoryCPUTime(workloads.OpInference, trace.CatPython) +
		res.CategoryCPUTime(workloads.OpBackpropagation, trace.CatPython)).Seconds()
}

func fig4Metrics(opts Options) (map[string]float64, error) {
	r, err := Figure4(opts)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	var cudaRatios []float64
	gpuMin, gpuMax := 1.0, 0.0
	forEntry := func(e *Figure4Entry) {
		key := e.Algo + "/" + modelKey(e.Model)
		m["total/"+key] = e.Total.Seconds()
		m["python_infbp/"+key] = pythonInfBp(e.Res)
		m["simpy/"+key] = e.Res.CategoryCPUTime(workloads.OpSimulation, trace.CatPython).Seconds()
		m["backprop/"+key] = e.Res.OpTotal(workloads.OpBackpropagation).Seconds()
		m["inf_backend/"+key] = e.Res.CategoryCPUTime(workloads.OpInference, trace.CatBackend).Seconds()
		m["trans_pb/"+key] = float64(e.Res.TotalTransitions(trace.TransPythonToBackend))
		m["trans_pb_inf/"+key] = float64(e.Res.TransitionCount(workloads.OpInference, trace.TransPythonToBackend))
		m["trans_pb_bp/"+key] = float64(e.Res.TransitionCount(workloads.OpBackpropagation, trace.TransPythonToBackend))
		frac := e.GPUFraction()
		m["gpufrac/"+key] = frac
		if frac < gpuMin {
			gpuMin = frac
		}
		if frac > gpuMax {
			gpuMax = frac
		}
		var cudaTime, gpuTime vclock.Duration
		for _, op := range e.Res.OpNames() {
			cudaTime += e.Res.CategoryCPUTime(op, trace.CatCUDA)
			gpuTime += e.Res.GPUTime(op)
		}
		if gpuTime > 0 {
			cudaRatios = append(cudaRatios, cudaTime.Seconds()/gpuTime.Seconds())
		}
	}
	for i := range r.TD3 {
		forEntry(&r.TD3[i])
	}
	for i := range r.DDPG {
		forEntry(&r.DDPG[i])
	}
	m["gpufrac/min"], m["gpufrac/max"] = gpuMin, gpuMax
	cudaMin, cudaSum := 0.0, 0.0
	for i, x := range cudaRatios {
		if i == 0 || x < cudaMin {
			cudaMin = x
		}
		cudaSum += x
	}
	if n := len(cudaRatios); n > 0 {
		m["cuda_gpu/avg"] = cudaSum / float64(n)
		m["cuda_gpu/min"] = cudaMin
	}
	m["bp_ratio/TD3"] = m["backprop/TD3/graph"] / m["backprop/TD3/autograph"]
	m["bp_ratio/DDPG"] = m["backprop/DDPG/graph"] / m["backprop/DDPG/autograph"]

	// The paper's F.5 confirmation run: DDPG's consecutive-simulator-steps
	// hyperparameter raised to TD3's 1000, removing the Autograph
	// loop-entry inflation.
	res, _, err := runUninstrumented(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Autograph,
		TotalSteps: opts.steps(2000), Seed: opts.Seed + 1, CollectStepsOverride: 1000,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4 metrics (DDPG@1000): %w", err)
	}
	m["simpy_fixed/DDPG"] = res.CategoryCPUTime(workloads.OpSimulation, trace.CatPython).Seconds()
	return m, nil
}

func fig5Metrics(opts Options) (map[string]float64, error) {
	r, err := Figure5(opts)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	minOn, maxOff := 1.0, 0.0
	opGPUMax, cpuShareMin := 0.0, 1.0
	for _, a := range figure5Algos {
		e := r.Entry(a.Name)
		frac := e.SimulationFraction()
		m["simfrac/"+a.Name] = frac
		if a.OnPolicy && frac < minOn {
			minOn = frac
		}
		if !a.OnPolicy && frac > maxOff {
			maxOff = frac
		}
		for _, op := range []string{workloads.OpInference, workloads.OpBackpropagation} {
			if total := e.Res.OpTotal(op); total > 0 {
				if share := e.Res.GPUTime(op).Seconds() / total.Seconds(); share > opGPUMax {
					opGPUMax = share
				}
			}
		}
		if cpu := 1 - e.GPUFraction(); cpu < cpuShareMin {
			cpuShareMin = cpu
		}
	}
	m["simfrac_on/min"] = minOn
	m["simfrac_off/max"] = maxOff
	m["op_gpu_share/max"] = opGPUMax
	m["cpu_share/min"] = cpuShareMin
	return m, nil
}

func fig7Metrics(opts Options) (map[string]float64, error) {
	r, err := Figure7(opts)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	lowMedSimMin, lowMedGPUMax := 1.0, 0.0
	mujocoMax := 0.0
	for i := range r.Entries {
		e := &r.Entries[i]
		frac := e.SimulationFraction()
		m["simfrac/"+e.Env] = frac
		if e.Env == "AirLearning" {
			continue
		}
		if frac < lowMedSimMin {
			lowMedSimMin = frac
		}
		if g := e.GPUFraction(); g > lowMedGPUMax {
			lowMedGPUMax = g
		}
		switch e.Env {
		case "Hopper", "HalfCheetah", "Walker2D":
			if frac > mujocoMax {
				mujocoMax = frac
			}
		}
	}
	m["simfrac_lowmed/min"] = lowMedSimMin
	m["gpufrac_lowmed/max"] = lowMedGPUMax
	m["simfrac_mujoco/max"] = mujocoMax
	return m, nil
}

func fig8Metrics(opts Options) (map[string]float64, error) {
	r, err := Figure8(opts)
	if err != nil {
		return nil, err
	}
	workerGPUFrac := 0.0
	if r.MaxWorkerTotal > 0 {
		workerGPUFrac = r.MaxWorkerGPU.Seconds() / r.MaxWorkerTotal.Seconds()
	}
	return map[string]float64{
		"sampled_util":    r.SampledUtil,
		"true_util":       r.TrueUtil,
		"worker_gpu_frac": workerGPUFrac,
	}, nil
}

func scalingMetrics(opts Options) (map[string]float64, error) {
	r, err := Figure8Scaling(opts)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	for _, pt := range r.Points {
		m[fmt.Sprintf("sampled_util/%d", pt.Workers)] = pt.SampledUtil
		m[fmt.Sprintf("worker_gpu_frac/%d", pt.Workers)] = pt.WorkerGPUFrac
	}
	return m, nil
}

func streamMetrics(opts Options) (map[string]float64, error) {
	r, err := StreamReplay(opts)
	if err != nil {
		return nil, err
	}
	identical := 0.0
	if r.Identical {
		identical = 1
	}
	return map[string]float64{
		"identical":              identical,
		"peak_over_budget":       float64(r.Stats.PeakResidentBytes) / float64(r.MaxResidentBytes),
		"peak_over_materialized": float64(r.Stats.PeakResidentBytes) / float64(r.MaterializedBytes),
	}, nil
}

// seedReproMetrics checks the determinism foundation the statistical
// machinery rests on: a workload replayed at the same seed writes a
// byte-identical trace directory (same DirDigest), and a different seed
// does not.
func seedReproMetrics(opts Options) (map[string]float64, error) {
	steps := opts.steps(300)
	digest := func(seed int64) (string, error) {
		stats, err := workloads.Run(workloads.Spec{
			Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
			TotalSteps: steps, Seed: seed,
		}, trace.Uninstrumented())
		if err != nil {
			return "", err
		}
		dir, err := os.MkdirTemp("", "rlscope-hyp-seedrepro-")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
		w, err := trace.NewWriter(dir, 1<<16)
		if err != nil {
			return "", err
		}
		w.Append(stats.Trace.Events...)
		if err := w.Close(stats.Trace.Meta); err != nil {
			return "", err
		}
		return trace.DirDigest(dir)
	}
	a, err := digest(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: seedrepro: %w", err)
	}
	b, err := digest(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: seedrepro: %w", err)
	}
	c, err := digest(opts.Seed + 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: seedrepro: %w", err)
	}
	return map[string]float64{
		"same_seed_identical": boolMetric(a == b),
		"diff_seed_differs":   boolMetric(a != c),
	}, nil
}

// sweepScaleMetrics measures the incremental overlap sweep's scaling shape
// (PR 3's claim): doubling a deep-nesting trace should roughly double the
// sweep's wall time (O(n log n)), where the retained O(n·depth) reference
// implementation would quadruple it. Host wall-clock time — a timing
// bundle.
func sweepScaleMetrics(opts Options) (map[string]float64, error) {
	n := opts.steps(6000)
	if n < 2000 {
		n = 2000
	}
	small := sweepStressEvents(n, 80)
	large := sweepStressEvents(2*n, 80)
	tSmall, err := minSweepTime(opts.ctx(), small)
	if err != nil {
		return nil, err
	}
	tLarge, err := minSweepTime(opts.ctx(), large)
	if err != nil {
		return nil, err
	}
	return map[string]float64{
		"t2n_over_tn": tLarge.Seconds() / tSmall.Seconds(),
	}, nil
}

// sweepStressEvents builds the deep-nesting stress trace (pyramids of
// nested CPU/op events with staggered GPU activity — the regime where the
// pre-incremental sweep was quadratic in depth).
func sweepStressEvents(total, depth int) []trace.Event {
	cpuCats := []trace.Category{
		trace.CatPython, trace.CatSimulator, trace.CatBackend, trace.CatCUDA,
	}
	perPyramid := depth + depth/2 + depth/2
	pyramids := total / perPyramid
	if pyramids < 1 {
		pyramids = 1
	}
	width := vclock.Time(4 * depth)
	var events []trace.Event
	for p := 0; p < pyramids; p++ {
		base := vclock.Time(p) * width
		for j := 0; j < depth; j++ {
			events = append(events, trace.Event{
				Kind: trace.KindCPU, Cat: cpuCats[j%len(cpuCats)],
				Start: base + vclock.Time(j), End: base + width - vclock.Time(j),
				Name: "cpu",
			})
		}
		for j := 0; j < depth/2; j++ {
			events = append(events, trace.Event{
				Kind:  trace.KindOp,
				Start: base + vclock.Time(2*j), End: base + width - vclock.Time(2*j),
				Name: "op",
			})
		}
		for j := 0; j < depth/2; j++ {
			cat := trace.CatGPUKernel
			if j%2 == 1 {
				cat = trace.CatGPUMemcpy
			}
			events = append(events, trace.Event{
				Kind: trace.KindGPU, Cat: cat,
				Start: base + vclock.Time(j), End: base + width/2 + vclock.Time(j),
				Name: "k",
			})
		}
	}
	return events
}

// minSweepTime returns the minimum wall time of the incremental sweep over
// several repetitions — min-of-K, like benchgate, to shed scheduler noise.
func minSweepTime(ctx context.Context, events []trace.Event) (time.Duration, error) {
	const reps = 5
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		start := time.Now()
		res := overlap.Compute(events)
		elapsed := time.Since(start)
		if len(res.ByKey) == 0 {
			return 0, fmt.Errorf("experiments: sweepscale: empty sweep result")
		}
		if i == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}
