// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each harness runs the
// relevant workloads, computes RL-Scope's cross-stack analysis, and returns
// both structured results (asserted by findings_test.go) and text renderings
// (printed by cmd/rlscope-experiments).
//
// Figure-generating harnesses run workloads uninstrumented: in this
// simulation an uninstrumented trace is exactly what a perfectly corrected
// instrumented trace estimates, so the figures show ground truth while the
// calibration experiments (Figures 9–11, Appendix C.4) exercise the
// correction machinery itself.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Options controls experiment scale. Zero values select per-figure defaults
// sized for the benchmark harness; tests use smaller step counts.
type Options struct {
	// Steps is the environment-step budget per workload.
	Steps int
	// Seed drives all randomness.
	Seed int64
}

func (o Options) steps(def int) int {
	if o.Steps > 0 {
		return o.Steps
	}
	return def
}

// runUninstrumented executes a workload spec and returns its overlap
// analysis and stats.
func runUninstrumented(spec workloads.Spec) (*overlap.Result, *calib.RunStats, error) {
	stats, err := workloads.Run(spec, trace.Uninstrumented())
	if err != nil {
		return nil, nil, err
	}
	return overlap.Compute(stats.Trace.ProcEvents(0)), stats, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Framework string
	ExecModel string
	Backend   string
}

// Table1 reproduces Table 1: the ⟨execution model, ML backend⟩ matrix.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, m := range []backend.ExecModel{
		backend.Graph, backend.Autograph, backend.EagerTF, backend.EagerPyTorch,
	} {
		rows = append(rows, Table1Row{
			Framework: m.Framework(),
			ExecModel: strings.TrimPrefix(strings.TrimPrefix(m.String(), "TensorFlow "), "PyTorch "),
			Backend:   m.BackendName(),
		})
	}
	return rows
}

// RenderTable1 renders Table 1 as text.
func RenderTable1() string {
	var sb strings.Builder
	sb.WriteString("== Table 1: RL frameworks (execution model × ML backend) ==\n")
	fmt.Fprintf(&sb, "%-18s %-12s %-18s\n", "RL framework", "Exec model", "ML backend")
	for _, r := range Table1() {
		fmt.Fprintf(&sb, "%-18s %-12s %-18s\n", r.Framework, r.ExecModel, r.Backend)
	}
	return sb.String()
}
