// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each harness runs the
// relevant workloads, computes RL-Scope's cross-stack analysis, and returns
// both structured results (asserted by findings_test.go) and text renderings
// (printed by cmd/rlscope-experiments).
//
// Figure-generating harnesses run workloads uninstrumented: in this
// simulation an uninstrumented trace is exactly what a perfectly corrected
// instrumented trace estimates, so the figures show ground truth while the
// calibration experiments (Figures 9–11, Appendix C.4) exercise the
// correction machinery itself.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Options controls experiment scale. Zero values select per-figure defaults
// sized for the benchmark harness; tests use smaller step counts.
type Options struct {
	// Steps is the environment-step budget per workload.
	Steps int
	// Seed drives all randomness.
	Seed int64
	// Context, when non-nil, cancels long experiment pipelines between
	// replay/analysis jobs — the CLI passes a SIGINT-driven context so
	// Ctrl-C interrupts a sweep cleanly. nil means context.Background().
	Context context.Context
}

func (o Options) steps(def int) int {
	if o.Steps > 0 {
		return o.Steps
	}
	return def
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// runUninstrumented executes a workload spec and returns its overlap
// analysis and stats. The analysis runs through the sharded engine with a
// single worker: figure harnesses parallelize across workload replays (the
// coarser, better-balanced grain), so per-trace shards stay inline.
func runUninstrumented(spec workloads.Spec) (*overlap.Result, *calib.RunStats, error) {
	stats, err := workloads.Run(spec, trace.Uninstrumented())
	if err != nil {
		return nil, nil, err
	}
	return analyzeMain(stats.Trace), stats, nil
}

// analyzeMain returns the main process's overlap breakdown, or an empty
// result for a trace with no process-0 events — analysis.Run only has
// entries for processes that appear in the trace.
func analyzeMain(tr *trace.Trace) *overlap.Result {
	if res := analysis.Run(tr, analysis.Options{Workers: 1})[0]; res != nil {
		return res
	}
	return overlap.Compute(nil)
}

// forEach fans n independent experiment jobs (workload replays, validation
// runs) out over the analysis engine's pool scheduler, stopping dispatch
// when ctx is cancelled. Each call spins up its own pool sized to the
// machine; pools are not shared across calls.
func forEach(ctx context.Context, n int, fn func(i int) error) error {
	return analysis.ForEachContext(ctx, 0, n, fn)
}

// runPair executes two independent workload replays concurrently — the
// calibration illustrations all compare a pair of runs under different
// feature flags.
func runPair(ctx context.Context, a, b func() (*calib.RunStats, error)) (*calib.RunStats, *calib.RunStats, error) {
	var ra, rb *calib.RunStats
	err := forEach(ctx, 2, func(i int) error {
		var err error
		if i == 0 {
			ra, err = a()
		} else {
			rb, err = b()
		}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return ra, rb, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Framework string
	ExecModel string
	Backend   string
}

// Table1 reproduces Table 1: the ⟨execution model, ML backend⟩ matrix.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, m := range []backend.ExecModel{
		backend.Graph, backend.Autograph, backend.EagerTF, backend.EagerPyTorch,
	} {
		rows = append(rows, Table1Row{
			Framework: m.Framework(),
			ExecModel: strings.TrimPrefix(strings.TrimPrefix(m.String(), "TensorFlow "), "PyTorch "),
			Backend:   m.BackendName(),
		})
	}
	return rows
}

// RenderTable1 renders Table 1 as text.
func RenderTable1() string {
	var sb strings.Builder
	sb.WriteString("== Table 1: RL frameworks (execution model × ML backend) ==\n")
	fmt.Fprintf(&sb, "%-18s %-12s %-18s\n", "RL framework", "Exec model", "ML backend")
	for _, r := range Table1() {
		fmt.Fprintf(&sb, "%-18s %-12s %-18s\n", r.Framework, r.ExecModel, r.Backend)
	}
	return sb.String()
}
