package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minigo"
	"repro/internal/nvsmi"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ScalingPoint is one worker-count configuration of the scale-up extension
// study.
type ScalingPoint struct {
	Workers int
	// SampledUtil is the nvidia-smi-style reading; TrueUtil the honest
	// duty cycle; WorkerGPUFrac the per-worker GPU share of runtime.
	SampledUtil, TrueUtil, WorkerGPUFrac float64
	// Span is the self-play phase extent.
	Span vclock.Duration
}

// ScalingResult holds the Minigo worker-scaling sweep.
type ScalingResult struct {
	Points []ScalingPoint
}

// Figure8Scaling extends the paper's scale-up case study along the axis its
// F.11 discussion names: "Scaling-up by running more workers can exacerbate
// this issue." It sweeps the self-play pool size and reports how sampled
// utilization saturates toward 100% while per-worker GPU usage stays flat —
// i.e. adding workers inflates the *metric* without making any worker more
// GPU-bound.
func Figure8Scaling(opts Options) (*ScalingResult, error) {
	poolSizes := []int{1, 2, 4, 8, 16}
	out := &ScalingResult{Points: make([]ScalingPoint, len(poolSizes))}
	// Each pool size is an independent Minigo pipeline run; the sweep's
	// configurations replay concurrently on the analysis pool.
	err := forEach(opts.ctx(), len(poolSizes), func(i int) error {
		workers := poolSizes[i]
		cfg := minigo.DefaultConfig()
		cfg.Seed = opts.Seed + 6
		cfg.Workers = workers
		cfg.MaxMovesPerGame = 20
		cfg.SimsPerMove = 16
		res, err := minigo.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: figure 8 scaling (%d workers): %w", workers, err)
		}
		period := vclock.Duration(res.SpanEnd-res.SpanStart) / 40
		rep := nvsmi.Sample(res.Busy, res.SpanStart, res.SpanEnd, period)
		// Sum in sorted process order: float addition is not
		// associative, so map-iteration order would make the fraction
		// differ in the last bits between runs.
		procs := make([]trace.ProcID, 0, len(res.WorkerTotal))
		for proc := range res.WorkerTotal {
			procs = append(procs, proc)
		}
		sort.Slice(procs, func(a, b int) bool { return procs[a] < procs[b] })
		var gpuFrac float64
		n := 0
		for _, proc := range procs {
			if total := res.WorkerTotal[proc]; total > 0 {
				gpuFrac += res.WorkerGPU[proc].Seconds() / total.Seconds()
				n++
			}
		}
		if n > 0 {
			gpuFrac /= float64(n)
		}
		out.Points[i] = ScalingPoint{
			Workers:       workers,
			SampledUtil:   rep.Utilization(),
			TrueUtil:      rep.TrueUtilization(),
			WorkerGPUFrac: gpuFrac,
			Span:          vclock.Duration(res.SpanEnd - res.SpanStart),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Point returns the entry for one worker count, or nil.
func (r *ScalingResult) Point(workers int) *ScalingPoint {
	for i := range r.Points {
		if r.Points[i].Workers == workers {
			return &r.Points[i]
		}
	}
	return nil
}

// Render renders the scaling sweep.
func (r *ScalingResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== Extension: Minigo self-play pool scaling (paper F.11's \"scaling-up exacerbates this issue\") ==\n")
	fmt.Fprintf(&sb, "%-9s %-14s %-12s %-12s %s\n",
		"workers", "nvidia-smi", "true util", "GPU/worker", "selfplay span")
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "%-9d %-14s %-12s %-12s %v\n",
			pt.Workers,
			fmt.Sprintf("%.0f%%", 100*pt.SampledUtil),
			fmt.Sprintf("%.2f%%", 100*pt.TrueUtil),
			fmt.Sprintf("%.2f%%", 100*pt.WorkerGPUFrac),
			pt.Span)
	}
	sb.WriteString("sampled utilization saturates with pool size while no worker gets more GPU-bound\n")
	return sb.String()
}
