package experiments

import (
	"fmt"
	"strings"

	"repro/internal/minigo"
	"repro/internal/nvsmi"
	"repro/internal/vclock"
)

// ScalingPoint is one worker-count configuration of the scale-up extension
// study.
type ScalingPoint struct {
	Workers int
	// SampledUtil is the nvidia-smi-style reading; TrueUtil the honest
	// duty cycle; WorkerGPUFrac the per-worker GPU share of runtime.
	SampledUtil, TrueUtil, WorkerGPUFrac float64
	// Span is the self-play phase extent.
	Span vclock.Duration
}

// ScalingResult holds the Minigo worker-scaling sweep.
type ScalingResult struct {
	Points []ScalingPoint
}

// Figure8Scaling extends the paper's scale-up case study along the axis its
// F.11 discussion names: "Scaling-up by running more workers can exacerbate
// this issue." It sweeps the self-play pool size and reports how sampled
// utilization saturates toward 100% while per-worker GPU usage stays flat —
// i.e. adding workers inflates the *metric* without making any worker more
// GPU-bound.
func Figure8Scaling(opts Options) (*ScalingResult, error) {
	out := &ScalingResult{}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		cfg := minigo.DefaultConfig()
		cfg.Seed = opts.Seed + 6
		cfg.Workers = workers
		cfg.MaxMovesPerGame = 20
		cfg.SimsPerMove = 16
		res, err := minigo.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 8 scaling (%d workers): %w", workers, err)
		}
		period := vclock.Duration(res.SpanEnd-res.SpanStart) / 40
		rep := nvsmi.Sample(res.Busy, res.SpanStart, res.SpanEnd, period)
		var gpuFrac float64
		n := 0
		for proc, total := range res.WorkerTotal {
			if total > 0 {
				gpuFrac += res.WorkerGPU[proc].Seconds() / total.Seconds()
				n++
			}
		}
		if n > 0 {
			gpuFrac /= float64(n)
		}
		out.Points = append(out.Points, ScalingPoint{
			Workers:       workers,
			SampledUtil:   rep.Utilization(),
			TrueUtil:      rep.TrueUtilization(),
			WorkerGPUFrac: gpuFrac,
			Span:          vclock.Duration(res.SpanEnd - res.SpanStart),
		})
	}
	return out, nil
}

// Point returns the entry for one worker count, or nil.
func (r *ScalingResult) Point(workers int) *ScalingPoint {
	for i := range r.Points {
		if r.Points[i].Workers == workers {
			return &r.Points[i]
		}
	}
	return nil
}

// Render renders the scaling sweep.
func (r *ScalingResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== Extension: Minigo self-play pool scaling (paper F.11's \"scaling-up exacerbates this issue\") ==\n")
	fmt.Fprintf(&sb, "%-9s %-14s %-12s %-12s %s\n",
		"workers", "nvidia-smi", "true util", "GPU/worker", "selfplay span")
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "%-9d %-14s %-12s %-12s %v\n",
			pt.Workers,
			fmt.Sprintf("%.0f%%", 100*pt.SampledUtil),
			fmt.Sprintf("%.2f%%", 100*pt.TrueUtil),
			fmt.Sprintf("%.2f%%", 100*pt.WorkerGPUFrac),
			pt.Span)
	}
	sb.WriteString("sampled utilization saturates with pool size while no worker gets more GPU-bound\n")
	return sb.String()
}
