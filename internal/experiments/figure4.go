package experiments

import (
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// Figure4Entry is one framework configuration's profile (one bar group of
// Figures 4a–4d).
type Figure4Entry struct {
	Algo  string
	Model backend.ExecModel
	Res   *overlap.Result
	Total vclock.Duration
}

// Figure4Result holds the full framework-comparison study.
type Figure4Result struct {
	TD3  []Figure4Entry // Figure 4a/4c: 4 configurations
	DDPG []Figure4Entry // Figure 4b/4d: 3 configurations (no ReAgent DDPG, as in the paper)
}

// td3Models lists Figure 4a's configurations in the paper's order.
var td3Models = []backend.ExecModel{
	backend.EagerPyTorch, backend.Autograph, backend.EagerTF, backend.Graph,
}

// ddpgModels lists Figure 4b's configurations.
var ddpgModels = []backend.ExecModel{
	backend.Autograph, backend.EagerTF, backend.Graph,
}

// Figure4 runs the framework comparison: identical algorithm (TD3/DDPG),
// simulator (Walker2D), and hyperparameters; only the RL framework's
// execution model and backend differ (paper §4.1). The seven configurations
// are independent replays, so they run concurrently on the analysis pool;
// each entry lands at its configuration's fixed slice position, keeping the
// result identical to a sequential sweep.
func Figure4(opts Options) (*Figure4Result, error) {
	steps := opts.steps(2000)
	out := &Figure4Result{
		TD3:  make([]Figure4Entry, len(td3Models)),
		DDPG: make([]Figure4Entry, len(ddpgModels)),
	}
	type job struct {
		figure string
		algo   string
		model  backend.ExecModel
		dst    *Figure4Entry
	}
	var jobs []job
	for i, m := range td3Models {
		jobs = append(jobs, job{"4a", "TD3", m, &out.TD3[i]})
	}
	for i, m := range ddpgModels {
		jobs = append(jobs, job{"4b", "DDPG", m, &out.DDPG[i]})
	}
	err := forEach(opts.ctx(), len(jobs), func(i int) error {
		j := jobs[i]
		res, stats, err := runUninstrumented(workloads.Spec{
			Algo: j.algo, Env: "Walker2D", Model: j.model,
			TotalSteps: steps, Seed: opts.Seed + 1,
		})
		if err != nil {
			return fmt.Errorf("experiments: figure %s %v: %w", j.figure, j.model, err)
		}
		*j.dst = Figure4Entry{Algo: j.algo, Model: j.model, Res: res, Total: stats.Total}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Entry returns the named configuration, or nil.
func (r *Figure4Result) Entry(algo string, model backend.ExecModel) *Figure4Entry {
	list := r.TD3
	if algo == "DDPG" {
		list = r.DDPG
	}
	for i := range list {
		if list[i].Model == model {
			return &list[i]
		}
	}
	return nil
}

// Render renders Figures 4a–4d as text tables.
func (r *Figure4Result) Render() string {
	var sb strings.Builder
	section := func(title string, entries []Figure4Entry) {
		var rows []*report.Breakdown
		var trows []report.TransitionRow
		for _, e := range entries {
			label := e.Model.String()
			ops := []string{
				workloads.OpBackpropagation, workloads.OpInference, workloads.OpSimulation,
			}
			rows = append(rows, report.FromResult(label, e.Res, ops))
			trows = append(trows, report.Transitions(label, e.Res, ops)...)
		}
		sb.WriteString(report.Table(title+" — time breakdown", rows))
		sb.WriteString(report.TransitionTable(title+" — language transitions", trows))
	}
	section("Figure 4a/4c: (TD3, Walker2D)", r.TD3)
	section("Figure 4b/4d: (DDPG, Walker2D)", r.DDPG)
	return sb.String()
}

// Figure5Result holds the RL-algorithm survey (Figure 5).
type Figure5Result struct {
	Entries []Figure4Entry // reuses the entry shape; Model is Graph for all
}

// figure5Algos lists the surveyed algorithms in the paper's order with
// their on/off-policy grouping.
var figure5Algos = []struct {
	Name     string
	OnPolicy bool
}{
	{"DDPG", false}, {"SAC", false}, {"A2C", true}, {"PPO2", true},
}

// Figure5 runs the algorithm survey: four algorithms on Walker2D under the
// stable-baselines (Graph) framework (paper §4.2). The surveyed algorithms
// replay concurrently on the analysis pool.
func Figure5(opts Options) (*Figure5Result, error) {
	steps := opts.steps(2000)
	out := &Figure5Result{Entries: make([]Figure4Entry, len(figure5Algos))}
	err := forEach(opts.ctx(), len(figure5Algos), func(i int) error {
		a := figure5Algos[i]
		res, stats, err := runUninstrumented(workloads.Spec{
			Algo: a.Name, Env: "Walker2D", Model: backend.Graph,
			TotalSteps: steps, Seed: opts.Seed + 2,
		})
		if err != nil {
			return fmt.Errorf("experiments: figure 5 %s: %w", a.Name, err)
		}
		out.Entries[i] = Figure4Entry{
			Algo: a.Name, Model: backend.Graph, Res: res, Total: stats.Total,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Entry returns the named algorithm's profile, or nil.
func (r *Figure5Result) Entry(algo string) *Figure4Entry {
	for i := range r.Entries {
		if r.Entries[i].Algo == algo {
			return &r.Entries[i]
		}
	}
	return nil
}

// SimulationFraction returns simulation time / total time for one entry.
func (e *Figure4Entry) SimulationFraction() float64 {
	if e.Res.Total() == 0 {
		return 0
	}
	return e.Res.OpTotal(workloads.OpSimulation).Seconds() / e.Res.Total().Seconds()
}

// GPUFraction returns device-busy time / total time.
func (e *Figure4Entry) GPUFraction() float64 {
	if e.Res.Total() == 0 {
		return 0
	}
	return e.Res.TotalGPUTime().Seconds() / e.Res.Total().Seconds()
}

// Render renders Figure 5.
func (r *Figure5Result) Render() string {
	var rows []*report.Breakdown
	for _, e := range r.Entries {
		kind := "Off-policy"
		for _, a := range figure5Algos {
			if a.Name == e.Algo && a.OnPolicy {
				kind = "On-policy"
			}
		}
		rows = append(rows, report.FromResult(
			fmt.Sprintf("%s (%s)", e.Algo, kind), e.Res,
			[]string{workloads.OpBackpropagation, workloads.OpInference, workloads.OpSimulation}))
	}
	return report.Table("Figure 5: algorithm choice (Walker2D, stable-baselines)", rows)
}
