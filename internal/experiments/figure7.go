package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/minigo"
	"repro/internal/nvsmi"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// RenderFigure6 renders the simulator-complexity taxonomy (Figure 6).
func RenderFigure6() string {
	var sb strings.Builder
	sb.WriteString("== Figure 6: RL simulators by computational complexity ==\n")
	fmt.Fprintf(&sb, "%-14s %-28s %s\n", "simulator", "domain", "complexity")
	for _, s := range sim.Taxonomy() {
		fmt.Fprintf(&sb, "%-14s %-28s %s\n", s.Name, s.Domain, s.Complexity)
	}
	return sb.String()
}

// Figure7Entry is one simulator's profile under PPO2.
type Figure7Entry struct {
	Env   string
	Res   *overlap.Result
	Total vclock.Duration
}

// Figure7Result holds the simulator survey.
type Figure7Result struct {
	Entries []Figure7Entry
}

// Figure7 runs the simulator survey: the top-performing on-policy algorithm
// (PPO2, per the paper's appendix B.1) across environments spanning the
// complexity axis. The environments replay concurrently on the analysis
// pool.
func Figure7(opts Options) (*Figure7Result, error) {
	steps := opts.steps(1024)
	out := &Figure7Result{Entries: make([]Figure7Entry, len(sim.SurveyNames))}
	err := forEach(opts.ctx(), len(sim.SurveyNames), func(i int) error {
		env := sim.SurveyNames[i]
		envSteps := steps
		if env == "AirLearning" {
			// The high-complexity simulator is 200× slower per
			// step; a reduced budget keeps the harness fast while
			// the breakdown shape is unchanged.
			envSteps = steps / 4
		}
		res, stats, err := runUninstrumented(workloads.Spec{
			Algo: "PPO2", Env: env, Model: backend.Graph,
			TotalSteps: envSteps, Seed: opts.Seed + 3,
		})
		if err != nil {
			return fmt.Errorf("experiments: figure 7 %s: %w", env, err)
		}
		out.Entries[i] = Figure7Entry{Env: env, Res: res, Total: stats.Total}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Entry returns the named environment's profile, or nil.
func (r *Figure7Result) Entry(env string) *Figure7Entry {
	for i := range r.Entries {
		if r.Entries[i].Env == env {
			return &r.Entries[i]
		}
	}
	return nil
}

// SimulationFraction returns simulation / total time.
func (e *Figure7Entry) SimulationFraction() float64 {
	if e.Res.Total() == 0 {
		return 0
	}
	return e.Res.OpTotal(workloads.OpSimulation).Seconds() / e.Res.Total().Seconds()
}

// GPUFraction returns device time / total time.
func (e *Figure7Entry) GPUFraction() float64 {
	if e.Res.Total() == 0 {
		return 0
	}
	return e.Res.TotalGPUTime().Seconds() / e.Res.Total().Seconds()
}

// Render renders Figure 7.
func (r *Figure7Result) Render() string {
	var rows []*report.Breakdown
	for _, e := range r.Entries {
		rows = append(rows, report.FromResult(e.Env, e.Res,
			[]string{workloads.OpBackpropagation, workloads.OpInference, workloads.OpSimulation}))
	}
	return report.Table("Figure 7: simulator choice (PPO2)", rows)
}

// Figure8Result holds the Minigo scale-up study.
type Figure8Result struct {
	Minigo *minigo.Result
	// SampledUtil is what an nvidia-smi-style monitor reports over the
	// self-play phase; TrueUtil is the honest duty cycle.
	SampledUtil, TrueUtil float64
	// MaxWorkerTotal and its GPU time are Figure 8's headline bars
	// (paper: 5080 s total vs 20 s GPU).
	MaxWorkerTotal, MaxWorkerGPU vclock.Duration
}

// Figure8 runs the Minigo pipeline with the paper's 16 self-play workers
// and contrasts RL-Scope's per-worker GPU execution time against sampled
// GPU utilization (paper §4.3, Appendix B.2).
func Figure8(opts Options) (*Figure8Result, error) {
	cfg := minigo.DefaultConfig()
	cfg.Seed = opts.Seed + 4
	if opts.Steps > 0 && opts.Steps < 500 {
		// Scale the pipeline down for constrained runs.
		cfg.Workers = 8
		cfg.MaxMovesPerGame = 20
		cfg.SimsPerMove = 16
	}
	res, err := minigo.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 8: %w", err)
	}
	// Sample-period scaling: the paper's 1/6 s period is ~1/30000 of its
	// hours-long runs; here the period is span/40, preserving the
	// "short kernel marks the whole period active" mechanism.
	period := vclock.Duration(res.SpanEnd-res.SpanStart) / 40
	rep := nvsmi.Sample(res.Busy, res.SpanStart, res.SpanEnd, period)
	out := &Figure8Result{
		Minigo:      res,
		SampledUtil: rep.Utilization(),
		TrueUtil:    rep.TrueUtilization(),
	}
	for proc, total := range res.WorkerTotal {
		if total > out.MaxWorkerTotal {
			out.MaxWorkerTotal = total
			out.MaxWorkerGPU = res.WorkerGPU[proc]
		}
	}
	return out, nil
}

// Render renders Figure 8 as text.
func (r *Figure8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("== Figure 8: Minigo multi-process view ==\n")
	sb.WriteString(report.ProcessTree(r.Minigo.Trace, analysis.Run(r.Minigo.Trace, analysis.Options{})))
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-22s %-12s %-12s %s\n", "process", "total", "GPU", "GPU%")
	for _, p := range r.Minigo.Trace.ProcIDs() {
		info := r.Minigo.Trace.Meta.Procs[p]
		if info.Parent < 0 {
			continue
		}
		total := r.Minigo.WorkerTotal[p]
		gpuT := r.Minigo.WorkerGPU[p]
		fmt.Fprintf(&sb, "%-22s %-12s %-12s %.2f%%\n",
			info.Name, total, gpuT, 100*gpuT.Seconds()/total.Seconds())
	}
	fmt.Fprintf(&sb, "\nnvidia-smi sampled utilization: %.0f%%\n", 100*r.SampledUtil)
	fmt.Fprintf(&sb, "true GPU duty cycle:            %.2f%%\n", 100*r.TrueUtil)
	fmt.Fprintf(&sb, "paper: workers ≤5080 s total, ~20 s GPU; nvidia-smi reads 100%%\n\n")
	// Per-process training phases (selfplay / sgd_updates / evaluation).
	names := map[trace.ProcID]string{}
	for p, info := range r.Minigo.Trace.Meta.Procs {
		names[p] = info.Name
	}
	sb.WriteString(report.PhaseTable("Minigo training phases", overlap.PhasesByProc(r.Minigo.Trace), names))
	return sb.String()
}
