package experiments

import (
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// The tests in this file assert the paper's findings F.1–F.12 hold in this
// reproduction. Absolute numbers differ from the paper (the substrate is a
// simulator, not the authors' testbed); what must hold is the shape: who
// wins, by roughly what factor, and where crossovers fall. Tolerances are
// deliberately loose where the paper itself reports ranges.

var fig4Cache *Figure4Result

func figure4(t *testing.T) *Figure4Result {
	t.Helper()
	if fig4Cache == nil {
		r, err := Figure4(Options{Steps: 2000, Seed: 1})
		if err != nil {
			t.Fatalf("Figure4: %v", err)
		}
		fig4Cache = r
	}
	return fig4Cache
}

var fig5Cache *Figure5Result

func figure5(t *testing.T) *Figure5Result {
	t.Helper()
	if fig5Cache == nil {
		r, err := Figure5(Options{Steps: 2000, Seed: 1})
		if err != nil {
			t.Fatalf("Figure5: %v", err)
		}
		fig5Cache = r
	}
	return fig5Cache
}

var fig7Cache *Figure7Result

func figure7(t *testing.T) *Figure7Result {
	t.Helper()
	if fig7Cache == nil {
		r, err := Figure7(Options{Steps: 1024, Seed: 1})
		if err != nil {
			t.Fatalf("Figure7: %v", err)
		}
		fig7Cache = r
	}
	return fig7Cache
}

func TestTable1HasFourFrameworks(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	want := map[string]string{
		"stable-baselines": "TensorFlow 2.2.0",
		"ReAgent":          "PyTorch 1.6.0",
	}
	for _, r := range rows {
		if b, ok := want[r.Framework]; ok && r.Backend != b {
			t.Fatalf("%s backend = %s, want %s", r.Framework, r.Backend, b)
		}
	}
	if RenderTable1() == "" {
		t.Fatal("empty render")
	}
}

func TestFigure3MatchesPaperExactly(t *testing.T) {
	r := Figure3()
	ms := func(f float64) vclock.Duration {
		return vclock.Duration(f * float64(vclock.Millisecond))
	}
	if r.CPUMcts != ms(1.25) {
		t.Errorf("CPU mcts_tree_search = %v, want 1.25ms", r.CPUMcts)
	}
	if r.CPUExpand != ms(0.79) {
		t.Errorf("CPU expand_leaf = %v, want 0.79ms", r.CPUExpand)
	}
	if r.OverlapExpand != ms(1.70) {
		t.Errorf("CPU+GPU expand_leaf = %v, want 1.70ms", r.OverlapExpand)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

// F.1: Eager execution is 1.9×–4.8× slower than both Autograph and Graph,
// while Graph and Autograph stay within ~20% of each other (TD3).
func TestF1EagerSlowdown(t *testing.T) {
	r := figure4(t)
	tfEager := r.Entry("TD3", backend.EagerTF).Total
	graph := r.Entry("TD3", backend.Graph).Total
	autograph := r.Entry("TD3", backend.Autograph).Total
	for _, base := range []vclock.Duration{graph, autograph} {
		ratio := float64(tfEager) / float64(base)
		if ratio < 1.9 || ratio > 6.0 {
			t.Errorf("TF Eager slowdown = %.2fx, want within [1.9, 6.0] (paper 1.9–4.8)", ratio)
		}
	}
	gap := math.Abs(float64(graph)-float64(autograph)) / math.Min(float64(graph), float64(autograph))
	if gap > 0.30 {
		t.Errorf("TD3 Graph vs Autograph gap = %.0f%%, paper reports within 19.7%%", 100*gap)
	}
}

// F.2: Autograph slashes Python time in inference/backprop relative to
// Graph by moving control flow in-graph.
func TestF2AutographReducesPythonTime(t *testing.T) {
	r := figure4(t)
	pythonTime := func(e *Figure4Entry) vclock.Duration {
		return e.Res.CategoryCPUTime(workloads.OpInference, trace.CatPython) +
			e.Res.CategoryCPUTime(workloads.OpBackpropagation, trace.CatPython)
	}
	for _, algo := range []string{"TD3", "DDPG"} {
		g := pythonTime(r.Entry(algo, backend.Graph))
		a := pythonTime(r.Entry(algo, backend.Autograph))
		if ratio := float64(g) / float64(a); ratio < 3 {
			t.Errorf("%s: Graph/Autograph python time = %.1fx, want > 3x (paper 4.4–13.5x)", algo, ratio)
		}
	}
	// Autograph backend-transition counts are near zero vs Graph/Eager.
	a := r.Entry("TD3", backend.Autograph).Res
	e := r.Entry("TD3", backend.EagerTF).Res
	if at, et := a.TotalTransitions(trace.TransPythonToBackend), e.TotalTransitions(trace.TransPythonToBackend); at*10 > et {
		t.Errorf("Autograph backend transitions (%d) not near-zero vs Eager (%d)", at, et)
	}
}

// F.3: PyTorch Eager is ~2.3× faster than TensorFlow Eager, explained by
// fewer Python→Backend transitions.
func TestF3PyTorchEagerVsTFEager(t *testing.T) {
	r := figure4(t)
	pt := r.Entry("TD3", backend.EagerPyTorch)
	tf := r.Entry("TD3", backend.EagerTF)
	ratio := float64(tf.Total) / float64(pt.Total)
	if ratio < 1.7 || ratio > 3.5 {
		t.Errorf("TF Eager / PyTorch Eager = %.2fx, want ~2.3x (±)", ratio)
	}
	ptInf := pt.Res.TransitionCount(workloads.OpInference, trace.TransPythonToBackend)
	tfInf := tf.Res.TransitionCount(workloads.OpInference, trace.TransPythonToBackend)
	if infRatio := float64(tfInf) / float64(ptInf); infRatio < 2 {
		t.Errorf("inference transition ratio TF/PT = %.1fx, want > 2 (paper 3.2x)", infRatio)
	}
	ptBp := pt.Res.TransitionCount(workloads.OpBackpropagation, trace.TransPythonToBackend)
	tfBp := tf.Res.TransitionCount(workloads.OpBackpropagation, trace.TransPythonToBackend)
	if bpRatio := float64(tfBp) / float64(ptBp); bpRatio < 1.3 {
		t.Errorf("backprop transition ratio TF/PT = %.1fx, want > 1.3 (paper 1.6x)", bpRatio)
	}
}

// F.4: stable-baselines DDPG's MPI-friendly Adam and fragmented session
// calls inflate Graph backpropagation ~3.7× over Autograph.
func TestF4MPIAdamInflatesDDPGGraphBackprop(t *testing.T) {
	r := figure4(t)
	g := r.Entry("DDPG", backend.Graph).Res.OpTotal(workloads.OpBackpropagation)
	a := r.Entry("DDPG", backend.Autograph).Res.OpTotal(workloads.OpBackpropagation)
	ratio := float64(g) / float64(a)
	if ratio < 2.0 || ratio > 6.0 {
		t.Errorf("DDPG Graph/Autograph backprop = %.1fx, want within [2, 6] (paper 3.7x)", ratio)
	}
	// TD3 (fused Adam in every framework) shows a much smaller gap.
	tg := r.Entry("TD3", backend.Graph).Res.OpTotal(workloads.OpBackpropagation)
	ta := r.Entry("TD3", backend.Autograph).Res.OpTotal(workloads.OpBackpropagation)
	tdRatio := float64(tg) / float64(ta)
	if tdRatio > ratio/1.3 {
		t.Errorf("TD3 backprop gap (%.1fx) should be far below DDPG's (%.1fx) — paper 1.2x vs 3.7x", tdRatio, ratio)
	}
}

// F.5: Autograph inflates simulation Python time when few consecutive
// simulator steps amortize the in-graph loop entry (DDPG's 100) and not
// when many do (TD3's 1000); raising DDPG's hyperparameter to 1000 removes
// the inflation.
func TestF5AutographLoopEntryAmortization(t *testing.T) {
	r := figure4(t)
	simPython := func(e *Figure4Entry) float64 {
		return e.Res.CategoryCPUTime(workloads.OpSimulation, trace.CatPython).Seconds()
	}
	ddpgInflation := simPython(r.Entry("DDPG", backend.Autograph)) /
		simPython(r.Entry("DDPG", backend.EagerTF))
	td3Inflation := simPython(r.Entry("TD3", backend.Autograph)) /
		simPython(r.Entry("TD3", backend.EagerTF))
	if ddpgInflation < 1.5 {
		t.Errorf("DDPG Autograph simulation-python inflation = %.2fx, want > 1.5 (paper 2.4x)", ddpgInflation)
	}
	if td3Inflation > 1.4 {
		t.Errorf("TD3 Autograph simulation-python inflation = %.2fx, want ~1.1x", td3Inflation)
	}
	// The paper's confirmation experiment: DDPG with 1000 steps/entry.
	res, _, err := runUninstrumented(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Autograph,
		TotalSteps: 2000, Seed: 2, CollectStepsOverride: 1000,
	})
	if err != nil {
		t.Fatalf("DDPG@1000: %v", err)
	}
	eager := simPython(r.Entry("DDPG", backend.EagerTF))
	fixed := res.CategoryCPUTime(workloads.OpSimulation, trace.CatPython).Seconds() / eager
	if fixed > 1.4 {
		t.Errorf("DDPG@1000 inflation = %.2fx, want ~1.1x (paper: drops to 1.1x)", fixed)
	}
}

// F.6: Autograph's inference Backend time is ~4× Graph's, without extra
// transitions — an anomaly inside the backend.
func TestF6AutographInferenceBackendAnomaly(t *testing.T) {
	r := figure4(t)
	for _, algo := range []string{"TD3", "DDPG"} {
		g := r.Entry(algo, backend.Graph)
		a := r.Entry(algo, backend.Autograph)
		gB := g.Res.CategoryCPUTime(workloads.OpInference, trace.CatBackend)
		aB := a.Res.CategoryCPUTime(workloads.OpInference, trace.CatBackend)
		if ratio := float64(aB) / float64(gB); ratio < 2 {
			t.Errorf("%s Autograph/Graph inference Backend time = %.1fx, want > 2 (paper 3.8–4.4x)", algo, ratio)
		}
		gT := g.Res.TransitionCount(workloads.OpInference, trace.TransPythonToBackend)
		aT := a.Res.TransitionCount(workloads.OpInference, trace.TransPythonToBackend)
		if aT > gT {
			t.Errorf("%s: anomaly must not come from transitions (autograph %d > graph %d)", algo, aT, gT)
		}
	}
}

// F.7: total GPU time is low (≤ ~14%) in every framework configuration.
func TestF7GPUTimeLowAcrossFrameworks(t *testing.T) {
	r := figure4(t)
	for _, entries := range [][]Figure4Entry{r.TD3, r.DDPG} {
		for _, e := range entries {
			if frac := e.GPUFraction(); frac > 0.141 {
				t.Errorf("%s %v GPU fraction = %.1f%%, paper caps at 14.1%%",
					e.Algo, e.Model, 100*frac)
			}
			if e.GPUFraction() <= 0 {
				t.Errorf("%s %v recorded no GPU time", e.Algo, e.Model)
			}
		}
	}
}

// F.8: CPU-side CUDA API time dominates GPU kernel time (paper: 3.6× on
// average).
func TestF8CUDAAPIDominatesGPUTime(t *testing.T) {
	r := figure4(t)
	var ratios []float64
	for _, entries := range [][]Figure4Entry{r.TD3, r.DDPG} {
		for _, e := range entries {
			var cudaTime, gpuTime vclock.Duration
			for _, op := range e.Res.OpNames() {
				cudaTime += e.Res.CategoryCPUTime(op, trace.CatCUDA)
				gpuTime += e.Res.GPUTime(op)
			}
			ratios = append(ratios, cudaTime.Seconds()/gpuTime.Seconds())
		}
	}
	var sum float64
	for _, x := range ratios {
		if x < 1.5 {
			t.Errorf("a framework has CUDA/GPU ratio %.1f; CUDA API time must dominate", x)
		}
		sum += x
	}
	avg := sum / float64(len(ratios))
	if avg < 2.5 || avg > 6.5 {
		t.Errorf("average CUDA/GPU ratio = %.1fx, want within [2.5, 6.5] (paper 3.6x)", avg)
	}
}

// F.9: even inference and backpropagation spend at most ~13% of their time
// executing GPU kernels; ~90% of every workload is CPU-bound.
func TestF9OperationsAreCPUBound(t *testing.T) {
	r := figure5(t)
	for _, e := range r.Entries {
		for _, op := range []string{workloads.OpInference, workloads.OpBackpropagation} {
			total := e.Res.OpTotal(op)
			gpuT := e.Res.GPUTime(op)
			if total == 0 {
				continue
			}
			frac := gpuT.Seconds() / total.Seconds()
			if frac > 0.135 {
				t.Errorf("%s %s GPU share = %.1f%%, paper caps at 12.9%%", e.Algo, op, 100*frac)
			}
		}
		if cpuShare := 1 - e.GPUFraction(); cpuShare < 0.85 {
			t.Errorf("%s CPU-bound share = %.0f%%, paper reports ~90%%", e.Algo, 100*cpuShare)
		}
	}
}

// F.10: on-policy algorithms are ≥3.5× more simulation-bound than
// off-policy algorithms.
func TestF10OnPolicyMoreSimulationBound(t *testing.T) {
	r := figure5(t)
	minOn, maxOff := 1.0, 0.0
	for _, a := range figure5Algos {
		frac := r.Entry(a.Name).SimulationFraction()
		if a.OnPolicy {
			if frac < minOn {
				minOn = frac
			}
		} else if frac > maxOff {
			maxOff = frac
		}
	}
	if ratio := minOn / maxOff; ratio < 3.5 {
		t.Errorf("on/off-policy simulation-bound ratio = %.1fx, paper reports ≥ 3.5x", ratio)
	}
	// A2C is the most simulation-bound, as in the paper (67%).
	if a2c := r.Entry("A2C").SimulationFraction(); a2c < 0.5 {
		t.Errorf("A2C simulation share = %.0f%%, paper reports 67%%", 100*a2c)
	}
}

// F.11: sampled GPU utilization reads ~100% in Minigo while per-worker GPU
// execution time is a tiny sliver of worker runtime.
func TestF11MinigoUtilizationMisleads(t *testing.T) {
	r, err := Figure8(Options{Steps: 100, Seed: 1}) // scaled-down pipeline
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if r.SampledUtil < 0.9 {
		t.Errorf("sampled utilization = %.0f%%, want ~100%%", 100*r.SampledUtil)
	}
	if frac := r.MaxWorkerGPU.Seconds() / r.MaxWorkerTotal.Seconds(); frac > 0.05 {
		t.Errorf("slowest worker GPU share = %.1f%%, want < 5%% (paper: 20s of 5080s)", 100*frac)
	}
	if r.TrueUtil > 0.5*r.SampledUtil {
		t.Errorf("true utilization %.1f%% too close to sampled %.0f%%",
			100*r.TrueUtil, 100*r.SampledUtil)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

// F.12: simulation is always a large bottleneck — ≥ ~38% of training time
// on every low/medium-complexity simulator, and ~99.6% on AirLearning.
func TestF12SimulationAlwaysLarge(t *testing.T) {
	r := figure7(t)
	for _, e := range r.Entries {
		frac := e.SimulationFraction()
		if e.Env == "AirLearning" {
			if frac < 0.97 {
				t.Errorf("AirLearning simulation share = %.1f%%, paper reports 99.6%%", 100*frac)
			}
			continue
		}
		if frac < 0.33 {
			t.Errorf("%s simulation share = %.0f%%, paper floor is 38.1%%", e.Env, 100*frac)
		}
		if g := e.GPUFraction(); g > 0.07 {
			t.Errorf("%s GPU share = %.1f%%, paper reports ≤5%% across simulators", e.Env, 100*g)
		}
	}
	// Pong's tuned config is the most simulation-bound of the
	// low/medium group (paper: 74.2%).
	pong := r.Entry("Pong").SimulationFraction()
	for _, env := range []string{"Hopper", "HalfCheetah", "Walker2D"} {
		if pong <= r.Entry(env).SimulationFraction() {
			t.Errorf("Pong (%.0f%%) should exceed %s (%.0f%%)", 100*pong, env,
				100*r.Entry(env).SimulationFraction())
		}
	}
}

// Extension of F.11: sampled utilization saturates as the self-play pool
// grows, while no individual worker becomes more GPU-bound.
func TestScalingExacerbatesUtilizationIllusion(t *testing.T) {
	r, err := Figure8Scaling(Options{Seed: 1})
	if err != nil {
		t.Fatalf("Figure8Scaling: %v", err)
	}
	one, sixteen := r.Point(1), r.Point(16)
	if one == nil || sixteen == nil {
		t.Fatal("missing scaling points")
	}
	if sixteen.SampledUtil < one.SampledUtil {
		t.Errorf("sampled utilization fell with more workers: %.2f → %.2f",
			one.SampledUtil, sixteen.SampledUtil)
	}
	if sixteen.SampledUtil < 0.9 {
		t.Errorf("16-worker sampled utilization %.0f%%, want ~100%%", 100*sixteen.SampledUtil)
	}
	// Per-worker GPU share stays flat (within 2x) regardless of pool size.
	ratio := sixteen.WorkerGPUFrac / one.WorkerGPUFrac
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("per-worker GPU share changed %.2fx with pool size; should stay flat", ratio)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	if figure4(t).Render() == "" || figure5(t).Render() == "" || figure7(t).Render() == "" {
		t.Fatal("empty figure render")
	}
	if RenderFigure6() == "" {
		t.Fatal("empty figure 6 render")
	}
}
