package experiments_test

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/hypmetrics"
	"repro/internal/hypothesis"
)

// The tests in this file assert the paper's findings F.1–F.12 hold in this
// reproduction. Since PR 6 the assertions live in the committed hypothesis
// grid (hypotheses.json, see DESIGN.md §10): each finding is a declarative
// hypothesis with per-seed conditions, and these tests require its verdict
// to be "confirmed". The grid, the CI gate (rlscope-hyp -gate) and this
// suite therefore stay in lockstep — a tolerance change happens in exactly
// one place. Absolute numbers differ from the paper (the substrate is a
// simulator, not the authors' testbed); what must hold is the shape: who
// wins, by roughly what factor, and where crossovers fall.

// gridEval evaluates the committed grid exactly once per test binary.
// sync.Once makes the shared state safe under t.Parallel and -shuffle —
// previously this file memoized figure results in unsynchronized package
// globals.
var gridEval struct {
	once sync.Once
	doc  *hypothesis.Document
	err  error
}

func evaluateGrid(t *testing.T) *hypothesis.Document {
	t.Helper()
	gridEval.once.Do(func() {
		grid, err := hypothesis.LoadGrid("../../hypotheses.json")
		if err != nil {
			gridEval.err = err
			return
		}
		// Timing hypotheses measure host wall-clock — meaningless under
		// a loaded test runner — and never gate; the CLI covers them.
		// hypmetrics is the full metric source (this external test
		// package may import it even though it depends on experiments),
		// so serve-side bundles like "ingest" evaluate here too.
		gridEval.doc, gridEval.err = hypothesis.NewEvaluator(hypmetrics.Metrics).
			Evaluate(grid, hypothesis.Options{Timing: false})
	})
	if gridEval.err != nil {
		t.Fatalf("evaluating hypothesis grid: %v", gridEval.err)
	}
	return gridEval.doc
}

// requireConfirmed asserts one hypothesis's verdict, dumping the full
// per-seed evidence on failure.
func requireConfirmed(t *testing.T, id string) {
	t.Helper()
	doc := evaluateGrid(t)
	for i := range doc.Results {
		r := &doc.Results[i]
		if r.ID != id {
			continue
		}
		if r.Verdict != hypothesis.Confirmed {
			evidence, _ := json.MarshalIndent(r, "", "  ")
			t.Errorf("%s (%s) verdict = %s, want confirmed\n%s", id, r.Title, r.Verdict, evidence)
		}
		return
	}
	t.Fatalf("hypothesis %s not in the evaluated grid", id)
}

func TestTable1HasFourFrameworks(t *testing.T)    { requireConfirmed(t, "D.table1") }
func TestFigure3MatchesPaperExactly(t *testing.T) { requireConfirmed(t, "D.fig3") }

// F.1: Eager execution is 1.9×–4.8× slower than both Autograph and Graph,
// while Graph and Autograph stay within ~20% of each other (TD3).
func TestF1EagerSlowdown(t *testing.T) { requireConfirmed(t, "F.1") }

// F.2: Autograph slashes Python time in inference/backprop relative to
// Graph, via near-zero Python→Backend transitions.
func TestF2AutographReducesPythonTime(t *testing.T) { requireConfirmed(t, "F.2") }

// F.3: PyTorch Eager is ~2.3× faster than TensorFlow Eager, explained by
// fewer backend transitions per training step.
func TestF3PyTorchEagerVsTFEager(t *testing.T) { requireConfirmed(t, "F.3") }

// F.4: stable-baselines DDPG's MPI-friendly Adam and fragmented session
// runs inflate Graph backprop; TD3's gap is far smaller.
func TestF4MPIAdamInflatesDDPGGraphBackprop(t *testing.T) { requireConfirmed(t, "F.4") }

// F.5: Autograph inflates simulation Python time when few consecutive
// steps amortize the loop-entry cost; longer collect phases fix it.
func TestF5AutographLoopEntryAmortization(t *testing.T) { requireConfirmed(t, "F.5") }

// F.6: Autograph's inference Backend time is ~4× Graph's, without extra
// transitions to explain it.
func TestF6AutographInferenceBackendAnomaly(t *testing.T) { requireConfirmed(t, "F.6") }

// F.7: total GPU time is low (≤ ~14%) in every framework configuration.
func TestF7GPUTimeLowAcrossFrameworks(t *testing.T) { requireConfirmed(t, "F.7") }

// F.8: CPU-side CUDA API time dominates GPU kernel time (paper: 3.6× on
// average).
func TestF8CUDAAPIDominatesGPUTime(t *testing.T) { requireConfirmed(t, "F.8") }

// F.9: even inference and backpropagation spend at most ~13% of their time
// on the GPU — RL operations are CPU-bound.
func TestF9OperationsAreCPUBound(t *testing.T) { requireConfirmed(t, "F.9") }

// F.10: on-policy algorithms are ≥3.5× more simulation-bound than
// off-policy ones.
func TestF10OnPolicyMoreSimulationBound(t *testing.T) { requireConfirmed(t, "F.10") }

// F.11: sampled GPU utilization reads ~100% in Minigo while per-worker GPU
// time is tiny — the utilization illusion.
func TestF11MinigoUtilizationMisleads(t *testing.T) { requireConfirmed(t, "F.11") }

// F.12: simulation is always a large bottleneck — ≥ ~38% of training time
// everywhere, ~99.6% in AirLearning.
func TestF12SimulationAlwaysLarge(t *testing.T) { requireConfirmed(t, "F.12") }

// Extension of F.11: sampled utilization saturates as the self-play pool
// grows, while no individual worker becomes more GPU-bound.
func TestScalingExacerbatesUtilizationIllusion(t *testing.T) {
	requireConfirmed(t, "R.scaling-illusion")
}

// Repo claims: bounded-memory streaming replay is exact, and same-seed
// workload replays are byte-identical on disk.
func TestStreamBoundedReplayExact(t *testing.T) { requireConfirmed(t, "D.stream-bounded") }
func TestSeedReproducibility(t *testing.T)      { requireConfirmed(t, "D.seed-repro") }

// TestGridHasNoSurpriseVerdicts pins the whole document: every non-timing
// hypothesis in the committed grid must be confirmed, so a newly added
// hypothesis cannot silently ride along refuted or inconclusive.
func TestGridHasNoSurpriseVerdicts(t *testing.T) {
	doc := evaluateGrid(t)
	for i := range doc.Results {
		r := &doc.Results[i]
		if r.Verdict != hypothesis.Confirmed {
			t.Errorf("%s verdict = %s, want confirmed", r.ID, r.Verdict)
		}
	}
	if n := doc.Summary[hypothesis.Confirmed]; n != len(doc.Results) {
		t.Errorf("summary counts %d confirmed of %d results", n, len(doc.Results))
	}
}

// The renders stay exercised at a small scale; the figures' numeric claims
// live in the grid above.
func TestRendersNonEmpty(t *testing.T) {
	f4, err := experiments.Figure4(experiments.Options{Steps: 200, Seed: 1})
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	f5, err := experiments.Figure5(experiments.Options{Steps: 200, Seed: 1})
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	f7, err := experiments.Figure7(experiments.Options{Steps: 128, Seed: 1})
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	f8s, err := experiments.Figure8Scaling(experiments.Options{Steps: 50, Seed: 1})
	if err != nil {
		t.Fatalf("Figure8Scaling: %v", err)
	}
	if f4.Render() == "" || f5.Render() == "" || f7.Render() == "" || f8s.Render() == "" {
		t.Fatal("empty figure render")
	}
	if experiments.RenderFigure6() == "" {
		t.Fatal("empty figure 6 render")
	}
	if experiments.RenderTable1() == "" {
		t.Fatal("empty table 1 render")
	}
}
