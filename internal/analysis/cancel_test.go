package analysis

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// settleGoroutines polls until the goroutine count is back at or below the
// baseline (plus runtime slack) or the deadline passes. Pool workers exit
// asynchronously after Wait's join returns in their parent, so a short
// settle window avoids false positives without hiding real leaks.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunStreamContextCancelMidStream cancels streaming analyses at
// randomized chunk boundaries (via the Progress hook, which runs on the
// producing goroutine) and asserts RunStreamContext returns ctx.Err()
// promptly, reports the partial stats, and leaks no goroutines.
func TestRunStreamContextCancelMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := randomTrace(rng)
	dir := writeTrace(t, tr, 512)
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := r.NumChunks()
	if n < 4 {
		t.Fatalf("want several chunks for mid-stream cancellation, got %d", n)
	}
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 12; trial++ {
		workers := 1 + rng.Intn(8)
		budget := []int64{0, 1 << 11}[rng.Intn(2)]
		cutAt := 1 + rng.Intn(n-1) // cancel after this many chunks
		ctx, cancel := context.WithCancel(context.Background())
		results, stats, err := RunStreamContext(ctx, r, Options{
			Workers: workers, MaxResidentBytes: budget,
			Progress: func(p Progress) {
				if p.ChunksDone >= cutAt {
					cancel()
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d (workers %d, cut %d/%d): err = %v, want context.Canceled",
				trial, workers, cutAt, n, err)
		}
		if results != nil {
			t.Fatalf("trial %d: cancelled run returned partial results", trial)
		}
		// The loop observes the cancellation at the next chunk boundary:
		// one decode past the cancelling callback at most.
		if stats.ChunksDecoded < cutAt || stats.ChunksDecoded > cutAt+1 {
			t.Fatalf("trial %d: decoded %d chunks, cancellation requested after %d",
				trial, stats.ChunksDecoded, cutAt)
		}
	}
	settleGoroutines(t, baseline)
}

// TestRunStreamContextPreCancelled asserts a cancelled context stops the
// streaming engine before any chunk is decoded.
func TestRunStreamContextPreCancelled(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	dir := writeTrace(t, tr, 1<<10)
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats, err := RunStreamContext(ctx, r, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil || stats.ChunksDecoded != 0 {
		t.Fatalf("pre-cancelled run did work: results=%v decoded=%d", results, stats.ChunksDecoded)
	}
}

// TestRunContextCancelled asserts the materialized path reports ctx.Err()
// and discards partial results.
func TestRunContextCancelled(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(11)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		results, err := RunContext(ctx, tr, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: err = %v, want context.Canceled", workers, err)
		}
		if results != nil {
			t.Fatalf("workers %d: cancelled run returned results", workers)
		}
	}
}

// TestForEachWorkerContextCancelMidDispatch cancels at randomized dispatch
// points from inside a job and asserts the dispatcher stops, every worker
// joins, jobs past the stop point never run, and the call returns ctx.Err().
func TestForEachWorkerContextCancelMidDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		const n = 200
		workers := 1 + rng.Intn(8)
		target := rng.Intn(n / 2)
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachWorkerContext(ctx, workers, n, func(_, i int) error {
			ran.Add(1)
			if i == target {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d (workers %d, target %d): err = %v, want context.Canceled",
				trial, workers, target, err)
		}
		// Dispatch stops once the cancellation is observed; at most the
		// jobs already in flight or queued (bounded by the worker count
		// plus one queued index) run after the target job.
		if got := ran.Load(); got == n {
			t.Fatalf("trial %d: every job ran despite cancellation at index %d", trial, target)
		}
	}
	settleGoroutines(t, baseline)
}

// TestForEachWorkerContextErrorBeatsCancel asserts job errors keep their
// deterministic lowest-index priority over the context error.
func TestForEachWorkerContextErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachWorkerContext(ctx, 4, 50, func(_, i int) error {
		if i == 10 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want job error to take precedence over cancellation", err)
	}
}

// TestRunStreamCancelStressNoLeak hammers cancellation at every point of
// the pipeline concurrently-timed (not progress-synchronized) and asserts
// the goroutine count always settles back to baseline — the "cancellation
// drains workers" tentpole contract.
func TestRunStreamCancelStressNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := randomTrace(rng)
	dir := writeTrace(t, tr, 512)
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 30; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(400)) * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		_, _, err := RunStreamContext(ctx, r, Options{Workers: 4, MaxResidentBytes: 1 << 11})
		timer.Stop()
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
	settleGoroutines(t, baseline)
}
