package analysis

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size selected by Workers <= 0: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool is the streaming face of the shard worker pool: jobs are submitted
// one at a time as a producer discovers them (RunStream dispatches a shard
// the moment its last contributing chunk has been decoded) instead of as a
// pre-sized index range. A pool of one executes jobs inline on the
// submitting goroutine, so single-worker streaming is strictly sequential,
// exactly like ForEach(1, ...).
//
// The pool is context-aware: once ctx is cancelled, submitted jobs are
// accepted but no longer executed, so Wait drains the queue at channel
// speed instead of sweeping every remaining window. Producers observe the
// cancellation themselves (ctx.Err()) — the pool's only job is to stop
// burning CPU and to guarantee that Wait still joins every goroutine, so
// cancellation never leaks workers.
//
// Jobs receive the index of the worker executing them (0 in inline mode),
// so callers can give each worker private reusable scratch — the streaming
// engine hands every worker its own overlap.Sweeper.
type Pool struct {
	ctx     context.Context
	workers int
	jobs    chan func(worker int)
	wg      sync.WaitGroup
}

// NewPool starts a pool of workers bound to ctx; workers <= 0 selects
// DefaultWorkers. Callers must Wait exactly once after the last Submit.
func NewPool(ctx context.Context, workers int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{ctx: ctx, workers: workers}
	if workers == 1 {
		return p // inline mode: no goroutines, no channel
	}
	p.jobs = make(chan func(worker int), workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer p.wg.Done()
			for fn := range p.jobs {
				if p.ctx.Err() != nil {
					continue // cancelled: drain without executing
				}
				fn(worker)
			}
		}(w)
	}
	return p
}

// Workers returns the resolved pool size — the number of distinct worker
// indices jobs may observe.
func (p *Pool) Workers() int { return p.workers }

// Submit schedules one job. In inline mode it runs before Submit returns,
// with worker index 0. After cancellation the job is dropped; callers
// notice through their own ctx.Err() check.
func (p *Pool) Submit(fn func(worker int)) {
	if p.jobs == nil {
		if p.ctx.Err() == nil {
			fn(0)
		}
		return
	}
	select {
	case p.jobs <- fn:
	case <-p.ctx.Done():
	}
}

// Wait closes the pool and blocks until every submitted job has finished
// (or, after cancellation, been drained unexecuted) and every worker
// goroutine has exited.
func (p *Pool) Wait() {
	if p.jobs == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}

// ClampWorkers resolves a worker-count option against a job count: zero or
// negative selects DefaultWorkers, and the pool never exceeds one worker
// per job. The result is the number of distinct worker indices
// ForEachWorker can pass to fn.
func ClampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(0), …, fn(n-1) across a pool of workers and returns the
// lowest-index error, or nil. See ForEachWorker for the scheduling
// contract; ForEach is the face used by callers that need no per-worker
// state.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachContext(context.Background(), workers, n, fn)
}

// ForEachContext is ForEach bound to a context: dispatch stops as soon as
// ctx is cancelled and the cancellation is reported (unless a job error,
// which takes precedence, already occurred).
func ForEachContext(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorkerContext(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker runs fn(w, 0), …, fn(w, n-1) across a pool of workers,
// where w identifies the executing worker (0 <= w < ClampWorkers(workers,
// n); each index is owned by exactly one goroutine), and returns the
// lowest-index error, or nil. The worker index lets callers thread private
// reusable scratch — the analysis engine gives each worker its own
// overlap.Sweeper — without any locking.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	return ForEachWorkerContext(context.Background(), workers, n, fn)
}

// ForEachWorkerContext is ForEachWorker bound to a context.
//
// workers <= 0 selects DefaultWorkers; a pool of one runs inline with no
// goroutines, so single-worker execution is strictly sequential. Dispatch
// is fail-fast: once any job errors — or ctx is cancelled — no further
// index is dispatched; every dispatched job (at most one of which may
// still be queued at that point) runs to completion, and every worker
// goroutine is joined before the call returns, so cancellation never leaks
// goroutines. Dispatched jobs always executing is what keeps the returned
// error deterministic: indices dispatch in order, so the lowest failing
// index is always dispatched, always runs, and always wins — skipping
// queued work instead would let a later, faster failure race it out of the
// error slot. Job errors take precedence over ctx.Err(); with no job
// error, a cancelled run returns ctx.Err().
func ForEachWorkerContext(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers = ClampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	errs := make([]error, n)
	idx := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
dispatch:
	for i := 0; i < n && !failed.Load(); i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
