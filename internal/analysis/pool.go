package analysis

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size selected by Workers <= 0: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool is the streaming face of the shard worker pool: jobs are submitted
// one at a time as a producer discovers them (RunStream dispatches a shard
// the moment its last contributing chunk has been decoded) instead of as a
// pre-sized index range. A pool of one executes jobs inline on the
// submitting goroutine, so single-worker streaming is strictly sequential,
// exactly like ForEach(1, ...).
//
// Jobs receive the index of the worker executing them (0 in inline mode),
// so callers can give each worker private reusable scratch — the streaming
// engine hands every worker its own overlap.Sweeper.
type Pool struct {
	workers int
	jobs    chan func(worker int)
	wg      sync.WaitGroup
}

// NewPool starts a pool of workers; workers <= 0 selects DefaultWorkers.
// Callers must Wait exactly once after the last Submit.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p // inline mode: no goroutines, no channel
	}
	p.jobs = make(chan func(worker int), workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn(worker)
			}
		}(w)
	}
	return p
}

// Workers returns the resolved pool size — the number of distinct worker
// indices jobs may observe.
func (p *Pool) Workers() int { return p.workers }

// Submit schedules one job. In inline mode it runs before Submit returns,
// with worker index 0.
func (p *Pool) Submit(fn func(worker int)) {
	if p.jobs == nil {
		fn(0)
		return
	}
	p.jobs <- fn
}

// Wait closes the pool and blocks until every submitted job has finished.
func (p *Pool) Wait() {
	if p.jobs == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}

// ClampWorkers resolves a worker-count option against a job count: zero or
// negative selects DefaultWorkers, and the pool never exceeds one worker
// per job. The result is the number of distinct worker indices
// ForEachWorker can pass to fn.
func ClampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(0), …, fn(n-1) across a pool of workers and returns the
// lowest-index error, or nil. See ForEachWorker for the scheduling
// contract; ForEach is the face used by callers that need no per-worker
// state.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker runs fn(w, 0), …, fn(w, n-1) across a pool of workers,
// where w identifies the executing worker (0 <= w < ClampWorkers(workers,
// n); each index is owned by exactly one goroutine), and returns the
// lowest-index error, or nil. The worker index lets callers thread private
// reusable scratch — the analysis engine gives each worker its own
// overlap.Sweeper — without any locking.
//
// workers <= 0 selects DefaultWorkers; a pool of one runs inline with no
// goroutines, so single-worker execution is strictly sequential. Dispatch
// is fail-fast: once any job errors, no further index is dispatched; every
// dispatched job (at most one of which may still be queued at that point)
// runs to completion. Dispatched jobs always executing is what keeps the
// returned error deterministic: indices dispatch in order, so the lowest
// failing index is always dispatched, always runs, and always wins —
// skipping queued work instead would let a later, faster failure race it
// out of the error slot.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = ClampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	for i := 0; i < n && !failed.Load(); i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
