// Package analysis is RL-Scope's sharded, concurrent offline-analysis
// engine. The paper's overlap computation (§3.3) is embarrassingly parallel
// across processes and training phases: the engine splits a trace into
// per-(process, phase) shards (trace.Shards), fans the windowed overlap
// sweep (overlap.ComputeWindow) out over a worker pool, and merges the
// per-shard results back into per-process breakdowns.
//
// The merge is exact, not approximate: shards carry unclipped events and
// the sweep restricts accumulation — never classification — to the shard
// window, so every instant is attributed against the same event boundaries
// the sequential sweep sees. Run therefore returns byte-identical results
// for any worker count, including Workers: 1, which executes inline with no
// goroutines at all.
package analysis

import (
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Options configures a parallel analysis.
type Options struct {
	// Workers is the number of concurrent shard workers. Zero or negative
	// selects one worker per available CPU; 1 runs strictly sequentially.
	Workers int
	// MaxResidentBytes, when positive, bounds the estimated bytes of
	// decoded events the streaming engine (RunStream) keeps resident:
	// whenever buffered shards exceed the budget, windows whose prefix can
	// no longer receive events are finalized early and their dead events
	// dropped, carrying only still-open intervals forward. The bound is
	// best-effort — a single chunk, plus intervals genuinely open across
	// the whole trace, must stay resident regardless. Ignored by Run,
	// which materializes the trace by definition.
	MaxResidentBytes int64
}

// Run computes the per-process cross-stack overlap breakdown of a trace by
// fanning (process, phase) shards over a worker pool. The result is
// identical to running overlap.Compute per process regardless of worker
// count.
func Run(t *trace.Trace, opts Options) map[trace.ProcID]*overlap.Result {
	shards := t.Shards()
	results := make([]*overlap.Result, len(shards))
	ForEach(opts.Workers, len(shards), func(i int) error {
		results[i] = overlap.ComputeWindow(shards[i].Events, shards[i].Lo, shards[i].Hi)
		return nil
	})

	out := map[trace.ProcID]*overlap.Result{}
	for _, p := range t.ProcIDs() {
		out[p] = &overlap.Result{
			ByKey:       map[overlap.Key]vclock.Duration{},
			Transitions: map[overlap.TransitionKey]int{},
		}
	}
	// Merge in shard order: commutative integer sums plus span extremes,
	// so the outcome is independent of completion order anyway.
	for i, sh := range shards {
		mergeShard(out[sh.Proc], results[i])
	}
	return out
}

// mergeShard folds one shard result into the process accumulator. Span is
// only merged from shards that saw interval events: ComputeWindow leaves
// the span zeroed otherwise, and a process with no interval events must end
// with a zero span exactly like sequential Compute.
func mergeShard(dst, src *overlap.Result) {
	for k, d := range src.ByKey {
		dst.ByKey[k] += d
	}
	for k, n := range src.Transitions {
		dst.Transitions[k] += n
	}
	if src.SpanStart == 0 && src.SpanEnd == 0 {
		return // shard had no interval events
	}
	if dst.SpanStart == 0 && dst.SpanEnd == 0 {
		dst.SpanStart, dst.SpanEnd = src.SpanStart, src.SpanEnd
		return
	}
	if src.SpanStart < dst.SpanStart {
		dst.SpanStart = src.SpanStart
	}
	if src.SpanEnd > dst.SpanEnd {
		dst.SpanEnd = src.SpanEnd
	}
}
