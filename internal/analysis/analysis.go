// Package analysis is RL-Scope's sharded, concurrent offline-analysis
// engine. The paper's overlap computation (§3.3) is embarrassingly parallel
// across processes and training phases: the engine splits a trace into
// per-(process, phase) shards (trace.Shards), fans the windowed overlap
// sweep (overlap.ComputeWindow) out over a worker pool, and merges the
// per-shard results back into per-process breakdowns.
//
// The merge is exact, not approximate: shards carry unclipped events and
// the sweep restricts accumulation — never classification — to the shard
// window, so every instant is attributed against the same event boundaries
// the sequential sweep sees. Run therefore returns byte-identical results
// for any worker count, including Workers: 1, which executes inline with no
// goroutines at all.
//
// Both entry points have context-aware forms (RunContext, RunStreamContext)
// that stop dispatching work as soon as the context is cancelled and join
// every worker goroutine before returning — cancellation drains the pool,
// it never leaks it.
package analysis

import (
	"context"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// EventStage is a per-event transform plugged into the streaming engine
// between chunk decode and shard routing. The streaming overhead-correction
// stage (calib.Corrector) is the canonical implementation: it shifts every
// event's timestamps left by the calibrated overhead that preceded them and
// drops the overhead markers themselves, so a corrected analysis runs in
// bounded memory without ever materializing the corrected trace.
type EventStage interface {
	// MapEvent rewrites one event in place; returning false drops it.
	// The transform must depend only on the event's own fields (plus any
	// state frozen before the analysis pass), never on decode order.
	MapEvent(e *trace.Event) bool
	// MapSpan rewrites a chunk sidecar's per-process span conservatively:
	// the returned span must contain the MapEvent-transformed extent of
	// every event the input span summarizes. The planner derives chunk
	// relevance and eviction watermarks from mapped spans, so soundness of
	// the bound — not tightness — is what keeps budgeted streaming exact.
	MapSpan(p trace.ProcID, sp trace.ProcSpan) trace.ProcSpan
}

// Progress stage labels.
const (
	// StageCorrect is the streaming correction pre-pass (marker collection).
	StageCorrect = "correct"
	// StageAnalyze is the analysis pass itself.
	StageAnalyze = "analyze"
)

// Progress is one notification from a running analysis, delivered on the
// producing goroutine (callbacks need no locking). Streaming runs report
// after every chunk; materialized runs report once, on completion.
type Progress struct {
	// Stage is StageCorrect or StageAnalyze.
	Stage string
	// ChunksDone and Chunks count chunk files processed so far (zero for
	// materialized sources, which have no chunks).
	ChunksDone, Chunks int
	// Shards counts window computations dispatched so far.
	Shards int
	// Events counts events read so far.
	Events int
}

// Options configures a parallel analysis.
type Options struct {
	// Workers is the number of concurrent shard workers. Zero or negative
	// selects one worker per available CPU; 1 runs strictly sequentially.
	Workers int
	// MaxResidentBytes, when positive, bounds the estimated bytes of
	// decoded events the streaming engine (RunStream) keeps resident:
	// whenever buffered shards exceed the budget, windows whose prefix can
	// no longer receive events are finalized early and their dead events
	// dropped, carrying only still-open intervals forward. The bound is
	// best-effort — a single chunk, plus intervals genuinely open across
	// the whole trace, must stay resident regardless. Ignored by Run,
	// which materializes the trace by definition.
	MaxResidentBytes int64
	// Procs, when non-empty, restricts the analysis to the listed
	// processes. The streaming engine additionally skips decoding chunks
	// that contribute to none of them.
	Procs []trace.ProcID
	// Stage, when non-nil, transforms every event between decode and
	// analysis — the streaming correction stage. Consumed by RunStream
	// only: materialized callers transform the trace before analysis
	// (calib.Correct), which is the same computation.
	Stage EventStage
	// Progress, when non-nil, receives progress notifications.
	Progress func(Progress)
}

// procFilter resolves Options.Procs into a membership test; nil means no
// restriction.
func (o Options) procFilter() map[trace.ProcID]bool {
	if len(o.Procs) == 0 {
		return nil
	}
	set := make(map[trace.ProcID]bool, len(o.Procs))
	for _, p := range o.Procs {
		set[p] = true
	}
	return set
}

// Run computes the per-process cross-stack overlap breakdown of a trace by
// fanning (process, phase) shards over a worker pool. The result is
// identical to running overlap.Compute per process regardless of worker
// count. Run is RunContext with a background context, which cannot fail.
func Run(t *trace.Trace, opts Options) map[trace.ProcID]*overlap.Result {
	out, _ := RunContext(context.Background(), t, opts)
	return out
}

// RunContext is Run bound to a context: shard dispatch stops as soon as
// ctx is cancelled, every worker goroutine is joined, and ctx.Err() is
// returned (partial results are discarded).
func RunContext(ctx context.Context, t *trace.Trace, opts Options) (map[trace.ProcID]*overlap.Result, error) {
	shards := t.Shards()
	if filter := opts.procFilter(); filter != nil {
		kept := shards[:0:len(shards)]
		for _, sh := range shards {
			if filter[sh.Proc] {
				kept = append(kept, sh)
			}
		}
		shards = kept
	}
	results := make([]*overlap.Result, len(shards))
	// Each worker owns one pooled Sweeper for the whole run: the sweep
	// scratch (boundary slices, stacks, interners, the dense accumulator)
	// is borrowed once, sized by the worker's first shard, reused for all
	// its later ones, and returned for the next Run to pick up.
	sweepers := make([]*overlap.Sweeper, ClampWorkers(opts.Workers, len(shards)))
	err := ForEachWorkerContext(ctx, opts.Workers, len(shards), func(w, i int) error {
		if sweepers[w] == nil {
			sweepers[w] = overlap.GetSweeper()
		}
		results[i] = sweepers[w].ComputeWindow(shards[i].Events, shards[i].Lo, shards[i].Hi)
		return nil
	})
	for _, sw := range sweepers {
		if sw != nil {
			overlap.PutSweeper(sw)
		}
	}
	if err != nil {
		return nil, err
	}

	// Every process with at least one event has at least one shard (windows
	// partition the timeline and empty windows are dropped), so the result
	// key set can be derived from the shards without an extra pass over the
	// trace. A process covered by a single shard adopts that shard's result
	// wholesale — merging into a fresh accumulator would only copy it.
	nShards := map[trace.ProcID]int{}
	for _, sh := range shards {
		nShards[sh.Proc]++
	}
	out := map[trace.ProcID]*overlap.Result{}
	// Merge in shard order: commutative integer sums plus span extremes,
	// so the outcome is independent of completion order anyway.
	for i, sh := range shards {
		if nShards[sh.Proc] == 1 {
			out[sh.Proc] = results[i]
			continue
		}
		if out[sh.Proc] == nil {
			out[sh.Proc] = &overlap.Result{
				ByKey:       map[overlap.Key]vclock.Duration{},
				Transitions: map[overlap.TransitionKey]int{},
			}
		}
		mergeShard(out[sh.Proc], results[i])
	}
	if opts.Progress != nil {
		opts.Progress(Progress{Stage: StageAnalyze, Shards: len(shards), Events: len(t.Events)})
	}
	return out, nil
}

// MergeResult folds src into dst with the exact deterministic merge the
// sharded engine uses: commutative integer sums for breakdown cells and
// transition counts, span extremes with the zero-span sentinel respected.
// It is the primitive the fleet aggregation layer merges per-trace Results
// with — merging N results this way is byte-identical (after rendering) to
// one sweep over the concatenated inputs, the property the shard merge is
// tested for.
func MergeResult(dst, src *overlap.Result) { mergeShard(dst, src) }

// mergeShard folds one shard result into the process accumulator. Span is
// only merged from shards that saw interval events: ComputeWindow leaves
// the span zeroed otherwise, and a process with no interval events must end
// with a zero span exactly like sequential Compute.
func mergeShard(dst, src *overlap.Result) {
	for k, d := range src.ByKey {
		dst.ByKey[k] += d
	}
	for k, n := range src.Transitions {
		dst.Transitions[k] += n
	}
	if src.SpanStart == 0 && src.SpanEnd == 0 {
		return // shard had no interval events
	}
	if dst.SpanStart == 0 && dst.SpanEnd == 0 {
		dst.SpanStart, dst.SpanEnd = src.SpanStart, src.SpanEnd
		return
	}
	if src.SpanStart < dst.SpanStart {
		dst.SpanStart = src.SpanStart
	}
	if src.SpanEnd > dst.SpanEnd {
		dst.SpanEnd = src.SpanEnd
	}
}
