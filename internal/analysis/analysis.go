// Package analysis is RL-Scope's sharded, concurrent offline-analysis
// engine. The paper's overlap computation (§3.3) is embarrassingly parallel
// across processes and training phases: the engine splits a trace into
// per-(process, phase) shards (trace.Shards), fans the windowed overlap
// sweep (overlap.ComputeWindow) out over a worker pool, and merges the
// per-shard results back into per-process breakdowns.
//
// The merge is exact, not approximate: shards carry unclipped events and
// the sweep restricts accumulation — never classification — to the shard
// window, so every instant is attributed against the same event boundaries
// the sequential sweep sees. Run therefore returns byte-identical results
// for any worker count, including Workers: 1, which executes inline with no
// goroutines at all.
package analysis

import (
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Options configures a parallel analysis.
type Options struct {
	// Workers is the number of concurrent shard workers. Zero or negative
	// selects one worker per available CPU; 1 runs strictly sequentially.
	Workers int
	// MaxResidentBytes, when positive, bounds the estimated bytes of
	// decoded events the streaming engine (RunStream) keeps resident:
	// whenever buffered shards exceed the budget, windows whose prefix can
	// no longer receive events are finalized early and their dead events
	// dropped, carrying only still-open intervals forward. The bound is
	// best-effort — a single chunk, plus intervals genuinely open across
	// the whole trace, must stay resident regardless. Ignored by Run,
	// which materializes the trace by definition.
	MaxResidentBytes int64
}

// Run computes the per-process cross-stack overlap breakdown of a trace by
// fanning (process, phase) shards over a worker pool. The result is
// identical to running overlap.Compute per process regardless of worker
// count.
func Run(t *trace.Trace, opts Options) map[trace.ProcID]*overlap.Result {
	shards := t.Shards()
	results := make([]*overlap.Result, len(shards))
	// Each worker owns one pooled Sweeper for the whole run: the sweep
	// scratch (boundary slices, stacks, interners, the dense accumulator)
	// is borrowed once, sized by the worker's first shard, reused for all
	// its later ones, and returned for the next Run to pick up.
	sweepers := make([]*overlap.Sweeper, ClampWorkers(opts.Workers, len(shards)))
	ForEachWorker(opts.Workers, len(shards), func(w, i int) error {
		if sweepers[w] == nil {
			sweepers[w] = overlap.GetSweeper()
		}
		results[i] = sweepers[w].ComputeWindow(shards[i].Events, shards[i].Lo, shards[i].Hi)
		return nil
	})
	for _, sw := range sweepers {
		if sw != nil {
			overlap.PutSweeper(sw)
		}
	}

	// Every process with at least one event has at least one shard (windows
	// partition the timeline and empty windows are dropped), so the result
	// key set can be derived from the shards without an extra pass over the
	// trace. A process covered by a single shard adopts that shard's result
	// wholesale — merging into a fresh accumulator would only copy it.
	nShards := map[trace.ProcID]int{}
	for _, sh := range shards {
		nShards[sh.Proc]++
	}
	out := map[trace.ProcID]*overlap.Result{}
	// Merge in shard order: commutative integer sums plus span extremes,
	// so the outcome is independent of completion order anyway.
	for i, sh := range shards {
		if nShards[sh.Proc] == 1 {
			out[sh.Proc] = results[i]
			continue
		}
		if out[sh.Proc] == nil {
			out[sh.Proc] = &overlap.Result{
				ByKey:       map[overlap.Key]vclock.Duration{},
				Transitions: map[overlap.TransitionKey]int{},
			}
		}
		mergeShard(out[sh.Proc], results[i])
	}
	return out
}

// mergeShard folds one shard result into the process accumulator. Span is
// only merged from shards that saw interval events: ComputeWindow leaves
// the span zeroed otherwise, and a process with no interval events must end
// with a zero span exactly like sequential Compute.
func mergeShard(dst, src *overlap.Result) {
	for k, d := range src.ByKey {
		dst.ByKey[k] += d
	}
	for k, n := range src.Transitions {
		dst.Transitions[k] += n
	}
	if src.SpanStart == 0 && src.SpanEnd == 0 {
		return // shard had no interval events
	}
	if dst.SpanStart == 0 && dst.SpanEnd == 0 {
		dst.SpanStart, dst.SpanEnd = src.SpanStart, src.SpanEnd
		return
	}
	if src.SpanStart < dst.SpanStart {
		dst.SpanStart = src.SpanStart
	}
	if src.SpanEnd > dst.SpanEnd {
		dst.SpanEnd = src.SpanEnd
	}
}
