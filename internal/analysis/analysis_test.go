package analysis

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var hits [57]int32
		if err := ForEach(workers, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{2, 4, 8} {
		err := ForEach(workers, 20, func(i int) error {
			switch i {
			case 3:
				return errA
			case 17:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("called") }); err != nil {
		t.Fatal(err)
	}
}

// dump renders a Result deterministically so byte-level comparison is
// meaningful.
func dump(r *overlap.Result) string {
	var sb strings.Builder
	keys := make([]overlap.Key, 0, len(r.ByKey))
	for k := range r.ByKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Res != b.Res {
			return a.Res < b.Res
		}
		return a.Cat < b.Cat
	})
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s|%d|%d=%d\n", k.Op, k.Res, k.Cat, r.ByKey[k])
	}
	tkeys := make([]overlap.TransitionKey, 0, len(r.Transitions))
	for k := range r.Transitions {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i].Op != tkeys[j].Op {
			return tkeys[i].Op < tkeys[j].Op
		}
		return tkeys[i].Label < tkeys[j].Label
	})
	for _, k := range tkeys {
		fmt.Fprintf(&sb, "trans:%s|%s=%d\n", k.Op, k.Label, r.Transitions[k])
	}
	fmt.Fprintf(&sb, "span=[%d,%d]\n", r.SpanStart, r.SpanEnd)
	return sb.String()
}

// dumpAll renders a per-process result map deterministically.
func dumpAll(m map[trace.ProcID]*overlap.Result) string {
	procs := make([]trace.ProcID, 0, len(m))
	for p := range m {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var sb strings.Builder
	for _, p := range procs {
		fmt.Fprintf(&sb, "== proc %d ==\n%s", p, dump(m[p]))
	}
	return sb.String()
}

// randomTrace generates an adversarial trace: overlapping phases, events
// spanning phase boundaries, point markers on exact boundaries, processes
// without phases, processes with only markers.
func randomTrace(rng *rand.Rand) *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{Workload: "random", Procs: map[trace.ProcID]trace.ProcInfo{}}}
	procs := 1 + rng.Intn(4)
	ops := []string{"inference", "simulation", "backpropagation", "mcts"}
	cpuCats := []trace.Category{trace.CatPython, trace.CatSimulator, trace.CatBackend, trace.CatCUDA}
	gpuCats := []trace.Category{trace.CatGPUKernel, trace.CatGPUMemcpy}
	labels := []string{trace.TransPythonToBackend, trace.TransPythonToSimulator, trace.TransBackendToCUDA}
	for p := 0; p < procs; p++ {
		pid := trace.ProcID(p)
		tr.Meta.Procs[pid] = trace.ProcInfo{Name: fmt.Sprintf("proc%d", p), Parent: -1}
		n := 50 + rng.Intn(400)
		// Half the processes get timestamps snapped to a coarse grid, so
		// exact start/end ties (and events closing in non-LIFO order at
		// the same instant) are common rather than vanishingly rare.
		grid := vclock.Time(1)
		if p%2 == 1 {
			grid = 1000
		}
		for i := 0; i < n; i++ {
			start := vclock.Time(rng.Intn(100_000)) / grid * grid
			width := vclock.Time(rng.Intn(5_000)) / grid * grid
			e := trace.Event{Proc: pid, Start: start, End: start + width}
			switch rng.Intn(10) {
			case 0, 1:
				e.Kind = trace.KindOp
				e.Name = ops[rng.Intn(len(ops))]
			case 2:
				e.Kind = trace.KindPhase
				e.Name = fmt.Sprintf("phase%d", rng.Intn(3))
			case 3:
				e.Kind = trace.KindTransition
				e.Name = labels[rng.Intn(len(labels))]
				e.End = e.Start
			case 4, 5, 6:
				e.Kind = trace.KindGPU
				e.Cat = gpuCats[rng.Intn(len(gpuCats))]
				e.Name = "kernel"
			default:
				e.Kind = trace.KindCPU
				e.Cat = cpuCats[rng.Intn(len(cpuCats))]
			}
			tr.Events = append(tr.Events, e)
		}
	}
	return tr
}

// TestRunMatchesSequential is the merge-path property test: for randomized
// multi-process traces, Run with any worker count must be byte-identical to
// the sequential per-process sweep.
func TestRunMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		want := dumpAll(overlap.ComputeTrace(tr))
		for workers := 1; workers <= 8; workers++ {
			got := dumpAll(Run(tr, Options{Workers: workers}))
			if got != want {
				t.Fatalf("seed %d workers %d: parallel result diverges from sequential\ngot:\n%s\nwant:\n%s",
					seed, workers, got, want)
			}
		}
	}
}

// TestShardsPartitionTimeline checks the shard invariants Run relies on:
// per-process windows partition (-inf, +inf) and every event lands in at
// least one shard.
func TestShardsPartitionTimeline(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(42)))
	shards := tr.Shards()
	byProc := map[trace.ProcID][]trace.Shard{}
	counted := 0
	for _, sh := range shards {
		byProc[sh.Proc] = append(byProc[sh.Proc], sh)
		counted += len(sh.Events)
	}
	if counted < len(tr.Events) {
		t.Fatalf("shards hold %d event references for %d events: some event is in no shard", counted, len(tr.Events))
	}
	// Empty windows are dropped, so kept windows may have gaps — but they
	// must never overlap (an event instant counted twice would break the
	// exact merge).
	for p, list := range byProc {
		sort.Slice(list, func(i, j int) bool { return list[i].Lo < list[j].Lo })
		for i := 1; i < len(list); i++ {
			if list[i].Lo < list[i-1].Hi {
				t.Fatalf("proc %d: windows %d and %d overlap", p, i-1, i)
			}
		}
	}
}

// TestShardPhaseLabels checks that shards carry the phase names their
// windows fall inside — the (process, phase) identity tools use to label
// parallel work.
func TestShardPhaseLabels(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		{Proc: 0, Kind: trace.KindPhase, Name: "collect", Start: 0, End: 100},
		{Proc: 0, Kind: trace.KindPhase, Name: "train", Start: 100, End: 250},
		{Proc: 0, Kind: trace.KindCPU, Cat: trace.CatPython, Start: 10, End: 240},
		{Proc: 0, Kind: trace.KindCPU, Cat: trace.CatPython, Start: 260, End: 300},
	}}
	want := map[string]bool{"collect": false, "train": false, "": false}
	for _, sh := range tr.Shards() {
		seen, known := want[sh.Phase]
		if !known {
			t.Fatalf("unexpected shard phase %q", sh.Phase)
		}
		if seen {
			t.Fatalf("phase %q produced more than one shard", sh.Phase)
		}
		want[sh.Phase] = true
		switch sh.Phase {
		case "collect":
			if sh.Lo != 0 || sh.Hi != 100 {
				t.Fatalf("collect window [%d,%d)", sh.Lo, sh.Hi)
			}
		case "train":
			if sh.Lo != 100 || sh.Hi != 250 {
				t.Fatalf("train window [%d,%d)", sh.Lo, sh.Hi)
			}
		case "":
			// The post-phase tail: the second CPU event at [260, 300).
			if sh.Lo != 250 || sh.Hi != vclock.MaxTime {
				t.Fatalf("tail window [%d,%d)", sh.Lo, sh.Hi)
			}
		}
	}
	for phase, seen := range want {
		if !seen {
			t.Fatalf("no shard for phase %q", phase)
		}
	}
}

// TestRunEmptyTrace mirrors sequential behavior on a trace with no events.
func TestRunEmptyTrace(t *testing.T) {
	if got := Run(&trace.Trace{}, Options{Workers: 4}); len(got) != 0 {
		t.Fatalf("empty trace produced %d results", len(got))
	}
}
