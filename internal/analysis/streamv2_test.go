package analysis

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// convertTrace rewrites dir into a sibling directory in the given format,
// with the round-trip digest verification on.
func convertTrace(t *testing.T, dir string, to trace.Format) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "converted-"+to.String())
	stats, err := trace.ConvertDir(dir, dst, to, true)
	if err != nil {
		t.Fatalf("ConvertDir(%v): %v", to, err)
	}
	if !stats.Verified {
		t.Fatal("ConvertDir did not verify")
	}
	return dst
}

// mixTrace copies dir and re-encodes every other chunk as columnar, so the
// result interleaves v1 and v2 chunk files in one directory.
func mixTrace(t *testing.T, dir string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "mixed")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := trace.OpenDir(dst)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	var buf []trace.Event
	for i := 0; i < r.NumChunks(); i += 2 {
		if buf, err = r.ReadChunk(i, buf[:0]); err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		chunk, _, err := trace.EncodeEventsFormat(buf, trace.FormatV2)
		if err != nil {
			t.Fatalf("EncodeEventsFormat: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dst, r.ChunkName(i)), chunk, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRunStreamFormatV2MatchesV1 is the format-parity property test: for
// randomized multi-process traces, streaming an all-v2 conversion and a
// mixed v1/v2 directory must both be byte-identical to the materialized Run
// over the original v1 directory, for Workers 1..8 with and without a memory
// budget. The columnar path routes events straight out of the columns, so
// this pins decode, planning, and shard routing all at once.
func TestRunStreamFormatV2MatchesV1(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		v1dir := writeTrace(t, tr, 1<<10)
		loaded, err := trace.ReadDir(v1dir)
		if err != nil {
			t.Fatalf("seed %d: ReadDir: %v", seed, err)
		}
		want := dumpAll(Run(loaded, Options{Workers: 1}))
		dirs := map[string]string{
			"v2":    convertTrace(t, v1dir, trace.FormatV2),
			"mixed": mixTrace(t, v1dir),
		}
		for label, dir := range dirs {
			for workers := 1; workers <= 8; workers++ {
				for _, budget := range []int64{0, 1 << 12} {
					got, _ := streamDir(t, dir, Options{Workers: workers, MaxResidentBytes: budget})
					if dumpAll(got) != want {
						t.Fatalf("seed %d %s workers %d budget %d: result diverges from v1 materialized Run",
							seed, label, workers, budget)
					}
				}
			}
		}
	}
}

// TestRunStreamWarmReaderReuse pins the serving pattern (and the benchmark
// shape): repeated RunStream calls over one long-lived Reader — whose index
// cache, frame buffer, and column scratch all carry over — must keep
// producing results byte-identical to the materialized Run, in both formats.
func TestRunStreamWarmReaderReuse(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	v1dir := writeTrace(t, tr, 1<<10)
	loaded, err := trace.ReadDir(v1dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	want := dumpAll(Run(loaded, Options{Workers: 1}))
	for _, dir := range []string{v1dir, convertTrace(t, v1dir, trace.FormatV2)} {
		r, err := trace.OpenDir(dir)
		if err != nil {
			t.Fatalf("OpenDir: %v", err)
		}
		for pass := 0; pass < 3; pass++ {
			res, _, err := RunStream(r, Options{Workers: 2})
			if err != nil {
				t.Fatalf("pass %d: RunStream: %v", pass, err)
			}
			if dumpAll(res) != want {
				t.Fatalf("pass %d over %s: warm-Reader result diverges from materialized Run", pass, dir)
			}
		}
	}
}

// TestRunStreamCorruptV2Chunk mirrors TestRunStreamCorruptChunk on the
// columnar path: a truncated v2 chunk must surface as a *trace.ChunkError
// naming the offending file, never a panic.
func TestRunStreamCorruptV2Chunk(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(13)))
	v1dir := writeTrace(t, tr, 1<<10)
	dir := convertTrace(t, v1dir, trace.FormatV2)
	chunks, err := filepath.Glob(filepath.Join(dir, "*.rlstrace"))
	if err != nil || len(chunks) < 2 {
		t.Fatalf("want multiple chunks, got %v (err %v)", chunks, err)
	}
	victim := chunks[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	_, _, err = RunStream(r, Options{Workers: 4})
	var ce *trace.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *trace.ChunkError", err)
	}
	if ce.Chunk != filepath.Base(victim) {
		t.Fatalf("error names chunk %q, want %q", ce.Chunk, filepath.Base(victim))
	}
}
