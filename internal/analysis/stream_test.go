package analysis

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// writeTrace persists a trace to a fresh directory in the given event order
// with small chunks, so streaming tests exercise many chunk boundaries.
func writeTrace(t *testing.T, tr *trace.Trace, chunkBytes int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := trace.NewWriter(dir, chunkBytes)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

func streamDir(t *testing.T, dir string, opts Options) (map[trace.ProcID]*overlap.Result, StreamStats) {
	t.Helper()
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	res, stats, err := RunStream(r, opts)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	return res, stats
}

// TestRunStreamMatchesRun is the tentpole property test on the engine level:
// for randomized multi-process traces chunked on disk — events written in
// adversarially random time order, so intervals cross chunk boundaries both
// ways — RunStream must be byte-identical to Run on the materialized trace
// for Workers 1..8, with and without a memory budget.
func TestRunStreamMatchesRun(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		dir := writeTrace(t, tr, 1<<10)
		loaded, err := trace.ReadDir(dir)
		if err != nil {
			t.Fatalf("seed %d: ReadDir: %v", seed, err)
		}
		want := dumpAll(Run(loaded, Options{Workers: 1}))
		for workers := 1; workers <= 8; workers++ {
			for _, budget := range []int64{0, 1 << 12} {
				got, _ := streamDir(t, dir, Options{Workers: workers, MaxResidentBytes: budget})
				if dumpAll(got) != want {
					t.Fatalf("seed %d workers %d budget %d: streaming result diverges from materialized Run",
						seed, workers, budget)
				}
			}
		}
	}
}

// streamingTrace builds the worst case for window completion: no phase
// annotations, so each process is one window spanning every chunk and only
// prefix eviction can bound residency. Events are sorted by start, as the
// profiler emits them.
func streamingTrace(rng *rand.Rand, n int) *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{Workload: "streaming"}}
	cpuCats := []trace.Category{trace.CatPython, trace.CatSimulator, trace.CatBackend, trace.CatCUDA}
	var tcur vclock.Time
	for i := 0; i < n; i++ {
		tcur += vclock.Time(rng.Intn(500))
		e := trace.Event{Proc: trace.ProcID(rng.Intn(3)), Start: tcur, End: tcur + vclock.Time(rng.Intn(800))}
		switch rng.Intn(8) {
		case 0:
			e.Kind = trace.KindOp
			e.Name = "step"
		case 1:
			e.Kind = trace.KindTransition
			e.Name = trace.TransPythonToBackend
			e.End = e.Start
		case 2, 3:
			e.Kind = trace.KindGPU
			e.Cat = trace.CatGPUKernel
			e.Name = "kernel"
		default:
			e.Kind = trace.KindCPU
			e.Cat = cpuCats[rng.Intn(len(cpuCats))]
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

// TestRunStreamBoundsResidency checks the MaxResidentBytes mechanism on a
// realistically ordered phase-less trace: the budget must force prefix
// evictions and keep peak residency far below the materialized trace,
// without changing the result.
func TestRunStreamBoundsResidency(t *testing.T) {
	tr := streamingTrace(rand.New(rand.NewSource(99)), 4000)
	dir := writeTrace(t, tr, 1<<10)
	loaded, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var totalBytes int64
	for _, e := range loaded.Events {
		totalBytes += int64(trace.EventBytes(e))
	}
	want := dumpAll(Run(loaded, Options{Workers: 1}))

	unbounded, freeStats := streamDir(t, dir, Options{Workers: 1})
	if dumpAll(unbounded) != want {
		t.Fatal("unbounded streaming diverges from materialized Run")
	}
	budget := totalBytes / 8
	bounded, stats := streamDir(t, dir, Options{Workers: 1, MaxResidentBytes: budget})
	if dumpAll(bounded) != want {
		t.Fatal("budgeted streaming diverges from materialized Run")
	}
	if stats.Evictions == 0 {
		t.Fatalf("budget %d forced no evictions (total %d bytes)", budget, totalBytes)
	}
	if stats.PeakResidentBytes >= freeStats.PeakResidentBytes {
		t.Fatalf("budgeted peak %d not below unbounded peak %d",
			stats.PeakResidentBytes, freeStats.PeakResidentBytes)
	}
	if stats.PeakResidentEvents >= len(loaded.Events) {
		t.Fatalf("budgeted peak %d events not below trace size %d",
			stats.PeakResidentEvents, len(loaded.Events))
	}
}

// TestRunStreamWithoutSidecars covers traces written before sidecar indexes
// existed: deleting every .rlsidx must only cost an extra planning decode,
// never change the result.
func TestRunStreamWithoutSidecars(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	dir := writeTrace(t, tr, 1<<10)
	sidecars, err := filepath.Glob(filepath.Join(dir, "*.rlsidx"))
	if err != nil || len(sidecars) == 0 {
		t.Fatalf("expected sidecar files, got %v (err %v)", sidecars, err)
	}
	loaded, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	want := dumpAll(Run(loaded, Options{Workers: 1}))
	for _, path := range sidecars {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := streamDir(t, dir, Options{Workers: 4})
	if dumpAll(got) != want {
		t.Fatal("sidecar-less streaming diverges from materialized Run")
	}
}

// TestRunStreamCorruptChunk propagates a chunk-identifying error out of the
// streaming loop with the pool torn down cleanly.
func TestRunStreamCorruptChunk(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)))
	dir := writeTrace(t, tr, 1<<10)
	chunks, err := filepath.Glob(filepath.Join(dir, "*.rlstrace"))
	if err != nil || len(chunks) < 2 {
		t.Fatalf("want multiple chunks, got %v (err %v)", chunks, err)
	}
	victim := chunks[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove the sidecar too so the planner's fallback decode hits the
	// truncation (with the sidecar intact, the streaming loop hits it).
	if err := os.Remove(sidecarFor(victim)); err != nil {
		t.Fatal(err)
	}
	r, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	_, _, err = RunStream(r, Options{Workers: 4})
	var ce *trace.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *trace.ChunkError", err)
	}
	if ce.Chunk != filepath.Base(victim) {
		t.Fatalf("error names chunk %q, want %q", ce.Chunk, filepath.Base(victim))
	}
}

func sidecarFor(chunkPath string) string {
	return chunkPath[:len(chunkPath)-len(".rlstrace")] + ".rlsidx"
}

// TestRunStreamEmptyTrace mirrors Run on a trace with no events.
func TestRunStreamEmptyTrace(t *testing.T) {
	dir := writeTrace(t, &trace.Trace{Meta: trace.Meta{Workload: "empty"}}, 0)
	got, stats := streamDir(t, dir, Options{Workers: 4})
	if len(got) != 0 {
		t.Fatalf("empty trace produced %d results", len(got))
	}
	if stats.Chunks != 0 || stats.Events != 0 {
		t.Fatalf("empty trace reported stats %+v", stats)
	}
}
