package analysis

import (
	"sort"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// IncrementalStats counts what an Incremental analysis has done so far.
// Shards is the load-bearing one: the acceptance criterion for live ingest
// is that appending one chunk to an N-chunk trace recomputes only the
// (proc, window) shards the chunk's events actually touch, and that is
// asserted by watching this counter — not by timing.
type IncrementalStats struct {
	// Chunks and Events count what Apply has ingested.
	Chunks, Events int
	// Epochs counts Apply calls: each one is an analysis epoch batching
	// every chunk that arrived since the previous epoch.
	Epochs int
	// Shards counts window sweeps performed, cumulatively. A Results call
	// on a clean state adds zero; after an epoch it adds exactly the
	// number of dirty windows.
	Shards int
	// Repartitions counts per-process window-partition rebuilds, triggered
	// by the arrival of a new phase interval (or a process's first epoch).
	// A rebuild marks every window of that process dirty.
	Repartitions int
	// Windows is the current total window count across processes.
	Windows int
}

// incWindow is one (process, window) shard of the incremental state: the
// cached sweep result for [lo, hi) plus a dirty bit set when an epoch routes
// new events into the window.
type incWindow struct {
	lo, hi vclock.Time
	dirty  bool
	res    *overlap.Result // last sweep; nil while dirty or window empty
}

// incProc is the per-process incremental state. events holds every routed
// event in arrival (chunk) order — the overlap sweep is input-order
// invariant, so arrival order is as good as time order. phases holds the
// KindPhase events seen so far; when a new phase interval arrives the
// window partition derived from them is stale and must be rebuilt, which
// dirties every window (a phase boundary can re-cut the whole timeline).
type incProc struct {
	events  []trace.Event
	phases  []trace.Event
	windows []*incWindow
	stale   bool // partition must be rebuilt before the next sweep
}

// Incremental is a resumable analysis state for a growing trace: the
// serve-side complement of RunStream. Where RunStream plans all (process,
// window) shards up front from a complete directory's sidecars, Incremental
// maintains the same partition live — chunks are applied in epochs, each
// event is routed to the windows it overlaps (the same OverlapsWindow
// predicate RunStream routes with), and only windows that received events
// are re-swept on the next Results call. Everything downstream of routing is
// shared with the batch engine: the same windowed sweep
// (overlap.Sweeper.ComputeWindow) and the same commutative shard merge, so
// Results on a fully-applied trace is identical to a fresh Engine run over
// the sealed directory — the live-ingest equivalence the property tests pin
// down.
//
// Incremental is not safe for concurrent use; the serve layer serializes
// epochs and result reads per trace under its analysis lock.
type Incremental struct {
	procs map[trace.ProcID]*incProc
	stats IncrementalStats
}

// NewIncremental returns an empty incremental analysis state.
func NewIncremental() *Incremental {
	return &Incremental{procs: map[trace.ProcID]*incProc{}}
}

// Apply ingests one epoch: every chunk that arrived since the last epoch,
// in sequence order. Events are buffered per process and routed to the
// windows they overlap, marking those windows dirty; a new phase interval
// instead marks the whole process stale, deferring the re-cut to the next
// Results call so a burst of phase events costs one repartition, not many.
func (inc *Incremental) Apply(chunks [][]trace.Event) {
	inc.stats.Epochs++
	for _, events := range chunks {
		inc.stats.Chunks++
		for _, e := range events {
			inc.stats.Events++
			p := inc.procs[e.Proc]
			if p == nil {
				p = &incProc{stale: true}
				inc.procs[e.Proc] = p
			}
			if e.Kind == trace.KindPhase {
				p.phases = append(p.phases, e)
				if e.End > e.Start {
					// Only a closed phase interval participates in
					// PhasePartition, so only one can move the cuts.
					p.stale = true
				}
			}
			p.events = append(p.events, e)
			if !p.stale {
				for _, w := range p.windows {
					if trace.OverlapsWindow(e, w.lo, w.hi) {
						w.dirty = true
					}
				}
			}
		}
	}
}

// Results brings every dirty shard up to date and returns the merged
// per-process breakdowns — the same map a fresh Engine run over the applied
// events produces. filter, when non-nil, restricts both the output and the
// recomputation to the named processes (matching Options.Procs semantics);
// windows of filtered-out processes stay dirty and are swept when next
// asked for.
func (inc *Incremental) Results(filter map[trace.ProcID]bool) map[trace.ProcID]*overlap.Result {
	procs := make([]trace.ProcID, 0, len(inc.procs))
	for p := range inc.procs {
		if filter == nil || filter[p] {
			procs = append(procs, p)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	sw := overlap.GetSweeper()
	defer overlap.PutSweeper(sw)

	var scratch []trace.Event
	out := make(map[trace.ProcID]*overlap.Result, len(procs))
	for _, pid := range procs {
		p := inc.procs[pid]
		if p.stale {
			inc.repartition(p)
		}
		res := &overlap.Result{
			ByKey:       map[overlap.Key]vclock.Duration{},
			Transitions: map[overlap.TransitionKey]int{},
		}
		for _, w := range p.windows {
			if w.dirty {
				scratch = scratch[:0]
				for _, e := range p.events {
					if trace.OverlapsWindow(e, w.lo, w.hi) {
						scratch = append(scratch, e)
					}
				}
				w.res = nil
				if len(scratch) > 0 {
					w.res = sw.ComputeWindow(scratch, w.lo, w.hi)
					inc.stats.Shards++
				}
				w.dirty = false
			}
			if w.res != nil {
				mergeShard(res, w.res)
			}
		}
		out[pid] = res
	}
	return out
}

// repartition re-cuts a process's timeline from its phase events, replacing
// the window set and marking every window dirty. Cached window results
// cannot be carried across a re-cut: a new phase boundary changes which
// instants belong to which window.
func (inc *Incremental) repartition(p *incProc) {
	inc.stats.Windows -= len(p.windows)
	p.windows = p.windows[:0]
	for _, w := range trace.PhasePartition(p.phases) {
		p.windows = append(p.windows, &incWindow{lo: w.Lo, hi: w.Hi, dirty: true})
	}
	inc.stats.Windows += len(p.windows)
	inc.stats.Repartitions++
	p.stale = false
}

// Stats returns a snapshot of the cumulative counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }
