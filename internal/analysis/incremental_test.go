package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// chunked splits events into n contiguous groups in slice order — the shape
// of a chunked trace arriving over the wire.
func chunked(events []trace.Event, n int) [][]trace.Event {
	if n < 1 {
		n = 1
	}
	per := (len(events) + n - 1) / n
	var out [][]trace.Event
	for len(events) > 0 {
		k := per
		if k > len(events) {
			k = len(events)
		}
		out = append(out, events[:k])
		events = events[k:]
	}
	return out
}

// TestIncrementalMatchesRun is the live-ingest equivalence property test:
// for randomized adversarial traces (overlapping phases, boundary-spanning
// events, phaseless processes) applied chunk-by-chunk across randomly-sized
// epochs — with Results read between epochs, so cached shard results must
// survive further appends — the final incremental result equals a fresh
// batch Run over the whole trace.
func TestIncrementalMatchesRun(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		want := dumpAll(Run(tr, Options{Workers: 1}))

		inc := NewIncremental()
		chunks := chunked(tr.Events, 1+rng.Intn(12))
		for len(chunks) > 0 {
			k := 1 + rng.Intn(len(chunks))
			inc.Apply(chunks[:k])
			chunks = chunks[k:]
			if rng.Intn(2) == 0 {
				inc.Results(nil) // interleaved reads must not corrupt later ones
			}
		}
		if got := dumpAll(inc.Results(nil)); got != want {
			t.Fatalf("seed %d: incremental result diverges from batch Run\ngot:\n%s\nwant:\n%s", seed, got, want)
		}
		// A quiescent state answers again without any further sweeps.
		before := inc.Stats().Shards
		if got := dumpAll(inc.Results(nil)); got != want {
			t.Fatalf("seed %d: repeated read diverges", seed)
		}
		if after := inc.Stats().Shards; after != before {
			t.Fatalf("seed %d: clean re-read swept %d shards", seed, after-before)
		}
	}
}

// TestIncrementalFilterMatchesRun checks Results' process filter: the
// filtered map holds exactly the requested processes, with the same
// per-process breakdowns as the unfiltered read, and filtered-out processes
// are not swept on its behalf.
func TestIncrementalFilterMatchesRun(t *testing.T) {
	var (
		tr  *trace.Trace
		inc *Incremental
		all map[trace.ProcID]*overlap.Result
	)
	for seed := int64(0); ; seed++ {
		if seed == 32 {
			t.Fatal("no seed under 32 produced a multi-process trace")
		}
		tr = randomTrace(rand.New(rand.NewSource(seed)))
		inc = NewIncremental()
		inc.Apply(chunked(tr.Events, 6))
		if all = inc.Results(nil); len(all) >= 2 {
			break
		}
	}
	var pick trace.ProcID
	for p := range all {
		pick = p
		break
	}
	inc2 := NewIncremental()
	inc2.Apply(chunked(tr.Events, 6))
	got := inc2.Results(map[trace.ProcID]bool{pick: true})
	if len(got) != 1 {
		t.Fatalf("filtered read returned %d processes, want 1", len(got))
	}
	if dump(got[pick]) != dump(all[pick]) {
		t.Fatalf("filtered breakdown for proc %d diverges from unfiltered", pick)
	}
	if inc2.Stats().Shards >= inc.Stats().Shards {
		t.Fatalf("filtered read swept %d shards, unfiltered %d — filter did not restrict recomputation",
			inc2.Stats().Shards, inc.Stats().Shards)
	}
}

// localityEvent is a helper for the shard-locality tests below.
func cpuEvent(p trace.ProcID, lo, hi vclock.Time) trace.Event {
	return trace.Event{Proc: p, Kind: trace.KindCPU, Cat: trace.CatPython, Start: lo, End: hi}
}

func phaseEvent(p trace.ProcID, name string, lo, hi vclock.Time) trace.Event {
	return trace.Event{Proc: p, Kind: trace.KindPhase, Name: name, Start: lo, End: hi}
}

// TestIncrementalShardLocality is the acceptance criterion for live ingest,
// asserted on counters rather than timing: appending one chunk to an
// already-analyzed trace re-sweeps exactly the (process, window) shards the
// chunk's events overlap — not the whole trace.
func TestIncrementalShardLocality(t *testing.T) {
	// Proc 0: three phases cutting the timeline at 0/1000/2000/3000, with
	// events in each. Proc 1: phaseless, one full-timeline window.
	base := []trace.Event{
		phaseEvent(0, "warmup", 0, 1000),
		phaseEvent(0, "training", 1000, 2000),
		phaseEvent(0, "evaluation", 2000, 3000),
		cpuEvent(0, 100, 200),
		cpuEvent(0, 1100, 1200),
		cpuEvent(0, 2100, 2200),
		cpuEvent(1, 50, 2500),
	}
	inc := NewIncremental()
	inc.Apply([][]trace.Event{base})
	inc.Results(nil)
	s0 := inc.Stats()
	if s0.Repartitions != 2 { // one per process's first epoch
		t.Fatalf("initial repartitions %d, want 2", s0.Repartitions)
	}

	// One new event wholly inside proc 0's "training" window: exactly one
	// shard goes dirty, and the next read re-sweeps exactly that one.
	inc.Apply([][]trace.Event{{cpuEvent(0, 1500, 1600)}})
	inc.Results(nil)
	s1 := inc.Stats()
	if d := s1.Shards - s0.Shards; d != 1 {
		t.Fatalf("single-window append re-swept %d shards, want 1", d)
	}
	if s1.Repartitions != s0.Repartitions {
		t.Fatalf("append without new phases triggered a repartition")
	}

	// An event spanning the warmup/training boundary touches two windows.
	inc.Apply([][]trace.Event{{cpuEvent(0, 900, 1100)}})
	inc.Results(nil)
	s2 := inc.Stats()
	if d := s2.Shards - s1.Shards; d != 2 {
		t.Fatalf("boundary-spanning append re-swept %d shards, want 2", d)
	}

	// Proc 1's append never touches proc 0's shards.
	inc.Apply([][]trace.Event{{cpuEvent(1, 600, 700)}})
	inc.Results(nil)
	s3 := inc.Stats()
	if d := s3.Shards - s2.Shards; d != 1 {
		t.Fatalf("other-process append re-swept %d shards, want 1", d)
	}

	// A new phase interval re-cuts proc 0's timeline: every window of that
	// process is dirtied (a repartition), proc 1 stays untouched.
	inc.Apply([][]trace.Event{{phaseEvent(0, "cooldown", 3000, 4000)}})
	inc.Results(nil)
	s4 := inc.Stats()
	if s4.Repartitions != s3.Repartitions+1 {
		t.Fatalf("new phase did not repartition: %d, want %d", s4.Repartitions, s3.Repartitions+1)
	}

	// The incremental result still equals a batch run over everything.
	tr := &trace.Trace{Events: append([]trace.Event{},
		base[0], base[1], base[2], base[3], base[4], base[5], base[6],
		cpuEvent(0, 1500, 1600), cpuEvent(0, 900, 1100), cpuEvent(1, 600, 700),
		phaseEvent(0, "cooldown", 3000, 4000),
	)}
	if got, want := dumpAll(inc.Results(nil)), dumpAll(Run(tr, Options{Workers: 1})); got != want {
		t.Fatalf("after locality sequence, incremental diverges from batch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
