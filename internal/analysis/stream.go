package analysis

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// StreamStats reports what a streaming analysis did: how much it read, how
// it scheduled the work, and the peak number of decoded events it ever held
// resident — the quantity MaxResidentBytes bounds.
type StreamStats struct {
	// Chunks and Events count the chunk files decoded and events routed.
	Chunks, Events int
	// Shards counts window computations dispatched to the pool, including
	// partial prefix windows finalized early by the memory budget.
	Shards int
	// Evictions counts forced prefix finalizations triggered by
	// MaxResidentBytes.
	Evictions int
	// PeakResidentEvents and PeakResidentBytes track the high-water mark
	// of decoded events resident at once (buffered in open shards, in the
	// chunk decode buffer, or in flight to a worker).
	PeakResidentEvents int
	PeakResidentBytes  int64
}

// streamShard is the accumulating state of one (process, window) analysis
// unit during a streaming run. lo advances past finalized prefixes; events
// holds the routed events still needed for [lo, hi) — open intervals carried
// across chunk (and eviction) boundaries plus everything not yet swept.
type streamShard struct {
	proc   trace.ProcID
	lo, hi vclock.Time
	events []trace.Event
	bytes  int64
	// chunks lists, in ascending order, the chunk ids that may contribute
	// events to this shard; next indexes the first one not yet decoded.
	chunks []int
	next   int
	// watermarks[j] is the minimum event start time across chunks[j:] for
	// this shard's process: no event from a not-yet-decoded chunk can
	// begin before watermarks[next], so the prefix [lo, watermarks[next])
	// is complete and may be finalized early.
	watermarks []vclock.Time
}

// RunStream computes the same per-process overlap breakdown as Run, but from
// a chunked trace directory without ever materializing the whole trace: it
// decodes chunks lazily through r (one reusable buffer), routes events into
// per-(process, phase-window) shards planned from the chunk sidecar indexes,
// and dispatches each shard to the worker pool the moment its last
// contributing chunk has been read. Open intervals are carried across chunk
// boundaries; under a MaxResidentBytes budget, complete window prefixes are
// finalized early and merged — exactly, because window partitions of the
// overlap sweep sum to the whole (see overlap.ComputeWindow).
//
// The result is byte-identical to Run(ReadDir(dir)) for every worker count
// and every memory budget.
func RunStream(r *trace.Reader, opts Options) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
	var stats StreamStats
	n := r.NumChunks()
	stats.Chunks = n

	// Plan from sidecar metadata alone: per-chunk process spans give each
	// shard its contributing-chunk list and watermarks; sidecar phase
	// events give each process its window partition.
	indexes := make([]*trace.ChunkIndex, n)
	phaseEvents := map[trace.ProcID][]trace.Event{}
	procSeen := map[trace.ProcID]bool{}
	for i := 0; i < n; i++ {
		ix, err := r.Index(i)
		if err != nil {
			return nil, stats, err
		}
		indexes[i] = ix
		for p := range ix.Procs {
			procSeen[p] = true
		}
		for _, pe := range ix.Phases {
			phaseEvents[pe.Proc] = append(phaseEvents[pe.Proc], pe)
		}
	}
	procs := make([]trace.ProcID, 0, len(procSeen))
	for p := range procSeen {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	out := map[trace.ProcID]*overlap.Result{}
	for _, p := range procs {
		out[p] = &overlap.Result{
			ByKey:       map[overlap.Key]vclock.Duration{},
			Transitions: map[overlap.TransitionKey]int{},
		}
	}

	// Shards in (process, window) order; evictions scan this order, so the
	// schedule — not just the result — is reproducible for one worker.
	shardsByProc := map[trace.ProcID][]*streamShard{}
	var allShards []*streamShard
	for _, p := range procs {
		for _, w := range trace.PhasePartition(phaseEvents[p]) {
			sh := &streamShard{proc: p, lo: w.Lo, hi: w.Hi}
			shardsByProc[p] = append(shardsByProc[p], sh)
			allShards = append(allShards, sh)
		}
	}
	chunkShards := make([][]*streamShard, n)
	for i, ix := range indexes {
		for p, span := range ix.Procs {
			for _, sh := range shardsByProc[p] {
				// Conservative relevance: every event of p in this chunk
				// has start >= span.MinStart and end <= span.MaxEnd, so
				// nothing can overlap [lo, hi) unless the span does.
				if span.MinStart < sh.hi && span.MaxEnd >= sh.lo {
					sh.chunks = append(sh.chunks, i)
					chunkShards[i] = append(chunkShards[i], sh)
				}
			}
		}
	}
	for _, sh := range allShards {
		sh.watermarks = make([]vclock.Time, len(sh.chunks))
		min := vclock.MaxTime
		for j := len(sh.chunks) - 1; j >= 0; j-- {
			if ms := indexes[sh.chunks[j]].Procs[sh.proc].MinStart; ms < min {
				min = ms
			}
			sh.watermarks[j] = min
		}
	}

	// The merge side: commutative integer sums plus span extremes, so
	// concurrent completion order cannot leak into results.
	var mu sync.Mutex
	var inflightBytes, inflightEvents atomic.Int64
	pool := NewPool(opts.Workers)
	// One pooled Sweeper per pool worker (index 0 doubles as the inline
	// worker): sweep scratch is recycled across every window the worker
	// computes, and no locking is needed because a worker index is owned by
	// exactly one goroutine. Borrowed lazily, returned after pool.Wait.
	sweepers := make([]*overlap.Sweeper, pool.Workers())
	returnSweepers := func() {
		for _, sw := range sweepers {
			if sw != nil {
				overlap.PutSweeper(sw)
			}
		}
	}
	dispatch := func(proc trace.ProcID, events []trace.Event, bytes int64, lo, hi vclock.Time) {
		if len(events) == 0 {
			return
		}
		stats.Shards++
		inflightBytes.Add(bytes)
		inflightEvents.Add(int64(len(events)))
		pool.Submit(func(worker int) {
			if sweepers[worker] == nil {
				sweepers[worker] = overlap.GetSweeper()
			}
			res := sweepers[worker].ComputeWindow(events, lo, hi)
			mu.Lock()
			mergeShard(out[proc], res)
			mu.Unlock()
			inflightBytes.Add(-bytes)
			inflightEvents.Add(-int64(len(events)))
		})
	}

	var bufferedBytes int64
	var bufferedEvents int
	sample := func(chunkBytes int64, chunkEvents int) {
		bytes := bufferedBytes + chunkBytes + inflightBytes.Load()
		events := bufferedEvents + chunkEvents + int(inflightEvents.Load())
		if bytes > stats.PeakResidentBytes {
			stats.PeakResidentBytes = bytes
		}
		if events > stats.PeakResidentEvents {
			stats.PeakResidentEvents = events
		}
	}

	// evict finalizes the complete prefix [lo, watermark) of buffered,
	// still-incomplete shards — in fixed shard order, stopping as soon as
	// the resident total is back under budget — and drops events that can
	// no longer matter, carrying open intervals forward into the shrunken
	// window. The in-flight side of the stop condition drains at worker
	// speed; to keep that pressure from degenerating into busywork, shards
	// whose prefix would free nothing (every buffered event still alive at
	// the watermark) are skipped — dispatching them would cost a window
	// computation without reducing residency.
	evict := func(budget int64) {
		for _, sh := range allShards {
			if bufferedBytes+inflightBytes.Load() <= budget {
				return
			}
			if len(sh.events) == 0 || sh.next >= len(sh.chunks) {
				continue // empty, or already complete and dispatched
			}
			cut := sh.watermarks[sh.next]
			if cut <= sh.lo {
				continue // future chunks may still start before lo
			}
			freeable := false
			for _, e := range sh.events {
				if trace.DeadBefore(e, cut) {
					freeable = true
					break
				}
			}
			if !freeable {
				continue
			}
			// Relevance guarantees every remaining chunk's MinStart < hi,
			// so cut < hi and [lo, cut) is a strict prefix. Partition the
			// buffer: the prefix computation needs only events overlapping
			// [lo, cut); the shard carries forward whatever is still alive
			// at the cut (events spanning it appear in both — ComputeWindow
			// restricts accumulation, not classification, so no instant is
			// counted twice).
			var prefix, survivors []trace.Event
			var prefixBytes, bytes int64
			for _, e := range sh.events {
				if trace.OverlapsWindow(e, sh.lo, cut) {
					prefix = append(prefix, e)
					prefixBytes += int64(trace.EventBytes(e))
				}
				if !trace.DeadBefore(e, cut) {
					survivors = append(survivors, e)
					bytes += int64(trace.EventBytes(e))
				}
			}
			dispatch(sh.proc, prefix, prefixBytes, sh.lo, cut)
			stats.Evictions++
			bufferedBytes += bytes - sh.bytes
			bufferedEvents += len(survivors) - len(sh.events)
			sh.events, sh.bytes, sh.lo = survivors, bytes, cut
		}
	}

	var buf []trace.Event
	for i := 0; i < n; i++ {
		var err error
		buf, err = r.ReadChunk(i, buf[:0])
		if err != nil {
			pool.Wait()
			returnSweepers()
			return nil, stats, err
		}
		stats.Events += len(buf)
		var chunkBytes int64
		for _, e := range buf {
			chunkBytes += int64(trace.EventBytes(e))
			for _, sh := range shardsByProc[e.Proc] {
				if trace.OverlapsWindow(e, sh.lo, sh.hi) {
					sh.events = append(sh.events, e)
					sh.bytes += int64(trace.EventBytes(e))
					bufferedBytes += int64(trace.EventBytes(e))
					bufferedEvents++
				}
			}
		}
		sample(chunkBytes, len(buf))
		for _, sh := range chunkShards[i] {
			sh.next++
			if sh.next == len(sh.chunks) {
				// Last contributing chunk decoded: the window is complete.
				dispatch(sh.proc, sh.events, sh.bytes, sh.lo, sh.hi)
				bufferedBytes -= sh.bytes
				bufferedEvents -= len(sh.events)
				sh.events, sh.bytes = nil, 0
			}
		}
		if opts.MaxResidentBytes > 0 && bufferedBytes+inflightBytes.Load() > opts.MaxResidentBytes {
			evict(opts.MaxResidentBytes)
		}
		sample(0, 0)
	}
	pool.Wait()
	returnSweepers()
	return out, stats, nil
}
