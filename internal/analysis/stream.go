package analysis

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// StreamStats reports what a streaming analysis did: how much it read, how
// it scheduled the work, and the peak number of decoded events it ever held
// resident — the quantity MaxResidentBytes bounds.
type StreamStats struct {
	// Chunks and Events count the chunk files in the directory and the
	// events decoded (before any Options.Stage transform drops or rewrites
	// them). Under an Options.Procs restriction, chunks contributing to no
	// requested process are skipped entirely and their events never
	// decoded or counted.
	Chunks, Events int
	// ChunksDecoded counts chunk files actually decoded so far — fewer
	// than Chunks when a Procs restriction skips chunks or a cancellation
	// cuts the run short.
	ChunksDecoded int
	// Shards counts window computations dispatched to the pool, including
	// partial prefix windows finalized early by the memory budget.
	Shards int
	// Evictions counts forced prefix finalizations triggered by
	// MaxResidentBytes.
	Evictions int
	// PeakResidentEvents and PeakResidentBytes track the high-water mark
	// of decoded events resident at once (buffered in open shards, in the
	// chunk decode buffer, or in flight to a worker).
	PeakResidentEvents int
	PeakResidentBytes  int64
}

// streamShard is the accumulating state of one (process, window) analysis
// unit during a streaming run. lo advances past finalized prefixes; events
// holds the routed events still needed for [lo, hi) — open intervals carried
// across chunk (and eviction) boundaries plus everything not yet swept.
type streamShard struct {
	proc   trace.ProcID
	lo, hi vclock.Time
	events []trace.Event
	bytes  int64
	// chunks lists, in ascending order, the chunk ids that may contribute
	// events to this shard; next indexes the first one not yet decoded.
	chunks []int
	next   int
	// watermarks[j] is the minimum event start time across chunks[j:] for
	// this shard's process: no event from a not-yet-decoded chunk can
	// begin before watermarks[next], so the prefix [lo, watermarks[next])
	// is complete and may be finalized early. With an EventStage the
	// watermarks come from stage-mapped spans, whose conservative bound
	// preserves exactly this guarantee for the transformed events.
	watermarks []vclock.Time
}

// RunStream computes the same per-process overlap breakdown as Run, but from
// a chunked trace directory without ever materializing the whole trace: it
// decodes chunks lazily through r (one reusable buffer), routes events into
// per-(process, phase-window) shards planned from the chunk sidecar indexes,
// and dispatches each shard to the worker pool the moment its last
// contributing chunk has been read. Open intervals are carried across chunk
// boundaries; under a MaxResidentBytes budget, complete window prefixes are
// finalized early and merged — exactly, because window partitions of the
// overlap sweep sum to the whole (see overlap.ComputeWindow).
//
// The result is byte-identical to Run(ReadDir(dir)) for every worker count
// and every memory budget; with an Options.Stage it is byte-identical to
// materializing the trace, applying the stage's transform (for the
// correction stage: calib.Correct), and running Run on the result.
func RunStream(r *trace.Reader, opts Options) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
	return RunStreamContext(context.Background(), r, opts)
}

// RunStreamContext is RunStream bound to a context: the chunk loop stops at
// the first cancelled iteration, queued shard computations are drained
// unexecuted, every worker goroutine is joined, and ctx.Err() is returned.
// The returned StreamStats always describe the work done so far, so a
// cancelled run still reports how far it got.
func RunStreamContext(ctx context.Context, r *trace.Reader, opts Options) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats StreamStats
	n := r.NumChunks()
	stats.Chunks = n
	stage := opts.Stage
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	// Plan from sidecar metadata alone: per-chunk process spans give each
	// shard its contributing-chunk list and watermarks; sidecar phase
	// events give each process its window partition. An EventStage bends
	// the plan the same way it bends the events: phase events are mapped
	// before partitioning and spans are mapped (conservatively) before
	// relevance and watermark derivation.
	indexes := make([]*trace.ChunkIndex, n)
	spans := make([]map[trace.ProcID]trace.ProcSpan, n)
	phaseEvents := map[trace.ProcID][]trace.Event{}
	procSeen := map[trace.ProcID]bool{}
	for i := 0; i < n; i++ {
		ix, err := r.Index(i)
		if err != nil {
			return nil, stats, err
		}
		indexes[i] = ix
		spans[i] = ix.Procs
		if stage != nil {
			spans[i] = make(map[trace.ProcID]trace.ProcSpan, len(ix.Procs))
			for p, sp := range ix.Procs {
				spans[i][p] = stage.MapSpan(p, sp)
			}
		}
		for p := range ix.Procs {
			procSeen[p] = true
		}
		for _, pe := range ix.Phases {
			if stage != nil && !stage.MapEvent(&pe) {
				continue
			}
			phaseEvents[pe.Proc] = append(phaseEvents[pe.Proc], pe)
		}
	}
	filter := opts.procFilter()
	procs := make([]trace.ProcID, 0, len(procSeen))
	for p := range procSeen {
		if filter == nil || filter[p] {
			procs = append(procs, p)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	out := map[trace.ProcID]*overlap.Result{}
	for _, p := range procs {
		out[p] = &overlap.Result{
			ByKey:       map[overlap.Key]vclock.Duration{},
			Transitions: map[overlap.TransitionKey]int{},
		}
	}

	// Shards in (process, window) order; evictions scan this order, so the
	// schedule — not just the result — is reproducible for one worker.
	shardsByProc := map[trace.ProcID][]*streamShard{}
	var allShards []*streamShard
	for _, p := range procs {
		for _, w := range trace.PhasePartition(phaseEvents[p]) {
			sh := &streamShard{proc: p, lo: w.Lo, hi: w.Hi}
			shardsByProc[p] = append(shardsByProc[p], sh)
			allShards = append(allShards, sh)
		}
	}
	chunkShards := make([][]*streamShard, n)
	for i := range indexes {
		for p, span := range spans[i] {
			for _, sh := range shardsByProc[p] {
				// Conservative relevance: every event of p in this chunk
				// has start >= span.MinStart and end <= span.MaxEnd, so
				// nothing can overlap [lo, hi) unless the span does.
				if span.MinStart < sh.hi && span.MaxEnd >= sh.lo {
					sh.chunks = append(sh.chunks, i)
					chunkShards[i] = append(chunkShards[i], sh)
				}
			}
		}
	}
	for _, sh := range allShards {
		sh.watermarks = make([]vclock.Time, len(sh.chunks))
		min := vclock.MaxTime
		for j := len(sh.chunks) - 1; j >= 0; j-- {
			if ms := spans[sh.chunks[j]][sh.proc].MinStart; ms < min {
				min = ms
			}
			sh.watermarks[j] = min
		}
	}

	// The merge side: commutative integer sums plus span extremes, so
	// concurrent completion order cannot leak into results.
	var mu sync.Mutex
	var inflightBytes, inflightEvents atomic.Int64
	pool := NewPool(ctx, opts.Workers)
	// One pooled Sweeper per pool worker (index 0 doubles as the inline
	// worker): sweep scratch is recycled across every window the worker
	// computes, and no locking is needed because a worker index is owned by
	// exactly one goroutine. Borrowed lazily, returned after pool.Wait.
	sweepers := make([]*overlap.Sweeper, pool.Workers())
	returnSweepers := func() {
		for _, sw := range sweepers {
			if sw != nil {
				overlap.PutSweeper(sw)
			}
		}
	}
	dispatch := func(proc trace.ProcID, events []trace.Event, bytes int64, lo, hi vclock.Time) {
		if len(events) == 0 {
			return
		}
		stats.Shards++
		inflightBytes.Add(bytes)
		inflightEvents.Add(int64(len(events)))
		pool.Submit(func(worker int) {
			if sweepers[worker] == nil {
				sweepers[worker] = overlap.GetSweeper()
			}
			res := sweepers[worker].ComputeWindow(events, lo, hi)
			mu.Lock()
			mergeShard(out[proc], res)
			mu.Unlock()
			inflightBytes.Add(-bytes)
			inflightEvents.Add(-int64(len(events)))
		})
	}

	var bufferedBytes int64
	var bufferedEvents int
	sample := func(chunkBytes int64, chunkEvents int) {
		bytes := bufferedBytes + chunkBytes + inflightBytes.Load()
		events := bufferedEvents + chunkEvents + int(inflightEvents.Load())
		if bytes > stats.PeakResidentBytes {
			stats.PeakResidentBytes = bytes
		}
		if events > stats.PeakResidentEvents {
			stats.PeakResidentEvents = events
		}
	}

	// evict finalizes the complete prefix [lo, watermark) of buffered,
	// still-incomplete shards — in fixed shard order, stopping as soon as
	// the resident total is back under budget — and drops events that can
	// no longer matter, carrying open intervals forward into the shrunken
	// window. The in-flight side of the stop condition drains at worker
	// speed; to keep that pressure from degenerating into busywork, shards
	// whose prefix would free nothing (every buffered event still alive at
	// the watermark) are skipped — dispatching them would cost a window
	// computation without reducing residency.
	evict := func(budget int64) {
		for _, sh := range allShards {
			if bufferedBytes+inflightBytes.Load() <= budget {
				return
			}
			if len(sh.events) == 0 || sh.next >= len(sh.chunks) {
				continue // empty, or already complete and dispatched
			}
			cut := sh.watermarks[sh.next]
			if cut <= sh.lo {
				continue // future chunks may still start before lo
			}
			freeable := false
			for _, e := range sh.events {
				if trace.DeadBefore(e, cut) {
					freeable = true
					break
				}
			}
			if !freeable {
				continue
			}
			// Relevance guarantees every remaining chunk's MinStart < hi,
			// so cut < hi and [lo, cut) is a strict prefix. Partition the
			// buffer: the prefix computation needs only events overlapping
			// [lo, cut); the shard carries forward whatever is still alive
			// at the cut (events spanning it appear in both — ComputeWindow
			// restricts accumulation, not classification, so no instant is
			// counted twice).
			var prefix, survivors []trace.Event
			var prefixBytes, bytes int64
			for _, e := range sh.events {
				if trace.OverlapsWindow(e, sh.lo, cut) {
					prefix = append(prefix, e)
					prefixBytes += int64(trace.EventBytes(e))
				}
				if !trace.DeadBefore(e, cut) {
					survivors = append(survivors, e)
					bytes += int64(trace.EventBytes(e))
				}
			}
			dispatch(sh.proc, prefix, prefixBytes, sh.lo, cut)
			stats.Evictions++
			bufferedBytes += bytes - sh.bytes
			bufferedEvents += len(survivors) - len(sh.events)
			sh.events, sh.bytes, sh.lo = survivors, bytes, cut
		}
	}

	// routed tracks which processes received at least one event after the
	// stage's transform. A stage can drop every event of a process (the
	// correction stage erases processes that recorded nothing but overhead
	// markers); the materialized transform-then-Run path has no entry for
	// such a process, so the streaming path must shed its pre-planned one.
	var routed map[trace.ProcID]bool
	if stage != nil {
		routed = map[trace.ProcID]bool{}
	}

	bail := func(err error) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
		pool.Wait()
		returnSweepers()
		return nil, stats, err
	}
	var buf []trace.Event
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return bail(err)
		}
		if len(chunkShards[i]) == 0 {
			continue // contributes to no requested (process, window) shard
		}
		var err error
		buf, err = r.ReadChunk(i, buf[:0])
		if err != nil {
			return bail(err)
		}
		stats.ChunksDecoded++
		stats.Events += len(buf)
		if stage != nil {
			// Transform in place and compact the dropped events away:
			// MapEvent takes addresses into the decode buffer's backing
			// array, so the stage costs no per-event allocation.
			kept := buf[:0]
			for j := range buf {
				if stage.MapEvent(&buf[j]) {
					kept = append(kept, buf[j])
				}
			}
			buf = kept
		}
		var chunkBytes int64
		for _, e := range buf {
			chunkBytes += int64(trace.EventBytes(e))
			for _, sh := range shardsByProc[e.Proc] {
				if trace.OverlapsWindow(e, sh.lo, sh.hi) {
					if routed != nil {
						routed[e.Proc] = true
					}
					sh.events = append(sh.events, e)
					sh.bytes += int64(trace.EventBytes(e))
					bufferedBytes += int64(trace.EventBytes(e))
					bufferedEvents++
				}
			}
		}
		sample(chunkBytes, len(buf))
		for _, sh := range chunkShards[i] {
			sh.next++
			if sh.next == len(sh.chunks) {
				// Last contributing chunk decoded: the window is complete.
				dispatch(sh.proc, sh.events, sh.bytes, sh.lo, sh.hi)
				bufferedBytes -= sh.bytes
				bufferedEvents -= len(sh.events)
				sh.events, sh.bytes = nil, 0
			}
		}
		if opts.MaxResidentBytes > 0 && bufferedBytes+inflightBytes.Load() > opts.MaxResidentBytes {
			evict(opts.MaxResidentBytes)
		}
		sample(0, 0)
		if opts.Progress != nil {
			opts.Progress(Progress{
				Stage: StageAnalyze, ChunksDone: i + 1, Chunks: n,
				Shards: stats.Shards, Events: stats.Events,
			})
		}
	}
	pool.Wait()
	returnSweepers()
	// A cancellation that lands after the chunk loop can still have made
	// the pool drop queued shard computations; results would be silently
	// incomplete, so a cancelled run always reports its context error.
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if routed != nil {
		for _, p := range procs {
			if !routed[p] {
				delete(out, p)
			}
		}
	}
	return out, stats, nil
}
