package analysis

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// StreamStats reports what a streaming analysis did: how much it read, how
// it scheduled the work, and the peak number of decoded events it ever held
// resident — the quantity MaxResidentBytes bounds.
type StreamStats struct {
	// Chunks and Events count the chunk files in the directory and the
	// events decoded (before any Options.Stage transform drops or rewrites
	// them). Under an Options.Procs restriction, chunks contributing to no
	// requested process are skipped entirely and their events never
	// decoded or counted.
	Chunks, Events int
	// ChunksDecoded counts chunk files actually decoded so far — fewer
	// than Chunks when a Procs restriction skips chunks or a cancellation
	// cuts the run short.
	ChunksDecoded int
	// Shards counts window computations dispatched to the pool, including
	// partial prefix windows finalized early by the memory budget.
	Shards int
	// Evictions counts forced prefix finalizations triggered by
	// MaxResidentBytes.
	Evictions int
	// PeakResidentEvents and PeakResidentBytes track the high-water mark
	// of decoded events resident at once (buffered in open shards, in the
	// chunk decode buffer, or in flight to a worker).
	PeakResidentEvents int
	PeakResidentBytes  int64
}

// streamShard is the accumulating state of one (process, window) analysis
// unit during a streaming run. lo advances past finalized prefixes; events
// holds the routed events still needed for [lo, hi) — open intervals carried
// across chunk (and eviction) boundaries plus everything not yet swept.
type streamShard struct {
	proc   trace.ProcID
	lo, hi vclock.Time
	events []trace.Event
	bytes  int64
	// chunks lists, in ascending order, the chunk ids that may contribute
	// events to this shard; next indexes the first one not yet decoded.
	// nchunks is the planner's relevance count, from which chunks (a view
	// into one run-wide backing array) is sized.
	chunks  []int
	next    int
	nchunks int
	// evCap upper-bounds the events this shard can ever buffer: the sum of
	// the sidecar event counts of its relevant chunks for its process.
	// Unbudgeted runs pre-size the shard buffer from it, so routing appends
	// never reallocate.
	evCap int
	// watermarks[j] is the minimum event start time across chunks[j:] for
	// this shard's process: no event from a not-yet-decoded chunk can
	// begin before watermarks[next], so the prefix [lo, watermarks[next])
	// is complete and may be finalized early. With an EventStage the
	// watermarks come from stage-mapped spans, whose conservative bound
	// preserves exactly this guarantee for the transformed events.
	watermarks []vclock.Time
}

// chunkSpan is one (chunk, process) sidecar span flattened out of the
// per-chunk index during planning, so no per-chunk ChunkIndex (or its maps)
// stays resident after the planning pass.
type chunkSpan struct {
	proc trace.ProcID
	span trace.ProcSpan
}

// RunStream computes the same per-process overlap breakdown as Run, but from
// a chunked trace directory without ever materializing the whole trace: it
// decodes chunks lazily through r (one reusable buffer), routes events into
// per-(process, phase-window) shards planned from the chunk sidecar indexes,
// and dispatches each shard to the worker pool the moment its last
// contributing chunk has been read. Open intervals are carried across chunk
// boundaries; under a MaxResidentBytes budget, complete window prefixes are
// finalized early and merged — exactly, because window partitions of the
// overlap sweep sum to the whole (see overlap.ComputeWindow).
//
// The result is byte-identical to Run(ReadDir(dir)) for every worker count
// and every memory budget; with an Options.Stage it is byte-identical to
// materializing the trace, applying the stage's transform (for the
// correction stage: calib.Correct), and running Run on the result.
func RunStream(r *trace.Reader, opts Options) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
	return RunStreamContext(context.Background(), r, opts)
}

// RunStreamContext is RunStream bound to a context: the chunk loop stops at
// the first cancelled iteration, queued shard computations are drained
// unexecuted, every worker goroutine is joined, and ctx.Err() is returned.
// The returned StreamStats always describe the work done so far, so a
// cancelled run still reports how far it got.
func RunStreamContext(ctx context.Context, r *trace.Reader, opts Options) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats StreamStats
	n := r.NumChunks()
	stats.Chunks = n
	stage := opts.Stage
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	// Plan from sidecar metadata alone: per-chunk process spans give each
	// shard its contributing-chunk list and watermarks; sidecar phase
	// events give each process its window partition. An EventStage bends
	// the plan the same way it bends the events: phase events are mapped
	// before partitioning and spans are mapped (conservatively) before
	// relevance and watermark derivation. The sidecars are served from the
	// Reader's index cache and flattened into a single span list, so
	// planning over a warm Reader touches neither the disk nor the
	// allocator for per-chunk metadata.
	spanAt := []chunkSpan(nil)
	spanOff := make([]int, n+1)
	phaseEvents := map[trace.ProcID][]trace.Event{}
	procSeen := map[trace.ProcID]bool{}
	for i := 0; i < n; i++ {
		ix, err := r.Index(i)
		if err != nil {
			return nil, stats, err
		}
		for p, sp := range ix.Procs {
			if stage != nil {
				sp = stage.MapSpan(p, sp)
			}
			spanAt = append(spanAt, chunkSpan{proc: p, span: sp})
			procSeen[p] = true
		}
		spanOff[i+1] = len(spanAt)
		for _, pe := range ix.Phases {
			if stage != nil && !stage.MapEvent(&pe) {
				continue
			}
			phaseEvents[pe.Proc] = append(phaseEvents[pe.Proc], pe)
		}
	}
	filter := opts.procFilter()
	procs := make([]trace.ProcID, 0, len(procSeen))
	for p := range procSeen {
		if filter == nil || filter[p] {
			procs = append(procs, p)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	out := map[trace.ProcID]*overlap.Result{}
	for _, p := range procs {
		out[p] = &overlap.Result{
			ByKey:       map[overlap.Key]vclock.Duration{},
			Transitions: map[overlap.TransitionKey]int{},
		}
	}

	// Shards in (process, window) order; evictions scan this order, so the
	// schedule — not just the result — is reproducible for one worker. One
	// backing array holds every shard; shardOf views each process's
	// contiguous run of it.
	totalWindows := 0
	windowsOf := make(map[trace.ProcID][]trace.Window, len(procs))
	for _, p := range procs {
		ws := trace.PhasePartition(phaseEvents[p])
		windowsOf[p] = ws
		totalWindows += len(ws)
	}
	allShards := make([]streamShard, 0, totalWindows)
	shardOf := make(map[trace.ProcID][]streamShard, len(procs))
	for _, p := range procs {
		base := len(allShards)
		for _, w := range windowsOf[p] {
			allShards = append(allShards, streamShard{proc: p, lo: w.Lo, hi: w.Hi})
		}
		shardOf[p] = allShards[base:len(allShards):len(allShards)]
	}

	// Conservative relevance: every event of p in a chunk has start >=
	// span.MinStart and end <= span.MaxEnd, so nothing can overlap
	// [lo, hi) unless the span does. Two passes — count, then fill — so the
	// per-shard chunk lists, watermarks, and per-chunk shard lists all
	// carve views out of three run-wide backing arrays.
	relevant := func(sp trace.ProcSpan, sh *streamShard) bool {
		return sp.MinStart < sh.hi && sp.MaxEnd >= sh.lo
	}
	nPairs := 0
	chunkShardCount := make([]int, n)
	for i := 0; i < n; i++ {
		for _, cs := range spanAt[spanOff[i]:spanOff[i+1]] {
			shs := shardOf[cs.proc]
			for si := range shs {
				if relevant(cs.span, &shs[si]) {
					shs[si].nchunks++
					shs[si].evCap += cs.span.Events
					chunkShardCount[i]++
					nPairs++
				}
			}
		}
	}
	chunkBacking := make([]int, nPairs)
	wmBacking := make([]vclock.Time, nPairs)
	csBacking := make([]*streamShard, nPairs)
	off := 0
	for si := range allShards {
		sh := &allShards[si]
		sh.chunks = chunkBacking[off : off : off+sh.nchunks]
		sh.watermarks = wmBacking[off : off+sh.nchunks]
		off += sh.nchunks
	}
	chunkShards := make([][]*streamShard, n)
	off = 0
	for i := range chunkShards {
		chunkShards[i] = csBacking[off : off : off+chunkShardCount[i]]
		off += chunkShardCount[i]
	}
	for i := 0; i < n; i++ {
		for _, cs := range spanAt[spanOff[i]:spanOff[i+1]] {
			shs := shardOf[cs.proc]
			for si := range shs {
				sh := &shs[si]
				if relevant(cs.span, sh) {
					// Stash the span's MinStart positionally; the suffix-min
					// pass below turns the column into true watermarks.
					sh.watermarks[len(sh.chunks)] = cs.span.MinStart
					sh.chunks = append(sh.chunks, i)
					chunkShards[i] = append(chunkShards[i], sh)
				}
			}
		}
	}
	for si := range allShards {
		sh := &allShards[si]
		min := vclock.MaxTime
		for j := len(sh.chunks) - 1; j >= 0; j-- {
			if sh.watermarks[j] < min {
				min = sh.watermarks[j]
			}
			sh.watermarks[j] = min
		}
	}
	// An unbudgeted run buffers a shard's whole event population before its
	// final chunk dispatches it, so pre-sizing to the sidecar-derived upper
	// bound costs no memory the run would not reach anyway — and removes
	// every routing-append reallocation. A budgeted run keeps growth-from-
	// small: eviction is supposed to hold residency (and therefore slice
	// footprints) below the bound, so reserving evCap would defeat it.
	if opts.MaxResidentBytes == 0 {
		for si := range allShards {
			if sh := &allShards[si]; sh.nchunks > 0 {
				sh.events = make([]trace.Event, 0, sh.evCap)
			}
		}
	}

	// The merge side: commutative integer sums plus span extremes, so
	// concurrent completion order cannot leak into results.
	var mu sync.Mutex
	var inflightBytes, inflightEvents atomic.Int64
	pool := NewPool(ctx, opts.Workers)
	// One pooled Sweeper per pool worker (index 0 doubles as the inline
	// worker): sweep scratch is recycled across every window the worker
	// computes, and no locking is needed because a worker index is owned by
	// exactly one goroutine. Borrowed lazily, returned after pool.Wait.
	sweepers := make([]*overlap.Sweeper, pool.Workers())
	// workerRes[w] is worker w's reusable window result: ComputeWindowInto
	// clears and refills its maps, mergeShard folds them into the
	// per-process accumulator, and the next window reuses the storage — no
	// per-shard Result ever reaches the heap.
	workerRes := make([]overlap.Result, pool.Workers())
	returnSweepers := func() {
		for _, sw := range sweepers {
			if sw != nil {
				overlap.PutSweeper(sw)
			}
		}
	}
	dispatch := func(proc trace.ProcID, events []trace.Event, bytes int64, lo, hi vclock.Time) {
		if len(events) == 0 {
			return
		}
		stats.Shards++
		inflightBytes.Add(bytes)
		inflightEvents.Add(int64(len(events)))
		pool.Submit(func(worker int) {
			if sweepers[worker] == nil {
				sweepers[worker] = overlap.GetSweeper()
			}
			res := &workerRes[worker]
			sweepers[worker].ComputeWindowInto(res, events, lo, hi)
			mu.Lock()
			mergeShard(out[proc], res)
			mu.Unlock()
			inflightBytes.Add(-bytes)
			inflightEvents.Add(-int64(len(events)))
		})
	}

	var bufferedBytes int64
	var bufferedEvents int
	sample := func(chunkBytes int64, chunkEvents int) {
		bytes := bufferedBytes + chunkBytes + inflightBytes.Load()
		events := bufferedEvents + chunkEvents + int(inflightEvents.Load())
		if bytes > stats.PeakResidentBytes {
			stats.PeakResidentBytes = bytes
		}
		if events > stats.PeakResidentEvents {
			stats.PeakResidentEvents = events
		}
	}

	// evict finalizes the complete prefix [lo, watermark) of buffered,
	// still-incomplete shards — in fixed shard order, stopping as soon as
	// the resident total is back under budget — and drops events that can
	// no longer matter, carrying open intervals forward into the shrunken
	// window. The in-flight side of the stop condition drains at worker
	// speed; to keep that pressure from degenerating into busywork, shards
	// whose prefix would free nothing (every buffered event still alive at
	// the watermark) are skipped — dispatching them would cost a window
	// computation without reducing residency.
	evict := func(budget int64) {
		for si := range allShards {
			sh := &allShards[si]
			if bufferedBytes+inflightBytes.Load() <= budget {
				return
			}
			if len(sh.events) == 0 || sh.next >= len(sh.chunks) {
				continue // empty, or already complete and dispatched
			}
			cut := sh.watermarks[sh.next]
			if cut <= sh.lo {
				continue // future chunks may still start before lo
			}
			freeable := false
			for _, e := range sh.events {
				if trace.DeadBefore(e, cut) {
					freeable = true
					break
				}
			}
			if !freeable {
				continue
			}
			// Relevance guarantees every remaining chunk's MinStart < hi,
			// so cut < hi and [lo, cut) is a strict prefix. Partition the
			// buffer: the prefix computation needs only events overlapping
			// [lo, cut); the shard carries forward whatever is still alive
			// at the cut (events spanning it appear in both — ComputeWindow
			// restricts accumulation, not classification, so no instant is
			// counted twice).
			var prefix, survivors []trace.Event
			var prefixBytes, bytes int64
			for _, e := range sh.events {
				if trace.OverlapsWindow(e, sh.lo, cut) {
					prefix = append(prefix, e)
					prefixBytes += int64(trace.EventBytes(e))
				}
				if !trace.DeadBefore(e, cut) {
					survivors = append(survivors, e)
					bytes += int64(trace.EventBytes(e))
				}
			}
			dispatch(sh.proc, prefix, prefixBytes, sh.lo, cut)
			stats.Evictions++
			bufferedBytes += bytes - sh.bytes
			bufferedEvents += len(survivors) - len(sh.events)
			sh.events, sh.bytes, sh.lo = survivors, bytes, cut
		}
	}

	// routed tracks which processes received at least one event after the
	// stage's transform. A stage can drop every event of a process (the
	// correction stage erases processes that recorded nothing but overhead
	// markers); the materialized transform-then-Run path has no entry for
	// such a process, so the streaming path must shed its pre-planned one.
	var routed map[trace.ProcID]bool
	if stage != nil {
		routed = map[trace.ProcID]bool{}
	}

	bail := func(err error) (map[trace.ProcID]*overlap.Result, StreamStats, error) {
		pool.Wait()
		returnSweepers()
		return nil, stats, err
	}
	// process transforms (via the stage) and routes one decoded event into
	// every shard whose window it overlaps. The columnar path hands it
	// stack-constructed events straight off the column cursors; the v1 path
	// hands it the decode buffer's events. The stage's MapEvent needs an
	// addressable event, and taking &e would make the parameter escape on
	// every call — one heap Event per decoded event — so the address it gets
	// is the single captured staged variable instead.
	var chunkBytes int64
	var chunkEvents int
	var staged trace.Event
	process := func(e trace.Event) {
		if stage != nil {
			staged = e
			if !stage.MapEvent(&staged) {
				return
			}
			e = staged
		}
		chunkEvents++
		eb := int64(trace.EventBytes(e))
		chunkBytes += eb
		shs := shardOf[e.Proc]
		for si := range shs {
			sh := &shs[si]
			if trace.OverlapsWindow(e, sh.lo, sh.hi) {
				if routed != nil {
					routed[e.Proc] = true
				}
				sh.events = append(sh.events, e)
				sh.bytes += eb
				bufferedBytes += eb
				bufferedEvents++
			}
		}
	}
	var buf []trace.Event
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return bail(err)
		}
		if len(chunkShards[i]) == 0 {
			continue // contributes to no requested (process, window) shard
		}
		chunkBytes, chunkEvents = 0, 0
		cc, columnar, err := r.ReadColumns(i)
		if err != nil {
			return bail(err)
		}
		if columnar {
			// The v2 fast path: sweep the columns without materializing a
			// []Event — each event is built on the stack and routed.
			err := cc.Events(func(_ int, e trace.Event) bool {
				stats.Events++
				process(e)
				return true
			})
			if err != nil {
				return bail(&trace.ChunkError{Dir: r.Dir(), Chunk: r.ChunkName(i), Err: err})
			}
		} else {
			buf, err = r.ReadChunk(i, buf[:0])
			if err != nil {
				return bail(err)
			}
			stats.Events += len(buf)
			for j := range buf {
				process(buf[j])
			}
		}
		stats.ChunksDecoded++
		sample(chunkBytes, chunkEvents)
		for _, sh := range chunkShards[i] {
			sh.next++
			if sh.next == len(sh.chunks) {
				// Last contributing chunk decoded: the window is complete.
				dispatch(sh.proc, sh.events, sh.bytes, sh.lo, sh.hi)
				bufferedBytes -= sh.bytes
				bufferedEvents -= len(sh.events)
				sh.events, sh.bytes = nil, 0
			}
		}
		if opts.MaxResidentBytes > 0 && bufferedBytes+inflightBytes.Load() > opts.MaxResidentBytes {
			evict(opts.MaxResidentBytes)
		}
		sample(0, 0)
		if opts.Progress != nil {
			opts.Progress(Progress{
				Stage: StageAnalyze, ChunksDone: i + 1, Chunks: n,
				Shards: stats.Shards, Events: stats.Events,
			})
		}
	}
	pool.Wait()
	returnSweepers()
	// A cancellation that lands after the chunk loop can still have made
	// the pool drop queued shard computations; results would be silently
	// incomplete, so a cancelled run always reports its context error.
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if routed != nil {
		for _, p := range procs {
			if !routed[p] {
				delete(out, p)
			}
		}
	}
	return out, stats, nil
}
