package minigo

import (
	"fmt"
	"testing"

	"repro/internal/calib"

	"repro/internal/nvsmi"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// smallConfig keeps unit-test runtime low while preserving the pipeline
// structure (multiple workers, shared device).
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.SimsPerMove = 8
	cfg.LeafBatch = 4
	cfg.MaxMovesPerGame = 12
	cfg.EvalGames = 2
	cfg.TrainSteps = 4
	return cfg
}

func TestPipelineRuns(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Examples == 0 {
		t.Fatal("no training examples collected")
	}
	if len(res.WorkerTotal) != 4 {
		t.Fatalf("worker totals for %d workers, want 4", len(res.WorkerTotal))
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestWorkerGPUTimeTinyFractionOfTotal(t *testing.T) {
	// The heart of F.11: worker runtime is dominated by CPU-side MCTS
	// and inference dispatch; actual GPU execution is a sliver.
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for proc, total := range res.WorkerTotal {
		gpuTime := res.WorkerGPU[proc]
		if gpuTime == 0 {
			t.Fatalf("worker %d has no GPU time at all", proc)
		}
		frac := gpuTime.Seconds() / total.Seconds()
		if frac > 0.05 {
			t.Fatalf("worker %d GPU fraction %.1f%%, want < 5%%", proc, 100*frac)
		}
	}
}

func TestSampledUtilizationMisleads(t *testing.T) {
	// nvidia-smi-style sampling reads high while true utilization is
	// low. The sample period is scaled to the simulated span the same
	// way the paper's 1/6s period relates to its hours-long runs.
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	period := vclock.Duration(res.SpanEnd-res.SpanStart) / 40
	rep := nvsmi.Sample(res.Busy, res.SpanStart, res.SpanEnd, period)
	if rep.Utilization() < 0.9 {
		t.Fatalf("sampled utilization %.0f%%, expected ~100%%", 100*rep.Utilization())
	}
	if rep.TrueUtilization() > 0.5*rep.Utilization() {
		t.Fatalf("true utilization %.1f%% not far below sampled %.0f%%",
			100*rep.TrueUtilization(), 100*rep.Utilization())
	}
}

func TestWorkersShareOneDeviceConcurrently(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Workers run concurrently in virtual time: busy intervals from
	// different processes must interleave within the self-play span.
	procs := map[trace.ProcID]bool{}
	for _, b := range res.Busy {
		procs[b.Proc] = true
	}
	if len(procs) < 4 {
		t.Fatalf("device saw work from %d processes, want >= 4", len(procs))
	}
}

func TestTraceHasPaperOperations(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perProc := overlap.ComputeTrace(res.Trace)
	// Worker processes must show the Figure 2 operations, with
	// expand_leaf nested inside mcts_tree_search (the inner op wins
	// attribution during inference).
	workerChecked := false
	for proc, info := range res.Trace.Meta.Procs {
		if info.Parent < 0 {
			continue // trainer
		}
		r := perProc[proc]
		if r.OpTotal("mcts_tree_search") == 0 {
			t.Fatalf("worker %s has no mcts_tree_search time", info.Name)
		}
		if r.OpTotal("expand_leaf") == 0 {
			t.Fatalf("worker %s has no expand_leaf time", info.Name)
		}
		if r.GPUTime("expand_leaf") == 0 {
			t.Fatalf("worker %s expand_leaf has no GPU time", info.Name)
		}
		if r.GPUTime("mcts_tree_search") != 0 {
			t.Fatalf("worker %s tree traversal should be pure CPU", info.Name)
		}
		workerChecked = true
	}
	if !workerChecked {
		t.Fatal("no worker processes in trace")
	}
}

func TestPhasesRecorded(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	phases := map[string]bool{}
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindPhase {
			phases[e.Name] = true
		}
	}
	for _, want := range []string{"selfplay", "sgd_updates", "evaluation"} {
		if !phases[want] {
			t.Fatalf("phase %q missing; have %v", want, phases)
		}
	}
}

func TestForkRelationshipsRecorded(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	workers := 0
	for _, info := range res.Trace.Meta.Procs {
		if info.Parent == 0 {
			workers++
			if want := fmt.Sprintf("selfplay_worker_%d", workers-1); info.Name == "" {
				t.Fatalf("worker missing name (want like %s)", want)
			}
		}
	}
	if workers != 4 {
		t.Fatalf("trace has %d forked workers, want 4", workers)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero workers accepted")
	}
	cfg = DefaultConfig()
	cfg.BoardSize = 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("board size 1 accepted")
	}
}

func TestInstrumentedRunCorrectsAcrossProcesses(t *testing.T) {
	// A fully instrumented multi-process run must carry overhead markers
	// in every worker, and offline correction must shrink each process's
	// timeline.
	cfg := smallConfig()
	cfg.Flags = trace.Full()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perProc := map[trace.ProcID]int{}
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindOverhead {
			perProc[e.Proc]++
		}
	}
	if len(perProc) < cfg.Workers+1 {
		t.Fatalf("overhead markers in %d processes, want every worker + trainer", len(perProc))
	}
	cal := &calib.Calibration{
		Annotation:    3 * vclock.Microsecond,
		Interception:  6 * vclock.Microsecond,
		CUDAIntercept: 3 * vclock.Microsecond,
		CUPTI:         map[string]vclock.Duration{"cudaLaunchKernel": 5 * vclock.Microsecond},
	}
	corrected := calib.Correct(res.Trace, cal)
	for _, p := range res.Trace.ProcIDs() {
		before := overlap.Compute(res.Trace.ProcEvents(p))
		after := overlap.Compute(corrected.ProcEvents(p))
		db := before.SpanEnd - before.SpanStart
		da := after.SpanEnd - after.SpanStart
		if da >= db {
			t.Fatalf("proc %d did not shrink under correction: %v -> %v", p, db, da)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Examples != b.Examples || a.SpanEnd != b.SpanEnd {
		t.Fatalf("runs diverged: %d/%v vs %d/%v", a.Examples, a.SpanEnd, b.Examples, b.SpanEnd)
	}
}
