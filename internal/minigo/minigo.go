// Package minigo reproduces the paper's scale-up case study workload
// (§4.3, Appendix B.2): an AlphaGoZero-style training pipeline with three
// phases per generation —
//
//  1. self-play: N parallel worker processes play Go against themselves,
//     each running minibatched MCTS leaf evaluations on the shared GPU;
//  2. SGD-updates: the collected (position, visit-policy, outcome) examples
//     train a candidate policy/value network;
//  3. evaluation: the candidate plays the current model; the winner becomes
//     the next generation.
//
// The paper's Minigo plays 19×19 Go with 16 workers for thousands of
// seconds; this reproduction defaults to 9×9 with the same 16-worker
// structure, preserving the finding that per-worker GPU time is a tiny
// fraction of per-worker runtime even while a sampled utilization monitor
// reads ~100% (F.11).
package minigo

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/backend"
	"repro/internal/cuda"
	"repro/internal/goboard"
	"repro/internal/gpu"
	"repro/internal/mcts"
	"repro/internal/nn"
	"repro/internal/profiler"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Config sizes the pipeline. The defaults scale the paper's workload down
// to simulation-friendly sizes while keeping its structure.
type Config struct {
	BoardSize       int
	Workers         int
	GamesPerWorker  int
	SimsPerMove     int
	LeafBatch       int
	MaxMovesPerGame int
	EvalGames       int
	TrainBatch      int
	TrainSteps      int
	Seed            int64
	Flags           trace.FeatureFlags
}

// DefaultConfig returns the scaled-down Minigo configuration.
func DefaultConfig() Config {
	return Config{
		BoardSize:       9,
		Workers:         16,
		GamesPerWorker:  1,
		SimsPerMove:     24,
		LeafBatch:       8,
		MaxMovesPerGame: 40,
		EvalGames:       4,
		TrainBatch:      32,
		TrainSteps:      16,
		Seed:            1,
		Flags:           trace.Uninstrumented(),
	}
}

// Example is one self-play training example.
type Example struct {
	Features []float64
	Policy   []float64
	// Outcome is +1 if the side to move at this position won, −1 if it
	// lost, 0 for a tie.
	Outcome float64
}

// Result is the outcome of one pipeline generation.
type Result struct {
	Trace *trace.Trace
	// WorkerTotal and WorkerGPU give each self-play worker's total
	// runtime and GPU-busy time (the Figure 8 bars).
	WorkerTotal map[trace.ProcID]vclock.Duration
	WorkerGPU   map[trace.ProcID]vclock.Duration
	// Busy is the device's busy ledger for utilization sampling.
	Busy []gpu.Busy
	// Span is the virtual extent of the self-play phase.
	SpanStart, SpanEnd vclock.Time
	// Examples collected, Promoted reports whether the candidate won
	// evaluation.
	Examples int
	Promoted bool
}

// pvnet is the policy/value network: one trunk MLP whose output packs
// N²+1 policy logits plus a value scalar.
type pvnet struct {
	net *backend.Network
	n   int
}

func newPVNet(rng *rand.Rand, name string, boardSize int) *pvnet {
	in := goboard.FeatureDim(boardSize)
	out := boardSize*boardSize + 2
	return &pvnet{
		net: backend.NewNetwork(rng, name, []int{in, 64, 64, out}, nn.ReLU, nn.Identity),
		n:   boardSize,
	}
}

// evaluator runs pvnet inference through a backend with the paper's
// annotation structure: callers wrap Evaluate in the expand_leaf operation.
type evaluator struct {
	b    *backend.Backend
	sess *profiler.Session
	pv   *pvnet
}

// Evaluate implements mcts.Evaluator: one batched inference per leaf
// minibatch, annotated as expand_leaf (paper Figure 2).
func (e *evaluator) Evaluate(boards []*goboard.Board) ([][]float64, []float64) {
	x := nn.NewTensor(len(boards), goboard.FeatureDim(e.pv.n))
	for i, bd := range boards {
		copy(x.Row(i), bd.Features())
	}
	var out *nn.Tensor
	e.sess.WithOperation("expand_leaf", func() {
		e.b.Compute("minigo/predict", backend.KindInference, func(c *backend.Comp) {
			c.Feed(x)
			out = c.Forward(e.pv.net, x)
			c.Fetch(out)
		})
	})
	nPolicy := e.pv.n*e.pv.n + 1
	priors := make([][]float64, len(boards))
	values := make([]float64, len(boards))
	for i := range boards {
		row := out.Row(i)
		logits := nn.FromVec(row[:nPolicy])
		priors[i] = nn.Softmax(logits).Row(0)
		values[i] = tanh(row[nPolicy])
	}
	return priors, values
}

func tanh(x float64) float64 {
	// math.Tanh via nn's activation to keep behaviour uniform.
	t := nn.FromVec([]float64{x})
	return nn.Tanh.Apply(t).At(0, 0)
}

// traverseCost is the high-level Python time one MCTS tree traversal
// spends walking the move-expansion tree (paper Figure 2's
// mcts_tree_search). Python MCTS is slow — several hundred microseconds per
// simulation — which is precisely why self-play workers barely use the GPU
// (paper F.11: 20 s of GPU execution in a 5080 s worker).
var traverseCost = vclock.Jittered(300*vclock.Microsecond, 0.25)

// Run executes one generation of the pipeline and returns its result.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers <= 0 || cfg.BoardSize < 3 {
		return nil, fmt.Errorf("minigo: invalid config %+v", cfg)
	}
	p := profiler.New(profiler.Options{
		Workload: "minigo",
		Flags:    cfg.Flags,
		Seed:     cfg.Seed,
	})
	dev := gpu.NewDevice(-1)

	trainer := p.NewProcess("trainer", -1, 0)
	trainerCtx := cuda.NewContext(trainer, dev, cuda.DefaultCosts())
	trainerBackend := backend.New(trainer, trainerCtx, backend.Graph)

	rng := rand.New(rand.NewSource(cfg.Seed))
	current := newPVNet(rng, "pv_current", cfg.BoardSize)

	// Trainer-side setup time before forking workers.
	trainer.Python(vclock.Jittered(2*vclock.Millisecond, 0.1))
	forkAt := trainer.Clock().Now()

	// --- Phase 1: parallel self-play ---
	res := &Result{
		WorkerTotal: map[trace.ProcID]vclock.Duration{},
		WorkerGPU:   map[trace.ProcID]vclock.Duration{},
		SpanStart:   forkAt,
	}
	// Workers run on their own goroutines, sharing the device exactly as
	// the paper's 16 self-play processes share one GPU. Sessions are
	// created up front (process fork), and per-worker results are
	// collected by slot so the pipeline stays deterministic regardless
	// of goroutine scheduling.
	sessions := make([]*profiler.Session, cfg.Workers)
	for w := range sessions {
		sessions[w] = p.NewProcess(fmt.Sprintf("selfplay_worker_%d", w), trainer.Proc(), forkAt)
	}
	perWorker := make([][]Example, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sessions[w]
			ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())
			b := backend.New(sess, ctx, backend.Graph)
			// Each worker plays with a copy of the current weights.
			workerNet := newPVNet(rand.New(rand.NewSource(cfg.Seed+100+int64(w))), "pv_worker", cfg.BoardSize)
			current.net.MLP.CopyTo(workerNet.net.MLP)
			ev := &evaluator{b: b, sess: sess, pv: workerNet}

			sess.SetPhase("selfplay")
			for g := 0; g < cfg.GamesPerWorker; g++ {
				exs := playGame(cfg, sess, ev, cfg.Seed+int64(w)*31+int64(g))
				perWorker[w] = append(perWorker[w], exs...)
			}
			sess.Close()
		}(w)
	}
	wg.Wait()
	var examples []Example
	var lastEnd vclock.Time
	for w, sess := range sessions {
		examples = append(examples, perWorker[w]...)
		res.WorkerTotal[sess.Proc()] = sess.Elapsed()
		if end := sess.Clock().Now(); end > lastEnd {
			lastEnd = end
		}
	}
	res.SpanEnd = lastEnd
	// Per-worker GPU time from the device ledger.
	busy := dev.BusyIntervals()
	for _, bz := range busy {
		res.WorkerGPU[bz.Proc] += bz.Duration()
	}
	res.Busy = busy
	res.Examples = len(examples)

	// Trainer waited for the self-play pool to drain (process join).
	trainer.Clock().AdvanceTo(lastEnd)

	// --- Phase 2: SGD updates propose a candidate ---
	trainer.SetPhase("sgd_updates")
	candidate := newPVNet(rand.New(rand.NewSource(cfg.Seed+999)), "pv_candidate", cfg.BoardSize)
	current.net.MLP.CopyTo(candidate.net.MLP)
	trainCandidate(cfg, trainer, trainerBackend, candidate, examples, rng)

	// --- Phase 3: evaluation chooses the next generation ---
	trainer.SetPhase("evaluation")
	wins := evaluateCandidate(cfg, trainer, trainerBackend, candidate, current)
	res.Promoted = float64(wins) > float64(cfg.EvalGames)*0.55

	trainer.Close()
	tr, err := p.Trace()
	if err != nil {
		return nil, err
	}
	res.Trace = tr
	return res, nil
}

// playGame runs one self-play game, returning its training examples.
func playGame(cfg Config, sess *profiler.Session, ev *evaluator, seed int64) []Example {
	board := goboard.New(cfg.BoardSize)
	tree := mcts.New(board, ev, seed)
	tree.BatchSize = cfg.LeafBatch
	tree.RootNoise = true // self-play explores; evaluation does not
	tree.OnTraverse = func() { sess.Python(traverseCost) }

	type pending struct {
		features []float64
		policy   []float64
		toPlay   goboard.Color
	}
	var history []pending
	for !board.GameOver() && board.Moves() < cfg.MaxMovesPerGame {
		sess.WithOperation("mcts_tree_search", func() {
			tree.Search(cfg.SimsPerMove)
		})
		history = append(history, pending{
			features: board.Features(),
			policy:   tree.VisitPolicy(),
			toPlay:   board.ToPlay(),
		})
		var move int
		if board.Moves() < 6 {
			move = tree.SampleMove()
		} else {
			move = tree.BestMove()
		}
		_ = board.Play(move)
		tree.Advance(move)
	}
	winner := board.Winner(7.5)
	out := make([]Example, len(history))
	for i, h := range history {
		z := 0.0
		if winner == h.toPlay {
			z = 1
		} else if winner != goboard.Empty {
			z = -1
		}
		out[i] = Example{Features: h.features, Policy: h.policy, Outcome: z}
	}
	return out
}

// trainCandidate runs the SGD-updates phase on the collected examples.
func trainCandidate(cfg Config, sess *profiler.Session, b *backend.Backend, cand *pvnet, examples []Example, rng *rand.Rand) {
	if len(examples) == 0 {
		return
	}
	opt := nn.NewAdam(1e-3)
	nPolicy := cfg.BoardSize*cfg.BoardSize + 1
	for step := 0; step < cfg.TrainSteps; step++ {
		batch := cfg.TrainBatch
		if batch > len(examples) {
			batch = len(examples)
		}
		x := nn.NewTensor(batch, goboard.FeatureDim(cfg.BoardSize))
		pis := make([][]float64, batch)
		zs := make([]float64, batch)
		sess.Python(vclock.Jittered(vclock.Duration(batch)*800*vclock.Nanosecond, 0.2))
		for i := 0; i < batch; i++ {
			ex := examples[rng.Intn(len(examples))]
			copy(x.Row(i), ex.Features)
			pis[i] = ex.Policy
			zs[i] = ex.Outcome
		}
		sess.WithOperation("backpropagation", func() {
			b.Compute("minigo/train_step", backend.KindBackprop, func(c *backend.Comp) {
				c.Feed(x)
				c.ZeroGrad(cand.net)
				out := c.Forward(cand.net, x)
				var grad *nn.Tensor
				c.HostLoss("minigo/loss", func() {
					grad = pvLossGrad(out, pis, zs, nPolicy)
				})
				c.Backward(cand.net, grad)
				c.AdamStepFused(cand.net, opt)
			})
		})
	}
}

// pvLossGrad computes d(policy cross-entropy + value MSE)/d(output).
func pvLossGrad(out *nn.Tensor, pis [][]float64, zs []float64, nPolicy int) *nn.Tensor {
	grad := nn.NewTensor(out.Rows, out.Cols)
	nb := float64(out.Rows)
	for i := 0; i < out.Rows; i++ {
		logits := nn.FromVec(out.Row(i)[:nPolicy])
		probs := nn.Softmax(logits).Row(0)
		// d(−Σ π log p)/dlogit_j = p_j − π_j
		for j := 0; j < nPolicy; j++ {
			grad.Set(i, j, (probs[j]-pis[i][j])/nb)
		}
		// Value head: v = tanh(raw); d(v−z)²/draw = 2(v−z)(1−v²).
		raw := out.At(i, nPolicy)
		v := tanh(raw)
		grad.Set(i, nPolicy, 2*(v-zs[i])*(1-v*v)/nb)
	}
	return grad
}

// evaluateCandidate plays candidate (Black) vs current (White), alternating
// colors per game, and returns the candidate's wins. The paper notes Minigo
// does not parallelize evaluation; it runs on the trainer process.
func evaluateCandidate(cfg Config, sess *profiler.Session, b *backend.Backend, cand, cur *pvnet) int {
	wins := 0
	for g := 0; g < cfg.EvalGames; g++ {
		candIsBlack := g%2 == 0
		board := goboard.New(cfg.BoardSize)
		evCand := &evaluator{b: b, sess: sess, pv: cand}
		evCur := &evaluator{b: b, sess: sess, pv: cur}
		tCand := mcts.New(board, evCand, cfg.Seed+1000+int64(g))
		tCur := mcts.New(board, evCur, cfg.Seed+2000+int64(g))
		tCand.BatchSize, tCur.BatchSize = cfg.LeafBatch, cfg.LeafBatch
		tCand.OnTraverse = func() { sess.Python(traverseCost) }
		tCur.OnTraverse = func() { sess.Python(traverseCost) }
		for !board.GameOver() && board.Moves() < cfg.MaxMovesPerGame {
			mine := tCand
			if (board.ToPlay() == goboard.Black) != candIsBlack {
				mine = tCur
			}
			var move int
			sess.WithOperation("mcts_tree_search", func() {
				mine.Search(cfg.SimsPerMove / 2)
				move = mine.BestMove()
			})
			_ = board.Play(move)
			tCand.Advance(move)
			tCur.Advance(move)
		}
		winner := board.Winner(7.5)
		if (winner == goboard.Black) == candIsBlack && winner != goboard.Empty {
			wins++
		}
	}
	return wins
}
