// Package goboard implements the rules of the game of Go on small boards:
// legal move generation, capture, the simple-ko rule, suicide prohibition,
// area (Tromp-Taylor) scoring, and Zobrist hashing. It is the game substrate
// for the Minigo scale-up case study (paper §4.3): AlphaGoZero-style
// self-play needs a real board, real legality checks, and real outcomes.
package goboard

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Color of a stone or player.
type Color int8

// Colors. Empty doubles as "no stone".
const (
	Empty Color = iota
	Black
	White
)

// Opponent returns the other player.
func (c Color) Opponent() Color {
	switch c {
	case Black:
		return White
	case White:
		return Black
	default:
		return Empty
	}
}

// String returns B/W/. for display.
func (c Color) String() string {
	switch c {
	case Black:
		return "B"
	case White:
		return "W"
	default:
		return "."
	}
}

// Pass is the move index meaning "pass".
const Pass = -1

// Board is an N×N Go position with move history state (ko, captures).
type Board struct {
	N      int
	cells  []Color
	toPlay Color
	// koPoint is the point illegal due to simple ko (-1 when none).
	koPoint int
	// consecutive passes end the game.
	passes int
	moves  int
	hash   uint64
	zob    *zobrist
}

// zobrist holds the hashing table for one board size.
type zobrist struct {
	table [][2]uint64 // per point, per color
	turn  uint64
}

var (
	zobMu    sync.Mutex
	zobCache = map[int]*zobrist{}
)

// zobristFor returns the shared hashing table for one board size. Boards
// are created concurrently by Minigo's self-play workers, so the cache is
// guarded.
func zobristFor(n int) *zobrist {
	zobMu.Lock()
	defer zobMu.Unlock()
	if z, ok := zobCache[n]; ok {
		return z
	}
	rng := rand.New(rand.NewSource(0x60B0A4D + int64(n)))
	z := &zobrist{table: make([][2]uint64, n*n), turn: rng.Uint64()}
	for i := range z.table {
		z.table[i][0] = rng.Uint64()
		z.table[i][1] = rng.Uint64()
	}
	zobCache[n] = z
	return z
}

// New creates an empty board with Black to play.
func New(n int) *Board {
	if n < 3 || n > 19 {
		panic(fmt.Sprintf("goboard: unsupported board size %d", n))
	}
	return &Board{
		N:       n,
		cells:   make([]Color, n*n),
		toPlay:  Black,
		koPoint: -1,
		zob:     zobristFor(n),
	}
}

// Clone deep-copies the position (MCTS expands on clones).
func (b *Board) Clone() *Board {
	c := *b
	c.cells = append([]Color(nil), b.cells...)
	return &c
}

// ToPlay returns the player to move.
func (b *Board) ToPlay() Color { return b.toPlay }

// Moves returns the number of moves played (including passes).
func (b *Board) Moves() int { return b.moves }

// Hash returns the Zobrist hash of (stones, side to move).
func (b *Board) Hash() uint64 {
	if b.toPlay == White {
		return b.hash ^ b.zob.turn
	}
	return b.hash
}

// At returns the stone at point p (row*N+col).
func (b *Board) At(p int) Color { return b.cells[p] }

// Point converts row/col to a point index.
func (b *Board) Point(row, col int) int { return row*b.N + col }

// neighbors appends p's orthogonal neighbors to buf.
func (b *Board) neighbors(p int, buf []int) []int {
	row, col := p/b.N, p%b.N
	if row > 0 {
		buf = append(buf, p-b.N)
	}
	if row < b.N-1 {
		buf = append(buf, p+b.N)
	}
	if col > 0 {
		buf = append(buf, p-1)
	}
	if col < b.N-1 {
		buf = append(buf, p+1)
	}
	return buf
}

// group flood-fills the chain containing p, returning its points and
// whether it has at least one liberty.
func (b *Board) group(p int, visited []bool) (points []int, hasLiberty bool) {
	color := b.cells[p]
	stack := []int{p}
	visited[p] = true
	var nbuf [4]int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		points = append(points, cur)
		for _, nb := range b.neighbors(cur, nbuf[:0]) {
			switch {
			case b.cells[nb] == Empty:
				hasLiberty = true
			case b.cells[nb] == color && !visited[nb]:
				visited[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return points, hasLiberty
}

// Legal reports whether the move is legal for the side to play.
func (b *Board) Legal(p int) bool {
	if p == Pass {
		return true
	}
	if p < 0 || p >= len(b.cells) || b.cells[p] != Empty || p == b.koPoint {
		return false
	}
	// Try the move on a scratch copy only when needed: fast path —
	// if the point has an empty neighbor it cannot be suicide.
	var nbuf [4]int
	me := b.toPlay
	captures := false
	for _, nb := range b.neighbors(p, nbuf[:0]) {
		if b.cells[nb] == Empty {
			return true
		}
		if b.cells[nb] == me.Opponent() {
			// Capturing if that chain has exactly this liberty.
			if b.libertiesAfterRemoval(nb, p) == 0 {
				captures = true
			}
		}
	}
	if captures {
		return true
	}
	// No empty neighbor and no capture: legal only if joining a friendly
	// chain that retains a liberty besides p.
	visited := make([]bool, len(b.cells))
	visited[p] = true
	for _, nb := range b.neighbors(p, nbuf[:0]) {
		if b.cells[nb] != me || visited[nb] {
			continue
		}
		pts, _ := b.group(nb, visited)
		for _, gp := range pts {
			var n2 [4]int
			for _, lib := range b.neighbors(gp, n2[:0]) {
				if b.cells[lib] == Empty && lib != p {
					return true
				}
			}
		}
	}
	return false
}

// libertiesAfterRemoval counts the liberties of the chain containing p,
// treating point removed as occupied.
func (b *Board) libertiesAfterRemoval(p, occupied int) int {
	visited := make([]bool, len(b.cells))
	pts, _ := b.group(p, visited)
	libs := map[int]bool{}
	var nbuf [4]int
	for _, gp := range pts {
		for _, nb := range b.neighbors(gp, nbuf[:0]) {
			if b.cells[nb] == Empty && nb != occupied {
				libs[nb] = true
			}
		}
	}
	return len(libs)
}

// Play executes a move (or Pass) for the side to play. It returns an error
// for illegal moves. Game over is reported by GameOver after two passes.
func (b *Board) Play(p int) error {
	if p == Pass {
		b.passes++
		b.moves++
		b.koPoint = -1
		b.toPlay = b.toPlay.Opponent()
		return nil
	}
	if !b.Legal(p) {
		return fmt.Errorf("goboard: illegal move %d for %v", p, b.toPlay)
	}
	me := b.toPlay
	b.place(p, me)
	// Capture opponent chains left without liberties.
	var nbuf [4]int
	capturedTotal := 0
	lastCaptured := -1
	for _, nb := range b.neighbors(p, nbuf[:0]) {
		if b.cells[nb] != me.Opponent() {
			continue
		}
		visited := make([]bool, len(b.cells))
		pts, hasLib := b.group(nb, visited)
		if !hasLib {
			for _, cp := range pts {
				b.remove(cp)
				capturedTotal++
				lastCaptured = cp
			}
		}
	}
	// Simple ko: single-stone capture by a single stone with no other
	// liberties makes the captured point immediately illegal.
	b.koPoint = -1
	if capturedTotal == 1 {
		visited := make([]bool, len(b.cells))
		pts, _ := b.group(p, visited)
		if len(pts) == 1 && b.libertiesAfterRemoval(p, -1) == 1 {
			b.koPoint = lastCaptured
		}
	}
	b.passes = 0
	b.moves++
	b.toPlay = me.Opponent()
	return nil
}

func (b *Board) place(p int, c Color) {
	b.cells[p] = c
	b.hash ^= b.zob.table[p][c-1]
}

func (b *Board) remove(p int) {
	c := b.cells[p]
	b.cells[p] = Empty
	b.hash ^= b.zob.table[p][c-1]
}

// GameOver reports whether two consecutive passes ended the game (or the
// move limit was hit — 2·N² moves, as Minigo enforces).
func (b *Board) GameOver() bool {
	return b.passes >= 2 || b.moves >= 2*b.N*b.N
}

// LegalMoves returns all legal point moves for the side to play (Pass is
// always additionally legal).
func (b *Board) LegalMoves() []int {
	var out []int
	for p := range b.cells {
		if b.Legal(p) {
			out = append(out, p)
		}
	}
	return out
}

// Score returns Tromp-Taylor area scores: (black, white). komi is added to
// white by the caller.
func (b *Board) Score() (black, white float64) {
	visited := make([]bool, len(b.cells))
	var nbuf [4]int
	for p, c := range b.cells {
		switch c {
		case Black:
			black++
		case White:
			white++
		case Empty:
			if visited[p] {
				continue
			}
			// Flood-fill the empty region; it scores for a color
			// iff it borders only that color.
			stack := []int{p}
			visited[p] = true
			var region []int
			bordersBlack, bordersWhite := false, false
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				region = append(region, cur)
				for _, nb := range b.neighbors(cur, nbuf[:0]) {
					switch b.cells[nb] {
					case Black:
						bordersBlack = true
					case White:
						bordersWhite = true
					case Empty:
						if !visited[nb] {
							visited[nb] = true
							stack = append(stack, nb)
						}
					}
				}
			}
			if bordersBlack && !bordersWhite {
				black += float64(len(region))
			} else if bordersWhite && !bordersBlack {
				white += float64(len(region))
			}
		}
	}
	return black, white
}

// Winner returns the winning color under the given komi (added to White);
// Empty means a tie (impossible for fractional komi).
func (b *Board) Winner(komi float64) Color {
	black, white := b.Score()
	white += komi
	switch {
	case black > white:
		return Black
	case white > black:
		return White
	default:
		return Empty
	}
}

// Features encodes the position as a flat float vector for the policy/value
// network: two planes (own stones, opponent stones) plus a side-to-move bit.
func (b *Board) Features() []float64 {
	n2 := len(b.cells)
	out := make([]float64, 2*n2+1)
	me := b.toPlay
	for p, c := range b.cells {
		switch c {
		case me:
			out[p] = 1
		case me.Opponent():
			out[n2+p] = 1
		}
	}
	if me == Black {
		out[2*n2] = 1
	}
	return out
}

// FeatureDim returns len(Features()) for an N×N board.
func FeatureDim(n int) int { return 2*n*n + 1 }

// String renders the board for debugging.
func (b *Board) String() string {
	var sb strings.Builder
	for r := 0; r < b.N; r++ {
		for c := 0; c < b.N; c++ {
			sb.WriteString(b.cells[b.Point(r, c)].String())
			if c < b.N-1 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
