package goboard

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPlay(t *testing.T, b *Board, points ...int) {
	t.Helper()
	for _, p := range points {
		if err := b.Play(p); err != nil {
			t.Fatalf("Play(%d): %v", p, err)
		}
	}
}

func TestSimpleCapture(t *testing.T) {
	b := New(5)
	// Black surrounds a white stone at (1,1): neighbors (0,1),(1,0),(1,2),(2,1).
	mustPlay(t, b,
		b.Point(0, 1), // B
		b.Point(1, 1), // W — the victim
		b.Point(1, 0), // B
		b.Point(4, 4), // W elsewhere
		b.Point(1, 2), // B
		b.Point(4, 3), // W elsewhere
		b.Point(2, 1), // B captures
	)
	if got := b.At(b.Point(1, 1)); got != Empty {
		t.Fatalf("white stone not captured: %v", got)
	}
}

func TestSuicideIllegal(t *testing.T) {
	b := New(5)
	// Black stones around (0,0): (0,1) and (1,0). White to play cannot
	// fill (0,0).
	mustPlay(t, b,
		b.Point(0, 1), // B
		b.Point(3, 3), // W
		b.Point(1, 0), // B
	)
	if b.ToPlay() != White {
		t.Fatal("expected white to move")
	}
	if b.Legal(b.Point(0, 0)) {
		t.Fatal("suicide at (0,0) reported legal")
	}
}

func TestCaptureBeatsSuicide(t *testing.T) {
	b := New(5)
	// White plays into a point with no liberties but captures first:
	// corner position — B(0,0), B(1,1) is not enough; build classic
	// snapback-like shape:
	//   . B W
	//   B W .
	//   W . .
	// White at (0,0)? (0,0) neighbors: (0,1)=B, (1,0)=B → suicide for W
	// unless capturing. Give the B(0,1) chain one liberty at (0,0) only:
	mustPlay(t, b,
		b.Point(0, 1), // B
		b.Point(0, 2), // W
		b.Point(1, 0), // B
		b.Point(1, 1), // W
		b.Point(4, 4), // B elsewhere
		b.Point(2, 0), // W
		Pass,          // B
	)
	// Now B(0,1) has one liberty at (0,0): neighbors (0,2)=W, (1,1)=W.
	// Likewise B(1,0): neighbors (1,1)=W, (2,0)=W. White playing (0,0)
	// captures both black stones despite having no liberty itself at
	// placement.
	if b.ToPlay() != White {
		t.Fatal("expected white to move")
	}
	if !b.Legal(b.Point(0, 0)) {
		t.Fatal("capturing move misclassified as suicide")
	}
	mustPlay(t, b, b.Point(0, 0))
	if b.At(b.Point(0, 1)) != Empty || b.At(b.Point(1, 0)) != Empty {
		t.Fatal("black stones not captured")
	}
}

func TestSimpleKoForbidden(t *testing.T) {
	b := New(5)
	// Classic ko around (1,1)/(1,2):
	//   . B W .
	//   B W . W      (white ko stone at (1,1))
	//   . B W .
	// Black captures at (1,2); white may not recapture immediately.
	mustPlay(t, b,
		b.Point(0, 1), // B
		b.Point(0, 2), // W
		b.Point(1, 0), // B
		b.Point(1, 3), // W
		b.Point(2, 1), // B
		b.Point(2, 2), // W
		b.Point(4, 4), // B elsewhere
		b.Point(1, 1), // W — the ko stone
		b.Point(1, 2), // B captures W(1,1)
	)
	if b.At(b.Point(1, 1)) != Empty {
		t.Fatal("ko capture did not happen")
	}
	// White may not immediately recapture at (1,1).
	if b.ToPlay() != White {
		t.Fatal("expected white to move")
	}
	if b.Legal(b.Point(1, 1)) {
		t.Fatal("immediate ko recapture reported legal")
	}
	// After a ko threat elsewhere, recapture becomes legal.
	mustPlay(t, b, b.Point(4, 0)) // W elsewhere
	mustPlay(t, b, b.Point(3, 4)) // B elsewhere
	if !b.Legal(b.Point(1, 1)) {
		t.Fatal("ko recapture still illegal after intervening moves")
	}
}

func TestTwoPassesEndGame(t *testing.T) {
	b := New(5)
	mustPlay(t, b, Pass)
	if b.GameOver() {
		t.Fatal("one pass ended the game")
	}
	mustPlay(t, b, Pass)
	if !b.GameOver() {
		t.Fatal("two passes did not end the game")
	}
}

func TestAreaScoring(t *testing.T) {
	b := New(5)
	// Black wall on column 2 splits the board; black stones plus left
	// territory vs white stones on the right.
	for r := 0; r < 5; r++ {
		mustPlay(t, b, b.Point(r, 2)) // B
		if r < 4 {
			mustPlay(t, b, b.Point(r, 4)) // W
		} else {
			mustPlay(t, b, Pass)
		}
	}
	black, white := b.Score()
	// Black: 5 stones + 10 territory (cols 0-1); white: 4 stones; col 3
	// borders both → neutral.
	if black != 15 {
		t.Fatalf("black score = %v, want 15", black)
	}
	if white != 4 {
		t.Fatalf("white score = %v, want 4", white)
	}
	if b.Winner(7.5) != Black {
		t.Fatalf("winner = %v, want Black", b.Winner(7.5))
	}
}

func TestEmptyBoardScoreNeutral(t *testing.T) {
	b := New(5)
	black, white := b.Score()
	if black != 0 || white != 0 {
		t.Fatalf("empty board scored %v/%v", black, white)
	}
	if b.Winner(7.5) != White {
		t.Fatal("komi should decide an empty board")
	}
}

func TestZobristHashUpdatesIncrementally(t *testing.T) {
	b := New(5)
	h0 := b.Hash()
	mustPlay(t, b, b.Point(2, 2))
	h1 := b.Hash()
	if h0 == h1 {
		t.Fatal("hash unchanged after move")
	}
	// Rebuild the same position from scratch: hash must match.
	b2 := New(5)
	mustPlay(t, b2, b2.Point(2, 2))
	if b2.Hash() != h1 {
		t.Fatal("hash not a pure function of position")
	}
}

func TestFeaturesEncodeSideToMove(t *testing.T) {
	b := New(5)
	f := b.Features()
	if len(f) != FeatureDim(5) {
		t.Fatalf("feature dim %d, want %d", len(f), FeatureDim(5))
	}
	if f[len(f)-1] != 1 {
		t.Fatal("black-to-move bit not set")
	}
	mustPlay(t, b, b.Point(0, 0))
	f = b.Features()
	if f[len(f)-1] != 0 {
		t.Fatal("white-to-move bit wrong")
	}
	// The black stone at point 0 is now the *opponent's* stone from
	// white's perspective: second plane.
	if f[0] != 0 || f[25+0] != 1 {
		t.Fatal("planes not relative to side to move")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	b := New(5)
	c := b.Clone()
	mustPlay(t, b, b.Point(0, 0))
	if c.At(c.Point(0, 0)) != Empty {
		t.Fatal("clone shares storage with original")
	}
}

func TestIllegalMoveRejected(t *testing.T) {
	b := New(5)
	mustPlay(t, b, b.Point(0, 0))
	if err := b.Play(b.Point(0, 0)); err == nil {
		t.Fatal("occupied point accepted")
	}
	if err := b.Play(999); err == nil {
		t.Fatal("out-of-range point accepted")
	}
}

// Property: random legal playouts never corrupt the board — every stone has
// a liberty after each move (no zombie chains), and hashes stay consistent
// with a from-scratch recount.
func TestRandomPlayoutInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(5)
		for !b.GameOver() {
			moves := b.LegalMoves()
			if len(moves) == 0 || rng.Intn(8) == 0 {
				if err := b.Play(Pass); err != nil {
					return false
				}
				continue
			}
			if err := b.Play(moves[rng.Intn(len(moves))]); err != nil {
				return false
			}
			// No chain may be liberty-less after a completed move.
			visited := make([]bool, b.N*b.N)
			for p := 0; p < b.N*b.N; p++ {
				if b.At(p) == Empty || visited[p] {
					continue
				}
				if _, hasLib := b.group(p, visited); !hasLib {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveLimitEndsGame(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := New(3)
	for i := 0; i < 2*9*2+10 && !b.GameOver(); i++ {
		moves := b.LegalMoves()
		if len(moves) == 0 {
			b.Play(Pass)
			continue
		}
		b.Play(moves[rng.Intn(len(moves))])
	}
	if !b.GameOver() {
		t.Fatal("game did not terminate at move limit")
	}
}
