package mcts

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/goboard"
)

// uniformEval returns flat priors and zero values — search reduces to
// visit-count bookkeeping we can verify.
type uniformEval struct{ calls, boards int }

func (u *uniformEval) Evaluate(boards []*goboard.Board) ([][]float64, []float64) {
	u.calls++
	u.boards += len(boards)
	priors := make([][]float64, len(boards))
	values := make([]float64, len(boards))
	for i, b := range boards {
		n := b.N*b.N + 1
		pr := make([]float64, n)
		for j := range pr {
			pr[j] = 1 / float64(n)
		}
		priors[i] = pr
	}
	return priors, values
}

// biasedEval prefers a specific move strongly.
type biasedEval struct {
	move  int
	value float64
}

func (e *biasedEval) Evaluate(boards []*goboard.Board) ([][]float64, []float64) {
	priors := make([][]float64, len(boards))
	values := make([]float64, len(boards))
	for i, b := range boards {
		n := b.N*b.N + 1
		pr := make([]float64, n)
		for j := range pr {
			pr[j] = 0.01
		}
		pr[e.move] = 10
		priors[i] = pr
		values[i] = e.value
	}
	return priors, values
}

func TestSearchAccumulatesVisits(t *testing.T) {
	ev := &uniformEval{}
	tree := New(goboard.New(5), ev, 1)
	tree.Search(40)
	if got := tree.RootVisits(); got != 40 {
		t.Fatalf("root visits = %d, want 40", got)
	}
}

func TestSearchBatchesLeafEvaluations(t *testing.T) {
	ev := &uniformEval{}
	tree := New(goboard.New(5), ev, 1)
	tree.BatchSize = 8
	ev.calls, ev.boards = 0, 0 // ignore the root expansion
	tree.Search(32)
	if ev.calls == 0 {
		t.Fatal("no evaluator calls")
	}
	// Minibatching: strictly fewer calls than leaves evaluated.
	if ev.calls >= ev.boards {
		t.Fatalf("no batching: %d calls for %d boards", ev.calls, ev.boards)
	}
	avg := float64(ev.boards) / float64(ev.calls)
	if avg < 2 {
		t.Fatalf("average batch %f too small", avg)
	}
}

func TestBestMoveFollowsStrongPrior(t *testing.T) {
	b := goboard.New(5)
	target := b.Point(2, 2)
	ev := &biasedEval{move: target, value: 0.3}
	tree := New(b, ev, 2)
	tree.Search(60)
	if got := tree.BestMove(); got != target {
		t.Fatalf("BestMove = %d, want %d", got, target)
	}
}

func TestVisitPolicySumsToOne(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 3)
	tree.Search(30)
	pi := tree.VisitPolicy()
	if len(pi) != 26 {
		t.Fatalf("policy length %d, want 26", len(pi))
	}
	var sum float64
	for _, p := range pi {
		if p < 0 {
			t.Fatalf("negative visit probability %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("policy sums to %v", sum)
	}
}

func TestAdvanceReusesSubtree(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 4)
	tree.Search(50)
	move := tree.BestMove()
	// Find the child's visit count before advancing.
	var childVisits int
	for i, m := range tree.root.moves {
		if m == move && tree.root.children[i] != nil {
			childVisits = tree.root.children[i].total
		}
	}
	tree.Advance(move)
	if childVisits > 0 && tree.RootVisits() != childVisits {
		t.Fatalf("subtree not reused: root visits %d, child had %d", tree.RootVisits(), childVisits)
	}
}

func TestAdvanceUnexpandedMove(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 5)
	// Advance along a move that was never expanded — must re-root
	// cleanly.
	tree.Advance(goboard.Pass)
	if tree.root == nil {
		t.Fatal("tree lost its root")
	}
	tree.Search(10)
}

func TestVirtualLossesClearAfterSearch(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 6)
	tree.Search(64)
	for i, v := range tree.root.vloss {
		if v != 0 {
			t.Fatalf("residual virtual loss %d on move %d", v, tree.root.moves[i])
		}
	}
}

func TestOnTraverseFires(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 7)
	count := 0
	tree.OnTraverse = func() { count++ }
	tree.Search(20)
	if count != 20 {
		t.Fatalf("OnTraverse fired %d times, want 20", count)
	}
}

func TestSearchOnNearTerminalBoard(t *testing.T) {
	// Fill most of a 3x3 board so many simulations hit terminal states.
	b := goboard.New(3)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 12 && !b.GameOver(); i++ {
		moves := b.LegalMoves()
		if len(moves) == 0 {
			_ = b.Play(goboard.Pass)
			continue
		}
		_ = b.Play(moves[rng.Intn(len(moves))])
	}
	if b.GameOver() {
		t.Skip("board finished during setup")
	}
	tree := New(b, &uniformEval{}, 9)
	tree.Search(30) // must not panic or hang on terminal descents
	if tree.RootVisits() != 30 {
		t.Fatalf("visits = %d", tree.RootVisits())
	}
}

func TestRootNoisePerturbsPriorsOnce(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 11)
	tree.RootNoise = true
	before := append([]float64(nil), tree.root.priors...)
	tree.Search(8)
	after := append([]float64(nil), tree.root.priors...)
	changed := false
	var sum float64
	for i := range after {
		if after[i] != before[i] {
			changed = true
		}
		if after[i] < 0 {
			t.Fatalf("negative prior %v", after[i])
		}
		sum += after[i]
	}
	if !changed {
		t.Fatal("Dirichlet noise did not perturb root priors")
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("noised priors sum to %v", sum)
	}
	// A second Search at the same root must not re-noise.
	again := append([]float64(nil), tree.root.priors...)
	tree.Search(8)
	for i := range again {
		if tree.root.priors[i] != again[i] {
			t.Fatal("root re-noised on second Search")
		}
	}
}

func TestRootNoiseOffByDefault(t *testing.T) {
	tree := New(goboard.New(5), &uniformEval{}, 12)
	before := append([]float64(nil), tree.root.priors...)
	tree.Search(8)
	for i := range before {
		if tree.root.priors[i] != before[i] {
			t.Fatal("priors changed without RootNoise")
		}
	}
}

func TestGammaSamplePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []float64{0.3, 1.0, 2.5} {
		for i := 0; i < 500; i++ {
			if v := gammaSample(rng, shape); v <= 0 || math.IsNaN(v) {
				t.Fatalf("gammaSample(%v) = %v", shape, v)
			}
		}
	}
}

func TestSampleMoveIsLegal(t *testing.T) {
	b := goboard.New(5)
	tree := New(b, &uniformEval{}, 10)
	tree.Search(40)
	for i := 0; i < 20; i++ {
		m := tree.SampleMove()
		if m != goboard.Pass && !b.Legal(m) {
			t.Fatalf("sampled illegal move %d", m)
		}
	}
}
