// Package mcts implements the PUCT Monte-Carlo tree search AlphaGoZero-style
// agents use, with minibatched leaf expansion: the search traverses the
// partial move-expansion tree in high-level code collecting a minibatch of
// unexpanded leaves, then evaluates them all with one neural-network
// inference — exactly the mcts_tree_search / expand_leaf structure of the
// paper's Figure 2.
package mcts

import (
	"math"
	"math/rand"

	"repro/internal/goboard"
)

// Evaluator scores a minibatch of positions: a prior over moves (length
// N²+1; the last entry is Pass) and a value in [-1, 1] from the side to
// move's perspective, for each board.
type Evaluator interface {
	Evaluate(boards []*goboard.Board) (priors [][]float64, values []float64)
}

// Node is one expanded position in the search tree.
type Node struct {
	board    *goboard.Board
	moves    []int // legal moves (point indices; Pass is encoded as N²)
	priors   []float64
	visits   []int
	valueSum []float64
	children []*Node
	// vloss marks in-flight virtual losses during minibatch collection.
	vloss []int
	total int
}

// Tree is one game's search tree.
type Tree struct {
	root  *Node
	eval  Evaluator
	rng   *rand.Rand
	cPUCT float64
	// BatchSize is the leaf-minibatch size for expand_leaf.
	BatchSize int
	// OnTraverse, if set, is called once per simulation during the
	// high-level tree traversal; the Minigo workload uses it to charge
	// Python time to mcts_tree_search.
	OnTraverse func()
	// RootNoise enables AlphaGoZero's Dirichlet exploration noise on the
	// root priors (ε=0.25, α=0.3), applied when a search begins at a
	// fresh root. Self-play uses it; evaluation games do not.
	RootNoise bool

	noisedRoot *Node
}

// Dirichlet-noise constants from AlphaGoZero.
const (
	dirichletEpsilon = 0.25
	dirichletAlpha   = 0.3
)

// applyRootNoise mixes Dirichlet(α) noise into the root priors:
// P'(a) = (1−ε)·P(a) + ε·η(a).
func (t *Tree) applyRootNoise() {
	if !t.RootNoise || t.noisedRoot == t.root || len(t.root.priors) == 0 {
		return
	}
	t.noisedRoot = t.root
	noise := make([]float64, len(t.root.priors))
	var sum float64
	for i := range noise {
		// Gamma(α, 1) samples via Marsaglia-Tsang for α < 1 using the
		// boost Gamma(α+1)·U^(1/α).
		noise[i] = gammaSample(t.rng, dirichletAlpha)
		sum += noise[i]
	}
	if sum <= 0 {
		return
	}
	for i := range t.root.priors {
		t.root.priors[i] = (1-dirichletEpsilon)*t.root.priors[i] +
			dirichletEpsilon*noise[i]/sum
	}
}

// gammaSample draws from Gamma(shape, 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	// Marsaglia & Tsang (2000).
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// New builds a search tree rooted at the given position.
func New(b *goboard.Board, eval Evaluator, seed int64) *Tree {
	t := &Tree{
		eval:      eval,
		rng:       rand.New(rand.NewSource(seed)),
		cPUCT:     1.5,
		BatchSize: 8,
	}
	t.root = t.expandOne(b)
	return t
}

// passMove encodes Pass in the prior vector: index N².
func passMove(n int) int { return n * n }

// moveIndex maps a board move (point or goboard.Pass) to a prior index.
func moveIndex(n, move int) int {
	if move == goboard.Pass {
		return passMove(n)
	}
	return move
}

// expandOne evaluates a single position and returns its node.
func (t *Tree) expandOne(b *goboard.Board) *Node {
	priors, _ := t.eval.Evaluate([]*goboard.Board{b})
	return newNode(b, priors[0])
}

func newNode(b *goboard.Board, prior []float64) *Node {
	legal := b.LegalMoves()
	moves := append(legal, goboard.Pass)
	node := &Node{
		board:    b,
		moves:    moves,
		priors:   make([]float64, len(moves)),
		visits:   make([]int, len(moves)),
		valueSum: make([]float64, len(moves)),
		children: make([]*Node, len(moves)),
		vloss:    make([]int, len(moves)),
	}
	var sum float64
	for i, m := range moves {
		p := prior[moveIndex(b.N, m)]
		node.priors[i] = p
		sum += p
	}
	if sum > 0 {
		for i := range node.priors {
			node.priors[i] /= sum
		}
	} else {
		uniform := 1 / float64(len(moves))
		for i := range node.priors {
			node.priors[i] = uniform
		}
	}
	return node
}

// selectChild picks the PUCT-maximizing move index at a node.
func (n *Node) selectChild(c float64) int {
	sqrtTotal := math.Sqrt(float64(n.total) + 1)
	best, bestScore := 0, math.Inf(-1)
	for i := range n.moves {
		nv := float64(n.visits[i] + n.vloss[i])
		var q float64
		if n.visits[i] > 0 {
			q = n.valueSum[i] / float64(n.visits[i])
		}
		// Virtual loss discourages concurrent descent into the same
		// leaf while a minibatch is being collected.
		q -= float64(n.vloss[i])
		u := c * n.priors[i] * sqrtTotal / (1 + nv)
		if s := q + u; s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// pathStep records one traversal edge for backup.
type pathStep struct {
	node *Node
	mi   int
}

// Search runs nSims simulations, expanding leaves in minibatches of
// BatchSize through the Evaluator.
func (t *Tree) Search(nSims int) {
	t.applyRootNoise()
	done := 0
	for done < nSims {
		batch := t.BatchSize
		if rem := nSims - done; batch > rem {
			batch = rem
		}
		var paths [][]pathStep
		var leafBoards []*goboard.Board
		var terminalPaths [][]pathStep
		var terminalValues []float64
		for b := 0; b < batch; b++ {
			if t.OnTraverse != nil {
				t.OnTraverse()
			}
			path, leaf := t.descend()
			if leaf == nil {
				// Terminal position: value from the game result.
				last := path[len(path)-1]
				child := last.node.board.Clone()
				_ = child.Play(last.node.moves[last.mi])
				terminalPaths = append(terminalPaths, path)
				terminalValues = append(terminalValues, terminalValue(child))
				continue
			}
			paths = append(paths, path)
			leafBoards = append(leafBoards, leaf)
		}
		if len(leafBoards) > 0 {
			priors, values := t.eval.Evaluate(leafBoards)
			for i, path := range paths {
				last := path[len(path)-1]
				last.node.children[last.mi] = newNode(leafBoards[i], priors[i])
				t.backup(path, values[i])
			}
		}
		for i, path := range terminalPaths {
			t.backup(path, terminalValues[i])
		}
		done += batch
	}
}

// descend walks from the root to an unexpanded edge, applying virtual
// losses, and returns the traversal path plus the new leaf board (nil when
// the edge leads to a terminal position).
func (t *Tree) descend() ([]pathStep, *goboard.Board) {
	node := t.root
	var path []pathStep
	for {
		mi := node.selectChild(t.cPUCT)
		path = append(path, pathStep{node, mi})
		node.vloss[mi]++
		child := node.children[mi]
		if child == nil {
			next := node.board.Clone()
			_ = next.Play(node.moves[mi])
			if next.GameOver() {
				return path, nil
			}
			return path, next
		}
		node = child
	}
}

// terminalValue scores a finished game from the perspective of the side to
// move at that position.
func terminalValue(b *goboard.Board) float64 {
	winner := b.Winner(7.5)
	switch winner {
	case goboard.Empty:
		return 0
	case b.ToPlay():
		return 1
	default:
		return -1
	}
}

// backup propagates a leaf value up the path, alternating perspective.
func (t *Tree) backup(path []pathStep, leafValue float64) {
	// leafValue is from the perspective of the player to move at the
	// leaf; the edge into the leaf belongs to the opponent of that
	// player, so it starts negated.
	v := -leafValue
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		step.node.visits[step.mi]++
		step.node.valueSum[step.mi] += v
		step.node.total++
		step.node.vloss[step.mi]--
		v = -v
	}
}

// BestMove returns the move with the most visits (temperature 0), using
// priors to break ties early in search.
func (t *Tree) BestMove() int {
	best, bestN := goboard.Pass, -1
	for i, m := range t.root.moves {
		if t.root.visits[i] > bestN {
			best, bestN = m, t.root.visits[i]
		}
	}
	return best
}

// SampleMove draws a move proportional to visit counts (temperature 1),
// used for exploration in early self-play moves.
func (t *Tree) SampleMove() int {
	total := 0
	for _, v := range t.root.visits {
		total += v
	}
	if total == 0 {
		return t.BestMove()
	}
	r := t.rng.Intn(total)
	for i, v := range t.root.visits {
		r -= v
		if r < 0 {
			return t.root.moves[i]
		}
	}
	return t.BestMove()
}

// VisitPolicy returns the root visit distribution as a training target
// (length N²+1, Pass last).
func (t *Tree) VisitPolicy() []float64 {
	n := t.root.board.N
	pi := make([]float64, n*n+1)
	total := 0
	for _, v := range t.root.visits {
		total += v
	}
	if total == 0 {
		return pi
	}
	for i, m := range t.root.moves {
		pi[moveIndex(n, m)] = float64(t.root.visits[i]) / float64(total)
	}
	return pi
}

// Advance re-roots the tree after a move is played, reusing the subtree
// when present.
func (t *Tree) Advance(move int) {
	for i, m := range t.root.moves {
		if m == move && t.root.children[i] != nil {
			t.root = t.root.children[i]
			return
		}
	}
	next := t.root.board.Clone()
	_ = next.Play(move)
	t.root = t.expandOne(next)
}

// RootVisits returns the total simulations accumulated at the root.
func (t *Tree) RootVisits() int { return t.root.total }
