package trace

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

// sinkTestFrames encodes a deterministic event list into n chunk frames —
// the (chunk, index) pairs a Writer flush would deliver.
func sinkTestFrames(t *testing.T, n int) (chunks [][]byte, indexes []*ChunkIndex) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	events := randomEvents(rng, 40*n)
	per := len(events) / n
	for i := 0; i < n; i++ {
		group := events[i*per : (i+1)*per]
		chunk, ix, err := EncodeEvents(group)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, chunk)
		indexes = append(indexes, ix)
	}
	return chunks, indexes
}

// TestDirSinkDigestTracksDirDigest pins the O(1) content-addressing
// guarantee: at every growth point of the directory — after each append and
// after the seal — the sink's incrementally-maintained digest equals a full
// DirDigest rehash of the directory on disk.
func TestDirSinkDigestTracksDirDigest(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Digest(); got != "" {
		t.Fatalf("empty sink has digest %q, want \"\"", got)
	}
	chunks, indexes := sinkTestFrames(t, 5)
	for i := range chunks {
		if err := sink.AppendChunk(i, chunks[i], indexes[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want, err := DirDigest(dir)
		if err != nil {
			t.Fatalf("after append %d: %v", i, err)
		}
		if got := sink.Digest(); got != want {
			t.Fatalf("after append %d: sink digest %s, DirDigest %s", i, got, want)
		}
	}
	meta := Meta{Workload: "sink-test", Config: Full(), Procs: map[ProcID]ProcInfo{0: {Name: "p", Parent: -1}}}
	if err := sink.Seal(meta); err != nil {
		t.Fatal(err)
	}
	want, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Digest(); got != want {
		t.Fatalf("sealed sink digest %s, DirDigest %s", got, want)
	}
	if !sink.Sealed() || sink.Chunks() != len(chunks) {
		t.Fatalf("sealed=%v chunks=%d, want true/%d", sink.Sealed(), sink.Chunks(), len(chunks))
	}
}

// TestDirSinkIdempotencyProtocol exercises the retry protocol: replaying an
// applied sequence with identical bytes is a flagged no-op, a diverging
// replay is a ConflictError, a gap is a SeqError naming the expected
// sequence, and nothing is accepted after Seal.
func TestDirSinkIdempotencyProtocol(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	chunks, indexes := sinkTestFrames(t, 3)

	// A gap: seq 1 before seq 0.
	var seqErr *SeqError
	if err := sink.AppendChunk(1, chunks[1], indexes[1]); !errors.As(err, &seqErr) {
		t.Fatalf("gap append: %v, want *SeqError", err)
	} else if seqErr.Seq != 1 || seqErr.Next != 0 {
		t.Fatalf("gap append: %+v, want Seq=1 Next=0", seqErr)
	}

	if err := sink.AppendChunk(0, chunks[0], indexes[0]); err != nil {
		t.Fatal(err)
	}
	digest := sink.Digest()

	// Idempotent replay: same seq, same bytes.
	dup, err := sink.Append(0, chunks[0], mustSidecar(t, indexes[0]))
	if err != nil || !dup {
		t.Fatalf("identical replay: dup=%v err=%v, want true/nil", dup, err)
	}
	if sink.Chunks() != 1 || sink.Digest() != digest {
		t.Fatalf("replay changed state: chunks=%d digest match=%v", sink.Chunks(), sink.Digest() == digest)
	}

	// Diverging replay: same seq, different chunk bytes.
	var conflict *ConflictError
	if _, err := sink.Append(0, chunks[1], mustSidecar(t, indexes[0])); !errors.As(err, &conflict) {
		t.Fatalf("diverging replay: %v, want *ConflictError", err)
	}

	if err := sink.Seal(Meta{Workload: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.AppendChunk(1, chunks[1], indexes[1]); !errors.Is(err, ErrSinkSealed) {
		t.Fatalf("post-seal append: %v, want ErrSinkSealed", err)
	}
	if err := sink.Seal(Meta{}); !errors.Is(err, ErrSinkSealed) {
		t.Fatalf("double seal: %v, want ErrSinkSealed", err)
	}
}

func mustSidecar(t *testing.T, ix *ChunkIndex) []byte {
	t.Helper()
	data, err := json.Marshal(ix)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDirSinkRefusesExistingTrace: a server-owned store never overwrites.
func TestDirSinkRefusesExistingTrace(t *testing.T) {
	dir := digestTestDir(t)
	if _, err := NewDirSink(dir); err == nil {
		t.Fatal("NewDirSink over an existing trace directory succeeded")
	}
}

// TestSinkWriterMatchesWriter pins the streaming-equals-local guarantee at
// the bytes level: the same events flushed through NewSinkWriter into a
// DirSink produce a directory with the same content digest as a local
// NewWriter run with the same chunk budget.
func TestSinkWriterMatchesWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	events := randomEvents(rng, 500)
	meta := Meta{Workload: "sink-writer", Config: Full(), Procs: map[ProcID]ProcInfo{
		0: {Name: "trainer", Parent: -1},
	}}

	local := t.TempDir()
	w, err := NewWriter(local, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(events...)
	if err := w.Close(meta); err != nil {
		t.Fatal(err)
	}

	streamed := t.TempDir()
	sink, err := NewDirSink(streamed)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSinkWriter(sink, 4<<10)
	sw.Append(events...)
	if err := sw.Close(meta); err != nil {
		t.Fatal(err)
	}

	want, err := DirDigest(local)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Digest(); got != want {
		t.Fatalf("streamed digest %s, local digest %s", got, want)
	}
}
