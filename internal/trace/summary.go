package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vclock"
)

// Summary is aggregate statistics over a trace: event counts and busy time
// per category, plus the heaviest GPU kernels. It is the quick-look view
// rlscope-analyze prints before the full breakdown.
type Summary struct {
	Events      int
	Procs       int
	Span        vclock.Duration
	ByKind      map[EventKind]int
	ByCategory  map[Category]CategoryStats
	Transitions map[string]int
	Overheads   map[OverheadKind]int
	// TopKernels are the GPU kernel names with the largest total device
	// time, descending.
	TopKernels []KernelStat
}

// CategoryStats aggregates one stack tier.
type CategoryStats struct {
	Events int
	Total  vclock.Duration
}

// KernelStat is one kernel name's aggregate device time.
type KernelStat struct {
	Name  string
	Count int
	Total vclock.Duration
}

// Summarize computes trace statistics.
func Summarize(t *Trace) *Summary {
	s := &Summary{
		Events:      len(t.Events),
		Procs:       len(t.ProcIDs()),
		ByKind:      map[EventKind]int{},
		ByCategory:  map[Category]CategoryStats{},
		Transitions: map[string]int{},
		Overheads:   map[OverheadKind]int{},
	}
	start, end := t.Span()
	s.Span = end.Sub(start)
	kernels := map[string]KernelStat{}
	for _, e := range t.Events {
		s.ByKind[e.Kind]++
		switch e.Kind {
		case KindCPU, KindGPU:
			cs := s.ByCategory[e.Cat]
			cs.Events++
			cs.Total += e.Duration()
			s.ByCategory[e.Cat] = cs
			if e.Kind == KindGPU && e.Cat == CatGPUKernel {
				k := kernels[e.Name]
				k.Name = e.Name
				k.Count++
				k.Total += e.Duration()
				kernels[e.Name] = k
			}
		case KindTransition:
			s.Transitions[e.Name]++
		case KindOverhead:
			s.Overheads[e.Overhead]++
		}
	}
	for _, k := range kernels {
		s.TopKernels = append(s.TopKernels, k)
	}
	sort.Slice(s.TopKernels, func(i, j int) bool {
		if s.TopKernels[i].Total != s.TopKernels[j].Total {
			return s.TopKernels[i].Total > s.TopKernels[j].Total
		}
		return s.TopKernels[i].Name < s.TopKernels[j].Name
	})
	const keep = 10
	if len(s.TopKernels) > keep {
		s.TopKernels = s.TopKernels[:keep]
	}
	return s
}

// String renders the summary as text.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "events: %d across %d process(es), span %v\n", s.Events, s.Procs, s.Span)
	var kinds []EventKind
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-12s %d\n", k.String()+":", s.ByKind[k])
	}
	var cats []Category
	for c := range s.ByCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	sb.WriteString("busy time by category:\n")
	for _, c := range cats {
		cs := s.ByCategory[c]
		fmt.Fprintf(&sb, "  %-12s %v (%d events)\n", c.String()+":", cs.Total, cs.Events)
	}
	if len(s.TopKernels) > 0 {
		sb.WriteString("top GPU kernels:\n")
		for _, k := range s.TopKernels {
			fmt.Fprintf(&sb, "  %-32s %v (%d launches)\n", k.Name, k.Total, k.Count)
		}
	}
	return sb.String()
}
