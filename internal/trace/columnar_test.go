package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vclock"
)

func TestChunkV2RoundTrip(t *testing.T) {
	events := randomEvents(rand.New(rand.NewSource(77)), 2000)
	var buf bytes.Buffer
	if err := EncodeChunkV2(&buf, events); err != nil {
		t.Fatalf("EncodeChunkV2: %v", err)
	}
	got, err := DecodeChunk(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("v2 round trip mismatch: %d in, %d out", len(events), len(got))
	}
}

func TestChunkV2Empty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeChunkV2(&buf, nil); err != nil {
		t.Fatalf("EncodeChunkV2(nil): %v", err)
	}
	got, err := DecodeChunk(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty v2 chunk decoded to %d events", len(got))
	}
}

// workloadishEvents models what profiled RL training actually emits — and
// what the columnar format is tuned for: bursts of same-kind events (a run of
// Python steps, then a run of GPU kernels), a small fixed name vocabulary,
// and small monotone time deltas. Contrast with randomEvents, whose
// uncorrelated kinds are the run-length encoding's adversarial case.
func workloadishEvents(rng *rand.Rand, n int) []Event {
	names := []string{"step", "backprop", "cudaLaunchKernel", "memcpyH2D", "inference"}
	events := make([]Event, 0, n)
	var tcur int64
	for len(events) < n {
		// One "training step": a burst of CPU work, then a burst of GPU work.
		for i := 0; i < 8 && len(events) < n; i++ {
			tcur += int64(20 + rng.Intn(100))
			events = append(events, Event{
				Kind: KindCPU, Cat: CatPython, Proc: 0,
				Start: vclock.Time(tcur), End: vclock.Time(tcur + int64(10+rng.Intn(50))),
				Name: names[rng.Intn(2)],
			})
		}
		for i := 0; i < 4 && len(events) < n; i++ {
			tcur += int64(20 + rng.Intn(100))
			events = append(events, Event{
				Kind: KindGPU, Cat: CatGPUKernel, Proc: 0,
				Start: vclock.Time(tcur), End: vclock.Time(tcur + int64(10+rng.Intn(50))),
				Name: names[2+rng.Intn(3)],
			})
		}
	}
	return events
}

// TestChunkV2SmallerThanV1 pins the reason v2 exists: on a realistic chunk —
// few distinct names, runs of the same kind, monotone timestamps — the
// columnar encoding with its dictionary and run-length columns must beat the
// row encoding by a clear margin.
func TestChunkV2SmallerThanV1(t *testing.T) {
	events := workloadishEvents(rand.New(rand.NewSource(5)), 4096)
	v1 := seedChunk(events)
	v2 := seedChunkV2(events)
	if len(v2)*3 > len(v1)*2 {
		t.Fatalf("v2 not at least a third smaller: v1=%d bytes, v2=%d bytes", len(v1), len(v2))
	}
	t.Logf("workload-shaped chunk: v1=%d bytes, v2=%d bytes (ratio %.3f)", len(v1), len(v2), float64(len(v2))/float64(len(v1)))
}

func TestChunkFormatSniff(t *testing.T) {
	events := randomEvents(rand.New(rand.NewSource(3)), 8)
	if f, err := ChunkFormat(seedChunk(events)); err != nil || f != FormatV1 {
		t.Fatalf("v1 sniff: format=%v err=%v", f, err)
	}
	if f, err := ChunkFormat(seedChunkV2(events)); err != nil || f != FormatV2 {
		t.Fatalf("v2 sniff: format=%v err=%v", f, err)
	}
	if _, err := ChunkFormat([]byte("NOTATRACE")); err == nil {
		t.Fatal("garbage sniffed as a valid chunk")
	}
}

func TestEncodeChunkV2RejectsNegativeDuration(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeChunkV2(&buf, []Event{{Kind: KindCPU, Cat: CatPython, Start: 10, End: 5}})
	if err == nil {
		t.Fatal("EncodeChunkV2 accepted negative duration")
	}
}

// TestColumnChunkIteration exercises the zero-materialization surface: Events
// must visit the same event values a full decode materializes, Times must
// visit the same extents, and AppendEvents must materialize the same slice.
func TestColumnChunkIteration(t *testing.T) {
	events := randomEvents(rand.New(rand.NewSource(9)), 513)
	frame := seedChunkV2(events)
	cc, err := ParseColumnChunk(frame, NewInterner())
	if err != nil {
		t.Fatalf("ParseColumnChunk: %v", err)
	}
	if cc.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", cc.Len(), len(events))
	}
	var streamed []Event
	if err := cc.Events(func(i int, e Event) bool {
		if i != len(streamed) {
			t.Fatalf("Events index %d out of order (want %d)", i, len(streamed))
		}
		streamed = append(streamed, e)
		return true
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	if !reflect.DeepEqual(events, streamed) {
		t.Fatal("Events iteration != source events")
	}
	n := 0
	if err := cc.Times(func(i int, start, end vclock.Time) bool {
		if start != events[i].Start || end != events[i].End {
			t.Fatalf("Times(%d) = [%d,%d], want [%d,%d]", i, start, end, events[i].Start, events[i].End)
		}
		n++
		return true
	}); err != nil {
		t.Fatalf("Times: %v", err)
	}
	if n != len(events) {
		t.Fatalf("Times visited %d of %d events", n, len(events))
	}
	materialized, err := cc.AppendEvents(nil)
	if err != nil {
		t.Fatalf("AppendEvents: %v", err)
	}
	if !reflect.DeepEqual(events, materialized) {
		t.Fatal("AppendEvents != source events")
	}
	// Early stop: the yield contract must be honored.
	stops := 0
	if err := cc.Events(func(int, Event) bool { stops++; return stops < 10 }); err != nil {
		t.Fatalf("Events early stop: %v", err)
	}
	if stops != 10 {
		t.Fatalf("Events visited %d events after yield returned false at 10", stops)
	}
}

// TestWriterFormatV2 proves the end-to-end v2 write path: a Writer opened
// with WithFormat(FormatV2) emits columnar chunks that ReadColumns serves
// without materialization, and a chunk-order sweep reproduces the write
// order exactly.
func TestWriterFormatV2(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := NewWriter(dir, 2048, WithFormat(FormatV2))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	events := randomEvents(rand.New(rand.NewSource(55)), 3000)
	w.Append(events...)
	if err := w.Close(Meta{Workload: "v2-writer-test"}); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if r.NumChunks() < 2 {
		t.Fatalf("want multiple chunks, got %d", r.NumChunks())
	}
	var got []Event
	for i := 0; i < r.NumChunks(); i++ {
		cc, ok, err := r.ReadColumns(i)
		if err != nil {
			t.Fatalf("ReadColumns(%d): %v", i, err)
		}
		if !ok {
			t.Fatalf("chunk %d written by a v2 Writer is not columnar", i)
		}
		if got, err = cc.AppendEvents(got); err != nil {
			t.Fatalf("AppendEvents(%d): %v", i, err)
		}
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("swept %d events != written %d events", len(got), len(events))
	}
}

// TestReaderMixedVersionDir rewrites every other chunk of a v1 directory as
// columnar and checks the Reader decodes the mix transparently: ReadChunk
// yields the original event stream, and ReadColumns reports columnar exactly
// for the rewritten chunks.
func TestReaderMixedVersionDir(t *testing.T) {
	dir, events := writeRandomTrace(t, 23, 3000, 4096)
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if r.NumChunks() < 3 {
		t.Fatalf("want >= 3 chunks, got %d", r.NumChunks())
	}
	converted := map[int]bool{}
	for i := 0; i < r.NumChunks(); i += 2 {
		buf, err := r.ReadChunk(i, nil)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		chunk, _, err := EncodeEventsFormat(buf, FormatV2)
		if err != nil {
			t.Fatalf("EncodeEventsFormat: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, r.ChunkName(i)), chunk, 0o644); err != nil {
			t.Fatalf("rewriting chunk %d: %v", i, err)
		}
		converted[i] = true
	}
	r2, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir after rewrite: %v", err)
	}
	var got []Event
	var buf []Event
	for i := 0; i < r2.NumChunks(); i++ {
		_, columnar, err := r2.ReadColumns(i)
		if err != nil {
			t.Fatalf("ReadColumns(%d): %v", i, err)
		}
		if columnar != converted[i] {
			t.Fatalf("chunk %d: columnar=%v, converted=%v", i, columnar, converted[i])
		}
		buf, err = r2.ReadChunk(i, buf[:0])
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		got = append(got, buf...)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("mixed-version sweep %d events != written %d events", len(got), len(events))
	}
}

// TestDecodeChunkV2Corrupt spot-checks the error contract on structurally
// broken frames: an error (never a panic), mentioning decode context.
func TestDecodeChunkV2Corrupt(t *testing.T) {
	full := seedChunkV2(randomEvents(rand.New(rand.NewSource(101)), 128))
	cases := map[string][]byte{
		"empty":         {},
		"magic only":    []byte("RLSC"),
		"version only":  []byte("RLSC\x02"),
		"huge count":    append([]byte("RLSC\x02\xff\xff\xff"), 0x7f),
		"truncated 1/4": full[:len(full)/4],
		"truncated 3/4": full[:3*len(full)/4],
		"last byte cut": full[:len(full)-1],
	}
	for name, data := range cases {
		if _, err := DecodeChunkBytes(data, nil); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		} else if !strings.Contains(err.Error(), "trace:") {
			t.Errorf("%s: error %q lacks package context", name, err)
		}
	}
}
