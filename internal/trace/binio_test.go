package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindCPU, Cat: CatPython, Proc: 0, Start: 0, End: 1000, Name: "python"},
		{Kind: KindCPU, Cat: CatBackend, Proc: 0, Start: 100, End: 400, Name: "session.run"},
		{Kind: KindCPU, Cat: CatCUDA, Proc: 0, Start: 150, End: 170, Name: "cudaLaunchKernel"},
		{Kind: KindGPU, Cat: CatGPUKernel, Proc: 0, Start: 160, End: 250, Name: "matmul"},
		{Kind: KindOp, Proc: 0, Start: 50, End: 900, Name: "backpropagation"},
		{Kind: KindOverhead, Overhead: OverheadCUPTI, Proc: 0, Start: 155, End: 155, Name: "cudaLaunchKernel"},
		{Kind: KindTransition, Proc: 0, Start: 95, End: 95, Name: TransPythonToBackend},
		{Kind: KindPhase, Proc: 1, Start: 0, End: 990, Name: "data_collection"},
	}
}

func TestChunkRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, events); err != nil {
		t.Fatalf("EncodeChunk: %v", err)
	}
	got, err := DecodeChunk(&buf, nil)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestChunkRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, nil); err != nil {
		t.Fatalf("EncodeChunk(empty): %v", err)
	}
	got, err := DecodeChunk(&buf, nil)
	if err != nil {
		t.Fatalf("DecodeChunk(empty): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d events from empty chunk", len(got))
	}
}

func TestChunkStringTableDeduplicates(t *testing.T) {
	// 1000 events sharing one name must encode the name once.
	events := make([]Event, 1000)
	for i := range events {
		events[i] = Event{
			Kind: KindCPU, Cat: CatCUDA, Proc: 0,
			Start: vclock.Time(i * 10), End: vclock.Time(i*10 + 5),
			Name: "cudaLaunchKernel",
		}
	}
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, events); err != nil {
		t.Fatalf("EncodeChunk: %v", err)
	}
	if n := strings.Count(buf.String(), "cudaLaunchKernel"); n != 1 {
		t.Fatalf("name appears %d times in encoding, want 1", n)
	}
	got, err := DecodeChunk(&buf, nil)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatal("round trip mismatch with deduplicated strings")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeChunk(bytes.NewReader([]byte("NOTATRACE")), nil); err == nil {
		t.Fatal("DecodeChunk accepted garbage magic")
	}
	if _, err := DecodeChunk(bytes.NewReader(nil), nil); err == nil {
		t.Fatal("DecodeChunk accepted empty input")
	}
}

func TestEncodeRejectsNegativeDuration(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeChunk(&buf, []Event{{Kind: KindCPU, Cat: CatPython, Start: 10, End: 5}})
	if err == nil {
		t.Fatal("EncodeChunk accepted negative duration")
	}
}

// randomEvents builds a pseudo-random but valid event list for the
// round-trip property test.
func randomEvents(rng *rand.Rand, n int) []Event {
	kinds := []EventKind{KindCPU, KindGPU, KindOp, KindPhase, KindOverhead, KindTransition}
	cpuCats := []Category{CatPython, CatSimulator, CatBackend, CatCUDA}
	gpuCats := []Category{CatGPUKernel, CatGPUMemcpy}
	names := []string{"a", "backprop", "cudaLaunchKernel", "inference", "memcpyH2D", "очень-юникод"}
	events := make([]Event, n)
	var tcur int64
	for i := range events {
		tcur += rng.Int63n(1_000_000)
		e := Event{
			Kind:  kinds[rng.Intn(len(kinds))],
			Proc:  ProcID(rng.Intn(4)),
			Start: vclock.Time(tcur),
			Name:  names[rng.Intn(len(names))],
		}
		e.End = e.Start.Add(vclock.Duration(rng.Int63n(1_000_000)))
		switch e.Kind {
		case KindCPU:
			e.Cat = cpuCats[rng.Intn(len(cpuCats))]
		case KindGPU:
			e.Cat = gpuCats[rng.Intn(len(gpuCats))]
		case KindOverhead:
			e.Overhead = OverheadKind(1 + rng.Intn(4))
			e.End = e.Start
		case KindTransition:
			e.End = e.Start
		}
		events[i] = e
	}
	return events
}

func TestChunkRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		events := randomEvents(r, int(size))
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, events); err != nil {
			return false
		}
		got, err := DecodeChunk(&buf, nil)
		if err != nil {
			return false
		}
		if len(events) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(events, got)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	events := sampleEvents()
	w.Append(events...)
	meta := Meta{
		Workload: "unit-test",
		Config:   Full(),
		Procs: map[ProcID]ProcInfo{
			0: {Name: "trainer", Parent: -1},
			1: {Name: "worker", Parent: 0},
		},
	}
	if err := w.Close(meta); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if got.Meta.Workload != "unit-test" || !got.Meta.Config.CUPTI {
		t.Fatalf("metadata mismatch: %+v", got.Meta)
	}
	if got.Meta.Procs[1].Name != "worker" || got.Meta.Procs[1].Parent != 0 {
		t.Fatalf("proc metadata mismatch: %+v", got.Meta.Procs)
	}
	if len(got.Events) != len(events) {
		t.Fatalf("read %d events, want %d", len(got.Events), len(events))
	}
	want := &Trace{Events: append([]Event(nil), events...)}
	want.Sort()
	if !reflect.DeepEqual(want.Events, got.Events) {
		t.Fatalf("events mismatch:\n got %+v\nwant %+v", got.Events, want.Events)
	}
}

func TestWriterChunksLargeTraces(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := NewWriter(dir, 4096) // tiny chunks to force splitting
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	events := randomEvents(rng, 2000)
	for _, e := range events {
		w.Append(e)
	}
	if err := w.Close(Meta{Workload: "chunky"}); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.ChunksWritten() < 2 {
		t.Fatalf("expected multiple chunks, got %d", w.ChunksWritten())
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(got.Events) != len(events) {
		t.Fatalf("read %d events, want %d", len(got.Events), len(events))
	}
}

func TestWriterDoubleCloseFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Close(Meta{}); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := w.Close(Meta{}); err == nil {
		t.Fatal("second Close succeeded")
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("ReadDir on missing directory succeeded")
	}
}
