package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// seedChunk encodes events into bytes for the fuzz corpus.
func seedChunk(events []Event) []byte {
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, events); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeChunk feeds arbitrary bytes to the chunk decoder. Two
// properties must hold: the decoder never panics on garbage, and anything
// it accepts re-encodes and re-decodes to the identical event list (every
// decodable chunk is a fixed point of the round trip). The seed corpus —
// empty chunks, point events, string-table reuse, random multi-kind chunks,
// plus truncations and bit flips — runs on every plain `go test`, so CI
// exercises the interesting paths without a fuzzing engine.
func FuzzDecodeChunk(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RLSC"))
	f.Add([]byte("NOTATRACE"))
	f.Add(seedChunk(nil))
	f.Add(seedChunk([]Event{
		{Kind: KindOverhead, Overhead: OverheadCUPTI, Proc: 0, Start: 5, End: 5, Name: "cudaLaunchKernel"},
		{Kind: KindTransition, Proc: 1, Start: 7, End: 7, Name: TransPythonToBackend},
	}))
	full := seedChunk(randomEvents(rand.New(rand.NewSource(31)), 64))
	f.Add(full)
	f.Add(full[:len(full)/2])                   // truncation mid-stream
	f.Add(append([]byte("RLSC\x01\xff"), 0xff)) // huge count, no data
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeChunk(bytes.NewReader(data), nil)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		for i, e := range events {
			if e.End < e.Start {
				t.Fatalf("decoder accepted event %d with End %d < Start %d", i, e.End, e.Start)
			}
		}
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, events); err != nil {
			t.Fatalf("re-encoding %d decoded events failed: %v", len(events), err)
		}
		again, err := DecodeChunk(&buf, nil)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(events) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round trip not a fixed point:\n first %+v\nsecond %+v", events, again)
		}
	})
}

// seedChunkV2 encodes events columnar for the fuzz corpus.
func seedChunkV2(events []Event) []byte {
	var buf bytes.Buffer
	if err := EncodeChunkV2(&buf, events); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeChunkV2 is FuzzDecodeChunk for the columnar format: the decoder
// must never panic on garbage — truncated dictionaries, overflowing column
// lengths, dangling dictionary references, huge counts — and anything it
// accepts must be a fixed point of the v2 round trip. The seeds cover every
// structural hazard: truncation at each region boundary, bit flips in the
// column directory, and a count far larger than the column data could hold.
func FuzzDecodeChunkV2(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RLSC"))
	f.Add([]byte("RLSC\x02"))
	f.Add(seedChunkV2(nil))
	f.Add(seedChunkV2([]Event{
		{Kind: KindOverhead, Overhead: OverheadCUPTI, Proc: 0, Start: 5, End: 5, Name: "cudaLaunchKernel"},
		{Kind: KindTransition, Proc: 1, Start: 7, End: 7, Name: TransPythonToBackend},
	}))
	full := seedChunkV2(randomEvents(rand.New(rand.NewSource(31)), 64))
	f.Add(full)
	for _, cut := range []int{5, 6, 8, len(full) / 4, len(full) / 2, len(full) - 1} {
		if cut >= 0 && cut < len(full) {
			f.Add(full[:cut])
		}
	}
	f.Add(append([]byte("RLSC\x02\xff"), 0xff)) // huge count, no columns
	flipped := append([]byte(nil), full...)
	flipped[6] ^= 0x7f // mangle the dictionary/column directory region
	f.Add(flipped)
	flipped2 := append([]byte(nil), full...)
	flipped2[len(flipped2)/3] ^= 0x40
	f.Add(flipped2)

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeChunk(bytes.NewReader(data), nil)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		for i, e := range events {
			if e.End < e.Start {
				t.Fatalf("decoder accepted event %d with End %d < Start %d", i, e.End, e.Start)
			}
		}
		var buf bytes.Buffer
		if err := EncodeChunkV2(&buf, events); err != nil {
			t.Fatalf("re-encoding %d decoded events failed: %v", len(events), err)
		}
		again, err := DecodeChunk(&buf, nil)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(events) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round trip not a fixed point:\n first %+v\nsecond %+v", events, again)
		}
	})
}

// FuzzV1V2RoundTrip derives a pseudo-random event list and asserts that the
// row and columnar encodings are interchangeable: both decode back to the
// exact source list, so any analysis sees identical events regardless of
// which format a chunk happens to be stored in.
func FuzzV1V2RoundTrip(f *testing.F) {
	f.Add(int64(0), uint16(0))
	f.Add(int64(1), uint16(1))
	f.Add(int64(42), uint16(300))
	f.Add(int64(-7), uint16(4096))
	f.Fuzz(func(t *testing.T, seed int64, size uint16) {
		if size > 8192 {
			size = 8192
		}
		events := randomEvents(rand.New(rand.NewSource(seed)), int(size))
		v1 := seedChunk(events)
		v2 := seedChunkV2(events)
		gotV1, err := DecodeChunkBytes(v1, nil)
		if err != nil {
			t.Fatalf("decode v1: %v", err)
		}
		gotV2, err := DecodeChunkBytes(v2, nil)
		if err != nil {
			t.Fatalf("decode v2: %v", err)
		}
		if len(events) == 0 {
			if len(gotV1) != 0 || len(gotV2) != 0 {
				t.Fatalf("empty chunk decoded to %d/%d events", len(gotV1), len(gotV2))
			}
			return
		}
		if !reflect.DeepEqual(events, gotV1) {
			t.Fatal("v1 round trip mismatch")
		}
		if !reflect.DeepEqual(events, gotV2) {
			t.Fatal("v2 round trip mismatch")
		}
	})
}

// FuzzChunkRoundTrip derives a pseudo-random event list from the fuzz input
// and asserts the encode/decode round trip exactly — the property-test
// complement to FuzzDecodeChunk, fuzzing the encoder side (empty chunks and
// point events included via the zero seeds).
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add(int64(0), uint16(0))
	f.Add(int64(1), uint16(1))
	f.Add(int64(42), uint16(300))
	f.Add(int64(-7), uint16(4096))
	f.Fuzz(func(t *testing.T, seed int64, size uint16) {
		if size > 8192 {
			size = 8192
		}
		events := randomEvents(rand.New(rand.NewSource(seed)), int(size))
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, events); err != nil {
			t.Fatalf("EncodeChunk: %v", err)
		}
		got, err := DecodeChunk(&buf, nil)
		if err != nil {
			t.Fatalf("DecodeChunk: %v", err)
		}
		if len(events) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty chunk decoded to %d events", len(got))
			}
			return
		}
		if !reflect.DeepEqual(events, got) {
			t.Fatal("round trip mismatch")
		}
	})
}
