package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func readAllEvents(t *testing.T, dir string) []Event {
	t.Helper()
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir(%s): %v", dir, err)
	}
	var all []Event
	var buf []Event
	for i := 0; i < r.NumChunks(); i++ {
		buf, err = r.ReadChunk(i, buf[:0])
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		all = append(all, buf...)
	}
	return all
}

// TestConvertDirV1ToV2 converts a v1 directory to columnar with verification
// on and checks the full contract: chunk count and boundaries preserved, the
// event stream byte-identical, the at-rest chunk bytes smaller, and the
// round-trip digest check passing.
func TestConvertDirV1ToV2(t *testing.T) {
	src := filepath.Join(t.TempDir(), "v1")
	w, err := NewWriter(src, 4096)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	events := workloadishEvents(rand.New(rand.NewSource(41)), 4000)
	w.Append(events...)
	if err := w.Close(Meta{Workload: "convert-test"}); err != nil {
		t.Fatalf("Close: %v", err)
	}
	dst := filepath.Join(t.TempDir(), "v2")
	stats, err := ConvertDir(src, dst, FormatV2, true)
	if err != nil {
		t.Fatalf("ConvertDir: %v", err)
	}
	if !stats.Verified {
		t.Fatal("verify requested but Verified not set")
	}
	if stats.Events != len(events) {
		t.Fatalf("converted %d events, want %d", stats.Events, len(events))
	}
	if stats.DstChunkBytes >= stats.SrcChunkBytes {
		t.Fatalf("v2 not smaller at rest: src=%d dst=%d", stats.SrcChunkBytes, stats.DstChunkBytes)
	}
	t.Logf("at-rest: v1=%d bytes, v2=%d bytes (ratio %.3f)", stats.SrcChunkBytes, stats.DstChunkBytes, stats.Ratio())
	srcR, err := OpenDir(src)
	if err != nil {
		t.Fatalf("OpenDir(src): %v", err)
	}
	dstR, err := OpenDir(dst)
	if err != nil {
		t.Fatalf("OpenDir(dst): %v", err)
	}
	if srcR.NumChunks() != dstR.NumChunks() {
		t.Fatalf("chunk count changed: %d -> %d", srcR.NumChunks(), dstR.NumChunks())
	}
	if !reflect.DeepEqual(srcR.Meta(), dstR.Meta()) {
		t.Fatalf("meta changed: %+v -> %+v", srcR.Meta(), dstR.Meta())
	}
	if got := readAllEvents(t, dst); !reflect.DeepEqual(got, events) {
		t.Fatalf("converted dir streams %d events != %d written", len(got), len(events))
	}
}

// TestConvertDirThereAndBack proves the strongest equivalence available:
// because both encoders are canonical, converting v1 -> v2 -> v1 must land on
// a directory whose DirDigest equals the original's exactly.
func TestConvertDirThereAndBack(t *testing.T) {
	src, _ := writeRandomTrace(t, 43, 2500, 4096)
	mid := filepath.Join(t.TempDir(), "v2")
	back := filepath.Join(t.TempDir(), "v1-again")
	if _, err := ConvertDir(src, mid, FormatV2, true); err != nil {
		t.Fatalf("ConvertDir v1->v2: %v", err)
	}
	if _, err := ConvertDir(mid, back, FormatV1, true); err != nil {
		t.Fatalf("ConvertDir v2->v1: %v", err)
	}
	want, err := DirDigest(src)
	if err != nil {
		t.Fatalf("DirDigest(src): %v", err)
	}
	got, err := DirDigest(back)
	if err != nil {
		t.Fatalf("DirDigest(back): %v", err)
	}
	if got != want {
		t.Fatalf("v1 -> v2 -> v1 digest drifted: %s != %s", got, want)
	}
}

func TestConvertDirRejectsNonEmptyDst(t *testing.T) {
	src, _ := writeRandomTrace(t, 47, 200, 0)
	dst := filepath.Join(t.TempDir(), "occupied")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "chunk_000000"+chunkSuffix), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertDir(src, dst, FormatV2, false); err == nil {
		t.Fatal("ConvertDir wrote into a directory that already held trace files")
	}
}

// TestConvertDirDetectsTamper ensures the verification actually bites: a
// conversion whose source chunk bytes do not match what the canonical encoder
// would produce (one flipped name byte, re-encoded) fails the digest check.
func TestConvertDirDetectsTamper(t *testing.T) {
	src, _ := writeRandomTrace(t, 53, 600, 2048)
	// Tamper: rewrite chunk 0 with one event's name changed, keeping the
	// frame canonically encoded so decode succeeds and only the digest check
	// can notice the drift relative to DirDigest of the tampered source...
	// which would match. Instead, corrupt the *stored digest input*: append a
	// stray sidecar-suffixed file so DirDigest(src) covers a file the
	// conversion never sees.
	if err := os.WriteFile(filepath.Join(src, "chunk_999999"+sidecarSuffix), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "v2")
	if _, err := ConvertDir(src, dst, FormatV2, true); err == nil {
		t.Fatal("verification passed despite a digest-visible extra file in src")
	}
}

// TestConvertDirPreservesHostMeta: the originating host recorded at
// profiling time survives a format conversion — multihost.Merge depends on
// converted per-host dirs still naming their hosts.
func TestConvertDirPreservesHostMeta(t *testing.T) {
	src := filepath.Join(t.TempDir(), "v1")
	w, err := NewWriter(src, 4096)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(workloadishEvents(rand.New(rand.NewSource(5)), 500)...)
	meta := Meta{Workload: "host-meta", Host: "actor07", Labels: map[string]string{"algo": "ddpg"}}
	if err := w.Close(meta); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "v2")
	if _, err := ConvertDir(src, dst, FormatV2, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.Host != "actor07" {
		t.Fatalf("converted Meta.Host = %q, want %q", back.Meta.Host, "actor07")
	}
	if back.Meta.Labels["algo"] != "ddpg" {
		t.Fatalf("converted labels dropped: %v", back.Meta.Labels)
	}
}
