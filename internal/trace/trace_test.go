package trace

import (
	"testing"

	"repro/internal/vclock"
)

func cpuEvent(proc ProcID, cat Category, name string, start, end vclock.Time) Event {
	return Event{Kind: KindCPU, Cat: cat, Proc: proc, Start: start, End: end, Name: name}
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name    string
		e       Event
		wantErr bool
	}{
		{"valid cpu", cpuEvent(0, CatPython, "x", 0, 10), false},
		{"cpu with gpu cat", Event{Kind: KindCPU, Cat: CatGPUKernel, End: 1}, true},
		{"gpu with cpu cat", Event{Kind: KindGPU, Cat: CatPython, End: 1}, true},
		{"valid gpu", Event{Kind: KindGPU, Cat: CatGPUKernel, End: 1, Name: "k"}, false},
		{"negative duration", Event{Kind: KindCPU, Cat: CatPython, Start: 5, End: 1}, true},
		{"op without name", Event{Kind: KindOp, End: 1}, true},
		{"valid op", Event{Kind: KindOp, Name: "step", End: 1}, false},
		{"overhead without kind", Event{Kind: KindOverhead}, true},
		{"valid overhead", Event{Kind: KindOverhead, Overhead: OverheadCUPTI, Name: "cudaLaunchKernel"}, false},
		{"transition without label", Event{Kind: KindTransition}, true},
		{"valid transition", Event{Kind: KindTransition, Name: TransPythonToBackend}, false},
		{"unknown kind", Event{Kind: EventKind(99)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.e.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestCategoryClassification(t *testing.T) {
	for _, c := range []Category{CatPython, CatSimulator, CatBackend, CatCUDA} {
		if !c.IsCPU() || c.IsGPU() {
			t.Fatalf("%v should be CPU-only", c)
		}
	}
	for _, c := range []Category{CatGPUKernel, CatGPUMemcpy} {
		if c.IsCPU() || !c.IsGPU() {
			t.Fatalf("%v should be GPU-only", c)
		}
	}
}

func TestCPURankOrdering(t *testing.T) {
	if !(CatPython.CPURank() < CatBackend.CPURank() && CatBackend.CPURank() < CatCUDA.CPURank()) {
		t.Fatal("CPU rank must order Python < Backend < CUDA")
	}
	if CatSimulator.CPURank() != CatBackend.CPURank() {
		t.Fatal("Simulator and Backend sit at the same stack depth")
	}
	if CatGPUKernel.CPURank() != 0 {
		t.Fatal("GPU categories have no CPU rank")
	}
}

func TestTraceSortNestsEnclosingFirst(t *testing.T) {
	tr := &Trace{Events: []Event{
		cpuEvent(0, CatBackend, "inner", 5, 10),
		cpuEvent(0, CatPython, "outer", 0, 20),
		cpuEvent(0, CatCUDA, "deep", 5, 8),
		cpuEvent(1, CatPython, "p1", 0, 3),
	}}
	tr.Sort()
	got := []string{tr.Events[0].Name, tr.Events[1].Name, tr.Events[2].Name, tr.Events[3].Name}
	want := []string{"outer", "inner", "deep", "p1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order = %v, want %v", got, want)
		}
	}
}

func TestProcEvents(t *testing.T) {
	tr := &Trace{Events: []Event{
		cpuEvent(2, CatPython, "c", 0, 1),
		cpuEvent(0, CatPython, "a", 0, 1),
		cpuEvent(2, CatPython, "d", 1, 2),
		cpuEvent(1, CatPython, "b", 0, 1),
	}}
	if got := len(tr.ProcEvents(2)); got != 2 {
		t.Fatalf("ProcEvents(2) has %d events, want 2", got)
	}
	if got := len(tr.ProcEvents(3)); got != 0 {
		t.Fatalf("ProcEvents(3) has %d events, want 0", got)
	}
	ids := tr.ProcIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ProcIDs = %v", ids)
	}
}

func TestTraceSpan(t *testing.T) {
	tr := &Trace{Events: []Event{
		cpuEvent(0, CatPython, "a", 5, 8),
		cpuEvent(0, CatPython, "b", 2, 4),
		{Kind: KindGPU, Cat: CatGPUKernel, Name: "k", Start: 7, End: 12},
	}}
	start, end := tr.Span()
	if start != 2 || end != 12 {
		t.Fatalf("Span = [%v, %v], want [2, 12]", start, end)
	}
}

func TestValidateAcceptsProperNesting(t *testing.T) {
	tr := &Trace{Events: []Event{
		cpuEvent(0, CatPython, "root", 0, 100),
		cpuEvent(0, CatBackend, "call1", 10, 40),
		cpuEvent(0, CatCUDA, "api", 15, 20),
		cpuEvent(0, CatBackend, "call2", 40, 60),
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsPartialOverlap(t *testing.T) {
	tr := &Trace{Events: []Event{
		cpuEvent(0, CatPython, "a", 0, 50),
		cpuEvent(0, CatBackend, "b", 40, 80), // straddles a's end
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate() accepted partially overlapping CPU events")
	}
}

func TestValidateAllowsCrossKindOverlap(t *testing.T) {
	// GPU events legally straddle CPU event boundaries.
	tr := &Trace{Events: []Event{
		cpuEvent(0, CatPython, "a", 0, 50),
		{Kind: KindGPU, Cat: CatGPUKernel, Name: "k", Start: 40, End: 90},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestFeatureFlags(t *testing.T) {
	if Uninstrumented().Any() {
		t.Fatal("Uninstrumented().Any() = true")
	}
	if !Full().Any() {
		t.Fatal("Full().Any() = false")
	}
	if got := Uninstrumented().String(); got != "uninstrumented" {
		t.Fatalf("String() = %q", got)
	}
	if got := Full().String(); got != "annot+intercept+cuda+cupti" {
		t.Fatalf("String() = %q", got)
	}
	if got := (FeatureFlags{CUPTI: true}).String(); got != "cupti" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCountKind(t *testing.T) {
	tr := &Trace{Events: []Event{
		cpuEvent(0, CatPython, "a", 0, 1),
		{Kind: KindTransition, Name: TransBackendToCUDA},
		{Kind: KindTransition, Name: TransPythonToBackend},
	}}
	if got := tr.CountKind(KindTransition); got != 2 {
		t.Fatalf("CountKind(transition) = %d, want 2", got)
	}
	if got := tr.CountKind(KindGPU); got != 0 {
		t.Fatalf("CountKind(gpu) = %d, want 0", got)
	}
}

func TestMergeDisjointProcs(t *testing.T) {
	a := &Trace{
		Events: []Event{cpuEvent(0, CatPython, "a", 0, 1)},
		Meta:   Meta{Procs: map[ProcID]ProcInfo{0: {Name: "main", Parent: -1}}},
	}
	b := &Trace{
		Events: []Event{cpuEvent(1, CatPython, "b", 0, 1)},
		Meta:   Meta{Procs: map[ProcID]ProcInfo{1: {Name: "worker", Parent: 0}}},
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge() = %v", err)
	}
	if len(a.Events) != 2 || len(a.Meta.Procs) != 2 {
		t.Fatalf("merged trace has %d events, %d procs", len(a.Events), len(a.Meta.Procs))
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge() accepted duplicate process IDs")
	}
}

func TestKindAndOverheadStrings(t *testing.T) {
	if KindCPU.String() != "cpu" || KindOverhead.String() != "overhead" {
		t.Fatal("EventKind.String misnamed")
	}
	if OverheadCUPTI.String() != "CUPTI" {
		t.Fatalf("OverheadCUPTI.String() = %q", OverheadCUPTI.String())
	}
	if OverheadInterception.String() != "Python interception" {
		t.Fatalf("OverheadInterception.String() = %q", OverheadInterception.String())
	}
}
