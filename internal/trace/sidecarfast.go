package trace

// A hand-rolled parser for the sidecar JSON the Writer emits
// (json.Marshal of ChunkIndex). The streaming planner reads one sidecar per
// chunk; encoding/json costs ~40 allocations per document, which dominates
// the planning phase of a zero-alloc v2 analysis. This parser fills a
// caller-reused ChunkIndex with no allocations beyond map growth.
//
// It is deliberately conservative: any construct it does not recognize —
// unknown keys, floats, escaped strings — makes it report false, and the
// caller falls back to encoding/json. It accepts exactly the documents this
// package produces, which is the only hot path.

// parseSidecarInto parses data into ix, reusing ix.Procs and ix.Phases. It
// reports false (leaving ix in an undefined state) when the document strays
// from the shapes json.Marshal(ChunkIndex) produces.
func parseSidecarInto(data []byte, ix *ChunkIndex, in *Interner) bool {
	p := jparser{b: data}
	if !p.expect('{') {
		return false
	}
	if ix.Procs == nil {
		ix.Procs = map[ProcID]ProcSpan{}
	} else {
		clear(ix.Procs)
	}
	ix.Version, ix.Events, ix.Bytes = 0, 0, 0
	ix.Phases = ix.Phases[:0]
	first := true
	for {
		p.ws()
		if p.peek() == '}' {
			p.off++
			break
		}
		if !first && !p.expect(',') {
			return false
		}
		first = false
		key, ok := p.str()
		if !ok || !p.expect(':') {
			return false
		}
		switch string(key) {
		case "version":
			v, ok := p.int()
			if !ok {
				return false
			}
			ix.Version = int(v)
		case "events":
			v, ok := p.int()
			if !ok {
				return false
			}
			ix.Events = int(v)
		case "bytes":
			v, ok := p.int()
			if !ok {
				return false
			}
			ix.Bytes = v
		case "procs":
			if !p.procs(ix) {
				return false
			}
		case "phases":
			if !p.phases(ix, in) {
				return false
			}
		default:
			return false
		}
	}
	p.ws()
	return p.off == len(p.b)
}

type jparser struct {
	b   []byte
	off int
}

func (p *jparser) peek() byte {
	if p.off >= len(p.b) {
		return 0
	}
	return p.b[p.off]
}

func (p *jparser) ws() {
	for p.off < len(p.b) {
		switch p.b[p.off] {
		case ' ', '\t', '\n', '\r':
			p.off++
		default:
			return
		}
	}
}

func (p *jparser) expect(c byte) bool {
	p.ws()
	if p.peek() != c {
		return false
	}
	p.off++
	return true
}

// str parses a JSON string with no escapes, returning the raw bytes.
func (p *jparser) str() ([]byte, bool) {
	if !p.expect('"') {
		return nil, false
	}
	start := p.off
	for p.off < len(p.b) {
		switch p.b[p.off] {
		case '"':
			s := p.b[start:p.off]
			p.off++
			return s, true
		case '\\':
			return nil, false // escapes: fall back to encoding/json
		}
		p.off++
	}
	return nil, false
}

// int parses a (possibly negative) JSON integer; anything with a fraction or
// exponent bails.
func (p *jparser) int() (int64, bool) {
	p.ws()
	neg := false
	if p.peek() == '-' {
		neg = true
		p.off++
	}
	start := p.off
	var v int64
	for p.off < len(p.b) {
		c := p.b[p.off]
		if c < '0' || c > '9' {
			break
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, false // overflow: not a document we produced
		}
		v = v*10 + d
		p.off++
	}
	if p.off == start {
		return 0, false
	}
	if c := p.peek(); c == '.' || c == 'e' || c == 'E' {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

// procs parses {"<procID>": {"min_start":N,"max_end":N,"events":N}, ...}.
func (p *jparser) procs(ix *ChunkIndex) bool {
	if !p.expect('{') {
		return false
	}
	first := true
	for {
		p.ws()
		if p.peek() == '}' {
			p.off++
			return true
		}
		if !first && !p.expect(',') {
			return false
		}
		first = false
		key, ok := p.str()
		if !ok {
			return false
		}
		proc, ok := parseProcID(key)
		if !ok || !p.expect(':') || !p.expect('{') {
			return false
		}
		var sp ProcSpan
		firstField := true
		for {
			p.ws()
			if p.peek() == '}' {
				p.off++
				break
			}
			if !firstField && !p.expect(',') {
				return false
			}
			firstField = false
			field, ok := p.str()
			if !ok || !p.expect(':') {
				return false
			}
			v, ok := p.int()
			if !ok {
				return false
			}
			switch string(field) {
			case "min_start":
				sp.MinStart = timeFromInt64(v)
			case "max_end":
				sp.MaxEnd = timeFromInt64(v)
			case "events":
				sp.Events = int(v)
			default:
				return false
			}
		}
		ix.Procs[proc] = sp
	}
}

// phases parses the sidecar's phase-event array: Event marshals with its Go
// field names (the struct carries no tags).
func (p *jparser) phases(ix *ChunkIndex, in *Interner) bool {
	if !p.expect('[') {
		return false
	}
	first := true
	for {
		p.ws()
		if p.peek() == ']' {
			p.off++
			return true
		}
		if !first && !p.expect(',') {
			return false
		}
		first = false
		if !p.expect('{') {
			return false
		}
		var e Event
		firstField := true
		for {
			p.ws()
			if p.peek() == '}' {
				p.off++
				break
			}
			if !firstField && !p.expect(',') {
				return false
			}
			firstField = false
			field, ok := p.str()
			if !ok || !p.expect(':') {
				return false
			}
			if string(field) == "Name" {
				s, ok := p.str()
				if !ok {
					return false
				}
				if in != nil {
					e.Name = in.Intern(s)
				} else {
					e.Name = string(s)
				}
				continue
			}
			v, ok := p.int()
			if !ok {
				return false
			}
			switch string(field) {
			case "Kind":
				e.Kind = EventKind(v)
			case "Cat":
				e.Cat = Category(v)
			case "Overhead":
				e.Overhead = OverheadKind(v)
			case "Proc":
				e.Proc = ProcID(v)
			case "Start":
				e.Start = timeFromInt64(v)
			case "End":
				e.End = timeFromInt64(v)
			default:
				return false
			}
		}
		ix.Phases = append(ix.Phases, e)
	}
}

func parseProcID(b []byte) (ProcID, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v > 1<<31 {
			return 0, false
		}
	}
	if neg {
		v = -v
	}
	return ProcID(v), true
}
