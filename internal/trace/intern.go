package trace

// Interner deduplicates decoded strings so every chunk of a trace shares one
// string object per distinct name. Event names repeat heavily both within
// and across chunks (kernel names, op annotations), and the decoders resolve
// every name through an interner: a hit costs no allocation at all — the
// map lookup with a []byte key compiles to a no-copy probe — so a warm
// streaming decode allocates strings only for names it has never seen.
//
// An Interner is not safe for concurrent use; each Reader owns one.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string)}
}

// Intern returns the canonical string for b, allocating only on first sight.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok { // no-alloc lookup: key is not retained
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}

// InternString is Intern for an already-materialized string.
func (in *Interner) InternString(s string) string {
	if c, ok := in.m[s]; ok {
		return c
	}
	in.m[s] = s
	return s
}

// Len reports how many distinct strings the interner holds.
func (in *Interner) Len() int { return len(in.m) }
