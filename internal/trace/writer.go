package trace

import (
	"fmt"
	"sync"
)

// DefaultChunkBytes is the serialized-size threshold at which a buffered
// chunk is handed to the background writer. The paper flushes at 20 MB
// (Appendix A.1); the default here is smaller because simulated traces are
// smaller, but the mechanism is identical.
const DefaultChunkBytes = 1 << 20

const (
	chunkFilePattern = "chunk_%06d.rlstrace"
	metaFileName     = "meta.json"
)

// Writer persists a trace as a sequence of binary chunks plus run
// metadata, delivered to a Sink. Serialization and delivery happen on a
// background goroutine so that trace collection stays off the training
// critical path (paper Appendix A.1: traces are aggregated in librlscope.so
// and dumped asynchronously). NewWriter targets a local directory — the
// historical layout — while NewSinkWriter accepts any Sink, which is how a
// workload streams its trace over HTTP into a live rlscope-serve store
// instead of writing local files.
//
// Writer methods are not safe for concurrent use by multiple goroutines;
// each simulated process buffers its own events and the harness feeds them
// to the writer sequentially.
type Writer struct {
	sink       Sink
	chunkBytes int
	format     Format

	mu      sync.Mutex
	pending []Event
	size    int
	nchunks int
	// names tracks the distinct names of the pending v2 chunk, so the
	// flush threshold can estimate the encoded size (each name is stored
	// once per chunk in the dictionary).
	names map[string]struct{}

	jobs    chan writeJob
	done    chan struct{}
	errOnce sync.Once
	err     error
	closed  bool
}

type writeJob struct {
	seq    int
	events []Event
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithFormat selects the chunk encoding the Writer emits. The default is
// FormatV1, the historical byte-for-byte layout; FormatV2 writes columnar
// chunks (and sizes them by estimated encoded bytes, so v2 chunk files pack
// several times more events into the same chunkBytes budget).
func WithFormat(f Format) WriterOption {
	return func(w *Writer) {
		if f.valid() {
			w.format = f
		}
	}
}

// NewWriter creates the directory (if needed) and returns a Writer
// flushing chunks of approximately chunkBytes serialized bytes into it.
// Stale trace files from a previous run in the same directory are removed
// first, so a rewrite can never leave orphaned higher-numbered chunks
// behind. chunkBytes <= 0 uses DefaultChunkBytes.
func NewWriter(dir string, chunkBytes int, opts ...WriterOption) (*Writer, error) {
	sink, err := newDirSink(dir, true)
	if err != nil {
		return nil, err
	}
	return NewSinkWriter(sink, chunkBytes, opts...), nil
}

// NewSinkWriter returns a Writer delivering its chunk frames to sink.
// chunkBytes <= 0 uses DefaultChunkBytes.
func NewSinkWriter(sink Sink, chunkBytes int, opts ...WriterOption) *Writer {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	w := &Writer{
		sink:       sink,
		chunkBytes: chunkBytes,
		format:     FormatV1,
		jobs:       make(chan writeJob, 16),
		done:       make(chan struct{}),
	}
	for _, opt := range opts {
		opt(w)
	}
	if w.format == FormatV2 {
		w.names = map[string]struct{}{}
	}
	go w.writeLoop()
	return w
}

func (w *Writer) writeLoop() {
	defer close(w.done)
	for job := range w.jobs {
		// The sidecar index is derived from the same event slice the chunk
		// was encoded from, so the two can never disagree; a streaming
		// analysis plans chunk routing from it without decoding events.
		chunk, ix, err := EncodeEventsFormat(job.events, w.format)
		if err != nil {
			w.setErr(err)
			continue
		}
		if err := w.sink.AppendChunk(job.seq, chunk, ix); err != nil {
			w.setErr(err)
		}
	}
}

func (w *Writer) setErr(err error) {
	w.errOnce.Do(func() { w.err = err })
}

// Append buffers events, flushing a chunk to the background writer whenever
// the buffer passes the chunk-size threshold. The threshold is checked per
// event, so one large Append still produces size-bounded chunks.
func (w *Writer) Append(events ...Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range events {
		w.pending = append(w.pending, e)
		// Estimated serialized size. An estimate is fine; chunk boundaries
		// are not semantic. The v1 estimate (fixed fields plus name bytes)
		// tracks the resident footprint; the v2 estimate tracks the
		// columnar encoding — a handful of bytes per event plus each
		// distinct name once — so v2 chunk files carry several times more
		// events for the same chunkBytes threshold.
		if w.format == FormatV2 {
			w.size += 6
			if _, ok := w.names[e.Name]; !ok {
				w.names[e.Name] = struct{}{}
				w.size += len(e.Name) + 2
			}
		} else {
			w.size += eventBytes(e)
		}
		if w.size >= w.chunkBytes {
			w.flushLocked()
		}
	}
}

// eventBytes estimates an event's in-memory/serialized footprint: fixed
// fields plus name bytes. The writer's flush threshold and the streaming
// analyzer's MaxResidentBytes accounting share this estimate.
func eventBytes(e Event) int { return 16 + len(e.Name) }

// EventBytes estimates one event's resident footprint; the streaming
// analysis engine uses it for its MaxResidentBytes accounting.
func EventBytes(e Event) int { return eventBytes(e) }

func (w *Writer) flushLocked() {
	if len(w.pending) == 0 {
		return
	}
	w.jobs <- writeJob{seq: w.nchunks, events: w.pending}
	w.nchunks++
	w.pending = nil
	w.size = 0
	if w.names != nil {
		clear(w.names)
	}
}

// Close flushes remaining events, waits for the background writer to
// finish, seals the sink with the run metadata, and reports the first
// error encountered, if any.
func (w *Writer) Close(meta Meta) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("trace: writer already closed")
	}
	w.closed = true
	w.flushLocked()
	w.mu.Unlock()

	close(w.jobs)
	<-w.done

	if err := w.sink.Seal(meta); err != nil && w.err == nil {
		return err
	}
	return w.err
}

// ChunksWritten reports how many chunk flushes have been scheduled so far.
func (w *Writer) ChunksWritten() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nchunks
}

// ReadDir loads a trace previously written by Writer from dir, materializing
// every chunk into one Trace. A truncated or corrupt chunk file is reported
// as a *ChunkError naming the offending file. For bounded-memory analysis of
// large traces, use OpenDir and the streaming engine instead.
func ReadDir(dir string) (*Trace, error) {
	r, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	t := &Trace{Meta: r.Meta()}
	for i := 0; i < r.NumChunks(); i++ {
		t.Events, err = r.ReadChunk(i, t.Events)
		if err != nil {
			return nil, err
		}
	}
	t.Sort()
	return t, nil
}
