package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultChunkBytes is the serialized-size threshold at which a buffered
// chunk is handed to the background writer. The paper flushes at 20 MB
// (Appendix A.1); the default here is smaller because simulated traces are
// smaller, but the mechanism is identical.
const DefaultChunkBytes = 1 << 20

const (
	chunkFilePattern = "chunk_%06d.rlstrace"
	metaFileName     = "meta.json"
)

// Writer persists a trace to a directory as a sequence of binary chunk files
// plus a JSON metadata file. Serialization and disk I/O happen on a
// background goroutine so that trace collection stays off the training
// critical path (paper Appendix A.1: traces are aggregated in librlscope.so
// and dumped asynchronously).
//
// Writer methods are not safe for concurrent use by multiple goroutines;
// each simulated process buffers its own events and the harness feeds them
// to the writer sequentially.
type Writer struct {
	dir        string
	chunkBytes int

	mu      sync.Mutex
	pending []Event
	size    int
	nchunks int

	jobs    chan writeJob
	done    chan struct{}
	errOnce sync.Once
	err     error
	closed  bool
}

type writeJob struct {
	path   string
	events []Event
}

// NewWriter creates the directory (if needed) and returns a Writer flushing
// chunks of approximately chunkBytes serialized bytes. chunkBytes <= 0 uses
// DefaultChunkBytes.
func NewWriter(dir string, chunkBytes int) (*Writer, error) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating trace dir: %w", err)
	}
	w := &Writer{
		dir:        dir,
		chunkBytes: chunkBytes,
		jobs:       make(chan writeJob, 16),
		done:       make(chan struct{}),
	}
	go w.writeLoop()
	return w, nil
}

func (w *Writer) writeLoop() {
	defer close(w.done)
	for job := range w.jobs {
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, job.events); err != nil {
			w.setErr(err)
			continue
		}
		if err := os.WriteFile(job.path, buf.Bytes(), 0o644); err != nil {
			w.setErr(err)
		}
	}
}

func (w *Writer) setErr(err error) {
	w.errOnce.Do(func() { w.err = err })
}

// Append buffers events, flushing a chunk to the background writer when the
// buffer passes the chunk-size threshold.
func (w *Writer) Append(events ...Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range events {
		w.pending = append(w.pending, e)
		// Estimated serialized size: fixed fields plus name bytes. An
		// estimate is fine; chunk boundaries are not semantic.
		w.size += 16 + len(e.Name)
	}
	if w.size >= w.chunkBytes {
		w.flushLocked()
	}
}

func (w *Writer) flushLocked() {
	if len(w.pending) == 0 {
		return
	}
	path := filepath.Join(w.dir, fmt.Sprintf(chunkFilePattern, w.nchunks))
	w.nchunks++
	w.jobs <- writeJob{path: path, events: w.pending}
	w.pending = nil
	w.size = 0
}

// Close flushes remaining events, writes metadata, waits for the background
// writer to finish, and reports the first error encountered, if any.
func (w *Writer) Close(meta Meta) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("trace: writer already closed")
	}
	w.closed = true
	w.flushLocked()
	w.mu.Unlock()

	close(w.jobs)
	<-w.done

	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding metadata: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, metaFileName), data, 0o644); err != nil {
		return fmt.Errorf("trace: writing metadata: %w", err)
	}
	return w.err
}

// ChunksWritten reports how many chunk files have been scheduled so far.
func (w *Writer) ChunksWritten() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nchunks
}

// ReadDir loads a trace previously written by Writer from dir.
func ReadDir(dir string) (*Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: reading trace dir: %w", err)
	}
	var chunkNames []string
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".rlstrace") {
			chunkNames = append(chunkNames, ent.Name())
		}
	}
	sort.Strings(chunkNames)
	t := &Trace{}
	for _, name := range chunkNames {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("trace: opening chunk %s: %w", name, err)
		}
		t.Events, err = DecodeChunk(f, t.Events)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace: decoding chunk %s: %w", name, err)
		}
	}
	metaData, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return nil, fmt.Errorf("trace: reading metadata: %w", err)
	}
	if err := json.Unmarshal(metaData, &t.Meta); err != nil {
		return nil, fmt.Errorf("trace: decoding metadata: %w", err)
	}
	t.Sort()
	return t, nil
}
