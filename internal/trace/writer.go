package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultChunkBytes is the serialized-size threshold at which a buffered
// chunk is handed to the background writer. The paper flushes at 20 MB
// (Appendix A.1); the default here is smaller because simulated traces are
// smaller, but the mechanism is identical.
const DefaultChunkBytes = 1 << 20

const (
	chunkFilePattern = "chunk_%06d.rlstrace"
	metaFileName     = "meta.json"
)

// Writer persists a trace to a directory as a sequence of binary chunk files
// plus a JSON metadata file. Serialization and disk I/O happen on a
// background goroutine so that trace collection stays off the training
// critical path (paper Appendix A.1: traces are aggregated in librlscope.so
// and dumped asynchronously).
//
// Writer methods are not safe for concurrent use by multiple goroutines;
// each simulated process buffers its own events and the harness feeds them
// to the writer sequentially.
type Writer struct {
	dir        string
	chunkBytes int

	mu      sync.Mutex
	pending []Event
	size    int
	nchunks int

	jobs    chan writeJob
	done    chan struct{}
	errOnce sync.Once
	err     error
	closed  bool
}

type writeJob struct {
	path   string
	events []Event
}

// NewWriter creates the directory (if needed) and returns a Writer flushing
// chunks of approximately chunkBytes serialized bytes. chunkBytes <= 0 uses
// DefaultChunkBytes.
func NewWriter(dir string, chunkBytes int) (*Writer, error) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating trace dir: %w", err)
	}
	w := &Writer{
		dir:        dir,
		chunkBytes: chunkBytes,
		jobs:       make(chan writeJob, 16),
		done:       make(chan struct{}),
	}
	go w.writeLoop()
	return w, nil
}

func (w *Writer) writeLoop() {
	defer close(w.done)
	for job := range w.jobs {
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, job.events); err != nil {
			w.setErr(err)
			continue
		}
		if err := os.WriteFile(job.path, buf.Bytes(), 0o644); err != nil {
			w.setErr(err)
			continue
		}
		// The sidecar index lets streaming analysis plan chunk routing
		// without decoding events; it is derived from the same event slice
		// the chunk was encoded from, so the two can never disagree.
		ix := BuildChunkIndex(job.events, int64(buf.Len()))
		data, err := json.Marshal(ix)
		if err != nil {
			w.setErr(err)
			continue
		}
		if err := os.WriteFile(sidecarPath(job.path), data, 0o644); err != nil {
			w.setErr(err)
		}
	}
}

func (w *Writer) setErr(err error) {
	w.errOnce.Do(func() { w.err = err })
}

// Append buffers events, flushing a chunk to the background writer whenever
// the buffer passes the chunk-size threshold. The threshold is checked per
// event, so one large Append still produces size-bounded chunks.
func (w *Writer) Append(events ...Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range events {
		w.pending = append(w.pending, e)
		// Estimated serialized size: fixed fields plus name bytes. An
		// estimate is fine; chunk boundaries are not semantic.
		w.size += eventBytes(e)
		if w.size >= w.chunkBytes {
			w.flushLocked()
		}
	}
}

// eventBytes estimates an event's in-memory/serialized footprint: fixed
// fields plus name bytes. The writer's flush threshold and the streaming
// analyzer's MaxResidentBytes accounting share this estimate.
func eventBytes(e Event) int { return 16 + len(e.Name) }

// EventBytes estimates one event's resident footprint; the streaming
// analysis engine uses it for its MaxResidentBytes accounting.
func EventBytes(e Event) int { return eventBytes(e) }

func (w *Writer) flushLocked() {
	if len(w.pending) == 0 {
		return
	}
	path := filepath.Join(w.dir, fmt.Sprintf(chunkFilePattern, w.nchunks))
	w.nchunks++
	w.jobs <- writeJob{path: path, events: w.pending}
	w.pending = nil
	w.size = 0
}

// Close flushes remaining events, writes metadata, waits for the background
// writer to finish, and reports the first error encountered, if any.
func (w *Writer) Close(meta Meta) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("trace: writer already closed")
	}
	w.closed = true
	w.flushLocked()
	w.mu.Unlock()

	close(w.jobs)
	<-w.done

	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding metadata: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, metaFileName), data, 0o644); err != nil {
		return fmt.Errorf("trace: writing metadata: %w", err)
	}
	return w.err
}

// ChunksWritten reports how many chunk files have been scheduled so far.
func (w *Writer) ChunksWritten() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nchunks
}

// ReadDir loads a trace previously written by Writer from dir, materializing
// every chunk into one Trace. A truncated or corrupt chunk file is reported
// as a *ChunkError naming the offending file. For bounded-memory analysis of
// large traces, use OpenDir and the streaming engine instead.
func ReadDir(dir string) (*Trace, error) {
	r, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	t := &Trace{Meta: r.Meta()}
	for i := 0; i < r.NumChunks(); i++ {
		t.Events, err = r.ReadChunk(i, t.Events)
		if err != nil {
			return nil, err
		}
	}
	t.Sort()
	return t, nil
}
