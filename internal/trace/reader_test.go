package trace

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeRandomTrace persists n random events in tiny chunks and returns the
// directory and the events in write order.
func writeRandomTrace(t *testing.T, seed int64, n, chunkBytes int) (string, []Event) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := NewWriter(dir, chunkBytes)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	events := randomEvents(rand.New(rand.NewSource(seed)), n)
	w.Append(events...)
	if err := w.Close(Meta{Workload: "reader-test"}); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir, events
}

func TestReaderStreamsAllChunks(t *testing.T) {
	dir, events := writeRandomTrace(t, 21, 1500, 2048)
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if r.Meta().Workload != "reader-test" {
		t.Fatalf("meta: %+v", r.Meta())
	}
	if r.NumChunks() < 2 {
		t.Fatalf("want multiple chunks, got %d", r.NumChunks())
	}
	// Stream with one reusable buffer; concatenation in chunk order must
	// reproduce the write order exactly.
	var got []Event
	var buf []Event
	for i := 0; i < r.NumChunks(); i++ {
		buf, err = r.ReadChunk(i, buf[:0])
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		got = append(got, buf...)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("streamed %d events != written %d events", len(got), len(events))
	}
}

func TestWriterEmitsSidecars(t *testing.T) {
	dir, _ := writeRandomTrace(t, 22, 1500, 2048)
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	for i := 0; i < r.NumChunks(); i++ {
		side := filepath.Join(dir, sidecarPath(r.ChunkName(i)))
		if _, err := os.Stat(side); err != nil {
			t.Fatalf("chunk %d: missing sidecar: %v", i, err)
		}
		ix, err := r.Index(i)
		if err != nil {
			t.Fatalf("Index(%d): %v", i, err)
		}
		events, err := r.ReadChunk(i, nil)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		want := BuildChunkIndex(events, ix.Bytes)
		if !reflect.DeepEqual(ix, want) {
			t.Fatalf("chunk %d: sidecar index %+v disagrees with rebuilt index %+v", i, ix, want)
		}
		if fi, err := os.Stat(filepath.Join(dir, r.ChunkName(i))); err != nil || fi.Size() != ix.Bytes {
			t.Fatalf("chunk %d: sidecar bytes %d != file size (%v, %v)", i, ix.Bytes, fi, err)
		}
	}
}

func TestReaderIndexFallbackWithoutSidecar(t *testing.T) {
	dir, _ := writeRandomTrace(t, 23, 800, 2048)
	sidecars, err := filepath.Glob(filepath.Join(dir, "*"+sidecarSuffix))
	if err != nil || len(sidecars) == 0 {
		t.Fatalf("expected sidecars: %v (err %v)", sidecars, err)
	}
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*ChunkIndex, r.NumChunks())
	for i := range want {
		if want[i], err = r.Index(i); err != nil {
			t.Fatalf("Index(%d): %v", i, err)
		}
	}
	for _, s := range sidecars {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		got, err := r.Index(i)
		if err != nil {
			t.Fatalf("fallback Index(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("chunk %d: fallback index %+v != sidecar index %+v", i, got, want[i])
		}
	}
}

// TestReadDirTruncatedChunk asserts the satellite fix: a truncated chunk
// file surfaces as a wrapped *ChunkError naming the offending file, not a
// bare decode error.
func TestReadDirTruncatedChunk(t *testing.T) {
	dir, _ := writeRandomTrace(t, 24, 1500, 2048)
	chunks, err := filepath.Glob(filepath.Join(dir, "*"+chunkSuffix))
	if err != nil || len(chunks) < 2 {
		t.Fatalf("want multiple chunks: %v (err %v)", chunks, err)
	}
	victim := chunks[len(chunks)/2]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReadDir(dir)
	if err == nil {
		t.Fatal("ReadDir succeeded on a truncated chunk")
	}
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *ChunkError", err, err)
	}
	if ce.Chunk != filepath.Base(victim) {
		t.Fatalf("error names chunk %q, want %q", ce.Chunk, filepath.Base(victim))
	}
	if ce.Dir != dir {
		t.Fatalf("error names dir %q, want %q", ce.Dir, dir)
	}
}

// TestReadDirCorruptMagic covers corruption (bad bytes, not truncation).
func TestReadDirCorruptMagic(t *testing.T) {
	dir, _ := writeRandomTrace(t, 25, 300, 0)
	chunks, err := filepath.Glob(filepath.Join(dir, "*"+chunkSuffix))
	if err != nil || len(chunks) == 0 {
		t.Fatalf("no chunks: %v (err %v)", chunks, err)
	}
	if err := os.WriteFile(chunks[0], []byte("GARBAGEGARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *ChunkError
	if _, err := ReadDir(dir); !errors.As(err, &ce) {
		t.Fatalf("got %v, want *ChunkError", err)
	}
}

// TestWriterAppendBulkChunks verifies one large Append still produces
// size-bounded chunks (the flush threshold is checked per event), which is
// what makes Profiler.WriteTo output streamable.
func TestWriterAppendBulkChunks(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := NewWriter(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	events := randomEvents(rand.New(rand.NewSource(26)), 2000)
	w.Append(events...) // single call
	if err := w.Close(Meta{Workload: "bulk"}); err != nil {
		t.Fatal(err)
	}
	if w.ChunksWritten() < 2 {
		t.Fatalf("bulk Append produced %d chunks, want several", w.ChunksWritten())
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(events) {
		t.Fatalf("read %d events, want %d", len(got.Events), len(events))
	}
}
