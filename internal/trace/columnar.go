package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/vclock"
)

// Columnar (v2) chunk format. Same magic as v1; the version after the magic
// selects the decoder, so mixed-version directories work chunk by chunk.
//
//	magic    "RLSC"        (4 bytes)
//	version  uvarint       (2)
//	count    uvarint       (number of events)
//	namedict uvarint entry count, then per entry: uvarint length + bytes.
//	         Entries appear in first-use order; the name column references
//	         them by index.
//	classtab uvarint entry count, then per entry 3 bytes: kind, cat,
//	         overhead. A "class" is the distinct (Kind, Cat, Overhead)
//	         triple; real traces use a dozen or so, so the class column
//	         references this table with 1-byte indices instead of spending
//	         v1's fixed 3 header bytes per event.
//	coldir   numCols uvarints: the byte length of each column, in column
//	         order, so a reader can seek to any column in O(1).
//	columns  concatenated, in order:
//
//	  classes mode byte, then RLE pairs (uvarint run + uvarint class index)
//	          or one plain uvarint index per event
//	  procs   mode byte, then RLE pairs (uvarint run + uvarint ProcID) or
//	          one plain uvarint per event
//	  starts  varint delta from the previous event's start (first absolute)
//	  durs    mode byte, then RLE pairs (uvarint run + uvarint End − Start)
//	          or one plain uvarint per event
//	  names   mode byte, then RLE pairs (uvarint run + uvarint dictionary
//	          index) or one plain uvarint index per event
//
// Every column except starts carries a leading mode byte: the encoder emits
// both candidate encodings and keeps the smaller. When events arrive in
// class-sorted bursts the run-length form collapses a column to amortized
// fractions of a byte per event; when values alternate every event (RLE's
// adversarial case — real step loops interleave kinds constantly) the plain
// form caps the cost at one small uvarint, still far below v1's fixed
// 3-byte header + proc byte. The name dictionary stores each distinct name
// exactly once per chunk, and a decoder materializes it straight into an
// Interner, so events across the whole trace share one string object per
// distinct name.
const chunkVersion2 = 2

// Column encodings, selected per column by the leading mode byte.
const (
	colModeRLE   = 0
	colModePlain = 1
)

// Column indices, in on-disk order.
const (
	colClasses = iota
	colProcs
	colStarts
	colDurs
	colNames
	numCols
)

// modeColumns lists the columns that carry a leading mode byte (every one
// except starts), paired with the plain-candidate scratch slot the encoder
// builds alongside the RLE form.
var modeColumns = [4]int{colClasses, colProcs, colDurs, colNames}

// maxNameLen bounds a single name (shared with the v1 decoder).
const maxNameLen = 1 << 16

// classKey packs one (Kind, Cat, Overhead) triple the way v1's event header
// stores it: one byte each, silently truncated.
func classKey(e Event) uint32 {
	return uint32(byte(e.Kind))<<16 | uint32(byte(e.Cat))<<8 | uint32(byte(e.Overhead))
}

// v2Encoder holds the reusable scratch of one v2 encode. The mode columns
// are built twice — run-length into cols, plain into plain — and the smaller
// encoding wins at emit time.
type v2Encoder struct {
	cols    [numCols][]byte
	plain   [len(modeColumns)][]byte
	dict    []byte
	classes []byte
	out     []byte
	refs    map[string]uint64
	classOf map[uint32]uint64
}

var v2EncPool = sync.Pool{New: func() any {
	return &v2Encoder{refs: map[string]uint64{}, classOf: map[uint32]uint64{}}
}}

// rleState accumulates one run-length-encoded column during encode.
type rleState struct {
	run     uint64
	val     uint64
	started bool
}

func (r *rleState) add(col *[]byte, v uint64) {
	if r.started && v == r.val {
		r.run++
		return
	}
	r.flush(col)
	r.val, r.run, r.started = v, 1, true
}

func (r *rleState) flush(col *[]byte) {
	if !r.started {
		return
	}
	*col = binary.AppendUvarint(*col, r.run)
	*col = binary.AppendUvarint(*col, r.val)
	r.run = 0
}

// EncodeChunkV2 writes events as one columnar chunk frame to w. The frame is
// deterministic: equal event lists encode to equal bytes.
func EncodeChunkV2(w io.Writer, events []Event) error {
	enc := v2EncPool.Get().(*v2Encoder)
	defer v2EncPool.Put(enc)
	frame, err := enc.encode(events)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// AppendChunkV2 appends the columnar encoding of events to dst.
func AppendChunkV2(dst []byte, events []Event) ([]byte, error) {
	enc := v2EncPool.Get().(*v2Encoder)
	defer v2EncPool.Put(enc)
	frame, err := enc.encode(events)
	if err != nil {
		return dst, err
	}
	return append(dst, frame...), nil
}

func (e *v2Encoder) encode(events []Event) ([]byte, error) {
	for i := range e.cols {
		e.cols[i] = e.cols[i][:0]
	}
	for i := range e.plain {
		e.plain[i] = e.plain[i][:0]
	}
	e.dict = e.dict[:0]
	e.classes = e.classes[:0]
	e.out = e.out[:0]
	clear(e.refs)
	clear(e.classOf)

	var classes, procs, durs, names rleState
	var prevStart int64
	for _, ev := range events {
		if ev.End < ev.Start {
			return nil, fmt.Errorf("trace: encode: event %q has negative duration", ev.Name)
		}
		key := classKey(ev)
		class, ok := e.classOf[key]
		if !ok {
			class = uint64(len(e.classOf))
			e.classOf[key] = class
			e.classes = append(e.classes, byte(ev.Kind), byte(ev.Cat), byte(ev.Overhead))
		}
		classes.add(&e.cols[colClasses], class)
		e.plain[0] = binary.AppendUvarint(e.plain[0], class)
		procs.add(&e.cols[colProcs], uint64(ev.Proc))
		e.plain[1] = binary.AppendUvarint(e.plain[1], uint64(ev.Proc))
		e.cols[colStarts] = binary.AppendVarint(e.cols[colStarts], int64(ev.Start)-prevStart)
		prevStart = int64(ev.Start)
		durs.add(&e.cols[colDurs], uint64(ev.End-ev.Start))
		e.plain[2] = binary.AppendUvarint(e.plain[2], uint64(ev.End-ev.Start))
		ref, ok := e.refs[ev.Name]
		if !ok {
			ref = uint64(len(e.refs))
			e.refs[ev.Name] = ref
			e.dict = binary.AppendUvarint(e.dict, uint64(len(ev.Name)))
			e.dict = append(e.dict, ev.Name...)
		}
		names.add(&e.cols[colNames], ref)
		e.plain[3] = binary.AppendUvarint(e.plain[3], ref)
	}
	classes.flush(&e.cols[colClasses])
	procs.flush(&e.cols[colProcs])
	durs.flush(&e.cols[colDurs])
	names.flush(&e.cols[colNames])

	// Pick the smaller encoding per mode column (ties keep RLE, so the
	// choice — and the frame — is deterministic).
	var mode [numCols]byte
	for j, ci := range modeColumns {
		if len(e.plain[j]) < len(e.cols[ci]) {
			mode[ci] = colModePlain
			e.cols[ci], e.plain[j] = e.plain[j], e.cols[ci]
		}
	}

	e.out = append(e.out, chunkMagic...)
	e.out = binary.AppendUvarint(e.out, chunkVersion2)
	e.out = binary.AppendUvarint(e.out, uint64(len(events)))
	e.out = binary.AppendUvarint(e.out, uint64(len(e.refs)))
	e.out = append(e.out, e.dict...)
	e.out = binary.AppendUvarint(e.out, uint64(len(e.classOf)))
	e.out = append(e.out, e.classes...)
	for i := range e.cols {
		n := len(e.cols[i])
		if i != colStarts {
			n++ // leading mode byte
		}
		e.out = binary.AppendUvarint(e.out, uint64(n))
	}
	for i := range e.cols {
		if i != colStarts {
			e.out = append(e.out, mode[i])
		}
		e.out = append(e.out, e.cols[i]...)
	}
	return e.out, nil
}

// eventClass is one decoded (Kind, Cat, Overhead) triple from the class
// table.
type eventClass struct {
	kind EventKind
	cat  Category
	ov   OverheadKind
}

// ColumnChunk is a parsed columnar chunk: the column byte slices alias the
// frame passed to Parse (zero copy), and the name dictionary and class table
// are materialized once — names through an Interner when given one, so
// repeated names across chunks share storage. Iterating events constructs
// Event values on the fly without any per-event allocation; Name fields are
// dictionary references, so they stay valid after the frame's buffer is
// reused.
//
// A ColumnChunk is only valid while the frame it was parsed from is; parsing
// again into the same ColumnChunk reuses its scratch.
type ColumnChunk struct {
	count   int
	dict    []string
	classes []eventClass
	cols    [numCols][]byte
}

// ParseColumnChunk parses one v2 chunk frame. in may be nil.
func ParseColumnChunk(frame []byte, in *Interner) (*ColumnChunk, error) {
	c := &ColumnChunk{}
	if err := c.Parse(frame, in); err != nil {
		return nil, err
	}
	return c, nil
}

// Parse (re)initializes c from one v2 chunk frame, reusing c's scratch. The
// frame must start with the chunk magic and version 2; every structural
// field is bounds-checked so corrupt or truncated frames return errors, never
// panic.
func (c *ColumnChunk) Parse(frame []byte, in *Interner) error {
	c.count = 0
	c.dict = c.dict[:0]
	c.classes = c.classes[:0]
	for i := range c.cols {
		c.cols[i] = nil
	}
	if len(frame) < len(chunkMagic) {
		return fmt.Errorf("trace: decode: reading magic: %w", io.ErrUnexpectedEOF)
	}
	if string(frame[:len(chunkMagic)]) != chunkMagic {
		return fmt.Errorf("trace: decode: bad magic %q", frame[:len(chunkMagic)])
	}
	cur := colCursor{b: frame, off: len(chunkMagic)}
	version, err := cur.uvarint("version")
	if err != nil {
		return err
	}
	if version != chunkVersion2 {
		return fmt.Errorf("trace: decode: unsupported version %d", version)
	}
	count, err := cur.uvarint("count")
	if err != nil {
		return err
	}
	ndict, err := cur.uvarint("dict size")
	if err != nil {
		return err
	}
	if ndict > uint64(len(cur.b)-cur.off) {
		return fmt.Errorf("trace: decode: dict size %d exceeds frame", ndict)
	}
	for i := uint64(0); i < ndict; i++ {
		slen, err := cur.uvarint("dict entry len")
		if err != nil {
			return err
		}
		if slen > maxNameLen {
			return fmt.Errorf("trace: decode: dict entry %d length %d exceeds limit", i, slen)
		}
		b, err := cur.take(int(slen), "dict entry")
		if err != nil {
			return err
		}
		if in != nil {
			c.dict = append(c.dict, in.Intern(b))
		} else {
			c.dict = append(c.dict, string(b))
		}
	}
	nclasses, err := cur.uvarint("class table size")
	if err != nil {
		return err
	}
	if nclasses > uint64(len(cur.b)-cur.off)/3 {
		return fmt.Errorf("trace: decode: class table size %d exceeds frame", nclasses)
	}
	for i := uint64(0); i < nclasses; i++ {
		b, err := cur.take(3, "class table entry")
		if err != nil {
			return err
		}
		c.classes = append(c.classes, eventClass{
			kind: EventKind(b[0]), cat: Category(b[1]), ov: OverheadKind(b[2]),
		})
	}
	var lens [numCols]int
	total := 0
	for i := 0; i < numCols; i++ {
		n, err := cur.uvarint("column directory")
		if err != nil {
			return err
		}
		if n > uint64(len(cur.b)-cur.off) {
			return fmt.Errorf("trace: decode: column %d length %d exceeds frame", i, n)
		}
		lens[i] = int(n)
		total += int(n)
	}
	if total > len(cur.b)-cur.off {
		return fmt.Errorf("trace: decode: columns (%d bytes) exceed frame", total)
	}
	for i := 0; i < numCols; i++ {
		b, err := cur.take(lens[i], "column")
		if err != nil {
			return err
		}
		c.cols[i] = b
	}
	// Every event consumes at least one byte in the start column (the only
	// one that is never run-length encoded), so a plausible count is bounded
	// by its length; this rejects absurd counts before any iteration work.
	if count > uint64(len(c.cols[colStarts])) {
		return fmt.Errorf("trace: decode: count %d exceeds column data", count)
	}
	for _, ci := range modeColumns {
		b := c.cols[ci]
		if len(b) == 0 {
			if count > 0 {
				return fmt.Errorf("trace: decode: column %d missing mode byte", ci)
			}
			continue
		}
		if b[0] != colModeRLE && b[0] != colModePlain {
			return fmt.Errorf("trace: decode: column %d has unknown mode %d", ci, b[0])
		}
	}
	c.count = int(count)
	return nil
}

// Len reports the chunk's event count.
func (c *ColumnChunk) Len() int { return c.count }

// colCursor walks one byte slice, returning errors (never panicking) on
// truncation or malformed varints.
type colCursor struct {
	b   []byte
	off int
}

func (c *colCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: decode: reading %s: %w", what, io.ErrUnexpectedEOF)
	}
	c.off += n
	return v, nil
}

func (c *colCursor) varint(what string) (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: decode: reading %s: %w", what, io.ErrUnexpectedEOF)
	}
	c.off += n
	return v, nil
}

func (c *colCursor) take(n int, what string) ([]byte, error) {
	if n < 0 || n > len(c.b)-c.off {
		return nil, fmt.Errorf("trace: decode: reading %s: %w", what, io.ErrUnexpectedEOF)
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, nil
}

// modeCursor replays one mode column in whichever encoding its mode byte
// selects: run-length pairs or one plain uvarint per event.
type modeCursor struct {
	cur   colCursor
	run   uint64
	val   uint64
	plain bool
	what  string
}

// newModeCursor positions a cursor past the column's mode byte (validated by
// Parse; an empty column only occurs when the chunk has zero events).
func newModeCursor(b []byte, what string) modeCursor {
	c := modeCursor{cur: colCursor{b: b}, what: what}
	if len(b) > 0 {
		c.plain = b[0] == colModePlain
		c.cur.off = 1
	}
	return c
}

func (r *modeCursor) next() (uint64, error) {
	if r.plain {
		return r.cur.uvarint(r.what)
	}
	for r.run == 0 {
		n, err := r.cur.uvarint(r.what)
		if err != nil {
			return 0, err
		}
		if r.val, err = r.cur.uvarint(r.what); err != nil {
			return 0, err
		}
		r.run = n
	}
	r.run--
	return r.val, nil
}

// Events iterates the chunk in storage order, constructing each Event on the
// stack — no per-event allocation, names resolved through the dictionary.
// Iteration stops early when yield returns false. The same corruption
// classes the v1 decoder rejects (duration overflow, dangling dictionary or
// class references, truncated columns) surface as errors here.
func (c *ColumnChunk) Events(yield func(i int, e Event) bool) error {
	classes := newModeCursor(c.cols[colClasses], "class column")
	procs := newModeCursor(c.cols[colProcs], "proc column")
	durs := newModeCursor(c.cols[colDurs], "dur column")
	names := newModeCursor(c.cols[colNames], "name column")
	starts := colCursor{b: c.cols[colStarts]}
	var prevStart int64
	for i := 0; i < c.count; i++ {
		var e Event
		class, err := classes.next()
		if err != nil {
			return fmt.Errorf("trace: decode: event %d class: %w", i, err)
		}
		if class >= uint64(len(c.classes)) {
			return fmt.Errorf("trace: decode: event %d references class %d beyond class table size %d", i, class, len(c.classes))
		}
		cl := c.classes[class]
		e.Kind, e.Cat, e.Overhead = cl.kind, cl.cat, cl.ov
		v, err := procs.next()
		if err != nil {
			return fmt.Errorf("trace: decode: event %d proc: %w", i, err)
		}
		e.Proc = ProcID(v)
		delta, err := starts.varint("start")
		if err != nil {
			return fmt.Errorf("trace: decode: event %d start: %w", i, err)
		}
		prevStart += delta
		e.Start = timeFromInt64(prevStart)
		dur, err := durs.next()
		if err != nil {
			return fmt.Errorf("trace: decode: event %d dur: %w", i, err)
		}
		e.End = e.Start.Add(durFromUint64(dur))
		if e.End < e.Start {
			return fmt.Errorf("trace: decode: event %d duration %d overflows", i, dur)
		}
		ref, err := names.next()
		if err != nil {
			return fmt.Errorf("trace: decode: event %d name ref: %w", i, err)
		}
		if ref >= uint64(len(c.dict)) {
			return fmt.Errorf("trace: decode: event %d references name %d beyond dictionary size %d", i, ref, len(c.dict))
		}
		e.Name = c.dict[ref]
		if !yield(i, e) {
			return nil
		}
	}
	return nil
}

// Times iterates only the timestamp columns — start and end per event — for
// consumers that need extents without names or classifications.
func (c *ColumnChunk) Times(yield func(i int, start, end vclock.Time) bool) error {
	starts := colCursor{b: c.cols[colStarts]}
	durs := newModeCursor(c.cols[colDurs], "dur column")
	var prevStart int64
	for i := 0; i < c.count; i++ {
		delta, err := starts.varint("start")
		if err != nil {
			return fmt.Errorf("trace: decode: event %d start: %w", i, err)
		}
		prevStart += delta
		start := timeFromInt64(prevStart)
		dur, err := durs.next()
		if err != nil {
			return fmt.Errorf("trace: decode: event %d dur: %w", i, err)
		}
		end := start.Add(durFromUint64(dur))
		if end < start {
			return fmt.Errorf("trace: decode: event %d duration %d overflows", i, dur)
		}
		if !yield(i, start, end) {
			return nil
		}
	}
	return nil
}

// AppendEvents materializes the chunk, appending its events to dst — the v2
// half of DecodeChunk.
func (c *ColumnChunk) AppendEvents(dst []Event) ([]Event, error) {
	err := c.Events(func(_ int, e Event) bool {
		dst = append(dst, e)
		return true
	})
	return dst, err
}
