package trace

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vclock"
)

// digestTestDir writes a small multi-chunk trace directory.
func digestTestDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, err := NewWriter(dir, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ts := vclock.Time(i * 100)
		w.Append(Event{
			Proc: ProcID(i % 3), Kind: KindCPU, Cat: CatPython,
			Start: ts, End: ts + 50, Name: "step",
		})
	}
	meta := Meta{Workload: "digest-test", Config: Full(), Procs: map[ProcID]ProcInfo{
		0: {Name: "trainer", Parent: -1}, 1: {Name: "w1", Parent: 0}, 2: {Name: "w2", Parent: 0},
	}}
	if err := w.Close(meta); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDirDigestStable(t *testing.T) {
	dir := digestTestDir(t)
	d1, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not 64 hex chars", d1)
	}
	d2, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not stable across calls: %s vs %s", d1, d2)
	}
}

func TestDirDigestIgnoresForeignFiles(t *testing.T) {
	dir := digestTestDir(t)
	before, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("scratch"), 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("digest changed when a non-trace file was added")
	}
}

func TestDirDigestDetectsContentChanges(t *testing.T) {
	dir := digestTestDir(t)
	before, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the first chunk file.
	names, err := filepath.Glob(filepath.Join(dir, "*"+chunkSuffix))
	if err != nil || len(names) < 2 {
		t.Fatalf("expected multiple chunks, got %v (err %v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("digest did not change when chunk content changed")
	}
}

func TestDirDigestDetectsMetadataChanges(t *testing.T) {
	dir := digestTestDir(t)
	before, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, metaFileName)
	data, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("digest did not change when metadata changed")
	}
}

func TestDirDigestEmptyDir(t *testing.T) {
	if _, err := DirDigest(t.TempDir()); err == nil {
		t.Fatal("expected an error digesting a directory with no trace files")
	}
}
