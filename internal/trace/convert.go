package trace

import "repro/internal/vclock"

func timeFromInt64(v int64) vclock.Time { return vclock.Time(v) }

func durFromUint64(v uint64) vclock.Duration { return vclock.Duration(v) }
