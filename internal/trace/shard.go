package trace

import (
	"slices"

	"repro/internal/vclock"
)

// Shard is one unit of parallel offline analysis: a (process, phase) slice
// of the trace. The window [Lo, Hi) is half-open; the windows of one
// process partition the entire timeline, so per-shard analyses merge to
// exactly the whole-process analysis. Events holds the process's events
// overlapping the window, unclipped — the analysis engine restricts
// accumulation to the window instead of truncating events, which is what
// makes the merge exact.
type Shard struct {
	// Proc is the process the shard belongs to.
	Proc ProcID
	// Phase is the name of the phase covering the window, or "" for the
	// slices of the timeline outside any phase annotation.
	Phase string
	// Lo and Hi bound the analysis window. The first shard of a process
	// extends to vclock.MinTime and the last to vclock.MaxTime.
	Lo, Hi vclock.Time
	// Events holds the process events overlapping [Lo, Hi); an event
	// spanning several windows appears in each of their shards. For a
	// process with phase windows the slice is a copy; a process covered by
	// a single full-timeline window aliases the trace's (sorted) slice, so
	// treat shard events as read-only.
	Events []Event
}

// Shards splits the trace into per-(process, phase) analysis shards. A
// process without phase annotations yields one shard spanning the whole
// timeline; a process with phases yields one shard per phase window plus
// shards for any uncovered gaps. Windows containing no events are dropped.
func (t *Trace) Shards() []Shard {
	t.Sort()
	var shards []Shard
	// Events are (proc, start)-sorted, so per-process slices are found by a
	// single pass instead of a ProcIDs map build plus per-process binary
	// searches (each of which re-ran Sort's O(n) order check).
	for first := 0; first < len(t.Events); {
		p := t.Events[first].Proc
		past := first + 1
		for past < len(t.Events) && t.Events[past].Proc == p {
			past++
		}
		events := t.Events[first:past]
		first = past
		windows := PhasePartition(events)
		if len(windows) == 1 {
			// Single full-timeline window (no phase annotations): the
			// shard covers every event of the process, so it can alias
			// the trace's slice instead of copying it.
			shards = append(shards, Shard{
				Proc: p, Phase: windows[0].Phase,
				Lo: windows[0].Lo, Hi: windows[0].Hi,
				Events: events,
			})
			continue
		}
		// Windows ascend and events are Start-sorted, so the scan for
		// each window starts past the prefix of events that ended before
		// the window and stops at the first event starting after it.
		base := 0
		for _, w := range windows {
			for base < len(events) && deadBefore(events[base], w.Lo) {
				base++
			}
			sh := Shard{Proc: p, Phase: w.Phase, Lo: w.Lo, Hi: w.Hi}
			for _, e := range events[base:] {
				if e.Start >= w.Hi {
					break
				}
				if OverlapsWindow(e, w.Lo, w.Hi) {
					sh.Events = append(sh.Events, e)
				}
			}
			if len(sh.Events) > 0 {
				shards = append(shards, sh)
			}
		}
	}
	return shards
}

// OverlapsWindow reports whether the event intersects [lo, hi): interval
// events by extent, point markers by membership of their instant. The
// streaming analysis engine routes events to shards with the same predicate
// Shards uses, which is what keeps the two paths byte-identical.
func OverlapsWindow(e Event, lo, hi vclock.Time) bool {
	if e.IsPoint() {
		return lo <= e.Start && e.Start < hi
	}
	return e.End > lo && e.Start < hi
}

// DeadBefore reports whether the event ends strictly before lo and so can
// overlap neither a window starting at lo nor any later one. The streaming
// engine uses it to drop events whose windows have been finalized while
// carrying still-open intervals forward.
func DeadBefore(e Event, lo vclock.Time) bool {
	if e.IsPoint() {
		return e.Start < lo
	}
	return e.End <= lo
}

// deadBefore is the internal alias Shards scans with.
func deadBefore(e Event, lo vclock.Time) bool { return DeadBefore(e, lo) }

// Window is one slice of a process's timeline in the per-phase partition:
// the half-open extent [Lo, Hi) and the innermost phase covering it ("" for
// time outside every phase annotation). The windows of one process partition
// the whole timeline, which is what makes per-window analyses merge exactly.
type Window struct {
	Phase  string
	Lo, Hi vclock.Time
}

// PhasePartition derives the partition of one process's timeline from its
// phase annotations: cut points at every phase boundary, windows between
// consecutive cuts, labelled by the innermost phase covering them. Only
// KindPhase events with positive extent participate; any other events in the
// slice are ignored, so callers may pass a full event list (Shards) or just
// the phase events collected from chunk sidecars (the streaming planner).
func PhasePartition(events []Event) []Window {
	nphases := 0
	for _, e := range events {
		if e.Kind == KindPhase && e.End > e.Start {
			nphases++
		}
	}
	if nphases == 0 {
		return []Window{{Lo: vclock.MinTime, Hi: vclock.MaxTime}}
	}
	phases := make([]Event, 0, nphases)
	// Cut points, sorted and deduplicated in place: MinTime, every phase
	// boundary, MaxTime. No set map — the streaming planner calls this once
	// per process per run, so the partition should cost three exact
	// allocations (phases, bounds, windows), not a hash table.
	bounds := make([]vclock.Time, 0, 2*nphases+2)
	bounds = append(bounds, vclock.MinTime)
	for _, e := range events {
		if e.Kind == KindPhase && e.End > e.Start {
			phases = append(phases, e)
			bounds = append(bounds, e.Start, e.End)
		}
	}
	bounds = append(bounds, vclock.MaxTime)
	slices.Sort(bounds)
	bounds = slices.Compact(bounds)

	windows := make([]Window, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		windows = append(windows, Window{Phase: coveringPhase(phases, lo, hi), Lo: lo, Hi: hi})
	}
	return windows
}

// coveringPhase returns the name of the innermost (latest-starting) phase
// fully covering [lo, hi), or "" when the window lies outside every phase.
// Cut-point construction guarantees a window is never partially covered.
func coveringPhase(phases []Event, lo, hi vclock.Time) string {
	name := ""
	var bestStart vclock.Time = vclock.MinTime
	found := false
	for _, p := range phases {
		if p.Start <= lo && hi <= p.End && (!found || p.Start >= bestStart) {
			name, bestStart, found = p.Name, p.Start, true
		}
	}
	return name
}
