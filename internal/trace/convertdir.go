package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ConvertStats reports what a directory conversion did.
type ConvertStats struct {
	// Chunks and Events count what was re-encoded.
	Chunks, Events int
	// SrcChunkBytes and DstChunkBytes total the chunk-file sizes on each
	// side — the at-rest size comparison (sidecars and metadata excluded;
	// they are format-independent).
	SrcChunkBytes, DstChunkBytes int64
	// SrcDigest is DirDigest of the source; DstDigest of the destination.
	SrcDigest, DstDigest string
	// Verified reports that the round-trip digest check ran and passed.
	Verified bool
}

// Ratio returns the at-rest chunk-size ratio dst/src (1.0 when src is
// empty).
func (s *ConvertStats) Ratio() float64 {
	if s.SrcChunkBytes == 0 {
		return 1
	}
	return float64(s.DstChunkBytes) / float64(s.SrcChunkBytes)
}

// ConvertDir rewrites the trace directory src into dst with every chunk
// re-encoded in format to, preserving chunk boundaries, sequence numbers,
// sidecar indexes, and metadata. dst must not already contain trace files.
//
// When verify is set, ConvertDir proves event equivalence through DirDigest:
// while converting it re-encodes each chunk's decoded events back into the
// chunk's original format and folds the resulting frames (with their derived
// sidecars and the re-marshalled metadata) into a running digest with
// DirDigest's exact framing. Both of this package's encoders are canonical —
// equal event lists encode to equal bytes — so for any directory this
// package wrote, that round-trip digest equals DirDigest(src) if and only if
// every event survived the conversion intact. A mismatch fails the
// conversion. (Foreign v1 files produced by a non-canonical encoder would
// fail verification spuriously; none exist in practice.)
func ConvertDir(src, dst string, to Format, verify bool) (*ConvertStats, error) {
	if !to.valid() {
		return nil, fmt.Errorf("trace: convert: invalid target format %v", to)
	}
	r, err := OpenDir(src)
	if err != nil {
		return nil, err
	}
	sink, err := NewDirSink(dst)
	if err != nil {
		return nil, err
	}
	stats := &ConvertStats{}
	if verify {
		if stats.SrcDigest, err = DirDigest(src); err != nil {
			return nil, fmt.Errorf("trace: convert: digesting source: %w", err)
		}
	}
	round := sha256.New()
	var events []Event
	for i := 0; i < r.NumChunks(); i++ {
		frame, err := r.load(i)
		if err != nil {
			return nil, err
		}
		srcFormat, err := ChunkFormat(frame)
		if err != nil {
			return nil, &ChunkError{Dir: src, Chunk: r.ChunkName(i), Err: err}
		}
		stats.SrcChunkBytes += int64(len(frame))
		events, err = r.ReadChunk(i, events[:0])
		if err != nil {
			return nil, err
		}
		stats.Chunks++
		stats.Events += len(events)
		chunk, ix, err := EncodeEventsFormat(events, to)
		if err != nil {
			return nil, err
		}
		stats.DstChunkBytes += int64(len(chunk))
		if err := sink.AppendChunk(i, chunk, ix); err != nil {
			return nil, err
		}
		if verify {
			back, backIx, err := EncodeEventsFormat(events, srcFormat)
			if err != nil {
				return nil, fmt.Errorf("trace: convert: re-encoding chunk %d: %w", i, err)
			}
			sidecar, err := json.Marshal(backIx)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf(chunkFilePattern, i)
			digestFile(round, sidecarPath(name), sidecar)
			digestFile(round, name, back)
		}
	}
	if err := sink.Seal(r.Meta()); err != nil {
		return nil, err
	}
	stats.DstDigest = sink.Digest()
	if verify {
		metaData, err := json.MarshalIndent(r.Meta(), "", "  ")
		if err != nil {
			return nil, err
		}
		digestFile(round, metaFileName, metaData)
		if got := hex.EncodeToString(round.Sum(nil)); got != stats.SrcDigest {
			return stats, fmt.Errorf("trace: convert: round-trip digest %s does not match source digest %s — events not preserved", got, stats.SrcDigest)
		}
		stats.Verified = true
	}
	return stats, nil
}

// DirChunkBytes totals the chunk-file bytes of a trace directory — the
// at-rest size the columnar format shrinks.
func DirChunkBytes(dir string) (int64, error) {
	r, err := OpenDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for i := 0; i < r.NumChunks(); i++ {
		fi, err := os.Stat(filepath.Join(dir, r.ChunkName(i)))
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}
