package trace

import (
	"fmt"
	"sort"

	"repro/internal/vclock"
)

// Trace is a fully loaded event trace for one run, spanning one or more
// simulated processes.
type Trace struct {
	// Events holds every event in the run, in no particular order until
	// Sort is called.
	Events []Event
	// Meta describes the run and its processes.
	Meta Meta
}

// Meta is run-level metadata stored alongside the event chunks.
type Meta struct {
	// Workload is a human-readable workload label, e.g. "td3-walker2d".
	Workload string `json:"workload"`
	// Host names the machine the trace was recorded on. rlscope-prof sets
	// it automatically (os.Hostname() unless -host overrides); distributed
	// runs give each simulated host its own name ("learner", "actor00").
	// multihost.Merge requires it and fleet queries expose it as the
	// `host` dimension. Empty on traces recorded before hosts existed.
	Host string `json:"host,omitempty"`
	// Labels are free-form key/value annotations attached at profiling
	// time (rlscope-prof -label k=v): algorithm, framework, simulator,
	// experiment id — whatever a fleet of runs later wants to filter and
	// group by. Labels live in meta.json, so they are part of the trace's
	// content digest and survive conversion and live ingest unchanged.
	Labels map[string]string `json:"labels,omitempty"`
	// Config records the profiler feature flags the run used; correction
	// needs to know which book-keeping paths were active.
	Config FeatureFlags `json:"config"`
	// Procs names each process, e.g. {0: "trainer", 1: "selfplay_worker_0"}.
	Procs map[ProcID]ProcInfo `json:"procs"`
}

// ProcInfo describes one simulated process.
type ProcInfo struct {
	Name string `json:"name"`
	// Parent is the process that forked this one (-1 for the root).
	Parent ProcID `json:"parent"`
}

// FeatureFlags records which profiler book-keeping paths were enabled during
// a run. Calibration runs workloads under differing flag subsets (paper
// Appendix C.1).
type FeatureFlags struct {
	Annotations   bool `json:"annotations"`    // operation/phase recording
	Interception  bool `json:"interception"`   // Python↔C wrappers
	CUDAIntercept bool `json:"cuda_intercept"` // librlscope CUDA hook
	CUPTI         bool `json:"cupti"`          // CUPTI activity collection
}

// Full returns the flag set with every book-keeping path enabled — a normal
// profiled run.
func Full() FeatureFlags {
	return FeatureFlags{Annotations: true, Interception: true, CUDAIntercept: true, CUPTI: true}
}

// Uninstrumented returns the flag set with all book-keeping disabled — the
// baseline run used to validate overhead correction.
func Uninstrumented() FeatureFlags { return FeatureFlags{} }

// Any reports whether any book-keeping path is enabled.
func (f FeatureFlags) Any() bool {
	return f.Annotations || f.Interception || f.CUDAIntercept || f.CUPTI
}

// String returns a compact flag summary like "annot+intercept+cuda+cupti".
func (f FeatureFlags) String() string {
	if !f.Any() {
		return "uninstrumented"
	}
	s := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if s != "" {
			s += "+"
		}
		s += name
	}
	add(f.Annotations, "annot")
	add(f.Interception, "intercept")
	add(f.CUDAIntercept, "cuda")
	add(f.CUPTI, "cupti")
	return s
}

// Sort orders events by (process, start time, end time descending) so that
// enclosing events precede the events they contain. The overlap sweep and
// overhead correction both require this order.
func (t *Trace) Sort() {
	// The analysis hot path calls Sort once per ProcEvents lookup; an O(n)
	// order check keeps repeat calls cheap without caching sortedness
	// state that direct Events mutation could silently invalidate. The
	// check is a hand-inlined neighbor scan: the closure-based
	// sort.SliceIsSorted was a top profile entry at production trace scale.
	if t.isSorted() {
		return
	}
	sort.Stable(eventSorter(t.Events))
}

// eventSorter implements Sort's order as a concrete sort.Interface, which
// avoids sort.SliceStable's per-call reflection swapper allocation.
type eventSorter []Event

func (s eventSorter) Len() int      { return len(s) }
func (s eventSorter) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s eventSorter) Less(i, j int) bool {
	a, b := &s[i], &s[j]
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.End > b.End
}

// isSorted reports whether Events is already in Sort order.
func (t *Trace) isSorted() bool {
	evs := t.Events
	for i := 1; i < len(evs); i++ {
		a, b := &evs[i-1], &evs[i]
		if a.Proc != b.Proc {
			if a.Proc > b.Proc {
				return false
			}
			continue
		}
		if a.Start != b.Start {
			if a.Start > b.Start {
				return false
			}
			continue
		}
		if a.End < b.End {
			return false
		}
	}
	return true
}

// ProcEvents returns the events belonging to one process, in Sort order.
// The returned slice aliases t.Events.
func (t *Trace) ProcEvents(p ProcID) []Event {
	t.Sort()
	lo := sort.Search(len(t.Events), func(i int) bool { return t.Events[i].Proc >= p })
	hi := sort.Search(len(t.Events), func(i int) bool { return t.Events[i].Proc > p })
	return t.Events[lo:hi]
}

// ProcIDs returns the sorted set of process IDs present in the trace.
func (t *Trace) ProcIDs() []ProcID {
	seen := map[ProcID]bool{}
	for _, e := range t.Events {
		seen[e.Proc] = true
	}
	ids := make([]ProcID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Span returns the earliest start and latest end across all events.
func (t *Trace) Span() (start, end vclock.Time) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	start, end = t.Events[0].Start, t.Events[0].End
	for _, e := range t.Events[1:] {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// Validate checks every event and the well-formedness of per-process
// nesting for CPU and operation events (events of the same kind on one
// process must nest like a call stack; they never partially overlap).
func (t *Trace) Validate() error {
	for i, e := range t.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	t.Sort()
	for _, p := range t.ProcIDs() {
		if err := checkNesting(t.ProcEvents(p), KindCPU); err != nil {
			return fmt.Errorf("proc %d CPU events: %w", p, err)
		}
		if err := checkNesting(t.ProcEvents(p), KindOp); err != nil {
			return fmt.Errorf("proc %d op events: %w", p, err)
		}
	}
	return nil
}

// checkNesting verifies stack-like nesting for events of one kind within a
// single process's sorted event list.
func checkNesting(events []Event, kind EventKind) error {
	var stack []Event
	for _, e := range events {
		if e.Kind != kind {
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].End <= e.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && e.End > stack[len(stack)-1].End {
			top := stack[len(stack)-1]
			return fmt.Errorf("event %q [%v,%v] partially overlaps %q [%v,%v]",
				e.Name, e.Start, e.End, top.Name, top.Start, top.End)
		}
		stack = append(stack, e)
	}
	return nil
}

// CountKind returns the number of events of the given kind.
func (t *Trace) CountKind(k EventKind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Merge appends the events and processes of other into t. Process IDs must
// not collide (callers allocate disjoint ID ranges).
func (t *Trace) Merge(other *Trace) error {
	if t.Meta.Procs == nil {
		t.Meta.Procs = map[ProcID]ProcInfo{}
	}
	for id, info := range other.Meta.Procs {
		if _, dup := t.Meta.Procs[id]; dup {
			return fmt.Errorf("trace: merge: duplicate process id %d", id)
		}
		t.Meta.Procs[id] = info
	}
	t.Events = append(t.Events, other.Events...)
	return nil
}
