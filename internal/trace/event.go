// Package trace defines RL-Scope's cross-stack event model and its on-disk
// trace format.
//
// A trace is a set of timestamped events collected from one training run:
//
//   - CPU events: execution in one tier of the software stack (high-level
//     "Python" driver code, simulator, ML backend, CUDA API calls).
//   - GPU events: kernel executions and memory copies on the device.
//   - Operation annotations: the user's high-level algorithmic operations
//     (e.g. "backpropagation"), arbitrarily nested (paper §3.1).
//   - Phase annotations: coarse training phases (e.g. "data_collection").
//   - Overhead markers: points where profiler book-keeping code ran; offline
//     analysis subtracts the calibrated mean cost at exactly these points
//     (paper §3.4, Appendix C).
//   - Transition markers: high-level↔native language transitions
//     (Python→Backend, Python→Simulator, Backend→CUDA), counted per
//     operation for Figures 4c/4d.
//
// Traces are stored in chunked binary files written asynchronously, off the
// training critical path (paper Appendix A.1).
package trace

import (
	"fmt"

	"repro/internal/vclock"
)

// ProcID identifies one simulated process within a run. Process 0 is the
// main training process; Minigo self-play workers get their own IDs.
type ProcID int32

// EventKind distinguishes the classes of events in a trace.
type EventKind uint8

// Event kinds.
const (
	// KindCPU is CPU-side execution in some stack tier (Category).
	KindCPU EventKind = iota + 1
	// KindGPU is device-side execution (kernel or memcpy).
	KindGPU
	// KindOp is a high-level algorithmic operation annotation.
	KindOp
	// KindPhase is a training-phase annotation.
	KindPhase
	// KindOverhead is a zero-width marker recording that profiler
	// book-keeping code ran at this instant.
	KindOverhead
	// KindTransition is a zero-width marker recording one
	// high-level↔native transition.
	KindTransition
)

// String returns the lowercase name of the kind.
func (k EventKind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindGPU:
		return "gpu"
	case KindOp:
		return "op"
	case KindPhase:
		return "phase"
	case KindOverhead:
		return "overhead"
	case KindTransition:
		return "transition"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Category is the stack tier a CPU or GPU event belongs to. The categories
// match the paper's breakdown legend: Simulator, Python, CUDA, Backend for
// CPU time, plus GPU kernels and memory copies for device time.
type Category uint8

// Categories.
const (
	CatNone Category = iota
	// CatPython is time in high-level driver code (the paper's "Python").
	CatPython
	// CatSimulator is CPU time inside simulator native libraries.
	CatSimulator
	// CatBackend is CPU time inside the ML backend's native library.
	CatBackend
	// CatCUDA is CPU time inside CUDA API calls (e.g. cudaLaunchKernel).
	CatCUDA
	// CatGPUKernel is device time executing a kernel.
	CatGPUKernel
	// CatGPUMemcpy is device time executing a memory copy.
	CatGPUMemcpy
	// CatNetwork is CPU time spent in cross-host communication: the
	// sender serializing and writing a message, or the receiver blocked
	// waiting for and deserializing one. Distributed actor/learner
	// workloads emit these around every send/recv so network-wait shows
	// up as a first-class resource next to CPU and GPU time.
	CatNetwork
)

// String returns the display name used in reports, matching the paper's
// figure legends.
func (c Category) String() string {
	switch c {
	case CatNone:
		return "none"
	case CatPython:
		return "Python"
	case CatSimulator:
		return "Simulator"
	case CatBackend:
		return "Backend"
	case CatCUDA:
		return "CUDA"
	case CatGPUKernel:
		return "GPU kernel"
	case CatGPUMemcpy:
		return "GPU memcpy"
	case CatNetwork:
		return "Network"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// IsCPU reports whether the category is a CPU-side tier.
func (c Category) IsCPU() bool {
	switch c {
	case CatPython, CatSimulator, CatBackend, CatCUDA, CatNetwork:
		return true
	}
	return false
}

// IsGPU reports whether the category is device-side.
func (c Category) IsGPU() bool { return c == CatGPUKernel || c == CatGPUMemcpy }

// CPURank orders CPU categories by stack depth for innermost-wins
// attribution during the overlap sweep. In a single-threaded process the
// tiers nest strictly: Python calls into Simulator or Backend, and Backend
// calls into the CUDA API. Higher rank means deeper (wins attribution).
func (c Category) CPURank() int {
	switch c {
	case CatPython:
		return 1
	case CatSimulator, CatBackend, CatNetwork:
		return 2
	case CatCUDA:
		return 3
	default:
		return 0
	}
}

// OverheadKind classifies profiler book-keeping markers. Each kind is
// calibrated separately (paper Appendix C.1/C.2).
type OverheadKind uint8

// Overhead kinds.
const (
	OverheadNone OverheadKind = iota
	// OverheadAnnotation is the cost of recording an operation
	// start/end timestamp pair.
	OverheadAnnotation
	// OverheadInterception is the cost of intercepting one
	// high-level↔native transition.
	OverheadInterception
	// OverheadCUDAIntercept is the cost of librlscope's CUDA API hook
	// around one CUDA call.
	OverheadCUDAIntercept
	// OverheadCUPTI is inflation added *inside* the closed-source CUDA
	// library when CUPTI profiling is enabled. Unlike the other kinds its
	// magnitude depends on which CUDA API was called, so it is calibrated
	// with difference-of-average rather than delta calibration.
	OverheadCUPTI
)

// String returns the name used in calibration reports.
func (k OverheadKind) String() string {
	switch k {
	case OverheadNone:
		return "none"
	case OverheadAnnotation:
		return "Python annotation"
	case OverheadInterception:
		return "Python interception"
	case OverheadCUDAIntercept:
		return "CUDA API interception"
	case OverheadCUPTI:
		return "CUPTI"
	default:
		return fmt.Sprintf("OverheadKind(%d)", uint8(k))
	}
}

// Event is one record in a trace. Point events (markers) have Start == End.
type Event struct {
	Kind     EventKind
	Cat      Category     // for KindCPU / KindGPU
	Overhead OverheadKind // for KindOverhead
	Proc     ProcID
	Start    vclock.Time
	End      vclock.Time
	// Name is the operation name (KindOp), phase name (KindPhase), kernel
	// or API name (KindGPU, KindOverhead with CUPTI), or the transition
	// label such as "Python→Backend" (KindTransition).
	Name string
}

// Duration returns the event's extent in virtual time.
func (e Event) Duration() vclock.Duration { return e.End.Sub(e.Start) }

// IsPoint reports whether the event is a zero-width marker.
func (e Event) IsPoint() bool { return e.Start == e.End }

// Validate checks the internal consistency of a single event.
func (e Event) Validate() error {
	if e.End < e.Start {
		return fmt.Errorf("trace: event %q ends (%v) before it starts (%v)", e.Name, e.End, e.Start)
	}
	switch e.Kind {
	case KindCPU:
		if !e.Cat.IsCPU() {
			return fmt.Errorf("trace: CPU event %q has non-CPU category %v", e.Name, e.Cat)
		}
	case KindGPU:
		if !e.Cat.IsGPU() {
			return fmt.Errorf("trace: GPU event %q has non-GPU category %v", e.Name, e.Cat)
		}
	case KindOp, KindPhase:
		if e.Name == "" {
			return fmt.Errorf("trace: %v event with empty name", e.Kind)
		}
	case KindOverhead:
		if e.Overhead == OverheadNone {
			return fmt.Errorf("trace: overhead event with no overhead kind")
		}
	case KindTransition:
		if e.Name == "" {
			return fmt.Errorf("trace: transition event with empty label")
		}
	default:
		return fmt.Errorf("trace: unknown event kind %d", uint8(e.Kind))
	}
	return nil
}

// Transition labels recorded by the interception layer. The counts of these
// markers per operation reproduce Figures 4c and 4d.
const (
	TransPythonToBackend   = "Python→Backend"
	TransPythonToSimulator = "Python→Simulator"
	TransBackendToCUDA     = "Backend→CUDA"
)
