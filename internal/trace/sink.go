package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Sink is the destination of a chunked trace write: a sequence of encoded
// chunks (with their sidecar indexes) finalized by run metadata. DirSink
// lands chunks in a local directory — the layout Writer has always
// produced — while a network sink (see the client package) streams the
// same frames to a remote rlscope-serve trace store, so a workload can
// profile straight into shared infrastructure without a local trace dir.
//
// Chunks carry explicit sequence numbers starting at 0. A Sink must apply
// chunk seq before chunk seq+1 and must reject gaps; whether it tolerates
// replays of already-applied chunks (idempotent retries) is up to the
// implementation — DirSink does, a requirement for at-least-once delivery
// over a network.
type Sink interface {
	// AppendChunk applies the encoded chunk with the given sequence
	// number. index is the chunk's sidecar index, always derived from the
	// same events the chunk encodes.
	AppendChunk(seq int, chunk []byte, index *ChunkIndex) error
	// Seal finalizes the trace with its run metadata. No appends may
	// follow a successful Seal.
	Seal(meta Meta) error
}

// ErrSinkSealed is returned by appends to (or a second Seal of) an
// already-sealed sink.
var ErrSinkSealed = errors.New("trace: sink already sealed")

// SeqError reports an out-of-order chunk append: Seq arrived while the
// sink still expects Next. Retrying an already-applied sequence is not a
// SeqError (that path is idempotent); only a gap — a chunk from the future
// — is.
type SeqError struct {
	// Seq is the offered sequence number; Next the one the sink expects.
	Seq, Next int
}

func (e *SeqError) Error() string {
	return fmt.Sprintf("trace: chunk seq %d out of order (next expected %d)", e.Seq, e.Next)
}

// ConflictError reports a replayed chunk whose content differs from the
// bytes originally applied under the same sequence number — a retry must
// resend the identical frame, anything else is a protocol violation.
type ConflictError struct {
	Seq int
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("trace: chunk seq %d replayed with different content", e.Seq)
}

// chunkRecord remembers what was applied under one sequence number, so
// replays can be verified byte-for-byte without re-reading the files.
type chunkRecord struct {
	chunkSum   [sha256.Size]byte
	sidecarSum [sha256.Size]byte
}

// DirSink lands a chunked trace in a directory, one .rlstrace chunk plus
// one .rlsidx sidecar per append and a meta.json at Seal — exactly the
// files, names, and bytes Writer produces, so a trace streamed through a
// DirSink is byte-identical to one written locally by the same workload.
//
// DirSink is the server side of live trace ingest: appends are sequence-
// checked (a gap is a *SeqError), idempotent (replaying an applied
// sequence with identical content is a no-op, with different content a
// *ConflictError), and folded into a running content digest with the same
// framing as DirDigest — so the digest of the growing directory is always
// available in O(1), and after Seal it equals DirDigest(dir) exactly.
//
// DirSink methods are safe for concurrent use.
type DirSink struct {
	dir string

	mu      sync.Mutex
	next    int // next expected sequence number
	applied []chunkRecord
	digest  hash.Hash // running DirDigest-framed hash over sidecar+chunk pairs
	sealed  bool
	final   string // digest fixed at Seal
}

// NewDirSink creates dir (if needed) and returns a sink writing a fresh
// trace into it. The directory must not already contain trace files: a
// server-owned trace store never overwrites, it rejects (callers wanting
// Writer's historical overwrite semantics go through NewWriter, which
// clears stale trace files first).
func NewDirSink(dir string) (*DirSink, error) {
	return newDirSink(dir, false)
}

func newDirSink(dir string, overwrite bool) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating trace dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: reading trace dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if name != metaFileName && !strings.HasSuffix(name, chunkSuffix) && !strings.HasSuffix(name, sidecarSuffix) {
			continue
		}
		if !overwrite {
			return nil, fmt.Errorf("trace: dir %s already contains trace file %s", dir, name)
		}
		// Overwrite mode: clear stale trace files so a shorter rewrite
		// cannot leave higher-numbered chunks of a previous trace behind.
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("trace: clearing stale trace file: %w", err)
		}
	}
	return &DirSink{dir: dir, digest: sha256.New()}, nil
}

// Dir returns the directory the sink writes into.
func (s *DirSink) Dir() string { return s.dir }

// AppendChunk implements Sink: it marshals the index to its sidecar form
// and applies both frames. Replays of an already-applied sequence are
// treated as successful no-ops when the content matches.
func (s *DirSink) AppendChunk(seq int, chunk []byte, index *ChunkIndex) error {
	sidecar, err := json.Marshal(index)
	if err != nil {
		return fmt.Errorf("trace: encoding sidecar index: %w", err)
	}
	_, err = s.Append(seq, chunk, sidecar)
	return err
}

// Append applies one encoded chunk and its sidecar bytes under the given
// sequence number. It reports dup = true (and no error) when the sequence
// was already applied with identical content — the idempotent-retry path.
// A gap in the sequence is a *SeqError, a content-diverging replay a
// *ConflictError, and an append after Seal is ErrSinkSealed.
func (s *DirSink) Append(seq int, chunk, sidecar []byte) (dup bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return false, ErrSinkSealed
	}
	if seq < 0 || seq > s.next {
		return false, &SeqError{Seq: seq, Next: s.next}
	}
	if seq < s.next {
		rec := s.applied[seq]
		if sha256.Sum256(chunk) != rec.chunkSum || sha256.Sum256(sidecar) != rec.sidecarSum {
			return false, &ConflictError{Seq: seq}
		}
		return true, nil
	}
	chunkName := fmt.Sprintf(chunkFilePattern, seq)
	if err := os.WriteFile(filepath.Join(s.dir, chunkName), chunk, 0o644); err != nil {
		return false, fmt.Errorf("trace: writing chunk: %w", err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, sidecarPath(chunkName)), sidecar, 0o644); err != nil {
		return false, fmt.Errorf("trace: writing sidecar: %w", err)
	}
	// Fold the pair into the running digest in DirDigest's sorted-name
	// order: for equal sequence numbers the sidecar name sorts before the
	// chunk name (".rlsidx" < ".rlstrace"), every chunk pair sorts before
	// any later pair, and "meta.json" sorts after all of them — so
	// appending frames in arrival order reproduces the sorted walk.
	digestFile(s.digest, sidecarPath(chunkName), sidecar)
	digestFile(s.digest, chunkName, chunk)
	s.applied = append(s.applied, chunkRecord{
		chunkSum:   sha256.Sum256(chunk),
		sidecarSum: sha256.Sum256(sidecar),
	})
	s.next++
	return false, nil
}

// digestFile frames one file into h exactly as DirDigest does.
func digestFile(h hash.Hash, name string, content []byte) {
	fmt.Fprintf(h, "%s\x00%d\x00", name, len(content))
	h.Write(content)
}

// Seal writes the run metadata and fixes the final digest. Sealing an
// already-sealed sink is ErrSinkSealed; callers wanting idempotent seals
// compare metadata themselves before retrying.
func (s *DirSink) Seal(meta Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return ErrSinkSealed
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding metadata: %w", err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, metaFileName), data, 0o644); err != nil {
		return fmt.Errorf("trace: writing metadata: %w", err)
	}
	digestFile(s.digest, metaFileName, data)
	s.final = hex.EncodeToString(s.digest.Sum(nil))
	s.sealed = true
	return nil
}

// Chunks reports how many chunks have been applied.
func (s *DirSink) Chunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Sealed reports whether Seal has completed.
func (s *DirSink) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// Digest returns the content digest of the directory as it stands: the
// same quantity DirDigest(dir) computes, maintained incrementally so a
// growing trace can be content-addressed without rehashing the directory
// on every append. After Seal it is the trace's final digest. An empty
// sink (no chunks, not sealed) has no content to address and returns "".
func (s *DirSink) Digest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return s.final
	}
	if s.next == 0 {
		return ""
	}
	// Snapshot the running hash via its binary state so Sum never
	// perturbs the accumulating instance across appends.
	m, ok := s.digest.(encoding.BinaryMarshaler)
	if !ok {
		return "" // cannot happen: sha256 implements BinaryMarshaler
	}
	state, err := m.MarshalBinary()
	if err != nil {
		return ""
	}
	clone := sha256.New()
	if err := clone.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		return ""
	}
	return hex.EncodeToString(clone.Sum(nil))
}

// EncodeEvents serializes events into one v1 chunk frame plus its sidecar
// index — the exact pair a Writer flush produces — for callers that feed a
// Sink directly (the network streaming path encodes on the client and
// ships frames).
func EncodeEvents(events []Event) (chunk []byte, index *ChunkIndex, err error) {
	return EncodeEventsFormat(events, FormatV1)
}

// EncodeEventsFormat is EncodeEvents with an explicit chunk format. The
// sidecar index is format-independent (its Version field is the sidecar
// schema version, not the chunk's), so sinks — local directories, the
// network ingest path — handle either format without caring which.
func EncodeEventsFormat(events []Event, f Format) (chunk []byte, index *ChunkIndex, err error) {
	var buf bytes.Buffer
	switch f {
	case FormatV2:
		err = EncodeChunkV2(&buf, events)
	default:
		err = EncodeChunk(&buf, events)
	}
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), BuildChunkIndex(events, int64(buf.Len())), nil
}
