package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirDigest computes a content hash identifying a chunked trace directory:
// SHA-256 over the sorted set of files that define the trace — the run
// metadata, every chunk file, and every sidecar index — each framed by its
// name and size so file boundaries cannot alias. Two directories hold the
// same trace exactly when their digests match, whatever their paths, and
// any rewrite of a chunk, sidecar, or metadata changes the digest.
//
// The digest is the cache key rlscope-serve addresses analysis reports by:
// a report cached under one digest can never be served for a directory
// whose bytes have since changed. Files other than the trace's own
// (temporaries, editor droppings) are ignored.
func DirDigest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("trace: digesting trace dir: %w", err)
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if name == metaFileName ||
			strings.HasSuffix(name, chunkSuffix) ||
			strings.HasSuffix(name, sidecarSuffix) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("trace: digesting trace dir %s: no trace files", dir)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return "", fmt.Errorf("trace: digesting trace dir: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return "", fmt.Errorf("trace: digesting trace dir: %w", err)
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, fi.Size())
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("trace: digesting trace dir: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
