package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace chunk format (paper Appendix A.1 uses protobuf; this repo is
// stdlib-only so we use a compact hand-rolled encoding):
//
//	magic   "RLSC"          (4 bytes)
//	version uvarint         (currently 1)
//	count   uvarint         (number of events)
//	events  count records
//
// Each event record:
//
//	kind     byte
//	cat      byte
//	overhead byte
//	proc     uvarint
//	start    varint (delta from previous event's start; first is absolute)
//	dur      uvarint (End-Start)
//	name     uvarint string-table reference
//
// The string table is built incrementally per chunk: a reference equal to the
// current table size introduces a new string (uvarint length + bytes);
// smaller references reuse an earlier string. Operation and kernel names
// repeat heavily, so this keeps chunks small.

const (
	chunkMagic   = "RLSC"
	chunkVersion = 1
)

// EncodeChunk writes events as one binary chunk to w.
func EncodeChunk(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(chunkMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(chunkVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(events))); err != nil {
		return err
	}
	strings := map[string]uint64{}
	var prevStart int64
	for _, e := range events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Cat)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Overhead)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.Proc)); err != nil {
			return err
		}
		if err := putVarint(int64(e.Start) - prevStart); err != nil {
			return err
		}
		prevStart = int64(e.Start)
		if e.End < e.Start {
			return fmt.Errorf("trace: encode: event %q has negative duration", e.Name)
		}
		if err := putUvarint(uint64(e.End - e.Start)); err != nil {
			return err
		}
		ref, ok := strings[e.Name]
		if !ok {
			ref = uint64(len(strings))
			strings[e.Name] = ref
			if err := putUvarint(ref); err != nil {
				return err
			}
			if err := putUvarint(uint64(len(e.Name))); err != nil {
				return err
			}
			if _, err := bw.WriteString(e.Name); err != nil {
				return err
			}
		} else if err := putUvarint(ref); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeChunk reads one binary chunk from r, appending its events to dst and
// returning the extended slice.
func DecodeChunk(r io.Reader, dst []Event) ([]Event, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(chunkMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return dst, fmt.Errorf("trace: decode: reading magic: %w", err)
	}
	if string(magic) != chunkMagic {
		return dst, fmt.Errorf("trace: decode: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return dst, fmt.Errorf("trace: decode: reading version: %w", err)
	}
	if version != chunkVersion {
		return dst, fmt.Errorf("trace: decode: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return dst, fmt.Errorf("trace: decode: reading count: %w", err)
	}
	var table []string
	var prevStart int64
	for i := uint64(0); i < count; i++ {
		var e Event
		kind, err := br.ReadByte()
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d kind: %w", i, err)
		}
		e.Kind = EventKind(kind)
		cat, err := br.ReadByte()
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d cat: %w", i, err)
		}
		e.Cat = Category(cat)
		ov, err := br.ReadByte()
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d overhead: %w", i, err)
		}
		e.Overhead = OverheadKind(ov)
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d proc: %w", i, err)
		}
		e.Proc = ProcID(proc)
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d start: %w", i, err)
		}
		prevStart += delta
		e.Start = timeFromInt64(prevStart)
		dur, err := binary.ReadUvarint(br)
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d dur: %w", i, err)
		}
		e.End = e.Start.Add(durFromUint64(dur))
		// A duration past MaxInt64, or one that overflows past MaxTime,
		// wraps to End < Start; valid encoders never emit either.
		if e.End < e.Start {
			return dst, fmt.Errorf("trace: decode: event %d duration %d overflows", i, dur)
		}
		ref, err := binary.ReadUvarint(br)
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d name ref: %w", i, err)
		}
		switch {
		case ref < uint64(len(table)):
			e.Name = table[ref]
		case ref == uint64(len(table)):
			slen, err := binary.ReadUvarint(br)
			if err != nil {
				return dst, fmt.Errorf("trace: decode: event %d name len: %w", i, err)
			}
			const maxName = 1 << 16
			if slen > maxName {
				return dst, fmt.Errorf("trace: decode: event %d name length %d exceeds limit", i, slen)
			}
			buf := make([]byte, slen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return dst, fmt.Errorf("trace: decode: event %d name bytes: %w", i, err)
			}
			e.Name = string(buf)
			table = append(table, e.Name)
		default:
			return dst, fmt.Errorf("trace: decode: event %d references string %d beyond table size %d", i, ref, len(table))
		}
		dst = append(dst, e)
	}
	return dst, nil
}
