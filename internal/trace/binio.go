package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Binary trace chunk formats (paper Appendix A.1 uses protobuf; this repo is
// stdlib-only so we use compact hand-rolled encodings). Two versions exist;
// both start with the same magic, and the version field after it selects the
// decoder, so a directory may mix them freely.
//
// Version 1 (row-oriented):
//
//	magic   "RLSC"          (4 bytes)
//	version uvarint         (1)
//	count   uvarint         (number of events)
//	events  count records
//
// Each event record:
//
//	kind     byte
//	cat      byte
//	overhead byte
//	proc     uvarint
//	start    varint (delta from previous event's start; first is absolute)
//	dur      uvarint (End-Start)
//	name     uvarint string-table reference
//
// The string table is built incrementally per chunk: a reference equal to the
// current table size introduces a new string (uvarint length + bytes);
// smaller references reuse an earlier string. Operation and kernel names
// repeat heavily, so this keeps chunks small.
//
// Version 2 (columnar) is documented in columnar.go.

const (
	chunkMagic   = "RLSC"
	chunkVersion = 1
)

// EncodeChunk writes events as one v1 binary chunk to w.
func EncodeChunk(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(chunkMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(chunkVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(events))); err != nil {
		return err
	}
	strings := map[string]uint64{}
	var prevStart int64
	for _, e := range events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Cat)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Overhead)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.Proc)); err != nil {
			return err
		}
		if err := putVarint(int64(e.Start) - prevStart); err != nil {
			return err
		}
		prevStart = int64(e.Start)
		if e.End < e.Start {
			return fmt.Errorf("trace: encode: event %q has negative duration", e.Name)
		}
		if err := putUvarint(uint64(e.End - e.Start)); err != nil {
			return err
		}
		ref, ok := strings[e.Name]
		if !ok {
			ref = uint64(len(strings))
			strings[e.Name] = ref
			if err := putUvarint(ref); err != nil {
				return err
			}
			if err := putUvarint(uint64(len(e.Name))); err != nil {
				return err
			}
			if _, err := bw.WriteString(e.Name); err != nil {
				return err
			}
		} else if err := putUvarint(ref); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// v1Decoder holds the reusable scratch of one v1 decode: the incremental
// string table. Pooled so the compat path stops churning the allocator.
type v1Decoder struct {
	table []string
}

var v1DecPool = sync.Pool{New: func() any { return &v1Decoder{} }}

// decodeV1 decodes the body of a v1 chunk (cursor positioned after the
// version field), appending events to dst. Table strings resolve through in
// when non-nil, so repeated names across chunks share storage.
func (d *v1Decoder) decodeV1(cur *colCursor, dst []Event, in *Interner) ([]Event, error) {
	count, err := cur.uvarint("count")
	if err != nil {
		return dst, err
	}
	table := d.table[:0]
	defer func() { d.table = table }()
	var prevStart int64
	for i := uint64(0); i < count; i++ {
		var e Event
		hdr, err := cur.take(3, "event header")
		if err != nil {
			return dst, err
		}
		e.Kind = EventKind(hdr[0])
		e.Cat = Category(hdr[1])
		e.Overhead = OverheadKind(hdr[2])
		proc, err := cur.uvarint("proc")
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d proc: %w", i, err)
		}
		e.Proc = ProcID(proc)
		delta, err := cur.varint("start")
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d start: %w", i, err)
		}
		prevStart += delta
		e.Start = timeFromInt64(prevStart)
		dur, err := cur.uvarint("dur")
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d dur: %w", i, err)
		}
		e.End = e.Start.Add(durFromUint64(dur))
		// A duration past MaxInt64, or one that overflows past MaxTime,
		// wraps to End < Start; valid encoders never emit either.
		if e.End < e.Start {
			return dst, fmt.Errorf("trace: decode: event %d duration %d overflows", i, dur)
		}
		ref, err := cur.uvarint("name ref")
		if err != nil {
			return dst, fmt.Errorf("trace: decode: event %d name ref: %w", i, err)
		}
		switch {
		case ref < uint64(len(table)):
			e.Name = table[ref]
		case ref == uint64(len(table)):
			slen, err := cur.uvarint("name len")
			if err != nil {
				return dst, fmt.Errorf("trace: decode: event %d name len: %w", i, err)
			}
			if slen > maxNameLen {
				return dst, fmt.Errorf("trace: decode: event %d name length %d exceeds limit", i, slen)
			}
			buf, err := cur.take(int(slen), "name bytes")
			if err != nil {
				return dst, fmt.Errorf("trace: decode: event %d name bytes: %w", i, err)
			}
			if in != nil {
				e.Name = in.Intern(buf)
			} else {
				e.Name = string(buf)
			}
			table = append(table, e.Name)
		default:
			return dst, fmt.Errorf("trace: decode: event %d references string %d beyond table size %d", i, ref, len(table))
		}
		dst = append(dst, e)
	}
	return dst, nil
}

// sniffVersion validates the magic and reads the version field, returning a
// cursor positioned at the body.
func sniffVersion(data []byte) (version uint64, cur colCursor, err error) {
	if len(data) < len(chunkMagic) {
		return 0, cur, fmt.Errorf("trace: decode: reading magic: %w", io.ErrUnexpectedEOF)
	}
	if string(data[:len(chunkMagic)]) != chunkMagic {
		return 0, cur, fmt.Errorf("trace: decode: bad magic %q", data[:len(chunkMagic)])
	}
	cur = colCursor{b: data, off: len(chunkMagic)}
	version, err = cur.uvarint("version")
	if err != nil {
		return 0, cur, err
	}
	return version, cur, nil
}

// ChunkFormat sniffs the format of one encoded chunk frame.
func ChunkFormat(data []byte) (Format, error) {
	version, _, err := sniffVersion(data)
	if err != nil {
		return 0, err
	}
	f := Format(version)
	if !f.valid() {
		return 0, fmt.Errorf("trace: decode: unsupported version %d", version)
	}
	return f, nil
}

// decodeChunkBytes decodes one chunk frame of either version, appending its
// events to dst. cc, when non-nil, is the reusable column scratch for v2
// frames; names resolve through in when non-nil.
func decodeChunkBytes(data []byte, dst []Event, in *Interner, cc *ColumnChunk) ([]Event, error) {
	version, cur, err := sniffVersion(data)
	if err != nil {
		return dst, err
	}
	switch version {
	case chunkVersion:
		d := v1DecPool.Get().(*v1Decoder)
		dst, err = d.decodeV1(&cur, dst, in)
		v1DecPool.Put(d)
		return dst, err
	case chunkVersion2:
		if cc == nil {
			cc = &ColumnChunk{}
		}
		if err := cc.Parse(data, in); err != nil {
			return dst, err
		}
		return cc.AppendEvents(dst)
	default:
		return dst, fmt.Errorf("trace: decode: unsupported version %d", version)
	}
}

// DecodeChunkBytes decodes one encoded chunk frame — v1 or v2, detected from
// the frame's version field — appending its events to dst and returning the
// extended slice. It never aliases data: decoded names are fresh (or
// interner-shared) strings.
func DecodeChunkBytes(data []byte, dst []Event) ([]Event, error) {
	return decodeChunkBytes(data, dst, nil, nil)
}

// readBufPool recycles whole-frame read buffers for DecodeChunk.
var readBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// DecodeChunk reads one binary chunk from r — either format, detected from
// the version field — appending its events to dst and returning the extended
// slice.
func DecodeChunk(r io.Reader, dst []Event) ([]Event, error) {
	bp := readBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	var err error
	buf, err = readAllInto(buf, r)
	if err != nil {
		*bp = buf
		readBufPool.Put(bp)
		return dst, fmt.Errorf("trace: decode: reading chunk: %w", err)
	}
	dst, err = decodeChunkBytes(buf, dst, nil, nil)
	*bp = buf
	readBufPool.Put(bp)
	return dst, err
}

// readAllInto reads r to EOF into buf's spare capacity, growing as needed.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
