package trace

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Kind: KindCPU, Cat: CatPython, Proc: 0, Start: 0, End: 100, Name: "python"},
		{Kind: KindCPU, Cat: CatCUDA, Proc: 0, Start: 10, End: 20, Name: "cudaLaunchKernel"},
		{Kind: KindGPU, Cat: CatGPUKernel, Proc: 0, Start: 15, End: 40, Name: "matmul"},
		{Kind: KindGPU, Cat: CatGPUKernel, Proc: 0, Start: 45, End: 55, Name: "matmul"},
		{Kind: KindGPU, Cat: CatGPUKernel, Proc: 1, Start: 0, End: 5, Name: "bias_add"},
		{Kind: KindTransition, Proc: 0, Start: 9, End: 9, Name: TransBackendToCUDA},
		{Kind: KindOverhead, Overhead: OverheadCUPTI, Proc: 0, Start: 11, End: 11, Name: "cudaLaunchKernel"},
	}}
	s := Summarize(tr)
	if s.Events != 7 || s.Procs != 2 {
		t.Fatalf("events=%d procs=%d", s.Events, s.Procs)
	}
	if s.Span != 100 {
		t.Fatalf("span = %v", s.Span)
	}
	if s.ByKind[KindGPU] != 3 || s.ByKind[KindCPU] != 2 {
		t.Fatalf("ByKind = %v", s.ByKind)
	}
	if got := s.ByCategory[CatGPUKernel]; got.Events != 3 || got.Total != 40 {
		t.Fatalf("gpu kernel stats = %+v", got)
	}
	if s.Transitions[TransBackendToCUDA] != 1 {
		t.Fatalf("transitions = %v", s.Transitions)
	}
	if s.Overheads[OverheadCUPTI] != 1 {
		t.Fatalf("overheads = %v", s.Overheads)
	}
	if len(s.TopKernels) != 2 || s.TopKernels[0].Name != "matmul" || s.TopKernels[0].Total != 35 {
		t.Fatalf("top kernels = %+v", s.TopKernels)
	}
	out := s.String()
	for _, want := range []string{"matmul", "GPU kernel", "2 process"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary text missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&Trace{})
	if s.Events != 0 || s.Span != 0 || len(s.TopKernels) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeTopKernelCap(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 25; i++ {
		tr.Events = append(tr.Events, Event{
			Kind: KindGPU, Cat: CatGPUKernel,
			Start: 0, End: 10, Name: string(rune('a' + i)),
		})
	}
	if got := len(Summarize(tr).TopKernels); got != 10 {
		t.Fatalf("top kernels = %d, want capped at 10", got)
	}
}
