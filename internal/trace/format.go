package trace

import "fmt"

// Format selects the on-disk chunk encoding a Writer (or converter) emits.
// Decoders never need one: every chunk frame carries its version after the
// magic, and DecodeChunk / Reader auto-detect it per chunk, so directories
// may freely mix formats.
type Format int

const (
	// FormatV1 is the original row-oriented encoding (one record per
	// event, incremental per-chunk string table). The default: every
	// pre-existing trace dir is v1, and the v1 writer path must keep
	// producing byte-identical files.
	FormatV1 Format = 1
	// FormatV2 is the columnar encoding: struct-of-arrays columns with
	// run-length-encoded kind/category/overhead/proc fields, delta+varint
	// timestamps, and a per-chunk first-appearance name dictionary. Smaller
	// at rest and decodable without materializing Event records.
	FormatV2 Format = 2
)

// String returns the flag spelling ("v1", "v2").
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses the flag spelling accepted by rlscope-prof -format and
// rlscope-convert -to.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "1":
		return FormatV1, nil
	case "v2", "2":
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want v1 or v2)", s)
	}
}

// valid reports whether f names an encodable format.
func (f Format) valid() bool { return f == FormatV1 || f == FormatV2 }
