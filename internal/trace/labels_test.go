package trace

import (
	"reflect"
	"testing"

	"repro/internal/vclock"
)

// labeledTestDir writes a small trace directory whose metadata carries
// labels.
func labeledTestDir(t *testing.T, labels map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	w, err := NewWriter(dir, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ts := vclock.Time(i * 100)
		w.Append(Event{Proc: 0, Kind: KindCPU, Cat: CatPython, Start: ts, End: ts + 50, Name: "step"})
	}
	meta := Meta{
		Workload: "label-test",
		Labels:   labels,
		Procs:    map[ProcID]ProcInfo{0: {Name: "trainer", Parent: -1}},
	}
	if err := w.Close(meta); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLabelsRoundTrip: labels written at Close come back from OpenDir.
func TestLabelsRoundTrip(t *testing.T) {
	labels := map[string]string{"algo": "ppo", "framework": "tf", "experiment": "fig9"}
	dir := labeledTestDir(t, labels)
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta().Labels; !reflect.DeepEqual(got, labels) {
		t.Fatalf("labels %v, want %v", got, labels)
	}
	// A label-less trace reads back with no labels key at all.
	bare, err := OpenDir(labeledTestDir(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := bare.Meta().Labels; len(got) != 0 {
		t.Fatalf("unlabeled trace has labels %v", got)
	}
}

// TestLabelsAffectDigest: labels live in meta.json, so they are part of
// the trace's content address — two otherwise-identical runs with
// different labels are different content to the report store.
func TestLabelsAffectDigest(t *testing.T) {
	d1, err := DirDigest(labeledTestDir(t, map[string]string{"algo": "ppo"}))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DirDigest(labeledTestDir(t, map[string]string{"algo": "dqn"}))
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("different labels digest identically")
	}
	d3, err := DirDigest(labeledTestDir(t, map[string]string{"algo": "ppo"}))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d3 {
		t.Fatal("same labels digest differently")
	}
}

// TestConvertDirPreservesLabels: format conversion rewrites chunks, never
// metadata — labels survive v1 -> v2 unchanged.
func TestConvertDirPreservesLabels(t *testing.T) {
	labels := map[string]string{"algo": "ppo", "seed": "42"}
	src := labeledTestDir(t, labels)
	dst := t.TempDir()
	if _, err := ConvertDir(src, dst, FormatV2, true); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta().Labels; !reflect.DeepEqual(got, labels) {
		t.Fatalf("converted labels %v, want %v", got, labels)
	}
}
