package trace

// Source is one run's worth of events offered to an analysis engine. The
// three standard sources — FromTrace, FromReader, FromDir — cover the
// materialized and streaming ingestion paths; custom implementations can
// resolve events from anywhere (a remote fetch, a synthetic generator) as
// long as Open lands on one of the two shapes.
type Source interface {
	// Open resolves the source for one analysis pass. Exactly one of the
	// returned trace and reader is non-nil: a trace means the events are
	// already materialized in memory, a reader means they stream from
	// chunked storage. Open may be called more than once per analysis — a
	// corrected streaming run makes a correction pre-pass and an analysis
	// pass — and every call must resolve to the same events.
	Open() (*Trace, *Reader, error)
}

// traceSource offers an in-memory trace.
type traceSource struct{ t *Trace }

func (s traceSource) Open() (*Trace, *Reader, error) { return s.t, nil, nil }

// FromTrace returns a Source over an already-materialized trace.
func FromTrace(t *Trace) Source { return traceSource{t} }

// readerSource offers a chunked trace directory through an open Reader.
type readerSource struct{ r *Reader }

func (s readerSource) Open() (*Trace, *Reader, error) { return nil, s.r, nil }

// FromReader returns a streaming Source over an open chunked-trace reader.
// Reader methods are not safe for concurrent use, so neither is analyzing
// the same FromReader source from multiple goroutines at once.
func FromReader(r *Reader) Source { return readerSource{r} }

// dirSource opens a chunked trace directory lazily on first use.
type dirSource struct {
	dir string
	r   *Reader // cached so repeated Opens resolve to one Reader
}

func (s *dirSource) Open() (*Trace, *Reader, error) {
	if s.r == nil {
		r, err := OpenDir(s.dir)
		if err != nil {
			return nil, nil, err
		}
		s.r = r
	}
	return nil, s.r, nil
}

// FromDir returns a streaming Source over a chunked trace directory written
// by Writer (Profiler.WriteTo or rlscope-prof). The directory is opened on
// first use; open errors surface from the analysis that triggers them.
func FromDir(dir string) Source { return &dirSource{dir: dir} }
