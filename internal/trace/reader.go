package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/vclock"
)

// sidecar file naming: chunk_000003.rlstrace -> chunk_000003.rlsidx
const (
	chunkSuffix   = ".rlstrace"
	sidecarSuffix = ".rlsidx"
)

// ChunkError identifies which chunk file of a trace directory failed to
// decode (truncated, corrupt, or unreadable). Callers can unwrap it with
// errors.As to recover the offending file.
type ChunkError struct {
	// Dir is the trace directory.
	Dir string
	// Chunk is the chunk file name within Dir.
	Chunk string
	// Err is the underlying decode or I/O error.
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("trace: chunk %s in %s: %v", e.Chunk, e.Dir, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// ProcSpan summarizes one process's events within a single chunk.
type ProcSpan struct {
	// MinStart and MaxEnd bound the extents of the process's events in
	// the chunk (for point events End == Start).
	MinStart vclock.Time `json:"min_start"`
	MaxEnd   vclock.Time `json:"max_end"`
	// Events counts the process's events in the chunk.
	Events int `json:"events"`
}

// ChunkIndex is the per-chunk sidecar the Writer emits at flush time: enough
// metadata for a streaming reader to plan an analysis — which processes a
// chunk touches, over what time extent, and the phase annotations it carries
// (phase events are few, so copying them into the sidecar lets the planner
// derive the per-process window partition without decoding any chunk).
type ChunkIndex struct {
	Version int `json:"version"`
	// Events is the total event count of the chunk.
	Events int `json:"events"`
	// Bytes is the encoded size of the chunk file.
	Bytes int64 `json:"bytes"`
	// Procs maps each process present in the chunk to its span.
	Procs map[ProcID]ProcSpan `json:"procs"`
	// Phases holds copies of the chunk's KindPhase events.
	Phases []Event `json:"phases,omitempty"`
}

// BuildChunkIndex derives the sidecar index for one chunk's events.
// encodedBytes records the serialized chunk size.
func BuildChunkIndex(events []Event, encodedBytes int64) *ChunkIndex {
	ix := &ChunkIndex{
		Version: chunkVersion,
		Events:  len(events),
		Bytes:   encodedBytes,
		Procs:   map[ProcID]ProcSpan{},
	}
	for _, e := range events {
		sp, ok := ix.Procs[e.Proc]
		if !ok {
			sp = ProcSpan{MinStart: e.Start, MaxEnd: e.End}
		}
		if e.Start < sp.MinStart {
			sp.MinStart = e.Start
		}
		if e.End > sp.MaxEnd {
			sp.MaxEnd = e.End
		}
		sp.Events++
		ix.Procs[e.Proc] = sp
		if e.Kind == KindPhase {
			ix.Phases = append(ix.Phases, e)
		}
	}
	return ix
}

func sidecarPath(chunkPath string) string {
	return strings.TrimSuffix(chunkPath, chunkSuffix) + sidecarSuffix
}

// Reader iterates a chunked trace directory lazily: chunks are decoded one
// at a time into a caller-supplied buffer, and per-chunk sidecar indexes are
// served without decoding events, so an analysis never needs the whole trace
// resident. Use ReadDir instead when the full materialized Trace is wanted.
//
// Chunk versions are detected per file, so a directory may mix v1 and v2
// chunks freely. The Reader owns one Interner: every name decoded from any
// chunk resolves to a shared string object, and all read scratch (the frame
// buffer, the v2 column chunk, the sidecar buffer) is reused across calls —
// a warm streaming pass over v2 chunks allocates essentially nothing.
//
// Reader methods are not safe for concurrent use.
type Reader struct {
	dir   string
	names []string // chunk file names, sorted
	meta  Meta

	// paths and sidePaths hold the precomputed full paths of each chunk
	// and its sidecar, so the per-chunk read loop never rebuilds them.
	paths     []string
	sidePaths []string

	in     *Interner
	frame  []byte // loaded chunk frame, reused across chunks
	loaded int    // chunk index whose frame is in frame; -1 if none
	cc     ColumnChunk
	side   []byte // sidecar read buffer, reused across chunks

	// ixCache holds each chunk's parsed sidecar index after its first
	// Index call: the sidecars are immutable once written, so a warm
	// Reader plans repeated streaming runs without touching the disk or
	// the allocator.
	ixCache []ChunkIndex
	ixOK    []bool
}

// OpenDir opens a trace directory previously written by Writer: it lists
// the chunk files and reads the run metadata, decoding no events.
func OpenDir(dir string) (*Reader, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: reading trace dir: %w", err)
	}
	r := &Reader{dir: dir, in: NewInterner(), loaded: -1}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), chunkSuffix) {
			r.names = append(r.names, ent.Name())
		}
	}
	sort.Strings(r.names)
	r.paths = make([]string, len(r.names))
	r.sidePaths = make([]string, len(r.names))
	for i, name := range r.names {
		r.paths[i] = filepath.Join(dir, name)
		r.sidePaths[i] = filepath.Join(dir, sidecarPath(name))
	}
	metaData, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return nil, fmt.Errorf("trace: reading metadata: %w", err)
	}
	if err := json.Unmarshal(metaData, &r.meta); err != nil {
		return nil, fmt.Errorf("trace: decoding metadata: %w", err)
	}
	return r, nil
}

// Meta returns the run metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Dir returns the directory the Reader reads from.
func (r *Reader) Dir() string { return r.dir }

// NumChunks reports the number of chunk files in the directory.
func (r *Reader) NumChunks() int { return len(r.names) }

// ChunkName returns the file name of chunk i.
func (r *Reader) ChunkName(i int) string { return r.names[i] }

// load reads chunk i's frame into the reusable frame buffer. The previous
// frame stays cached, so ReadColumns followed by ReadChunk on the same chunk
// (the v1 fallback path) reads the file once.
func (r *Reader) load(i int) ([]byte, error) {
	if r.loaded == i {
		return r.frame, nil
	}
	r.loaded = -1
	name := r.names[i]
	f, err := os.Open(r.paths[i])
	if err != nil {
		return nil, &ChunkError{Dir: r.dir, Chunk: name, Err: err}
	}
	r.frame, err = readAllInto(r.frame[:0], f)
	f.Close()
	if err != nil {
		return nil, &ChunkError{Dir: r.dir, Chunk: name, Err: fmt.Errorf("trace: decode: reading chunk: %w", err)}
	}
	r.loaded = i
	return r.frame, nil
}

// ReadChunk decodes chunk i — either format — appending its events to dst
// and returning the extended slice. Passing the previous call's slice
// re-sliced to [:0] reuses its backing array, so a streaming loop allocates
// one buffer for the whole trace. Decode failures are reported as
// *ChunkError.
func (r *Reader) ReadChunk(i int, dst []Event) ([]Event, error) {
	frame, err := r.load(i)
	if err != nil {
		return dst, err
	}
	out, err := decodeChunkBytes(frame, dst, r.in, &r.cc)
	if err != nil {
		return out, &ChunkError{Dir: r.dir, Chunk: r.names[i], Err: err}
	}
	return out, nil
}

// ReadColumns reads chunk i and, when it is columnar (v2), parses it into
// the Reader's reusable ColumnChunk and returns it with ok = true — the
// zero-materialization path: iterate it with Events or Times. For v1 chunks
// it returns ok = false with no error; the caller falls back to ReadChunk,
// which reuses the already-loaded frame. The returned ColumnChunk is valid
// only until the next Reader call.
func (r *Reader) ReadColumns(i int) (cc *ColumnChunk, ok bool, err error) {
	frame, err := r.load(i)
	if err != nil {
		return nil, false, err
	}
	version, _, err := sniffVersion(frame)
	if err != nil {
		return nil, false, &ChunkError{Dir: r.dir, Chunk: r.names[i], Err: err}
	}
	if version != chunkVersion2 {
		return nil, false, nil
	}
	if err := r.cc.Parse(frame, r.in); err != nil {
		return nil, false, &ChunkError{Dir: r.dir, Chunk: r.names[i], Err: err}
	}
	return &r.cc, true, nil
}

// Index returns the sidecar index of chunk i. When the sidecar file is
// missing or unreadable (traces written before sidecars existed), the chunk
// is decoded once to rebuild the same index. The returned index is cached
// in the Reader — sidecars are immutable once written — and must be treated
// as read-only; repeated planning passes over a warm Reader are served from
// memory.
func (r *Reader) Index(i int) (*ChunkIndex, error) {
	if r.ixOK == nil {
		r.ixOK = make([]bool, len(r.names))
		r.ixCache = make([]ChunkIndex, len(r.names))
	}
	if !r.ixOK[i] {
		if err := r.IndexInto(i, &r.ixCache[i]); err != nil {
			return nil, err
		}
		r.ixOK[i] = true
	}
	return &r.ixCache[i], nil
}

// IndexInto is Index into a caller-reused ChunkIndex: ix's map and slices
// are cleared and refilled, so a planning loop that copies what it needs out
// of ix between calls touches the allocator only for map growth. Sidecars
// are parsed with a specialized parser for the exact documents the Writer
// emits, falling back to encoding/json for anything else.
func (r *Reader) IndexInto(i int, ix *ChunkIndex) error {
	f, err := os.Open(r.sidePaths[i])
	if err == nil {
		r.side, err = readAllInto(r.side[:0], f)
		f.Close()
		if err != nil {
			return &ChunkError{Dir: r.dir, Chunk: sidecarPath(r.names[i]), Err: err}
		}
		if parseSidecarInto(r.side, ix, r.in) && ix.Version == chunkVersion {
			return nil
		}
		// Not the fast shape: let encoding/json have it.
		*ix = ChunkIndex{Procs: ix.Procs, Phases: ix.Phases[:0]}
		clear(ix.Procs)
		if jerr := json.Unmarshal(r.side, ix); jerr == nil && ix.Version == chunkVersion {
			return nil
		}
		// Corrupt or version-skewed sidecar: fall through to rebuild.
	} else if !errors.Is(err, os.ErrNotExist) {
		return &ChunkError{Dir: r.dir, Chunk: sidecarPath(r.names[i]), Err: err}
	}
	events, err := r.ReadChunk(i, nil)
	if err != nil {
		return err
	}
	var size int64
	if fi, err := os.Stat(r.paths[i]); err == nil {
		size = fi.Size()
	}
	*ix = *BuildChunkIndex(events, size)
	return nil
}
