package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/vclock"
)

// sidecar file naming: chunk_000003.rlstrace -> chunk_000003.rlsidx
const (
	chunkSuffix   = ".rlstrace"
	sidecarSuffix = ".rlsidx"
)

// ChunkError identifies which chunk file of a trace directory failed to
// decode (truncated, corrupt, or unreadable). Callers can unwrap it with
// errors.As to recover the offending file.
type ChunkError struct {
	// Dir is the trace directory.
	Dir string
	// Chunk is the chunk file name within Dir.
	Chunk string
	// Err is the underlying decode or I/O error.
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("trace: chunk %s in %s: %v", e.Chunk, e.Dir, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// ProcSpan summarizes one process's events within a single chunk.
type ProcSpan struct {
	// MinStart and MaxEnd bound the extents of the process's events in
	// the chunk (for point events End == Start).
	MinStart vclock.Time `json:"min_start"`
	MaxEnd   vclock.Time `json:"max_end"`
	// Events counts the process's events in the chunk.
	Events int `json:"events"`
}

// ChunkIndex is the per-chunk sidecar the Writer emits at flush time: enough
// metadata for a streaming reader to plan an analysis — which processes a
// chunk touches, over what time extent, and the phase annotations it carries
// (phase events are few, so copying them into the sidecar lets the planner
// derive the per-process window partition without decoding any chunk).
type ChunkIndex struct {
	Version int `json:"version"`
	// Events is the total event count of the chunk.
	Events int `json:"events"`
	// Bytes is the encoded size of the chunk file.
	Bytes int64 `json:"bytes"`
	// Procs maps each process present in the chunk to its span.
	Procs map[ProcID]ProcSpan `json:"procs"`
	// Phases holds copies of the chunk's KindPhase events.
	Phases []Event `json:"phases,omitempty"`
}

// BuildChunkIndex derives the sidecar index for one chunk's events.
// encodedBytes records the serialized chunk size.
func BuildChunkIndex(events []Event, encodedBytes int64) *ChunkIndex {
	ix := &ChunkIndex{
		Version: chunkVersion,
		Events:  len(events),
		Bytes:   encodedBytes,
		Procs:   map[ProcID]ProcSpan{},
	}
	for _, e := range events {
		sp, ok := ix.Procs[e.Proc]
		if !ok {
			sp = ProcSpan{MinStart: e.Start, MaxEnd: e.End}
		}
		if e.Start < sp.MinStart {
			sp.MinStart = e.Start
		}
		if e.End > sp.MaxEnd {
			sp.MaxEnd = e.End
		}
		sp.Events++
		ix.Procs[e.Proc] = sp
		if e.Kind == KindPhase {
			ix.Phases = append(ix.Phases, e)
		}
	}
	return ix
}

func sidecarPath(chunkPath string) string {
	return strings.TrimSuffix(chunkPath, chunkSuffix) + sidecarSuffix
}

// Reader iterates a chunked trace directory lazily: chunks are decoded one
// at a time into a caller-supplied buffer, and per-chunk sidecar indexes are
// served without decoding events, so an analysis never needs the whole trace
// resident. Use ReadDir instead when the full materialized Trace is wanted.
//
// Reader methods are not safe for concurrent use.
type Reader struct {
	dir   string
	names []string // chunk file names, sorted
	meta  Meta
}

// OpenDir opens a trace directory previously written by Writer: it lists
// the chunk files and reads the run metadata, decoding no events.
func OpenDir(dir string) (*Reader, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: reading trace dir: %w", err)
	}
	r := &Reader{dir: dir}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), chunkSuffix) {
			r.names = append(r.names, ent.Name())
		}
	}
	sort.Strings(r.names)
	metaData, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return nil, fmt.Errorf("trace: reading metadata: %w", err)
	}
	if err := json.Unmarshal(metaData, &r.meta); err != nil {
		return nil, fmt.Errorf("trace: decoding metadata: %w", err)
	}
	return r, nil
}

// Meta returns the run metadata.
func (r *Reader) Meta() Meta { return r.meta }

// NumChunks reports the number of chunk files in the directory.
func (r *Reader) NumChunks() int { return len(r.names) }

// ChunkName returns the file name of chunk i.
func (r *Reader) ChunkName(i int) string { return r.names[i] }

// ReadChunk decodes chunk i, appending its events to dst and returning the
// extended slice. Passing the previous call's slice re-sliced to [:0] reuses
// its backing array, so a streaming loop allocates one buffer for the whole
// trace. Decode failures are reported as *ChunkError.
func (r *Reader) ReadChunk(i int, dst []Event) ([]Event, error) {
	name := r.names[i]
	f, err := os.Open(filepath.Join(r.dir, name))
	if err != nil {
		return dst, &ChunkError{Dir: r.dir, Chunk: name, Err: err}
	}
	defer f.Close()
	out, err := DecodeChunk(f, dst)
	if err != nil {
		return out, &ChunkError{Dir: r.dir, Chunk: name, Err: err}
	}
	return out, nil
}

// Index returns the sidecar index of chunk i. When the sidecar file is
// missing or unreadable (traces written before sidecars existed), the chunk
// is decoded once to rebuild the same index.
func (r *Reader) Index(i int) (*ChunkIndex, error) {
	path := filepath.Join(r.dir, sidecarPath(r.names[i]))
	data, err := os.ReadFile(path)
	if err == nil {
		ix := &ChunkIndex{}
		if jerr := json.Unmarshal(data, ix); jerr == nil && ix.Version == chunkVersion {
			return ix, nil
		}
		// Corrupt or version-skewed sidecar: fall through to rebuild.
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, &ChunkError{Dir: r.dir, Chunk: sidecarPath(r.names[i]), Err: err}
	}
	events, err := r.ReadChunk(i, nil)
	if err != nil {
		return nil, err
	}
	var size int64
	if fi, err := os.Stat(filepath.Join(r.dir, r.names[i])); err == nil {
		size = fi.Size()
	}
	return BuildChunkIndex(events, size), nil
}
