package trace

import (
	"math/rand"
	"testing"

	"repro/internal/vclock"
)

// The chunk-decode micro-benchmarks pin the per-format decode cost on a
// workload-shaped chunk (bursty kinds, small name vocabulary, monotone
// timestamps — see workloadishEvents). DecodeChunkV2 measures the full
// materializing decode; ParseColumnChunk measures the zero-copy framing the
// streaming sweep uses, whose cost must stay O(columns), not O(events).

const benchChunkEvents = 8192

func benchEvents() []Event {
	return workloadishEvents(rand.New(rand.NewSource(17)), benchChunkEvents)
}

func BenchmarkDecodeChunkV1(b *testing.B) {
	frame := seedChunk(benchEvents())
	in := NewInterner()
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	var buf []Event
	var err error
	for i := 0; i < b.N; i++ {
		if buf, err = decodeChunkBytes(frame, buf[:0], in, nil); err != nil {
			b.Fatal(err)
		}
		if len(buf) != benchChunkEvents {
			b.Fatalf("decoded %d events", len(buf))
		}
	}
	b.ReportMetric(benchChunkEvents, "events")
}

func BenchmarkDecodeChunkV2(b *testing.B) {
	frame := seedChunkV2(benchEvents())
	in := NewInterner()
	var cc ColumnChunk
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	var buf []Event
	var err error
	for i := 0; i < b.N; i++ {
		if buf, err = decodeChunkBytes(frame, buf[:0], in, &cc); err != nil {
			b.Fatal(err)
		}
		if len(buf) != benchChunkEvents {
			b.Fatalf("decoded %d events", len(buf))
		}
	}
	b.ReportMetric(benchChunkEvents, "events")
}

// BenchmarkParseColumnChunk is the streaming hot path: frame a columnar
// chunk and sweep its extents without materializing any []Event.
func BenchmarkParseColumnChunk(b *testing.B) {
	frame := seedChunkV2(benchEvents())
	in := NewInterner()
	var cc ColumnChunk
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if err := cc.Parse(frame, in); err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := cc.Times(func(int, vclock.Time, vclock.Time) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n != benchChunkEvents {
			b.Fatalf("swept %d events", n)
		}
	}
	b.ReportMetric(benchChunkEvents, "events")
}
