// Package hypmetrics composes the full metric source for the hypothesis
// grid: every bundle from internal/experiments plus the servecache timing
// bundle, which must live outside internal/experiments because
// internal/serve depends on the root rlscope package, whose tests import
// the experiments package — routing servecache through experiments would
// close an import cycle.
package hypmetrics

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Experiments lists every bundle id Metrics accepts.
func Experiments() []string {
	return append(append([]string{}, experiments.MetricExperiments...), "servecache")
}

// Metrics is the hypothesis.Source backing the committed grid.
func Metrics(ctx context.Context, experiment string, steps int, seed int64) (map[string]float64, error) {
	if experiment == "servecache" {
		return serveCacheMetrics(ctx, steps, seed)
	}
	return experiments.Metrics(ctx, experiment, steps, seed)
}

// serveCacheMetrics measures rlscope-serve's content-addressed report cache
// (PR 5's claim): a cache hit answers from stored bytes and must be far
// cheaper than the cache miss that pays a full Engine run. Host wall-clock
// time — a timing bundle.
func serveCacheMetrics(ctx context.Context, steps int, seed int64) (map[string]float64, error) {
	if steps <= 0 {
		steps = 200
	}
	stats, err := workloads.Run(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
		TotalSteps: steps, Seed: seed,
	}, trace.Uninstrumented())
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: servecache: %w", err)
	}
	dir, err := os.MkdirTemp("", "rlscope-hyp-servecache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	w, err := trace.NewWriter(dir, 1<<16)
	if err != nil {
		return nil, err
	}
	w.Append(stats.Trace.Events...)
	if err := w.Close(stats.Trace.Meta); err != nil {
		return nil, err
	}

	request := func(h http.Handler) (time.Duration, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/traces/t/analyze", strings.NewReader(`{"workers":1}`))
		start := time.Now()
		h.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("hypmetrics: servecache: analyze: %d %s", rec.Code, rec.Body)
		}
		return elapsed, nil
	}

	// Miss: a fresh server's first request pays digesting + the Engine
	// run + encoding. Min over a few one-shot servers.
	const missReps = 3
	var missBest time.Duration
	for i := 0; i < missReps; i++ {
		s := serve.NewServer(serve.Config{})
		if _, err := s.AddDir("t", dir); err != nil {
			s.Close()
			return nil, fmt.Errorf("hypmetrics: servecache: %w", err)
		}
		elapsed, err := request(s.Handler())
		s.Close()
		if err != nil {
			return nil, err
		}
		if i == 0 || elapsed < missBest {
			missBest = elapsed
		}
	}

	// Hit: a warm server answers the identical request from the cache.
	s := serve.NewServer(serve.Config{})
	defer s.Close()
	if _, err := s.AddDir("t", dir); err != nil {
		return nil, fmt.Errorf("hypmetrics: servecache: %w", err)
	}
	h := s.Handler()
	if _, err := request(h); err != nil { // warm the cache
		return nil, err
	}
	const hitReps = 50
	var hitBest time.Duration
	for i := 0; i < hitReps; i++ {
		elapsed, err := request(h)
		if err != nil {
			return nil, err
		}
		if i == 0 || elapsed < hitBest {
			hitBest = elapsed
		}
	}
	if runs := s.EngineRuns(); runs != 1 {
		return nil, fmt.Errorf("hypmetrics: servecache: cache hits performed %d engine runs", runs)
	}
	return map[string]float64{
		"miss_over_hit": missBest.Seconds() / hitBest.Seconds(),
	}, nil
}
