// Package hypmetrics composes the full metric source for the hypothesis
// grid: every bundle from internal/experiments plus the servecache and
// ingest bundles, which must live outside internal/experiments because
// internal/serve depends on the root rlscope package, whose tests import
// the experiments package — routing them through experiments would close
// an import cycle.
package hypmetrics

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	rlscope "repro"
	"repro/client"
	"repro/internal/backend"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Experiments lists every bundle id Metrics accepts.
func Experiments() []string {
	return append(append([]string{}, experiments.MetricExperiments...), "servecache", "ingest", "formatv2", "fleet")
}

// Metrics is the hypothesis.Source backing the committed grid.
func Metrics(ctx context.Context, experiment string, steps int, seed int64) (map[string]float64, error) {
	switch experiment {
	case "servecache":
		return serveCacheMetrics(ctx, steps, seed)
	case "ingest":
		return ingestMetrics(ctx, steps, seed)
	case "formatv2":
		return formatv2Metrics(ctx, steps, seed)
	case "fleet":
		return fleetMetrics(ctx, steps, seed)
	}
	return experiments.Metrics(ctx, experiment, steps, seed)
}

// serveCacheMetrics measures rlscope-serve's content-addressed report cache
// (PR 5's claim): a cache hit answers from stored bytes and must be far
// cheaper than the cache miss that pays a full Engine run. Host wall-clock
// time — a timing bundle.
func serveCacheMetrics(ctx context.Context, steps int, seed int64) (map[string]float64, error) {
	if steps <= 0 {
		steps = 200
	}
	stats, err := workloads.Run(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
		TotalSteps: steps, Seed: seed,
	}, trace.Uninstrumented())
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: servecache: %w", err)
	}
	dir, err := os.MkdirTemp("", "rlscope-hyp-servecache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	w, err := trace.NewWriter(dir, 1<<16)
	if err != nil {
		return nil, err
	}
	w.Append(stats.Trace.Events...)
	if err := w.Close(stats.Trace.Meta); err != nil {
		return nil, err
	}

	request := func(h http.Handler) (time.Duration, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/traces/t/analyze", strings.NewReader(`{"workers":1}`))
		start := time.Now()
		h.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("hypmetrics: servecache: analyze: %d %s", rec.Code, rec.Body)
		}
		return elapsed, nil
	}

	// Miss: a fresh server's first request pays digesting + the Engine
	// run + encoding. Min over a few one-shot servers.
	const missReps = 3
	var missBest time.Duration
	for i := 0; i < missReps; i++ {
		s := serve.NewServer(serve.Config{})
		if _, err := s.AddDir("t", dir); err != nil {
			s.Close()
			return nil, fmt.Errorf("hypmetrics: servecache: %w", err)
		}
		elapsed, err := request(s.Handler())
		s.Close()
		if err != nil {
			return nil, err
		}
		if i == 0 || elapsed < missBest {
			missBest = elapsed
		}
	}

	// Hit: a warm server answers the identical request from the cache.
	s := serve.NewServer(serve.Config{})
	defer s.Close()
	if _, err := s.AddDir("t", dir); err != nil {
		return nil, fmt.Errorf("hypmetrics: servecache: %w", err)
	}
	h := s.Handler()
	if _, err := request(h); err != nil { // warm the cache
		return nil, err
	}
	const hitReps = 50
	var hitBest time.Duration
	for i := 0; i < hitReps; i++ {
		elapsed, err := request(h)
		if err != nil {
			return nil, err
		}
		if i == 0 || elapsed < hitBest {
			hitBest = elapsed
		}
	}
	if runs := s.EngineRuns(); runs != 1 {
		return nil, fmt.Errorf("hypmetrics: servecache: cache hits performed %d engine runs", runs)
	}
	return map[string]float64{
		"miss_over_hit": missBest.Seconds() / hitBest.Seconds(),
	}, nil
}

// formatv2Metrics checks PR 8's format-parity and compression claims on a
// real profiled workload: converting the trace directory to the columnar v2
// format (with the round-trip digest verification on) and analyzing it — and
// a directory mixing v1 and v2 chunks — must produce analysis documents
// byte-identical to the v1 original's, while the v2 chunks are measurably
// smaller at rest. Byte-equality and a deterministic workload make this a
// deterministic bundle.
func formatv2Metrics(ctx context.Context, steps int, seed int64) (map[string]float64, error) {
	if steps <= 0 {
		steps = 200
	}
	stats, err := workloads.Run(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
		TotalSteps: steps, Seed: seed,
	}, trace.Full())
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: formatv2: %w", err)
	}
	base, err := os.MkdirTemp("", "rlscope-hyp-formatv2-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)
	v1dir := filepath.Join(base, "v1")
	w, err := trace.NewWriter(v1dir, 1<<16)
	if err != nil {
		return nil, err
	}
	w.Append(stats.Trace.Events...)
	if err := w.Close(stats.Trace.Meta); err != nil {
		return nil, err
	}
	v2dir := filepath.Join(base, "v2")
	cstats, err := trace.ConvertDir(v1dir, v2dir, trace.FormatV2, true)
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: formatv2: convert: %w", err)
	}

	// Mixed directory: the v1 original with every other chunk re-encoded
	// columnar in place — the per-chunk version sniffing must make the mix
	// indistinguishable from either pure directory.
	mixdir := filepath.Join(base, "mixed")
	if err := copyDir(v1dir, mixdir); err != nil {
		return nil, fmt.Errorf("hypmetrics: formatv2: %w", err)
	}
	r, err := trace.OpenDir(mixdir)
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: formatv2: %w", err)
	}
	var events []trace.Event
	for i := 0; i < r.NumChunks(); i += 2 {
		if events, err = r.ReadChunk(i, events[:0]); err != nil {
			return nil, fmt.Errorf("hypmetrics: formatv2: %w", err)
		}
		chunk, _, err := trace.EncodeEventsFormat(events, trace.FormatV2)
		if err != nil {
			return nil, fmt.Errorf("hypmetrics: formatv2: %w", err)
		}
		if err := os.WriteFile(filepath.Join(mixdir, r.ChunkName(i)), chunk, 0o644); err != nil {
			return nil, fmt.Errorf("hypmetrics: formatv2: %w", err)
		}
	}

	analyze := func(dir string) ([]byte, error) {
		rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(ctx, rlscope.FromDir(dir))
		if err != nil {
			return nil, fmt.Errorf("hypmetrics: formatv2: analyzing %s: %w", dir, err)
		}
		var buf bytes.Buffer
		if err := report.NewResultAnalysis(rep.Meta, rep.Results, rep.Corrected).Encode(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	docV1, err := analyze(v1dir)
	if err != nil {
		return nil, err
	}
	docV2, err := analyze(v2dir)
	if err != nil {
		return nil, err
	}
	docMix, err := analyze(mixdir)
	if err != nil {
		return nil, err
	}

	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]float64{
		"v2_identical":     b2f(bytes.Equal(docV1, docV2)),
		"mixed_identical":  b2f(bytes.Equal(docV1, docMix)),
		"convert_verified": b2f(cstats.Verified),
		"size_ratio":       cstats.Ratio(),
	}, nil
}

// fleetMetrics checks PR 9's fleet-analytics claim end to end: a grouped
// POST /v1/query over several labeled runs must be byte-identical to the
// offline fleet plan executed with fresh Engine runs per trace (the
// rlscope-query path), and a server restarted over the same report-store
// directory must answer the same bytes without a single Engine run.
// Byte-equality plus run counters — a deterministic bundle.
func fleetMetrics(ctx context.Context, steps int, seed int64) (map[string]float64, error) {
	if steps <= 0 {
		steps = 200
	}
	base, err := os.MkdirTemp("", "rlscope-hyp-fleet-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)

	runs := []struct {
		id, algo string
		extra    int
	}{
		{"run-a", "ppo", 0},
		{"run-b", "dqn", 40},
		{"run-c", "a2c", 80},
	}
	dirs := map[string]string{}
	var candidates []fleet.Trace
	for i, run := range runs {
		stats, err := workloads.Run(workloads.Spec{
			Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
			TotalSteps: steps + run.extra, Seed: seed + int64(i),
		}, trace.Uninstrumented())
		if err != nil {
			return nil, fmt.Errorf("hypmetrics: fleet: %w", err)
		}
		stats.Trace.Meta.Labels = map[string]string{"algo": run.algo}
		dir := filepath.Join(base, run.id)
		w, err := trace.NewWriter(dir, 1<<16)
		if err != nil {
			return nil, err
		}
		w.Append(stats.Trace.Events...)
		if err := w.Close(stats.Trace.Meta); err != nil {
			return nil, err
		}
		dirs[run.id] = dir
		candidates = append(candidates, fleet.Trace{ID: run.id, Meta: stats.Trace.Meta})
	}

	query := fleet.Query{
		GroupBy: []string{"label.algo"},
		Compare: &fleet.Compare{Baseline: map[string]string{"label.algo": "dqn"}},
	}

	// Offline oracle: the fleet plan executed with a fresh Engine run per
	// trace — exactly what rlscope-query does without a store directory.
	plan, err := fleet.Compile(query)
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: fleet: %w", err)
	}
	doc, err := plan.Execute(ctx, candidates, func(ctx context.Context, t fleet.Trace) (map[trace.ProcID]*overlap.Result, error) {
		rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(ctx, rlscope.FromDir(dirs[t.ID]))
		if err != nil {
			return nil, err
		}
		return rep.Results, nil
	})
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: fleet: offline execute: %w", err)
	}
	var offline bytes.Buffer
	if err := doc.Encode(&offline); err != nil {
		return nil, err
	}

	reportDir := filepath.Join(base, "reports")
	serveQuery := func() ([]byte, int64, error) {
		s, err := serve.NewServerStrict(serve.Config{ReportDir: reportDir})
		if err != nil {
			return nil, 0, fmt.Errorf("hypmetrics: fleet: %w", err)
		}
		defer s.Close()
		for _, run := range runs {
			if _, err := s.AddDir(run.id, dirs[run.id]); err != nil {
				return nil, 0, fmt.Errorf("hypmetrics: fleet: %w", err)
			}
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body, err := client.New(ts.URL).Query(ctx, query)
		if err != nil {
			return nil, 0, fmt.Errorf("hypmetrics: fleet: query: %w", err)
		}
		return body, s.EngineRuns(), nil
	}

	// Cold server: one Engine run per trace, result sets land in the store.
	cold, coldRuns, err := serveQuery()
	if err != nil {
		return nil, err
	}
	// Restarted server over the same store directory: zero Engine runs.
	warm, warmRuns, err := serveQuery()
	if err != nil {
		return nil, err
	}

	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]float64{
		"grouped_exact":          b2f(bytes.Equal(cold, offline.Bytes())),
		"warm_restart_identical": b2f(bytes.Equal(warm, cold)),
		"cold_engine_runs":       float64(coldRuns),
		"warm_engine_runs":       float64(warmRuns),
	}, nil
}

// copyDir copies the regular files of src into a fresh dst (no recursion —
// trace directories are flat).
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ingestMetrics checks PR 7's determinism claim end to end over real HTTP:
// a trace streamed chunk-by-chunk through the typed client — with analyses
// interleaved mid-stream so the resident incremental state absorbs multiple
// epochs — seals to a directory whose digest matches the server's running
// digest, and the live analysis document is byte-identical to a fresh
// offline Engine run over that sealed directory. Counter-based, so it holds
// under any scheduler: a deterministic bundle.
func ingestMetrics(ctx context.Context, steps int, seed int64) (map[string]float64, error) {
	if steps <= 0 {
		steps = 200
	}
	stats, err := workloads.Run(workloads.Spec{
		Algo: "DDPG", Env: "Walker2D", Model: backend.Graph,
		TotalSteps: steps, Seed: seed,
	}, trace.Uninstrumented())
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
	}
	store, err := os.MkdirTemp("", "rlscope-hyp-ingest-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(store)
	s := serve.NewServer(serve.Config{StoreDir: store})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	const id = "live"
	if _, err := c.Register(ctx, id); err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
	}
	events := stats.Trace.Events
	const frames = 8
	per := (len(events) + frames - 1) / frames
	for seq := 0; seq*per < len(events); seq++ {
		hi := (seq + 1) * per
		if hi > len(events) {
			hi = len(events)
		}
		chunk, ix, err := trace.EncodeEvents(events[seq*per : hi])
		if err != nil {
			return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
		}
		if _, err := c.AppendChunk(ctx, id, seq, chunk, ix); err != nil {
			return nil, fmt.Errorf("hypmetrics: ingest: append %d: %w", seq, err)
		}
		// Analyze mid-stream so the appends land as separate epochs.
		if seq == 2 {
			if _, err := c.Analyze(ctx, id, serve.AnalyzeRequest{Workers: 1}); err != nil {
				return nil, fmt.Errorf("hypmetrics: ingest: mid-stream analyze: %w", err)
			}
		}
	}
	sealed, err := c.Seal(ctx, id, stats.Trace.Meta)
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
	}
	live, err := c.Analyze(ctx, id, serve.AnalyzeRequest{Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
	}

	dir := filepath.Join(store, id)
	onDisk, err := trace.DirDigest(dir)
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
	}
	rep, err := rlscope.NewEngine(rlscope.WithWorkers(1)).Analyze(ctx, rlscope.FromDir(dir))
	if err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: offline engine: %w", err)
	}
	var offline bytes.Buffer
	if err := report.NewResultAnalysis(rep.Meta, rep.Results, rep.Corrected).Encode(&offline); err != nil {
		return nil, fmt.Errorf("hypmetrics: ingest: %w", err)
	}

	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	incStats, _ := s.IncrementalStats(id)
	return map[string]float64{
		"byte_identical": b2f(bytes.Equal(live, offline.Bytes())),
		"digest_match":   b2f(sealed.Digest == onDisk),
		"engine_runs":    float64(s.EngineRuns()),
		"multi_epoch":    b2f(incStats.Epochs >= 2),
	}, nil
}
