package fleet

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestMatcherValidation(t *testing.T) {
	if _, err := NewMatcher(map[string]string{"bogus": "*"}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := NewMatcher(map[string]string{"label.": "*"}); err == nil {
		t.Fatal("empty label key accepted")
	}
	if _, err := NewMatcher(map[string]string{"workload": "[unclosed"}); err == nil {
		t.Fatal("malformed glob accepted")
	}
	m, err := NewMatcher(map[string]string{"workload": "ppo-*", "label.framework": "tf"})
	if err != nil {
		t.Fatal(err)
	}
	match := Trace{ID: "a", Meta: trace.Meta{Workload: "ppo-walker", Labels: map[string]string{"framework": "tf"}}}
	if !m.Match(match) {
		t.Fatal("expected match")
	}
	for _, miss := range []Trace{
		{ID: "b", Meta: trace.Meta{Workload: "dqn-pong", Labels: map[string]string{"framework": "tf"}}},
		{ID: "c", Meta: trace.Meta{Workload: "ppo-walker", Labels: map[string]string{"framework": "torch"}}},
		{ID: "d", Meta: trace.Meta{Workload: "ppo-walker"}}, // label absent -> ""
	} {
		if m.Match(miss) {
			t.Fatalf("trace %s should not match", miss.ID)
		}
	}
	// An empty filter matches everything, including label-less traces.
	all, err := NewMatcher(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Match(Trace{ID: "e"}) {
		t.Fatal("empty matcher should match everything")
	}
}

func TestCompileValidation(t *testing.T) {
	bad := []Query{
		{GroupBy: []string{"bogus"}},
		{Metrics: []string{"bogus_ns"}},
		{Filter: map[string]string{"nope": "*"}},
		{Compare: &Compare{Baseline: map[string]string{"label.algo": "dqn"}}},                                                 // compare without group_by
		{GroupBy: []string{"label.algo"}, Compare: &Compare{Baseline: map[string]string{"workload": "x"}}},                    // wrong dimension
		{GroupBy: []string{"label.algo"}, Compare: &Compare{Baseline: map[string]string{}}},                                   // missing dimension
		{GroupBy: []string{"label.algo"}, Compare: &Compare{Baseline: map[string]string{"label.algo": "a", "workload": "b"}}}, // extra dimension
	}
	for i, q := range bad {
		if _, err := Compile(q); err == nil {
			t.Errorf("query %d compiled, want error", i)
		}
	}
	p, err := Compile(Query{
		GroupBy: []string{"label.algo", "label.algo"},
		Metrics: []string{MetricGPUNS, MetricTotalNS, MetricGPUNS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.groupBy) != 1 {
		t.Fatalf("group_by not deduplicated: %v", p.groupBy)
	}
	if want := []string{MetricGPUNS, MetricTotalNS}; strings.Join(p.metrics, ",") != strings.Join(want, ",") {
		t.Fatalf("metrics %v, want %v (deduplicated, user order)", p.metrics, want)
	}
	// Empty metrics select the default set.
	p, err = Compile(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p.metrics, ",") != strings.Join(DefaultMetrics, ",") {
		t.Fatalf("default metrics %v, want %v", p.metrics, DefaultMetrics)
	}
}

// randomTrace generates one multi-process trace whose process ids start at
// base — so traces built with disjoint bases model the fleet case, where
// each run's processes are distinct.
func randomTrace(rng *rand.Rand, base, procs int) *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{Workload: "random", Procs: map[trace.ProcID]trace.ProcInfo{}}}
	ops := []string{"inference", "simulation", "backpropagation"}
	cpuCats := []trace.Category{trace.CatPython, trace.CatSimulator, trace.CatBackend, trace.CatCUDA}
	gpuCats := []trace.Category{trace.CatGPUKernel, trace.CatGPUMemcpy}
	labels := []string{trace.TransPythonToBackend, trace.TransPythonToSimulator, trace.TransBackendToCUDA}
	for p := 0; p < procs; p++ {
		pid := trace.ProcID(base + p)
		tr.Meta.Procs[pid] = trace.ProcInfo{Name: fmt.Sprintf("proc%d", pid), Parent: -1}
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			start := vclock.Time(rng.Intn(100_000))
			width := vclock.Time(rng.Intn(5_000))
			e := trace.Event{Proc: pid, Start: start, End: start + width}
			switch rng.Intn(10) {
			case 0, 1:
				e.Kind = trace.KindOp
				e.Name = ops[rng.Intn(len(ops))]
			case 2:
				e.Kind = trace.KindPhase
				e.Name = fmt.Sprintf("phase%d", rng.Intn(3))
			case 3:
				e.Kind = trace.KindTransition
				e.Name = labels[rng.Intn(len(labels))]
				e.End = e.Start
			case 4, 5, 6:
				e.Kind = trace.KindGPU
				e.Cat = gpuCats[rng.Intn(len(gpuCats))]
				e.Name = "kernel"
			default:
				e.Kind = trace.KindCPU
				e.Cat = cpuCats[rng.Intn(len(cpuCats))]
			}
			tr.Events = append(tr.Events, e)
		}
	}
	return tr
}

func encodeResults(tb testing.TB, results map[trace.ProcID]*overlap.Result) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := report.EncodeResultSet(&buf, results); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetMergeExact is the tentpole property: for fleets of randomized
// traces with disjoint process ids, the union of per-trace Engine results
// — what a fleet query merges — is byte-identical (as a canonical result
// set) to one Engine run over the concatenated trace, and folding every
// process with analysis.MergeResult (what one group accumulates) equals
// the same fold over the concatenated run's results.
func TestFleetMergeExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nTraces := 2 + rng.Intn(3)
		concat := &trace.Trace{Meta: trace.Meta{Workload: "concat", Procs: map[trace.ProcID]trace.ProcInfo{}}}
		union := map[trace.ProcID]*overlap.Result{}
		fold := newEmptyResult()
		for i := 0; i < nTraces; i++ {
			tr := randomTrace(rng, i*10, 1+rng.Intn(3))
			concat.Events = append(concat.Events, tr.Events...)
			for p, info := range tr.Meta.Procs {
				concat.Meta.Procs[p] = info
			}
			results, err := analysis.RunContext(context.Background(), tr, analysis.Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			for p, res := range results {
				union[p] = res
				analysis.MergeResult(fold, res)
			}
		}
		concatResults, err := analysis.RunContext(context.Background(), concat, analysis.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := encodeResults(t, union), encodeResults(t, concatResults); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: per-trace result union diverges from concatenated engine run\nunion:  %s\nconcat: %s", seed, got, want)
		}
		concatFold := newEmptyResult()
		for _, res := range concatResults {
			analysis.MergeResult(concatFold, res)
		}
		one := map[trace.ProcID]*overlap.Result{0: fold}
		other := map[trace.ProcID]*overlap.Result{0: concatFold}
		if got, want := encodeResults(t, one), encodeResults(t, other); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: group fold diverges from concatenated fold", seed)
		}
	}
}

func newEmptyResult() *overlap.Result {
	return &overlap.Result{
		ByKey:       map[overlap.Key]vclock.Duration{},
		Transitions: map[overlap.TransitionKey]int{},
	}
}

// staticLoader serves hand-built results per trace id.
func staticLoader(results map[string]map[trace.ProcID]*overlap.Result) ResultLoader {
	return func(_ context.Context, t Trace) (map[trace.ProcID]*overlap.Result, error) {
		return results[t.ID], nil
	}
}

// fleetFixture is three tiny single-proc traces across two algo labels —
// small enough that the rendered query document is hand-checkable.
func fleetFixture() (traces []Trace, results map[string]map[trace.ProcID]*overlap.Result) {
	mk := func(id, algo string, proc trace.ProcID, gpu, cpu int64) {
		traces = append(traces, Trace{ID: id, Meta: trace.Meta{
			Workload: "ppo-" + id, Labels: map[string]string{"algo": algo},
		}})
		res := newEmptyResult()
		res.ByKey[overlap.Key{Op: "inference", Res: overlap.ResCPU, Cat: trace.CatPython}] = vclock.Duration(cpu)
		res.ByKey[overlap.Key{Op: "inference", Res: overlap.ResGPU, Cat: trace.CatGPUKernel}] = vclock.Duration(gpu)
		res.Transitions[overlap.TransitionKey{Op: "inference", Label: trace.TransPythonToBackend}] = 2
		res.SpanStart, res.SpanEnd = 100, vclock.Time(100+cpu+gpu)
		results[id] = map[trace.ProcID]*overlap.Result{proc: res}
	}
	results = map[string]map[trace.ProcID]*overlap.Result{}
	mk("run-c", "ppo", 1, 400, 600)
	mk("run-a", "dqn", 2, 100, 900)
	mk("run-b", "ppo", 3, 300, 700)
	return traces, results
}

// TestExecuteDocumentOrdering pins the document's deterministic layout:
// groups sort by key, member trace ids ascend, re-execution is
// byte-identical, and compare marks the baseline.
func TestExecuteDocumentOrdering(t *testing.T) {
	traces, results := fleetFixture()
	plan, err := Compile(Query{
		GroupBy: []string{"label.algo"},
		Metrics: []string{MetricTotalNS, MetricGPUNS, MetricGPUFrac, MetricTransitions},
		Compare: &Compare{Baseline: map[string]string{"label.algo": "dqn"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := plan.Execute(context.Background(), traces, staticLoader(results))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Traces != 3 || len(doc.Groups) != 2 {
		t.Fatalf("got %d traces in %d groups, want 3 in 2", doc.Traces, len(doc.Groups))
	}
	if doc.Groups[0].Key["label.algo"] != "dqn" || doc.Groups[1].Key["label.algo"] != "ppo" {
		t.Fatalf("groups out of key order: %v then %v", doc.Groups[0].Key, doc.Groups[1].Key)
	}
	if ids := doc.Groups[1].TraceIDs; strings.Join(ids, ",") != "run-b,run-c" {
		t.Fatalf("ppo group members %v, want ascending [run-b run-c]", ids)
	}
	if c := doc.Groups[0].Compare; c == nil || !c.Baseline {
		t.Fatalf("dqn group compare %+v, want baseline marker", doc.Groups[0].Compare)
	}
	ppo := doc.Groups[1]
	if ppo.Procs != 2 {
		t.Fatalf("ppo group procs %d, want 2", ppo.Procs)
	}
	wantMetrics := map[string]float64{
		"total_ns":    2000,
		"gpu_ns":      700,
		"gpu_frac":    0.35,
		"transitions": 4,
	}
	for _, m := range ppo.Metrics {
		if m.Value != wantMetrics[m.Name] {
			t.Fatalf("ppo metric %s = %v, want %v", m.Name, m.Value, wantMetrics[m.Name])
		}
	}
	if c := ppo.Compare; c == nil || c.Delta[0].Value != 1000 || c.Ratio[0].Value != 2 {
		t.Fatalf("ppo compare %+v, want total_ns delta 1000 ratio 2", ppo.Compare)
	}

	var first, second bytes.Buffer
	if err := doc.Encode(&first); err != nil {
		t.Fatal(err)
	}
	doc2, err := plan.Execute(context.Background(), traces, staticLoader(results))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc2.Encode(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-executed document is not byte-identical")
	}
}

// TestExecuteGolden pins the full rendered document for a minimal fleet,
// so any drift in field ordering or rounding is caught at the byte level.
func TestExecuteGolden(t *testing.T) {
	traces, results := fleetFixture()
	plan, err := Compile(Query{
		Filter:  map[string]string{"workload": "ppo-run-[ab]"},
		GroupBy: []string{"label.algo"},
		Metrics: []string{MetricTotalNS, MetricGPUFrac},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := plan.Execute(context.Background(), traces, staticLoader(results))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "query": {
    "filter": {
      "workload": "ppo-run-[ab]"
    },
    "group_by": [
      "label.algo"
    ],
    "metrics": [
      "total_ns",
      "gpu_frac"
    ]
  },
  "traces": 2,
  "groups": [
    {
      "key": {
        "label.algo": "dqn"
      },
      "trace_ids": [
        "run-a"
      ],
      "procs": 1,
      "metrics": [
        {
          "name": "total_ns",
          "value": 1000
        },
        {
          "name": "gpu_frac",
          "value": 0.1
        }
      ],
      "breakdown": {
        "total_ns": 1000,
        "gpu_ns": 100,
        "ops": [
          {
            "op": "inference",
            "total_ns": 900,
            "simulator_ns": 0,
            "python_ns": 900,
            "cuda_ns": 0,
            "backend_ns": 0,
            "network_ns": 0,
            "gpu_ns": 100
          }
        ]
      },
      "transitions": [
        {
          "op": "inference",
          "python_to_backend": 2,
          "python_to_simulator": 0,
          "backend_to_cuda": 0
        }
      ]
    },
    {
      "key": {
        "label.algo": "ppo"
      },
      "trace_ids": [
        "run-b"
      ],
      "procs": 1,
      "metrics": [
        {
          "name": "total_ns",
          "value": 1000
        },
        {
          "name": "gpu_frac",
          "value": 0.3
        }
      ],
      "breakdown": {
        "total_ns": 1000,
        "gpu_ns": 300,
        "ops": [
          {
            "op": "inference",
            "total_ns": 700,
            "simulator_ns": 0,
            "python_ns": 700,
            "cuda_ns": 0,
            "backend_ns": 0,
            "network_ns": 0,
            "gpu_ns": 300
          }
        ]
      },
      "transitions": [
        {
          "op": "inference",
          "python_to_backend": 2,
          "python_to_simulator": 0,
          "backend_to_cuda": 0
        }
      ]
    }
  ]
}
`
	if buf.String() != golden {
		t.Fatalf("query document drifted from golden:\n%s", buf.String())
	}
}

func TestExecuteDuplicateID(t *testing.T) {
	traces := []Trace{{ID: "x"}, {ID: "x"}}
	plan, err := Compile(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(context.Background(), traces, staticLoader(nil)); err == nil {
		t.Fatal("duplicate trace id accepted")
	}
}

func TestExecuteBaselineMissing(t *testing.T) {
	traces, results := fleetFixture()
	plan, err := Compile(Query{
		GroupBy: []string{"label.algo"},
		Compare: &Compare{Baseline: map[string]string{"label.algo": "nope"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(context.Background(), traces, staticLoader(results)); err == nil {
		t.Fatal("compare against missing baseline group accepted")
	}
}
