// Package fleet implements cross-trace aggregation queries — the paper's
// Figure 9/10 questions ("how does GPU usage compare across DQN/A2C/PPO,
// across frameworks?") asked over a whole fleet of runs instead of one
// trace directory at a time.
//
// A Query selects traces by metadata (glob filters over trace id, workload,
// and the free-form labels rlscope-prof attaches), partitions the matches
// into groups by one or more of those dimensions, and merges each group's
// per-trace overlap Results *exactly*: the merge is the same commutative
// integer-sum shard merge the parallel engine is property-tested on
// (analysis.MergeResult), so a group's breakdown is byte-identical to what
// one Engine run over the concatenated member traces would report (for
// disjoint process ids — the multi-run case by construction).
//
// Execute is deliberately front-end-neutral: rlscope-serve's POST /v1/query
// and the offline rlscope-query CLI both call it with their own result
// loader (the server reads its content-addressed report store, the CLI runs
// the Engine or reads a shared store directory) and render the same
// byte-stable report.QueryDoc, so server and CLI output can be compared
// with cmp.
package fleet

import (
	"context"
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/overlap"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Trace is one candidate trace as the query layer sees it: an id plus the
// run metadata carrying the workload name and labels.
type Trace struct {
	ID   string
	Meta trace.Meta
}

// Query is the fleet query DSL, decoded verbatim from the POST /v1/query
// body or the rlscope-query flags:
//
//	{
//	  "filter":   {"workload": "ppo-*", "label.framework": "tf"},
//	  "group_by": ["label.algo"],
//	  "metrics":  ["total_ns", "gpu_ns", "gpu_frac"],
//	  "compare":  {"baseline": {"label.algo": "dqn"}}
//	}
//
// Filter maps dimensions to glob patterns (path.Match syntax: *, ?, [...]);
// a trace matches when every pattern matches its value for that dimension.
// GroupBy partitions matches by the listed dimensions (empty = one group of
// everything). Metrics selects the scalar metrics reported per group
// (empty = the default set). Compare names a baseline group by its exact
// group-key values; every other group then reports per-metric deltas and
// ratios against it.
type Query struct {
	Filter  map[string]string `json:"filter,omitempty"`
	GroupBy []string          `json:"group_by,omitempty"`
	Metrics []string          `json:"metrics,omitempty"`
	Compare *Compare          `json:"compare,omitempty"`
}

// Compare names the baseline group of a comparison: one value per GroupBy
// dimension.
type Compare struct {
	Baseline map[string]string `json:"baseline"`
}

// Dimensions usable in Filter and GroupBy: "id", "workload", "host", and
// "label.<key>" for any label key.
const (
	DimID       = "id"
	DimWorkload = "workload"
	DimHost     = "host"
	labelPrefix = "label."
)

// Metric names usable in Query.Metrics.
const (
	MetricTotalNS     = "total_ns"    // all attributed time
	MetricCPUNS       = "cpu_ns"      // CPU-busy time (CPU-only + CPU+GPU)
	MetricGPUNS       = "gpu_ns"      // GPU-busy time (GPU-only + CPU+GPU)
	MetricGPUFrac     = "gpu_frac"    // gpu_ns / total_ns, rounded to 1e-6
	MetricSpanNS      = "span_ns"     // merged event-span extent
	MetricTransitions = "transitions" // total language-transition count
	MetricNetNS       = "net_ns"      // Network-tier CPU time (cross-host wait)
)

// DefaultMetrics is the metric set an empty Query.Metrics selects.
var DefaultMetrics = []string{MetricTotalNS, MetricCPUNS, MetricGPUNS, MetricGPUFrac}

// metricOrder fixes the canonical ordering of the metric vocabulary.
var metricOrder = []string{MetricTotalNS, MetricCPUNS, MetricGPUNS, MetricGPUFrac, MetricSpanNS, MetricTransitions, MetricNetNS}

// QueryError reports an invalid query; servers map it to 400 bad_request.
type QueryError struct{ msg string }

func (e *QueryError) Error() string { return "fleet: " + e.msg }

func queryErrf(format string, args ...any) *QueryError {
	return &QueryError{msg: fmt.Sprintf(format, args...)}
}

// ValidDimension reports whether dim is a usable filter/group dimension.
func ValidDimension(dim string) bool {
	if dim == DimID || dim == DimWorkload || dim == DimHost {
		return true
	}
	return strings.HasPrefix(dim, labelPrefix) && len(dim) > len(labelPrefix)
}

// DimensionValue extracts a trace's value for one dimension. A label the
// trace does not carry is the empty string, which glob patterns other than
// "*" (and "") do not match.
func DimensionValue(t Trace, dim string) string {
	switch {
	case dim == DimID:
		return t.ID
	case dim == DimWorkload:
		return t.Meta.Workload
	case dim == DimHost:
		return t.Meta.Host
	case strings.HasPrefix(dim, labelPrefix):
		return t.Meta.Labels[dim[len(labelPrefix):]]
	}
	return ""
}

// Matcher is a compiled filter clause, shared by /v1/query and the
// GET /v1/traces?workload=&label.k= listing filters so the two agree on
// filter semantics exactly.
type Matcher struct {
	dims     []string // sorted
	patterns map[string]string
}

// NewMatcher validates and compiles a filter map. A nil or empty map
// matches everything.
func NewMatcher(filter map[string]string) (*Matcher, error) {
	m := &Matcher{patterns: make(map[string]string, len(filter))}
	for dim, pattern := range filter {
		if !ValidDimension(dim) {
			return nil, queryErrf("unknown filter dimension %q (want %q, %q, %q, or %q<key>)", dim, DimID, DimWorkload, DimHost, labelPrefix)
		}
		if _, err := path.Match(pattern, ""); err != nil {
			return nil, queryErrf("bad filter pattern %q for %q: %v", pattern, dim, err)
		}
		m.dims = append(m.dims, dim)
		m.patterns[dim] = pattern
	}
	sort.Strings(m.dims)
	return m, nil
}

// Match reports whether every filter pattern matches the trace.
func (m *Matcher) Match(t Trace) bool {
	for _, dim := range m.dims {
		// Patterns were validated at compile time; path.Match cannot fail.
		if ok, _ := path.Match(m.patterns[dim], DimensionValue(t, dim)); !ok {
			return false
		}
	}
	return true
}

// Plan is a compiled, validated query ready to Execute.
type Plan struct {
	query   Query
	matcher *Matcher
	groupBy []string
	metrics []string
}

// Compile validates a query: dimensions must be known, filter patterns
// well-formed, metrics from the vocabulary (deduplicated, order preserved),
// and a compare clause must name exactly the GroupBy dimensions.
func Compile(q Query) (*Plan, error) {
	matcher, err := NewMatcher(q.Filter)
	if err != nil {
		return nil, err
	}
	p := &Plan{query: q, matcher: matcher}
	seenDim := map[string]bool{}
	for _, dim := range q.GroupBy {
		if !ValidDimension(dim) {
			return nil, queryErrf("unknown group_by dimension %q", dim)
		}
		if !seenDim[dim] {
			seenDim[dim] = true
			p.groupBy = append(p.groupBy, dim)
		}
	}
	known := map[string]bool{}
	for _, m := range metricOrder {
		known[m] = true
	}
	seenMetric := map[string]bool{}
	for _, m := range q.Metrics {
		if !known[m] {
			return nil, queryErrf("unknown metric %q (want one of %s)", m, strings.Join(metricOrder, ", "))
		}
		if !seenMetric[m] {
			seenMetric[m] = true
			p.metrics = append(p.metrics, m)
		}
	}
	if len(p.metrics) == 0 {
		p.metrics = append(p.metrics, DefaultMetrics...)
	}
	if q.Compare != nil {
		if len(p.groupBy) == 0 {
			return nil, queryErrf("compare requires group_by")
		}
		if len(q.Compare.Baseline) != len(p.groupBy) {
			return nil, queryErrf("compare.baseline must name exactly the group_by dimensions %v", p.groupBy)
		}
		for _, dim := range p.groupBy {
			if _, ok := q.Compare.Baseline[dim]; !ok {
				return nil, queryErrf("compare.baseline is missing group_by dimension %q", dim)
			}
		}
	}
	return p, nil
}

// Match applies the plan's filter clause.
func (p *Plan) Match(t Trace) bool { return p.matcher.Match(t) }

// ResultLoader produces the per-process overlap results of one trace —
// from a content-addressed store, a fresh Engine run, whatever the front
// end has. Execute calls it once per matched trace, in ascending trace-id
// order.
type ResultLoader func(ctx context.Context, t Trace) (map[trace.ProcID]*overlap.Result, error)

// group accumulates one group during Execute.
type group struct {
	keyVals []string
	ids     []string
	procs   int
	merged  *overlap.Result
}

// Execute runs the compiled query over the candidate traces: filter, load
// each match's results, merge exactly per group, render the byte-stable
// document. Candidates may arrive in any order; the document does not
// depend on it.
func (p *Plan) Execute(ctx context.Context, candidates []Trace, load ResultLoader) (*report.QueryDoc, error) {
	matched := make([]Trace, 0, len(candidates))
	seen := map[string]bool{}
	for _, t := range candidates {
		if seen[t.ID] {
			return nil, queryErrf("duplicate trace id %q", t.ID)
		}
		seen[t.ID] = true
		if p.matcher.Match(t) {
			matched = append(matched, t)
		}
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].ID < matched[j].ID })

	groups := map[string]*group{}
	for _, t := range matched {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		results, err := load(ctx, t)
		if err != nil {
			return nil, fmt.Errorf("fleet: loading results for trace %q: %w", t.ID, err)
		}
		keyVals := make([]string, len(p.groupBy))
		for i, dim := range p.groupBy {
			keyVals[i] = DimensionValue(t, dim)
		}
		gk := strings.Join(keyVals, "\x00")
		g := groups[gk]
		if g == nil {
			g = &group{keyVals: keyVals, merged: &overlap.Result{
				ByKey:       map[overlap.Key]vclock.Duration{},
				Transitions: map[overlap.TransitionKey]int{},
			}}
			groups[gk] = g
		}
		g.ids = append(g.ids, t.ID)
		g.procs += len(results)
		for _, res := range results {
			analysis.MergeResult(g.merged, res)
		}
	}

	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i].keyVals, ordered[j].keyVals
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})

	doc := &report.QueryDoc{
		Query:  p.echo(),
		Traces: len(matched),
		Groups: make([]report.GroupJSON, 0, len(ordered)),
	}
	var baseline *group
	if p.query.Compare != nil {
		for _, g := range ordered {
			if p.isBaseline(g) {
				baseline = g
				break
			}
		}
		if baseline == nil {
			return nil, queryErrf("compare.baseline %v matches no group", p.query.Compare.Baseline)
		}
	}
	for _, g := range ordered {
		gj := report.GroupJSON{
			Key:      make(map[string]string, len(p.groupBy)),
			TraceIDs: g.ids,
			Procs:    g.procs,
			Metrics:  p.metricRows(g.merged),
		}
		for i, dim := range p.groupBy {
			gj.Key[dim] = g.keyVals[i]
		}
		ops := report.SortedOps(g.merged)
		gj.Breakdown = report.BreakdownToJSON(report.FromResult("", g.merged, ops))
		var rows []report.TransitionRow
		for _, row := range report.Transitions("", g.merged, ops) {
			if row.Backend+row.Simulator+row.CUDA > 0 {
				rows = append(rows, row)
			}
		}
		gj.Transitions = report.TransitionsToJSON(rows)
		if baseline != nil {
			gj.Compare = p.compareRows(g, baseline)
		}
		doc.Groups = append(doc.Groups, gj)
	}
	return doc, nil
}

// echo renders the canonical query echo: the validated filter, the
// deduplicated group_by and metrics, the compare clause.
func (p *Plan) echo() report.QueryEchoJSON {
	e := report.QueryEchoJSON{GroupBy: p.groupBy, Metrics: p.metrics}
	if len(p.query.Filter) > 0 {
		e.Filter = make(map[string]string, len(p.query.Filter))
		for k, v := range p.query.Filter {
			e.Filter[k] = v
		}
	}
	if p.query.Compare != nil {
		e.Compare = &report.CompareEchoJSON{Baseline: p.query.Compare.Baseline}
	}
	return e
}

// isBaseline reports whether a group's key values equal the compare
// clause's baseline values.
func (p *Plan) isBaseline(g *group) bool {
	for i, dim := range p.groupBy {
		if g.keyVals[i] != p.query.Compare.Baseline[dim] {
			return false
		}
	}
	return true
}

// metricRows computes the selected metrics over one merged result, in the
// plan's metric order.
func (p *Plan) metricRows(res *overlap.Result) []report.MetricJSON {
	rows := make([]report.MetricJSON, 0, len(p.metrics))
	for _, m := range p.metrics {
		rows = append(rows, report.MetricJSON{Name: m, Value: metricValue(res, m)})
	}
	return rows
}

// metricValue computes one scalar metric from a merged result.
func metricValue(res *overlap.Result, metric string) float64 {
	switch metric {
	case MetricTotalNS:
		return float64(int64(res.Total()))
	case MetricCPUNS:
		var total vclock.Duration
		for k, d := range res.ByKey {
			if k.Res&overlap.ResCPU != 0 {
				total += d
			}
		}
		return float64(int64(total))
	case MetricGPUNS:
		return float64(int64(res.TotalGPUTime()))
	case MetricGPUFrac:
		total := res.Total()
		if total == 0 {
			return 0
		}
		return report.RoundFrac(float64(res.TotalGPUTime()) / float64(total))
	case MetricSpanNS:
		return float64(int64(res.SpanEnd - res.SpanStart))
	case MetricTransitions:
		n := 0
		for _, c := range res.Transitions {
			n += c
		}
		return float64(n)
	case MetricNetNS:
		return float64(int64(res.TotalCategoryCPUTime(trace.CatNetwork)))
	}
	return 0
}

// compareRows renders a group's compare block against the baseline.
func (p *Plan) compareRows(g, baseline *group) *report.CompareJSON {
	if g == baseline {
		return &report.CompareJSON{Baseline: true}
	}
	c := &report.CompareJSON{}
	for _, m := range p.metrics {
		gv := metricValue(g.merged, m)
		bv := metricValue(baseline.merged, m)
		c.Delta = append(c.Delta, report.MetricJSON{Name: m, Value: gv - bv})
		if bv != 0 {
			c.Ratio = append(c.Ratio, report.MetricJSON{Name: m, Value: report.RoundRatio(gv / bv)})
		}
	}
	return c
}
