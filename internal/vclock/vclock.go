// Package vclock provides the deterministic virtual time source that all
// simulated processes in this repository run on.
//
// RL-Scope's algorithms (cross-stack overlap, calibration, overhead
// correction) consume timestamped event traces; they do not care whether the
// timestamps were produced by clock_gettime on real hardware or by a
// simulation. Replacing the wall clock with a virtual clock makes every
// experiment deterministic and fast while preserving the full temporal
// structure the profiler depends on: asynchronous GPU kernels, CPU/GPU
// overlap, and profiler-induced CPU-time inflation.
//
// Each simulated process owns one Clock. Time only moves when the workload
// explicitly spends it (Advance), exactly like CPU time on a dedicated core.
package vclock

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// MinTime and MaxTime are the extreme representable instants, used as
// half-open window sentinels by the sharded analysis engine.
const (
	MinTime Time = math.MinInt64
	MaxTime Time = math.MaxInt64
)

// Duration is a span of virtual time in nanoseconds. It converts directly to
// and from time.Duration.
type Duration int64

// Common durations, mirroring the time package for readability at call sites.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using time.Duration notation (e.g. "1.5ms").
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds reports the time as floating-point seconds since run start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Clock is a per-process virtual clock. The zero value is not usable; create
// clocks with New so they carry a deterministic RNG stream for cost jitter.
//
// Clock is not safe for concurrent use: each simulated process is
// single-threaded, exactly like the Python processes RL-Scope profiles.
type Clock struct {
	now Time
	rng *rand.Rand
}

// New returns a clock starting at time 0 with a deterministic jitter stream
// derived from seed.
func New(seed int64) *Clock {
	return &Clock{rng: rand.New(rand.NewSource(seed))}
}

// NewAt returns a clock starting at the given time. Used when forking a
// simulated child process from a parent (the child inherits the parent's
// current time, like fork(2)).
func NewAt(start Time, seed int64) *Clock {
	return &Clock{now: start, rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time. Negative
// durations panic: virtual time, like real time, is monotonic.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("vclock: Advance by negative duration %v", d))
	}
	c.now += Time(d)
	return c.now
}

// AdvanceTo moves the clock forward to t if t is in the future; it never
// moves the clock backwards. It reports the resulting current time. This is
// how blocking waits (e.g. cudaDeviceSynchronize) are modelled.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Rand exposes the clock's deterministic RNG stream. Cost models use it for
// duration jitter so that runs are reproducible given the same seed.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// Dist is a duration distribution used by cost models: a mean with a
// relative jitter. Sample draws are uniform in
// [mean*(1-jitter), mean*(1+jitter)], floored at zero.
//
// Jitter matters for fidelity: RL-Scope calibrates the *average* duration of
// book-keeping code and subtracts mean*count, so per-occurrence variance is
// precisely what produces the paper's residual ±16% correction error.
type Dist struct {
	Mean   Duration
	Jitter float64 // relative, e.g. 0.2 for ±20%
}

// Exact returns a distribution with no jitter.
func Exact(mean Duration) Dist { return Dist{Mean: mean} }

// Jittered returns a distribution with the given relative jitter.
func Jittered(mean Duration, jitter float64) Dist { return Dist{Mean: mean, Jitter: jitter} }

// Sample draws one duration from the distribution using rng.
func (d Dist) Sample(rng *rand.Rand) Duration {
	if d.Mean <= 0 {
		return 0
	}
	if d.Jitter == 0 {
		return d.Mean
	}
	f := 1 + d.Jitter*(2*rng.Float64()-1)
	v := Duration(float64(d.Mean) * f)
	if v < 0 {
		v = 0
	}
	return v
}

// Scale returns a copy of the distribution with the mean multiplied by f.
func (d Dist) Scale(f float64) Dist {
	return Dist{Mean: Duration(float64(d.Mean) * f), Jitter: d.Jitter}
}

// Spend samples dist and advances the clock by the sampled amount, returning
// the start and end timestamps of the spent interval. It is the standard way
// cost models consume time.
func (c *Clock) Spend(dist Dist) (start, end Time) {
	start = c.now
	c.Advance(dist.Sample(c.rng))
	return start, c.now
}
