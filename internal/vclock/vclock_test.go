package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New(1)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := New(1)
	c.Advance(5 * Microsecond)
	c.Advance(2 * Millisecond)
	want := Time(5*Microsecond + 2*Millisecond)
	if c.Now() != want {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New(1).Advance(-1)
}

func TestClockAdvanceToNeverGoesBackwards(t *testing.T) {
	c := New(1)
	c.Advance(10 * Microsecond)
	before := c.Now()
	c.AdvanceTo(before - 5)
	if c.Now() != before {
		t.Fatalf("AdvanceTo moved clock backwards: %v -> %v", before, c.Now())
	}
	c.AdvanceTo(before + 100)
	if c.Now() != before+100 {
		t.Fatalf("AdvanceTo(future) = %v, want %v", c.Now(), before+100)
	}
}

func TestClockNewAt(t *testing.T) {
	c := NewAt(42*Time(Second), 1)
	if c.Now() != 42*Time(Second) {
		t.Fatalf("NewAt clock at %v, want 42s", c.Now())
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	c := New(7)
	f := func(steps []uint16) bool {
		prev := c.Now()
		for _, s := range steps {
			c.Advance(Duration(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistExactHasNoJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Exact(10 * Microsecond)
	for i := 0; i < 100; i++ {
		if got := d.Sample(rng); got != 10*Microsecond {
			t.Fatalf("Exact sample = %v, want 10µs", got)
		}
	}
}

func TestDistJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Jittered(100*Microsecond, 0.2)
	lo, hi := Duration(80*Microsecond), Duration(120*Microsecond)
	for i := 0; i < 1000; i++ {
		got := d.Sample(rng)
		if got < lo || got > hi {
			t.Fatalf("jittered sample %v outside [%v, %v]", got, lo, hi)
		}
	}
}

func TestDistJitterMeanApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Jittered(100*Microsecond, 0.5)
	var sum Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	mean := float64(sum) / n
	want := float64(100 * Microsecond)
	if mean < 0.98*want || mean > 1.02*want {
		t.Fatalf("sample mean %.0f, want ~%.0f", mean, want)
	}
}

func TestDistZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := (Dist{}).Sample(rng); got != 0 {
		t.Fatalf("zero dist sample = %v, want 0", got)
	}
}

func TestDistScale(t *testing.T) {
	d := Jittered(10*Microsecond, 0.1).Scale(2.5)
	if d.Mean != 25*Microsecond {
		t.Fatalf("scaled mean = %v, want 25µs", d.Mean)
	}
	if d.Jitter != 0.1 {
		t.Fatalf("scale changed jitter: %v", d.Jitter)
	}
}

func TestDistSampleNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Jittered(1, 1.0) // jitter can reach -100%
	for i := 0; i < 1000; i++ {
		if got := d.Sample(rng); got < 0 {
			t.Fatalf("negative sample %v", got)
		}
	}
}

func TestSpendReturnsInterval(t *testing.T) {
	c := New(9)
	c.Advance(3 * Microsecond)
	start, end := c.Spend(Exact(7 * Microsecond))
	if start != Time(3*Microsecond) || end != Time(10*Microsecond) {
		t.Fatalf("Spend = [%v, %v], want [3µs, 10µs]", start, end)
	}
	if c.Now() != end {
		t.Fatalf("clock at %v after Spend, want %v", c.Now(), end)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Seconds() != 0.0015 {
		t.Fatalf("Seconds() = %v, want 0.0015", d.Seconds())
	}
	if d.Std() != 1500*time.Microsecond {
		t.Fatalf("Std() = %v", d.Std())
	}
	if d.String() != "1.5ms" {
		t.Fatalf("String() = %q, want 1.5ms", d.String())
	}
}

func TestTimeHelpers(t *testing.T) {
	x := Time(2 * Second)
	if got := x.Add(500 * Millisecond); got != Time(2*Second)+Time(500*Millisecond) {
		t.Fatalf("Add = %v", got)
	}
	if got := x.Sub(Time(Second)); got != Duration(Second) {
		t.Fatalf("Sub = %v, want 1s", got)
	}
	if x.Seconds() != 2.0 {
		t.Fatalf("Seconds = %v", x.Seconds())
	}
}

func TestClockDeterminism(t *testing.T) {
	run := func() []Duration {
		c := New(123)
		d := Jittered(50*Microsecond, 0.4)
		var out []Duration
		for i := 0; i < 50; i++ {
			out = append(out, d.Sample(c.Rand()))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded clocks: %v vs %v", i, a[i], b[i])
		}
	}
}
