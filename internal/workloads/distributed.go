package workloads

// Distributed actor/learner workloads (SEED/IMPALA-style splits): N
// simulated actor hosts step environments and ship trajectories to one
// learner host, which runs the gradient updates and broadcasts fresh policy
// parameters back. Each host is its own Profiler with its own seeded
// vclock.Clock, deliberately started at a skewed origin — the per-machine
// clocks of a real cluster — and emits its own trace. Every cross-host
// message leaves a paired pair of Network CPU events ("net.send:<id>" on
// the sender, "net.recv:<id>" on the receiver) whose shared id lets
// multihost.Merge recover inter-host clock offsets from the traces alone.

import (
	"fmt"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/nn"
	"repro/internal/profiler"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// OpCommunication annotates cross-host send/recv blocks, giving network
// time its own operation row next to inference/simulation/backpropagation.
const OpCommunication = "communication"

// LearnerHost is the learner's host name in a distributed run.
const LearnerHost = "learner"

// ActorHost names the i-th actor host ("actor00", "actor01", ...).
func ActorHost(i int) string { return fmt.Sprintf("actor%02d", i) }

// DefaultMaxSkew bounds the clock-origin skew injected per host when
// DistributedSpec.MaxSkew is zero.
const DefaultMaxSkew = 2 * vclock.Millisecond

// MaxActors bounds a distributed run's size; multihost.Merge relies on
// host process-id ranges staying well inside its per-host remap stride.
const MaxActors = 64

// DistributedSpec describes one actor/learner-split training run.
type DistributedSpec struct {
	// Actors is the number of actor hosts feeding the learner.
	Actors int
	// Algo must be an off-policy algorithm (DQN, DDPG, TD3, SAC): the
	// split is replay-based — actors collect with a policy snapshot,
	// the learner trains from shipped transitions.
	Algo string
	// Env is one of sim.SurveyNames.
	Env string
	// Model is the ML backend execution model.
	Model backend.ExecModel
	// TotalSteps is the environment-step budget per actor.
	TotalSteps int
	// Seed drives every stochastic component, including the injected
	// per-host clock skews and wire latencies.
	Seed int64
	// MaxSkew bounds the per-host clock-origin skew (0 = DefaultMaxSkew).
	MaxSkew vclock.Duration
}

// Name labels the workload in traces and reports.
func (s DistributedSpec) Name() string {
	return fmt.Sprintf("dist-%s-%s-%s-a%d", s.Algo, s.Env, s.Model, s.Actors)
}

// HostRun is one host's slice of a distributed run.
type HostRun struct {
	// Host is the simulated machine name ("learner", "actor00", ...),
	// also recorded in Trace.Meta.Host.
	Host string
	// Trace is the host's own event trace, on the host's own skewed
	// clock.
	Trace *trace.Trace
	// Skew is the injected true clock-origin offset (local = true time
	// + Skew). Ground truth for tests; a real deployment would not
	// know it — multihost.Merge re-estimates it from send/recv pairs.
	Skew vclock.Duration
}

// distHost is one simulated machine during a distributed run.
type distHost struct {
	name  string
	prof  *profiler.Profiler
	sess  *profiler.Session
	skew  vclock.Duration
	agent rl.Agent
	env   sim.Env
	obs   [][]float64
}

// toGlobal converts a host-local instant to true (cluster) time.
func (h *distHost) toGlobal(t vclock.Time) vclock.Time { return t - vclock.Time(h.skew) }

// toLocal converts a true instant to the host's local clock.
func (h *distHost) toLocal(t vclock.Time) vclock.Time { return t + vclock.Time(h.skew) }

// xferCost models the CPU side of moving bytes across the wire:
// serialization plus socket write on the sender, read plus deserialization
// on the receiver (~2 GB/s memcpy-bound marshaling atop a fixed syscall
// floor).
func xferCost(bytes int) vclock.Dist {
	return vclock.Jittered(8*vclock.Microsecond+vclock.Duration(bytes/2)*vclock.Nanosecond, 0.15)
}

// RunDistributed executes the actor/learner workload and returns one
// HostRun per simulated machine, learner first, actors in index order.
//
// The run is lock-step and single-threaded: causality crosses hosts only
// through computed message-arrival instants (send-completion in true time
// plus a seeded wire latency), so the whole multi-host run — including
// every host's trace bytes — is a pure function of the spec and flags.
func RunDistributed(spec DistributedSpec, flags trace.FeatureFlags) ([]HostRun, error) {
	if spec.Actors < 1 || spec.Actors > MaxActors {
		return nil, fmt.Errorf("workloads: Actors must be in [1,%d], got %d", MaxActors, spec.Actors)
	}
	if spec.TotalSteps <= 0 {
		return nil, fmt.Errorf("workloads: TotalSteps must be positive")
	}
	maxSkew := spec.MaxSkew
	if maxSkew <= 0 {
		maxSkew = DefaultMaxSkew
	}
	base := Spec{Algo: spec.Algo, Env: spec.Env, Model: spec.Model, TotalSteps: spec.TotalSteps, Seed: spec.Seed}

	skewRng := rand.New(rand.NewSource(spec.Seed*7907 + 11))
	wireRng := rand.New(rand.NewSource(spec.Seed*6311 + 29))
	latency := func() vclock.Duration {
		return 40*vclock.Microsecond + vclock.Duration(wireRng.Int63n(int64(20*vclock.Microsecond)))
	}

	newHost := func(i int, name string) (*distHost, error) {
		skew := vclock.Duration(skewRng.Int63n(int64(maxSkew)))
		p := profiler.New(profiler.Options{
			Workload: spec.Name(),
			Host:     name,
			Flags:    flags,
			Seed:     spec.Seed + int64(i)*1_000_003,
		})
		sess := p.NewProcess(name, -1, vclock.Time(skew))
		ctx := cuda.NewContext(sess, gpu.NewDevice(-1), cuda.DefaultCosts())
		b := backend.New(sess, ctx, spec.Model)
		env, err := sim.New(spec.Env, spec.Seed+29+int64(i)*997)
		if err != nil {
			return nil, err
		}
		agent, err := newAgent(base, b, env)
		if err != nil {
			return nil, err
		}
		if agent.OnPolicy() {
			return nil, fmt.Errorf("workloads: distributed mode needs an off-policy algorithm (replay-based actor/learner split), %s is on-policy", spec.Algo)
		}
		if agent.NumEnvs() != 1 {
			return nil, fmt.Errorf("workloads: distributed mode expects single-env collection, %s uses %d envs", spec.Algo, agent.NumEnvs())
		}
		return &distHost{name: name, prof: p, sess: sess, skew: skew, agent: agent, env: env}, nil
	}

	learner, err := newHost(0, LearnerHost)
	if err != nil {
		return nil, err
	}
	actors := make([]*distHost, spec.Actors)
	for i := range actors {
		if actors[i], err = newHost(i+1, ActorHost(i)); err != nil {
			return nil, err
		}
	}

	// send ships one message: a Network send event on the sender, then a
	// Network recv event on the receiver blocking until the message's
	// arrival instant (send completion in true time plus wire latency),
	// both inside communication operation annotations and paired by id.
	send := func(from, to *distHost, id string, bytes int) {
		var sendEnd vclock.Time
		from.sess.WithOperation(OpCommunication, func() {
			sendEnd = from.sess.NetSend(id, xferCost(bytes))
		})
		arrival := to.toLocal(from.toGlobal(sendEnd) + vclock.Time(latency()))
		to.sess.WithOperation(OpCommunication, func() {
			to.sess.NetRecv(id, arrival, xferCost(bytes))
		})
	}

	// Parameter payload: the policy network weights the learner
	// broadcasts each round (backend.Network sizes the float32
	// footprint). Trajectory payload: float64 obs/next/act plus
	// reward and done per transition.
	obsDim, actDim := learner.env.ObsDim(), learner.env.ActDim()
	refRng := rand.New(rand.NewSource(spec.Seed + 101))
	paramBytes := backend.NewNetwork(refRng, "policy_sync",
		[]int{obsDim, 64, 64, actDim}, nn.ReLU, nn.Identity).ParamBytes()
	transBytes := 8 * (2*obsDim + actDim + 2)

	learner.sess.SetPhase("training")
	for _, a := range actors {
		a.sess.SetPhase("training")
		a.obs = make([][]float64, 1)
		a.sess.WithOperation(OpSimulation, func() {
			a.sess.CallSimulator(a.env.Name()+".reset", func() {
				a.sess.Clock().Spend(a.env.ResetCost())
				a.obs[0] = a.env.Reset()
			})
		})
	}

	stepsDone := 0
	for round := 0; stepsDone < spec.TotalSteps; round++ {
		// 1. The learner broadcasts the current policy parameters.
		for _, a := range actors {
			send(learner, a, fmt.Sprintf("r%d:%s->%s", round, LearnerHost, a.name), paramBytes)
		}

		// 2. Each actor collects one segment with its policy snapshot.
		segment := learner.agent.CollectSteps()
		if rem := spec.TotalSteps - stepsDone; segment > rem {
			segment = rem
		}
		trajs := make([][]rl.Transition, len(actors))
		for ai, a := range actors {
			for step := 0; step < segment; step++ {
				var acts [][]float64
				a.sess.WithOperation(OpInference, func() {
					acts = a.agent.ActBatch(a.obs)
				})
				a.sess.WithOperation(OpSimulation, func() {
					a.sess.Python(stepGlueCost)
					a.sess.CallSimulator(a.env.Name()+".step", func() {
						a.sess.Clock().Spend(a.env.StepCost())
						next, reward, done := a.env.Step(acts[0])
						trajs[ai] = append(trajs[ai], rl.Transition{
							Obs: a.obs[0], Act: acts[0], Reward: reward,
							Next: next, Done: done,
						})
						a.obs[0] = next
					})
					if tr := trajs[ai][len(trajs[ai])-1]; tr.Done {
						a.sess.CallSimulator(a.env.Name()+".reset", func() {
							a.sess.Clock().Spend(a.env.ResetCost())
							a.obs[0] = a.env.Reset()
						})
					}
				})
			}
			// 3. Ship the segment's trajectory to the learner.
			send(a, learner, fmt.Sprintf("r%d:%s->%s", round, a.name, LearnerHost),
				len(trajs[ai])*transBytes)
		}

		// 4. The learner folds trajectories into its replay buffer
		// (high-level code, like any replay insert) and trains.
		for ai := range trajs {
			learner.sess.Python(vclock.Jittered(
				vclock.Duration(len(trajs[ai]))*2*vclock.Microsecond, 0.2))
			for _, tr := range trajs[ai] {
				learner.agent.Observe(0, tr)
			}
		}
		for u, n := 0, learner.agent.UpdatesPerCollect(); u < n; u++ {
			learner.sess.WithOperation(OpBackpropagation, func() {
				learner.agent.Update()
			})
		}
		stepsDone += segment
	}

	hosts := append([]*distHost{learner}, actors...)
	runs := make([]HostRun, 0, len(hosts))
	for _, h := range hosts {
		h.sess.Close()
		t, err := h.prof.Trace()
		if err != nil {
			return nil, err
		}
		runs = append(runs, HostRun{Host: h.name, Trace: t, Skew: h.skew})
	}
	return runs, nil
}
