package workloads

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/trace"
)

func runSpec(t *testing.T, spec Spec) *overlap.Result {
	t.Helper()
	stats, err := Run(spec, trace.Uninstrumented())
	if err != nil {
		t.Fatalf("Run(%s): %v", spec.Name(), err)
	}
	return overlap.Compute(stats.Trace.ProcEvents(0))
}

func TestWorkloadProducesAllThreeOperations(t *testing.T) {
	res := runSpec(t, Spec{Algo: "DDPG", Env: "Walker2D", Model: backend.Graph, TotalSteps: 300, Seed: 1})
	for _, op := range []string{OpInference, OpSimulation, OpBackpropagation} {
		if res.OpTotal(op) == 0 {
			t.Fatalf("no time attributed to %s", op)
		}
	}
	if res.GPUTime(OpSimulation) != 0 {
		t.Fatal("simulation should not touch the GPU")
	}
	if res.GPUTime(OpBackpropagation) == 0 {
		t.Fatal("backpropagation recorded no GPU time")
	}
}

func TestAllAlgorithmsRunOnTheirEnvs(t *testing.T) {
	cases := []Spec{
		{Algo: "DQN", Env: "Pong", Model: backend.Graph, TotalSteps: 300, Seed: 2},
		{Algo: "DDPG", Env: "Walker2D", Model: backend.Graph, TotalSteps: 200, Seed: 2},
		{Algo: "TD3", Env: "Walker2D", Model: backend.Autograph, TotalSteps: 200, Seed: 2, CollectStepsOverride: 100},
		{Algo: "SAC", Env: "Walker2D", Model: backend.EagerPyTorch, TotalSteps: 200, Seed: 2},
		{Algo: "A2C", Env: "Walker2D", Model: backend.Graph, TotalSteps: 100, Seed: 2},
		{Algo: "PPO2", Env: "Hopper", Model: backend.Graph, TotalSteps: 128, Seed: 2},
		{Algo: "PPO2", Env: "Pong", Model: backend.Graph, TotalSteps: 128, Seed: 2},
	}
	for _, spec := range cases {
		t.Run(spec.Name(), func(t *testing.T) {
			res := runSpec(t, spec)
			if res.Total() == 0 {
				t.Fatal("empty breakdown")
			}
		})
	}
}

func TestDQNOnContinuousEnvRejected(t *testing.T) {
	_, err := Run(Spec{Algo: "DQN", Env: "Walker2D", Model: backend.Graph, TotalSteps: 100, Seed: 1}, trace.Uninstrumented())
	if err == nil {
		t.Fatal("DQN on Walker2D should be rejected")
	}
}

func TestUnknownAlgoAndEnvRejected(t *testing.T) {
	if _, err := Run(Spec{Algo: "SARSA", Env: "Pong", TotalSteps: 10}, trace.Uninstrumented()); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(Spec{Algo: "DQN", Env: "Doom", TotalSteps: 10}, trace.Uninstrumented()); err == nil {
		t.Fatal("unknown env accepted")
	}
	if _, err := Run(Spec{Algo: "DQN", Env: "Pong", TotalSteps: 0}, trace.Uninstrumented()); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestOnPolicyMoreSimulationBound(t *testing.T) {
	// Seed of the paper's F.10: on-policy A2C spends a far larger
	// fraction in simulation than off-policy SAC.
	a2c := runSpec(t, Spec{Algo: "A2C", Env: "Walker2D", Model: backend.Graph, TotalSteps: 400, Seed: 3})
	sac := runSpec(t, Spec{Algo: "SAC", Env: "Walker2D", Model: backend.Graph, TotalSteps: 400, Seed: 3})
	fracA2C := a2c.OpTotal(OpSimulation).Seconds() / a2c.Total().Seconds()
	fracSAC := sac.OpTotal(OpSimulation).Seconds() / sac.Total().Seconds()
	if fracA2C < 2*fracSAC {
		t.Fatalf("A2C simulation share %.1f%% should dwarf SAC's %.1f%%", 100*fracA2C, 100*fracSAC)
	}
}

func TestInstrumentedRunCarriesMarkers(t *testing.T) {
	stats, err := Run(Spec{Algo: "DDPG", Env: "Walker2D", Model: backend.Graph, TotalSteps: 200, Seed: 4}, trace.Full())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Trace.CountKind(trace.KindOverhead) == 0 {
		t.Fatal("full-instrumentation run has no overhead markers")
	}
	if stats.OverheadCounts[trace.OverheadCUPTI] == 0 {
		t.Fatal("no CUPTI occurrences")
	}
	if len(stats.APICount) == 0 {
		t.Fatal("no CUDA API stats")
	}
}

func TestSpecName(t *testing.T) {
	s := Spec{Algo: "TD3", Env: "Walker2D", Model: backend.EagerPyTorch}
	if s.Name() != "TD3-Walker2D-PyTorch Eager" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestRunnerReseeds(t *testing.T) {
	r := Runner(Spec{Algo: "A2C", Env: "Walker2D", Model: backend.Graph, TotalSteps: 50, Seed: 1})
	a, err := r(trace.Uninstrumented(), 42)
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	b, err := r(trace.Uninstrumented(), 42)
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	if a.Total != b.Total {
		t.Fatalf("same seed produced different totals: %v vs %v", a.Total, b.Total)
	}
	c, err := r(trace.Uninstrumented(), 43)
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	if c.Total == a.Total {
		t.Fatal("different seeds produced identical totals (suspicious)")
	}
}
